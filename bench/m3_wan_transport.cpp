// M3 — MPWide-style multi-stream WAN path transport (ROADMAP item 3).
//
// The r1 bench shows the paper's single-TCP WAN path collapsing to
// ~67 Mbit/s when the OC-48 line misbehaves (an 8 s cut leaves the lone
// connection waiting out an exponentially backed-off RTO; sustained bit
// errors keep crashing its congestion window).  This bench measures what
// meta::PathTransport buys back: N parallel streams with chunk striping,
// per-stream token-bucket pacing, stalled-stream reset and the adaptive
// stream/window controller, swept across
//
//   RTT            x  fault schedule                x  path configuration
//   (100/1000 km)     clean / loss (BER) / outage /    1 stream (today's
//                     loss+outage                      default) vs 4 and 8
//                                                      striped streams
//
// on a 128 MB gateway-to-gateway transfer through `Metacomputer::wan_send`.
// The sustained-loss schedule is the collapse scenario the acceptance row
// at the bottom of the JSON reports (single-stream Reno crashes to the
// r1-style ~67 Mbit/s; eight striped streams hold >3x that).  The outage
// rows ride through the full r1 8 s cut, where any transport's goodput is
// bounded by the dead air (1074 Mbit over >=8.5 s, i.e. ~126 Mbit/s) —
// the multi-stream win there is the stall watchdog resetting backed-off
// connections so transfer resumes within one chunk timeout of the heal
// instead of waiting out an exponentially backed-off RTO.
//
// Deterministic by construction (DES clock only); BENCH_m3_wan_transport
// .json and OBS_m3_wan_transport.metrics.json are byte-stable and sit
// under the double-run determinism replay gate (--replay is accepted for
// symmetry with des_speed; no field here is wall-clock-derived).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>

#include "check/attach.hpp"
#include "check/monitor.hpp"
#include "meta/metacomputer.hpp"
#include "meta/path_transport.hpp"
#include "net/fault.hpp"
#include "obs/exporter.hpp"
#include "obs/instrument.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace gtw;

constexpr std::uint64_t kTransferBytes = 128u << 20;
// Sustained bit-error rate that crashes a lone Reno stream's congestion
// window often enough to reproduce the r1-style ~67 Mbit/s collapse on a
// clean-RTT path (tuned against the simulator; see BENCH row "loss").
constexpr double kLossBer = 1.3e-7;
constexpr double kOutageAt = 0.5, kOutageFor = 8.0;

struct SweepCase {
  const char* schedule;  // clean | loss | outage | loss_outage
  const char* config;    // single | multi4 | multi8 | multi8_paced
};

meta::PathConfig path_config(std::string_view config,
                             const testbed::Testbed& tb) {
  meta::PathConfig pc;
  pc.tcp.mss = tb.options().atm_mtu - units::Bytes{40};
  pc.tcp.recv_buffer = units::Bytes{4u << 20};
  if (config == "single") return pc;  // pass-through: today's WAN path
  pc.streams = config == "multi4" ? 4 : 8;
  pc.chunk_bytes = units::Bytes{256u << 10};
  pc.stream_window = units::Bytes{2u << 20};
  pc.chunk_timeout = des::SimTime::milliseconds(400);
  pc.adapt_interval = des::SimTime::milliseconds(500);
  pc.min_streams = 2;
  if (config == "multi8_paced") {
    // Pace each stream to its fair share of the OC-12 gateway attachment
    // so eight striped streams do not dump correlated bursts into the
    // shared ASX-4000 switch buffers.
    pc.pace_rate = units::BitRate::mbps(70.0);
    pc.pace_burst = pc.chunk_bytes;
  }
  return pc;
}

struct Row {
  double transfer_s = 0.0;
  double goodput_mbps = 0.0;
  std::uint64_t chunks = 0;
  std::uint64_t chunk_resends = 0;
  std::uint64_t stream_resets = 0;
  std::uint64_t duplicate_chunks = 0;
  std::uint64_t paced_delays = 0;
  std::uint64_t tcp_retransmits = 0;
  std::uint64_t tcp_timeouts = 0;
  std::uint64_t reassembly_peak = 0;
  int active_streams_final = 0;
  std::uint64_t outage_drops = 0;
};

Row run_case(double distance_km, std::string_view schedule,
             std::string_view config, bool emit_obs = false) {
  testbed::TestbedOptions opts;
  opts.distance_km = distance_km;
  testbed::Testbed tb{opts};
  meta::Metacomputer mc{tb.scheduler()};

  meta::MachineSpec a;
  a.name = "JUELICH";
  a.frontend = &tb.gw_o200();
  meta::MachineSpec b;
  b.name = "GMD";
  b.frontend = &tb.gw_e5000();
  const int ma = mc.add_machine(a);
  const int mb = mc.add_machine(b);
  mc.link_machines(ma, mb, path_config(config, tb), 7000);
  meta::PathTransport& path = *mc.wan_path(ma, mb);

  net::FaultPlan plan(tb.scheduler());
  const bool loss =
      schedule == "loss" || schedule == "loss_outage";
  const bool outage =
      schedule == "outage" || schedule == "loss_outage";
  if (loss) {
    // Sustained bit errors on the data direction for (more than) the whole
    // run; ACKs ride the clean reverse fibre.
    plan.ber_burst(tb.wan_link_j_to_g(), des::SimTime::milliseconds(1),
                   des::SimTime::seconds(300), kLossBer);
  }
  if (outage) {
    plan.link_down(tb.wan_link_j_to_g(), des::SimTime::seconds(kOutageAt),
                   des::SimTime::seconds(kOutageFor));
  }

  obs::Registry reg;
  obs::SpanTracer spans;
  if (emit_obs) {
    obs::instrument_path_transport(reg, path, "wan");
    // Causal spans for the transfer: keep the meta/tcp layers (chunk
    // striping, stalls, resets) but drop the per-frame link/host/atm spans
    // — a 128 MB transfer is ~15k frames and the per-frame detail adds
    // nothing to the stall/reset story this bench tells.
    spans.enable_layer("link", false);
    spans.enable_layer("host", false);
    spans.enable_layer("atm", false);
    tb.scheduler().set_span_hook(&spans);
  }

#if defined(GTW_CHECK)
  // GTW-San: the exactly-once / in-order delivery contract must hold even
  // through loss-driven chunk resends and outage-driven stream resets.
  check::Monitor mon(tb.scheduler());
  check::attach_testbed(mon, tb);
  check::attach_path_transport(mon, path, "wan");
  check::attach_fault_plan(mon, plan);
  check::attach_span_tracer(mon, spans);
#endif

  des::SimTime done = des::SimTime::zero();
  mc.wan_send(ma, mb, units::Bytes{kTransferBytes},
              [&] { done = tb.scheduler().now(); });
  tb.scheduler().run();
#if defined(GTW_CHECK)
  mon.finish();
  mon.require_clean("m3_wan_transport");
#endif

  if (emit_obs) {
    {
      std::ofstream metrics("OBS_m3_wan_transport.metrics.json",
                            std::ios::binary);
      obs::write_metrics_json(metrics, reg,
                              "m3_wan_transport loss_outage multi8 100km");
    }
    std::ofstream sp("OBS_m3_wan_transport.spans.json", std::ios::binary);
    spans.write_json(sp, "m3_wan_transport loss_outage multi8 100km");
  }

  Row r;
  r.transfer_s = done.sec();
  r.goodput_mbps =
      static_cast<double>(kTransferBytes) * 8.0 / done.sec() / 1e6;
  const meta::PathTransport::Stats& st = path.stats(0);
  r.chunks = st.chunks;
  r.chunk_resends = st.chunk_resends;
  r.stream_resets = st.stream_resets;
  r.duplicate_chunks = st.duplicate_chunks;
  r.paced_delays = st.paced_delays;
  r.reassembly_peak = st.reassembly_peak_bytes;
  for (int s = 0; s < path.stream_count(); ++s) {
    const auto ss = path.stream_stats(0, s);
    r.tcp_retransmits += ss.tcp_retransmits;
    r.tcp_timeouts += ss.tcp_timeouts;
  }
  r.active_streams_final = path.active_streams();
  r.outage_drops = tb.wan_link_j_to_g().outage_drops();
  return r;
}

void print_m3() {
  std::printf("== M3: single- vs multi-stream WAN path transport ==\n");
  std::printf("128 MB gw_o200 -> gw_e5000; loss BER=%.3g, outage %.1fs@%.1fs\n",
              kLossBer, kOutageFor, kOutageAt);
  std::printf("%7s %12s %13s | %10s %9s | %6s %6s %6s\n", "km", "schedule",
              "config", "time(s)", "Mbit/s", "rexmt", "resets", "resend");

  std::ofstream json("BENCH_m3_wan_transport.json");
  json << "{\n  \"bench\": \"m3_wan_transport\",\n"
       << "  \"transfer_bytes\": " << kTransferBytes << ",\n";
  {
    char hdr[160];
    std::snprintf(hdr, sizeof hdr,
                  "  \"loss_ber\": %.17g,\n  \"outage_at_s\": %.17g,\n"
                  "  \"outage_for_s\": %.17g,\n  \"rows\": [\n",
                  kLossBer, kOutageAt, kOutageFor);
    json << hdr;
  }

  const SweepCase cases[] = {
      {"clean", "single"},       {"clean", "multi8"},
      {"loss", "single"},        {"loss", "multi4"},
      {"loss", "multi8"},        {"loss", "multi8_paced"},
      {"outage", "single"},      {"outage", "multi8"},
      {"loss_outage", "single"}, {"loss_outage", "multi4"},
      {"loss_outage", "multi8"}, {"loss_outage", "multi8_paced"},
  };
  bool first = true;
  double collapse_single = 0.0, collapse_multi = 0.0;
  for (double km : {100.0, 1000.0}) {
    testbed::TestbedOptions opts;
    opts.distance_km = km;
    const double rtt_ms = testbed::Testbed{opts}.wan_rtt().ms();
    for (const SweepCase& c : cases) {
      // The 100 km loss_outage/multi8 run doubles as the obs showcase
      // (probes are read-only, so its numbers match an uninstrumented run).
      const bool obs_run = km == 100.0 &&
                           std::string_view(c.schedule) == "loss_outage" &&
                           std::string_view(c.config) == "multi8";
      const Row r = run_case(km, c.schedule, c.config, obs_run);
      if (km == 100.0 && std::string_view(c.schedule) == "loss") {
        if (std::string_view(c.config) == "single")
          collapse_single = r.goodput_mbps;
        if (std::string_view(c.config) == "multi8")
          collapse_multi = r.goodput_mbps;
      }
      std::printf("%7.0f %12s %13s | %10.3f %9.1f | %6llu %6llu %6llu\n", km,
                  c.schedule, c.config, r.transfer_s, r.goodput_mbps,
                  static_cast<unsigned long long>(r.tcp_retransmits),
                  static_cast<unsigned long long>(r.stream_resets),
                  static_cast<unsigned long long>(r.chunk_resends));
      char row[768];
      std::snprintf(
          row, sizeof row,
          "    {\"distance_km\": %.17g, \"rtt_ms\": %.17g, "
          "\"schedule\": \"%s\", \"config\": \"%s\",\n"
          "     \"transfer_s\": %.17g, \"goodput_mbps\": %.17g,\n"
          "     \"chunks\": %llu, \"chunk_resends\": %llu, "
          "\"stream_resets\": %llu, \"duplicate_chunks\": %llu,\n"
          "     \"paced_delays\": %llu, \"tcp_retransmits\": %llu, "
          "\"tcp_timeouts\": %llu,\n"
          "     \"reassembly_peak_bytes\": %llu, "
          "\"active_streams_final\": %d, \"outage_drops\": %llu}",
          km, rtt_ms, c.schedule, c.config, r.transfer_s, r.goodput_mbps,
          static_cast<unsigned long long>(r.chunks),
          static_cast<unsigned long long>(r.chunk_resends),
          static_cast<unsigned long long>(r.stream_resets),
          static_cast<unsigned long long>(r.duplicate_chunks),
          static_cast<unsigned long long>(r.paced_delays),
          static_cast<unsigned long long>(r.tcp_retransmits),
          static_cast<unsigned long long>(r.tcp_timeouts),
          static_cast<unsigned long long>(r.reassembly_peak),
          r.active_streams_final,
          static_cast<unsigned long long>(r.outage_drops));
      json << (first ? "" : ",\n") << row;
      first = false;
    }
  }
  const double ratio =
      collapse_single > 0.0 ? collapse_multi / collapse_single : 0.0;
  char tail[256];
  std::snprintf(tail, sizeof tail,
                "\n  ],\n  \"collapse_single_mbps\": %.17g,\n"
                "  \"collapse_multi8_mbps\": %.17g,\n"
                "  \"collapse_speedup\": %.17g\n}\n",
                collapse_single, collapse_multi, ratio);
  json << tail;
  json.flush();
  std::printf("loss@100km collapse: single %.1f Mbit/s, multi8 %.1f Mbit/s "
              "(%.1fx)\n",
              collapse_single, collapse_multi, ratio);
  std::printf(json ? "[wrote BENCH_m3_wan_transport.json]\n\n"
                   : "[failed to write BENCH_m3_wan_transport.json]\n\n");
}

void BM_SingleStreamLossOutage(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run_case(100.0, "loss_outage", "single"));
}
BENCHMARK(BM_SingleStreamLossOutage)->Unit(benchmark::kMillisecond);

void BM_MultiStreamLossOutage(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run_case(100.0, "loss_outage", "multi8"));
}
BENCHMARK(BM_MultiStreamLossOutage)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // --replay is accepted for determinism-gate symmetry with des_speed; the
  // artifact contains no wall-clock-derived fields either way.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--replay") continue;
    argv[out++] = argv[i];
  }
  argc = out;
  print_m3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
