// A3 — ablation: MTU and socket-buffer sensitivity of TCP over the testbed.
// Section 2 of the paper stresses exactly this: HiPPI needs large transfer
// blocks, "even with TCP/IP communication, transfer rates of more than
// 430 Mbit/s are achieved ... when an MTU of 64 KByte is used", and the
// Fore adapters' large-MTU support is what makes 64 KB packets possible
// "throughout the network".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "net/tcp.hpp"
#include "net/units.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace gtw;

double throughput(net::Host& a, net::Host& b, testbed::Testbed& tb,
                  units::Bytes mtu, units::Bytes window) {
  net::TcpConfig cfg;
  cfg.mss = mtu - units::Bytes{net::kIpHeaderBytes + net::kTcpHeaderBytes};
  cfg.recv_buffer = window;
  return net::run_bulk_transfer(tb.scheduler(), a, b,
                                units::Bytes{32u << 20}, cfg)
      .goodput.bps();
}

void print_a3() {
  std::printf("== A3: MTU sweep, local Cray complex (HiPPI TCP) ==\n");
  std::printf("%8s | %12s\n", "MTU", "goodput");
  for (std::uint32_t mtu : {1500u, 4352u, 9180u, 32768u, 65280u}) {
    testbed::Testbed tb{testbed::TestbedOptions{}};
    std::printf("%8u | %8.1f Mbit/s\n", mtu,
                throughput(tb.t3e600(), tb.t3e1200(), tb, units::Bytes{mtu},
                           units::Bytes{1u << 20}) /
                    1e6);
  }
  std::printf("paper: >430 Mbit/s at 64 KB; small MTUs collapse under the "
              "per-packet protocol cost\n");

  std::printf("\n== A3: MTU sweep, T3E -> SP2 across the OC-48 WAN ==\n");
  std::printf("%8s | %12s\n", "MTU", "goodput");
  for (std::uint32_t mtu : {1500u, 9180u, 65280u}) {
    testbed::Testbed tb{testbed::TestbedOptions{}};
    std::printf("%8u | %8.1f Mbit/s\n", mtu,
                throughput(tb.t3e600(), tb.sp2(), tb, units::Bytes{mtu},
                           units::Bytes{1u << 20}) /
                    1e6);
  }

  std::printf("\n== A3: socket-buffer sweep, workstation pair across the "
              "WAN (RTT ~1.1 ms) ==\n");
  std::printf("%10s | %12s\n", "window", "goodput");
  for (std::uint64_t win : {64u << 10, 128u << 10, 256u << 10, 512u << 10,
                            1u << 20}) {
    testbed::Testbed tb{testbed::TestbedOptions{}};
    std::printf("%7llu KB | %8.1f Mbit/s\n",
                static_cast<unsigned long long>(win >> 10),
                throughput(tb.onyx2_juelich(), tb.onyx2_gmd(), tb,
                           tb.options().atm_mtu, units::Bytes{win}) /
                    1e6);
  }
  std::printf("(window/RTT caps throughput until the window covers the "
              "bandwidth-delay product)\n\n");
}

void BM_WanTransfer64kMtu(benchmark::State& state) {
  for (auto _ : state) {
    testbed::Testbed tb{testbed::TestbedOptions{}};
    benchmark::DoNotOptimize(
        throughput(tb.t3e600(), tb.sp2(), tb, units::Bytes{65280u},
                   units::Bytes{1u << 20}));
  }
}
BENCHMARK(BM_WanTransfer64kMtu)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_a3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
