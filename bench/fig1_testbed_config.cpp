// F1 — Figure 1 of the paper: "Configuration of the Gigabit Testbed West in
// June 1999.  Jülich and Sankt Augustin are connected via a 2.4 Gbit/s ATM
// link.  The supercomputers are attached to the testbed via HiPPI-ATM
// gateways, several workstations via 622 or 155 Mbit/s ATM interfaces."
// Prints the assembled topology as an attachment table plus a full
// reachability / path-latency audit between all host pairs.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "net/units.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace gtw;

void print_fig1() {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  std::printf("== Figure 1: Gigabit Testbed West configuration (June 1999) "
              "==\n");
  std::printf("WAN: Jülich <-> Sankt Augustin, %.0f km, %.2f Gbit/s SDH/ATM "
              "(OC-48)\n\n", tb.options().distance_km,
              tb.wan_rate().bps() / 1e9);
  std::printf("%-18s | %-14s | %10s\n", "host", "site/fabric",
              "attach rate");
  struct Row {
    const char* name;
    const char* fabric;
  };
  const Row rows[] = {
      {"t3e600", "Jülich HiPPI"},     {"t3e1200", "Jülich HiPPI"},
      {"t90", "Jülich HiPPI"},        {"gw_o200", "Jülich HiPPI+ATM"},
      {"gw_ultra30", "Jülich HiPPI+ATM"}, {"scanner_frontend", "Jülich ATM"},
      {"onyx2_juelich", "Jülich ATM"},    {"workbench_juelich", "Jülich ATM"},
      {"sp2", "GMD HiPPI"},           {"gw_e5000", "GMD HiPPI+ATM"},
      {"onyx2_gmd", "GMD ATM"},       {"e500", "GMD ATM"}};
  for (const Row& r : rows) {
    std::printf("%-18s | %-14s | %7.0f Mbit/s\n", r.name, r.fabric,
                tb.attachment_rate(r.name).bps() / 1e6);
  }

  std::printf("\nreachability / one-way small-packet latency audit:\n");
  int pairs = 0, reached = 0;
  double worst_us = 0.0;
  std::string worst_pair;
  for (const auto& [sname, src] : tb.hosts()) {
    for (const auto& [dname, dst] : tb.hosts()) {
      if (src == dst) continue;
      ++pairs;
      bool got = false;
      const des::SimTime t0 = tb.scheduler().now();
      des::SimTime t1 = t0;
      dst->bind(net::IpProto::kUdp, 60, [&](const net::IpPacket&) {
        got = true;
        t1 = tb.scheduler().now();
      });
      net::IpPacket pkt;
      pkt.dst = dst->id();
      pkt.proto = net::IpProto::kUdp;
      pkt.dst_port = 60;
      pkt.total_bytes = 512;
      src->send_datagram(std::move(pkt));
      tb.scheduler().run();
      dst->unbind(net::IpProto::kUdp, 60);
      if (got) {
        ++reached;
        const double us = (t1 - t0).us();
        if (us > worst_us) {
          worst_us = us;
          worst_pair = sname + " -> " + dname;
        }
      }
    }
  }
  std::printf("  %d/%d ordered pairs reachable; slowest path %s at %.0f us\n",
              reached, pairs, worst_pair.c_str(), worst_us);
  std::printf("  gateway forwards: gw_o200=%llu gw_ultra30=%llu "
              "gw_e5000=%llu\n\n",
              static_cast<unsigned long long>(tb.gw_o200().packets_forwarded()),
              static_cast<unsigned long long>(
                  tb.gw_ultra30().packets_forwarded()),
              static_cast<unsigned long long>(
                  tb.gw_e5000().packets_forwarded()));
}

void BM_TestbedConstruction(benchmark::State& state) {
  for (auto _ : state) {
    testbed::Testbed tb{testbed::TestbedOptions{}};
    benchmark::DoNotOptimize(tb.hosts().size());
  }
}
BENCHMARK(BM_TestbedConstruction)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
