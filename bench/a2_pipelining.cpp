// A2 — ablation of the paper's acknowledged drawback: "The drawback of this
// simple approach is that we make no use of the possibility to pipeline the
// work.  In particular, a new image is requested from the RT-server only
// after the processing and displaying of the previous one is completed."
// Sequential vs pipelined orchestration across scanner repetition times.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>

#include "check/attach.hpp"
#include "check/monitor.hpp"
#include "fire/pipeline.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace gtw;

fire::PipelineResult run(double tr_s, fire::PipelineMode mode, int pes) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  fire::PipelineConfig cfg;
  cfg.tr_s = tr_s;
  cfg.mode = mode;
  cfg.t3e_pes = pes;
  cfg.n_scans = 14;
  fire::FmriPipeline pipe(
      tb.scheduler(),
      {&tb.scanner_frontend(), &tb.gw_o200(), &tb.onyx2_juelich()}, cfg);
#if defined(GTW_CHECK)
  // GTW-San: conservation sweep over the whole testbed, gating the bench.
  check::Monitor mon(tb.scheduler());
  check::attach_testbed(mon, tb);
#endif
  pipe.start();
  tb.scheduler().run();
#if defined(GTW_CHECK)
  mon.finish();
  mon.require_clean("a2_pipelining");
#endif
  return pipe.result();
}

void print_a2() {
  std::printf("== A2: sequential vs pipelined RT-client (256 PEs) ==\n");
  std::printf("%6s | %22s | %22s\n", "TR (s)",
              "sequential period/delay", "pipelined period/delay");
  std::ofstream json("BENCH_a2_pipelining.json");
  json << "{\n  \"bench\": \"a2_pipelining\",\n  \"t3e_pes\": 256,\n"
       << "  \"n_scans\": 14,\n  \"rows\": [\n";
  bool first = true;
  for (double tr : {3.5, 3.0, 2.5, 2.0, 1.5}) {
    const auto seq = run(tr, fire::PipelineMode::kSequential, 256);
    const auto pip = run(tr, fire::PipelineMode::kPipelined, 256);
    std::printf("%6.1f | %9.2f / %9.2f  | %9.2f / %9.2f %s\n", tr,
                seq.sustained_period_s, seq.mean_total_delay_s,
                pip.sustained_period_s, pip.mean_total_delay_s,
                seq.sustained_period_s > tr + 0.05 &&
                        pip.sustained_period_s <= tr + 0.05
                    ? "<- pipelining keeps up, sequential falls behind"
                    : "");
    char row[512];
    std::snprintf(
        row, sizeof row,
        "    {\"tr_s\": %.17g,\n"
        "     \"sequential\": {\"sustained_period_s\": %.17g, "
        "\"mean_total_delay_s\": %.17g, \"scans_skipped\": %d},\n"
        "     \"pipelined\": {\"sustained_period_s\": %.17g, "
        "\"mean_total_delay_s\": %.17g, \"scans_skipped\": %d}}",
        tr, seq.sustained_period_s, seq.mean_total_delay_s, seq.scans_skipped,
        pip.sustained_period_s, pip.mean_total_delay_s, pip.scans_skipped);
    json << (first ? "" : ",\n") << row;
    first = false;
  }
  json << "\n  ]\n}\n";
  std::printf("(paper: sequential throughput = 2.7 s = sum of client + T3E "
              "delays, so TR = 3 s is safe; pipelining pushes the limit to "
              "the slowest single stage)\n");
  json.flush();
  std::printf(json ? "[wrote BENCH_a2_pipelining.json]\n\n"
                   : "[failed to write BENCH_a2_pipelining.json]\n\n");
}

void BM_SequentialPipeline(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run(3.0, fire::PipelineMode::kSequential, 256));
}
BENCHMARK(BM_SequentialPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_a2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
