// A1 — ablation of the paper's planned RVO optimisation: "further
// optimizations are planned for the near future (e.g. the resolution of
// the grid can be reduced and the solution refined using a conjugate
// gradient method).  We expect that it will then be possible to run the
// whole set of modules on a mid-range parallel computer."
// Compares the full raster against coarse-raster + iterative refinement on
// accuracy, reference evaluations, and modelled T3E time.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "exec/machine.hpp"
#include "fire/rvo.hpp"
#include "fire/workload.hpp"
#include "scanner/phantom.hpp"

namespace {

using namespace gtw;

void print_a1() {
  std::printf("== A1: RVO full raster vs coarse raster + refinement ==\n");

  // Ground truth: one voxel per (delay, dispersion) cell of a test set.
  const fire::Dims d{6, 6, 1};
  fire::StimulusDesign stim{8, 8};
  const double tr = 2.0;
  struct Truth {
    std::size_t voxel;
    double delay, disp;
  };
  const Truth truths[] = {{7, 4.0, 1.0}, {14, 6.0, 2.0}, {21, 7.5, 1.5},
                          {28, 5.0, 2.5}};
  const int n_scans = 64;
  std::vector<fire::VolumeF> series;
  for (int t = 0; t < n_scans; ++t) {
    fire::VolumeF img(d, 100.0f);
    series.push_back(img);
  }
  for (const Truth& tr_case : truths) {
    const auto resp =
        fire::make_reference(stim, n_scans, tr,
                             fire::HrfParams{tr_case.delay, tr_case.disp});
    for (int t = 0; t < n_scans; ++t)
      series[static_cast<std::size_t>(t)][tr_case.voxel] +=
          static_cast<float>(5.0 * resp[static_cast<std::size_t>(t)]);
  }

  std::printf("%-22s | %9s | %12s | %12s | %14s\n", "mode", "evals",
              "delay RMSE", "mean corr", "T3E-600 @16PE");
  for (const bool coarse : {false, true}) {
    fire::RvoConfig cfg;
    cfg.delay_steps = 12;
    cfg.disp_steps = 12;
    if (coarse) cfg.mode = fire::RvoMode::kCoarseRefine;
    fire::RvoAnalyzer rvo(d, stim, tr, cfg);
    const fire::RvoResult res = rvo.analyze(series);

    double se = 0.0, corr = 0.0;
    for (const Truth& t : truths) {
      se += (res.fits[t.voxel].delay_s - t.delay) *
            (res.fits[t.voxel].delay_s - t.delay);
      corr += res.fits[t.voxel].best_correlation;
    }

    // Modelled time: scale the RVO work by the measured evaluation ratio.
    fire::FireWorkParams params;
    exec::WorkEstimate w = fire::make_fire_work(params).rvo;
    const double full_evals = static_cast<double>(params.rvo_grid_points);
    const double evals_per_voxel =
        static_cast<double>(res.reference_evaluations) /
        static_cast<double>(d.voxels());
    w.parallel_ops *= evals_per_voxel / full_evals;
    const double t16 =
        exec::time_on(exec::MachineProfile::t3e600(), w, 16).sec();

    std::printf("%-22s | %9llu | %12.2f | %12.3f | %11.2f s\n",
                coarse ? "coarse(4x4) + refine" : "full raster 12x12",
                static_cast<unsigned long long>(res.reference_evaluations),
                std::sqrt(se / 4.0), corr / 4.0, t16);
  }
  std::printf("(the refinement reaches the same optimum with a fraction of "
              "the evaluations -> the module set fits a mid-range machine, "
              "as the paper expected)\n\n");
}

void BM_RvoFullRaster(benchmark::State& state) {
  const fire::Dims d{4, 4, 2};
  fire::StimulusDesign stim{8, 8};
  std::vector<fire::VolumeF> series(32, fire::VolumeF(d, 100.0f));
  fire::RvoConfig cfg;
  cfg.delay_steps = 8;
  cfg.disp_steps = 8;
  cfg.min_intensity_fraction = 0.0;
  fire::RvoAnalyzer rvo(d, stim, 2.0, cfg);
  for (auto _ : state) benchmark::DoNotOptimize(rvo.analyze(series));
}
BENCHMARK(BM_RvoFullRaster)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_a1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
