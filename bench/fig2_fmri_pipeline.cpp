// F2 — Figure 2 of the paper: "Setup of the fMRI experiment.  The raw
// scanner data are transferred through a front-end workstation to the T3E
// where they are processed.  From there, anatomical and functional brain
// images are transferred to either a workstation with a 2-D display or over
// the testbed to an Onyx 2 in the GMD.  The rendered images are sent back
// over the testbed to a Responsive Workbench in Jülich."
// Runs the full distributed pipeline (with real numerics on the synthetic
// scanner) and prints the per-stage event log for the first scans plus the
// detected activation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string_view>

#include "check/attach.hpp"
#include "check/monitor.hpp"
#include "fire/pipeline.hpp"
#include "obs/exporter.hpp"
#include "obs/instrument.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "obs/span.hpp"
#include "scanner/phantom.hpp"
#include "testbed/testbed.hpp"
#include "trace/trace.hpp"
#include "viz/merge.hpp"
#include "viz/workbench.hpp"

namespace {

using namespace gtw;

void print_fig2(bool with_trace) {
  std::printf("== Figure 2: distributed realtime-fMRI pipeline ==\n");
  testbed::Testbed tb{testbed::TestbedOptions{}};

  scanner::FmriConfig scfg;
  scfg.dims = {32, 32, 8};  // reduced matrix so the numerics run quickly
  scfg.regions = {{10, 20, 4, 3.0, 0.05}};
  scfg.expected_scans = 12;
  scanner::FmriSeriesGenerator gen(scfg);

  fire::AnalysisConfig acfg;
  acfg.stimulus = scfg.stimulus;
  acfg.hrf = scfg.hrf;
  acfg.tr_s = scfg.tr_s;
  acfg.motion_correction = false;
  acfg.detrend_cfg.expected_scans = scfg.expected_scans;
  fire::AnalysisEngine engine(scfg.dims, acfg);

  fire::PipelineConfig cfg;
  cfg.n_scans = 12;
  cfg.t3e_pes = 256;
  fire::FmriPipeline pipe(
      tb.scheduler(),
      {&tb.scanner_frontend(), &tb.gw_o200(), &tb.onyx2_juelich()}, cfg,
      [&gen](int t) { return gen.acquire(t); }, &engine);

  // --trace: record a VAMPIR-style stage trace and attach the observability
  // registry.  Everything here is read-only probes plus sampler ticks, so
  // the pipeline results (and BENCH_*.json) are unchanged by tracing.
  trace::TraceRecorder rec(4);  // transfer / compute / return / display
  obs::Registry reg;
  obs::TimeSeriesSampler sampler(tb.scheduler(), reg);
  obs::SpanTracer spans;
  if (with_trace) {
    pipe.attach_trace(&rec);
    // Causal span tracing (DESIGN.md section 13): per-scan latency trees
    // rooted at pipeline admission.  Observe-only — attaching the hook
    // schedules nothing and BENCH_*.json stays byte-identical.
    tb.scheduler().set_span_hook(&spans);
    obs::instrument_link(reg, tb.wan_link_j_to_g(), "net.link.wan_j_to_g");
    obs::instrument_link(reg, tb.wan_link_g_to_j(), "net.link.wan_g_to_j");
    obs::instrument_host(reg, tb.scanner_frontend());
    obs::instrument_host(reg, tb.gw_o200());
    obs::instrument_host(reg, tb.onyx2_juelich());
    obs::instrument_atm_switch(reg, tb.atm_juelich());
    obs::instrument_atm_switch(reg, tb.atm_gmd());
    obs::bridge_flow_metrics(reg, pipe.metrics(), "fire");
    sampler.watch("net.link.wan_j_to_g.queue_bytes");
    sampler.watch("net.link.wan_j_to_g.utilization");
    sampler.watch_prefix("fire.stage.");
    sampler.watch("fire.graph.completed");
    sampler.sample_every(des::SimTime::milliseconds(500),
                         des::SimTime::seconds(50));
  }

#if defined(GTW_CHECK)
  // GTW-San: whole-testbed conservation sweep plus the pipeline's flow
  // ledger; attaching schedules nothing, so traces stay comparable.
  check::Monitor mon(tb.scheduler());
  check::attach_testbed(mon, tb);
  check::attach_flow_metrics(mon, pipe.metrics(), "fire");
  check::attach_span_tracer(mon, spans);
#endif
  pipe.start();
  tb.scheduler().run();
#if defined(GTW_CHECK)
  mon.finish();
  mon.require_clean("fig2_fmri_pipeline");
#endif

  const fire::PipelineResult res = pipe.result();
  std::printf("\nscan |  acquired  at_server at_compute  processed  "
              "at_client  displayed   (s)\n");
  for (const auto& r : res.records) {
    if (r.index >= 5) break;
    std::printf("%4d | %9.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n", r.index,
                r.acquired.sec(), r.at_server.sec(), r.at_compute.sec(),
                r.processed.sec(), r.at_client.sec(), r.displayed.sec());
  }
  std::printf("\nmean total delay %.2f s (paper: < 5 s @ 256 PEs); "
              "sustained period %.2f s\n", res.mean_total_delay_s,
              res.sustained_period_s);

  // The Onyx-2 leg: merge functional onto the anatomical volume.
  const fire::VolumeF anat = scanner::make_anatomical({128, 128, 64});
  const viz::MergeResult merged =
      viz::merge_functional(anat, engine.correlation_map(), 0.35f);
  std::printf("3-D merge on Onyx2: %zu anatomical voxels flagged active, "
              "peak r = %.2f\n", merged.activated_voxels,
              merged.peak_correlation);
  const std::size_t driven = [&] {
    std::size_t n = 0;
    const auto mask = gen.activation_mask();
    for (std::size_t i = 0; i < mask.size(); ++i)
      if (mask[i]) ++n;
    return n;
  }();
  std::printf("(ground truth: %zu functional voxels were driven)\n", driven);

  std::ofstream json("BENCH_fig2_fmri_pipeline.json");
  json << "{\n  \"bench\": \"fig2_fmri_pipeline\",\n"
       << "  \"n_scans\": " << cfg.n_scans << ",\n  \"t3e_pes\": "
       << cfg.t3e_pes << ",\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"mean_total_delay_s\": %.17g,\n"
                "  \"sustained_period_s\": %.17g,\n",
                res.mean_total_delay_s, res.sustained_period_s);
  json << buf << "  \"records\": [\n";
  for (std::size_t i = 0; i < res.records.size(); ++i) {
    const auto& r = res.records[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"scan\": %d, \"acquired_s\": %.17g, "
                  "\"at_server_s\": %.17g, \"at_compute_s\": %.17g, "
                  "\"processed_s\": %.17g, \"at_client_s\": %.17g, "
                  "\"displayed_s\": %.17g}%s",
                  r.index, r.acquired.sec(), r.at_server.sec(),
                  r.at_compute.sec(), r.processed.sec(), r.at_client.sec(),
                  r.displayed.sec(),
                  i + 1 < res.records.size() ? ",\n" : "\n");
    json << buf;
  }
  json << "  ],\n  \"merge\": {\"activated_voxels\": "
       << merged.activated_voxels;
  std::snprintf(buf, sizeof buf, ", \"peak_correlation\": %.17g",
                static_cast<double>(merged.peak_correlation));
  json << buf << ", \"driven_voxels\": " << driven << "}\n}\n";
  json.flush();
  std::printf(json ? "[wrote BENCH_fig2_fmri_pipeline.json]\n\n"
                   : "[failed to write BENCH_fig2_fmri_pipeline.json]\n\n");

  if (with_trace) {
    {
      std::ofstream gtwt("OBS_fig2_fmri_pipeline.trace.gtwt",
                         std::ios::binary);
      rec.write(gtwt);
    }
    {
      std::ofstream chrome("OBS_fig2_fmri_pipeline.chrome.json",
                           std::ios::binary);
      obs::ChromeTraceOptions copts;
      copts.process_name = "fig2_fmri_pipeline";
      copts.series = &sampler;
      copts.marks_from = &reg;
      obs::write_chrome_trace(chrome, rec, copts);
    }
    {
      std::ofstream metrics("OBS_fig2_fmri_pipeline.metrics.json",
                            std::ios::binary);
      obs::write_metrics_json(metrics, reg, "fig2_fmri_pipeline");
    }
    {
      std::ofstream series("OBS_fig2_fmri_pipeline.series.json",
                           std::ios::binary);
      obs::write_series_json(series, sampler);
    }
    {
      std::ofstream sp("OBS_fig2_fmri_pipeline.spans.json", std::ios::binary);
      spans.write_json(sp, "fig2_fmri_pipeline");
    }
    std::printf("[wrote OBS_fig2_fmri_pipeline.{trace.gtwt,chrome.json,"
                "metrics.json,series.json,spans.json}]\n\n");
  }
}

void BM_AnalysisScan(benchmark::State& state) {
  scanner::FmriConfig scfg;
  scfg.dims = {32, 32, 8};
  scanner::FmriSeriesGenerator gen(scfg);
  fire::AnalysisConfig acfg;
  acfg.stimulus = scfg.stimulus;
  acfg.tr_s = scfg.tr_s;
  acfg.motion_correction = false;
  fire::AnalysisEngine engine(scfg.dims, acfg);
  const fire::VolumeF img = gen.acquire(0);
  for (auto _ : state) benchmark::DoNotOptimize(engine.process_scan(img));
}
BENCHMARK(BM_AnalysisScan)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip our own --trace flag before google-benchmark sees the arguments.
  bool with_trace = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--trace") {
      with_trace = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  print_fig2(with_trace);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
