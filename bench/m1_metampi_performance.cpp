// M1 — the "Metacomputing Tools" project's own evaluation (the paper's
// companion reference [1], Eickermann/Grund/Henrichs, "Performance issues
// of distributed MPI applications in a German gigabit testbed"): latency
// and bandwidth of the meta communication library inside a machine vs
// between machines, and collective cost as rank counts and machine splits
// grow.  The headline metacomputing lesson is the orders-of-magnitude gap
// between the two fabrics — the reason only loosely-coupled applications
// profit from the metacomputer.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "meta/communicator.hpp"
#include "net/probe.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace gtw;

struct Rig {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  meta::Metacomputer mc{tb.scheduler()};
  int t3e, sp2;

  Rig() {
    meta::MachineSpec a;
    a.name = "T3E";
    a.max_pes = 512;
    a.frontend = &tb.t3e600();
    meta::MachineSpec b;
    b.name = "SP2";
    b.max_pes = 64;
    b.frontend = &tb.sp2();
    t3e = mc.add_machine(a);
    sp2 = mc.add_machine(b);
    net::TcpConfig cfg;
    cfg.mss = tb.options().atm_mtu - units::Bytes{40};
    cfg.recv_buffer = units::Bytes{1u << 20};
    mc.link_machines(t3e, sp2, cfg, 7000);
  }
};

// One message from rank 0 to rank 1; returns (latency of first byte-train,
// i.e. delivery time) in seconds.
double message_time(Rig& rig, bool cross_machine, std::uint64_t bytes) {
  std::vector<meta::ProcLoc> locs;
  locs.push_back({rig.t3e, 0});
  locs.push_back(cross_machine ? meta::ProcLoc{rig.sp2, 0}
                               : meta::ProcLoc{rig.t3e, 1});
  meta::Communicator comm(rig.mc, locs);
  const des::SimTime t0 = rig.tb.scheduler().now();
  des::SimTime t1 = t0;
  comm.recv(1, 0, 0, [&](const meta::Message&) {
    t1 = rig.tb.scheduler().now();
  });
  comm.send(0, 1, 0, bytes);
  rig.tb.scheduler().run();
  return (t1 - t0).sec();
}

void print_m1() {
  std::printf("== M1: meta-library performance, intra-machine vs WAN ==\n");
  std::printf("%10s | %14s | %14s | %8s\n", "message", "intra (T3E)",
              "inter (WAN)", "ratio");
  Rig rig;  // reused; each probe builds a fresh communicator
  for (std::uint64_t bytes : {0ull, 1024ull, 65536ull, 1048576ull,
                              8388608ull}) {
    Rig r1, r2;
    const double intra = message_time(r1, false, bytes);
    const double inter = message_time(r2, true, bytes);
    std::printf("%8llu B | %11.3f ms | %11.3f ms | %7.0fx\n",
                static_cast<unsigned long long>(bytes), intra * 1e3,
                inter * 1e3, inter / std::max(intra, 1e-12));
  }

  std::printf("\nbarrier cost vs rank layout (all ranks enter at t=0):\n");
  for (const auto& [na, nb] : {std::pair{4, 0}, std::pair{16, 0},
                               std::pair{2, 2}, std::pair{8, 8}}) {
    Rig r;
    std::vector<meta::ProcLoc> locs;
    for (int i = 0; i < na; ++i) locs.push_back({r.t3e, i});
    for (int i = 0; i < nb; ++i) locs.push_back({r.sp2, i});
    meta::Communicator comm(r.mc, std::move(locs));
    des::SimTime done;
    int remaining = na + nb;
    for (int rank = 0; rank < na + nb; ++rank) {
      comm.barrier(rank, [&]() {
        if (--remaining == 0) done = r.tb.scheduler().now();
      });
    }
    r.tb.scheduler().run();
    std::printf("  %2d T3E + %2d SP2 ranks: %8.3f ms %s\n", na, nb,
                done.ms(), nb > 0 ? "(crosses the WAN)" : "");
  }

  std::printf("\nraw path check (UDP echo, 56-byte probes):\n");
  {
    testbed::Testbed tb{testbed::TestbedOptions{}};
    net::EchoResponder echo(tb.sp2(), 9999);
    net::Pinger ping(tb.t3e600(), tb.sp2().id(), 9999, 10);
    ping.start([](const net::PingReport& rep) {
      std::printf("  t3e600 -> sp2: %d/%d replies, rtt %.3f ms mean "
                  "(min %.3f)\n", rep.received, rep.sent, rep.rtt_ms.mean(),
                  rep.rtt_ms.min());
    });
    tb.scheduler().run();
  }
  std::printf("\n");
}

void BM_IntraMessage(benchmark::State& state) {
  for (auto _ : state) {
    Rig r;
    benchmark::DoNotOptimize(message_time(r, false, 65536));
  }
}
BENCHMARK(BM_IntraMessage)->Unit(benchmark::kMicrosecond);

void BM_WanMessage(benchmark::State& state) {
  for (auto _ : state) {
    Rig r;
    benchmark::DoNotOptimize(message_time(r, true, 65536));
  }
}
BENCHMARK(BM_WanMessage)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_m1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
