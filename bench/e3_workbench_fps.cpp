// E3 — the Responsive Workbench bandwidth statement of section 4:
//   "the workbench has two projection planes, each of them displays stereo
//    images of 1024x768 true color (24 Bit) pixels.  This means that less
//    than 8 frames/second can be transferred over a 622 Mbit/s ATM network
//    using classical IP."
// Prints the closed-form CLIP/AAL5 arithmetic and the event-driven measured
// rate on the simulated testbed, sweeping the link rate.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "net/units.hpp"
#include "testbed/testbed.hpp"
#include "viz/workbench.hpp"

namespace {

using namespace gtw;

void print_e3() {
  viz::WorkbenchFormat fmt;
  std::printf("== E3: workbench frame rate over classical IP ==\n");
  std::printf("frame: %d x %d x %d planes x %s, %.2f MByte/frame\n",
              fmt.width, fmt.height, fmt.planes,
              fmt.stereo ? "stereo" : "mono",
              static_cast<double>(fmt.frame_bytes().count()) / 1e6);

  std::printf("\nclosed-form (fragmentation + LLC/SNAP + AAL5 cell tax):\n");
  for (units::BitRate rate :
       {net::kOc3Line, net::kOc12Line, net::kOc48Line}) {
    std::printf("  %7.0f Mbit/s link: %5.2f frames/s\n", rate.mbps(),
                viz::classical_ip_fps(fmt, rate));
  }
  std::printf("paper: < 8 frames/s at 622 Mbit/s\n");

  std::printf("\nmeasured on the simulated testbed (Onyx2 GMD -> workbench "
              "Jülich over the WAN, TCP, render overlapped):\n");
  for (auto era : {testbed::WanEra::kOc12_1997, testbed::WanEra::kOc48_1998}) {
    testbed::Testbed tb{testbed::TestbedOptions{era}};
    net::TcpConfig tcp;
    tcp.mss = tb.options().atm_mtu - units::Bytes{40};
    tcp.recv_buffer = units::Bytes{1u << 20};
    viz::FrameStreamer streamer(tb.scheduler(), tb.onyx2_gmd(),
                                tb.workbench_juelich(), fmt,
                                viz::RenderModel{}, 40, tcp);
    streamer.start();
    tb.scheduler().run();
    std::printf("  %-10s: %5.2f frames/s (%d frames delivered)\n",
                era == testbed::WanEra::kOc12_1997 ? "OC-12" : "OC-48",
                streamer.achieved_fps(), streamer.frames_delivered());
  }
  std::printf("(on OC-48 the workbench host's 622 Mbit/s ATM adapter is the "
              "remaining bottleneck, as the paper anticipates while waiting "
              "for 622 Mbit/s Onyx2 interfaces)\n\n");
}

void BM_ClassicalIpFps(benchmark::State& state) {
  viz::WorkbenchFormat fmt;
  for (auto _ : state)
    benchmark::DoNotOptimize(viz::classical_ip_fps(fmt, net::kOc12Line));
}
BENCHMARK(BM_ClassicalIpFps);

}  // namespace

int main(int argc, char** argv) {
  print_e3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
