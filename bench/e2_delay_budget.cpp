// E2 — the end-to-end delay budget of section 4:
//   "The RT-server receives the data approximately 1.5 seconds after the
//    scan ... The data transfers and the exchange of control messages ...
//    sum up to 1.1 seconds.  Another 0.6 seconds elapse after the data has
//    arrived at the client ... When 256 PEs are used on the T3E, this
//    leads to a total delay of less than 5 seconds."
//   "the throughput of the application ... is the sum of the delays in the
//    RT-client and the T3E, which is 2.7 seconds ... the scanner can
//    safely be operated with a repetition rate of 3 seconds."
// Sweeps the PE count and prints the delay decomposition per row.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>

#include "check/attach.hpp"
#include "check/monitor.hpp"
#include "fire/pipeline.hpp"
#include "flow/graph.hpp"
#include "meta/coallocation.hpp"
#include "meta/metacomputer.hpp"
#include "meta/path_transport.hpp"
#include "obs/span.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace gtw;

fire::PipelineResult run_pipeline(int pes, fire::PipelineMode mode,
                                  double tr_s) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  fire::PipelineConfig cfg;
  cfg.t3e_pes = pes;
  cfg.mode = mode;
  cfg.tr_s = tr_s;
  cfg.n_scans = 10;
  fire::FmriPipeline pipe(
      tb.scheduler(),
      {&tb.scanner_frontend(), &tb.gw_o200(), &tb.onyx2_juelich()}, cfg);
  pipe.start();
  tb.scheduler().run();
  return pipe.result();
}

void print_e2() {
  std::printf("== E2: fMRI end-to-end delay budget (sequential pipeline, "
              "TR = 3 s) ==\n");
  std::printf("%4s | %9s | %17s | %9s | %11s | %11s | %7s\n", "PEs",
              "compute", "transfers+control", "display", "total delay",
              "safe TR (s)", "skipped");
  for (int pes : {16, 32, 64, 128, 256}) {
    const auto res = run_pipeline(pes, fire::PipelineMode::kSequential, 3.0);
    std::printf("%4d | %9.2f | %17.2f | %9.2f | %11.2f | %11.2f | %7d\n",
                pes, res.mean_compute_s, res.mean_transfer_control_s, 0.6,
                res.mean_total_delay_s, res.min_safe_tr_s,
                res.scans_skipped);
  }
  std::printf("paper @256 PEs: compute 1.01, transfers+control 1.1, display "
              "0.6, scan->server 1.5, total < 5, safe TR ~2.7-3\n");

  // The paper's concluding concern: "the problem of simultaneous resource
  // allocation in a distributed environment will become more apparent when
  // the application is used for clinical research."  A morning of clinical
  // sessions through the UNICORE-style co-allocation broker:
  std::printf("\nclinical outlook: co-allocating scanner + 256 T3E PEs + "
              "8 Onyx2 CPUs per 30-min session\n");
  {
    testbed::Testbed tb{testbed::TestbedOptions{}};
    meta::Metacomputer mc(tb.scheduler());
    meta::MachineSpec scanner_m;
    scanner_m.name = "MRI scanner";
    scanner_m.max_pes = 1;
    meta::MachineSpec t3e_m;
    t3e_m.name = "T3E";
    t3e_m.max_pes = 512;
    meta::MachineSpec onyx_m;
    onyx_m.name = "Onyx2";
    onyx_m.max_pes = 12;
    const int scanner = mc.add_machine(scanner_m);
    const int t3e = mc.add_machine(t3e_m);
    const int onyx = mc.add_machine(onyx_m);
    meta::CoallocationBroker broker(mc);
    for (int i = 0; i < 5; ++i) {
      const meta::Reservation r = broker.reserve(
          {{scanner, 1}, {t3e, 256}, {onyx, 8}},
          des::SimTime::seconds(1800.0), des::SimTime::zero());
      std::printf("  session %d: %7.0f s .. %7.0f s\n", i + 1,
                  r.start.sec(), r.end.sec());
    }
    std::printf("  T3E utilisation over the morning: %.0f%% (batch jobs can "
                "fill the other half)\n",
                100.0 * broker.utilisation(t3e, des::SimTime::zero(),
                                           des::SimTime::seconds(9000.0)));
  }
  std::printf("\n");
}

// The spans companion to the printed table: the same sequential
// scan->preprocess->WAN transfer->display loop, but run over the real
// striped WAN path so every scan's end-to-end latency decomposes into a
// causal span tree crossing flow (admission/compute), meta (chunk
// striping), tcp (segments, stalls) and link (serialize/propagate).
// Writes OBS_e2_delay_budget.spans.json; `gtw-trace <it> --budget`
// reproduces the delay-budget table above from the spans alone, and
// `--critical-path worst` prints the per-phase waterfall of the slowest
// scan.  Sits under the double-run determinism replay gate.
void emit_e2_spans() {
  std::printf("spans: tracing %d scans through the striped WAN path\n", 4);
  testbed::Testbed tb{testbed::TestbedOptions{}};
  obs::SpanTracer spans;
  tb.scheduler().set_span_hook(&spans);

  meta::Metacomputer mc{tb.scheduler()};
  meta::MachineSpec a;
  a.name = "JUELICH";
  a.frontend = &tb.gw_o200();
  meta::MachineSpec b;
  b.name = "GMD";
  b.frontend = &tb.gw_e5000();
  const int ma = mc.add_machine(a);
  const int mb = mc.add_machine(b);
  meta::PathConfig pc;
  pc.tcp.mss = tb.options().atm_mtu - units::Bytes{40};
  pc.tcp.recv_buffer = units::Bytes{4u << 20};
  pc.streams = 4;
  pc.chunk_bytes = units::Bytes{256u << 10};
  pc.stream_window = units::Bytes{2u << 20};
  pc.chunk_timeout = des::SimTime::milliseconds(400);
  mc.link_machines(ma, mb, pc, 7000);

  flow::GraphConfig gcfg;
  gcfg.max_in_flight = 1;  // the paper's sequential request/reply loop
  flow::StageGraph graph(tb.scheduler(), gcfg);

  flow::StageConfig pre;
  pre.name = "preprocess";
  pre.body = [&tb](flow::StageContext, flow::Item&, flow::Done done) {
    tb.scheduler().schedule_after(des::SimTime::milliseconds(200),
                                  std::move(done));
  };
  graph.add_stage(std::move(pre));

  flow::StageConfig xfer;
  xfer.name = "wan-transfer";
  xfer.body = [&mc, ma, mb](flow::StageContext, flow::Item&,
                            flow::Done done) {
    // 2 MB functional volume, striped into chunks over the WAN path; the
    // item's trace context rides the chunks into tcp and the links.
    mc.wan_send(ma, mb, units::Bytes{2u << 20},
                [done = std::move(done)] { done(); });
  };
  graph.add_stage(std::move(xfer));

  flow::StageConfig display;
  display.name = "display";
  display.body = [&tb](flow::StageContext, flow::Item&, flow::Done done) {
    tb.scheduler().schedule_after(des::SimTime::milliseconds(600),
                                  std::move(done));
  };
  graph.add_stage(std::move(display));

#if defined(GTW_CHECK)
  check::Monitor mon(tb.scheduler());
  check::attach_testbed(mon, tb);
  check::attach_span_tracer(mon, spans);
#endif

  for (int i = 0; i < 4; ++i) {
    tb.scheduler().schedule_at(des::SimTime::seconds(3.0 * i),
                               [&graph, i] { graph.push(i); });
  }
  tb.scheduler().run();
#if defined(GTW_CHECK)
  mon.finish();
  mon.require_clean("e2_delay_budget");
#endif

  std::ofstream sp("OBS_e2_delay_budget.spans.json", std::ios::binary);
  spans.write_json(sp, "e2_delay_budget");
  sp.flush();
  std::printf(sp ? "[wrote OBS_e2_delay_budget.spans.json — try gtw-trace "
                   "OBS_e2_delay_budget.spans.json --budget]\n\n"
                 : "[failed to write OBS_e2_delay_budget.spans.json]\n\n");
}

void BM_PipelineRun(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_pipeline(256, fire::PipelineMode::kSequential, 3.0));
  }
}
BENCHMARK(BM_PipelineRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_e2();
  emit_e2_spans();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
