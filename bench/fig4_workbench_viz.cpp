// F4 — Figure 4 of the paper: "A human head generated from MRI data using
// AVS.  The light areas are regions of the brain that are activated by
// moving the right hand."
// Non-graphical equivalent: run the analysis, merge the functional map onto
// the 256x256x128 anatomical head, report the activated regions, and show
// the workbench streaming budget for displaying the result remotely.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "fire/analysis.hpp"
#include "scanner/phantom.hpp"
#include "viz/merge.hpp"
#include "viz/workbench.hpp"

namespace {

using namespace gtw;

void print_fig4() {
  std::printf("== Figure 4: 3-D head with activation overlay ==\n");

  // Functional run on the standard matrix (reduced scan count for speed).
  scanner::FmriConfig scfg;
  scfg.dims = {32, 32, 8};
  scfg.regions = {{9, 20, 4, 3.0, 0.06}};   // "right hand" motor area
  scfg.expected_scans = 32;
  scanner::FmriSeriesGenerator gen(scfg);

  fire::AnalysisConfig acfg;
  acfg.stimulus = scfg.stimulus;
  acfg.hrf = scfg.hrf;
  acfg.tr_s = scfg.tr_s;
  acfg.motion_correction = false;
  acfg.detrend_cfg.expected_scans = scfg.expected_scans;
  fire::AnalysisEngine engine(scfg.dims, acfg);
  for (int t = 0; t < scfg.expected_scans; ++t)
    engine.process_scan(gen.acquire(t));

  // High-resolution anatomical head, as acquired before the measurement.
  const fire::Dims anat_dims{256, 256, 128};
  const fire::VolumeF anat = scanner::make_anatomical(anat_dims);
  const viz::MergeResult merged =
      viz::merge_functional(anat, engine.correlation_map(), 0.35f);

  std::printf("anatomical volume: %dx%dx%d (%.1f MByte)\n", anat_dims.nx,
              anat_dims.ny, anat_dims.nz,
              static_cast<double>(anat.size_bytes()) / 1e6);
  std::printf("activated voxels on the anatomical grid: %zu (peak r = "
              "%.2f)\n", merged.activated_voxels, merged.peak_correlation);

  // Maximum-intensity projection of the overlay, viewed from the front.
  std::printf("\nfrontal projection of the activation (64x32 downsample, "
              "'#' = active column):\n");
  for (int z = anat_dims.nz - 1; z >= 0; z -= 4) {
    for (int x = 0; x < anat_dims.nx; x += 4) {
      bool active = false;
      bool head = false;
      for (int y = 0; y < anat_dims.ny && !active; ++y) {
        if (merged.overlay.at(x, y, z)) active = true;
        if (anat.at(x, y, z) > 100.0f) head = true;
      }
      std::putchar(active ? '#' : (head ? '.' : ' '));
    }
    std::putchar('\n');
  }

  // Interactive manipulation budget (rotate/zoom/slice in realtime): frames
  // the Onyx2 must push to the workbench.
  viz::WorkbenchFormat fmt;
  viz::RenderModel render;
  std::printf("\nworkbench interaction: render %.1f ms/frame on 12-proc "
              "Onyx2; remote display caps at %.2f frames/s over 622 Mbit/s "
              "classical IP (paper: the AVS prototype was 'too slow for "
              "interactive manipulations')\n\n",
              render.frame_time(fmt).ms(),
              viz::classical_ip_fps(fmt, net::kOc12Line));
}

void BM_MergeFunctional(benchmark::State& state) {
  const fire::VolumeF anat = scanner::make_anatomical({128, 128, 64});
  fire::VolumeF corr({32, 32, 8}, 0.0f);
  corr.at(10, 20, 4) = 0.8f;
  for (auto _ : state)
    benchmark::DoNotOptimize(viz::merge_functional(anat, corr, 0.35f));
}
BENCHMARK(BM_MergeFunctional)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
