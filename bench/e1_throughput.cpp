// E1 — the throughput measurements stated in section 2 of the paper:
//   * HiPPI TCP inside the local Cray complex: > 430 Mbit/s at 64 KB MTU
//   * Cray T3E (Jülich) <-> IBM SP2 (Sankt Augustin): > 260 Mbit/s,
//     limited by the SP2's microchannel I/O, not by the 2.4 Gbit/s WAN.
// Also sweeps the WAN era (B-WiN 155 / OC-12 / OC-48) for the same paths.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "net/tcp.hpp"
#include "net/units.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace gtw;

double measure(testbed::Testbed& tb, net::Host& a, net::Host& b,
               units::Bytes mtu, units::Bytes amount = units::Bytes{48u << 20}) {
  net::TcpConfig cfg;
  cfg.mss = mtu - units::Bytes{net::kIpHeaderBytes + net::kTcpHeaderBytes};
  cfg.recv_buffer = units::Bytes{1u << 20};
  return net::run_bulk_transfer(tb.scheduler(), a, b, amount, cfg)
      .goodput.bps();
}

void print_e1() {
  std::printf("== E1: measured TCP throughputs on the testbed ==\n");
  {
    testbed::Testbed tb{testbed::TestbedOptions{}};
    const double local = measure(tb, tb.t3e600(), tb.t3e1200(),
                                 net::kMtuHippi);
    std::printf("local Cray complex, HiPPI, 64KB MTU : %7.1f Mbit/s "
                "(paper: >430)\n", local / 1e6);
  }
  {
    testbed::Testbed tb{testbed::TestbedOptions{}};
    const double wan = measure(tb, tb.t3e600(), tb.sp2(),
                               tb.options().atm_mtu);
    std::printf("T3E -> SP2 across OC-48 WAN         : %7.1f Mbit/s "
                "(paper: ~260, SP2 I/O limited)\n", wan / 1e6);
  }
  std::printf("\nWAN-era sweep, T3E -> SP2 (the SP2 bottleneck persists on "
              "every fast WAN):\n");
  for (auto era : {testbed::WanEra::kBWin155, testbed::WanEra::kOc12_1997,
                   testbed::WanEra::kOc48_1998}) {
    testbed::Testbed tb{testbed::TestbedOptions{era}};
    const char* name = era == testbed::WanEra::kBWin155 ? "B-WiN 155"
                       : era == testbed::WanEra::kOc12_1997 ? "OC-12 622"
                                                            : "OC-48 2400";
    const double wan = measure(tb, tb.t3e600(), tb.sp2(),
                               tb.options().atm_mtu);
    std::printf("  %-11s: %7.1f Mbit/s\n", name, wan / 1e6);
  }
  std::printf("\nline stability (paper: 'initial stability problems ... "
              "related to signal attenuation and timing ... have been "
              "solved'):\n");
  for (double ber : {1e-7, 1e-8, 0.0}) {
    testbed::Testbed tb{testbed::TestbedOptions{}};
    // Degrade the WAN fibre in both directions.
    // (Port 0 on each switch is the WAN trunk by construction.)
    const char* label = ber == 0.0 ? "after fix (clean)"
                        : ber == 1e-8 ? "during debug (BER 1e-8)"
                                      : "early testbed (BER 1e-7)";
    // Rebuild with the BER by running the transfer through a custom path is
    // not possible post-construction; instead approximate by injecting the
    // error rate into the switch's WAN egress links.
    tb.set_wan_bit_error_rate(ber);
    const double t = measure(tb, tb.onyx2_juelich(), tb.onyx2_gmd(),
                             tb.options().atm_mtu, units::Bytes{16u << 20});
    std::printf("  %-26s: %7.1f Mbit/s\n", label, t / 1e6);
  }

  std::printf("\nworkstation <-> workstation across the WAN (host-NIC "
              "limited on OC-48):\n");
  for (auto era : {testbed::WanEra::kBWin155, testbed::WanEra::kOc12_1997,
                   testbed::WanEra::kOc48_1998}) {
    testbed::Testbed tb{testbed::TestbedOptions{era}};
    const char* name = era == testbed::WanEra::kBWin155 ? "B-WiN 155"
                       : era == testbed::WanEra::kOc12_1997 ? "OC-12 622"
                                                            : "OC-48 2400";
    const double t = measure(tb, tb.onyx2_juelich(), tb.onyx2_gmd(),
                             tb.options().atm_mtu);
    std::printf("  %-11s: %7.1f Mbit/s\n", name, t / 1e6);
  }
  std::printf("\n");
}

void BM_BulkTransferLocalHippi(benchmark::State& state) {
  for (auto _ : state) {
    testbed::Testbed tb{testbed::TestbedOptions{}};
    benchmark::DoNotOptimize(
        measure(tb, tb.t3e600(), tb.t3e1200(), net::kMtuHippi,
                units::Bytes{8u << 20}));
  }
}
BENCHMARK(BM_BulkTransferLocalHippi)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_e1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
