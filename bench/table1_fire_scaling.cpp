// Reproduces Table 1 of the paper: "Time spent for processing a 64x64x16
// image on the Cray T3E for various number of PEs.  All times are given in
// seconds."  Columns: PEs | filter | motion corr. | RVO | total | speedup.
//
// The kernels' work estimates come from the actual implementations in
// src/fire (see fire/workload.cpp); the T3E-600 machine model is in
// exec::MachineProfile::t3e600().  Google-benchmark micro-benchmarks of the
// real kernels on this host follow the table.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "exec/machine.hpp"
#include "fire/filters.hpp"
#include "fire/motion.hpp"
#include "fire/rigid.hpp"
#include "fire/workload.hpp"
#include "scanner/phantom.hpp"

namespace {

void print_table1() {
  using namespace gtw;
  const exec::MachineProfile t3e = exec::MachineProfile::t3e600();
  const fire::FireWork w = fire::make_fire_work(fire::FireWorkParams{});

  struct PaperRow {
    int pes;
    double filter, motion, rvo, total, speedup;
  };
  const PaperRow paper[] = {
      {1, 0.18, 1.55, 109.27, 111.00, 1.0},  {2, 0.09, 0.91, 54.65, 55.65, 2.0},
      {4, 0.05, 0.56, 27.36, 27.97, 4.0},    {8, 0.03, 0.46, 13.74, 14.23, 7.8},
      {16, 0.02, 0.35, 6.93, 7.30, 15.2},    {32, 0.02, 0.33, 3.51, 3.86, 28.7},
      {64, 0.03, 0.35, 1.85, 2.22, 50.0},    {128, 0.03, 0.34, 1.00, 1.37, 81.1},
      {256, 0.04, 0.40, 0.59, 1.01, 110.5}};

  std::printf("== Table 1: FIRE module times on Cray T3E-600, 64x64x16 "
              "image ==\n");
  std::printf("%4s | %18s | %18s | %18s | %18s | %14s\n", "PEs",
              "filter (ours/paper)", "motion (ours/paper)",
              "RVO (ours/paper)", "total (ours/paper)", "speedup (o/p)");
  const double t1 = exec::time_on(t3e, w.filter, 1).sec() +
                    exec::time_on(t3e, w.motion, 1).sec() +
                    exec::time_on(t3e, w.rvo, 1).sec();
  for (const PaperRow& row : paper) {
    const double f = exec::time_on(t3e, w.filter, row.pes).sec();
    const double m = exec::time_on(t3e, w.motion, row.pes).sec();
    const double r = exec::time_on(t3e, w.rvo, row.pes).sec();
    const double tot = f + m + r;
    std::printf("%4d | %8.2f / %7.2f | %8.2f / %7.2f | %8.2f / %7.2f | "
                "%8.2f / %7.2f | %6.1f / %5.1f\n",
                row.pes, f, row.filter, m, row.motion, r, row.rvo, tot,
                row.total, t1 / tot, row.speedup);
  }
  std::printf("\n(paper note reproduced: larger images take more time but "
              "achieve better speedups)\n");
  const fire::FireWorkParams big{{128, 128, 32}, 128, 100, 8, 3};
  const fire::FireWork wb = fire::make_fire_work(big);
  auto total_at = [&](const fire::FireWork& ww, int pes) {
    return exec::time_on(t3e, ww.filter, pes).sec() +
           exec::time_on(t3e, ww.motion, pes).sec() +
           exec::time_on(t3e, ww.rvo, pes).sec();
  };
  std::printf("  64x64x16 : speedup@256 = %.1f\n",
              total_at(w, 1) / total_at(w, 256));
  std::printf("  128x128x32: speedup@256 = %.1f\n\n",
              total_at(wb, 1) / total_at(wb, 256));
}

// Micro-benchmarks of the real kernels (host wall clock, for reference).
void BM_MedianFilter(benchmark::State& state) {
  using namespace gtw;
  const fire::VolumeF img = scanner::make_head_phantom({64, 64, 16});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fire::median_filter_3x3(img));
  }
}
BENCHMARK(BM_MedianFilter)->Unit(benchmark::kMillisecond);

void BM_MotionCorrection(benchmark::State& state) {
  using namespace gtw;
  const fire::VolumeF ref = scanner::make_head_phantom({64, 64, 16});
  fire::RigidTransform t;
  t.tx = 0.5;
  t.ry = 0.01;
  const fire::VolumeF moved = fire::resample(ref, t);
  fire::MotionCorrector mc(ref);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.correct(moved));
  }
}
BENCHMARK(BM_MotionCorrection)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
