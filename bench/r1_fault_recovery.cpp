// R1 — fault injection and recovery.  The testbed was not a clean machine
// room (the OC-48 line "showed stability problems ... related to signal
// attenuation and timing"); this bench scripts WAN outages of increasing
// duration against the DES clock and measures what recovery costs:
//   - a bulk TCP transfer across the cut (stall, retransmits, timeouts);
//   - the realtime-fMRI pipeline running degraded through the outage
//     (frames superseded, recovery time once the line heals).
// Deterministic by construction: the same script replays bit-identically,
// so BENCH_r1_fault_recovery.json is byte-stable across runs.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "check/attach.hpp"
#include "check/monitor.hpp"
#include "fire/pipeline.hpp"
#include "net/fault.hpp"
#include "net/tcp.hpp"
#include "obs/exporter.hpp"
#include "obs/instrument.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace gtw;

struct TcpRow {
  double transfer_s = 0.0;
  double goodput_mbps = 0.0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t outage_drops = 0;
};

// 128 MB gateway-to-gateway transfer; the WAN fibre is cut 500 ms in.
TcpRow run_tcp(double outage_s) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  net::FaultPlan plan(tb.scheduler());
  if (outage_s > 0.0) {
    plan.link_down(tb.wan_link_j_to_g(), des::SimTime::milliseconds(500),
                   des::SimTime::seconds(outage_s));
  }
  net::TcpConfig cfg;
  cfg.recv_buffer = units::Bytes{4u << 20};
#if defined(GTW_CHECK)
  // GTW-San: conservation across the cut — outage drops must balance the
  // ledgers, and every fault must revert by drain.
  check::Monitor mon(tb.scheduler());
  check::attach_testbed(mon, tb);
  check::attach_fault_plan(mon, plan);
#endif
  const auto res = net::run_bulk_transfer(tb.scheduler(), tb.gw_o200(),
                                          tb.gw_e5000(), units::Bytes{128u << 20}, cfg);
#if defined(GTW_CHECK)
  mon.finish();
  mon.require_clean("r1_fault_recovery tcp");
#endif
  return {res.duration.sec(), res.goodput.bps() / 1e6,
          res.sender_stats.retransmits, res.sender_stats.timeouts,
          tb.wan_link_j_to_g().outage_drops()};
}

struct FireRow {
  double recovery_s = 0.0;       // line healed -> next image displayed
  double degraded_s = 0.0;
  std::uint64_t frames_dropped = 0;  // superseded while degraded
  std::uint64_t scans_completed = 0;
  std::uint64_t link_outage_drops = 0;
};

// The paper's pipeline with results displayed across the WAN (compute in
// Juelich, RT-client at the GMD); the outage starts mid-run at t = 15 s.
// With emit_obs set, one run additionally carries the observability layer
// (read-only probes + sampler ticks — results are unchanged) and exports
// OBS_r1_fault_recovery.{metrics,series}.json.
FireRow run_fire(double outage_s, bool emit_obs = false) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  fire::PipelineConfig cfg;
  cfg.n_scans = 20;
  cfg.t3e_pes = 256;
  fire::FmriPipeline pipe(
      tb.scheduler(),
      {&tb.scanner_frontend(), &tb.gw_o200(), &tb.onyx2_gmd()}, cfg);

  net::FaultPlan plan(tb.scheduler());
  plan.add_observer([&](const net::FaultEvent&, bool) {
    pipe.graph().set_degraded(plan.any_active());
  });

  obs::Registry reg;
  obs::TimeSeriesSampler sampler(tb.scheduler(), reg);
  if (emit_obs) {
    obs::instrument_link(reg, tb.wan_link_j_to_g(), "net.link.wan_j_to_g");
    obs::instrument_link(reg, tb.wan_link_g_to_j(), "net.link.wan_g_to_j");
    obs::instrument_host(reg, tb.gw_o200());
    obs::bridge_flow_metrics(reg, pipe.metrics(), "fire");
    obs::attach_fault_plan(reg, plan);
    sampler.watch("fault.active");
    sampler.watch("net.link.wan_j_to_g.queue_bytes");
    sampler.watch("fire.graph.completed");
    sampler.watch("fire.graph.degraded_dropped");
    sampler.sample_every(des::SimTime::milliseconds(500),
                         des::SimTime::seconds(70));
  }

  if (outage_s > 0.0) {
    plan.link_down(tb.wan_link_j_to_g(), des::SimTime::seconds(15),
                   des::SimTime::seconds(outage_s));
  }
#if defined(GTW_CHECK)
  check::Monitor mon(tb.scheduler());
  check::attach_testbed(mon, tb);
  check::attach_fault_plan(mon, plan);
  check::attach_flow_metrics(mon, pipe.metrics(), "fire");
#endif
  pipe.start();
  tb.scheduler().run();
#if defined(GTW_CHECK)
  mon.finish();
  mon.require_clean("r1_fault_recovery fire");
#endif

  if (emit_obs) {
    {
      std::ofstream metrics("OBS_r1_fault_recovery.metrics.json",
                            std::ios::binary);
      obs::write_metrics_json(metrics, reg, "r1_fault_recovery outage=2s");
    }
    {
      std::ofstream series("OBS_r1_fault_recovery.series.json",
                           std::ios::binary);
      obs::write_series_json(series, sampler);
    }
  }

  const auto& m = pipe.metrics();
  return {m.last_recovery_time.sec(), m.degraded_time.sec(),
          m.degraded_dropped, m.completed,
          tb.wan_link_j_to_g().outage_drops()};
}

void print_r1() {
  std::printf("== R1: recovery cost vs scripted WAN outage duration ==\n");
  std::printf("%9s | %26s | %30s\n", "outage(s)",
              "TCP transfer s / rexmt / RTO", "FIRE recovery s / dropped / done");
  std::ofstream json("BENCH_r1_fault_recovery.json");
  json << "{\n  \"bench\": \"r1_fault_recovery\",\n"
       << "  \"tcp_transfer_bytes\": " << (128u << 20) << ",\n"
       << "  \"fire_n_scans\": 20,\n  \"rows\": [\n";
  bool first = true;
  for (double outage : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const TcpRow t = run_tcp(outage);
    // The 2 s row doubles as the observability showcase; the probes are
    // read-only, so its numbers match an uninstrumented run exactly.
    const FireRow f = run_fire(outage, /*emit_obs=*/outage == 2.0);
    std::printf("%9.1f | %10.3f / %5llu / %3llu | %10.3f / %7llu / %4llu\n",
                outage, t.transfer_s,
                static_cast<unsigned long long>(t.retransmits),
                static_cast<unsigned long long>(t.timeouts), f.recovery_s,
                static_cast<unsigned long long>(f.frames_dropped),
                static_cast<unsigned long long>(f.scans_completed));
    char row[640];
    std::snprintf(
        row, sizeof row,
        "    {\"outage_s\": %.17g,\n"
        "     \"tcp\": {\"transfer_s\": %.17g, \"goodput_mbps\": %.17g, "
        "\"retransmits\": %llu, \"timeouts\": %llu, \"outage_drops\": %llu},\n"
        "     \"fire\": {\"recovery_s\": %.17g, \"degraded_s\": %.17g, "
        "\"frames_dropped\": %llu, \"scans_completed\": %llu, "
        "\"outage_drops\": %llu}}",
        outage, t.transfer_s, t.goodput_mbps,
        static_cast<unsigned long long>(t.retransmits),
        static_cast<unsigned long long>(t.timeouts),
        static_cast<unsigned long long>(t.outage_drops), f.recovery_s,
        f.degraded_s, static_cast<unsigned long long>(f.frames_dropped),
        static_cast<unsigned long long>(f.scans_completed),
        static_cast<unsigned long long>(f.link_outage_drops));
    json << (first ? "" : ",\n") << row;
    first = false;
  }
  json << "\n  ]\n}\n";
  json.flush();
  std::printf(json ? "[wrote BENCH_r1_fault_recovery.json]\n\n"
                   : "[failed to write BENCH_r1_fault_recovery.json]\n\n");
}

void BM_TcpThroughOutage(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_tcp(2.0));
}
BENCHMARK(BM_TcpThroughOutage)->Unit(benchmark::kMillisecond);

void BM_FireThroughOutage(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_fire(2.0));
}
BENCHMARK(BM_FireThroughOutage)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_r1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
