// S — DES engine speed and fidelity (DESIGN.md §10).  Not a paper figure:
// this bench certifies the simulator's engine core after the calendar-queue
// overhaul, on three axes:
//
//  1. events/sec sweeps of the production scheduler against an in-bench
//     replica of the pre-refactor engine (binary heap of new-allocated
//     entries, std::function actions, std::map cancellation index), on a
//     PHOLD-style self-rescheduling workload and a TCP-timer churn workload.
//     Both engines execute the identical schedule; their event-stream hashes
//     must agree, so the speedup is measured on provably equal work.
//  2. fluid-vs-exact link fidelity accuracy on the paper scenarios (the E1
//     WAN bulk transfers and the Figure-2 fMRI pipeline): the batched-burst
//     serialization model must stay within 1% of the exact per-frame model.
//  3. a national-scale topology (32 sites, >2000 hosts, 100 000 flows)
//     far beyond the two-site testbed, run to completion in exact and in
//     hybrid fidelity (access links exact, trunks fluid).
//
// Writes BENCH_des_speed.json and OBS_des_speed.metrics.json.  With
// --replay every wall-clock-derived field is omitted so the double-run
// determinism gate can hold the artifact to byte identity; everything else
// (event counts, stream hashes, goodputs, divergences) is deterministic.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "check/attach.hpp"
#include "check/monitor.hpp"
#include "des/random.hpp"
#include "des/scheduler.hpp"
#include "fire/pipeline.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "net/tcp.hpp"
#include "net/units.hpp"
#include "obs/exporter.hpp"
#include "obs/instrument.hpp"
#include "obs/registry.hpp"
#include "scanner/phantom.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace gtw;

// ---------------------------------------------------------------------------
// Wall-clock stopwatch.  Timing is *reported* only (events/sec columns); it
// never feeds back into any simulation input, and --replay drops every field
// derived from it, so the determinism contract is untouched.
struct WallTimer {
  std::chrono::steady_clock::time_point t0 =   // gtw-lint: allow(wall-clock)
      std::chrono::steady_clock::now();        // gtw-lint: allow(wall-clock)
  double elapsed_s() const {
    const auto t1 = std::chrono::steady_clock::now();  // gtw-lint: allow(wall-clock)
    return std::chrono::duration<double>(t1 - t0).count();
  }
};

// ---------------------------------------------------------------------------
// Pre-refactor scheduler, reproduced verbatim from the engine this repo
// shipped before the calendar-queue overhaul: a std::push_heap/std::pop_heap
// binary heap of individually new-allocated entries, std::function actions
// (which heap-allocate every capture larger than the SBO of ~2 words), and a
// std::map from sequence number to entry for cancellation.  It exists only
// as the measurement baseline; production code uses des::Scheduler.
class BaselineScheduler {
 public:
  using Action = std::function<void()>;

  class Handle {
   public:
    Handle() = default;
    void cancel() {
      if (s_ != nullptr && seq_ != 0) s_->cancel(seq_);
      s_ = nullptr;
      seq_ = 0;
    }

   private:
    friend class BaselineScheduler;
    Handle(BaselineScheduler* s, std::uint64_t q) : s_(s), seq_(q) {}
    BaselineScheduler* s_ = nullptr;
    std::uint64_t seq_ = 0;
  };

  BaselineScheduler() = default;
  BaselineScheduler(const BaselineScheduler&) = delete;
  BaselineScheduler& operator=(const BaselineScheduler&) = delete;
  ~BaselineScheduler() {
    for (Entry* e : heap_) delete e;
  }

  des::SimTime now() const { return now_; }

  Handle schedule_at(des::SimTime when, Action action) {
    assert(when >= now_ && "cannot schedule into the past");
    auto* e = new Entry{when, next_seq_++, std::move(action), false};
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Order{});
    pending_.emplace(e->seq, e);
    return Handle{this, e->seq};
  }
  Handle schedule_after(des::SimTime delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  std::uint64_t run() {
    std::uint64_t n = 0;
    while (step()) ++n;
    return n;
  }

  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t stream_hash() const { return stream_hash_; }

 private:
  struct Entry {
    des::SimTime when;
    std::uint64_t seq;
    Action action;
    bool cancelled = false;
  };
  struct Order {
    bool operator()(const Entry* a, const Entry* b) const {
      if (a->when != b->when) return a->when > b->when;
      return a->seq > b->seq;
    }
  };

  static void fnv1a_mix(std::uint64_t& h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= 1099511628211ULL;
    }
  }

  void cancel(std::uint64_t seq) {
    auto it = pending_.find(seq);
    if (it == pending_.end()) return;
    it->second->cancelled = true;
    pending_.erase(it);
    ++cancelled_in_heap_;
    if (cancelled_in_heap_ > heap_.size() - cancelled_in_heap_) {
      auto alive = heap_.begin();
      for (Entry* e : heap_) {
        if (e->cancelled)
          delete e;
        else
          *alive++ = e;
      }
      heap_.erase(alive, heap_.end());
      std::make_heap(heap_.begin(), heap_.end(), Order{});
      cancelled_in_heap_ = 0;
    }
  }

  bool step() {
    while (!heap_.empty()) {
      Entry* e = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), Order{});
      heap_.pop_back();
      if (e->cancelled) {
        --cancelled_in_heap_;
        delete e;
        continue;
      }
      pending_.erase(e->seq);
      now_ = e->when;
      ++executed_;
      fnv1a_mix(stream_hash_, static_cast<std::uint64_t>(e->when.ps()));
      fnv1a_mix(stream_hash_, e->seq);
      Action action = std::move(e->action);
      delete e;
      action();
      return true;
    }
    return false;
  }

  des::SimTime now_ = des::SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t stream_hash_ = 14695981039346656037ULL;
  std::vector<Entry*> heap_;
  std::size_t cancelled_in_heap_ = 0;
  std::map<std::uint64_t, Entry*> pending_;
};

// ---------------------------------------------------------------------------
// Synthetic engine workloads, templated over the scheduler so the baseline
// and the calendar queue execute bit-identical schedules.

struct RunStats {
  std::uint64_t events = 0;
  std::uint64_t hash = 0;
  double wall_s = 0.0;
};

// Closure ballast sized like the simulator's real hot-path actions (a
// Host::emit completion captures this + a full IpPacket + a route, ~112
// bytes).  des::Action keeps this inline; std::function heap-allocates it —
// exactly the per-event cost difference the refactor removed.
using Ballast = std::array<std::uint64_t, 12>;

// PHOLD-style hold model: a fixed population of self-rescheduling events.
// 15/16 hops stay within ~200 µs (calendar buckets), 1/16 jump up to ~80 ms
// ahead (overflow tier + day advance), so the sweep exercises every tier of
// the calendar, not just the happy path.
template <class Sched>
struct HoldState {
  Sched sched;
  des::Rng rng{0x686f6c64ULL};
  std::uint64_t to_schedule = 0;
  // 1-in-N hops jump far ahead (overflow tier); 0 keeps every hop near
  // (bucket-resident — the network-simulation steady state, where pending
  // events are timers and serializations within a few RTTs of now).
  std::uint64_t far_one_in = 16;
};

template <class Sched>
void hold_fire(HoldState<Sched>* st, const Ballast& b) {
  if (st->to_schedule == 0) return;
  --st->to_schedule;
  const bool far =
      st->far_one_in != 0 && st->rng.uniform_int(st->far_one_in) == 0;
  const auto d = static_cast<std::int64_t>(
      1 + st->rng.uniform_int(far ? 80'000'000'000ULL : 200'000'000ULL));
  Ballast next = b;
  next[0] ^= static_cast<std::uint64_t>(d);
  st->sched.schedule_after(des::SimTime::picoseconds(d),
                           [st, next] { hold_fire(st, next); });
}

template <class Sched>
RunStats run_hold(std::size_t population, std::uint64_t budget,
                  std::uint64_t far_one_in = 16) {
  HoldState<Sched> st;
  st.to_schedule = budget;
  st.far_one_in = far_one_in;
  const WallTimer timer;
  const Ballast b{};
  for (std::size_t i = 0; i < population && st.to_schedule != 0; ++i) {
    --st.to_schedule;
    const auto d =
        static_cast<std::int64_t>(1 + st.rng.uniform_int(200'000'000ULL));
    st.sched.schedule_at(des::SimTime::picoseconds(d),
                         [p = &st, b] { hold_fire(p, b); });
  }
  st.sched.run();
  return {st.sched.events_executed(), st.sched.stream_hash(),
          timer.elapsed_s()};
}

// TCP-retransmit-timer churn: every "segment send" arms an RTO timer that
// the next send cancels (the ack won the race) — except for a 1-in-8 stall
// where the timer genuinely fires first.  ~1 cancellation per executed
// event, the workload the old engine's sweep-and-rebuild was worst at.
template <class Sched>
struct ChurnSim {
  using Handle =
      decltype(std::declval<Sched&>().schedule_after(des::SimTime::zero(),
                                                     [] {}));
  Sched sched;
  des::Rng rng{0x636875726eULL};
  std::uint64_t sends_left = 0;
  std::uint64_t timeouts = 0;
  std::vector<Handle> rto;  // one armed timer per connection
};

template <class Sched>
void churn_send(ChurnSim<Sched>* sim, std::size_t c) {
  sim->rto[c].cancel();
  if (sim->sends_left == 0) return;
  --sim->sends_left;
  sim->rto[c] = sim->sched.schedule_after(des::SimTime::microseconds(500),
                                          [sim] { ++sim->timeouts; });
  const bool stall = sim->rng.uniform_int(8) == 0;
  const auto gap = static_cast<std::int64_t>(
      stall ? 700'000'000 : 1 + sim->rng.uniform_int(400'000'000ULL));
  sim->sched.schedule_after(des::SimTime::picoseconds(gap),
                            [sim, c] { churn_send(sim, c); });
}

template <class Sched>
RunStats run_churn(std::size_t connections, std::uint64_t budget) {
  ChurnSim<Sched> sim;
  sim.sends_left = budget;
  sim.rto.resize(connections);
  const WallTimer timer;
  for (std::size_t c = 0; c < connections; ++c) {
    const auto start =
        static_cast<std::int64_t>(1 + sim.rng.uniform_int(400'000'000ULL));
    sim.sched.schedule_at(des::SimTime::picoseconds(start),
                          [p = &sim, c] { churn_send(p, c); });
  }
  sim.sched.run();
  return {sim.sched.events_executed(), sim.sched.stream_hash(),
          timer.elapsed_s()};
}

struct SweepRow {
  const char* workload;
  std::size_t population;
  RunStats baseline;
  RunStats calendar;
  bool hash_match() const { return baseline.hash == calendar.hash; }
  double speedup() const {
    if (baseline.wall_s <= 0.0 || calendar.wall_s <= 0.0) return 0.0;
    return (static_cast<double>(calendar.events) / calendar.wall_s) /
           (static_cast<double>(baseline.events) / baseline.wall_s);
  }
};

// ---------------------------------------------------------------------------
// Fluid-vs-exact accuracy on the paper scenarios.

struct FidelityRow {
  const char* scenario;
  const char* metric;
  double exact = 0.0;
  double fluid = 0.0;
  double divergence_pct() const {
    if (exact == 0.0) return 0.0;
    return 100.0 * std::abs(fluid - exact) / std::abs(exact);
  }
};

units::BitRate e1_goodput(net::LinkFidelity fid, bool wan_supercomputer) {
  testbed::TestbedOptions opts;
  opts.link_fidelity = fid;
  testbed::Testbed tb{opts};
  net::TcpConfig cfg;
  cfg.mss = tb.options().atm_mtu -
            units::Bytes{net::kIpHeaderBytes + net::kTcpHeaderBytes};
  cfg.recv_buffer = units::Bytes{1u << 20};
  net::Host& a = wan_supercomputer ? tb.t3e600() : tb.onyx2_juelich();
  net::Host& b = wan_supercomputer ? tb.sp2() : tb.onyx2_gmd();
  return net::run_bulk_transfer(tb.scheduler(), a, b,
                                units::Bytes{16u << 20}, cfg)
      .goodput;
}

double fig2_mean_delay_s(net::LinkFidelity fid) {
  testbed::TestbedOptions opts;
  opts.link_fidelity = fid;
  testbed::Testbed tb{opts};

  scanner::FmriConfig scfg;
  scfg.dims = {32, 32, 8};
  scfg.regions = {{10, 20, 4, 3.0, 0.05}};
  scfg.expected_scans = 8;
  scanner::FmriSeriesGenerator gen(scfg);

  fire::AnalysisConfig acfg;
  acfg.stimulus = scfg.stimulus;
  acfg.hrf = scfg.hrf;
  acfg.tr_s = scfg.tr_s;
  acfg.motion_correction = false;
  acfg.detrend_cfg.expected_scans = scfg.expected_scans;
  fire::AnalysisEngine engine(scfg.dims, acfg);

  fire::PipelineConfig cfg;
  cfg.n_scans = 8;
  cfg.t3e_pes = 256;
  fire::FmriPipeline pipe(
      tb.scheduler(),
      {&tb.scanner_frontend(), &tb.gw_o200(), &tb.onyx2_juelich()}, cfg,
      [&gen](int t) { return gen.acquire(t); }, &engine);
  pipe.start();
  tb.scheduler().run();
  return pipe.result().mean_total_delay_s;
}

// ---------------------------------------------------------------------------
// National-scale scenario: a star of `sites` metro sites hanging off one
// national core, each site an access router fanning out to `leaves_per_site`
// hosts.  100 000 datagram flows cross it.  Dozens of sites and thousands
// of hosts is the scale the two-site testbed was the prototype for; hybrid
// fidelity (exact access links, fluid trunks) is what makes it tractable.

// Point-to-point NIC: transmits every packet onto one fixed egress link
// (the far end of the fibre delivers to the peer host).
class P2pNic final : public net::Nic {
 public:
  P2pNic(net::Host& owner, std::string name, units::Bytes mtu,
         net::Link& link)
      : net::Nic(owner, std::move(name), mtu), link_(link) {}
  void transmit(net::IpPacket pkt, net::HostId) override {
    net::Frame f;
    f.wire_bytes = pkt.total_bytes + 8;  // LLC/SNAP-style encapsulation
    f.pkt = std::move(pkt);
    link_.submit(std::move(f));
  }

 private:
  net::Link& link_;
};

struct NationalConfig {
  int sites = 32;
  int leaves_per_site = 64;
  std::uint64_t flows = 100'000;
  int datagrams_per_flow = 3;
  std::uint32_t flow_datagram_bytes = 4096 + net::kIpHeaderBytes;
  double window_s = 0.3;  // flow starts spread over this span
  net::LinkFidelity trunk_fidelity = net::LinkFidelity::kFluid;
};

struct NationalStats {
  std::size_t hosts = 0;
  std::size_t links = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drops = 0;
  bool completed = false;
  std::uint64_t events = 0;
  std::uint64_t hash = 0;
  double makespan_s = 0.0;
  double wall_s = 0.0;
  // (simulated time, running stream hash) sampled every checkpoint
  // interval; the determinism gate diffs these between runs to localize a
  // divergence to a simulated-time window instead of a raw byte offset.
  std::vector<std::pair<double, std::uint64_t>> hash_checkpoints;
};

NationalStats run_national(const NationalConfig& nc, bool emit_obs) {
  des::Scheduler sched;
  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<net::Link>> links;
  std::vector<std::unique_ptr<P2pNic>> nics;
  const units::Bytes mtu{9180};

  auto add_host = [&](const std::string& name,
                      net::HostCosts costs) -> net::Host* {
    const auto id = static_cast<net::HostId>(hosts.size());
    hosts.push_back(std::make_unique<net::Host>(sched, name, id, costs));
    return hosts.back().get();
  };
  // One direction of a fibre: a link from `a` to `b` plus the NIC on `a`
  // that feeds it.  Returns the NIC (for routing table entries on `a`).
  auto add_simplex = [&](net::Host* a, net::Host* b, units::BitRate rate,
                         des::SimTime prop, units::Bytes qlimit,
                         net::LinkFidelity fid) -> P2pNic* {
    net::Link::Config cfg;
    cfg.rate = rate;
    cfg.propagation = prop;
    cfg.queue_limit = qlimit;
    cfg.fidelity = fid;
    links.push_back(std::make_unique<net::Link>(
        sched, a->name() + ">" + b->name(), cfg));
    net::Link* l = links.back().get();
    l->set_sink([b](net::Frame f) { b->receive_from_nic(std::move(f.pkt)); });
    nics.push_back(
        std::make_unique<P2pNic>(*a, a->name() + ".nic", mtu, *l));
    return nics.back().get();
  };

  // Switch-class routers: sub-µs per packet, unlike end-system stacks.
  const net::HostCosts router_costs{des::SimTime::nanoseconds(100),
                                    des::SimTime::nanoseconds(100), 0.02,
                                    0.02};
  const units::BitRate leaf_rate = net::kOc12Line * net::kSdhPayloadFraction;
  const units::BitRate trunk_rate = net::kOc48Line * net::kSdhPayloadFraction;
  const auto leaf_prop = des::SimTime::microseconds(5);     // metro fibre
  const auto trunk_prop = des::SimTime::milliseconds(1);    // ~200 km

  net::Host* core = add_host("core", router_costs);
  core->set_forwarding(true);
  std::vector<net::Host*> leaves;
  net::Link* first_core_trunk = nullptr;

  std::uint64_t delivered = 0;
  for (int s = 0; s < nc.sites; ++s) {
    const std::string sname = "s" + std::to_string(s);
    net::Host* router = add_host(sname, router_costs);
    router->set_forwarding(true);
    P2pNic* router_up = add_simplex(router, core, trunk_rate, trunk_prop,
                                    units::Bytes{8u << 20},
                                    nc.trunk_fidelity);
    P2pNic* core_down = add_simplex(core, router, trunk_rate, trunk_prop,
                                    units::Bytes{8u << 20},
                                    nc.trunk_fidelity);
    if (first_core_trunk == nullptr) first_core_trunk = links.back().get();
    router->set_default_route(router_up, core->id());

    for (int h = 0; h < nc.leaves_per_site; ++h) {
      net::Host* leaf =
          add_host(sname + ".h" + std::to_string(h), net::HostCosts{});
      P2pNic* leaf_up = add_simplex(leaf, router, leaf_rate, leaf_prop,
                                    units::Bytes{2u << 20},
                                    net::LinkFidelity::kExact);
      P2pNic* router_down = add_simplex(router, leaf, leaf_rate, leaf_prop,
                                        units::Bytes{2u << 20},
                                        net::LinkFidelity::kExact);
      leaf->set_default_route(leaf_up, router->id());
      router->add_route(leaf->id(), router_down, leaf->id());
      core->add_route(leaf->id(), core_down, router->id());
      leaf->bind(net::IpProto::kUdp, 9,
                 [&delivered](const net::IpPacket&) { ++delivered; });
      leaves.push_back(leaf);
    }
  }

  // The flows: random leaf pairs, starts spread across the window.
  des::Rng rng{0x6e6174696f6eULL};
  const auto window_ps = static_cast<std::uint64_t>(nc.window_s * 1e12);
  for (std::uint64_t f = 0; f < nc.flows; ++f) {
    const auto src = static_cast<std::size_t>(
        rng.uniform_int(leaves.size()));
    auto dst = static_cast<std::size_t>(rng.uniform_int(leaves.size()));
    if (dst == src) dst = (dst + 1) % leaves.size();
    const auto start =
        static_cast<std::int64_t>(1 + rng.uniform_int(window_ps));
    sched.schedule_at(
        des::SimTime::picoseconds(start),
        [h = leaves[src], to = leaves[dst]->id(), &nc] {
          for (int i = 0; i < nc.datagrams_per_flow; ++i) {
            net::IpPacket p;
            p.dst = to;
            p.proto = net::IpProto::kUdp;
            p.total_bytes = nc.flow_datagram_bytes;
            p.dst_port = 9;
            h->send_datagram(p);
          }
        });
  }

#if defined(GTW_CHECK)
  // GTW-San: full conservation sweep over the national topology.  Attaching
  // schedules nothing, so the event stream (and its hash checkpoints) is
  // identical to an unmonitored checked run.
  check::Monitor mon(sched);
  check::attach_scheduler(mon, sched);
  for (const auto& h : hosts) check::attach_host(mon, *h);
  for (const auto& l : links) check::attach_link(mon, *l);
#endif

  const WallTimer timer;
  // Drive the run step-by-step so the stream hash can be sampled at fixed
  // simulated-time checkpoints.  Pure observation: nothing is scheduled,
  // so events and final hash match a plain sched.run() exactly.
  std::vector<std::pair<double, std::uint64_t>> checkpoints;
  const auto cp_interval = des::SimTime::milliseconds(25);
  des::SimTime next_cp = cp_interval;
  while (sched.step()) {
    while (sched.now() >= next_cp) {
      checkpoints.emplace_back(next_cp.sec(), sched.stream_hash());
      next_cp = next_cp + cp_interval;
    }
  }
  const double wall_s = timer.elapsed_s();

#if defined(GTW_CHECK)
  mon.finish();
  mon.require_clean(emit_obs ? "des_speed national hybrid"
                             : "des_speed national exact");
#endif

  if (emit_obs) {
    // Snapshot the engine-core dashboard after the run (probes read current
    // values at export time); gtw-trace --obs renders this file.
    obs::Registry reg;
    obs::instrument_scheduler(reg, sched);
    obs::instrument_link(reg, *first_core_trunk, "net.link.core_trunk0");
    std::ofstream metrics("OBS_des_speed.metrics.json", std::ios::binary);
    obs::write_metrics_json(metrics, reg, "des_speed national hybrid");
  }

  std::uint64_t drops = 0;
  for (const auto& l : links)
    drops += l->drops() + l->outage_drops() + l->corrupted_frames();
  const std::uint64_t expected =
      nc.flows * static_cast<std::uint64_t>(nc.datagrams_per_flow);
  NationalStats st;
  st.hosts = hosts.size();
  st.links = links.size();
  st.delivered = delivered;
  st.drops = drops;
  st.completed = delivered == expected && drops == 0;
  st.events = sched.events_executed();
  st.hash = sched.stream_hash();
  st.makespan_s = sched.now().sec();
  st.wall_s = wall_s;
  st.hash_checkpoints = std::move(checkpoints);
  // The final hash is always the last checkpoint, even off the grid.
  st.hash_checkpoints.emplace_back(st.makespan_s, st.hash);
  return st;
}

// ---------------------------------------------------------------------------

void print_des_speed(bool replay, bool quick) {
  std::printf("== DES engine: calendar queue vs pre-refactor baseline ==%s\n",
              quick ? " (quick)" : "");

  struct SweepCase {
    const char* workload;
    std::size_t population;
    std::uint64_t budget;
    std::uint64_t far_one_in;
  };
  // --quick: the CI check-build job wants every code path (all workloads,
  // both national fidelities) under GTW_CHECK without the full event
  // budgets; artifacts from quick and full runs are never cross-compared.
  const SweepCase full_cases[] = {
      {"hold", 1'000, 300'000, 16},
      {"hold", 10'000, 500'000, 16},
      {"hold", 100'000, 800'000, 16},
      {"hold_near", 1'000'000, 1'500'000, 0},
      {"churn", 20'000, 400'000, 0},
  };
  const SweepCase quick_cases[] = {
      {"hold", 1'000, 60'000, 16},
      {"hold", 10'000, 80'000, 16},
      {"hold", 100'000, 150'000, 16},
      {"hold_near", 100'000, 200'000, 0},
      {"churn", 5'000, 80'000, 0},
  };
  const SweepCase* cases = quick ? quick_cases : full_cases;
  const std::size_t n_cases = 5;
  // Best of two runs per engine: the schedule (and hash) is identical both
  // times, only the wall clock varies, so min-of-N is the standard way to
  // strip scheduler/turbo noise from the rate estimate.
  std::vector<SweepRow> rows;
  for (std::size_t ci = 0; ci < n_cases; ++ci) {
    const SweepCase& c = cases[ci];
    SweepRow r;
    r.workload = c.workload;
    r.population = c.population;
    const auto best = [](RunStats a, RunStats b) {
      assert(a.hash == b.hash && a.events == b.events);
      return a.wall_s <= b.wall_s ? a : b;
    };
    if (std::string_view(c.workload) == "churn") {
      r.baseline = best(run_churn<BaselineScheduler>(c.population, c.budget),
                        run_churn<BaselineScheduler>(c.population, c.budget));
      r.calendar = best(run_churn<des::Scheduler>(c.population, c.budget),
                        run_churn<des::Scheduler>(c.population, c.budget));
    } else {
      r.baseline = best(run_hold<BaselineScheduler>(c.population, c.budget,
                                                    c.far_one_in),
                        run_hold<BaselineScheduler>(c.population, c.budget,
                                                    c.far_one_in));
      r.calendar = best(
          run_hold<des::Scheduler>(c.population, c.budget, c.far_one_in),
          run_hold<des::Scheduler>(c.population, c.budget, c.far_one_in));
    }
    rows.push_back(r);
  }

  std::printf("workload | population |   events | hash match |"
              " baseline ev/s | calendar ev/s | speedup\n");
  for (const SweepRow& r : rows) {
    if (replay) {
      std::printf("%8s | %10zu | %8llu | %10s |      (replay) |"
                  "      (replay) |  --\n",
                  r.workload, r.population,
                  static_cast<unsigned long long>(r.calendar.events),
                  r.hash_match() ? "yes" : "NO");
    } else {
      std::printf("%8s | %10zu | %8llu | %10s | %13.3g | %13.3g | %6.2fx\n",
                  r.workload, r.population,
                  static_cast<unsigned long long>(r.calendar.events),
                  r.hash_match() ? "yes" : "NO",
                  static_cast<double>(r.baseline.events) / r.baseline.wall_s,
                  static_cast<double>(r.calendar.events) / r.calendar.wall_s,
                  r.speedup());
    }
  }

  std::printf("\n== link fidelity: fluid bursts vs exact per-frame ==\n");
  FidelityRow fid[3];
  fid[0] = {"e1_wan_t3e_sp2", "goodput_bps",
            e1_goodput(net::LinkFidelity::kExact, true).bps(),
            e1_goodput(net::LinkFidelity::kFluid, true).bps()};
  fid[1] = {"e1_wan_onyx2", "goodput_bps",
            e1_goodput(net::LinkFidelity::kExact, false).bps(),
            e1_goodput(net::LinkFidelity::kFluid, false).bps()};
  fid[2] = {"fig2_fmri", "mean_total_delay_s",
            fig2_mean_delay_s(net::LinkFidelity::kExact),
            fig2_mean_delay_s(net::LinkFidelity::kFluid)};

  std::printf("\n== national scale: %s ==\n",
              quick ? "8 sites, 137 hosts, 10000 flows (quick)"
                    : "32 sites, 2081 hosts, 100000 flows");
  NationalConfig exact_cfg;
  exact_cfg.trunk_fidelity = net::LinkFidelity::kExact;
  if (quick) {
    exact_cfg.sites = 8;
    exact_cfg.leaves_per_site = 16;
    exact_cfg.flows = 10'000;
  }
  const NationalStats nat_exact = run_national(exact_cfg, /*emit_obs=*/false);
  NationalConfig hybrid_cfg;
  if (quick) {
    hybrid_cfg.sites = 8;
    hybrid_cfg.leaves_per_site = 16;
    hybrid_cfg.flows = 10'000;
  }
  const NationalStats nat_hybrid = run_national(hybrid_cfg, /*emit_obs=*/true);
  FidelityRow nat_row{"national", "makespan_s", nat_exact.makespan_s,
                      nat_hybrid.makespan_s};

  for (const FidelityRow& r : {fid[0], fid[1], fid[2], nat_row})
    std::printf("%-16s %-20s exact %.6g  fluid %.6g  divergence %.4f%%\n",
                r.scenario, r.metric, r.exact, r.fluid, r.divergence_pct());

  auto print_nat = [&](const char* mode, const NationalStats& n) {
    std::printf("%-7s: %zu hosts, %zu links, delivered %llu, drops %llu, "
                "%llu events, makespan %.4f s%s\n",
                mode, n.hosts, n.links,
                static_cast<unsigned long long>(n.delivered),
                static_cast<unsigned long long>(n.drops),
                static_cast<unsigned long long>(n.events), n.makespan_s,
                n.completed ? "" : "  [INCOMPLETE]");
  };
  print_nat("exact", nat_exact);
  print_nat("hybrid", nat_hybrid);
  if (!replay)
    std::printf("hybrid wall %.2f s (%.3g events/s); exact wall %.2f s\n",
                nat_hybrid.wall_s,
                static_cast<double>(nat_hybrid.events) / nat_hybrid.wall_s,
                nat_exact.wall_s);

  double max_div = 0.0;
  for (const FidelityRow& r : {fid[0], fid[1], fid[2], nat_row})
    max_div = std::max(max_div, r.divergence_pct());
  const SweepRow& largest = rows[3];  // hold_near @ population 1M
  std::printf("\nlargest exact-mode sweep speedup: %s; max fluid divergence "
              "%.4f%% (budget: 1%%)\n",
              replay ? "(replay)" : std::to_string(largest.speedup()).c_str(),
              max_div);

  // ---- BENCH_des_speed.json ----
  std::ofstream json("BENCH_des_speed.json", std::ios::binary);
  json << "{\n  \"bench\": \"des_speed\",\n  \"replay\": "
       << (replay ? "true" : "false") << ",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"sweeps\": [\n";
  char buf[640];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"workload\": \"%s\", \"population\": %zu, "
                  "\"events\": %llu, \"stream_hash\": \"0x%016llx\", "
                  "\"hash_match\": %s",
                  r.workload, r.population,
                  static_cast<unsigned long long>(r.calendar.events),
                  static_cast<unsigned long long>(r.calendar.hash),
                  r.hash_match() ? "true" : "false");
    json << buf;
    if (!replay) {
      std::snprintf(
          buf, sizeof buf,
          ", \"baseline_events_per_s\": %.17g, "
          "\"calendar_events_per_s\": %.17g, \"speedup\": %.17g",
          static_cast<double>(r.baseline.events) / r.baseline.wall_s,
          static_cast<double>(r.calendar.events) / r.calendar.wall_s,
          r.speedup());
      json << buf;
    }
    json << (i + 1 < rows.size() ? "},\n" : "}\n");
  }
  json << "  ],\n";
  if (!replay) {
    std::snprintf(buf, sizeof buf, "  \"largest_exact_speedup\": %.17g,\n",
                  largest.speedup());
    json << buf;
  }
  json << "  \"fidelity\": [\n";
  const FidelityRow all_fid[] = {fid[0], fid[1], fid[2], nat_row};
  for (std::size_t i = 0; i < 4; ++i) {
    const FidelityRow& r = all_fid[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"scenario\": \"%s\", \"metric\": \"%s\", "
                  "\"exact\": %.17g, \"fluid\": %.17g, "
                  "\"divergence_pct\": %.17g}%s\n",
                  r.scenario, r.metric, r.exact, r.fluid, r.divergence_pct(),
                  i + 1 < 4 ? "," : "");
    json << buf;
  }
  std::snprintf(buf, sizeof buf, "  ],\n  \"max_divergence_pct\": %.17g,\n",
                max_div);
  json << buf;
  auto nat_json = [&](const char* key, const NationalStats& n,
                      const NationalConfig& cfg, bool last) {
    std::snprintf(
        buf, sizeof buf,
        "  \"%s\": {\"sites\": %d, \"hosts\": %zu, \"links\": %zu, "
        "\"flows\": %llu, \"datagrams_delivered\": %llu, \"drops\": %llu, "
        "\"completed\": %s, \"events\": %llu, "
        "\"stream_hash\": \"0x%016llx\", \"makespan_s\": %.17g",
        key, cfg.sites, n.hosts, n.links,
        static_cast<unsigned long long>(cfg.flows),
        static_cast<unsigned long long>(n.delivered),
        static_cast<unsigned long long>(n.drops),
        n.completed ? "true" : "false",
        static_cast<unsigned long long>(n.events),
        static_cast<unsigned long long>(n.hash), n.makespan_s);
    json << buf;
    // Periodic (simulated time, stream hash) samples: when two runs of this
    // artifact differ, tools/determinism_gate.py reports the first diverging
    // checkpoint, bounding the divergence to one simulated-time window.
    json << ", \"hash_checkpoints\": [";
    for (std::size_t i = 0; i < n.hash_checkpoints.size(); ++i) {
      std::snprintf(buf, sizeof buf, "%s{\"t_s\": %.17g, \"hash\": \"0x%016llx\"}",
                    i == 0 ? "" : ", ", n.hash_checkpoints[i].first,
                    static_cast<unsigned long long>(
                        n.hash_checkpoints[i].second));
      json << buf;
    }
    json << "]";
    if (!replay) {
      std::snprintf(buf, sizeof buf,
                    ", \"wall_s\": %.17g, \"events_per_s\": %.17g",
                    n.wall_s, static_cast<double>(n.events) / n.wall_s);
      json << buf;
    }
    json << (last ? "}\n" : "},\n");
  };
  nat_json("national_exact", nat_exact, exact_cfg, false);
  nat_json("national_hybrid", nat_hybrid, hybrid_cfg, true);
  json << "}\n";
}

void BM_CalendarHold(benchmark::State& state) {
  for (auto _ : state) {
    const RunStats r = run_hold<des::Scheduler>(
        static_cast<std::size_t>(state.range(0)), 200'000);
    benchmark::DoNotOptimize(r.hash);
  }
}
BENCHMARK(BM_CalendarHold)->Arg(1'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_BaselineHold(benchmark::State& state) {
  for (auto _ : state) {
    const RunStats r = run_hold<BaselineScheduler>(
        static_cast<std::size_t>(state.range(0)), 200'000);
    benchmark::DoNotOptimize(r.hash);
  }
}
BENCHMARK(BM_BaselineHold)->Arg(1'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool replay = false;
  bool quick = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--replay") {
      replay = true;
      continue;
    }
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  print_des_speed(replay, quick);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
