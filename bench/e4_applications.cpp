// E4 — the application communication requirements of section 3, replayed on
// the three WAN eras:
//   * ground water: 3-D flow field from SP2 (TRACE) to T3E (PARTRACE) every
//     timestep, up to 30 MByte/s;
//   * climate: 2-D surface exchange every timestep, ~1 MByte bursts;
//   * MEG/pmusic: low volume but latency sensitive;
//   * multimedia: 270 Mbit/s uncompressed D1 video.
// Each row shows whether the era sustains the application's requirement.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "apps/climate.hpp"
#include "apps/cocolib.hpp"
#include "apps/groundwater.hpp"
#include "apps/meg.hpp"
#include "apps/video.hpp"
#include "meta/communicator.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace gtw;

struct Rig {
  testbed::Testbed tb;
  meta::Metacomputer mc;
  int m_t3e, m_sp2;

  explicit Rig(testbed::WanEra era)
      : tb(testbed::TestbedOptions{era}), mc(tb.scheduler()) {
    meta::MachineSpec t3e;
    t3e.name = "T3E";
    t3e.max_pes = 512;
    t3e.frontend = &tb.t3e600();
    meta::MachineSpec sp2;
    sp2.name = "SP2";
    sp2.max_pes = 64;
    sp2.frontend = &tb.sp2();
    m_t3e = mc.add_machine(t3e);
    m_sp2 = mc.add_machine(sp2);
    net::TcpConfig cfg;
    cfg.mss = tb.options().atm_mtu - units::Bytes{40};
    cfg.recv_buffer = units::Bytes{1u << 20};
    mc.link_machines(m_t3e, m_sp2, cfg, 7000);
  }

  std::shared_ptr<meta::Communicator> pair() {
    return std::make_shared<meta::Communicator>(
        mc, std::vector<meta::ProcLoc>{{m_sp2, 0}, {m_t3e, 0}});
  }
};

const char* era_name(testbed::WanEra era) {
  switch (era) {
    case testbed::WanEra::kBWin155: return "B-WiN 155";
    case testbed::WanEra::kOc12_1997: return "OC-12 622";
    case testbed::WanEra::kOc48_1998: return "OC-48 2400";
  }
  return "?";
}

void print_e4() {
  std::printf("== E4: testbed applications vs WAN generation ==\n\n");

  std::printf("-- ground water (TRACE->PARTRACE 3-D field per step; paper: "
              "up to 30 MByte/s) --\n");
  for (auto era : {testbed::WanEra::kBWin155, testbed::WanEra::kOc12_1997,
                   testbed::WanEra::kOc48_1998}) {
    Rig rig(era);
    apps::TraceConfig cfg;
    cfg.dims = {64, 64, 16};  // 3.1 MB field per step
    apps::GroundwaterCoupling run(rig.pair(), cfg, 200, 12);
    run.start();
    rig.tb.scheduler().run();
    const auto& r = run.result();
    std::printf("  %-11s: %6.1f MByte/s transfer burst, %5.1f sustained "
                "(%.1f MB/step)%s\n",
                era_name(era), r.burst_mbyte_per_s, r.achieved_mbyte_per_s,
                static_cast<double>(r.bytes_per_step) / 1e6,
                r.burst_mbyte_per_s >= 30.0 ? "  [meets 30 MB/s]" : "");
  }

  std::printf("\n-- climate (2-D surface exchange per step; paper: ~1 MByte "
              "bursts) --\n");
  for (auto era : {testbed::WanEra::kBWin155, testbed::WanEra::kOc12_1997,
                   testbed::WanEra::kOc48_1998}) {
    Rig rig(era);
    apps::OceanConfig ocfg;
    ocfg.nx = 256;
    ocfg.ny = 128;
    apps::AtmosConfig acfg;
    acfg.nx = 192;
    acfg.ny = 96;
    apps::ClimateCoupling run(rig.pair(), ocfg, acfg, 15);
    run.start();
    rig.tb.scheduler().run();
    const auto& r = run.result();
    std::printf("  %-11s: %5.1f ms per exchange (%.2f MByte/step, mean SST "
                "%.1f K)\n", era_name(era), r.exchange_latency_s * 1e3,
                static_cast<double>(r.bytes_per_step) / 1e6, r.mean_sst);
  }

  std::printf("\n-- MEG / pmusic (distributed MUSIC scan; latency bound) --\n");
  for (auto era : {testbed::WanEra::kBWin155, testbed::WanEra::kOc48_1998}) {
    Rig rig(era);
    apps::MegConfig mcfg;
    mcfg.noise_sigma = 5e-15;
    apps::MegSimulator sim(mcfg);
    const apps::SimulatedDipole d1{{0.03, 0.02, 0.05}, {1e-8, 0, 0}, 11, 0};
    const apps::SimulatedDipole d2{{-0.03, -0.01, 0.06}, {0, 1e-8, 0}, 17, 1};
    const linalg::Matrix data = sim.simulate({d1, d2});
    apps::MusicConfig cfg;
    cfg.grid_n = 8;
    apps::DistributedMusic dist(rig.pair(), apps::MusicScanner(sim.sensors()),
                                cfg);
    dist.start(data);
    rig.tb.scheduler().run();
    std::printf("  %-11s: %2d allreduce rounds, %.2f ms communication\n",
                era_name(era), dist.result().allreduce_rounds,
                dist.result().elapsed_s * 1e3);
  }

  std::printf("\n-- MetaCISPAR / COCOLIB (coupled fluid-structure codes; "
              "paper: 'depends on the coupled application') --\n");
  for (auto era : {testbed::WanEra::kBWin155, testbed::WanEra::kOc48_1998}) {
    Rig rig(era);
    const apps::coco::InterfaceMesh fluid_mesh =
        apps::coco::InterfaceMesh::uniform(129);
    const apps::coco::InterfaceMesh wall_mesh =
        apps::coco::InterfaceMesh::uniform(97);
    apps::coco::DistributedFsi fsi(rig.pair(), fluid_mesh, wall_mesh,
                                   apps::coco::FsiConfig{});
    fsi.start();
    rig.tb.scheduler().run();
    const auto& r = fsi.result();
    std::printf("  %-11s: %s in %d interface iterations, %.1f KB exchanged, "
                "%.1f ms wall\n", era_name(era),
                r.converged ? "converged" : "NOT converged", r.iterations,
                static_cast<double>(r.bytes_exchanged) / 1e3,
                r.elapsed_s * 1e3);
  }

  std::printf("\n-- multimedia (uncompressed D1 video, 270 Mbit/s CBR) --\n");
  for (auto era : {testbed::WanEra::kBWin155, testbed::WanEra::kOc12_1997,
                   testbed::WanEra::kOc48_1998}) {
    testbed::Testbed tb{testbed::TestbedOptions{era}};
    apps::D1VideoConfig cfg;
    cfg.frames = 150;
    apps::D1VideoSession session(tb.onyx2_gmd(), tb.onyx2_juelich(), cfg);
    session.start();
    tb.scheduler().run();
    const auto rep = session.report();
    std::printf("  %-11s: %5.1f Mbit/s delivered, %3llu/%llu frames lost, "
                "jitter %.2f ms  [%s]\n", era_name(era), rep.goodput.mbps(),
                static_cast<unsigned long long>(rep.frames_lost),
                static_cast<unsigned long long>(rep.frames_sent),
                rep.jitter_ms, rep.feasible ? "feasible" : "NOT feasible");
  }
  std::printf("\n");
}

void BM_GroundwaterSolve(benchmark::State& state) {
  apps::TraceConfig cfg;
  cfg.dims = {24, 24, 8};
  apps::TraceFlowSolver solver(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(solver.solve());
}
BENCHMARK(BM_GroundwaterSolve)->Unit(benchmark::kMillisecond);

void BM_MusicMetric(benchmark::State& state) {
  apps::MegConfig mcfg;
  apps::MegSimulator sim(mcfg);
  const apps::SimulatedDipole d{{0.02, 0.01, 0.05}, {1e-8, 0, 0}, 10, 0};
  const linalg::Matrix data = sim.simulate({d});
  apps::MusicScanner scanner(sim.sensors());
  const linalg::Matrix pn = scanner.noise_projector(data, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(scanner.metric(pn, {0.01, 0.0, 0.05}));
}
BENCHMARK(BM_MusicMetric)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_e4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
