// F3 — Figure 3 of the paper: "Control panel and 2-D display of the FIRE
// software.  The upper left canvas shows MR-images with a color coded
// correlation map overlay.  In the upper right part, the signal time
// courses of special 'regions of interest' can be displayed.  In the lower
// panel, the stimulation time course and the modeled hemodynamic response
// can be specified."
// Non-graphical equivalent: an ASCII correlation-overlay slice, the ROI
// time-course panel, and the stimulus/HRF model panel.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "fire/analysis.hpp"
#include "scanner/phantom.hpp"

namespace {

using namespace gtw;

void print_fig3() {
  std::printf("== Figure 3: FIRE 2-D display (text rendering) ==\n");
  scanner::FmriConfig scfg;
  scfg.dims = {32, 32, 8};
  scfg.regions = {{10, 20, 4, 3.5, 0.06}};
  scfg.expected_scans = 48;
  scanner::FmriSeriesGenerator gen(scfg);

  fire::AnalysisConfig acfg;
  acfg.stimulus = scfg.stimulus;
  acfg.hrf = scfg.hrf;
  acfg.tr_s = scfg.tr_s;
  acfg.motion_correction = false;
  acfg.detrend_cfg.expected_scans = scfg.expected_scans;
  fire::AnalysisEngine engine(scfg.dims, acfg);
  for (int t = 0; t < scfg.expected_scans; ++t)
    engine.process_scan(gen.acquire(t));

  // Upper-left canvas: anatomy with correlation overlay, slice z=4.
  const fire::VolumeF map = engine.correlation_map();
  const fire::VolumeF& anat = gen.baseline();
  std::printf("\nMR slice z=4 with correlation overlay "
              "(.:air  -=#:tissue  *:r>0.35):\n");
  for (int y = 0; y < 32; y += 1) {
    for (int x = 0; x < 32; ++x) {
      char c = '.';
      const float a = anat.at(x, y, 4);
      if (a > 100.0f) c = a > 600.0f ? '#' : (a > 300.0f ? '=' : '-');
      if (map.at(x, y, 4) > 0.35f) c = '*';
      std::putchar(c);
    }
    std::putchar('\n');
  }

  // Upper-right: ROI time courses.
  const auto mask = gen.activation_mask();
  std::vector<std::size_t> roi_active, roi_quiet;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) roi_active.push_back(i);
  }
  for (int z = 2; z < 3; ++z)
    for (int y = 8; y < 12; ++y)
      for (int x = 20; x < 26; ++x)
        roi_quiet.push_back(
            (static_cast<std::size_t>(z) * 32 + y) * 32 + x);

  auto sparkline = [](const std::vector<double>& v) {
    double lo = v[0], hi = v[0];
    for (double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    std::string out;
    const char* levels = " .:-=+*#%@";
    for (double x : v) {
      const int idx = hi > lo
          ? static_cast<int>((x - lo) / (hi - lo) * 9.0)
          : 0;
      out += levels[idx];
    }
    return out;
  };
  std::printf("\nROI time courses (one char per scan):\n");
  std::printf("  activated ROI |%s|\n",
              sparkline(engine.roi_time_course(roi_active)).c_str());
  std::printf("  control ROI   |%s|\n",
              sparkline(engine.roi_time_course(roi_quiet)).c_str());

  // Lower panel: stimulus and modelled hemodynamic response.
  const auto stim = scfg.stimulus.series(scfg.expected_scans);
  std::printf("\nstimulation   |%s|\n", sparkline(stim).c_str());
  std::printf("reference     |%s|  (stimulus x HRF, delay %.1f s, "
              "dispersion %.1f s)\n",
              sparkline(engine.reference()).c_str(), acfg.hrf.delay_s,
              acfg.hrf.dispersion_s);
  std::printf("\n");
}

void BM_RoiTimeCourse(benchmark::State& state) {
  scanner::FmriConfig scfg;
  scfg.dims = {32, 32, 8};
  scanner::FmriSeriesGenerator gen(scfg);
  fire::AnalysisConfig acfg;
  acfg.stimulus = scfg.stimulus;
  acfg.tr_s = scfg.tr_s;
  acfg.motion_correction = false;
  fire::AnalysisEngine engine(scfg.dims, acfg);
  for (int t = 0; t < 16; ++t) engine.process_scan(gen.acquire(t));
  std::vector<std::size_t> roi;
  for (std::size_t i = 0; i < 200; ++i) roi.push_back(i * 40);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.roi_time_course(roi));
}
BENCHMARK(BM_RoiTimeCourse)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
