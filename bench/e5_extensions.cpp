// E5 — section 5 of the paper, "Extensions of the Testbed": the dark fibre
// to the DLR and the University of Cologne (distributed traffic simulation
// and visualization; distributed virtual TV-production) and the 622 Mbit/s
// link to the University of Bonn (multiscale molecular dynamics).  The
// paper gives no numbers for these — this bench demonstrates feasibility
// of each planned project on the extended topology, plus the traffic
// model's fundamental diagram (the series the traffic community plots).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "apps/groundwater.hpp"
#include "apps/moldyn.hpp"
#include "apps/traffic.hpp"
#include "apps/video.hpp"
#include "meta/communicator.hpp"
#include "testbed/extensions.hpp"

namespace {

using namespace gtw;

void print_e5() {
  std::printf("== E5: testbed extensions (section 5) ==\n");

  std::printf("\n-- Nagel-Schreckenberg fundamental diagram (flow vs "
              "density, v_max=5, p=0.25) --\n");
  std::printf("%8s | %8s\n", "density", "flow");
  for (double rho : {0.05, 0.08, 0.10, 0.12, 0.15, 0.20, 0.30, 0.50, 0.70}) {
    std::printf("%8.2f | %8.3f\n", rho, apps::nasch_flow(rho));
  }

  std::printf("\n-- distributed traffic simulation + visualization (DLR -> "
              "Cologne over the dark fibre) --\n");
  {
    testbed::ExtendedTestbed tb;
    apps::NaschConfig cfg;
    cfg.cells = 100000;  // 750 km motorway network
    apps::DistributedTrafficViz run(tb.dlr_traffic(), tb.cologne_viz(), cfg,
                                    /*steps=*/50);
    run.start();
    tb.scheduler().run();
    const auto& res = run.result();
    std::printf("  %d CA steps, %llu occupancy frames of %.1f KB delivered, "
                "%.1f frames/s\n", res.steps_simulated,
                static_cast<unsigned long long>(res.frames_delivered),
                static_cast<double>(res.frame_bytes) / 1e3, res.frames_per_s);
  }

  std::printf("\n-- distributed virtual TV production (two D1 studio feeds "
              "into the GMD) --\n");
  {
    testbed::ExtendedTestbed tb;
    apps::D1VideoConfig cfg;
    cfg.frames = 100;
    apps::D1VideoSession a(tb.cologne_viz(), tb.e500(), cfg, 7500);
    apps::D1VideoSession b(tb.dlr_traffic(), tb.e500(), cfg, 7600);
    a.start();
    b.start();
    tb.scheduler().run();
    std::printf("  feed Cologne->GMD: %.1f Mbit/s, %s\n",
                a.report().goodput.mbps(),
                a.report().feasible ? "clean" : "LOSSY");
    std::printf("  feed DLR->GMD    : %.1f Mbit/s, %s\n",
                b.report().goodput.mbps(),
                b.report().feasible ? "clean" : "LOSSY");
  }

  std::printf("\n-- lithospheric fluids (Bonn <-> GMD: crustal Darcy flow "
              "coupled to particle transport) --\n");
  {
    testbed::ExtendedTestbed tb;
    meta::Metacomputer mc(tb.scheduler());
    meta::MachineSpec bonn;
    bonn.name = "Bonn";
    bonn.max_pes = 32;
    bonn.frontend = &tb.bonn_md();
    meta::MachineSpec gmd;
    gmd.name = "GMD";
    gmd.max_pes = 8;
    gmd.frontend = &tb.e500();
    const int mb = mc.add_machine(bonn);
    const int mg = mc.add_machine(gmd);
    net::TcpConfig tcp;
    tcp.mss = tb.options().atm_mtu - units::Bytes{40};
    mc.link_machines(mb, mg, tcp, 7450);
    auto comm = std::make_shared<meta::Communicator>(
        mc, std::vector<meta::ProcLoc>{{mb, 0}, {mg, 0}});

    apps::TraceConfig cfg;
    cfg.dims = {32, 32, 16};
    cfg.k_background = 1e-7;  // crustal rock, orders below an aquifer
    cfg.k_lens = 1e-9;        // impermeable intrusion
    apps::GroundwaterCoupling run(comm, cfg, 150, 10);
    run.start();
    tb.scheduler().run();
    const auto& r = run.result();
    std::printf("  %d coupling steps over the 622 Mbit/s Bonn link, "
                "%.1f MByte/s field bursts, %d tracers in the domain\n",
                r.steps_completed, r.burst_mbyte_per_s,
                r.particles_remaining);
  }

  std::printf("\n-- multiscale molecular dynamics (Bonn <-> GMD, "
              "622 Mbit/s) --\n");
  {
    testbed::ExtendedTestbed tb;
    meta::Metacomputer mc(tb.scheduler());
    meta::MachineSpec bonn;
    bonn.name = "Bonn";
    bonn.max_pes = 32;
    bonn.frontend = &tb.bonn_md();
    meta::MachineSpec gmd;
    gmd.name = "GMD";
    gmd.max_pes = 8;
    gmd.frontend = &tb.e500();
    const int mb = mc.add_machine(bonn);
    const int mg = mc.add_machine(gmd);
    net::TcpConfig tcp;
    tcp.mss = tb.options().atm_mtu - units::Bytes{40};
    mc.link_machines(mb, mg, tcp, 7400);
    auto comm = std::make_shared<meta::Communicator>(
        mc, std::vector<meta::ProcLoc>{{mb, 0}, {mg, 0}});

    apps::LjConfig cfg;
    cfg.n_particles = 144;
    cfg.box = 22.0;
    cfg.temperature = 1.0;
    apps::MultiscaleMd run(comm, cfg, /*coupling_steps=*/40,
                           /*md_per_coupling=*/5, /*target_t=*/0.5);
    run.start();
    tb.scheduler().run();
    const auto& res = run.result();
    std::printf("  %d coupling steps; T %.2f -> %.2f (coarse target 0.50); "
                "%.2f ms per boundary exchange\n", res.steps_completed, 1.0,
                res.final_temperature, res.mean_exchange_ms);
  }
  std::printf("\n");
}

void BM_NaschStep(benchmark::State& state) {
  apps::NaschConfig cfg;
  cfg.cells = 10000;
  apps::NaschRoad road(cfg);
  for (auto _ : state) road.step();
  state.SetItemsProcessed(state.iterations() * road.vehicles());
}
BENCHMARK(BM_NaschStep)->Unit(benchmark::kMicrosecond);

void BM_LjStep(benchmark::State& state) {
  apps::LjConfig cfg;
  cfg.n_particles = 400;
  apps::LjFluid fluid(cfg);
  for (auto _ : state) fluid.step();
  state.SetItemsProcessed(state.iterations() * cfg.n_particles);
}
BENCHMARK(BM_LjStep)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_e5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
