#include <gtest/gtest.h>

#include <cmath>

#include "fire/analysis.hpp"
#include "scanner/phantom.hpp"

namespace gtw::scanner {
namespace {

TEST(PhantomTest, HeadHasAirBorderAndBrightBrain) {
  const fire::VolumeF v = make_head_phantom(fire::Dims{32, 32, 16});
  EXPECT_FLOAT_EQ(v.at(0, 0, 0), 0.0f);           // corner is air
  EXPECT_GT(v.at(10, 16, 8), 500.0f);             // lateral brain tissue
  EXPECT_LT(v.at(16, 15, 8), 300.0f);             // central ventricle (CSF)
}

TEST(PhantomTest, AnatomicalSharesGeometry) {
  const fire::Dims d{64, 64, 32};
  const fire::VolumeF epi = make_head_phantom(d);
  const fire::VolumeF anat = make_anatomical(d);
  int agree = 0, total = 0;
  for (std::size_t i = 0; i < epi.size(); i += 7) {
    ++total;
    if ((epi[i] > 0) == (anat[i] > 0)) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.99);
}

FmriConfig small_config() {
  FmriConfig cfg;
  cfg.dims = {24, 24, 8};
  // Activation planted in homogeneous lateral brain tissue (not on the
  // ventricle boundary, where motion + partial-volume effects rightly
  // destroy the correlation).
  cfg.regions = {{7, 15, 4, 3.0, 0.05}};
  cfg.noise_sigma = 2.0;
  cfg.expected_scans = 48;
  return cfg;
}

TEST(FmriGeneratorTest, ActivationFollowsStimulus) {
  FmriConfig cfg = small_config();
  cfg.noise_sigma = 0.0;
  cfg.drift_amplitude = 0.0;
  cfg.cosine_drift_amplitude = 0.0;
  FmriSeriesGenerator gen(cfg);

  // Mean intensity in the activated region rises during "on" plateaus.
  const auto mask = gen.activation_mask();
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < mask.size(); ++i)
    if (mask[i]) active.push_back(i);
  ASSERT_FALSE(active.empty());

  auto region_mean = [&](const fire::VolumeF& img) {
    double acc = 0;
    for (auto i : active) acc += img[i];
    return acc / static_cast<double>(active.size());
  };
  const double rest = region_mean(gen.acquire(5));    // early rest block
  const double peak = region_mean(gen.acquire(17));   // deep into ON block
  EXPECT_GT(peak, rest + 1.0);
}

TEST(FmriGeneratorTest, NoiseIsReproducibleForSeed) {
  FmriConfig cfg = small_config();
  FmriSeriesGenerator a(cfg), b(cfg);
  const fire::VolumeF va = a.acquire(3), vb = b.acquire(3);
  for (std::size_t i = 0; i < va.size(); i += 13)
    EXPECT_FLOAT_EQ(va[i], vb[i]);
}

TEST(FmriGeneratorTest, MotionIsDeterministicPerScan) {
  FmriConfig cfg = small_config();
  cfg.motion.jitter = 0.3;
  FmriSeriesGenerator gen(cfg);
  const auto m1 = gen.motion_at(7);
  const auto m2 = gen.motion_at(7);
  EXPECT_DOUBLE_EQ(m1.tx, m2.tx);
  EXPECT_DOUBLE_EQ(m1.rz, m2.rz);
  // Different scans get different draws.
  EXPECT_NE(gen.motion_at(8).tx, m1.tx);
}

TEST(FmriGeneratorTest, ImageBytesMatchPaperMatrix) {
  FmriConfig cfg;
  cfg.dims = {64, 64, 16};
  FmriSeriesGenerator gen(cfg);
  EXPECT_EQ(gen.image_bytes(), 64u * 64u * 16u * 2u);  // 128 KiB raw
}

// End-to-end numerics: the full analysis chain finds the planted activation
// and rejects quiet tissue — the headline correctness property of FIRE.
TEST(FireIntegrationTest, AnalysisDetectsPlantedActivation) {
  FmriConfig cfg = small_config();
  cfg.drift_amplitude = 5.0;
  FmriSeriesGenerator gen(cfg);

  fire::AnalysisConfig acfg;
  acfg.stimulus = cfg.stimulus;
  acfg.hrf = cfg.hrf;
  acfg.tr_s = cfg.tr_s;
  acfg.detrend_cfg.expected_scans = cfg.expected_scans;
  acfg.motion_correction = false;  // no motion injected here
  fire::AnalysisEngine engine(cfg.dims, acfg);

  for (int t = 0; t < cfg.expected_scans; ++t)
    engine.process_scan(gen.acquire(t));

  const fire::VolumeF map = engine.correlation_map();
  const auto mask = gen.activation_mask();
  double active_mean = 0, quiet_mean = 0;
  int na = 0, nq = 0;
  for (std::size_t i = 0; i < map.size(); ++i) {
    if (mask[i]) {
      active_mean += map[i];
      ++na;
    } else if (gen.baseline()[i] > 100.0f) {
      quiet_mean += std::abs(map[i]);
      ++nq;
    }
  }
  active_mean /= na;
  quiet_mean /= nq;
  EXPECT_GT(active_mean, 0.3);
  EXPECT_LT(quiet_mean, 0.2);
  EXPECT_GT(active_mean, quiet_mean + 0.15);
}

TEST(FireIntegrationTest, MotionCorrectionRescuesCorruptedRun) {
  // With injected motion and correction off, the correlation map degrades;
  // with correction on, the activation is recovered.
  FmriConfig cfg = small_config();
  cfg.motion.jitter = 0.35;
  cfg.motion.rot_jitter = 0.01;

  auto run = [&](bool correct) {
    FmriSeriesGenerator gen(cfg);
    fire::AnalysisConfig acfg;
    acfg.stimulus = cfg.stimulus;
    acfg.hrf = cfg.hrf;
    acfg.tr_s = cfg.tr_s;
    acfg.detrend_cfg.expected_scans = cfg.expected_scans;
    acfg.motion_correction = correct;
    fire::AnalysisEngine engine(cfg.dims, acfg);
    for (int t = 0; t < cfg.expected_scans; ++t)
      engine.process_scan(gen.acquire(t));
    const fire::VolumeF map = engine.correlation_map();
    const auto mask = gen.activation_mask();
    double active_mean = 0;
    int na = 0;
    for (std::size_t i = 0; i < map.size(); ++i)
      if (mask[i]) {
        active_mean += map[i];
        ++na;
      }
    return active_mean / na;
  };

  // Correction cannot restore the motion-free map (every resampling of the
  // moving head costs signal at tissue gradients), but it must recover the
  // activation clearly — a multiple of the uncorrected value.
  const double with = run(true);
  const double without = run(false);
  EXPECT_GT(with, 2.0 * std::max(without, 0.02));
  EXPECT_GT(with, 0.12);
}

TEST(FireIntegrationTest, RoiTimeCourseTracksStimulus) {
  FmriConfig cfg = small_config();
  cfg.noise_sigma = 1.0;
  FmriSeriesGenerator gen(cfg);
  fire::AnalysisConfig acfg;
  acfg.stimulus = cfg.stimulus;
  acfg.hrf = cfg.hrf;
  acfg.tr_s = cfg.tr_s;
  acfg.motion_correction = false;
  acfg.detrend = false;
  fire::AnalysisEngine engine(cfg.dims, acfg);
  for (int t = 0; t < 40; ++t) engine.process_scan(gen.acquire(t));

  const auto mask = gen.activation_mask();
  std::vector<std::size_t> roi;
  for (std::size_t i = 0; i < mask.size(); ++i)
    if (mask[i]) roi.push_back(i);
  const auto tc = engine.roi_time_course(roi);
  ASSERT_EQ(tc.size(), 40u);
  // ON-block samples (scans 15..19, well past the hemodynamic delay) exceed
  // the initial rest block.
  double on = (tc[15] + tc[16] + tc[17] + tc[18] + tc[19]) / 5.0;
  double off = (tc[2] + tc[3] + tc[4] + tc[5] + tc[6]) / 5.0;
  EXPECT_GT(on, off);
}

}  // namespace
}  // namespace gtw::scanner
