// Causal span tracing (DESIGN.md section 13): SpanTracer bookkeeping,
// layer filtering, abort cascades, the write_json -> load_spans round
// trip, latency-budget sweep exactness, and the lifecycle edge cases the
// WAN makes interesting — spans held open across a PathTransport stall
// reset, traces aborted when the Communicator declares a peer
// unreachable, a zero-leak census at drain, and the guarantee that
// attaching the tracer does not perturb the simulation.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/attach.hpp"
#include "check/monitor.hpp"
#include "des/scheduler.hpp"
#include "des/span_hook.hpp"
#include "meta/communicator.hpp"
#include "meta/metacomputer.hpp"
#include "meta/path_transport.hpp"
#include "net/atm.hpp"
#include "net/fault.hpp"
#include "net/host.hpp"
#include "net/tcp.hpp"
#include "net/units.hpp"
#include "obs/span.hpp"
#include "obs/span_analysis.hpp"

namespace gtw::obs {
namespace {

using des::SimTime;

SimTime ms(int m) { return SimTime::milliseconds(m); }
SimTime ps(std::int64_t p) { return SimTime::picoseconds(p); }

// --- tracer unit tests ------------------------------------------------------

TEST(SpanTracerTest, MintBeginEndCloseBookkeeping) {
  SpanTracer t;
  const des::TraceContext ctx = t.mint("test.origin", ps(100));
  EXPECT_TRUE(ctx.valid());
  EXPECT_EQ(t.open_traces(), 1u);
  EXPECT_EQ(t.open_spans(), 1u);  // the root span

  const std::uint64_t s1 =
      t.begin_span(ctx, des::SpanPhase::kQueueWait, "flow", "q", ps(100));
  const std::uint64_t s2 =
      t.begin_span(des::under(ctx, s1), des::SpanPhase::kCompute, "flow",
                   "body", ps(200));
  EXPECT_EQ(t.open_spans(), 3u);
  EXPECT_EQ(t.spans()[s2 - 1].parent, s1);  // nested under the wait span

  t.end_span(s2, ps(300));
  t.end_span(s1, ps(400));
  EXPECT_EQ(t.open_spans(), 1u);
  t.close_trace(ctx, ps(500));
  EXPECT_EQ(t.open_spans(), 0u);
  EXPECT_EQ(t.open_traces(), 0u);
  EXPECT_EQ(t.traces().at(ctx.trace_id).status, "closed");
  // Exact integer-picosecond stamps survive.
  EXPECT_EQ(t.spans()[s1 - 1].begin.ps(), 100);
  EXPECT_EQ(t.spans()[s1 - 1].end.ps(), 400);
}

TEST(SpanTracerTest, DisabledLayerYieldsSpanZeroAndZeroIsInert) {
  SpanTracer t;
  t.enable_layer("link", false);
  const des::TraceContext ctx = t.mint("test.origin", ps(0));
  const std::uint64_t s =
      t.begin_span(ctx, des::SpanPhase::kSerialize, "link", "wire", ps(0));
  EXPECT_EQ(s, 0u);
  EXPECT_EQ(t.open_spans(), 1u);  // only the root
  // Ending / aborting span 0 must be a no-op everywhere.
  t.end_span(0, ps(10));
  t.abort_span(0, ps(10));
  EXPECT_EQ(t.open_spans(), 1u);
  // An invalid (zero) context never records anything either.
  EXPECT_EQ(t.begin_span(des::TraceContext{}, des::SpanPhase::kCompute,
                         "flow", "x", ps(0)),
            0u);
  t.close_trace(ctx, ps(20));
}

TEST(SpanTracerTest, AbortTraceCascadesAndLateEndIsNoOp) {
  SpanTracer t;
  const des::TraceContext ctx = t.mint("test.origin", ps(0));
  const std::uint64_t s1 =
      t.begin_span(ctx, des::SpanPhase::kTransfer, "meta", "msg", ps(0));
  const std::uint64_t s2 = t.begin_span(des::under(ctx, s1),
                                        des::SpanPhase::kQueueWait, "meta",
                                        "chunk", ps(10));
  ASSERT_EQ(t.open_spans(), 3u);

  t.abort_trace(ctx, "unreachable", ps(50));
  EXPECT_EQ(t.open_spans(), 0u);
  EXPECT_EQ(t.open_traces(), 0u);
  EXPECT_EQ(t.traces().at(ctx.trace_id).status, "aborted");
  EXPECT_EQ(t.traces().at(ctx.trace_id).abort_reason, "unreachable");
  EXPECT_TRUE(t.spans()[s1 - 1].aborted);
  EXPECT_TRUE(t.spans()[s2 - 1].aborted);

  // A late copy of the dropped message tries to end its spans: no-op, the
  // abort stamps stand.
  t.end_span(s2, ps(900));
  EXPECT_EQ(t.spans()[s2 - 1].end.ps(), 50);
  EXPECT_TRUE(t.spans()[s2 - 1].aborted);
  // Double-close of the aborted trace is equally inert.
  t.close_trace(ctx, ps(900));
  EXPECT_EQ(t.traces().at(ctx.trace_id).status, "aborted");
}

// --- artifact round trip and analysis ---------------------------------------

TEST(SpanAnalysisTest, WriteJsonRoundTripsThroughLoader) {
  SpanTracer t;
  const des::TraceContext ctx = t.mint("test.origin", ps(1'000));
  const std::uint64_t s1 =
      t.begin_span(ctx, des::SpanPhase::kSerialize, "link", "wire", ps(1'500));
  t.end_span(s1, ps(2'500));
  t.close_trace(ctx, ps(3'000));

  std::ostringstream os;
  t.write_json(os, "round_trip");
  std::istringstream is(os.str());
  SpanFile f;
  std::string error;
  ASSERT_TRUE(load_spans(is, "round_trip", f, error)) << error;
  EXPECT_EQ(f.label, "round_trip");
  ASSERT_EQ(f.traces.size(), 1u);
  ASSERT_EQ(f.spans.size(), 2u);
  EXPECT_EQ(f.open_spans, 0u);
  EXPECT_EQ(f.traces[0].status, "closed");
  EXPECT_EQ(f.spans[1].phase, "serialize");
  EXPECT_EQ(f.spans[1].layer, "link");
  EXPECT_EQ(f.spans[1].begin_ps, 1'500);
  EXPECT_EQ(f.spans[1].end_ps, 2'500);
  EXPECT_EQ(f.spans[1].parent, f.traces[0].root);
}

TEST(SpanAnalysisTest, SweepPartitionsRootIntervalExactly) {
  // Root [0, 1000); child serialize [100, 400); grandchild propagate
  // [200, 300).  Innermost-active attribution: root owns [0,100) and
  // [400,1000), serialize owns [100,200) and [300,400), propagate owns
  // [200,300) — phase sums must equal the root duration exactly.
  SpanTracer t;
  const des::TraceContext ctx = t.mint("test.origin", ps(0));
  const std::uint64_t s1 =
      t.begin_span(ctx, des::SpanPhase::kSerialize, "link", "wire", ps(100));
  const std::uint64_t s2 = t.begin_span(des::under(ctx, s1),
                                        des::SpanPhase::kPropagate, "link",
                                        "fiber", ps(200));
  t.end_span(s2, ps(300));
  t.end_span(s1, ps(400));
  t.close_trace(ctx, ps(1'000));

  std::ostringstream os;
  t.write_json(os, "sweep");
  std::istringstream is(os.str());
  SpanFile f;
  std::string error;
  ASSERT_TRUE(load_spans(is, "sweep", f, error)) << error;

  const PhaseBudget b = budget(f);
  EXPECT_EQ(b.closed_traces, 1u);
  EXPECT_EQ(b.total_ps, 1'000);
  EXPECT_EQ(b.phase_ps.at("root"), 700);
  EXPECT_EQ(b.phase_ps.at("serialize"), 200);
  EXPECT_EQ(b.phase_ps.at("propagate"), 100);
  std::int64_t sum = 0;
  for (const auto& [phase, t_ps] : b.phase_ps) sum += t_ps;
  EXPECT_EQ(sum, b.total_ps);

  const auto segs = sweep_trace(f, f.traces[0].id);
  ASSERT_EQ(segs.size(), 5u);
  EXPECT_EQ(segs.front().span->phase, "root");
  EXPECT_EQ(segs[2].span->phase, "propagate");
  // Segments are contiguous: each begins where the previous ended.
  for (std::size_t i = 1; i < segs.size(); ++i)
    EXPECT_EQ(segs[i].begin_ps, segs[i - 1].end_ps);
}

TEST(SpanAnalysisTest, LoaderRejectsTruncatedArtifact) {
  SpanTracer t;
  const des::TraceContext ctx = t.mint("test.origin", ps(0));
  t.close_trace(ctx, ps(10));
  std::ostringstream os;
  t.write_json(os, "truncated");
  // Drop the footer line — the signature of a run killed mid-write.
  std::string body = os.str();
  body.erase(body.rfind("{\"spans_total\""));
  std::istringstream is(body);
  SpanFile f;
  std::string error;
  EXPECT_FALSE(load_spans(is, "truncated", f, error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

// --- WAN lifecycle edge cases -----------------------------------------------

// Two hosts joined by one ATM switch — the same WAN shape the transport
// and fault tests use; the egress link toward b is the fault target.
struct WanFixture {
  des::Scheduler sched;
  net::Host a{sched, "fe_a", 1};
  net::Host b{sched, "fe_b", 2};
  net::AtmSwitch sw{sched, "sw"};
  net::AtmNic nic_a{sched, a, "a.atm",
                    net::Link::Config{units::BitRate::mbps(622.0),
                                      des::SimTime::microseconds(250),
                                      units::Bytes{16u << 20},
                                      des::SimTime::zero()}};
  net::AtmNic nic_b{sched, b, "b.atm",
                    net::Link::Config{units::BitRate::mbps(622.0),
                                      des::SimTime::microseconds(250),
                                      units::Bytes{16u << 20},
                                      des::SimTime::zero()}};
  net::VcAllocator vcs;
  int pa = -1, pb = -1;

  WanFixture() {
    auto cfg = net::Link::Config{units::BitRate::mbps(622.0),
                                 des::SimTime::microseconds(250),
                                 units::Bytes{16u << 20},
                                 des::SimTime::zero()};
    pa = sw.add_port(cfg);
    pb = sw.add_port(cfg);
    nic_a.uplink().set_sink(sw.ingress(pa));
    nic_b.uplink().set_sink(sw.ingress(pb));
    sw.connect_egress(pa, nic_a.ingress());
    sw.connect_egress(pb, nic_b.ingress());
    vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
    a.add_route(2, &nic_a, 2);
    b.add_route(1, &nic_b, 1);
  }

  net::Link& wan_toward_b() { return sw.egress_link(pb); }
};

meta::PathConfig striped(int streams) {
  meta::PathConfig cfg;
  cfg.streams = streams;
  cfg.chunk_bytes = units::Bytes{64u << 10};
  return cfg;
}

TEST(SpanLifecycleTest, StallResetAbortsStrandedChunkSpansWithoutLeaks) {
  WanFixture f;
  SpanTracer tracer;
  f.sched.set_span_hook(&tracer);

  net::FaultPlan plan(f.sched);
  // Cut the WAN long enough that the chunk watchdog tears every stream
  // down and re-stripes the stranded chunks onto fresh connections.
  plan.link_down(f.wan_toward_b(), ms(20), ms(500));

  meta::PathConfig cfg = striped(4);
  cfg.chunk_timeout = ms(250);
  meta::PathTransport path(f.sched, f.a, f.b, 7000, cfg);
  int delivered = 0;
  path.send(0, units::Bytes{8u << 20}, [&] { ++delivered; });
  f.sched.run();

  EXPECT_EQ(delivered, 1);
  ASSERT_GE(path.stats(0).stream_resets, 1u);

  // The reset aborted the stranded chunks' spans and opened fresh ones;
  // at drain nothing may remain open and the message's trace is closed.
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_EQ(tracer.open_traces(), 0u);
  std::size_t aborted = 0;
  for (const auto& s : tracer.spans())
    if (s.aborted) ++aborted;
  EXPECT_GE(aborted, 1u);
  ASSERT_EQ(tracer.traces().size(), 1u);
  EXPECT_EQ(tracer.traces().begin()->second.status, "closed");
}

TEST(SpanLifecycleTest, UnreachableAbortsTraceAndLateCopiesDoNotLeak) {
  WanFixture f;
  SpanTracer tracer;
  f.sched.set_span_hook(&tracer);

  meta::Metacomputer mc(f.sched);
  meta::MachineSpec sa;
  sa.name = "T3E";
  sa.max_pes = 8;
  sa.frontend = &f.a;
  meta::MachineSpec sb;
  sb.name = "SP2";
  sb.max_pes = 8;
  sb.frontend = &f.b;
  const int ma = mc.add_machine(sa);
  const int mb = mc.add_machine(sb);
  mc.link_machines(ma, mb, net::TcpConfig{}, 7000);

  net::FaultPlan plan(f.sched);
  // Watchdogs at 50, 150, 350 ms (backoff 2): all inside the outage, so
  // the message is declared unreachable while its copies are in flight.
  plan.link_down(f.wan_toward_b(), ms(1), ms(1000));

  meta::Communicator comm(mc, {{ma, 0}, {mb, 0}});
  comm.set_retry_policy({ms(50), /*max_retries=*/2, /*backoff=*/2.0});
  int received = 0;
  comm.recv(1, 0, 7, [&](const meta::Message&) { ++received; });
  comm.send(0, 1, 7, 50'000);
  f.sched.run();

  EXPECT_EQ(received, 0);
  EXPECT_EQ(comm.reliability().unreachable_reports, 1u);
  ASSERT_GE(comm.reliability().dropped_after_unreachable, 1u);

  // The trace was aborted when the peer was declared unreachable; the
  // late copies arriving after the link healed must not reopen or leak
  // anything.
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_EQ(tracer.open_traces(), 0u);
  bool saw_unreachable = false;
  for (const auto& [id, tr] : tracer.traces())
    if (tr.status == "aborted" && tr.abort_reason == "unreachable")
      saw_unreachable = true;
  EXPECT_TRUE(saw_unreachable);
}

TEST(SpanLifecycleTest, DrainLeakCensusIsCleanUnderMonitor) {
  WanFixture f;
  SpanTracer tracer;
  f.sched.set_span_hook(&tracer);
  check::Monitor mon(f.sched);
  check::attach_span_tracer(mon, tracer);

  meta::PathTransport path(f.sched, f.a, f.b, 7000, striped(4));
  int delivered = 0;
  path.send(0, units::Bytes{4u << 20}, [&] { ++delivered; });
  f.sched.run();
  mon.finish();

  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(mon.clean()) << mon.report();
}

TEST(SpanLifecycleTest, AttachingTracerIsPerturbationFree) {
  // The same workload with and without the tracer attached must drain at
  // the identical picosecond and move the identical bytes — observing
  // may never change the simulation.
  auto run = [](SpanTracer* tracer) {
    WanFixture f;
    if (tracer != nullptr) f.sched.set_span_hook(tracer);
    meta::PathTransport path(f.sched, f.a, f.b, 7000, striped(4));
    int delivered = 0;
    path.send(0, units::Bytes{2u << 20}, [&] { ++delivered; });
    f.sched.run();
    EXPECT_EQ(delivered, 1);
    return f.sched.now();
  };
  const SimTime bare = run(nullptr);
  SpanTracer tracer;
  const SimTime traced = run(&tracer);
  EXPECT_EQ(bare.ps(), traced.ps());
  EXPECT_GT(tracer.spans().size(), 0u);  // it did observe the run
}

}  // namespace
}  // namespace gtw::obs
