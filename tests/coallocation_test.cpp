#include <gtest/gtest.h>

#include "des/scheduler.hpp"
#include "meta/coallocation.hpp"

namespace gtw::meta {
namespace {

struct BrokerFixture {
  des::Scheduler sched;
  Metacomputer mc{sched};
  int t3e, onyx2;
  CoallocationBroker broker{mc};

  BrokerFixture() {
    MachineSpec a;
    a.name = "T3E";
    a.max_pes = 512;
    t3e = mc.add_machine(a);
    MachineSpec b;
    b.name = "Onyx2";
    b.max_pes = 12;
    onyx2 = mc.add_machine(b);
  }
};

TEST(CoallocationTest, ImmediateFitStartsAtRequestedTime) {
  BrokerFixture f;
  const Reservation r = f.broker.reserve(
      {{f.t3e, 256}, {f.onyx2, 8}}, des::SimTime::seconds(600.0),
      des::SimTime::seconds(100.0));
  EXPECT_TRUE(r.valid());
  EXPECT_EQ(r.start, des::SimTime::seconds(100.0));
  EXPECT_EQ(r.end, des::SimTime::seconds(700.0));
  EXPECT_EQ(f.broker.available(f.t3e, des::SimTime::seconds(300.0)), 256);
  EXPECT_EQ(f.broker.available(f.onyx2, des::SimTime::seconds(300.0)), 4);
}

TEST(CoallocationTest, ConflictPushesStartToFreedCapacity) {
  BrokerFixture f;
  f.broker.reserve({{f.t3e, 400}}, des::SimTime::seconds(1000.0),
                   des::SimTime::zero());
  // 256 more PEs do not fit until the first reservation ends.
  const Reservation r = f.broker.reserve(
      {{f.t3e, 256}}, des::SimTime::seconds(500.0), des::SimTime::zero());
  EXPECT_EQ(r.start, des::SimTime::seconds(1000.0));
}

TEST(CoallocationTest, SmallJobSlipsInBesideBigOne) {
  BrokerFixture f;
  f.broker.reserve({{f.t3e, 400}}, des::SimTime::seconds(1000.0),
                   des::SimTime::zero());
  const Reservation r = f.broker.reserve(
      {{f.t3e, 100}}, des::SimTime::seconds(500.0), des::SimTime::zero());
  EXPECT_EQ(r.start, des::SimTime::zero());  // 112 PEs still free
}

TEST(CoallocationTest, CoallocationGatedByBusiestMachine) {
  BrokerFixture f;
  // The Onyx2 is fully booked for the first hour.
  f.broker.reserve({{f.onyx2, 12}}, des::SimTime::seconds(3600.0),
                   des::SimTime::zero());
  // An fMRI session needs T3E + Onyx2 simultaneously: must wait even
  // though the T3E is idle.
  const Reservation r = f.broker.reserve(
      {{f.t3e, 256}, {f.onyx2, 8}}, des::SimTime::seconds(1800.0),
      des::SimTime::zero());
  EXPECT_EQ(r.start, des::SimTime::seconds(3600.0));
}

TEST(CoallocationTest, ReleaseFreesCapacity) {
  BrokerFixture f;
  const Reservation big = f.broker.reserve(
      {{f.t3e, 512}}, des::SimTime::seconds(1000.0), des::SimTime::zero());
  f.broker.release(big.id);
  const Reservation r = f.broker.reserve(
      {{f.t3e, 512}}, des::SimTime::seconds(100.0), des::SimTime::zero());
  EXPECT_EQ(r.start, des::SimTime::zero());
  EXPECT_EQ(f.broker.active_reservations(), 1u);
}

TEST(CoallocationTest, OversizedRequestThrows) {
  BrokerFixture f;
  EXPECT_THROW(f.broker.reserve({{f.onyx2, 13}}, des::SimTime::seconds(1.0),
                                des::SimTime::zero()),
               std::invalid_argument);
  EXPECT_THROW(f.broker.reserve({{f.t3e, 0}}, des::SimTime::seconds(1.0),
                                des::SimTime::zero()),
               std::invalid_argument);
}

TEST(CoallocationTest, BackToBackWindowsDoNotConflict) {
  BrokerFixture f;
  f.broker.reserve({{f.t3e, 512}}, des::SimTime::seconds(100.0),
                   des::SimTime::zero());
  // A reservation starting exactly at the previous end fits (half-open
  // intervals).
  const Reservation r = f.broker.reserve(
      {{f.t3e, 512}}, des::SimTime::seconds(100.0),
      des::SimTime::seconds(100.0));
  EXPECT_EQ(r.start, des::SimTime::seconds(100.0));
}

TEST(CoallocationTest, MidWindowCapacityDipDetected) {
  BrokerFixture f;
  // A short blocking reservation in the middle of the candidate window.
  f.broker.reserve({{f.t3e, 400}}, des::SimTime::seconds(100.0),
                   des::SimTime::seconds(500.0));
  // A long 256-PE job starting at 0 would overlap [500, 600): must wait
  // until 600.
  const Reservation r = f.broker.reserve(
      {{f.t3e, 256}}, des::SimTime::seconds(1000.0), des::SimTime::zero());
  EXPECT_EQ(r.start, des::SimTime::seconds(600.0));
}

TEST(CoallocationTest, UtilisationAccounting) {
  BrokerFixture f;
  f.broker.reserve({{f.t3e, 256}}, des::SimTime::seconds(500.0),
                   des::SimTime::zero());
  // 256/512 PEs for half the [0, 1000) window = 25%.
  EXPECT_NEAR(f.broker.utilisation(f.t3e, des::SimTime::zero(),
                                   des::SimTime::seconds(1000.0)),
              0.25, 1e-9);
  EXPECT_NEAR(f.broker.utilisation(f.onyx2, des::SimTime::zero(),
                                   des::SimTime::seconds(1000.0)),
              0.0, 1e-9);
}

TEST(CoallocationTest, ClinicalSessionScenario) {
  // The paper's outlook: routine clinical fMRI needs scanner + T3E +
  // Onyx2 + workbench co-allocated.  Model a morning of sessions.
  BrokerFixture f;
  MachineSpec s;
  s.name = "scanner";
  s.max_pes = 1;
  const int scanner = f.mc.add_machine(s);

  std::vector<Reservation> sessions;
  for (int i = 0; i < 4; ++i) {
    sessions.push_back(f.broker.reserve(
        {{scanner, 1}, {f.t3e, 256}, {f.onyx2, 8}},
        des::SimTime::seconds(1800.0), des::SimTime::zero()));
  }
  // Scanner exclusivity serialises the sessions into consecutive slots.
  for (int i = 1; i < 4; ++i)
    EXPECT_EQ(sessions[static_cast<std::size_t>(i)].start,
              sessions[static_cast<std::size_t>(i - 1)].end);
  // T3E batch jobs can still use the other half of the machine.
  const Reservation batch = f.broker.reserve(
      {{f.t3e, 256}}, des::SimTime::seconds(7200.0), des::SimTime::zero());
  EXPECT_EQ(batch.start, des::SimTime::zero());
}

}  // namespace
}  // namespace gtw::meta
