#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "des/scheduler.hpp"
#include "meta/communicator.hpp"
#include "meta/metacomputer.hpp"
#include "meta/ports.hpp"
#include "net/atm.hpp"
#include "net/host.hpp"
#include "net/units.hpp"

namespace gtw::meta {
namespace {

// Two machines whose front-ends are joined by one ATM switch.
struct MetaFixture {
  des::Scheduler sched;
  net::Host fe_a{sched, "fe_a", 1};
  net::Host fe_b{sched, "fe_b", 2};
  net::AtmSwitch sw{sched, "sw"};
  net::AtmNic nic_a{sched, fe_a, "a.atm",
                    net::Link::Config{units::BitRate::mbps(622.0),
                                      des::SimTime::microseconds(250),
                                      units::Bytes{16u << 20},
                                      des::SimTime::zero()}};
  net::AtmNic nic_b{sched, fe_b, "b.atm",
                    net::Link::Config{units::BitRate::mbps(622.0),
                                      des::SimTime::microseconds(250),
                                      units::Bytes{16u << 20},
                                      des::SimTime::zero()}};
  net::VcAllocator vcs;
  Metacomputer mc{sched};
  int t3e = -1, sp2 = -1;

  MetaFixture() {
    auto cfg = net::Link::Config{units::BitRate::mbps(622.0),
                                 des::SimTime::microseconds(250),
                                 units::Bytes{16u << 20},
                                 des::SimTime::zero()};
    const int pa = sw.add_port(cfg);
    const int pb = sw.add_port(cfg);
    nic_a.uplink().set_sink(sw.ingress(pa));
    nic_b.uplink().set_sink(sw.ingress(pb));
    sw.connect_egress(pa, nic_a.ingress());
    sw.connect_egress(pb, nic_b.ingress());
    vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
    fe_a.add_route(2, &nic_a, 2);
    fe_b.add_route(1, &nic_b, 1);

    MachineSpec a;
    a.name = "T3E";
    a.max_pes = 512;
    a.frontend = &fe_a;
    MachineSpec b;
    b.name = "SP2";
    b.max_pes = 64;
    b.frontend = &fe_b;
    t3e = mc.add_machine(a);
    sp2 = mc.add_machine(b);
    mc.link_machines(t3e, sp2, net::TcpConfig{}, 7000);
  }

  std::shared_ptr<Communicator> world(int pes_a, int pes_b) {
    std::vector<ProcLoc> ranks;
    for (int i = 0; i < pes_a; ++i) ranks.push_back({t3e, i});
    for (int i = 0; i < pes_b; ++i) ranks.push_back({sp2, i});
    return std::make_shared<Communicator>(mc, std::move(ranks));
  }
};

TEST(DatatypeTest, Sizes) {
  EXPECT_EQ(datatype_size(Datatype::kByte), 1u);
  EXPECT_EQ(datatype_size(Datatype::kInt32), 4u);
  EXPECT_EQ(datatype_size(Datatype::kInt64), 8u);
  EXPECT_EQ(datatype_size(Datatype::kFloat32), 4u);
  EXPECT_EQ(datatype_size(Datatype::kFloat64), 8u);
}

TEST(CommunicatorTest, IntraMachineSendRecv) {
  MetaFixture f;
  auto comm = f.world(4, 0);
  bool got = false;
  comm->recv(1, 0, 7, [&](const Message& m) {
    got = true;
    EXPECT_EQ(m.source, 0);
    EXPECT_EQ(m.tag, 7);
    EXPECT_EQ(m.bytes, 1000u);
    EXPECT_EQ(std::any_cast<int>(m.data), 42);
  });
  comm->send(0, 1, 7, 1000, std::any{42});
  f.sched.run();
  EXPECT_TRUE(got);
}

TEST(CommunicatorTest, InterMachineSendGoesOverWan) {
  MetaFixture f;
  auto comm = f.world(2, 2);
  bool got = false;
  des::SimTime when;
  comm->recv(2, 0, 1, [&](const Message& m) {
    got = true;
    when = f.sched.now();
    EXPECT_EQ(m.bytes, 100'000u);
  });
  comm->send(0, 2, 1, 100'000);
  f.sched.run();
  EXPECT_TRUE(got);
  EXPECT_GT(f.mc.wan_messages(), 0u);
  // A WAN hop with 2x250 us propagation per direction cannot be faster
  // than the propagation plus serialization.
  EXPECT_GT(when.ms(), 1.0);
}

TEST(CommunicatorTest, UnexpectedMessageBuffered) {
  MetaFixture f;
  auto comm = f.world(2, 0);
  comm->send(0, 1, 5, 64, std::any{1});
  f.sched.run();  // message arrives before the recv is posted
  bool got = false;
  comm->recv(1, 0, 5, [&](const Message&) { got = true; });
  EXPECT_TRUE(got);  // matched synchronously from the unexpected queue
}

TEST(CommunicatorTest, WildcardMatching) {
  MetaFixture f;
  auto comm = f.world(3, 0);
  int from = -1, tag = -1;
  comm->recv(2, kAnySource, kAnyTag, [&](const Message& m) {
    from = m.source;
    tag = m.tag;
  });
  comm->send(1, 2, 99, 8);
  f.sched.run();
  EXPECT_EQ(from, 1);
  EXPECT_EQ(tag, 99);
}

TEST(CommunicatorTest, TagSelectivity) {
  MetaFixture f;
  auto comm = f.world(2, 0);
  std::vector<int> order;
  comm->recv(1, 0, 2, [&](const Message&) { order.push_back(2); });
  comm->recv(1, 0, 1, [&](const Message&) { order.push_back(1); });
  comm->send(0, 1, 1, 8);
  comm->send(0, 1, 2, 8);
  f.sched.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // tag-1 recv matched the tag-1 message
  EXPECT_EQ(order[1], 2);
}

TEST(CommunicatorTest, BarrierReleasesAllRanksTogether) {
  MetaFixture f;
  auto comm = f.world(3, 2);
  int released = 0;
  std::vector<des::SimTime> times;
  for (int r = 0; r < comm->size(); ++r) {
    // Ranks enter at staggered times.
    f.sched.schedule_at(des::SimTime::milliseconds(r * 10), [&, r]() {
      comm->barrier(r, [&]() {
        ++released;
        times.push_back(f.sched.now());
      });
    });
  }
  f.sched.run();
  EXPECT_EQ(released, 5);
  // Nobody is released before the last rank has entered (40 ms).
  for (const auto& t : times) EXPECT_GE(t.ms(), 40.0);
}

TEST(CommunicatorTest, AllreduceSumAcrossMachines) {
  MetaFixture f;
  auto comm = f.world(2, 2);
  int done = 0;
  for (int r = 0; r < 4; ++r) {
    comm->allreduce(r, {static_cast<double>(r + 1), 10.0}, ReduceOp::kSum,
                    [&done](std::vector<double> result) {
                      ++done;
                      ASSERT_EQ(result.size(), 2u);
                      EXPECT_DOUBLE_EQ(result[0], 10.0);  // 1+2+3+4
                      EXPECT_DOUBLE_EQ(result[1], 40.0);
                    });
  }
  f.sched.run();
  EXPECT_EQ(done, 4);
}

TEST(CommunicatorTest, AllreduceMaxMin) {
  MetaFixture f;
  auto comm = f.world(3, 0);
  int done = 0;
  for (int r = 0; r < 3; ++r) {
    comm->allreduce(r, {static_cast<double>(r)}, ReduceOp::kMax,
                    [&](std::vector<double> v) {
                      ++done;
                      EXPECT_DOUBLE_EQ(v[0], 2.0);
                    });
  }
  f.sched.run();
  for (int r = 0; r < 3; ++r) {
    comm->allreduce(r, {static_cast<double>(r)}, ReduceOp::kMin,
                    [&](std::vector<double> v) {
                      ++done;
                      EXPECT_DOUBLE_EQ(v[0], 0.0);
                    });
  }
  f.sched.run();
  EXPECT_EQ(done, 6);
}

TEST(CommunicatorTest, BroadcastDeliversRootData) {
  MetaFixture f;
  auto comm = f.world(2, 2);
  int got = 0;
  for (int r = 0; r < 4; ++r) {
    comm->broadcast(r, /*root=*/1, 4096,
                    [&](const std::any& data) {
                      ++got;
                      EXPECT_EQ(std::any_cast<int>(data), 777);
                    },
                    r == 1 ? std::any{777} : std::any{});
  }
  f.sched.run();
  EXPECT_EQ(got, 4);
}

TEST(CommunicatorTest, GatherCollectsAllContributions) {
  MetaFixture f;
  auto comm = f.world(2, 1);
  bool done = false;
  for (int r = 0; r < 3; ++r) {
    comm->gather(r, 128, std::any{r * 11}, /*root=*/0,
                 r == 0 ? std::function<void(std::vector<std::any>)>(
                              [&](std::vector<std::any> all) {
                                done = true;
                                ASSERT_EQ(all.size(), 3u);
                                EXPECT_EQ(std::any_cast<int>(all[0]), 0);
                                EXPECT_EQ(std::any_cast<int>(all[1]), 11);
                                EXPECT_EQ(std::any_cast<int>(all[2]), 22);
                              })
                        : nullptr);
  }
  f.sched.run();
  EXPECT_TRUE(done);
}

TEST(CommunicatorTest, SpawnCreatesIntercomm) {
  MetaFixture f;
  auto comm = f.world(2, 0);
  std::shared_ptr<Communicator> inter;
  comm->spawn(f.sp2, 4, [&](std::shared_ptr<Communicator> c) { inter = c; });
  f.sched.run();
  ASSERT_NE(inter, nullptr);
  EXPECT_EQ(inter->size(), 6);  // 2 local + 4 spawned
  EXPECT_EQ(inter->location(2).machine, f.sp2);
  // Startup took at least the configured spawn latency.
  EXPECT_GE(f.sched.now().ms(), 100.0);
}

TEST(CommunicatorTest, SpawnExhaustionThrows) {
  MetaFixture f;
  EXPECT_THROW(f.mc.allocate_pes(f.sp2, 1000), std::runtime_error);
}

TEST(PortsTest, ConnectAcceptRendezvous) {
  MetaFixture f;
  PortRegistry ports(f.mc);
  auto server = f.world(2, 0);
  std::vector<ProcLoc> client_ranks{{f.sp2, 0}};
  auto client = std::make_shared<Communicator>(f.mc, client_ranks);

  Intercomm got_server, got_client;
  ports.accept("fire-viz", server, [&](Intercomm ic) { got_server = ic; });
  EXPECT_TRUE(ports.has_pending_accept("fire-viz"));
  ports.connect("fire-viz", client, [&](Intercomm ic) { got_client = ic; });
  f.sched.run();

  ASSERT_NE(got_server.comm, nullptr);
  ASSERT_NE(got_client.comm, nullptr);
  EXPECT_EQ(got_server.comm->size(), 3);
  EXPECT_EQ(got_server.local_size, 2);
  EXPECT_EQ(got_client.local_size, 1);
  EXPECT_EQ(got_client.local_offset, 2);

  // The intercomm must carry real traffic between the groups.
  bool got = false;
  got_server.comm->recv(0, 2, 3, [&](const Message&) { got = true; });
  got_client.comm->send(2, 0, 3, 512);
  f.sched.run();
  EXPECT_TRUE(got);
}

TEST(PortsTest, ConnectBeforeAcceptAlsoWorks) {
  MetaFixture f;
  PortRegistry ports(f.mc);
  auto a = f.world(1, 0);
  auto b = f.world(0, 1);
  bool ok_a = false, ok_b = false;
  ports.connect("x", b, [&](Intercomm) { ok_b = true; });
  ports.accept("x", a, [&](Intercomm) { ok_a = true; });
  f.sched.run();
  EXPECT_TRUE(ok_a);
  EXPECT_TRUE(ok_b);
}

TEST(MetacomputerTest, WanSendRequiresLink) {
  des::Scheduler sched;
  Metacomputer mc(sched);
  MachineSpec a, b;
  a.max_pes = b.max_pes = 4;
  const int ma = mc.add_machine(a);
  const int mb = mc.add_machine(b);
  EXPECT_FALSE(mc.linked(ma, mb));
  EXPECT_THROW(mc.wan_send(ma, mb, units::Bytes{100}, nullptr),
               std::runtime_error);
}

TEST(MetacomputerTest, IntraCostScalesWithBytes) {
  des::Scheduler sched;
  Metacomputer mc(sched);
  MachineSpec a;
  a.intra_latency = des::SimTime::microseconds(1);
  a.intra_bandwidth = units::BitRate::bps(8e9);  // 1 GB/s
  const int m = mc.add_machine(a);
  EXPECT_NEAR(mc.intra_cost(m, units::Bytes::zero()).us(), 1.0, 1e-9);
  // 1 MB at 1 GB/s = 1 ms + 1 us latency.
  EXPECT_NEAR(mc.intra_cost(m, units::Bytes{1'000'000}).us(), 1001.0, 0.1);
}

}  // namespace
}  // namespace gtw::meta
