// Unit tests for the staged-dataflow engine: queue policies, concurrency
// limits, admission control, backpressure, drop accounting, metrics and the
// built-in trace hooks.
#include <gtest/gtest.h>

#include <any>
#include <vector>

#include "des/scheduler.hpp"
#include "flow/graph.hpp"
#include "flow/stage.hpp"
#include "trace/trace.hpp"

namespace gtw {
namespace {

using des::Scheduler;
using des::SimTime;

SimTime sec(double s) { return SimTime::seconds(s); }

struct Completion {
  int index;
  SimTime at;
};

// Run a graph to completion, recording (index, time) for every item that
// leaves the last stage.
std::vector<Completion> collect(Scheduler& sched, flow::StageGraph& g) {
  std::vector<Completion> out;
  g.on_complete([&](const flow::Item& it) {
    out.push_back({it.index, sched.now()});
  });
  sched.run();
  return out;
}

TEST(FlowGraphTest, FifoTwoStagePreservesOrder) {
  Scheduler sched;
  flow::StageGraph g(sched);
  g.add_stage(flow::compute_stage("a", [](const flow::Item&) {
    return sec(1.0);
  }));
  g.add_stage(flow::compute_stage("b", [](const flow::Item&) {
    return sec(0.5);
  }));
  for (int i = 0; i < 4; ++i) g.push(i);
  const auto done = collect(sched, g);
  ASSERT_EQ(done.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(done[static_cast<size_t>(i)].index, i);
  // Stage a is the 1 s bottleneck: completions at 1.5, 2.5, 3.5, 4.5.
  EXPECT_EQ(done[0].at, sec(1.5));
  EXPECT_EQ(done[3].at, sec(4.5));
  EXPECT_EQ(g.metrics().pushed, 4u);
  EXPECT_EQ(g.metrics().admitted, 4u);
  EXPECT_EQ(g.metrics().completed, 4u);
  EXPECT_EQ(g.in_flight(), 0);
}

TEST(FlowGraphTest, ConcurrencyLimitSerializes) {
  Scheduler sched;
  flow::StageGraph g(sched);
  g.add_stage(flow::compute_stage("only", [](const flow::Item&) {
    return sec(1.0);
  }, 1));
  for (int i = 0; i < 3; ++i) g.push(i);
  const auto done = collect(sched, g);
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].at, sec(1.0));
  EXPECT_EQ(done[1].at, sec(2.0));
  EXPECT_EQ(done[2].at, sec(3.0));
}

TEST(FlowGraphTest, UnlimitedConcurrencyOverlaps) {
  Scheduler sched;
  flow::StageGraph g(sched);
  g.add_stage(flow::delay_stage("lat", sec(1.0)));  // concurrency 0
  for (int i = 0; i < 3; ++i) g.push(i);
  const auto done = collect(sched, g);
  ASSERT_EQ(done.size(), 3u);
  for (const auto& c : done) EXPECT_EQ(c.at, sec(1.0));
}

TEST(FlowGraphTest, SequentialAdmissionDropStaleSupersedes) {
  Scheduler sched;
  flow::StageGraph g(sched, {/*max_in_flight=*/1,
                             /*admission=*/flow::QueuePolicy::kDropStale});
  g.add_stage(flow::compute_stage("busy", [](const flow::Item&) {
    return sec(10.0);
  }));
  std::vector<int> dropped;
  g.on_drop([&](const flow::Item& it, int stage) {
    EXPECT_EQ(stage, -1);  // superseded while awaiting admission
    dropped.push_back(it.index);
  });
  for (int i = 0; i < 5; ++i) g.push(i);
  // Pushes queue up behind the busy graph; superseding happens when the
  // in-flight slot frees and only the newest is admitted.
  EXPECT_EQ(g.waiting_admission(), 4u);
  const auto done = collect(sched, g);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].index, 0);
  EXPECT_EQ(done[1].index, 4);
  EXPECT_EQ(dropped, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(g.metrics().admission_dropped, 3u);
  EXPECT_EQ(g.metrics().completed, 2u);
}

TEST(FlowGraphTest, DropStaleStageQueueRunsOnlyNewest) {
  Scheduler sched;
  flow::StageGraph g(sched);
  g.add_stage(flow::delay_stage("fan", SimTime::zero()));
  flow::StageConfig slow = flow::compute_stage(
      "slow", [](const flow::Item&) { return sec(1.0); }, 1);
  slow.policy = flow::QueuePolicy::kDropStale;
  const int s = g.add_stage(std::move(slow));
  std::vector<std::pair<int, int>> drops;  // (index, stage)
  g.on_drop([&](const flow::Item& it, int stage) {
    drops.push_back({it.index, stage});
  });
  for (int i = 0; i < 4; ++i) g.push(i);
  const auto done = collect(sched, g);
  // Item 0 occupies the slot; when it frees, only the newest (3) runs.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].index, 0);
  EXPECT_EQ(done[1].index, 3);
  EXPECT_EQ(drops, (std::vector<std::pair<int, int>>{{1, s}, {2, s}}));
  EXPECT_EQ(g.metrics().stage(s).dropped, 2u);
}

TEST(FlowGraphTest, DropNewestBoundedQueueRefusesArrivals) {
  Scheduler sched;
  flow::StageGraph g(sched);
  g.add_stage(flow::delay_stage("fan", SimTime::zero()));
  flow::StageConfig slow = flow::compute_stage(
      "slow", [](const flow::Item&) { return sec(1.0); }, 1);
  slow.policy = flow::QueuePolicy::kDropNewest;
  slow.capacity = 1;
  const int s = g.add_stage(std::move(slow));
  for (int i = 0; i < 4; ++i) g.push(i);
  const auto done = collect(sched, g);
  // 0 runs, 1 queues, 2 and 3 find the queue full and are discarded.
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].index, 0);
  EXPECT_EQ(done[1].index, 1);
  EXPECT_EQ(g.metrics().stage(s).dropped, 2u);
  EXPECT_EQ(g.metrics().completed, 2u);
}

TEST(FlowGraphTest, BlockPolicyBackpressuresUpstream) {
  Scheduler sched;
  flow::StageGraph g(sched);
  g.add_stage(flow::compute_stage("fast", [](const flow::Item&) {
    return sec(1.0);
  }, 1));
  flow::StageConfig slow = flow::compute_stage(
      "slow", [](const flow::Item&) { return sec(10.0); }, 1);
  slow.policy = flow::QueuePolicy::kBlock;
  slow.capacity = 1;
  g.add_stage(std::move(slow));
  for (int i = 0; i < 4; ++i) g.push(i);
  const auto done = collect(sched, g);
  ASSERT_EQ(done.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(done[static_cast<size_t>(i)].index, i);
  // Item 0: 1 s fast + 10 s slow.  Each successor waits on the single slow
  // slot; nothing is dropped, the fast stage just stalls (item 2 finishes
  // "fast" at t=3 but holds its slot until t=11 frees the slow queue).
  EXPECT_EQ(done[0].at, sec(11.0));
  EXPECT_EQ(done[1].at, sec(21.0));
  EXPECT_EQ(done[2].at, sec(31.0));
  EXPECT_EQ(done[3].at, sec(41.0));
  EXPECT_EQ(g.metrics().stage(1).dropped, 0u);
  EXPECT_EQ(g.metrics().completed, 4u);
}

TEST(FlowGraphTest, MetricsIntegrateBusyTimeAndQueues) {
  Scheduler sched;
  flow::StageGraph g(sched);
  g.add_stage(flow::compute_stage("work", [](const flow::Item&) {
    return sec(2.0);
  }, 1));
  for (int i = 0; i < 3; ++i) g.push(i);
  sched.run();
  const flow::StageMetrics& m = g.metrics().stage(0);
  EXPECT_EQ(m.items_in, 3u);
  EXPECT_EQ(m.items_out, 3u);
  EXPECT_EQ(m.busy, sec(6.0));
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_EQ(m.queue_peak, 2u);  // two items waited while the first ran
  // Active span 0..6 s, all of it busy.
  EXPECT_DOUBLE_EQ(m.occupancy(), 1.0);
  EXPECT_DOUBLE_EQ(m.throughput_per_s(), 0.5);
  EXPECT_NE(g.metrics().report().find("work"), std::string::npos);
}

TEST(FlowGraphTest, PayloadTravelsWithItem) {
  Scheduler sched;
  flow::StageGraph g(sched);
  int seen = 0;
  g.add_stage(flow::inline_stage("peek", [&](flow::StageContext,
                                             flow::Item& it) {
    seen = std::any_cast<int>(it.payload);
    it.payload = seen * 2;
  }));
  int out = 0;
  g.on_complete([&](const flow::Item& it) {
    out = std::any_cast<int>(it.payload);
  });
  g.push(7, std::any{21});
  sched.run();
  EXPECT_EQ(seen, 21);
  EXPECT_EQ(out, 42);
}

TEST(FlowGraphTest, TracerEmitsEnterLeavePerStage) {
  Scheduler sched;
  flow::StageGraph g(sched);
  g.add_stage(flow::compute_stage("alpha", [](const flow::Item&) {
    return sec(1.0);
  }));
  g.add_stage(flow::compute_stage("beta", [](const flow::Item&) {
    return sec(0.5);
  }));
  trace::TraceRecorder rec(2);
  g.attach_trace(&rec);
  for (int i = 0; i < 3; ++i) g.push(i);
  sched.run();
  int enters[2] = {0, 0}, leaves[2] = {0, 0};
  for (const trace::TraceEvent& e : rec.events()) {
    if (e.kind == trace::EventKind::kEnter) ++enters[e.rank];
    if (e.kind == trace::EventKind::kLeave) ++leaves[e.rank];
  }
  EXPECT_EQ(enters[0], 3);
  EXPECT_EQ(leaves[0], 3);
  EXPECT_EQ(enters[1], 3);
  EXPECT_EQ(leaves[1], 3);
  // Stage names became trace states (id 0 is reserved for "idle").
  bool alpha = false, beta = false;
  for (std::uint32_t s = 0; s < rec.state_count(); ++s) {
    if (rec.state_name(s) == "alpha") alpha = true;
    if (rec.state_name(s) == "beta") beta = true;
  }
  EXPECT_TRUE(alpha);
  EXPECT_TRUE(beta);
}

TEST(FlowGraphTest, TraceAttachMidstreamOnlyRecordsLaterItems) {
  Scheduler sched;
  flow::StageGraph g(sched);
  g.add_stage(flow::compute_stage("s", [](const flow::Item&) {
    return sec(1.0);
  }));
  g.push(0);
  sched.run();
  trace::TraceRecorder rec(1);
  g.attach_trace(&rec);
  g.push(1);
  sched.run();
  int enters = 0;
  for (const trace::TraceEvent& e : rec.events())
    if (e.kind == trace::EventKind::kEnter) ++enters;
  EXPECT_EQ(enters, 1);
}

TEST(PeriodicSourceTest, ScheduledFirstMatchesCbrCadence) {
  Scheduler sched;
  flow::StageGraph g(sched);
  g.add_stage(flow::inline_stage("sink", [](flow::StageContext,
                                            flow::Item&) {}));
  std::vector<SimTime> at;
  g.on_complete([&](const flow::Item&) { at.push_back(sched.now()); });
  flow::PeriodicSource src(g, {sec(1.0), 3, /*immediate_first=*/false});
  src.start();
  sched.run();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], sec(0.0));  // first tick scheduled at +0
  EXPECT_EQ(at[1], sec(1.0));
  EXPECT_EQ(at[2], sec(2.0));
  EXPECT_EQ(src.emitted(), 3);
}

TEST(PeriodicSourceTest, ImmediateFirstEmitsSynchronouslyAndSignalsLast) {
  Scheduler sched;
  flow::StageGraph g(sched);
  g.add_stage(flow::inline_stage("sink", [](flow::StageContext,
                                            flow::Item&) {}));
  bool last = false;
  flow::PeriodicSource src(g, {sec(0.5), 2, /*immediate_first=*/true},
                           nullptr, [&] { last = true; });
  src.start();
  EXPECT_EQ(src.emitted(), 1);  // first item pushed inside start()
  sched.run();
  EXPECT_EQ(src.emitted(), 2);
  EXPECT_TRUE(last);
}

TEST(FlowGraphTest, DegradedModeForcesNewestWinsAndTimesRecovery) {
  Scheduler sched;
  // Sequential request/reply with plain FIFO admission: normally every
  // pushed item eventually runs.
  flow::StageGraph g(sched, {/*max_in_flight=*/1,
                             /*admission=*/flow::QueuePolicy::kFifo});
  g.add_stage(flow::compute_stage("work", [](const flow::Item&) {
    return sec(1.0);
  }));
  std::vector<int> done;
  g.on_complete([&](const flow::Item& it) { done.push_back(it.index); });

  // Items every 0.5 s; the graph is degraded during [2 s, 6.25 s).  The
  // window ends off the completion grid (integer seconds) so the recovery
  // interval to the next completion is strictly positive.
  for (int i = 0; i < 12; ++i) {
    sched.schedule_at(sec(0.5 * i), [&g, i]() { g.push(i); });
  }
  sched.schedule_at(sec(2.0), [&g]() { g.set_degraded(true); });
  sched.schedule_at(sec(6.25), [&g]() { g.set_degraded(false); });
  sched.run();

  const auto& m = g.metrics();
  EXPECT_EQ(m.degraded_spans, 1u);
  EXPECT_EQ(m.recoveries, 1u);
  EXPECT_EQ(m.degraded_time, sec(4.25));
  // While degraded, the backlog behind the busy stage is superseded
  // newest-wins instead of queueing.
  EXPECT_GT(m.degraded_dropped, 0u);
  EXPECT_EQ(m.degraded_dropped, m.admission_dropped);
  // Recovery clock: set_degraded(false) -> next completion.
  EXPECT_GT(m.last_recovery_time, des::SimTime::zero());
  EXPECT_LE(m.last_recovery_time, sec(1.0));
  // Everything pushed was either completed or accounted as dropped.
  EXPECT_EQ(m.pushed, done.size() + m.admission_dropped);
  EXPECT_FALSE(g.degraded());
  EXPECT_EQ(g.in_flight(), 0);
}

TEST(PeriodicSourceTest, StopCancelsFurtherTicks) {
  Scheduler sched;
  flow::StageGraph g(sched);
  g.add_stage(flow::inline_stage("sink", [](flow::StageContext,
                                            flow::Item&) {}));
  flow::PeriodicSource src(g, {sec(1.0), 10, /*immediate_first=*/false});
  src.start();
  sched.schedule_after(sec(2.5), [&] { src.stop(); });
  sched.run();
  EXPECT_EQ(src.emitted(), 3);  // ticks at 0, 1, 2 only
}

}  // namespace
}  // namespace gtw
