#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "fire/volume.hpp"
#include "net/atm.hpp"
#include "net/units.hpp"
#include "scanner/phantom.hpp"
#include "trace/trace.hpp"
#include "viz/merge.hpp"
#include "viz/workbench.hpp"

namespace gtw {
namespace {

TEST(WorkbenchFormatTest, FrameBytesMatchPaper) {
  // "two projection planes, each of them displays stereo images of
  // 1024x768 true color (24 Bit) pixels" = 2 x 2 x 1024 x 768 x 3 bytes.
  viz::WorkbenchFormat fmt;
  EXPECT_EQ(fmt.frame_bytes().count(), 2ull * 2 * 1024 * 768 * 3);
}

TEST(ClassicalIpFpsTest, Below8FpsAt622AsPaperStates) {
  viz::WorkbenchFormat fmt;
  const double fps = viz::classical_ip_fps(fmt, net::kOc12Line);
  EXPECT_LT(fps, 8.0);
  EXPECT_GT(fps, 6.0);  // but not absurdly below
}

TEST(ClassicalIpFpsTest, ScalesWithLinkRate) {
  viz::WorkbenchFormat fmt;
  const double f622 = viz::classical_ip_fps(fmt, net::kOc12Line);
  const double f2400 = viz::classical_ip_fps(fmt, net::kOc48Line);
  EXPECT_NEAR(f2400 / f622, 4.0, 0.05);
}

TEST(ClassicalIpFpsTest, LargerMtuHelpsSlightly) {
  viz::WorkbenchFormat fmt;
  const double small = viz::classical_ip_fps(fmt, net::kOc12Line, units::Bytes{9180});
  const double large = viz::classical_ip_fps(fmt, net::kOc12Line, units::Bytes{65535});
  EXPECT_GT(large, small);
  EXPECT_LT(large / small, 1.10);  // cell tax dominates, headers are minor
}

TEST(MergeTest, UpsamplesAndFlagsActivation) {
  const fire::Dims anat_d{64, 64, 32};
  const fire::Dims func_d{16, 16, 8};
  fire::VolumeF anat = scanner::make_anatomical(anat_d);
  fire::VolumeF corr(func_d, 0.0f);
  corr.at(8, 8, 4) = 0.9f;  // one activated functional voxel

  const viz::MergeResult res = viz::merge_functional(anat, corr, 0.5f);
  EXPECT_GT(res.activated_voxels, 0u);
  // Upsampling factor 4x4x4: the blob covers on the order of 4^3 anatomical
  // voxels (trilinear support shrinks it below the full cube).
  EXPECT_LT(res.activated_voxels, 600u);
  // The anatomical grid never samples the functional voxel centre exactly,
  // so trilinear interpolation attenuates the 0.9 peak (0.875^3 = 0.67 of
  // it at the nearest sample).
  EXPECT_GT(res.peak_correlation, 0.55f);
  EXPECT_LE(res.peak_correlation, 0.9f);
  // Overlayed voxels got brighter than the plain anatomical.
  bool brighter = false;
  for (int z = 0; z < anat_d.nz && !brighter; ++z)
    for (int y = 0; y < anat_d.ny && !brighter; ++y)
      for (int x = 0; x < anat_d.nx && !brighter; ++x)
        if (res.overlay.at(x, y, z) &&
            res.merged.at(x, y, z) > anat.at(x, y, z))
          brighter = true;
  EXPECT_TRUE(brighter);
}

TEST(MergeTest, NoActivationBelowClip) {
  fire::VolumeF anat(scanner::make_anatomical(fire::Dims{32, 32, 16}));
  fire::VolumeF corr(fire::Dims{8, 8, 4}, 0.2f);
  const viz::MergeResult res = viz::merge_functional(anat, corr, 0.5f);
  EXPECT_EQ(res.activated_voxels, 0u);
}

TEST(RenderModelTest, FrameTimeScalesWithProcessors) {
  viz::WorkbenchFormat fmt;
  viz::RenderModel one{0.012, 1};
  viz::RenderModel twelve{0.012, 12};
  EXPECT_NEAR(one.frame_time(fmt).sec() / twelve.frame_time(fmt).sec(), 12.0,
              1e-9);
}

TEST(TraceTest, StateTimesAttributed) {
  trace::TraceRecorder rec(2);
  const auto compute = rec.define_state("compute");
  const auto comm = rec.define_state("comm");
  rec.enter(0, compute, des::SimTime::seconds(0.0));
  rec.enter(0, comm, des::SimTime::seconds(2.0));   // nested
  rec.leave(0, comm, des::SimTime::seconds(3.0));
  rec.leave(0, compute, des::SimTime::seconds(5.0));
  rec.enter(1, compute, des::SimTime::seconds(1.0));
  rec.leave(1, compute, des::SimTime::seconds(4.0));

  trace::TraceStats stats(rec);
  EXPECT_NEAR(stats.state_time(0, compute).sec(), 4.0, 1e-9);  // 2 + 2
  EXPECT_NEAR(stats.state_time(0, comm).sec(), 1.0, 1e-9);
  EXPECT_NEAR(stats.state_time(1, compute).sec(), 3.0, 1e-9);
}

TEST(TraceTest, MessageMatrix) {
  trace::TraceRecorder rec(3);
  rec.send(0, 1, 5, units::Bytes{1000}, des::SimTime::seconds(0.1));
  rec.send(0, 1, 5, units::Bytes{2000}, des::SimTime::seconds(0.2));
  rec.send(2, 0, 9, units::Bytes{512}, des::SimTime::seconds(0.3));
  rec.recv(1, 0, 5, units::Bytes{1000}, des::SimTime::seconds(0.4));

  trace::TraceStats stats(rec);
  EXPECT_EQ(stats.messages(0, 1), 2u);
  EXPECT_EQ(stats.bytes(0, 1), 3000u);
  EXPECT_EQ(stats.messages(2, 0), 1u);
  EXPECT_EQ(stats.messages(1, 0), 0u);
  EXPECT_EQ(stats.total_messages(), 3u);
  EXPECT_EQ(stats.total_bytes(), 3512u);
}

TEST(TraceTest, BinaryRoundTrip) {
  trace::TraceRecorder rec(4);
  const auto s1 = rec.define_state("solve");
  const auto s2 = rec.define_state("exchange");
  for (int i = 0; i < 100; ++i) {
    rec.enter(static_cast<std::uint32_t>(i % 4), i % 2 ? s1 : s2,
              des::SimTime::milliseconds(i));
    rec.leave(static_cast<std::uint32_t>(i % 4), i % 2 ? s1 : s2,
              des::SimTime::milliseconds(i + 1));
    rec.send(static_cast<std::uint32_t>(i % 4),
             static_cast<std::uint32_t>((i + 1) % 4), 7, units::Bytes{100u + i},
             des::SimTime::milliseconds(i));
  }
  std::stringstream buf;
  rec.write(buf);
  const trace::TraceRecorder back = trace::TraceRecorder::read(buf);
  ASSERT_EQ(back.events().size(), rec.events().size());
  EXPECT_EQ(back.ranks(), 4);
  EXPECT_EQ(back.state_name(s1), "solve");
  EXPECT_EQ(back.state_name(s2), "exchange");
  for (std::size_t i = 0; i < rec.events().size(); ++i) {
    EXPECT_EQ(back.events()[i].time_ps, rec.events()[i].time_ps);
    EXPECT_EQ(back.events()[i].rank, rec.events()[i].rank);
    EXPECT_EQ(back.events()[i].bytes, rec.events()[i].bytes);
  }
}

TEST(TraceTest, ReadRejectsGarbage) {
  std::stringstream buf;
  buf << "not a trace file";
  EXPECT_THROW(trace::TraceRecorder::read(buf), std::runtime_error);
}

namespace {

// A small valid serialized trace: 2 ranks, states {"idle", "work"}, one
// enter/leave pair and one send.  Offsets into the byte string:
//   0 magic, 4 version, 8 ranks, 12 n_states, 16 len("idle"), 20 "idle",
//   24 len("work"), 28 "work", 32 n_events (u64), 40 first event
//   (+0 time i64, +8 rank u32, +12 kind u8, +13 id u32, +17 tag u32,
//    +21 bytes u64; 29 bytes per event).
std::string good_trace_bytes() {
  trace::TraceRecorder rec(2);
  const auto w = rec.define_state("work");
  rec.enter(0, w, des::SimTime::seconds(1.0));
  rec.leave(0, w, des::SimTime::seconds(2.0));
  rec.send(1, 0, 5, units::Bytes{4096}, des::SimTime::seconds(1.5));
  std::stringstream buf;
  rec.write(buf);
  return buf.str();
}

// Read a trace from raw bytes, expecting a runtime_error whose message
// contains `needle` (the reader must say *what* was wrong).
void expect_rejects(std::string bytes, const std::string& needle) {
  std::stringstream buf(std::move(bytes));
  try {
    trace::TraceRecorder::read(buf);
    FAIL() << "expected rejection mentioning \"" << needle << "\"";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

template <typename T>
void patch(std::string& bytes, std::size_t offset, T value) {
  ASSERT_LE(offset + sizeof value, bytes.size());
  std::memcpy(bytes.data() + offset, &value, sizeof value);
}

}  // namespace

TEST(TraceTest, GoodBytesRoundTrip) {
  std::stringstream buf(good_trace_bytes());
  const trace::TraceRecorder rec = trace::TraceRecorder::read(buf);
  EXPECT_EQ(rec.ranks(), 2);
  EXPECT_EQ(rec.state_count(), 2u);
  EXPECT_EQ(rec.state_name(1), "work");
  ASSERT_EQ(rec.events().size(), 3u);
}

TEST(TraceTest, ReadRejectsWrongVersion) {
  std::string b = good_trace_bytes();
  patch<std::uint32_t>(b, 4, 99);
  expect_rejects(std::move(b), "version");
}

TEST(TraceTest, ReadRejectsZeroRanks) {
  std::string b = good_trace_bytes();
  patch<std::uint32_t>(b, 8, 0);
  expect_rejects(std::move(b), "rank count");
}

TEST(TraceTest, ReadRejectsAbsurdRankCount) {
  std::string b = good_trace_bytes();
  patch<std::uint32_t>(b, 8, 0xffffffffu);
  expect_rejects(std::move(b), "rank count");
}

TEST(TraceTest, ReadRejectsAbsurdStateCount) {
  std::string b = good_trace_bytes();
  patch<std::uint32_t>(b, 12, 0xffffffffu);
  expect_rejects(std::move(b), "state count");
}

TEST(TraceTest, ReadRejectsAbsurdStateNameLength) {
  // A lying name length must be rejected up front, not allocated.
  std::string b = good_trace_bytes();
  patch<std::uint32_t>(b, 16, 0x7fffffffu);
  expect_rejects(std::move(b), "state-name length");
}

TEST(TraceTest, ReadRejectsLyingEventCountAsTruncation) {
  std::string b = good_trace_bytes();
  // Claim ~10^18 events while the payload holds 3: the reader must fail on
  // the missing bytes instead of reserving for the fake count.
  patch<std::uint64_t>(b, 32, 1ull << 60);
  expect_rejects(std::move(b), "truncated");
}

TEST(TraceTest, ReadRejectsTruncatedEventPayload) {
  std::string b = good_trace_bytes();
  b.resize(b.size() - 10);  // chop into the last event
  expect_rejects(std::move(b), "truncated");
}

TEST(TraceTest, ReadRejectsUnknownEventKind) {
  std::string b = good_trace_bytes();
  patch<std::uint8_t>(b, 40 + 12, 17);
  expect_rejects(std::move(b), "kind");
}

TEST(TraceTest, ReadRejectsEventRankOutOfRange) {
  std::string b = good_trace_bytes();
  patch<std::uint32_t>(b, 40 + 8, 2);  // ranks == 2, so rank 2 is invalid
  expect_rejects(std::move(b), "rank");
}

TEST(TraceTest, ReadRejectsEnterStateOutOfRange) {
  std::string b = good_trace_bytes();
  patch<std::uint32_t>(b, 40 + 13, 7);  // enter event, only 2 states exist
  expect_rejects(std::move(b), "state id");
}

TEST(TraceTest, GanttRendersStates) {
  trace::TraceRecorder rec(2);
  const auto a = rec.define_state("alpha");
  const auto b = rec.define_state("beta");
  rec.enter(0, a, des::SimTime::seconds(0.0));
  rec.leave(0, a, des::SimTime::seconds(1.0));
  rec.enter(1, b, des::SimTime::seconds(0.5));
  rec.leave(1, b, des::SimTime::seconds(1.0));
  trace::TraceStats stats(rec);
  const std::string g = stats.gantt(40);
  EXPECT_NE(g.find('a'), std::string::npos);
  EXPECT_NE(g.find('b'), std::string::npos);
  EXPECT_NE(g.find("rank  0"), std::string::npos);
}

TEST(TraceTest, ProfileMentionsStatesAndMessages) {
  trace::TraceRecorder rec(1);
  const auto s = rec.define_state("work");
  rec.enter(0, s, des::SimTime::seconds(0.0));
  rec.leave(0, s, des::SimTime::seconds(2.5));
  rec.send(0, 0, 1, units::Bytes{42}, des::SimTime::seconds(1.0));
  trace::TraceStats stats(rec);
  const std::string p = stats.profile();
  EXPECT_NE(p.find("work"), std::string::npos);
  EXPECT_NE(p.find("messages: 1"), std::string::npos);
}

}  // namespace
}  // namespace gtw
