#include <gtest/gtest.h>

#include <memory>

#include "des/scheduler.hpp"
#include "net/atm.hpp"
#include "net/host.hpp"
#include "net/tcp.hpp"
#include "net/units.hpp"

namespace gtw::net {
namespace {

// Two hosts connected by one ATM switch.  `rate` and `buffer_cells` shape
// the bottleneck (the switch egress toward b).
struct TcpFixture {
  des::Scheduler sched;
  Host a;
  Host b;
  AtmSwitch sw;
  AtmNic nic_a;
  AtmNic nic_b;
  VcAllocator vcs;
  int pa = -1, pb = -1;

  explicit TcpFixture(units::BitRate bottleneck = units::BitRate::mbps(622.0),
                      units::Bytes bottleneck_queue = units::Bytes{4u << 20},
                      des::SimTime prop = des::SimTime::microseconds(250),
                      HostCosts costs = {})
      : a(sched, "a", 1, costs), b(sched, "b", 2, costs), sw(sched, "sw"),
        nic_a(sched, a, "a.atm",
              Link::Config{units::BitRate::mbps(622.0), prop,
                           units::Bytes{16u << 20}, des::SimTime::zero()},
              kMtuAtmDefault),
        nic_b(sched, b, "b.atm",
              Link::Config{units::BitRate::mbps(622.0), prop,
                           units::Bytes{16u << 20}, des::SimTime::zero()},
              kMtuAtmDefault) {
    pa = sw.add_port(
        Link::Config{units::BitRate::mbps(622.0), prop,
                           units::Bytes{16u << 20}, des::SimTime::zero()});
    pb = sw.add_port(Link::Config{bottleneck, prop, bottleneck_queue,
                                  des::SimTime::zero()});
    nic_a.uplink().set_sink(sw.ingress(pa));
    nic_b.uplink().set_sink(sw.ingress(pb));
    sw.connect_egress(pa, nic_a.ingress());
    sw.connect_egress(pb, nic_b.ingress());
    vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
    a.add_route(2, &nic_a, 2);
    b.add_route(1, &nic_b, 1);
  }

  // Deterministic single loss: drop exactly the n-th data frame (ACKs are
  // 40-byte PDUs, data frames are MTU-sized) leaving a toward the switch.
  void drop_nth_data_frame(int n) {
    FrameSink pass = sw.ingress(pa);
    auto count = std::make_shared<int>(0);
    nic_a.uplink().set_sink([pass, count, n](Frame fr) {
      if (fr.wire_bytes > 1000 && ++*count == n) return;
      pass(std::move(fr));
    });
  }

  // One-way outage on b's uplink: every frame b sends (the ACK path in a
  // one-directional transfer) is dropped while `from <= now < until`.
  void silence_b_uplink(des::SimTime from, des::SimTime until) {
    FrameSink pass = sw.ingress(pb);
    nic_b.uplink().set_sink([this, pass, from, until](Frame fr) {
      const des::SimTime now = sched.now();
      if (now >= from && now < until) return;
      pass(std::move(fr));
    });
  }
};

TEST(TcpTest, DeliversSingleMessage) {
  TcpFixture f;
  TcpConnection conn(f.a, f.b, 100, 200);
  bool delivered = false;
  conn.send(0, units::Bytes{50'000}, {}, [&](const std::any&, des::SimTime) {
    delivered = true;
  });
  f.sched.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(conn.bytes_received(1), 50'000u);
  EXPECT_EQ(conn.stats(0).bytes_acked, 50'000u);
}

TEST(TcpTest, MessageBoundariesDeliverInOrder) {
  TcpFixture f;
  TcpConnection conn(f.a, f.b, 100, 200);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    conn.send(0, units::Bytes{10'000 + static_cast<std::uint64_t>(i) * 1000},
              std::any{i},
              [&order](const std::any& d, des::SimTime) {
                order.push_back(std::any_cast<int>(d));
              });
  }
  f.sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TcpTest, FullDuplexSimultaneousTransfers) {
  TcpFixture f;
  TcpConnection conn(f.a, f.b, 100, 200);
  bool d0 = false, d1 = false;
  conn.send(0, units::Bytes{200'000}, {}, [&](const std::any&, des::SimTime) { d0 = true; });
  conn.send(1, units::Bytes{300'000}, {}, [&](const std::any&, des::SimTime) { d1 = true; });
  f.sched.run();
  EXPECT_TRUE(d0);
  EXPECT_TRUE(d1);
  EXPECT_EQ(conn.bytes_received(1), 200'000u);
  EXPECT_EQ(conn.bytes_received(0), 300'000u);
}

TEST(TcpTest, ThroughputApproachesBottleneckOnCleanPath) {
  TcpFixture f(/*bottleneck=*/units::BitRate::mbps(155.0));
  TcpConfig cfg;
  cfg.recv_buffer = units::Bytes{2u << 20};
  const auto res =
      run_bulk_transfer(f.sched, f.a, f.b, units::Bytes{20u << 20}, cfg);
  // AAL5 + LLC/SNAP tax on 9180-byte MTU is ~10%; expect > 75% of line rate
  // and never more than the line rate.
  EXPECT_GT(res.goodput.bps(), 0.75 * units::BitRate::mbps(155.0).bps());
  EXPECT_LT(res.goodput.bps(), units::BitRate::mbps(155.0).bps());
}

TEST(TcpTest, SmallWindowLimitsThroughputToWindowPerRtt) {
  // 10 ms propagation on each of the two hops per direction -> RTT ~40 ms;
  // a 64 KB window caps goodput at ~window/RTT = 13 Mbit/s regardless of
  // the 622 Mbit/s line.
  TcpFixture f(units::BitRate::mbps(622.0), units::Bytes{16u << 20},
               des::SimTime::milliseconds(10));
  TcpConfig cfg;
  cfg.recv_buffer = units::Bytes{64u << 10};
  const auto res = run_bulk_transfer(f.sched, f.a, f.b, units::Bytes{8u << 20}, cfg);
  const double cap = (64.0 * 1024 * 8) / 0.040;
  EXPECT_LT(res.goodput.bps(), 1.1 * cap);
  EXPECT_GT(res.goodput.bps(), 0.5 * cap);
}

TEST(TcpTest, RecoversFromLossViaFastRetransmit) {
  // Tiny switch buffer at the bottleneck forces overflow drops.
  TcpFixture f(/*bottleneck=*/units::BitRate::mbps(100.0),
               /*bottleneck_queue=*/units::Bytes{60'000});
  TcpConfig cfg;
  cfg.recv_buffer = units::Bytes{1u << 20};
  bool delivered = false;
  TcpConnection conn(f.a, f.b, 100, 200, cfg);
  conn.send(0, units::Bytes{10u << 20}, {}, [&](const std::any&, des::SimTime) {
    delivered = true;
  });
  f.sched.run();
  EXPECT_TRUE(delivered);
  const auto st = conn.stats(0);
  EXPECT_GT(st.retransmits, 0u);  // losses actually happened
  EXPECT_EQ(conn.bytes_received(1), 10u << 20);
}

TEST(TcpTest, RttEstimateTracksPathDelay) {
  TcpFixture f(units::BitRate::mbps(622.0), units::Bytes{16u << 20},
               des::SimTime::milliseconds(5));
  TcpConnection conn(f.a, f.b, 100, 200);
  bool done = false;
  conn.send(0, units::Bytes{1u << 20}, {}, [&](const std::any&, des::SimTime) { done = true; });
  f.sched.run();
  EXPECT_TRUE(done);
  // Two 5 ms hops in each direction -> 20 ms round-trip propagation; the
  // estimate must sit just above that on this uncongested path.
  EXPECT_GE(conn.stats(0).srtt_ms, 20.0);
  EXPECT_LT(conn.stats(0).srtt_ms, 30.0);
}

TEST(TcpTest, LargerMssGivesHigherGoodputWithPerPacketCosts) {
  // Per-packet CPU cost of 50 us: 1500-byte packets cap the stack at
  // ~30k pkts/s (~360 Mbit/s at wire level is unreachable; payload rate
  // ~360 Mb/s * (1460/1500)... in practice far below the 64 KB case).
  HostCosts costs;
  costs.per_packet_send = des::SimTime::microseconds(50);
  costs.per_packet_recv = des::SimTime::microseconds(50);
  costs.per_byte_send_ns = 0.5;
  costs.per_byte_recv_ns = 0.5;

  auto goodput_with_mtu = [&](std::uint32_t mtu) {
    TcpFixture f(units::BitRate::mbps(622.0), units::Bytes{16u << 20},
                 des::SimTime::microseconds(250), costs);
    TcpConfig cfg;
    cfg.mss = units::Bytes{mtu - kIpHeaderBytes - kTcpHeaderBytes};
    cfg.recv_buffer = units::Bytes{4u << 20};
    return run_bulk_transfer(f.sched, f.a, f.b, units::Bytes{16u << 20}, cfg)
        .goodput.bps();
  };
  const double small = goodput_with_mtu(1500);
  const double large = goodput_with_mtu(9180);
  EXPECT_GT(large, 1.5 * small);
}

TEST(TcpTest, DelayedAckStillCompletes) {
  TcpFixture f;
  TcpConfig cfg;
  cfg.delayed_ack = true;
  TcpConnection conn(f.a, f.b, 100, 200, cfg);
  bool delivered = false;
  conn.send(0, units::Bytes{500'000}, {}, [&](const std::any&, des::SimTime) {
    delivered = true;
  });
  f.sched.run();
  EXPECT_TRUE(delivered);
  // Delayed ACKs halve (roughly) the ACK count.
  EXPECT_LT(conn.stats(1).acks_sent, conn.stats(0).segments_sent);
}

TEST(TcpTest, DelayedAckStillFastRetransmitsOnLoss) {
  // RFC 5681: out-of-order segments must be ACKed immediately even with
  // delayed ACKs enabled, otherwise the duplicate-ACK stream that drives
  // fast retransmit is throttled by the delayed-ACK timer and the sender
  // falls back to a (much slower) RTO.  Drop the 17th of 20 segments so
  // only three follow the hole: exactly the three immediate dup-ACKs fast
  // retransmit needs, and too few for the delayed path to produce in time.
  TcpFixture f;
  TcpConfig cfg;
  cfg.delayed_ack = true;
  f.drop_nth_data_frame(17);
  TcpConnection conn(f.a, f.b, 100, 200, cfg);
  bool delivered = false;
  conn.send(0, 20ull * cfg.mss, {}, [&](const std::any&, des::SimTime) {
    delivered = true;
  });
  f.sched.run();
  EXPECT_TRUE(delivered);
  const auto st = conn.stats(0);
  EXPECT_EQ(st.timeouts, 0u);
  EXPECT_EQ(st.fast_retransmits, 1u);
}

TEST(TcpTest, BidirectionalDataSegmentsAreNotDuplicateAcks) {
  // RFC 5681 defines a duplicate ACK as carrying *no data*.  With a slow
  // a->b direction and a fast b->a direction, b's data segments repeat the
  // same cumulative ACK many times while a's data trickles in; counting
  // them as dup-ACKs fires spurious fast retransmits on a loss-free path.
  TcpFixture f(/*bottleneck=*/units::BitRate::mbps(100.0));
  TcpConnection conn(f.a, f.b, 100, 200);
  bool d0 = false, d1 = false;
  conn.send(0, units::Bytes{1u << 20}, {}, [&](const std::any&, des::SimTime) { d0 = true; });
  conn.send(1, units::Bytes{1u << 20}, {}, [&](const std::any&, des::SimTime) { d1 = true; });
  f.sched.run();
  EXPECT_TRUE(d0);
  EXPECT_TRUE(d1);
  for (int side : {0, 1}) {
    EXPECT_EQ(conn.stats(side).fast_retransmits, 0u) << "side " << side;
    EXPECT_EQ(conn.stats(side).retransmits, 0u) << "side " << side;
  }
}

TEST(TcpTest, ReceiverWindowShrinksWithOutOfOrderBacklog) {
  // The advertised window must account for bytes buffered out of order:
  // while a hole exists, the sender may only fill the *remaining* buffer.
  // An app-limited stream keeps try_send active without needing ACKs (the
  // other trigger), so after one mid-stream drop plus a one-way ACK-path
  // outage the only thing standing between the sender and the receiver's
  // buffer is the advertised window.  With the static-window bug the
  // sender pours the entire 64 KB buffer in out of order; with a window
  // that shrinks as the backlog grows it stalls near half.
  TcpFixture f(units::BitRate::mbps(622.0), units::Bytes{16u << 20},
               des::SimTime::milliseconds(10));
  TcpConfig cfg;
  cfg.recv_buffer = units::Bytes{64u << 10};
  f.drop_nth_data_frame(30);  // sent at t = 29 * 13 ms = 377 ms
  f.silence_b_uplink(des::SimTime::milliseconds(420),   // pre-hole ACKs land
                     des::SimTime::milliseconds(700));
  TcpConnection conn(f.a, f.b, 100, 200, cfg);
  constexpr int kMessages = 120;
  std::uint64_t delivered_bytes = 0;
  const std::uint64_t mss = cfg.mss.count();
  for (int i = 0; i < kMessages; ++i) {
    f.sched.schedule_at(
        des::SimTime::milliseconds(13 * i), [&conn, &delivered_bytes, mss]() {
          conn.send(0, units::Bytes{mss}, {},
                    [&delivered_bytes, mss](const std::any&, des::SimTime) {
                      delivered_bytes += mss;
                    });
        });
  }
  f.sched.run();
  EXPECT_EQ(delivered_bytes, std::uint64_t{kMessages} * cfg.mss.count());
  EXPECT_EQ(conn.stats(0).bytes_acked,
            std::uint64_t{kMessages} * cfg.mss.count());
  // The backlog must be real (the outage bit) yet bounded by the shrinking
  // window: the static window lets it reach ~56 KB of the 64 KB buffer.
  EXPECT_GT(conn.stats(1).max_ooo_bytes, 2ull * cfg.mss.count());
  EXPECT_LE(conn.stats(1).max_ooo_bytes, (32u << 10) + cfg.mss.count());
}

TEST(TcpTest, StatsAreConsistent) {
  TcpFixture f;
  TcpConnection conn(f.a, f.b, 100, 200);
  conn.send(0, units::Bytes{1u << 20});
  f.sched.run();
  const auto st = conn.stats(0);
  EXPECT_EQ(st.bytes_queued, 1u << 20);
  EXPECT_EQ(st.bytes_acked, 1u << 20);
  EXPECT_GE(st.segments_sent,
            (1u << 20) / conn.config().mss.count());  // at least payload/mss segments
  EXPECT_EQ(st.timeouts, 0u);
}

}  // namespace
}  // namespace gtw::net
