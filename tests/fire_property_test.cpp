// Property-style parameterised sweeps over the FIRE numerics: motion
// recovery across a grid of rigid transforms, HRF/reference behaviour
// across parameter ranges, RVO identifiability, and pipeline consistency
// invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "exec/machine.hpp"
#include "fire/motion.hpp"
#include "fire/reference.hpp"
#include "fire/rigid.hpp"
#include "fire/rvo.hpp"
#include "fire/workload.hpp"
#include "scanner/phantom.hpp"

namespace gtw::fire {
namespace {

// --- motion correction sweep -------------------------------------------------

struct MotionCase {
  double tx, ty, tz, rx, ry, rz;
};

class MotionSweep : public ::testing::TestWithParam<MotionCase> {};

TEST_P(MotionSweep, RecoversInjectedTransformWithinTolerance) {
  const MotionCase c = GetParam();
  const VolumeF ref = scanner::make_head_phantom(Dims{32, 32, 12});
  const RigidTransform injected{c.tx, c.ty, c.tz, c.rx, c.ry, c.rz};
  const VolumeF moved = resample(ref, injected);
  MotionCorrector mc(ref);
  const MotionResult res = mc.correct(moved);

  // For small motions the corrector's estimate approximates the inverse
  // (negated parameters).
  EXPECT_NEAR(res.estimate.tx, -c.tx, 0.15);
  EXPECT_NEAR(res.estimate.ty, -c.ty, 0.15);
  EXPECT_NEAR(res.estimate.tz, -c.tz, 0.15);
  EXPECT_NEAR(res.estimate.rx, -c.rx, 0.012);
  EXPECT_NEAR(res.estimate.ry, -c.ry, 0.012);
  EXPECT_NEAR(res.estimate.rz, -c.rz, 0.012);
}

INSTANTIATE_TEST_SUITE_P(
    TransformGrid, MotionSweep,
    ::testing::Values(MotionCase{0.4, 0, 0, 0, 0, 0},
                      MotionCase{-0.6, 0.3, 0, 0, 0, 0},
                      MotionCase{0, 0, 0.5, 0, 0, 0},
                      MotionCase{0, 0, 0, 0.015, 0, 0},
                      MotionCase{0, 0, 0, 0, 0.02, 0},
                      MotionCase{0, 0, 0, 0, 0, -0.025},
                      MotionCase{0.3, -0.3, 0.2, 0.01, -0.01, 0.015},
                      MotionCase{-0.8, 0.5, -0.3, -0.015, 0.01, 0.02}));

// --- HRF / reference sweep ----------------------------------------------------

class HrfDelaySweep : public ::testing::TestWithParam<double> {};

TEST_P(HrfDelaySweep, KernelPeakTracksDelayParameter) {
  const double delay = GetParam();
  const auto h = hrf_kernel(HrfParams{delay, 1.5}, 0.05);
  const auto peak = std::max_element(h.begin(), h.end());
  const double t_peak =
      (static_cast<double>(std::distance(h.begin(), peak)) + 0.5) * 0.05;
  // Gamma mode = mean - sd^2/mean; allow that analytic offset.
  const double mode = delay - 1.5 * 1.5 / delay;
  EXPECT_NEAR(t_peak, mode, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Delays, HrfDelaySweep,
                         ::testing::Values(4.0, 5.0, 6.0, 7.0, 8.0));

class HrfDispersionSweep : public ::testing::TestWithParam<double> {};

TEST_P(HrfDispersionSweep, WiderDispersionFlattensKernel) {
  const double w = GetParam();
  const auto narrow = hrf_kernel(HrfParams{6.0, 0.8}, 0.05);
  const auto wide = hrf_kernel(HrfParams{6.0, w}, 0.05);
  EXPECT_LT(*std::max_element(wide.begin(), wide.end()),
            *std::max_element(narrow.begin(), narrow.end()));
}

INSTANTIATE_TEST_SUITE_P(Dispersions, HrfDispersionSweep,
                         ::testing::Values(1.2, 1.8, 2.4, 3.0));

TEST(ReferenceProperty, DifferentDelaysAreDistinguishable) {
  // The RVO premise: references for different delays must decorrelate
  // enough to be identified.
  StimulusDesign stim{8, 8};
  const auto r5 = make_reference(stim, 96, 2.0, HrfParams{5.0, 1.5});
  const auto r8 = make_reference(stim, 96, 2.0, HrfParams{8.0, 1.5});
  double dot = 0.0;
  for (std::size_t i = 0; i < r5.size(); ++i) dot += r5[i] * r8[i];
  dot /= static_cast<double>(r5.size());
  EXPECT_LT(dot, 0.9);   // clearly below perfect correlation
  EXPECT_GT(dot, 0.0);   // but same stimulus: still positively related
}

// --- RVO identifiability across the parameter plane ---------------------------

struct RvoCase {
  double delay, dispersion;
};

class RvoSweep : public ::testing::TestWithParam<RvoCase> {};

TEST_P(RvoSweep, RecoversPlantedParameters) {
  const RvoCase c = GetParam();
  const Dims d{2, 2, 1};
  StimulusDesign stim{8, 8};
  const double tr = 2.0;
  const auto resp = make_reference(stim, 80, tr,
                                   HrfParams{c.delay, c.dispersion});
  std::vector<VolumeF> series;
  for (int t = 0; t < 80; ++t) {
    VolumeF img(d, 100.0f);
    img[0] += static_cast<float>(6.0 * resp[static_cast<std::size_t>(t)]);
    series.push_back(img);
  }
  RvoConfig cfg;
  cfg.delay_steps = 13;
  cfg.disp_steps = 13;
  const RvoResult res = RvoAnalyzer(d, stim, tr, cfg).analyze(series);
  EXPECT_NEAR(res.fits[0].delay_s, c.delay, 0.8);
  EXPECT_GT(res.fits[0].best_correlation, 0.98f);
}

INSTANTIATE_TEST_SUITE_P(ParameterPlane, RvoSweep,
                         ::testing::Values(RvoCase{4.0, 1.0},
                                           RvoCase{5.0, 2.0},
                                           RvoCase{6.0, 1.5},
                                           RvoCase{7.0, 2.5},
                                           RvoCase{8.0, 1.0}));

// --- execution model invariants ------------------------------------------------

class PeSweep : public ::testing::TestWithParam<int> {};

TEST_P(PeSweep, ModuleTimesMonotoneUpToSliceCount) {
  // Up to the decomposition grain, more PEs never makes a module slower by
  // more than the coordination overhead.
  const int pes = GetParam();
  const exec::MachineProfile t3e = exec::MachineProfile::t3e600();
  const FireWork w = make_fire_work(FireWorkParams{});
  const double t_here = exec::time_on(t3e, w.rvo, pes).sec();
  const double t_double = exec::time_on(t3e, w.rvo, pes * 2).sec();
  EXPECT_LT(t_double, t_here * 1.02);
  // And the efficiency at this PE count is sane (no super-linear model
  // artefacts).
  const double t1 = exec::time_on(t3e, w.rvo, 1).sec();
  EXPECT_LE(t1 / t_here, pes * 1.05);
}

INSTANTIATE_TEST_SUITE_P(PeCounts, PeSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

TEST(WorkloadProperty, LargerImagesMoreWork) {
  const FireWork small = make_fire_work({{64, 64, 16}, 128, 100, 8, 3});
  const FireWork big = make_fire_work({{128, 128, 32}, 128, 100, 8, 3});
  EXPECT_GT(big.rvo.parallel_ops, 7.9 * small.rvo.parallel_ops);
  EXPECT_GT(big.filter.parallel_ops, 7.9 * small.filter.parallel_ops);
  // The slab grain grows with the slice count.
  EXPECT_EQ(big.filter.max_parallelism, 32);
}

}  // namespace
}  // namespace gtw::fire
