#include <gtest/gtest.h>

#include <cmath>

#include "des/random.hpp"
#include "linalg/cg.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"

namespace gtw::linalg {
namespace {

Matrix random_matrix(des::Rng& rng, std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  return m;
}

Vector random_vector(des::Rng& rng, std::size_t n) {
  Vector v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

TEST(MatrixTest, IdentityMultiply) {
  des::Rng rng(1);
  const Matrix a = random_matrix(rng, 4, 4);
  const Matrix i = Matrix::identity(4);
  const Matrix ai = a * i;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(ai(r, c), a(r, c));
}

TEST(MatrixTest, TransposeInvolution) {
  des::Rng rng(2);
  const Matrix a = random_matrix(rng, 3, 5);
  const Matrix att = a.transposed().transposed();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 5; ++c) EXPECT_DOUBLE_EQ(att(r, c), a(r, c));
}

TEST(MatrixTest, MatVecMatchesMatMat) {
  des::Rng rng(3);
  const Matrix a = random_matrix(rng, 4, 6);
  const Vector v = random_vector(rng, 6);
  Matrix vcol(6, 1);
  for (std::size_t i = 0; i < 6; ++i) vcol(i, 0) = v[i];
  const Vector av = a * v;
  const Matrix avm = a * vcol;
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(av[i], avm(i, 0), 1e-12);
}

TEST(VectorOps, DotAndNorm) {
  const Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
}

TEST(PearsonTest, PerfectCorrelation) {
  const Vector a{1, 2, 3, 4, 5};
  Vector b = a;
  for (auto& x : b) x = 3.0 * x + 7.0;  // affine transform
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  for (auto& x : b) x = -x;
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesIsZero) {
  const Vector a{1, 2, 3, 4};
  const Vector b{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

class LeastSquaresParam : public ::testing::TestWithParam<int> {};

TEST_P(LeastSquaresParam, QrMatchesNormalEquationsOnRandomProblems) {
  des::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 20 + static_cast<std::size_t>(GetParam()) * 7;
  const std::size_t n = 3 + static_cast<std::size_t>(GetParam()) % 5;
  const Matrix a = random_matrix(rng, m, n);
  const Vector b = random_vector(rng, m);
  const Vector x_qr = solve_least_squares_qr(a, b);
  const Vector x_ne = solve_least_squares_normal(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_qr[i], x_ne[i], 1e-8);
  // Residual must be orthogonal to the column space: A^T (A x - b) = 0.
  const Vector ax = a * x_qr;
  Vector r(m);
  for (std::size_t i = 0; i < m; ++i) r[i] = ax[i] - b[i];
  const Vector atr = a.transposed() * r;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(atr[i], 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, LeastSquaresParam,
                         ::testing::Range(0, 8));

TEST(SolveTest, QrRecoversExactSolution) {
  des::Rng rng(5);
  const Matrix a = random_matrix(rng, 30, 6);
  const Vector x_true = random_vector(rng, 6);
  const Vector b = a * x_true;
  const Vector x = solve_least_squares_qr(a, b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(SolveTest, SpdCholesky) {
  des::Rng rng(6);
  const Matrix a = random_matrix(rng, 8, 8);
  Matrix spd = a.transposed() * a;
  for (std::size_t i = 0; i < 8; ++i) spd(i, i) += 8.0;  // well conditioned
  const Vector x_true = random_vector(rng, 8);
  const Vector b = spd * x_true;
  const Vector x = solve_spd(spd, b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(SolveTest, SpdRejectsIndefinite) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = -1.0;
  EXPECT_THROW(solve_spd(m, Vector{1.0, 1.0}), std::runtime_error);
}

TEST(SolveTest, LuWithPivoting) {
  // Requires pivoting: zero on the leading diagonal.
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const Vector x = solve_lu(a, Vector{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveTest, LuRejectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_THROW(solve_lu(a, Vector{1.0, 2.0}), std::runtime_error);
}

class EigenParam : public ::testing::TestWithParam<int> {};

TEST_P(EigenParam, ReconstructsRandomSymmetricMatrix) {
  des::Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  const std::size_t n = 3 + static_cast<std::size_t>(GetParam());
  Matrix a = random_matrix(rng, n, n);
  // Symmetrise.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) a(i, j) = a(j, i);
  const EigenResult e = eigen_symmetric(a);
  // Eigenvalues descending.
  for (std::size_t i = 1; i < n; ++i) EXPECT_GE(e.values[i - 1], e.values[i]);
  // V diag(lambda) V^T == A.
  Matrix lam(n, n);
  for (std::size_t i = 0; i < n; ++i) lam(i, i) = e.values[i];
  const Matrix rec = e.vectors * lam * e.vectors.transposed();
  EXPECT_LT((rec - a).norm(), 1e-9 * std::max(1.0, a.norm()));
  // Orthonormal eigenvectors.
  const Matrix vtv = e.vectors.transposed() * e.vectors;
  EXPECT_LT((vtv - Matrix::identity(n)).norm(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenParam, ::testing::Range(0, 8));

TEST(CgTest, SolvesSpdSystem) {
  des::Rng rng(7);
  const std::size_t n = 50;
  const Matrix a = random_matrix(rng, n, n);
  Matrix spd = a.transposed() * a;
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  const Vector x_true = random_vector(rng, n);
  const Vector b = spd * x_true;
  const CgResult r = conjugate_gradient(
      [&](const Vector& x, Vector& y) { y = spd * x; }, b, 500, 1e-12);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(r.x[i], x_true[i], 1e-6);
}

TEST(CgTest, LaplacianStencil) {
  // 1-D Poisson with unit spacing: -u'' = f, Dirichlet 0 ends.
  const std::size_t n = 64;
  auto apply = [n](const Vector& x, Vector& y) {
    y.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double v = 2.0 * x[i];
      if (i > 0) v -= x[i - 1];
      if (i + 1 < n) v -= x[i + 1];
      y[i] = v;
    }
  };
  const Vector b(n, 1.0);
  const CgResult r = conjugate_gradient(apply, b, 1000, 1e-10);
  EXPECT_TRUE(r.converged);
  // Solution of the discrete problem is quadratic and symmetric.
  EXPECT_NEAR(r.x[0], r.x[n - 1], 1e-6);
  EXPECT_GT(r.x[n / 2], r.x[0]);
}

}  // namespace
}  // namespace gtw::linalg
