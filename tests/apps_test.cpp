#include <gtest/gtest.h>

#include <cmath>

#include "apps/climate.hpp"
#include "apps/groundwater.hpp"
#include "apps/meg.hpp"
#include "apps/video.hpp"
#include "meta/communicator.hpp"
#include "testbed/testbed.hpp"

namespace gtw::apps {
namespace {

// --- groundwater -----------------------------------------------------------

TEST(TraceFlowTest, SolvesToConvergence) {
  TraceFlowSolver solver{TraceConfig{}};
  const auto sol = solver.solve();
  EXPECT_TRUE(sol.converged);
  EXPECT_GT(sol.cg_iterations, 5);
}

TEST(TraceFlowTest, HeadIsBoundedAndMonotoneAlongFlow) {
  TraceConfig cfg;
  cfg.dims = {24, 16, 8};
  const auto sol = TraceFlowSolver(cfg).solve();
  // Maximum principle: head stays within the Dirichlet bounds.
  for (std::size_t i = 0; i < sol.head.size(); ++i) {
    EXPECT_LE(sol.head[i], 1.0 + 1e-6);
    EXPECT_GE(sol.head[i], -1e-6);
  }
  // Mean head decreases along x.
  auto mean_at_x = [&](int x) {
    double acc = 0;
    for (int z = 0; z < cfg.dims.nz; ++z)
      for (int y = 0; y < cfg.dims.ny; ++y) acc += sol.head.at(x, y, z);
    return acc / (cfg.dims.ny * cfg.dims.nz);
  };
  EXPECT_GT(mean_at_x(2), mean_at_x(12));
  EXPECT_GT(mean_at_x(12), mean_at_x(21));
}

TEST(TraceFlowTest, FlowAvoidsLowPermeabilityLens) {
  TraceConfig cfg;
  cfg.dims = {24, 16, 8};
  const auto sol = TraceFlowSolver(cfg).solve();
  // Velocity magnitude in the lens centre is much smaller than in the
  // unobstructed background at the same x.
  auto vmag = [&](int x, int y, int z) {
    const std::size_t i =
        (static_cast<std::size_t>(z) * cfg.dims.ny + y) * cfg.dims.nx + x;
    return std::sqrt(sol.velocity.vx[i] * sol.velocity.vx[i] +
                     sol.velocity.vy[i] * sol.velocity.vy[i] +
                     sol.velocity.vz[i] * sol.velocity.vz[i]);
  };
  EXPECT_LT(vmag(12, 8, 4), 0.5 * vmag(12, 1, 1));
}

TEST(ParTraceTest, ParticlesMoveDownGradient) {
  TraceConfig cfg;
  cfg.dims = {24, 16, 8};
  const auto sol = TraceFlowSolver(cfg).solve();
  ParTraceTracker tracker(1.0 / cfg.k_background);
  des::Rng rng(1);
  auto particles = tracker.seed(cfg.dims, 50, rng);
  const double x0 = particles[0].x;
  for (int s = 0; s < 20; ++s) tracker.step(particles, sol.velocity);
  double mean_x = 0;
  for (const auto& p : particles) mean_x += p.x;
  mean_x /= 50;
  EXPECT_GT(mean_x, x0 + 0.5);  // net motion toward the outlet
}

TEST(FlowFieldTest, SampleInterpolatesComponents) {
  FlowField f;
  f.dims = {2, 2, 2};
  f.vx = {0, 1, 0, 1, 0, 1, 0, 1};  // vx = x
  f.vy.assign(8, 2.0f);
  f.vz.assign(8, 0.0f);
  double vx, vy, vz;
  f.sample(0.5, 0.5, 0.5, vx, vy, vz);
  EXPECT_NEAR(vx, 0.5, 1e-9);
  EXPECT_NEAR(vy, 2.0, 1e-9);
  EXPECT_NEAR(vz, 0.0, 1e-9);
}

// --- climate ----------------------------------------------------------------

TEST(RegridTest, PreservesConstantField) {
  Field2D src(32, 16, 5.5);
  const Field2D dst = regrid(src, 48, 24);
  for (double v : dst.v) EXPECT_NEAR(v, 5.5, 1e-12);
}

TEST(RegridTest, RoundTripPreservesSmoothFieldMean) {
  Field2D src(64, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 64; ++x)
      src.at(x, y) = 280.0 + 10.0 * std::sin(x * 0.1) * std::cos(y * 0.2);
  const Field2D up = regrid(src, 96, 48);
  const Field2D back = regrid(up, 64, 32);
  EXPECT_NEAR(back.mean(), src.mean(), 0.05);
}

TEST(OceanModelTest, RelaxesTowardForcing) {
  OceanModel ocean{OceanConfig{}};
  AtmosModel atmos{AtmosConfig{}};
  const double t0 = ocean.sst().mean();
  for (int s = 0; s < 50; ++s) {
    const Field2D sst_atm = regrid(ocean.sst(), 96, 48);
    const Field2D flux = atmos.compute_flux(sst_atm);
    ocean.step(regrid(flux, ocean.config().nx, ocean.config().ny));
  }
  const double t1 = ocean.sst().mean();
  EXPECT_NE(t0, t1);
  // Stays in a physically sane band.
  EXPECT_GT(t1, 240.0);
  EXPECT_LT(t1, 320.0);
}

TEST(OceanModelTest, PolarCellsColderThanTropics) {
  OceanModel ocean{OceanConfig{}};
  AtmosModel atmos{AtmosConfig{}};
  for (int s = 0; s < 80; ++s) {
    const Field2D flux = atmos.compute_flux(regrid(ocean.sst(), 96, 48));
    ocean.step(regrid(flux, ocean.config().nx, ocean.config().ny));
  }
  const auto& sst = ocean.sst();
  double pole = 0, equator = 0;
  for (int x = 0; x < sst.nx; ++x) {
    pole += sst.at(x, 0);
    equator += sst.at(x, sst.ny / 2);
  }
  EXPECT_LT(pole, equator - 5.0 * sst.nx);
}

TEST(AtmosModelTest, FluxCoolsHotOcean) {
  AtmosModel atmos{AtmosConfig{}};
  Field2D hot(96, 48, 330.0);
  Field2D cold(96, 48, 260.0);
  const Field2D fh = atmos.compute_flux(hot);
  const Field2D fc = atmos.compute_flux(cold);
  EXPECT_LT(fh.mean(), fc.mean());  // hotter ocean loses more heat
}

// --- MEG / MUSIC -------------------------------------------------------------

TEST(SarvasTest, RadialDipoleIsSilent) {
  const Vec3 pos{0.0, 0.0, 0.05};
  const Vec3 radial_moment{0.0, 0.0, 1e-8};  // along r0
  const Vec3 sensor{0.03, 0.04, 0.11};
  const Vec3 b = sarvas_field(pos, radial_moment, sensor);
  EXPECT_LT(std::abs(b.x) + std::abs(b.y) + std::abs(b.z), 1e-18);
}

TEST(SarvasTest, TangentialDipoleProducesField) {
  const Vec3 pos{0.0, 0.0, 0.05};
  const Vec3 moment{1e-8, 0.0, 0.0};
  const Vec3 sensor{0.03, 0.04, 0.11};
  const Vec3 b = sarvas_field(pos, moment, sensor);
  EXPECT_GT(std::abs(b.x) + std::abs(b.y) + std::abs(b.z), 1e-16);
}

TEST(SarvasTest, FieldFallsOffWithDistance)
{
  const Vec3 pos{0.01, 0.0, 0.05};
  const Vec3 moment{0.0, 1e-8, 0.0};
  const Vec3 near{0.02, 0.02, 0.11};
  const Vec3 far{0.04, 0.04, 0.22};
  auto mag = [&](const Vec3& s) {
    const Vec3 b = sarvas_field(pos, moment, s);
    return std::sqrt(b.x * b.x + b.y * b.y + b.z * b.z);
  };
  EXPECT_GT(mag(near), mag(far));
}

TEST(MusicTest, LocalizesTwoDipoles) {
  MegConfig mc;
  mc.noise_sigma = 5e-15;
  MegSimulator sim(mc);
  const SimulatedDipole d1{{0.03, 0.02, 0.05}, {1e-8, 0.0, 0.0}, 11.0, 0.0};
  const SimulatedDipole d2{{-0.03, -0.01, 0.06}, {0.0, 1e-8, 0.0}, 17.0, 1.0};
  const linalg::Matrix data = sim.simulate({d1, d2});

  MusicScanner scanner(sim.sensors());
  MusicConfig cfg;
  cfg.grid_n = 9;
  const auto peaks = scanner.localize(data, cfg);
  ASSERT_EQ(peaks.size(), 2u);

  auto dist = [](const Vec3& a, const Vec3& b) {
    return std::sqrt((a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y) +
                     (a.z - b.z) * (a.z - b.z));
  };
  // Each true dipole has a recovered peak within ~1.5 grid cells (~2.6 cm).
  const double cell = 2.0 * cfg.grid_extent / (cfg.grid_n - 1);
  for (const Vec3 truth : {d1.position, d2.position}) {
    double best = 1e9;
    for (const auto& p : peaks) best = std::min(best, dist(p.position, truth));
    EXPECT_LT(best, 1.5 * cell) << "dipole not localized";
  }
}

TEST(MusicTest, MetricPeaksNearTrueSource) {
  MegConfig mc;
  mc.noise_sigma = 1e-15;
  MegSimulator sim(mc);
  const SimulatedDipole d{{0.02, 0.01, 0.05}, {1e-8, 0.0, 0.0}, 10.0, 0.0};
  const linalg::Matrix data = sim.simulate({d});
  MusicScanner scanner(sim.sensors());
  const linalg::Matrix pn = scanner.noise_projector(data, 1);
  const double at_source = scanner.metric(pn, d.position);
  const double away = scanner.metric(pn, Vec3{-0.04, -0.04, 0.03});
  EXPECT_GT(at_source, 10.0 * away);
}

// --- coupled runs over the metacomputer --------------------------------------

struct AppsFixture {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  meta::Metacomputer mc{tb.scheduler()};
  int m_t3e, m_sp2;

  AppsFixture() {
    meta::MachineSpec t3e;
    t3e.name = "T3E";
    t3e.max_pes = 512;
    t3e.frontend = &tb.t3e600();
    meta::MachineSpec sp2;
    sp2.name = "SP2";
    sp2.max_pes = 64;
    sp2.frontend = &tb.sp2();
    m_t3e = mc.add_machine(t3e);
    m_sp2 = mc.add_machine(sp2);
    net::TcpConfig cfg;
    cfg.mss = tb.options().atm_mtu - units::Bytes{40};
    cfg.recv_buffer = units::Bytes{4u << 20};
    mc.link_machines(m_t3e, m_sp2, cfg, 7000);
  }

  std::shared_ptr<meta::Communicator> pair_comm() {
    return std::make_shared<meta::Communicator>(
        mc, std::vector<meta::ProcLoc>{{m_sp2, 0}, {m_t3e, 0}});
  }
};

TEST(GroundwaterCouplingTest, RunsToCompletionWithFieldTransfers) {
  AppsFixture f;
  TraceConfig cfg;
  cfg.dims = {16, 16, 4};
  GroundwaterCoupling run(f.pair_comm(), cfg, /*particles=*/100, /*steps=*/10);
  trace::TraceRecorder rec(2);
  const auto st_solve = rec.define_state("solve");
  const auto st_advect = rec.define_state("advect");
  run.set_trace(&rec, st_solve, st_advect);
  run.start();
  f.tb.scheduler().run();
  const CouplingResult& res = run.result();
  EXPECT_EQ(res.steps_completed, 10);
  EXPECT_EQ(res.bytes_per_step, 16u * 16 * 4 * 3 * 4);  // 3 components x f32
  EXPECT_GT(res.burst_mbyte_per_s, 1.0);
  EXPECT_GT(res.elapsed_s, 10 * 0.12);  // includes the compute phases

  // The trace saw both compute states and every field transfer.
  trace::TraceStats stats(rec);
  EXPECT_NEAR(stats.state_time(0, st_solve).sec(), 1.0, 0.01);   // 10 x 100ms
  EXPECT_NEAR(stats.state_time(1, st_advect).sec(), 0.2, 0.01);  // 10 x 20ms
  EXPECT_EQ(stats.messages(0, 1), 10u);
}

TEST(ClimateCouplingTest, ExchangesFieldsAndStaysPhysical) {
  AppsFixture f;
  ClimateCoupling run(f.pair_comm(), OceanConfig{}, AtmosConfig{}, 20);
  run.start();
  f.tb.scheduler().run();
  const ClimateResult& res = run.result();
  EXPECT_EQ(res.steps_completed, 20);
  // 128x64 doubles up + 96x48 doubles down per step.
  EXPECT_EQ(res.bytes_per_step, 128u * 64 * 8 + 96u * 48 * 8);
  EXPECT_GT(res.mean_sst, 240.0);
  EXPECT_LT(res.mean_sst, 320.0);
  EXPECT_GT(res.exchange_latency_s, 0.001);  // crossed the WAN
}

TEST(DistributedMusicTest, MatchesSerialLocalization) {
  AppsFixture f;
  MegConfig mcfg;
  mcfg.noise_sigma = 5e-15;
  MegSimulator sim(mcfg);
  const SimulatedDipole d1{{0.03, 0.02, 0.05}, {1e-8, 0.0, 0.0}, 11.0, 0.0};
  const SimulatedDipole d2{{-0.03, -0.01, 0.06}, {0.0, 1e-8, 0.0}, 17.0, 1.0};
  const linalg::Matrix data = sim.simulate({d1, d2});

  MusicConfig cfg;
  cfg.grid_n = 8;
  MusicScanner scanner(sim.sensors());
  const auto serial = scanner.localize(data, cfg);

  DistributedMusic dist(f.pair_comm(), MusicScanner(sim.sensors()), cfg);
  dist.start(data);
  f.tb.scheduler().run();
  const auto& res = dist.result();
  ASSERT_EQ(res.peaks.size(), serial.size());
  EXPECT_EQ(res.allreduce_rounds, 2);
  EXPECT_GT(res.elapsed_s, 0.0);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(res.peaks[i].position.x, serial[i].position.x, 1e-9);
    EXPECT_NEAR(res.peaks[i].position.y, serial[i].position.y, 1e-9);
    EXPECT_NEAR(res.peaks[i].position.z, serial[i].position.z, 1e-9);
  }
}

// --- video --------------------------------------------------------------------

TEST(D1VideoTest, FeasibleOnOc48) {
  testbed::Testbed tb{testbed::TestbedOptions{testbed::WanEra::kOc48_1998}};
  D1VideoConfig cfg;
  cfg.frames = 100;
  D1VideoSession session(tb.onyx2_gmd(), tb.onyx2_juelich(), cfg);
  session.start();
  tb.scheduler().run();
  const auto rep = session.report();
  EXPECT_EQ(rep.frames_sent, 100u);
  EXPECT_TRUE(rep.feasible);
  EXPECT_NEAR(rep.offered.bps(), 270e6, 1e6);
  EXPECT_LT(rep.jitter_ms, 5.0);
}

TEST(D1VideoTest, InfeasibleOnBWin155) {
  // 270 Mbit/s cannot fit a 155 Mbit/s B-WiN path: heavy loss.
  testbed::Testbed tb{testbed::TestbedOptions{testbed::WanEra::kBWin155}};
  D1VideoConfig cfg;
  cfg.frames = 100;
  D1VideoSession session(tb.onyx2_gmd(), tb.onyx2_juelich(), cfg);
  session.start();
  tb.scheduler().run();
  const auto rep = session.report();
  EXPECT_FALSE(rep.feasible);
  EXPECT_GT(rep.frames_lost, 20u);
}

}  // namespace
}  // namespace gtw::apps
