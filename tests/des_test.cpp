#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "des/random.hpp"
#include "des/scheduler.hpp"
#include "des/stats.hpp"
#include "des/time.hpp"

namespace gtw::des {
namespace {

TEST(SimTimeTest, UnitConversionsRoundTrip) {
  EXPECT_EQ(SimTime::seconds(1.0).ps(), 1'000'000'000'000LL);
  EXPECT_EQ(SimTime::milliseconds(3).ps(), 3'000'000'000LL);
  EXPECT_EQ(SimTime::microseconds(7).ps(), 7'000'000LL);
  EXPECT_EQ(SimTime::nanoseconds(9).ps(), 9'000LL);
  EXPECT_DOUBLE_EQ(SimTime::seconds(2.5).sec(), 2.5);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::milliseconds(2);
  const SimTime b = SimTime::microseconds(500);
  EXPECT_EQ((a + b).us(), 2500.0);
  EXPECT_EQ((a - b).us(), 1500.0);
  EXPECT_EQ((b * 4).ms(), 2.0);
  EXPECT_LT(b, a);
}

TEST(SimTimeTest, TransmissionTimeExactForAtmCell) {
  // One ATM cell at 622.08 Mbit/s: 53*8/622.08e6 s = 681.58.. ns.
  const SimTime t = transmission_time(53, 622.08e6);
  EXPECT_NEAR(t.ns(), 681.58, 0.01);
}

TEST(SimTimeTest, TransmissionTimeRoundsUp) {
  // Never runs ahead of the wire: ceil to next picosecond.
  const SimTime t = transmission_time(1, 8e12);  // exactly 1 ps
  EXPECT_EQ(t.ps(), 1);
  const SimTime t2 = transmission_time(1, 9e12);  // 0.888.. ps -> 1
  EXPECT_EQ(t2.ps(), 1);
}

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(SimTime::milliseconds(3), [&] { order.push_back(3); });
  sched.schedule_at(SimTime::milliseconds(1), [&] { order.push_back(1); });
  sched.schedule_at(SimTime::milliseconds(2), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), SimTime::milliseconds(3));
}

TEST(SchedulerTest, FifoAtEqualTimestamps) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sched.schedule_at(SimTime::milliseconds(5), [&order, i] { order.push_back(i); });
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerTest, NestedScheduling) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_after(SimTime::seconds(1.0), [&] {
    ++fired;
    sched.schedule_after(SimTime::seconds(1.0), [&] { ++fired; });
  });
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.now(), SimTime::seconds(2.0));
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  EventHandle h = sched.schedule_after(SimTime::seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sched.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sched.empty());
}

TEST(SchedulerTest, CancelAfterFireIsNoop) {
  Scheduler sched;
  EventHandle h = sched.schedule_after(SimTime::seconds(1.0), [] {});
  sched.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(SchedulerTest, CancellationChurnIsSweptFromTheHeap) {
  // A retransmit-timer workload: schedule far-future events and cancel
  // almost all of them.  Cancelled entries are removed lazily, but once
  // they outnumber the live ones the heap is swept, so churn cannot
  // accumulate garbage proportional to everything ever scheduled.
  Scheduler sched;
  std::vector<EventHandle> handles;
  const int kRounds = 50, kPerRound = 40;
  int fired = 0;
  for (int r = 0; r < kRounds; ++r) {
    for (int i = 0; i < kPerRound; ++i) {
      handles.push_back(sched.schedule_at(
          SimTime::seconds(1000.0 + r * kPerRound + i), [&] { ++fired; }));
    }
    // Cancel all but the last timer of the round (it "expires for real").
    for (int i = 0; i < kPerRound - 1; ++i)
      handles[static_cast<std::size_t>(r * kPerRound + i)].cancel();
    // Sweep invariant: cancelled entries never outnumber the live ones.
    EXPECT_LE(sched.cancelled_entries(),
              sched.queued_entries() - sched.cancelled_entries())
        << "round " << r;
  }
  // 2000 events were scheduled but only 50 are live; the heap must be
  // within the sweep bound, not holding ~2000 tombstones.
  EXPECT_LE(sched.queued_entries(), 2u * kRounds);
  sched.run();
  EXPECT_EQ(fired, kRounds);
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.queued_entries(), 0u);
  EXPECT_EQ(sched.cancelled_entries(), 0u);
  // Leak census (GTW-San's drain invariant asserted directly): after 2000
  // schedules and ~1950 cancels, natural drain returned every pool slot.
  EXPECT_EQ(sched.pool_in_use(), sched.live_events() + sched.cancelled_entries());
  EXPECT_EQ(sched.pool_in_use(), 0u);
}

TEST(SchedulerTest, CancelledOrderingUnaffectedForSurvivors) {
  // Interleave cancels with live events at shared timestamps: survivors must
  // still fire in (time, insertion) order after sweeps rebuild the heap.
  Scheduler sched;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 30; ++i) {
    const SimTime t = SimTime::milliseconds(100 + (i % 5));
    if (i % 3 == 0) {
      const int tag = i;
      sched.schedule_at(t, [&order, tag] { order.push_back(tag); });
    } else {
      doomed.push_back(sched.schedule_at(t, [&order] {
        order.push_back(-1);
      }));
    }
  }
  for (auto& h : doomed) h.cancel();
  sched.run();
  // Survivors are i = 0, 3, 6, ..., 27 sorted by (time = 100 + i%5, seq).
  std::vector<int> expect;
  for (int ms = 0; ms < 5; ++ms)
    for (int i = 0; i < 30; i += 3)
      if (i % 5 == ms) expect.push_back(i);
  EXPECT_EQ(order, expect);
}

TEST(SchedulerTest, DoubleCancelIsInert) {
  Scheduler sched;
  bool fired = false;
  EventHandle h = sched.schedule_after(SimTime::seconds(1.0), [&] { fired = true; });
  h.cancel();
  h.cancel();  // second cancel must be a no-op, not a double-release
  EXPECT_FALSE(h.pending());
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, StaleHandleCannotCancelRecycledSlot) {
  // Regression: cancel() used to null only the scheduler pointer and leave
  // seq_/slot_ stale.  A *copy* of the handle taken before the cancel still
  // holds the old (seq, slot) pair; once the pool slot is recycled for a new
  // event, cancelling through the copy must not kill the new event.
  Scheduler sched;
  bool first = false, second = false;
  EventHandle h = sched.schedule_after(SimTime::seconds(1.0), [&] { first = true; });
  EventHandle stale = h;  // copy before cancel
  h.cancel();
  // The freed slot is the first one the pool hands back out.
  EventHandle fresh =
      sched.schedule_after(SimTime::seconds(2.0), [&] { second = true; });
  stale.cancel();  // stale seq must miss: the slot now belongs to `fresh`
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(fresh.pending());
  sched.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(SchedulerTest, UseAfterFireHandleCannotCancelRecycledSlot) {
  // Same aliasing hazard via the fire path: once an event has executed, its
  // slot is recycled, and the old handle must not be able to cancel the
  // event that now occupies it.
  Scheduler sched;
  EventHandle h = sched.schedule_after(SimTime::seconds(1.0), [] {});
  sched.run();
  bool fired = false;
  EventHandle fresh =
      sched.schedule_after(SimTime::seconds(1.0), [&] { fired = true; });
  h.cancel();  // fired long ago; slot now belongs to `fresh`
  EXPECT_TRUE(fresh.pending());
  sched.run();
  EXPECT_TRUE(fired);
}

TEST(SchedulerTest, EarlierInsertAfterHorizonJumpStaysOrdered) {
  // Peeking past a far-future event (a horizon-bounded run that executes
  // nothing) advances the calendar's internal day cursor.  A later insert
  // that lands *before* that day — legal, since it is still >= now() — must
  // rewind the calendar, and execution order must come out strictly sorted.
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(SimTime::seconds(1000.0), [&] { order.push_back(3); });
  sched.run(SimTime::seconds(1.0));  // executes nothing; peeks at t=1000s
  EXPECT_EQ(order.size(), 0u);
  sched.schedule_at(SimTime::seconds(2.0), [&] { order.push_back(1); });
  sched.schedule_at(SimTime::seconds(500.0), [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, SparseFarFutureDayJumpsExecuteInOrder) {
  // Events many "days" apart (seconds vs the microsecond-scale default
  // bucket width) must hop empty days without executing out of order.
  Scheduler sched;
  std::vector<std::int64_t> fired_ps;
  const double times[] = {1e-6, 3600.0, 0.25, 7.0, 1e-3, 400.0, 2e-6};
  for (double t : times)
    sched.schedule_at(SimTime::seconds(t),
                      [&] { fired_ps.push_back(sched.now().ps()); });
  sched.run();
  ASSERT_EQ(fired_ps.size(), 7u);
  for (std::size_t i = 1; i < fired_ps.size(); ++i)
    EXPECT_LT(fired_ps[i - 1], fired_ps[i]);
}

TEST(SchedulerTest, StreamHashIdenticalAcrossIdenticalRuns) {
  auto hash_of = [] {
    Scheduler sched;
    Rng rng(99);
    for (int i = 0; i < 500; ++i)
      sched.schedule_after(SimTime::seconds(rng.uniform()), [] {});
    sched.run();
    return sched.stream_hash();
  };
  const std::uint64_t a = hash_of(), b = hash_of();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 14695981039346656037ULL);  // events actually mixed in
}

TEST(SchedulerTest, PoolRecyclesSlotsAndTracksHighWater) {
  Scheduler sched;
  const int kEvents = 300;
  for (int i = 0; i < kEvents; ++i)
    sched.schedule_at(SimTime::microseconds(i + 1), [] {});
  EXPECT_EQ(sched.pool_in_use(), static_cast<std::size_t>(kEvents));
  EXPECT_GE(sched.pool_high_water(), static_cast<std::size_t>(kEvents));
  const std::size_t slots_before = sched.pool_slots();
  sched.run();
  EXPECT_EQ(sched.pool_in_use(), 0u);
  // A second wave of the same size reuses freed slots: no pool growth.
  for (int i = 0; i < kEvents; ++i)
    sched.schedule_after(SimTime::microseconds(i + 1), [] {});
  EXPECT_EQ(sched.pool_slots(), slots_before);
  sched.run();
  EXPECT_EQ(sched.pool_in_use(), 0u);
}

TEST(SchedulerTest, CalendarResizesWithPopulation) {
  Scheduler sched;
  EXPECT_EQ(sched.calendar_buckets(), 64u);
  std::vector<EventHandle> handles;
  for (int i = 0; i < 5000; ++i)
    handles.push_back(sched.schedule_at(SimTime::nanoseconds(100 + i * 7), [] {}));
  EXPECT_GT(sched.calendar_buckets(), 64u) << "table must grow under load";
  EXPECT_GE(sched.calendar_resizes(), 1u);
  for (auto& h : handles) h.cancel();
  // Draining the population (here: mass-cancel) shrinks the table again.
  EXPECT_LT(sched.calendar_buckets(), 4096u);
  sched.run();
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.queued_entries(), 0u);
}

TEST(SchedulerTest, HorizonStopsRun) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(SimTime::seconds(1.0), [&] { ++fired; });
  sched.schedule_at(SimTime::seconds(3.0), [&] { ++fired; });
  sched.run(SimTime::seconds(2.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), SimTime::seconds(2.0));
  sched.run();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Scheduler sched;
    Rng rng(42);
    std::vector<std::int64_t> times;
    for (int i = 0; i < 100; ++i) {
      sched.schedule_after(SimTime::seconds(rng.uniform()), [&times, &sched] {
        times.push_back(sched.now().ps());
      });
    }
    sched.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng a(7);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntUnbiasedCoarse) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.02);
  EXPECT_NEAR(st.stddev(), 1.0, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.exponential(2.5));
  EXPECT_NEAR(st.mean(), 2.5, 0.05);
}

TEST(StatsTest, RunningStatsBasics) {
  RunningStats st;
  for (double x : {1.0, 2.0, 3.0, 4.0}) st.add(x);
  EXPECT_EQ(st.count(), 4u);
  EXPECT_DOUBLE_EQ(st.mean(), 2.5);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 4.0);
  EXPECT_NEAR(st.variance(), 5.0 / 3.0, 1e-12);
}

TEST(StatsTest, HistogramQuantiles) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(StatsTest, HistogramOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(11.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(StatsTest, TimeWeightedAverage) {
  TimeWeighted tw;
  tw.update(SimTime::seconds(0.0), 10.0);
  tw.update(SimTime::seconds(1.0), 20.0);
  // 1 s at 10, 1 s at 20 -> average 15 over [0, 2].
  EXPECT_DOUBLE_EQ(tw.average(SimTime::seconds(2.0)), 15.0);
  EXPECT_DOUBLE_EQ(tw.current(), 20.0);
}

}  // namespace
}  // namespace gtw::des
