#include <gtest/gtest.h>

#include "apps/meg.hpp"
#include "meta/communicator.hpp"
#include "testbed/testbed.hpp"
#include "viz/regions.hpp"

namespace gtw {
namespace {

TEST(RegionLabelTest, EmptyMaskNoRegions) {
  fire::Volume<std::uint8_t> mask(fire::Dims{8, 8, 4});
  EXPECT_TRUE(viz::label_regions(mask).empty());
}

TEST(RegionLabelTest, SingleBlobOneRegion) {
  fire::Volume<std::uint8_t> mask(fire::Dims{16, 16, 8});
  for (int z = 2; z < 5; ++z)
    for (int y = 4; y < 8; ++y)
      for (int x = 4; x < 8; ++x) mask.at(x, y, z) = 1;
  const auto regions = viz::label_regions(mask);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].voxels, 3u * 4 * 4);
  EXPECT_NEAR(regions[0].cx, 5.5, 1e-9);
  EXPECT_NEAR(regions[0].cy, 5.5, 1e-9);
  EXPECT_NEAR(regions[0].cz, 3.0, 1e-9);
}

TEST(RegionLabelTest, SeparateBlobsSeparateRegions) {
  fire::Volume<std::uint8_t> mask(fire::Dims{20, 10, 4});
  mask.at(2, 2, 1) = 1;
  mask.at(3, 2, 1) = 1;      // blob A: 2 voxels
  mask.at(15, 7, 2) = 1;     // blob B: 1 voxel
  const auto regions = viz::label_regions(mask);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].voxels, 2u);  // sorted largest-first
  EXPECT_EQ(regions[1].voxels, 1u);
}

TEST(RegionLabelTest, DiagonalTouchIsNotConnected) {
  // 6-connectivity: diagonal neighbours are distinct regions.
  fire::Volume<std::uint8_t> mask(fire::Dims{4, 4, 1});
  mask.at(1, 1, 0) = 1;
  mask.at(2, 2, 0) = 1;
  EXPECT_EQ(viz::label_regions(mask).size(), 2u);
}

TEST(RegionLabelTest, MinVoxelsSuppressesSpeckle) {
  fire::Volume<std::uint8_t> mask(fire::Dims{16, 16, 4});
  mask.at(1, 1, 1) = 1;  // speckle
  for (int x = 5; x < 12; ++x) mask.at(x, 8, 2) = 1;  // 7-voxel line
  const auto regions = viz::label_regions(mask, nullptr, 3);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].voxels, 7u);
}

TEST(RegionLabelTest, PeakValueReported) {
  fire::Volume<std::uint8_t> mask(fire::Dims{8, 8, 2});
  fire::VolumeF values(fire::Dims{8, 8, 2});
  mask.at(3, 3, 0) = 1;
  mask.at(4, 3, 0) = 1;
  values.at(3, 3, 0) = 0.5f;
  values.at(4, 3, 0) = 0.8f;
  const auto regions = viz::label_regions(mask, &values);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_FLOAT_EQ(regions[0].peak_value, 0.8f);
}

TEST(MusicComputeModelTest, VectorMachineShortensTheScan) {
  // pmusic on T3E + T90: giving some ranks a vector-machine evaluation rate
  // reduces the total time vs all-slow ranks, and the allreduce still
  // agrees with the serial result.
  auto run = [](std::vector<double> rates) {
    testbed::Testbed tb{testbed::TestbedOptions{}};
    meta::Metacomputer mc(tb.scheduler());
    meta::MachineSpec a;
    a.name = "T3E";
    a.max_pes = 512;
    a.frontend = &tb.t3e600();
    meta::MachineSpec b;
    b.name = "T90";
    b.max_pes = 10;
    b.frontend = &tb.t90();
    const int ma = mc.add_machine(a);
    const int mb = mc.add_machine(b);
    net::TcpConfig cfg;
    cfg.mss = tb.options().atm_mtu - units::Bytes{40};
    mc.link_machines(ma, mb, cfg, 7000);
    auto comm = std::make_shared<meta::Communicator>(
        mc, std::vector<meta::ProcLoc>{{ma, 0}, {ma, 1}, {mb, 0}, {mb, 1}});

    apps::MegConfig mcfg;
    mcfg.noise_sigma = 5e-15;
    apps::MegSimulator sim(mcfg);
    const apps::SimulatedDipole d{{0.03, 0.02, 0.05}, {1e-8, 0, 0}, 11, 0};
    const linalg::Matrix data = sim.simulate({d});
    apps::MusicConfig c;
    c.grid_n = 8;
    c.n_sources = 1;
    apps::DistributedMusic dist(comm, apps::MusicScanner(sim.sensors()), c,
                                std::move(rates));
    dist.start(data);
    tb.scheduler().run();
    return dist.result();
  };

  // All-MPP: 30k evals/s per PE.  Heterogeneous: two T90 ranks at 200k.
  const auto slow = run({30e3, 30e3, 30e3, 30e3});
  const auto fast = run({30e3, 30e3, 200e3, 200e3});
  EXPECT_GT(slow.compute_s, 0.0);
  // The mixed metacomputer is faster overall (the T90 slabs finish early;
  // the slowest rank still gates, but the balanced split helps).
  EXPECT_LE(fast.elapsed_s, slow.elapsed_s);
  ASSERT_EQ(fast.peaks.size(), 1u);
  ASSERT_EQ(slow.peaks.size(), 1u);
  EXPECT_NEAR(fast.peaks[0].position.x, slow.peaks[0].position.x, 1e-12);
}

}  // namespace
}  // namespace gtw
