#include <gtest/gtest.h>

#include <cmath>

#include "apps/cocolib.hpp"
#include "meta/communicator.hpp"
#include "testbed/testbed.hpp"

namespace gtw::apps::coco {
namespace {

TEST(InterfaceMeshTest, UniformSpansUnitInterval) {
  const InterfaceMesh m = InterfaceMesh::uniform(11);
  EXPECT_EQ(m.size(), 11u);
  EXPECT_DOUBLE_EQ(m.nodes.front(), 0.0);
  EXPECT_DOUBLE_EQ(m.nodes.back(), 1.0);
  EXPECT_NEAR(m.nodes[5], 0.5, 1e-12);
}

TEST(TransferTest, IdentityOnMatchingMeshes) {
  const InterfaceMesh m = InterfaceMesh::uniform(17);
  std::vector<double> v(17);
  for (std::size_t i = 0; i < 17; ++i)
    v[i] = std::sin(0.3 * static_cast<double>(i));
  const auto out = transfer(v, m, m);
  for (std::size_t i = 0; i < 17; ++i) EXPECT_NEAR(out[i], v[i], 1e-12);
}

TEST(TransferTest, ExactForLinearFields) {
  // Piecewise-linear interpolation reproduces a globally linear field on
  // any target mesh.
  const InterfaceMesh coarse = InterfaceMesh::uniform(5);
  const InterfaceMesh fine = InterfaceMesh::uniform(33);
  std::vector<double> v(coarse.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 3.0 * coarse.nodes[i] - 1.0;
  const auto out = transfer(v, coarse, fine);
  for (std::size_t i = 0; i < fine.size(); ++i)
    EXPECT_NEAR(out[i], 3.0 * fine.nodes[i] - 1.0, 1e-12);
}

TEST(TransferTest, SizeMismatchThrows) {
  const InterfaceMesh m = InterfaceMesh::uniform(5);
  EXPECT_THROW(transfer(std::vector<double>(4), m, m),
               std::invalid_argument);
}

TEST(ChannelFlowTest, UniformGapGivesLinearPressure) {
  const InterfaceMesh m = InterfaceMesh::uniform(21);
  ChannelFlow flow(m, ChannelConfig{1.0, 2.0, 0.0});
  const std::vector<double> gap(21, 1.0);
  const auto p = flow.pressure(gap);
  EXPECT_NEAR(p.front(), 2.0, 1e-12);
  EXPECT_NEAR(p.back(), 0.0, 1e-10);
  EXPECT_NEAR(p[10], 1.0, 1e-10);  // linear drop at the midpoint
}

TEST(ChannelFlowTest, ConstrictionConcentratesPressureDrop) {
  const InterfaceMesh m = InterfaceMesh::uniform(41);
  ChannelFlow flow(m, ChannelConfig{1.0, 2.0, 0.0});
  std::vector<double> gap(41, 1.0);
  for (int i = 18; i <= 22; ++i) gap[static_cast<std::size_t>(i)] = 0.5;
  const auto p = flow.pressure(gap);
  // The pressure gradient inside the constriction (x~0.5) is much steeper
  // than outside.
  const double drop_inside = p[18] - p[22];
  const double drop_outside = p[2] - p[6];
  EXPECT_GT(drop_inside, 4.0 * drop_outside);
}

TEST(ChannelFlowTest, NarrowerChannelLessFlux) {
  const InterfaceMesh m = InterfaceMesh::uniform(21);
  ChannelFlow flow(m, ChannelConfig{1.0, 2.0, 0.0});
  EXPECT_GT(flow.flux(std::vector<double>(21, 1.0)),
            flow.flux(std::vector<double>(21, 0.7)));
}

TEST(ChannelFlowTest, ClosedGapThrows) {
  const InterfaceMesh m = InterfaceMesh::uniform(5);
  ChannelFlow flow(m, ChannelConfig{});
  std::vector<double> gap(5, 1.0);
  gap[2] = 0.0;
  EXPECT_THROW(flow.pressure(gap), std::domain_error);
}

TEST(ElasticWallTest, UniformLoadSymmetricPeakAtCentre) {
  const InterfaceMesh m = InterfaceMesh::uniform(41);
  ElasticWall wall(m, WallConfig{4.0, 30.0});
  const auto w = wall.deflection(std::vector<double>(41, 1.0));
  EXPECT_DOUBLE_EQ(w.front(), 0.0);
  EXPECT_DOUBLE_EQ(w.back(), 0.0);
  EXPECT_GT(w[20], 0.0);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(w[i], w[40 - i], 1e-9);
  EXPECT_GE(w[20], w[10]);
}

TEST(ElasticWallTest, StifferFoundationDeflectsLess) {
  const InterfaceMesh m = InterfaceMesh::uniform(31);
  const auto soft =
      ElasticWall(m, WallConfig{4.0, 10.0}).deflection(std::vector<double>(31, 1.0));
  const auto stiff =
      ElasticWall(m, WallConfig{4.0, 100.0}).deflection(std::vector<double>(31, 1.0));
  EXPECT_GT(soft[15], 2.0 * stiff[15]);
}

TEST(ElasticWallTest, LinearityInLoad) {
  const InterfaceMesh m = InterfaceMesh::uniform(21);
  ElasticWall wall(m, WallConfig{});
  const auto w1 = wall.deflection(std::vector<double>(21, 1.0));
  const auto w3 = wall.deflection(std::vector<double>(21, 3.0));
  for (std::size_t i = 0; i < 21; ++i) EXPECT_NEAR(w3[i], 3.0 * w1[i], 1e-9);
}

TEST(FsiSerialTest, ConvergesToConsistentInterface) {
  const InterfaceMesh fluid = InterfaceMesh::uniform(33);
  const InterfaceMesh wall = InterfaceMesh::uniform(25);  // non-matching
  const FsiResult res = couple_serial(fluid, wall, FsiConfig{});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, 150);
  // Positive pressure pushes the wall outward everywhere inside.
  for (std::size_t i = 1; i + 1 < res.deflection.size(); ++i)
    EXPECT_GT(res.deflection[i], 0.0);
  // The bulged wall widens the gap, so the flux exceeds the rigid-channel
  // value.
  ChannelFlow rigid(fluid, FsiConfig{}.channel);
  EXPECT_GT(res.flux, rigid.flux(std::vector<double>(33, 1.0)));
}

TEST(FsiSerialTest, MeshResolutionInsensitive) {
  const FsiResult coarse = couple_serial(InterfaceMesh::uniform(17),
                                         InterfaceMesh::uniform(13),
                                         FsiConfig{});
  const FsiResult fine = couple_serial(InterfaceMesh::uniform(65),
                                       InterfaceMesh::uniform(49),
                                       FsiConfig{});
  ASSERT_TRUE(coarse.converged);
  ASSERT_TRUE(fine.converged);
  // Peak deflections agree to discretisation accuracy.
  const double peak_c =
      *std::max_element(coarse.deflection.begin(), coarse.deflection.end());
  const double peak_f =
      *std::max_element(fine.deflection.begin(), fine.deflection.end());
  EXPECT_NEAR(peak_c, peak_f, 0.15 * peak_f);
}

TEST(FsiDistributedTest, MatchesSerialAcrossTheTestbed) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  meta::Metacomputer mc(tb.scheduler());
  meta::MachineSpec a;
  a.name = "T3E (fluid)";
  a.max_pes = 512;
  a.frontend = &tb.t3e600();
  meta::MachineSpec b;
  b.name = "SP2 (structure)";
  b.max_pes = 64;
  b.frontend = &tb.sp2();
  const int ma = mc.add_machine(a);
  const int mb = mc.add_machine(b);
  net::TcpConfig cfg;
  cfg.mss = tb.options().atm_mtu - units::Bytes{40};
  mc.link_machines(ma, mb, cfg, 7000);
  auto comm = std::make_shared<meta::Communicator>(
      mc, std::vector<meta::ProcLoc>{{ma, 0}, {mb, 0}});

  const InterfaceMesh fluid = InterfaceMesh::uniform(33);
  const InterfaceMesh wall = InterfaceMesh::uniform(25);
  DistributedFsi dist(comm, fluid, wall, FsiConfig{});
  dist.start();
  tb.scheduler().run();

  const FsiResult serial = couple_serial(fluid, wall, FsiConfig{});
  const FsiResult& d = dist.result();
  EXPECT_TRUE(d.converged);
  EXPECT_EQ(d.iterations, serial.iterations);
  ASSERT_EQ(d.deflection.size(), serial.deflection.size());
  for (std::size_t i = 0; i < d.deflection.size(); ++i)
    EXPECT_NEAR(d.deflection[i], serial.deflection[i], 1e-12);
  EXPECT_GT(d.bytes_exchanged, 0u);
  EXPECT_GT(d.elapsed_s, 0.0);  // iterations crossed the WAN
}

}  // namespace
}  // namespace gtw::apps::coco
