// Integration coverage for the dataflow engine as deployed: the fMRI
// pipeline (fire), the workbench frame streamer (viz) and the section-5
// apps (video, traffic) all run on flow::StageGraph, so each must expose
// coherent per-stage metrics and a well-formed multi-rank trace.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/traffic.hpp"
#include "apps/video.hpp"
#include "fire/pipeline.hpp"
#include "testbed/extensions.hpp"
#include "testbed/testbed.hpp"
#include "trace/trace.hpp"
#include "viz/workbench.hpp"

namespace gtw {
namespace {

int count_kind(const trace::TraceRecorder& rec, trace::EventKind kind,
               std::uint32_t rank) {
  int n = 0;
  for (const trace::TraceEvent& e : rec.events())
    if (e.kind == kind && e.rank == rank) ++n;
  return n;
}

bool has_state(const trace::TraceRecorder& rec, const std::string& name) {
  for (std::uint32_t s = 0; s < rec.state_count(); ++s)
    if (rec.state_name(s) == name) return true;
  return false;
}

TEST(FlowIntegrationTest, FirePipelineStagesTraceAndMeter) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  fire::PipelineConfig cfg;
  cfg.n_scans = 6;
  fire::FmriPipeline pipe(
      tb.scheduler(),
      {&tb.scanner_frontend(), &tb.gw_o200(), &tb.onyx2_juelich()}, cfg);
  trace::TraceRecorder rec(4);  // transfer / compute / return / display
  pipe.attach_trace(&rec);
  pipe.start();
  tb.scheduler().run();

  const fire::PipelineResult res = pipe.result();
  EXPECT_EQ(res.records.size(), 6u);
  // Every scan passes every stage once (TR = 3 s keeps up, nothing skipped).
  const flow::MetricsRegistry& m = pipe.metrics();
  ASSERT_EQ(m.stages().size(), 4u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(m.stage(s).items_in, 6u) << m.stage(s).name;
    EXPECT_EQ(m.stage(s).items_out, 6u) << m.stage(s).name;
    EXPECT_EQ(m.stage(s).dropped, 0u) << m.stage(s).name;
  }
  EXPECT_EQ(m.admitted, 6u);
  EXPECT_EQ(m.completed, 6u);
  EXPECT_EQ(m.admission_dropped, 0u);
  // The compute stage's integrated busy time is n_scans * compute_time.
  EXPECT_EQ(m.stage(1).busy, pipe.compute_time(cfg.t3e_pes) * 6);

  // Trace: one enter and one leave per scan on each of the four ranks, and
  // the transfer/return stages add send/recv edges.
  EXPECT_TRUE(has_state(rec, "transfer"));
  EXPECT_TRUE(has_state(rec, "compute"));
  EXPECT_TRUE(has_state(rec, "return"));
  EXPECT_TRUE(has_state(rec, "display"));
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(count_kind(rec, trace::EventKind::kEnter, r), 6) << "rank " << r;
    EXPECT_EQ(count_kind(rec, trace::EventKind::kLeave, r), 6) << "rank " << r;
  }
  EXPECT_EQ(count_kind(rec, trace::EventKind::kSend, 0), 6);
  EXPECT_EQ(count_kind(rec, trace::EventKind::kRecv, 1), 6);

  // Leak census at drain: the whole pipeline (timers, transfers, stage
  // wakeups) returned every event-pool slot it ever acquired.
  EXPECT_EQ(tb.scheduler().pool_in_use(),
            tb.scheduler().live_events() + tb.scheduler().cancelled_entries());
}

TEST(FlowIntegrationTest, FireSequentialSkipsShowUpAsAdmissionDrops) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  fire::PipelineConfig cfg;
  cfg.tr_s = 1.5;  // faster than the 2.7 s loop: the client must skip scans
  cfg.n_scans = 12;
  fire::FmriPipeline pipe(
      tb.scheduler(),
      {&tb.scanner_frontend(), &tb.gw_o200(), &tb.onyx2_juelich()}, cfg);
  pipe.start();
  tb.scheduler().run();
  const fire::PipelineResult res = pipe.result();
  EXPECT_GT(res.scans_skipped, 0);
  EXPECT_EQ(pipe.metrics().admission_dropped,
            static_cast<std::uint64_t>(res.scans_skipped));
  EXPECT_EQ(pipe.metrics().completed + pipe.metrics().admission_dropped,
            static_cast<std::uint64_t>(cfg.n_scans));
}

TEST(FlowIntegrationTest, FireTraceFeedsMultiRankGanttAndProfile) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  fire::PipelineConfig cfg;
  cfg.n_scans = 6;
  fire::FmriPipeline pipe(
      tb.scheduler(),
      {&tb.scanner_frontend(), &tb.gw_o200(), &tb.onyx2_juelich()}, cfg);
  trace::TraceRecorder rec(4);
  pipe.attach_trace(&rec);
  pipe.start();
  tb.scheduler().run();

  // Round-trip through the binary format, then render the multi-rank views.
  std::stringstream buf;
  rec.write(buf);
  const trace::TraceRecorder loaded = trace::TraceRecorder::read(buf);
  trace::TraceStats stats(loaded);
  const std::string g = stats.gantt(60);
  for (int r = 0; r < 4; ++r) {
    char label[16];
    std::snprintf(label, sizeof label, "rank %2d", r);
    EXPECT_NE(g.find(label), std::string::npos) << g;
  }
  // Each rank paints its own stage letter: c(ompute) on rank 1, d(isplay)
  // on rank 3.
  EXPECT_NE(g.find('c'), std::string::npos);
  EXPECT_NE(g.find('d'), std::string::npos);

  const std::string prof = stats.profile();
  EXPECT_NE(prof.find("compute="), std::string::npos);
  EXPECT_NE(prof.find("display="), std::string::npos);
  // Profile time on the compute rank matches the metrics' busy integral.
  std::uint32_t compute_state = 0;
  for (std::uint32_t s = 0; s < loaded.state_count(); ++s)
    if (loaded.state_name(s) == "compute") compute_state = s;
  ASSERT_NE(compute_state, 0u);
  EXPECT_EQ(stats.state_time(1, compute_state),
            pipe.metrics().stage(1).busy);
}

TEST(FlowIntegrationTest, FrameStreamerMetersRenderAndUplink) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  net::TcpConfig tcp;
  tcp.mss = tb.options().atm_mtu - units::Bytes{40};
  tcp.recv_buffer = units::Bytes{1u << 20};
  viz::FrameStreamer streamer(tb.scheduler(), tb.onyx2_gmd(),
                              tb.workbench_juelich(), viz::WorkbenchFormat{},
                              viz::RenderModel{}, 10, tcp);
  trace::TraceRecorder rec(2);
  streamer.attach_trace(&rec);
  streamer.start();
  tb.scheduler().run();

  EXPECT_EQ(streamer.frames_delivered(), 10);
  const flow::MetricsRegistry& m = streamer.metrics();
  ASSERT_EQ(m.stages().size(), 2u);
  EXPECT_EQ(m.stage(0).name, "render");
  EXPECT_EQ(m.stage(1).name, "uplink");
  EXPECT_EQ(m.stage(0).items_out, 10u);
  EXPECT_EQ(m.stage(1).items_out, 10u);
  // Render is double-buffered against the transfer: the uplink dominates,
  // so its occupancy is (near) 1 while render idles between frames.
  EXPECT_GT(m.stage(1).occupancy(), 0.9);
  EXPECT_LT(m.stage(0).occupancy(), m.stage(1).occupancy());

  EXPECT_TRUE(has_state(rec, "render"));
  EXPECT_TRUE(has_state(rec, "uplink"));
  EXPECT_EQ(count_kind(rec, trace::EventKind::kEnter, 0), 10);
  EXPECT_EQ(count_kind(rec, trace::EventKind::kEnter, 1), 10);
  // One send per frame leaving the uplink, one recv on its delivery.
  EXPECT_EQ(count_kind(rec, trace::EventKind::kSend, 1), 10);
}

TEST(FlowIntegrationTest, VideoSessionCountsFramesThroughTheGraph) {
  testbed::Testbed tb{testbed::TestbedOptions{testbed::WanEra::kOc48_1998}};
  apps::D1VideoConfig cfg;
  cfg.frames = 50;
  apps::D1VideoSession session(tb.onyx2_gmd(), tb.onyx2_juelich(), cfg);
  trace::TraceRecorder rec(1);
  session.attach_trace(&rec);
  session.start();
  tb.scheduler().run();

  const apps::D1VideoReport rep = session.report();
  EXPECT_EQ(rep.frames_sent, 50u);
  const flow::MetricsRegistry& m = session.metrics();
  ASSERT_EQ(m.stages().size(), 1u);
  EXPECT_EQ(m.stage(0).name, "uplink");
  EXPECT_EQ(m.stage(0).items_out, 50u);
  EXPECT_EQ(m.completed, 50u);
  EXPECT_EQ(count_kind(rec, trace::EventKind::kEnter, 0), 50);
  EXPECT_EQ(count_kind(rec, trace::EventKind::kSend, 0), 50);
}

TEST(FlowIntegrationTest, TrafficVizSimulateAndPublishStages) {
  testbed::ExtendedTestbed tb;
  apps::NaschConfig cfg;
  cfg.cells = 200;
  apps::DistributedTrafficViz run(tb.dlr_traffic(), tb.cologne_viz(), cfg,
                                  /*steps=*/30);
  trace::TraceRecorder rec(2);
  run.attach_trace(&rec);
  run.start();
  tb.scheduler().run();

  const apps::TrafficVizResult& res = run.result();
  EXPECT_EQ(res.steps_simulated, 30);
  const flow::MetricsRegistry& m = run.metrics();
  ASSERT_EQ(m.stages().size(), 2u);
  EXPECT_EQ(m.stage(0).name, "simulate");
  EXPECT_EQ(m.stage(1).name, "publish");
  EXPECT_EQ(m.stage(0).items_out, 30u);
  EXPECT_EQ(m.stage(1).items_out, 30u);
  EXPECT_EQ(m.completed, 30u);
  EXPECT_TRUE(has_state(rec, "simulate"));
  EXPECT_TRUE(has_state(rec, "publish"));
  EXPECT_EQ(count_kind(rec, trace::EventKind::kEnter, 0), 30);
  EXPECT_EQ(count_kind(rec, trace::EventKind::kSend, 1), 30);
  // The metrics report is printable and names both stages.
  const std::string report = m.report();
  EXPECT_NE(report.find("simulate"), std::string::npos);
  EXPECT_NE(report.find("publish"), std::string::npos);
}

}  // namespace
}  // namespace gtw
