// Observability layer: registry semantics (collisions, stable ordering),
// DES-clock sampling, Chrome trace export (golden files + >65k-event
// stress), and the guarantee that instrumentation never perturbs the
// simulation it observes.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "des/scheduler.hpp"
#include "net/atm.hpp"
#include "net/host.hpp"
#include "net/tcp.hpp"
#include "net/units.hpp"
#include "obs/exporter.hpp"
#include "obs/instrument.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "trace/trace.hpp"

#ifndef GTW_GOLDEN_DIR
#define GTW_GOLDEN_DIR "tests/golden"
#endif

namespace gtw {
namespace {

std::string read_golden(const std::string& name) {
  std::ifstream in(std::string(GTW_GOLDEN_DIR) + "/" + name,
                   std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------- registry

TEST(ObsRegistryTest, CounterGaugeHistogramBasics) {
  obs::Registry reg;
  reg.counter("a.events").add();
  reg.counter("a.events").add(4);
  reg.gauge("a.level").set(0.75);
  obs::Histogram& h = reg.histogram("a.delay", {1.0, 10.0, 100.0});
  h.add(0.5);
  h.add(5.0);
  h.add(5000.0);

  EXPECT_EQ(reg.counter("a.events").value(), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("a.level").value(), 0.75);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 5005.5);
  EXPECT_EQ(h.buckets(), (std::vector<std::uint64_t>{1, 1, 0, 1}));
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_DOUBLE_EQ(reg.read("a.events"), 5.0);
  EXPECT_DOUBLE_EQ(reg.read("a.delay"), 3.0);  // histograms read as count
}

TEST(ObsRegistryTest, NameCollisionAcrossKindsThrows) {
  obs::Registry reg;
  reg.counter("x");
  EXPECT_NO_THROW(reg.counter("x"));  // define-or-fetch, same kind
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::logic_error);

  reg.probe_gauge("p", [] { return 1.0; });
  EXPECT_THROW(reg.probe_gauge("p", [] { return 2.0; }), std::logic_error);
  EXPECT_THROW(reg.gauge("p"), std::logic_error);
  EXPECT_THROW(reg.probe_counter("x", [] { return std::uint64_t{0}; }),
               std::logic_error);
}

TEST(ObsRegistryTest, SnapshotIsLexicographicallyOrderedAndStable) {
  obs::Registry reg;
  // Deliberately defined out of order.
  reg.counter("net.link.z.tx");
  reg.gauge("fire.stage.a.occupancy");
  reg.counter("net.link.a.tx");
  reg.probe_counter("meta.comm.messages", [] { return std::uint64_t{7}; });

  std::vector<std::string> names;
  for (const auto& s : reg.snapshot()) names.push_back(s.name);
  const std::vector<std::string> expect = {
      "fire.stage.a.occupancy", "meta.comm.messages", "net.link.a.tx",
      "net.link.z.tx"};
  EXPECT_EQ(names, expect);

  // A second snapshot yields the identical order (stable exports).
  std::vector<std::string> names2;
  for (const auto& s : reg.snapshot()) names2.push_back(s.name);
  EXPECT_EQ(names, names2);
}

TEST(ObsRegistryTest, ProbesAreEvaluatedAtReadTime) {
  obs::Registry reg;
  std::uint64_t v = 1;
  reg.probe_counter("live", [&v] { return v; });
  EXPECT_DOUBLE_EQ(reg.read("live"), 1.0);
  v = 42;
  EXPECT_DOUBLE_EQ(reg.read("live"), 42.0);
  EXPECT_THROW(reg.read("unknown"), std::out_of_range);
}

// ----------------------------------------------------------------- sampler

TEST(ObsSamplerTest, SamplesOnTheDesClock) {
  des::Scheduler sched;
  obs::Registry reg;
  std::uint64_t work = 0;
  reg.probe_counter("work.done", [&work] { return work; });
  for (int i = 1; i <= 10; ++i)
    sched.schedule_at(des::SimTime::milliseconds(10 * i),
                      [&work] { ++work; });

  obs::TimeSeriesSampler sampler(sched, reg);
  sampler.watch("work.done");
  EXPECT_THROW(sampler.watch("no.such"), std::out_of_range);
  sampler.sample_every(des::SimTime::milliseconds(25),
                       des::SimTime::milliseconds(100));
  sched.run();

  const auto& series = sampler.series();
  ASSERT_EQ(series.size(), 1u);
  // t = 0, 25, 50, 75, 100 ms -> 0, 2, 5, 7, 10 events done.
  const std::vector<std::pair<std::int64_t, double>> expect = {
      {0, 0.0},
      {25'000'000'000, 2.0},
      {50'000'000'000, 5.0},
      {75'000'000'000, 7.0},
      {100'000'000'000, 10.0}};
  EXPECT_EQ(series[0].points, expect);
  EXPECT_EQ(sampler.samples_taken(), 5u);
}

// ------------------------------------------------------------- tcp fixture

// Two hosts across one ATM switch (same shape as net_tcp_test's fixture);
// the egress toward b is the bottleneck.
struct TcpFixture {
  des::Scheduler sched;
  net::Host a;
  net::Host b;
  net::AtmSwitch sw;
  net::AtmNic nic_a;
  net::AtmNic nic_b;
  net::VcAllocator vcs;
  int pa = -1, pb = -1;

  TcpFixture()
      : a(sched, "a", 1), b(sched, "b", 2), sw(sched, "sw"),
        nic_a(sched, a, "a.atm",
              net::Link::Config{units::BitRate::mbps(622.0),
                                des::SimTime::microseconds(250),
                                units::Bytes{16u << 20}, des::SimTime::zero()},
              net::kMtuAtmDefault),
        nic_b(sched, b, "b.atm",
              net::Link::Config{units::BitRate::mbps(622.0),
                                des::SimTime::microseconds(250),
                                units::Bytes{16u << 20}, des::SimTime::zero()},
              net::kMtuAtmDefault) {
    pa = sw.add_port(net::Link::Config{units::BitRate::mbps(622.0),
                                       des::SimTime::microseconds(250),
                                       units::Bytes{16u << 20},
                                       des::SimTime::zero()});
    pb = sw.add_port(net::Link::Config{units::BitRate::mbps(155.0),
                                       des::SimTime::microseconds(250),
                                       units::Bytes{4u << 20},
                                       des::SimTime::zero()});
    nic_a.uplink().set_sink(sw.ingress(pa));
    nic_b.uplink().set_sink(sw.ingress(pb));
    sw.connect_egress(pa, nic_a.ingress());
    sw.connect_egress(pb, nic_b.ingress());
    vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
    a.add_route(2, &nic_a, 2);
    b.add_route(1, &nic_b, 1);
  }

  // Drop exactly the n-th MTU-sized data frame leaving a toward the switch.
  void drop_nth_data_frame(int n) {
    net::FrameSink pass = sw.ingress(pa);
    auto count = std::make_shared<int>(0);
    nic_a.uplink().set_sink([pass, count, n](net::Frame fr) {
      if (fr.wire_bytes > 1000 && ++*count == n) return;
      pass(std::move(fr));
    });
  }
};

// The sampled cwnd trajectory must be exactly the Reno trace the connection
// itself reports — probe-path and direct-path reads agree at every sample
// point, and the multiplicative decrease after a fast retransmit shows up.
TEST(ObsTcpInstrumentationTest, CwndSamplesMatchRenoTrace) {
  TcpFixture f;
  net::TcpConnection conn(f.a, f.b, 100, 200);
  obs::Registry reg;
  obs::instrument_tcp(reg, conn, "c");

  obs::TimeSeriesSampler sampler(f.sched, reg);
  sampler.watch("tcp.c.0.cwnd_bytes");
  sampler.watch("tcp.c.0.ssthresh_bytes");
  const des::SimTime period = des::SimTime::milliseconds(5);
  const des::SimTime until = des::SimTime::seconds(2);
  sampler.sample_every(period, until);

  // Reference Reno trace, recorded independently of the registry at the
  // same instants (ties resolve in insertion order; both reads are pure).
  auto reference = std::make_shared<std::vector<double>>();
  for (des::SimTime t = des::SimTime::zero(); t <= until; t += period)
    f.sched.schedule_at(t, [&conn, reference] {
      reference->push_back(conn.stats(0).cwnd_bytes);
    });

  f.drop_nth_data_frame(30);  // one loss -> 3 dup ACKs -> fast retransmit
  bool delivered = false;
  conn.send(0, units::Bytes{6u << 20}, {},
            [&](const std::any&, des::SimTime) { delivered = true; });
  f.sched.run();
  ASSERT_TRUE(delivered);

  const auto& cwnd = sampler.series()[0].points;
  ASSERT_EQ(cwnd.size(), reference->size());
  for (std::size_t i = 0; i < cwnd.size(); ++i)
    EXPECT_DOUBLE_EQ(cwnd[i].second, (*reference)[i]) << "sample " << i;

  // The loss actually exercised Reno: duplicate ACKs counted, one fast
  // retransmit, and a visible multiplicative decrease in the trajectory.
  const auto stats = conn.stats(0);
  EXPECT_GE(stats.dup_acks, 3u);
  EXPECT_EQ(stats.fast_retransmits, 1u);
  EXPECT_GE(stats.retransmits, 1u);
  bool decreased = false;
  for (std::size_t i = 1; i < cwnd.size(); ++i)
    if (cwnd[i].second < cwnd[i - 1].second) decreased = true;
  EXPECT_TRUE(decreased);
  // Final probe reads agree with the connection's own accounting.
  EXPECT_DOUBLE_EQ(reg.read("tcp.c.0.fast_retransmits"), 1.0);
  EXPECT_DOUBLE_EQ(reg.read("tcp.c.0.dup_acks"),
                   static_cast<double>(stats.dup_acks));
  EXPECT_GT(reg.read("tcp.c.0.ssthresh_bytes"), 0.0);
  EXPECT_GT(reg.read("tcp.c.0.rto_ms"), 0.0);
}

// Attaching the full instrumentation + a periodic sampler must not change
// a single simulation outcome (read-only probes; sampler events do not
// shift other events).
TEST(ObsTcpInstrumentationTest, InstrumentationDoesNotPerturbSimulation) {
  auto run = [](bool instrumented) {
    TcpFixture f;
    net::TcpConnection conn(f.a, f.b, 100, 200);
    obs::Registry reg;
    obs::TimeSeriesSampler sampler(f.sched, reg);
    if (instrumented) {
      obs::instrument_tcp(reg, conn, "c");
      obs::instrument_host(reg, f.a);
      obs::instrument_host(reg, f.b);
      obs::instrument_atm_switch(reg, f.sw);
      sampler.watch("tcp.c.0.cwnd_bytes");
      sampler.sample_every(des::SimTime::milliseconds(1),
                           des::SimTime::seconds(2));
    }
    f.drop_nth_data_frame(30);
    des::SimTime done;
    conn.send(0, units::Bytes{6u << 20}, {},
              [&](const std::any&, des::SimTime t) { done = t; });
    f.sched.run();
    return std::make_pair(done, conn.stats(0).segments_sent);
  };
  EXPECT_EQ(run(false), run(true));
}

// --------------------------------------------------------------- exporters

TEST(ObsChromeExportTest, EmptyTraceMatchesGolden) {
  trace::TraceRecorder rec(1);
  std::ostringstream os;
  obs::write_chrome_trace(os, rec);
  EXPECT_EQ(os.str(), read_golden("chrome_empty.json")) << os.str();
}

TEST(ObsChromeExportTest, SmallTraceMatchesGolden) {
  trace::TraceRecorder rec(2);
  const std::uint32_t compute = rec.define_state("compute");
  rec.enter(0, compute, des::SimTime::milliseconds(1));
  rec.send(0, 1, 7, units::Bytes{4096}, des::SimTime::milliseconds(2));
  rec.leave(0, compute, des::SimTime::milliseconds(2));
  rec.enter(1, compute, des::SimTime::microseconds(2500));
  // Sub-microsecond timestamp: exercises the exact integer ts formatting.
  rec.recv(1, 0, 7, units::Bytes{4096},
           des::SimTime::picoseconds(2'500'000'001));
  rec.leave(1, compute, des::SimTime::milliseconds(4));

  std::ostringstream os;
  obs::write_chrome_trace(os, rec);
  EXPECT_EQ(os.str(), read_golden("chrome_small.json")) << os.str();
}

TEST(ObsChromeExportTest, MetricsJsonMatchesGolden) {
  obs::Registry reg;
  reg.counter("net.link.wan.tx_bytes").add(123456789);
  reg.gauge("net.link.wan.utilization").set(0.640625);
  obs::Histogram& h = reg.histogram("fire.delay_s", {1.0, 5.0});
  // Exactly-representable doubles so the %.17g golden is portable.
  h.add(0.5);
  h.add(4.25);
  h.add(4.25);
  h.add(9.0);
  reg.mark("fault.link_down.wan", des::SimTime::seconds(15), true);
  reg.mark("fault.link_down.wan", des::SimTime::seconds(17), false);

  std::ostringstream os;
  obs::write_metrics_json(os, reg, "golden");
  EXPECT_EQ(os.str(), read_golden("metrics_small.json")) << os.str();

  std::ostringstream csv;
  obs::write_metrics_csv(csv, reg);
  EXPECT_EQ(csv.str(),
            "name,kind,value\n"
            "fire.delay_s,histogram_count,4\n"
            "fire.delay_s,histogram_p50,3\n"
            "fire.delay_s,histogram_p90,5\n"
            "fire.delay_s,histogram_p99,5\n"
            "net.link.wan.tx_bytes,counter,123456789\n"
            "net.link.wan.utilization,gauge,0.640625\n");
}

// Quantile estimation over explicit buckets: interpolation inside the
// covering bucket, 0-anchored first bucket, overflow clamped to the top
// bound, and the empty-histogram degenerate case.
TEST(ObsRegistryTest, HistogramQuantiles) {
  obs::Histogram h({10.0, 20.0, 40.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 10; ++i) h.add(5.0);    // bucket [0,10]
  for (int i = 0; i < 10; ++i) h.add(15.0);   // bucket (10,20]
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);    // midway through bucket 0
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);    // exactly the bucket edge
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);   // midway through bucket 1
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  h.add(1000.0);                              // overflow bucket
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 40.0);    // clamped to the top bound
}

// Traces beyond 65k events must export with unique flow ids and stay
// byte-deterministic (a 16-bit id counter would silently wrap here).
TEST(ObsChromeExportTest, LargeTraceExportsAllEventsDeterministically) {
  const int kPairs = 16'500;  // 4 events each -> 66'000 events
  trace::TraceRecorder rec(2);
  const std::uint32_t st = rec.define_state("work");
  for (int i = 0; i < kPairs; ++i) {
    const des::SimTime t = des::SimTime::microseconds(10 * i);
    rec.enter(0, st, t);
    rec.send(0, 1, 1, units::Bytes{64}, t);
    rec.recv(1, 0, 1, units::Bytes{64}, t + des::SimTime::microseconds(5));
    rec.leave(0, st, t + des::SimTime::microseconds(5));
  }
  ASSERT_GT(rec.events().size(), 65'536u);

  std::ostringstream os1, os2;
  obs::write_chrome_trace(os1, rec);
  obs::write_chrome_trace(os2, rec);
  const std::string json = os1.str();
  EXPECT_EQ(json, os2.str());  // byte-identical double export

  auto count = [&json](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size()))
      ++n;
    return n;
  };
  EXPECT_EQ(count("\"ph\":\"B\""), static_cast<std::size_t>(kPairs));
  EXPECT_EQ(count("\"ph\":\"E\""), static_cast<std::size_t>(kPairs));
  EXPECT_EQ(count("\"ph\":\"s\""), static_cast<std::size_t>(kPairs));
  EXPECT_EQ(count("\"ph\":\"f\""), static_cast<std::size_t>(kPairs));
  // The last flow pair carries the id of the 16'500th send: no wrap.
  EXPECT_NE(json.find("\"id\":16500,"), std::string::npos);
}

TEST(ObsSeriesExportTest, SeriesJsonAndCsvAreStable) {
  des::Scheduler sched;
  obs::Registry reg;
  std::uint64_t n = 0;
  reg.probe_counter("n", [&n] { return n; });
  obs::TimeSeriesSampler sampler(sched, reg);
  sampler.watch("n");
  sched.schedule_at(des::SimTime::milliseconds(1), [&n] { n = 3; });
  sampler.sample_every(des::SimTime::milliseconds(2),
                       des::SimTime::milliseconds(4));
  sched.run();

  std::ostringstream js, csv;
  obs::write_series_json(js, sampler);
  obs::write_series_csv(csv, sampler);
  EXPECT_EQ(js.str(),
            "{\n  \"series\": [\n    {\"name\": \"n\", \"points\": "
            "[[0, 0], [2000000000, 3], [4000000000, 3]]}\n  ]\n}\n");
  EXPECT_EQ(csv.str(),
            "series,t_ps,value\n"
            "n,0,0\n"
            "n,2000000000,3\n"
            "n,4000000000,3\n");
}

}  // namespace
}  // namespace gtw
