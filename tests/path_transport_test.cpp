// meta::PathTransport: striping/reassembly edge cases (1-byte messages,
// message smaller than a chunk, strict in-order delivery), stream failure
// mid-message with watchdog-driven stream resets, token-bucket pacing,
// the adaptive stream/window controller, and the pass-through guarantee
// that a default single-stream path behaves exactly like a bare
// TcpConnection.
#include <gtest/gtest.h>

#include <vector>

#include "des/scheduler.hpp"
#include "meta/metacomputer.hpp"
#include "meta/path_transport.hpp"
#include "net/atm.hpp"
#include "net/fault.hpp"
#include "net/host.hpp"
#include "net/tcp.hpp"
#include "net/units.hpp"

namespace gtw::meta {
namespace {

using des::SimTime;

SimTime ms(int m) { return SimTime::milliseconds(m); }

// Two hosts joined by one ATM switch — the same WAN shape the TCP and
// fault tests use; the egress link toward b is the fault target.
struct PathFixture {
  des::Scheduler sched;
  net::Host a{sched, "fe_a", 1};
  net::Host b{sched, "fe_b", 2};
  net::AtmSwitch sw{sched, "sw"};
  net::AtmNic nic_a{sched, a, "a.atm",
                    net::Link::Config{units::BitRate::mbps(622.0),
                                      des::SimTime::microseconds(250),
                                      units::Bytes{16u << 20},
                                      des::SimTime::zero()}};
  net::AtmNic nic_b{sched, b, "b.atm",
                    net::Link::Config{units::BitRate::mbps(622.0),
                                      des::SimTime::microseconds(250),
                                      units::Bytes{16u << 20},
                                      des::SimTime::zero()}};
  net::VcAllocator vcs;
  int pa = -1, pb = -1;

  PathFixture() {
    auto cfg = net::Link::Config{units::BitRate::mbps(622.0),
                                 des::SimTime::microseconds(250),
                                 units::Bytes{16u << 20},
                                 des::SimTime::zero()};
    pa = sw.add_port(cfg);
    pb = sw.add_port(cfg);
    nic_a.uplink().set_sink(sw.ingress(pa));
    nic_b.uplink().set_sink(sw.ingress(pb));
    sw.connect_egress(pa, nic_a.ingress());
    sw.connect_egress(pb, nic_b.ingress());
    vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
    a.add_route(2, &nic_a, 2);
    b.add_route(1, &nic_b, 1);
  }

  net::Link& wan_toward_b() { return sw.egress_link(pb); }
};

PathConfig striped(int streams) {
  PathConfig cfg;
  cfg.streams = streams;
  cfg.chunk_bytes = units::Bytes{64u << 10};
  return cfg;
}

TEST(PathTransportTest, OneByteMessage) {
  PathFixture f;
  PathTransport path(f.sched, f.a, f.b, 7000, striped(4));
  int delivered = 0;
  path.send(0, units::Bytes{1}, [&] { ++delivered; });
  f.sched.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(path.stats(0).chunks, 1u);  // a tiny message is one chunk
  EXPECT_EQ(path.stats(0).delivered_bytes, 1u);
  EXPECT_EQ(path.stats(0).reassembly_bytes, 0u);  // drained after delivery
}

TEST(PathTransportTest, MessageSmallerThanChunkStaysWhole) {
  PathFixture f;
  PathTransport path(f.sched, f.a, f.b, 7000, striped(4));
  int delivered = 0;
  path.send(0, units::Bytes{10'000}, [&] { ++delivered; });
  f.sched.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(path.stats(0).chunks, 1u);
  EXPECT_EQ(path.stats(0).delivered_messages, 1u);
}

TEST(PathTransportTest, LargeMessageStripesAcrossAllStreams) {
  PathFixture f;
  PathTransport path(f.sched, f.a, f.b, 7000, striped(4));
  int delivered = 0;
  path.send(0, units::Bytes{4u << 20}, [&] { ++delivered; });  // 64 chunks
  f.sched.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(path.stats(0).chunks, 64u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(path.stream_stats(0, s).chunks, 16u) << "stream " << s;
  }
  // Leak census at drain: striping timers and per-chunk sends balance out
  // (pool slots in use == live events + cancelled tombstones == 0).
  EXPECT_EQ(f.sched.pool_in_use(),
            f.sched.live_events() + f.sched.cancelled_entries());
}

TEST(PathTransportTest, MessagesDeliverInSendOrder) {
  PathFixture f;
  PathTransport path(f.sched, f.a, f.b, 7000, striped(4));
  std::vector<int> order;
  // Mixed sizes: a big striped message first, tiny ones behind it.  The
  // small messages' chunks finish their streams early; delivery must still
  // wait for message 0.
  path.send(0, units::Bytes{2u << 20}, [&] { order.push_back(0); });
  path.send(0, units::Bytes{1}, [&] { order.push_back(1); });
  path.send(0, units::Bytes{100}, [&] { order.push_back(2); });
  f.sched.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  // Reordering cost is visible: later messages' bytes waited in reassembly.
  EXPECT_GT(path.stats(0).reassembly_peak_bytes, 0u);
  EXPECT_EQ(path.stats(0).reassembly_bytes, 0u);
}

TEST(PathTransportTest, BothSidesCarryTraffic) {
  PathFixture f;
  PathTransport path(f.sched, f.a, f.b, 7000, striped(2));
  int fwd = 0, rev = 0;
  path.send(0, units::Bytes{1u << 20}, [&] { ++fwd; });
  path.send(1, units::Bytes{1u << 20}, [&] { ++rev; });
  f.sched.run();
  EXPECT_EQ(fwd, 1);
  EXPECT_EQ(rev, 1);
  EXPECT_EQ(path.stats(0).delivered_bytes, 1u << 20);
  EXPECT_EQ(path.stats(1).delivered_bytes, 1u << 20);
}

TEST(PathTransportTest, StreamFailureMidMessageRecoversViaReset) {
  PathFixture f;
  net::FaultPlan plan(f.sched);
  // Cut the WAN mid-transfer for long enough that every stream's TCP
  // backs off; the chunk watchdog must tear the streams down and re-issue.
  plan.link_down(f.wan_toward_b(), ms(20), ms(500));

  PathConfig cfg = striped(4);
  cfg.chunk_timeout = ms(250);
  PathTransport path(f.sched, f.a, f.b, 7000, cfg);
  int delivered = 0;
  path.send(0, units::Bytes{8u << 20}, [&] { ++delivered; });
  f.sched.run();

  // Exactly-once delivery despite chunk re-issues on fresh connections.
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(path.stats(0).delivered_messages, 1u);
  EXPECT_EQ(path.stats(0).delivered_bytes, 8u << 20);
  EXPECT_GE(path.stats(0).stream_resets, 1u);
  EXPECT_GE(path.stats(0).chunk_resends, 1u);
}

TEST(PathTransportTest, PacingBoundsInjectionRate) {
  PathFixture f;
  PathConfig cfg = striped(2);
  cfg.pace_rate = units::BitRate::mbps(50.0);  // well under line rate
  cfg.pace_burst = cfg.chunk_bytes;
  PathTransport path(f.sched, f.a, f.b, 7000, cfg);
  int delivered = 0;
  const units::Bytes amount{4u << 20};
  path.send(0, amount, [&] { ++delivered; });
  f.sched.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_GT(path.stats(0).paced_delays, 0u);
  // Two streams paced at 50 Mbit/s each: the transfer cannot beat the
  // aggregate token rate (100 Mbit/s) by more than the initial bursts.
  const double floor_s =
      static_cast<double>(amount.count() - 2 * cfg.pace_burst.count()) * 8.0 /
      100e6;
  EXPECT_GE(f.sched.now().sec(), floor_s);
}

TEST(PathTransportTest, AdaptiveControllerGrowsStreamsUnderLoss) {
  PathFixture f;
  net::FaultPlan plan(f.sched);
  // Sustained bit errors: TCP sees steady retransmits, so every controller
  // interval observes loss and escalates.
  plan.ber_burst(f.wan_toward_b(), ms(1), SimTime::seconds(30), 2e-7);

  PathConfig cfg = striped(8);
  cfg.min_streams = 2;
  cfg.adapt_interval = ms(200);
  PathTransport path(f.sched, f.a, f.b, 7000, cfg);
  // The pool starts fully active; the first clean interval before traffic
  // ramps may shrink it, but under persistent loss it must stay pinned at
  // or grow back toward the ceiling, and the window must have come down.
  int delivered = 0;
  path.send(0, units::Bytes{32u << 20}, [&] { ++delivered; });
  f.sched.run();

  EXPECT_EQ(delivered, 1);
  EXPECT_GE(path.active_streams(), cfg.min_streams);
  EXPECT_LE(path.active_streams(), cfg.streams);
  EXPECT_LT(path.stream_window().count(), cfg.stream_window.count());
  EXPECT_GT(path.goodput(0).bps(), 0.0);
}

TEST(PathTransportTest, ControllerReleasesStreamsOnCleanPath) {
  PathFixture f;
  PathConfig cfg = striped(8);
  cfg.min_streams = 1;
  cfg.adapt_interval = ms(100);
  PathTransport path(f.sched, f.a, f.b, 7000, cfg);
  int delivered = 0;
  path.send(0, units::Bytes{64u << 20}, [&] { ++delivered; });
  f.sched.run();
  EXPECT_EQ(delivered, 1);
  // A long clean transfer gives the controller many loss-free intervals:
  // it must have handed surplus streams back (3 clean ticks per release).
  EXPECT_LT(path.active_streams(), cfg.streams);
  EXPECT_EQ(path.stats(0).stream_resets, 0u);
}

// The tentpole compatibility guarantee: a default-config PathTransport is
// byte-for-byte, event-for-event a single TcpConnection, which is what
// keeps every pre-existing BENCH artifact byte-identical.
TEST(PathTransportTest, PassthroughMatchesRawTcpTiming) {
  const units::Bytes amount{8u << 20};
  SimTime raw_done = SimTime::zero();
  std::uint64_t raw_events = 0;
  {
    PathFixture f;
    net::TcpConnection conn(f.a, f.b, 7000, 7001, net::TcpConfig{});
    conn.send(0, amount, {}, [&](const std::any&, SimTime at) {
      raw_done = at;
    });
    f.sched.run();
    raw_events = f.sched.events_executed();
  }
  SimTime path_done = SimTime::zero();
  std::uint64_t path_events = 0;
  {
    PathFixture f;
    PathTransport path(f.sched, f.a, f.b, 7000, PathConfig{});
    ASSERT_TRUE(path.config().passthrough());
    path.send(0, amount, [&] { path_done = f.sched.now(); });
    f.sched.run();
    path_events = f.sched.events_executed();
  }
  EXPECT_EQ(path_done, raw_done);
  EXPECT_EQ(path_events, raw_events);
}

// Same guarantee one layer up: Metacomputer::wan_send over the TcpConfig
// link_machines overload (now a pass-through path) must time exactly as it
// did when it held the connection directly.
TEST(PathTransportTest, MetacomputerPassthroughTiming) {
  PathFixture f;
  Metacomputer mc(f.sched);
  MachineSpec ma_spec;
  ma_spec.name = "A";
  ma_spec.frontend = &f.a;
  MachineSpec mb_spec;
  mb_spec.name = "B";
  mb_spec.frontend = &f.b;
  const int ma = mc.add_machine(ma_spec);
  const int mb = mc.add_machine(mb_spec);
  mc.link_machines(ma, mb, net::TcpConfig{}, 7000);
  ASSERT_NE(mc.wan_path(ma, mb), nullptr);
  EXPECT_TRUE(mc.wan_path(ma, mb)->config().passthrough());

  int delivered = 0;
  mc.wan_send(ma, mb, units::Bytes{1u << 20}, [&] { ++delivered; });
  f.sched.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(mc.wan_messages(), 1u);
}

TEST(PathTransportTest, RejectsInvalidConfig) {
  PathFixture f;
  PathConfig bad = striped(0);
  EXPECT_THROW(PathTransport(f.sched, f.a, f.b, 7000, bad),
               std::invalid_argument);
  PathConfig no_chunk;
  no_chunk.streams = 2;
  no_chunk.chunk_bytes = units::Bytes{0};
  EXPECT_THROW(PathTransport(f.sched, f.a, f.b, 7000, no_chunk),
               std::invalid_argument);
}

}  // namespace
}  // namespace gtw::meta
