// Fluid (batched-burst) link fidelity vs the exact per-frame model
// (DESIGN.md §10).  The contract under test: fluid mode changes *only*
// intra-burst delivery timestamps (bounded by burst_window) — admission,
// drop accounting, BER draw order, delivery order and content are identical,
// and end-to-end protocol metrics stay within 1% of exact.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "des/scheduler.hpp"
#include "net/atm.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "net/tcp.hpp"
#include "net/units.hpp"

namespace gtw::net {
namespace {

Link::Config base_cfg(LinkFidelity fid) {
  Link::Config cfg;
  cfg.rate = units::BitRate::mbps(100.0);
  cfg.propagation = des::SimTime::microseconds(10);
  cfg.queue_limit = units::Bytes{1 << 22};
  cfg.fidelity = fid;
  return cfg;
}

struct Delivery {
  std::uint64_t id;
  std::int64_t at_ps;
};

// Run `n` tagged frames through a fresh link in the given mode and record
// the delivery transcript plus scheduler event count.
struct ModeRun {
  std::vector<Delivery> deliveries;
  std::uint64_t events = 0;
  std::uint64_t bursts = 0;
  std::uint64_t corrupted = 0;
};

ModeRun run_mode(LinkFidelity fid, int n, std::uint32_t wire_bytes,
                 double ber = 0.0) {
  des::Scheduler sched;
  Link::Config cfg = base_cfg(fid);
  cfg.bit_error_rate = ber;
  Link link(sched, "l", cfg);
  ModeRun out;
  link.set_sink([&](Frame f) {
    out.deliveries.push_back({f.pkt.id, sched.now().ps()});
  });
  for (int i = 0; i < n; ++i) {
    Frame f;
    f.pkt.id = static_cast<std::uint64_t>(i) + 1;
    f.wire_bytes = wire_bytes;
    link.submit(std::move(f));
  }
  sched.run();
  out.events = sched.events_executed();
  out.bursts = link.bursts_completed();
  out.corrupted = link.corrupted_frames();
  return out;
}

TEST(LinkFidelityTest, FluidReducesEventsPreservesOrderAndBoundsError) {
  // 200 one-cell frames: 53 B at 100 Mbit/s is ~4.2 us of wire time each,
  // so the 50 us default window batches roughly a dozen frames per burst.
  const ModeRun exact = run_mode(LinkFidelity::kExact, 200, 53);
  const ModeRun fluid = run_mode(LinkFidelity::kFluid, 200, 53);

  ASSERT_EQ(exact.deliveries.size(), 200u);
  ASSERT_EQ(fluid.deliveries.size(), 200u);
  EXPECT_LT(fluid.events, exact.events / 2)
      << "batching must collapse per-frame transmit/propagate events";
  EXPECT_GT(fluid.bursts, 0u);
  EXPECT_EQ(exact.bursts, 0u);

  const std::int64_t window_ps = des::SimTime::microseconds(50).ps();
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(fluid.deliveries[i].id, exact.deliveries[i].id)
        << "delivery order must not change at " << i;
    // Fluid delivers at the burst end: never earlier than the exact time,
    // and never more than one burst window later.
    EXPECT_GE(fluid.deliveries[i].at_ps, exact.deliveries[i].at_ps);
    EXPECT_LE(fluid.deliveries[i].at_ps - exact.deliveries[i].at_ps,
              window_ps);
  }
  // The last frame of the stream ends the last burst: identical finish time.
  EXPECT_EQ(fluid.deliveries.back().at_ps, exact.deliveries.back().at_ps);
}

TEST(LinkFidelityTest, BurstFrameCapIsRespected) {
  des::Scheduler sched;
  Link::Config cfg = base_cfg(LinkFidelity::kFluid);
  cfg.burst_frames = 8;
  cfg.burst_window = des::SimTime::seconds(1.0);  // window never binds
  Link link(sched, "l", cfg);
  int delivered = 0;
  link.set_sink([&](Frame) { ++delivered; });
  for (int i = 0; i < 80; ++i) link.submit(Frame{{}, 53, 0, kNoHost});
  sched.run();
  EXPECT_EQ(delivered, 80);
  EXPECT_GE(link.bursts_completed(), 10u);  // ceil(80 / 8)
}

TEST(LinkFidelityTest, OversizedFramesDegenerateToExactTiming) {
  // Frames longer than the burst window ship one per burst — fluid mode's
  // timestamps must then be *identical* to exact mode, not approximate.
  const ModeRun exact = run_mode(LinkFidelity::kExact, 20, 125'000);  // 10 ms
  const ModeRun fluid = run_mode(LinkFidelity::kFluid, 20, 125'000);
  ASSERT_EQ(fluid.deliveries.size(), exact.deliveries.size());
  for (std::size_t i = 0; i < exact.deliveries.size(); ++i)
    EXPECT_EQ(fluid.deliveries[i].at_ps, exact.deliveries[i].at_ps);
  EXPECT_EQ(fluid.bursts, 20u);
}

TEST(LinkFidelityTest, BerDrawsMatchExactModeOrder) {
  // Per-frame corruption draws happen in queue order in both modes, against
  // the same per-link RNG stream, so loss patterns are bit-identical.
  const ModeRun exact = run_mode(LinkFidelity::kExact, 500, 9180, 1e-5);
  const ModeRun fluid = run_mode(LinkFidelity::kFluid, 500, 9180, 1e-5);
  EXPECT_GT(exact.corrupted, 0u) << "test needs actual corruption to compare";
  EXPECT_EQ(fluid.corrupted, exact.corrupted);
  ASSERT_EQ(fluid.deliveries.size(), exact.deliveries.size());
  for (std::size_t i = 0; i < exact.deliveries.size(); ++i)
    EXPECT_EQ(fluid.deliveries[i].id, exact.deliveries[i].id);
}

TEST(LinkFidelityTest, OutageMidBurstLosesWholeBurst) {
  des::Scheduler sched;
  Link link(sched, "l", base_cfg(LinkFidelity::kFluid));
  int delivered = 0;
  link.set_sink([&](Frame) { ++delivered; });
  for (int i = 0; i < 5; ++i) link.submit(Frame{{}, 1250, 0, kNoHost});
  // Cut the line while the burst is being clocked out: 5 x 1250 B at
  // 100 Mbit/s is 500 us of wire time; cut at 10 us.
  sched.schedule_after(des::SimTime::microseconds(10),
                       [&] { link.set_up(false); });
  sched.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.outage_drops(), 5u);
  EXPECT_EQ(link.burst_pool_in_use(), 0u) << "burst vector must be released";
  // The line comes back: traffic flows again through the pooled vectors.
  link.set_up(true);
  link.submit(Frame{{}, 1250, 0, kNoHost});
  sched.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(link.burst_pool_in_use(), 0u);
  EXPECT_LE(link.burst_pool_high_water(), 2u) << "burst vectors are reused";
}

// End-to-end accuracy: a TCP bulk transfer across an ATM switch must report
// goodput within 1% of the exact model when every link runs fluid.
struct FidelityTcpFixture {
  des::Scheduler sched;
  Host a;
  Host b;
  AtmSwitch sw;
  AtmNic nic_a;
  AtmNic nic_b;
  VcAllocator vcs;
  int pa = -1, pb = -1;

  FidelityTcpFixture()
      : a(sched, "a", 1), b(sched, "b", 2), sw(sched, "sw"),
        nic_a(sched, a, "a.atm",
              Link::Config{units::BitRate::mbps(622.0),
                           des::SimTime::microseconds(250),
                           units::Bytes{16u << 20}, des::SimTime::zero()},
              kMtuAtmDefault),
        nic_b(sched, b, "b.atm",
              Link::Config{units::BitRate::mbps(622.0),
                           des::SimTime::microseconds(250),
                           units::Bytes{16u << 20}, des::SimTime::zero()},
              kMtuAtmDefault) {
    const Link::Config port{units::BitRate::mbps(622.0),
                            des::SimTime::microseconds(250),
                            units::Bytes{4u << 20}, des::SimTime::zero()};
    pa = sw.add_port(port);
    pb = sw.add_port(port);
    nic_a.uplink().set_sink(sw.ingress(pa));
    nic_b.uplink().set_sink(sw.ingress(pb));
    sw.connect_egress(pa, nic_a.ingress());
    sw.connect_egress(pb, nic_b.ingress());
    vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
    a.add_route(2, &nic_a, 2);
    b.add_route(1, &nic_b, 1);
  }

  void set_fidelity(LinkFidelity f) {
    nic_a.uplink().set_fidelity(f);
    nic_b.uplink().set_fidelity(f);
    sw.egress_link(pa).set_fidelity(f);
    sw.egress_link(pb).set_fidelity(f);
  }
};

units::BitRate tcp_goodput(LinkFidelity fid) {
  FidelityTcpFixture f;
  f.set_fidelity(fid);
  TcpConnection conn(f.a, f.b, 100, 200);
  const units::Bytes size{4u << 20};
  des::SimTime done = des::SimTime::zero();
  conn.send(0, size, {}, [&](const std::any&, des::SimTime t) { done = t; });
  f.sched.run();
  EXPECT_GT(done.sec(), 0.0);
  return units::BitRate::bps(static_cast<double>(size.to_bits().count()) /
                             done.sec());
}

TEST(LinkFidelityTest, TcpGoodputWithinOnePercentOfExact) {
  const double exact = tcp_goodput(LinkFidelity::kExact).bps();
  const double fluid = tcp_goodput(LinkFidelity::kFluid).bps();
  EXPECT_LE(std::abs(fluid - exact) / exact, 0.01)
      << "exact " << exact << " bps vs fluid " << fluid << " bps";
}

}  // namespace
}  // namespace gtw::net
