// Boundary-conversion tests for the strong unit types (units/units.hpp)
// and the typed constants in net/units.hpp.
//
// The bits/bytes audit for this change found no live mix-up in the tree —
// every link_bandwidth / rate call site already agreed on its dimension —
// so instead of regression tests for bugs, these cases lock each boundary
// conversion to its exact pre-typed arithmetic: the typed layer is only
// byte-identical with the seed benchmarks while every equality below is
// an exact floating-point identity, not an approximation.
#include <gtest/gtest.h>

#include <type_traits>

#include "des/time.hpp"
#include "net/units.hpp"
#include "units/units.hpp"

namespace gtw {
namespace {

TEST(UnitsTest, BytesToBitsIsExactlyTimesEight) {
  EXPECT_EQ(units::Bytes{9180}.to_bits().count(), 9180u * 8u);
  EXPECT_EQ(units::Bytes::zero().to_bits().count(), 0u);
  // Scaling by eight is exact in IEEE doubles too (power of two), which is
  // what makes Bits / BitRate match transmission_time(Bytes, BitRate).
  EXPECT_EQ(static_cast<double>(units::Bytes{622'080'001}.to_bits().count()),
            static_cast<double>(622'080'001ull) * 8.0);
}

TEST(UnitsTest, AmountArithmeticStaysInDimension) {
  const units::Bytes mss = net::kMtuAtmDefault - units::Bytes{40};
  EXPECT_EQ(mss.count(), 9140u);
  EXPECT_EQ((mss + units::Bytes{40}).count(), 9180u);
  EXPECT_EQ((2ull * mss).count(), (mss * 2ull).count());
  units::Bytes acc = units::Bytes::zero();
  acc += mss;
  acc -= units::Bytes{140};
  EXPECT_EQ(acc.count(), 9000u);
}

TEST(UnitsTest, RateFactoriesMatchTheOldRawLiteralsBitForBit) {
  // The typed constants replaced literals like `622.08 * 1e6` all over the
  // tree; the replacement is only safe because these are the *same double*.
  EXPECT_EQ(net::kOc3Line.bps(), 155.52 * 1e6);
  EXPECT_EQ(net::kOc12Line.bps(), 622.08 * 1e6);
  EXPECT_EQ(net::kOc48Line.bps(), 2488.32 * 1e6);
  EXPECT_EQ(net::kHippiRate.bps(), 800.0 * 1e6);
  EXPECT_EQ(units::BitRate::gbps(2.5).bps(), 2.5 * 1e9);
  EXPECT_EQ(units::BitRate::kbps(64.0).bps(), 64.0 * 1e3);
}

TEST(UnitsTest, BitByteRateBridgesAreExactInverse) {
  const units::BitRate line = net::kOc12Line;
  // /8 and *8 are exact (exponent-only operations), so the round trip is
  // an identity, not an approximation.
  EXPECT_EQ(line.to_byte_rate().to_bit_rate().bps(), line.bps());
  EXPECT_EQ(line.to_byte_rate().per_sec(), line.bps() / 8.0);
  const units::ByteRate mem = units::ByteRate::per_sec(300e6);
  EXPECT_EQ(mem.to_bit_rate().bps(), 2.4e9);
}

TEST(UnitsTest, TransmissionTimeMatchesTheUntypedDesHelper) {
  const units::Bytes amount{64u << 20};
  const units::BitRate rate = net::kOc12Line;
  EXPECT_EQ(units::transmission_time(amount, rate).ps(),
            des::transmission_time(amount.count(), rate.bps()).ps());
  // Bits / BitRate takes the same ceil-to-picosecond path for whole bytes.
  EXPECT_EQ((amount.to_bits() / rate).ps(),
            units::transmission_time(amount, rate).ps());
  // Bytes / ByteRate routes through the bit-rate bridge, exactly.
  EXPECT_EQ((amount / rate.to_byte_rate()).ps(),
            units::transmission_time(amount, rate).ps());
}

TEST(UnitsTest, RateTimesTimeAccumulatesRoundedAmounts) {
  const des::SimTime second = des::SimTime::seconds(1.0);
  EXPECT_EQ((net::kOc12Line * second).count(), 622'080'000u);
  EXPECT_EQ((second * net::kOc12Line).count(), 622'080'000u);
  EXPECT_EQ((units::ByteRate::per_sec(300e6) * second).count(), 300'000'000u);
  // per() is the inverse direction: an amount each period.
  EXPECT_EQ(units::per(units::Bits{622'080'000}, second).bps(), 622.08e6);
}

TEST(UnitsTest, OpsOverOpRateIsUnroundedSeconds) {
  // Deliberately a double, not a SimTime: exec::time_on sums several of
  // these before rounding once.
  const double sec = units::Ops{46e6} / units::OpRate::per_sec(46e6);
  EXPECT_EQ(sec, 1.0);
  units::Ops w{1e6};
  w *= 2.5;
  w += units::Ops{5e5};
  EXPECT_EQ(w.count(), 3e6);
}

TEST(UnitsTest, Aal5CellPackingTypedMatchesRaw) {
  // 40 bytes + 8-byte trailer fill exactly one 48-byte cell payload.
  EXPECT_EQ(net::aal5_cells(units::Bytes{40}).count(), 1u);
  EXPECT_EQ(net::aal5_cells(units::Bytes{41}).count(), 2u);
  // RFC 1577 MTU + LLC/SNAP, as the NIC frames it.
  const units::Bytes pdu =
      net::kMtuAtmDefault + units::Bytes{net::kLlcSnapBytes};
  EXPECT_EQ(net::aal5_cells(pdu).count(), net::aal5_cells(9188u));
  EXPECT_EQ(net::aal5_wire_bytes(pdu).count(),
            net::aal5_cells(pdu).count() * net::kAtmCellBytes);
}

TEST(UnitsTest, FormattingCarriesTheUnit) {
  EXPECT_EQ(net::kOc12Line.to_string(), "622.08 Mbit/s");
  EXPECT_EQ(units::BitRate::gbps(2.48832).to_string(), "2.49 Gbit/s");
  EXPECT_EQ(units::Bytes{9180}.to_string(), "9.0 KiB");
  EXPECT_EQ(units::Bytes{64u << 20}.to_string(), "64.0 MiB");
  EXPECT_EQ(units::Bytes{512}.to_string(), "512 B");
  EXPECT_EQ(units::Cells{192}.to_string(), "192 cells");
  EXPECT_EQ(units::Ops{46e6}.to_string(), "46.00 Mop");
  EXPECT_EQ(units::OpRate::per_sec(46e6).to_string(), "46.00 Mop/s");
  EXPECT_EQ(units::ByteRate::per_sec(300e6).to_string(), "300.00 MB/s");
  EXPECT_EQ(units::Bits{622'080'000}.to_string(), "622.08 Mbit");
}

TEST(UnitsTest, WrappersAreZeroOverhead) {
  static_assert(sizeof(units::Bytes) == sizeof(std::uint64_t));
  static_assert(sizeof(units::BitRate) == sizeof(double));
  static_assert(std::is_trivially_copyable_v<units::Bytes>);
  static_assert(std::is_trivially_copyable_v<units::BitRate>);
  // Ordering comes with the dimension, not by escaping it.
  EXPECT_LT(net::kOc3Line, net::kOc12Line);
  EXPECT_LT(units::Bytes{9140}, net::kMtuAtmDefault);
  EXPECT_GT(units::Ops{2.0}, units::Ops{1.0});
}

}  // namespace
}  // namespace gtw
