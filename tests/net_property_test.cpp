// Property sweeps over the network substrate: TCP exact-delivery across
// MTU x buffer x loss configurations, scheduler stress determinism, and
// conservation invariants on the testbed.
#include <gtest/gtest.h>

#include <tuple>

#include "des/random.hpp"
#include "des/scheduler.hpp"
#include "net/atm.hpp"
#include "net/tcp.hpp"
#include "net/units.hpp"
#include "testbed/testbed.hpp"

namespace gtw::net {
namespace {

// (mtu, recv_buffer_kb, bottleneck queue kb) — the queue below the window
// provokes loss; above it, a clean run.
using TcpCase = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

class TcpDeliverySweep : public ::testing::TestWithParam<TcpCase> {};

TEST_P(TcpDeliverySweep, DeliversExactByteCountInOrder) {
  const auto [mtu, window_kb, queue_kb] = GetParam();
  des::Scheduler sched;
  Host a(sched, "a", 1), b(sched, "b", 2);
  AtmSwitch sw(sched, "sw");
  Link::Config fast{units::BitRate::mbps(622.0),
                    des::SimTime::microseconds(200), units::Bytes{16u << 20},
                    des::SimTime::zero()};
  Link::Config bottleneck{units::BitRate::mbps(100.0),
                          des::SimTime::microseconds(200),
                          units::Bytes{static_cast<std::uint64_t>(queue_kb) << 10},
                          des::SimTime::zero()};
  AtmNic nic_a(sched, a, "a.atm", fast, units::Bytes{mtu});
  AtmNic nic_b(sched, b, "b.atm", fast, units::Bytes{mtu});
  const int pa = sw.add_port(fast);
  const int pb = sw.add_port(bottleneck);
  nic_a.uplink().set_sink(sw.ingress(pa));
  nic_b.uplink().set_sink(sw.ingress(pb));
  sw.connect_egress(pa, nic_a.ingress());
  sw.connect_egress(pb, nic_b.ingress());
  VcAllocator vcs;
  vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
  a.add_route(2, &nic_a, 2);
  b.add_route(1, &nic_b, 1);

  TcpConfig cfg;
  cfg.mss = units::Bytes{mtu - 40};
  cfg.recv_buffer = units::Bytes{static_cast<std::uint64_t>(window_kb) << 10};
  TcpConnection conn(a, b, 100, 200, cfg);

  // Several messages of awkward sizes; all must arrive, in order.
  des::Rng rng(77);
  std::vector<std::uint64_t> sizes;
  std::uint64_t total = 0;
  for (int i = 0; i < 6; ++i) {
    const std::uint64_t s = 10'000 + rng.uniform_int(400'000);
    sizes.push_back(s);
    total += s;
  }
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    conn.send(0, units::Bytes{sizes[static_cast<std::size_t>(i)]}, std::any{i},
              [&order](const std::any& d, des::SimTime) {
                order.push_back(std::any_cast<int>(d));
              });
  }
  sched.run();
  EXPECT_EQ(conn.bytes_received(1), total);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TcpDeliverySweep,
    ::testing::Values(TcpCase{1500, 64, 512},    // small MTU, clean
                      TcpCase{1500, 256, 48},    // small MTU, lossy queue
                      TcpCase{9180, 256, 512},   // default ATM MTU, clean
                      TcpCase{9180, 1024, 64},   // overshoot -> loss bursts
                      TcpCase{65280, 512, 1024}, // big MTU, clean
                      TcpCase{65280, 1024, 256}  // big MTU, lossy
                      ));

// Adversity sweep: a seeded schedule of random frame drops, reorderings
// and residual bit errors on both directions of the path.  Whatever the
// schedule, TCP must deliver every queued byte exactly once and in order,
// and its recovery counters must stay consistent.
class TcpAdversitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpAdversitySweep, DeliversEveryByteExactlyOnceUnderRandomFaults) {
  const std::uint64_t seed = GetParam();
  des::Scheduler sched;
  Host a(sched, "a", 1), b(sched, "b", 2);
  AtmSwitch sw(sched, "sw");
  Link::Config wire{units::BitRate::mbps(155.0),
                    des::SimTime::microseconds(250), units::Bytes{2u << 20},
                    des::SimTime::zero()};
  AtmNic nic_a(sched, a, "a.atm", wire, kMtuAtmDefault);
  AtmNic nic_b(sched, b, "b.atm", wire, kMtuAtmDefault);
  const int pa = sw.add_port(wire);
  const int pb = sw.add_port(wire);
  // Residual BER derived from the seed (between ~1e-9 and ~4e-8 — a few
  // corrupted frames over the transfer).
  des::Rng rng(seed);
  sw.egress_link(pb).set_bit_error_rate(
      1e-9 * static_cast<double>(1 + rng.uniform_int(40)));

  // Adversarial interposer on each uplink: drop a few percent of frames,
  // delay (reorder past later frames) a few percent more.
  auto harass = [&sched, &rng](Link& uplink, FrameSink pass, double p_drop,
                               double p_delay) {
    auto shared_pass = std::make_shared<FrameSink>(std::move(pass));
    uplink.set_sink([&sched, &rng, shared_pass, p_drop, p_delay](Frame fr) {
      if (rng.bernoulli(p_drop)) return;
      if (rng.bernoulli(p_delay)) {
        const auto hold = des::SimTime::microseconds(
            static_cast<std::int64_t>(200 + rng.uniform_int(2000)));
        sched.schedule_after(hold, [shared_pass, fr = std::move(fr)]() mutable {
          (*shared_pass)(std::move(fr));
        });
        return;
      }
      (*shared_pass)(std::move(fr));
    });
  };
  harass(nic_a.uplink(), sw.ingress(pa), 0.03, 0.05);  // data + a's acks
  harass(nic_b.uplink(), sw.ingress(pb), 0.02, 0.04);  // b's acks
  sw.connect_egress(pa, nic_a.ingress());
  sw.connect_egress(pb, nic_b.ingress());
  VcAllocator vcs;
  vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
  a.add_route(2, &nic_a, 2);
  b.add_route(1, &nic_b, 1);

  TcpConnection conn(a, b, 100, 200);
  std::uint64_t queued = 0;
  std::vector<int> order;
  std::vector<int> delivery_counts(8, 0);
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t bytes = 20'000 + rng.uniform_int(180'000);
    queued += bytes;
    conn.send(0, units::Bytes{bytes}, std::any{i},
              [&order, &delivery_counts](const std::any& d, des::SimTime) {
                const int idx = std::any_cast<int>(d);
                order.push_back(idx);
                ++delivery_counts[static_cast<std::size_t>(idx)];
              });
  }
  sched.run();

  // Exactly-once, in-order delivery of every queued byte.
  EXPECT_EQ(conn.bytes_received(1), queued);
  EXPECT_EQ(conn.stats(0).bytes_acked, queued);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  for (int c : delivery_counts) EXPECT_EQ(c, 1);
  // Recovery-counter invariants: every timeout forces at least one
  // retransmission, and something was actually lost under this schedule.
  EXPECT_GE(conn.stats(0).retransmits, conn.stats(0).timeouts);
  EXPECT_GT(conn.stats(0).retransmits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpAdversitySweep,
                         ::testing::Values(11u, 23u, 37u, 59u, 97u));

TEST(SchedulerStress, ManyInterleavedTimersStayDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    des::Scheduler sched;
    des::Rng rng(seed);
    std::uint64_t checksum = 1469598103934665603ULL;
    int live = 0;
    // Self-rescheduling timers with random periods, plus cancellations.
    std::vector<des::EventHandle> handles;
    std::function<void(int)> tick = [&](int id) {
      checksum = (checksum ^ static_cast<std::uint64_t>(id)) * 1099511628211ULL;
      checksum ^= static_cast<std::uint64_t>(sched.now().ps());
      if (++live < 4000) {
        sched.schedule_after(
            des::SimTime::microseconds(1 + static_cast<std::int64_t>(
                                               rng.uniform_int(500))),
            [&tick, id] { tick(id); });
      }
    };
    for (int id = 0; id < 20; ++id) {
      sched.schedule_after(des::SimTime::microseconds(
                               static_cast<std::int64_t>(rng.uniform_int(100))),
                           [&tick, id] { tick(id); });
    }
    // A few cancelled decoys must not perturb anything.
    for (int i = 0; i < 50; ++i) {
      auto h = sched.schedule_after(des::SimTime::milliseconds(1),
                                    [&checksum] { checksum = 0; });
      h.cancel();
    }
    sched.run();
    return checksum;
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST(ConservationTest, TestbedPacketAccountingBalances) {
  // Sum of received + forwarded-at-gateways equals what was sent when the
  // network is loss-free.
  testbed::Testbed tb{testbed::TestbedOptions{}};
  const int n = 40;
  int received = 0;
  tb.sp2().bind(IpProto::kUdp, 77, [&](const IpPacket&) { ++received; });
  for (int i = 0; i < n; ++i) {
    IpPacket pkt;
    pkt.dst = tb.sp2().id();
    pkt.proto = IpProto::kUdp;
    pkt.dst_port = 77;
    pkt.total_bytes = 5000;
    tb.t3e600().send_datagram(std::move(pkt));
  }
  tb.scheduler().run();
  EXPECT_EQ(received, n);
  EXPECT_EQ(tb.t3e600().packets_sent(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(tb.gw_o200().packets_forwarded(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(tb.gw_e5000().packets_forwarded(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(tb.sp2().packets_received(), static_cast<std::uint64_t>(n));
}

TEST(ConservationTest, LinkByteCountersMatchFrames) {
  des::Scheduler sched;
  Link link(sched, "l",
            {units::BitRate::mbps(100.0), des::SimTime::zero(),
             units::Bytes{1u << 20}, des::SimTime::zero()});
  std::uint64_t delivered_bytes = 0;
  link.set_sink([&](Frame f) { delivered_bytes += f.wire_bytes; });
  std::uint64_t submitted = 0;
  des::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t bytes =
        100 + static_cast<std::uint32_t>(rng.uniform_int(5000));
    if (link.submit(Frame{{}, bytes, 0, kNoHost})) submitted += bytes;
  }
  sched.run();
  EXPECT_EQ(link.bytes_sent(), submitted);
  EXPECT_EQ(delivered_bytes, submitted);
}

class WanEraSweep
    : public ::testing::TestWithParam<testbed::WanEra> {};

TEST_P(WanEraSweep, CrossSiteSmallMessageLatencyIsEraIndependent) {
  // Latency (unlike bandwidth) is dominated by the 100 km of glass; all
  // eras deliver a small packet in well under 1 ms + serialization.
  testbed::Testbed tb{testbed::TestbedOptions{GetParam()}};
  des::SimTime arrival;
  tb.onyx2_gmd().bind(IpProto::kUdp, 9, [&](const IpPacket&) {
    arrival = tb.scheduler().now();
  });
  IpPacket pkt;
  pkt.dst = tb.onyx2_gmd().id();
  pkt.proto = IpProto::kUdp;
  pkt.dst_port = 9;
  pkt.total_bytes = 200;
  tb.onyx2_juelich().send_datagram(std::move(pkt));
  tb.scheduler().run();
  EXPECT_GT(arrival.us(), 500.0);
  EXPECT_LT(arrival.us(), 1200.0);
}

INSTANTIATE_TEST_SUITE_P(Eras, WanEraSweep,
                         ::testing::Values(testbed::WanEra::kBWin155,
                                           testbed::WanEra::kOc12_1997,
                                           testbed::WanEra::kOc48_1998));

}  // namespace
}  // namespace gtw::net
