#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "des/random.hpp"
#include "fire/correlation.hpp"
#include "fire/detrend.hpp"
#include "fire/filters.hpp"
#include "fire/motion.hpp"
#include "fire/reference.hpp"
#include "fire/rigid.hpp"
#include "fire/rvo.hpp"
#include "fire/volume.hpp"
#include "scanner/phantom.hpp"

namespace gtw::fire {
namespace {

TEST(VolumeTest, IndexingRoundTrip) {
  VolumeF v(4, 3, 2);
  float k = 0;
  for (int z = 0; z < 2; ++z)
    for (int y = 0; y < 3; ++y)
      for (int x = 0; x < 4; ++x) v.at(x, y, z) = k++;
  EXPECT_EQ(v.size(), 24u);
  EXPECT_FLOAT_EQ(v.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(v.at(3, 2, 1), 23.0f);
  EXPECT_FLOAT_EQ(v[23], 23.0f);
}

TEST(VolumeTest, ClampedReadsEdge) {
  VolumeF v(2, 2, 2, 5.0f);
  v.at(0, 0, 0) = 1.0f;
  EXPECT_FLOAT_EQ(v.clamped(-3, -3, -3), 1.0f);
  EXPECT_FLOAT_EQ(v.clamped(9, 9, 9), 5.0f);
}

TEST(VolumeTest, TrilinearInterpolation) {
  VolumeF v(2, 2, 2);
  v.at(1, 0, 0) = 10.0f;
  // Midpoint between (0,0,0)=0 and (1,0,0)=10.
  EXPECT_NEAR(v.sample(0.5, 0.0, 0.0), 5.0, 1e-9);
  // At a lattice point, exact.
  EXPECT_NEAR(v.sample(1.0, 0.0, 0.0), 10.0, 1e-9);
}

TEST(MedianFilterTest, RemovesImpulseNoise) {
  VolumeF v(9, 9, 3, 100.0f);
  v.at(4, 4, 1) = 10000.0f;  // hot pixel
  const VolumeF out = median_filter_3x3(v);
  EXPECT_FLOAT_EQ(out.at(4, 4, 1), 100.0f);
}

TEST(MedianFilterTest, ConstantImageFixedPoint) {
  VolumeF v(8, 8, 2, 42.0f);
  const VolumeF out = median_filter_3x3(v);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_FLOAT_EQ(out[i], 42.0f);
}

TEST(AverageFilterTest, PreservesMeanOfConstant) {
  VolumeF v(6, 6, 6, 7.0f);
  const VolumeF out = average_filter_3x3x3(v);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out[i], 7.0f, 1e-5);
}

TEST(AverageFilterTest, SmoothsAStep) {
  VolumeF v(8, 4, 4, 0.0f);
  for (int z = 0; z < 4; ++z)
    for (int y = 0; y < 4; ++y)
      for (int x = 4; x < 8; ++x) v.at(x, y, z) = 90.0f;
  const VolumeF out = average_filter_3x3x3(v);
  // On the boundary the value is between the two plateaus.
  EXPECT_GT(out.at(4, 2, 2), 10.0f);
  EXPECT_LT(out.at(4, 2, 2), 80.0f);
}

TEST(ReferenceTest, HrfKernelIsNormalisedAndPeaksNearDelay) {
  const auto h = hrf_kernel(HrfParams{6.0, 2.0}, 0.1);
  const double sum = std::accumulate(h.begin(), h.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  const auto peak = std::max_element(h.begin(), h.end());
  const double t_peak =
      (static_cast<double>(std::distance(h.begin(), peak)) + 0.5) * 0.1;
  EXPECT_NEAR(t_peak, 6.0, 1.0);
}

TEST(ReferenceTest, ReferenceIsZNormalised) {
  StimulusDesign stim{10, 10};
  const auto r = make_reference(stim, 100, 2.0, HrfParams{});
  double mean = std::accumulate(r.begin(), r.end(), 0.0) / 100.0;
  double var = 0;
  for (double x : r) var += (x - mean) * (x - mean);
  var /= 100.0;
  EXPECT_NEAR(mean, 0.0, 1e-9);
  EXPECT_NEAR(var, 1.0, 1e-9);
}

TEST(ReferenceTest, ReferenceLagsStimulus) {
  StimulusDesign stim{10, 10};
  const auto s = stim.series(60);
  const auto r = make_reference(stim, 60, 2.0, HrfParams{6.0, 2.0});
  // The hemodynamic delay shifts the response: correlation of the reference
  // with a lagged stimulus beats correlation with the instantaneous one.
  auto corr_at_lag = [&](int lag) {
    linalg::Vector a, b;
    for (int i = lag; i < 60; ++i) {
      a.push_back(s[static_cast<std::size_t>(i - lag)]);
      b.push_back(r[static_cast<std::size_t>(i)]);
    }
    return linalg::pearson(a, b);
  };
  EXPECT_GT(corr_at_lag(3), corr_at_lag(0));  // 3 scans x 2 s = 6 s lag
}

TEST(ZNormaliseTest, ZeroVarianceBecomesZeros) {
  std::vector<double> v{5.0, 5.0, 5.0};
  z_normalise(v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(IncrementalCorrelationTest, DetectsPerfectlyCorrelatedVoxel) {
  const Dims d{4, 4, 2};
  IncrementalCorrelation corr(d);
  StimulusDesign stim{5, 5};
  const auto ref = make_reference(stim, 40, 2.0, HrfParams{});
  des::Rng rng(3);
  for (int t = 0; t < 40; ++t) {
    VolumeF img(d);
    for (std::size_t i = 0; i < img.size(); ++i)
      img[i] = static_cast<float>(rng.normal(100.0, 1.0));
    img.at(0, 0, 0) = static_cast<float>(
        100.0 + 10.0 * ref[static_cast<std::size_t>(t)]);  // driven voxel
    corr.add_scan(img, ref[static_cast<std::size_t>(t)]);
  }
  const VolumeF map = corr.correlation_map();
  EXPECT_GT(map.at(0, 0, 0), 0.99f);
  // A noise voxel stays low.
  EXPECT_LT(std::abs(map.at(3, 3, 1)), 0.5f);
}

TEST(IncrementalCorrelationTest, BoundedByOne) {
  const Dims d{2, 2, 1};
  IncrementalCorrelation corr(d);
  des::Rng rng(5);
  for (int t = 0; t < 30; ++t) {
    VolumeF img(d);
    for (std::size_t i = 0; i < img.size(); ++i)
      img[i] = static_cast<float>(rng.normal());
    corr.add_scan(img, rng.normal());
  }
  const VolumeF map = corr.correlation_map();
  for (std::size_t i = 0; i < map.size(); ++i) {
    EXPECT_LE(map[i], 1.0f);
    EXPECT_GE(map[i], -1.0f);
  }
}

TEST(IncrementalCorrelationTest, AffineInvariance) {
  // r is invariant to per-voxel affine rescaling of the signal.
  const Dims d{1, 1, 1};
  IncrementalCorrelation a(d), b(d);
  des::Rng rng(7);
  for (int t = 0; t < 25; ++t) {
    const double y = rng.normal();
    const double x = 0.8 * y + 0.2 * rng.normal();
    VolumeF va(d), vb(d);
    va[0] = static_cast<float>(x);
    vb[0] = static_cast<float>(5.0 * x + 300.0);
    a.add_scan(va, y);
    b.add_scan(vb, y);
  }
  EXPECT_NEAR(a.correlation_at(0), b.correlation_at(0), 1e-5);
}

TEST(DetrendTest, RemovesLinearDrift) {
  const Dims d{3, 3, 1};
  IncrementalDetrend det(d, DetrendConfig{1, false, 50});
  double last_residual = 1e9;
  for (int t = 0; t < 50; ++t) {
    VolumeF img(d);
    for (std::size_t i = 0; i < img.size(); ++i)
      img[i] = static_cast<float>(100.0 + 2.5 * t);  // pure drift
    const VolumeF out = det.add_scan(img);
    last_residual = out[0];
  }
  EXPECT_NEAR(last_residual, 0.0, 1e-3);
}

TEST(DetrendTest, RemovesCosineDrift) {
  const Dims d{2, 2, 1};
  IncrementalDetrend det(d, DetrendConfig{1, true, 64});
  double residual_sum = 0.0;
  for (int t = 0; t < 64; ++t) {
    VolumeF img(d);
    const double u = t / 63.0;
    for (std::size_t i = 0; i < img.size(); ++i)
      img[i] = static_cast<float>(50.0 + 8.0 * std::cos(M_PI * u));
    const VolumeF out = det.add_scan(img);
    if (t > 10) residual_sum += std::abs(out[0]);
  }
  EXPECT_LT(residual_sum / 53.0, 0.05);
}

TEST(DetrendTest, PreservesStimulusLockedSignalUnderDrift) {
  // Under a strong baseline drift, detrending must clearly improve the
  // correlation with the reference relative to the raw signal (causal
  // streaming detrending distorts the first cycles, so the comparison —
  // not perfection — is the invariant).
  const Dims d{1, 1, 1};
  StimulusDesign stim{8, 8};
  const auto ref = make_reference(stim, 96, 2.0, HrfParams{});
  IncrementalDetrend det(d, DetrendConfig{1, true, 96});
  IncrementalCorrelation corr_det(d), corr_raw(d);
  for (int t = 0; t < 96; ++t) {
    VolumeF img(d);
    img[0] = static_cast<float>(200.0 + 30.0 * t / 95.0 +
                                5.0 * ref[static_cast<std::size_t>(t)]);
    corr_raw.add_scan(img, ref[static_cast<std::size_t>(t)]);
    corr_det.add_scan(det.add_scan(img), ref[static_cast<std::size_t>(t)]);
  }
  EXPECT_GT(corr_det.correlation_at(0), 0.6);
  EXPECT_GT(corr_det.correlation_at(0), corr_raw.correlation_at(0) + 0.05);
}

TEST(RigidTest, IdentityTransformIsNoop) {
  const VolumeF v = scanner::make_head_phantom(Dims{16, 16, 8});
  const VolumeF out = resample(v, RigidTransform{});
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(out[i], v[i], 1e-4);
}

TEST(RigidTest, TranslationShiftsContent) {
  VolumeF v(8, 8, 4, 0.0f);
  v.at(4, 4, 2) = 100.0f;
  RigidTransform t;
  t.tx = 1.0;  // output voxel x reads source x+1
  const VolumeF out = resample(v, t);
  EXPECT_NEAR(out.at(3, 4, 2), 100.0f, 1e-3);
}

TEST(RigidTest, InverseApproxUndoesSmallMotion) {
  const VolumeF v = scanner::make_head_phantom(Dims{24, 24, 12});
  RigidTransform t{0.6, -0.4, 0.2, 0.01, -0.015, 0.02};
  // Geometric property: composing the transform with its first-order
  // inverse moves points by at most O(|theta|^2 * radius).
  const Dims d = v.dims();
  const double cx = (d.nx - 1) / 2.0, cy = (d.ny - 1) / 2.0,
               cz = (d.nz - 1) / 2.0;
  const RigidTransform inv = t.inverse_approx();
  double worst = 0.0;
  for (int z = 0; z < d.nz; z += 3) {
    for (int y = 0; y < d.ny; y += 4) {
      for (int x = 0; x < d.nx; x += 4) {
        double mx, my, mz, bx, by, bz;
        t.apply(cx, cy, cz, x, y, z, mx, my, mz);
        inv.apply(cx, cy, cz, mx, my, mz, bx, by, bz);
        const double err = std::sqrt((bx - x) * (bx - x) +
                                     (by - y) * (by - y) +
                                     (bz - z) * (bz - z));
        worst = std::max(worst, err);
      }
    }
  }
  EXPECT_LT(worst, 0.05);  // ~ (0.02 rad)^2 * 17 voxel radius
}

TEST(MotionTest, RecoversInjectedTranslation) {
  const VolumeF ref = scanner::make_head_phantom(Dims{32, 32, 12});
  RigidTransform injected;
  injected.tx = 0.8;
  injected.ty = -0.5;
  const VolumeF moved = resample(ref, injected);

  MotionCorrector mc(ref);
  const MotionResult res = mc.correct(moved);
  // The estimate aligns `moved` back to `ref`, i.e. ~ inverse of injected.
  EXPECT_NEAR(res.estimate.tx, -0.8, 0.1);
  EXPECT_NEAR(res.estimate.ty, 0.5, 0.1);
  EXPECT_LT(res.final_rmse, res.initial_rmse * 0.3);
}

TEST(MotionTest, RecoversInjectedRotation) {
  const VolumeF ref = scanner::make_head_phantom(Dims{32, 32, 12});
  RigidTransform injected;
  injected.rz = 0.03;  // ~1.7 degrees
  const VolumeF moved = resample(ref, injected);
  MotionCorrector mc(ref);
  const MotionResult res = mc.correct(moved);
  EXPECT_NEAR(res.estimate.rz, -0.03, 0.01);
  EXPECT_LT(std::abs(res.estimate.tx), 0.2);
}

TEST(MotionTest, IdentityInputYieldsNearZeroEstimate) {
  const VolumeF ref = scanner::make_head_phantom(Dims{24, 24, 8});
  MotionCorrector mc(ref);
  const MotionResult res = mc.correct(ref);
  EXPECT_LT(res.estimate.max_abs(), 1e-3);
}

TEST(RvoTest, RecoversGroundTruthDelay) {
  // One voxel driven by an HRF with delay 7.5 s; RVO's raster must pick a
  // delay near it and beat the default-delay correlation.
  const Dims d{4, 4, 1};
  StimulusDesign stim{8, 8};
  const double tr = 2.0;
  const HrfParams truth{7.5, 2.0};
  const auto resp = make_reference(stim, 64, tr, truth);

  std::vector<VolumeF> series;
  des::Rng rng(11);
  for (int t = 0; t < 64; ++t) {
    VolumeF img(d, 100.0f);
    for (std::size_t i = 0; i < img.size(); ++i)
      img[i] += static_cast<float>(rng.normal(0.0, 0.3));
    img.at(1, 1, 0) = static_cast<float>(
        100.0 + 5.0 * resp[static_cast<std::size_t>(t)]);
    series.push_back(img);
  }

  RvoConfig cfg;
  cfg.delay_steps = 13;
  cfg.disp_steps = 7;
  RvoAnalyzer rvo(d, stim, tr, cfg);
  const RvoResult res = rvo.analyze(series);
  const std::size_t idx = 1 * 4 + 1;
  EXPECT_GT(res.fits[idx].best_correlation, 0.95f);
  EXPECT_NEAR(res.fits[idx].delay_s, 7.5, 1.0);
}

TEST(RvoTest, CoarseRefineFindsSameOptimumWithFewerEvaluations) {
  const Dims d{4, 4, 1};
  StimulusDesign stim{8, 8};
  const double tr = 2.0;
  const auto resp = make_reference(stim, 48, tr, HrfParams{5.0, 1.5});
  std::vector<VolumeF> series;
  for (int t = 0; t < 48; ++t) {
    VolumeF img(d, 100.0f);
    img.at(2, 2, 0) = static_cast<float>(
        100.0 + 4.0 * resp[static_cast<std::size_t>(t)]);
    series.push_back(img);
  }

  RvoConfig full;
  full.delay_steps = 12;
  full.disp_steps = 12;
  RvoConfig coarse = full;
  coarse.mode = RvoMode::kCoarseRefine;

  const RvoResult rf = RvoAnalyzer(d, stim, tr, full).analyze(series);
  const RvoResult rc = RvoAnalyzer(d, stim, tr, coarse).analyze(series);
  const std::size_t idx = 2 * 4 + 2;
  EXPECT_LT(rc.reference_evaluations, rf.reference_evaluations);
  EXPECT_NEAR(rc.fits[idx].best_correlation, rf.fits[idx].best_correlation,
              0.02);
  EXPECT_NEAR(rc.fits[idx].delay_s, rf.fits[idx].delay_s, 1.0);
}

TEST(RvoTest, MasksAirVoxels) {
  const Dims d{4, 4, 1};
  StimulusDesign stim{5, 5};
  std::vector<VolumeF> series;
  for (int t = 0; t < 20; ++t) {
    VolumeF img(d, 0.0f);     // everything air...
    img.at(0, 0, 0) = 500.0f; // ...except one bright voxel
    series.push_back(img);
  }
  const RvoResult res = RvoAnalyzer(d, stim, 2.0, RvoConfig{}).analyze(series);
  // Air voxels were skipped entirely.
  EXPECT_EQ(res.fits[5].best_correlation, 0.0f);
  EXPECT_LT(res.reference_evaluations, 120u);  // ~1 voxel x grid
}

}  // namespace
}  // namespace gtw::fire
