// Coverage for smaller public surfaces: pipeline scan-skipping, typed
// sends, routing MTU queries, link statistics, halo-exchange costs in the
// execution model, and frame-streamer interval statistics.
#include <gtest/gtest.h>

#include "exec/machine.hpp"
#include "fire/pipeline.hpp"
#include "meta/communicator.hpp"
#include "net/link.hpp"
#include "net/units.hpp"
#include "testbed/testbed.hpp"
#include "viz/workbench.hpp"

namespace gtw {
namespace {

TEST(PipelineSkipTest, SlowPipelineSkipsStaleScansInsteadOfLagging) {
  // 16 PEs: compute ~7.3 s vs TR 3 s.  The sequential client must fall
  // back to "newest image" semantics: bounded delay, skipped scans > 0.
  testbed::Testbed tb{testbed::TestbedOptions{}};
  fire::PipelineConfig cfg;
  cfg.n_scans = 10;
  cfg.t3e_pes = 16;
  fire::FmriPipeline pipe(
      tb.scheduler(),
      {&tb.scanner_frontend(), &tb.gw_o200(), &tb.onyx2_juelich()}, cfg);
  pipe.start();
  tb.scheduler().run();
  const auto res = pipe.result();
  EXPECT_GT(res.scans_skipped, 0);
  // Delay stays bounded (roughly compute + transfers + one TR of waiting),
  // far below the unbounded backlog of a naive queue.
  EXPECT_LT(res.mean_total_delay_s, 20.0);
}

TEST(PipelineSkipTest, FastPipelineSkipsNothing) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  fire::PipelineConfig cfg;
  cfg.n_scans = 8;
  cfg.t3e_pes = 256;
  fire::FmriPipeline pipe(
      tb.scheduler(),
      {&tb.scanner_frontend(), &tb.gw_o200(), &tb.onyx2_juelich()}, cfg);
  pipe.start();
  tb.scheduler().run();
  EXPECT_EQ(pipe.result().scans_skipped, 0);
}

TEST(TypedSendTest, ByteCountFollowsDatatype) {
  des::Scheduler sched;
  meta::Metacomputer mc(sched);
  meta::MachineSpec m;
  m.max_pes = 4;
  const int id = mc.add_machine(m);
  meta::Communicator comm(mc, {{id, 0}, {id, 1}});
  std::uint64_t got_bytes = 0;
  comm.recv(1, 0, 3, [&](const meta::Message& msg) { got_bytes = msg.bytes; });
  comm.send_typed(0, 1, 3, /*count=*/250, meta::Datatype::kFloat64);
  sched.run();
  EXPECT_EQ(got_bytes, 2000u);
  EXPECT_EQ(comm.bytes_sent(), 2000u);
  EXPECT_EQ(comm.messages_sent(), 1u);
}

TEST(RouteMtuTest, ReportsEgressNicMtu) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  // ATM-attached host toward another ATM host: the Fore 64 KB MTU.
  EXPECT_EQ(tb.onyx2_juelich().route_mtu(tb.onyx2_gmd().id()),
            net::kMtuAtmFore);
  // Cray toward anything: the HiPPI MTU.
  EXPECT_EQ(tb.t3e600().route_mtu(tb.sp2().id()), net::kMtuHippi);
  // Unknown destination on a host without default route: 0.
  EXPECT_EQ(tb.onyx2_juelich().route_mtu(9999).count(), 0u);
}

TEST(LinkStatsTest, UtilizationAndQueueDepthTracked) {
  des::Scheduler sched;
  net::Link link(sched, "l",
                 {units::BitRate::mbps(100.0), des::SimTime::zero(),
                  units::Bytes{1u << 20}, des::SimTime::zero()});
  link.set_sink([](net::Frame) {});
  // 10 frames of 1 ms each, submitted at once: the link is busy 10 ms.
  for (int i = 0; i < 10; ++i)
    link.submit(net::Frame{{}, 12500, 0, net::kNoHost});
  sched.run();
  // All time since construction was spent transmitting.
  EXPECT_NEAR(link.utilization(), 1.0, 0.01);
  EXPECT_GT(link.mean_queue_bytes(), 0.0);
  EXPECT_EQ(link.drops(), 0u);
}

TEST(ExecHaloTest, HaloExchangeCostsShowUpInParallelRuns) {
  exec::MachineProfile m = exec::MachineProfile::t3e600();
  m.per_pe_overhead = des::SimTime::zero();
  m.region_overhead = des::SimTime::zero();
  exec::WorkEstimate base;
  base.parallel_ops = units::Ops{46e6};  // 1 s at 1 PE
  exec::WorkEstimate with_halo = base;
  with_halo.halo_bytes = units::Bytes{10'000'000};  // 10 MB at 300 MB/s ~ 33 ms
  with_halo.halo_exchanges = 4;
  // At 1 PE no communication happens at all.
  EXPECT_DOUBLE_EQ(exec::time_on(m, base, 1).sec(),
                   exec::time_on(m, with_halo, 1).sec());
  // At 8 PEs the halo adds its transfer time.
  const double delta = exec::time_on(m, with_halo, 8).sec() -
                       exec::time_on(m, base, 8).sec();
  EXPECT_NEAR(delta, 10e6 / 300e6 + 4 * 8e-6, 0.002);
}

TEST(FrameStreamerTest, IntervalStatsMatchAchievedRate) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  net::TcpConfig tcp;
  tcp.mss = tb.options().atm_mtu - units::Bytes{40};
  tcp.recv_buffer = units::Bytes{1u << 20};
  viz::FrameStreamer streamer(tb.scheduler(), tb.onyx2_gmd(),
                              tb.workbench_juelich(), viz::WorkbenchFormat{},
                              viz::RenderModel{}, 20, tcp);
  streamer.start();
  tb.scheduler().run();
  EXPECT_EQ(streamer.frames_delivered(), 20);
  const double fps = streamer.achieved_fps();
  EXPECT_GT(fps, 5.0);
  // Mean inter-frame interval is the reciprocal of the rate.
  EXPECT_NEAR(streamer.frame_interval_ms().mean(), 1000.0 / fps, 5.0);
  // Steady state: low jitter on a dedicated path.
  EXPECT_LT(streamer.frame_interval_ms().stddev(),
            0.2 * streamer.frame_interval_ms().mean());
}

TEST(WanAccountingTest, MetacomputerCountsWanTraffic) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  meta::Metacomputer mc(tb.scheduler());
  meta::MachineSpec a;
  a.max_pes = 8;
  a.frontend = &tb.t3e600();
  meta::MachineSpec b;
  b.max_pes = 8;
  b.frontend = &tb.sp2();
  const int ma = mc.add_machine(a);
  const int mb = mc.add_machine(b);
  net::TcpConfig cfg;
  cfg.mss = tb.options().atm_mtu - units::Bytes{40};
  mc.link_machines(ma, mb, cfg, 7000);
  meta::Communicator comm(mc, {{ma, 0}, {mb, 0}});
  comm.send(0, 1, 0, 10'000);
  comm.send(1, 0, 0, 5'000);
  comm.recv(1, 0, 0, [](const meta::Message&) {});
  comm.recv(0, 1, 0, [](const meta::Message&) {});
  tb.scheduler().run();
  EXPECT_EQ(mc.wan_messages(), 2u);
  EXPECT_EQ(mc.wan_bytes(), 15'000u + 2 * meta::kMetaHeaderBytes);
}

}  // namespace
}  // namespace gtw
