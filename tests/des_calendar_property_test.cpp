// Property test: the calendar-queue scheduler is observationally identical
// to a reference binary-heap scheduler (the seed engine's ordering rule,
// re-implemented here in its simplest possible form).
//
// A randomized workload of schedules, cancels, nested reschedules, timestamp
// collisions, and horizon-bounded runs is driven through both engines with
// the same RNG stream.  The full execution transcript — (timestamp, tag) per
// fired event — and the FNV-1a stream hash must match exactly.  This pins the
// calendar's tier mechanics (bucket heaps, overflow ladder, day jumps,
// demotion, resize, tombstone sweeps) to the simple model: any internal
// reorganization that leaks into execution order is caught here.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "des/random.hpp"
#include "des/scheduler.hpp"
#include "des/time.hpp"

namespace gtw::des {
namespace {

// FNV-1a over the 8 bytes of `v`, little-endian — must match the engine's.
void fnv1a_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= 1099511628211ULL;
  }
}

// Reference model: a plain sorted-on-demand event list with (time, seq)
// ordering and lazy cancellation.  Deliberately naive — correctness oracle,
// not a performance baseline.
class ReferenceScheduler {
 public:
  using Handle = std::uint64_t;  // seq; 0 = inert

  SimTime now() const { return now_; }
  std::uint64_t stream_hash() const { return hash_; }
  bool empty() const { return live_ == 0; }

  Handle schedule_at(SimTime when, std::function<void()> fn) {
    const std::uint64_t seq = next_seq_++;
    events_.push_back(Ev{when, seq, std::move(fn), false});
    ++live_;
    return seq;
  }
  Handle schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  void cancel(Handle h) {
    if (h == 0) return;
    for (Ev& e : events_) {
      if (e.seq == h && !e.cancelled) {
        e.cancelled = true;
        --live_;
        return;
      }
    }
  }

  bool step(SimTime horizon) {
    auto best = events_.end();
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->cancelled) continue;
      if (best == events_.end() || it->when < best->when ||
          (it->when == best->when && it->seq < best->seq))
        best = it;
    }
    if (best == events_.end() || best->when > horizon) return false;
    now_ = best->when;
    fnv1a_mix(hash_, static_cast<std::uint64_t>(best->when.ps()));
    fnv1a_mix(hash_, best->seq);
    std::function<void()> fn = std::move(best->fn);
    events_.erase(best);
    --live_;
    fn();
    return true;
  }

  std::uint64_t run(SimTime horizon = SimTime::max()) {
    std::uint64_t n = 0;
    while (step(horizon)) ++n;
    // Mirror the engine: a bounded run leaves the clock at the horizon so
    // relative scheduling after the run starts from the same base time.
    if (live_ != 0 && horizon != SimTime::max()) now_ = horizon;
    return n;
  }

 private:
  struct Ev {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    bool cancelled;
  };
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t hash_ = 14695981039346656037ULL;  // FNV-1a offset basis
  std::size_t live_ = 0;
  std::vector<Ev> events_;
};

using Transcript = std::vector<std::pair<std::int64_t, int>>;

// Drive one engine through the randomized workload.  Every RNG draw happens
// in the same order for both engines, so the schedules are bit-identical.
template <typename Sched, typename Handle>
Transcript drive(Sched& sched, std::uint64_t seed, std::uint64_t* hash_out) {
  Rng rng(seed);
  Transcript out;
  std::vector<Handle> cancellable;
  int next_tag = 0;

  // Self-rescheduling actor: models protocol timers that re-arm from within
  // their own callback, including same-timestamp bursts.
  std::function<void(int, int)> actor = [&](int tag, int depth) {
    out.emplace_back(sched.now().ps(), tag);
    if (depth <= 0) return;
    const std::uint64_t jitter = rng.next_u64() % 3;  // 0 => same timestamp
    sched.schedule_after(
        SimTime::picoseconds(static_cast<std::int64_t>(jitter * 40'000)),
        [&actor, tag, depth] { actor(tag, depth - 1); });
  };

  for (int round = 0; round < 40; ++round) {
    // A burst of fresh events: near, far, and colliding timestamps.  The
    // far band is many calendar "days" out, forcing overflow traffic.
    for (int i = 0; i < 25; ++i) {
      const std::uint64_t r = rng.next_u64();
      std::int64_t delay_ps = 0;
      switch (r % 4) {
        case 0: delay_ps = static_cast<std::int64_t>(r % 200'000); break;
        case 1: delay_ps = static_cast<std::int64_t>(r % 50'000'000); break;
        case 2: delay_ps = static_cast<std::int64_t>(r % 80'000'000'000); break;
        default: delay_ps = 777'000; break;  // deliberate collisions
      }
      const int tag = next_tag++;
      if (r % 5 == 0) {
        const int depth = static_cast<int>(r % 3);
        cancellable.push_back(sched.schedule_after(
            SimTime::picoseconds(delay_ps),
            [&actor, tag, depth] { actor(tag, depth); }));
      } else {
        cancellable.push_back(sched.schedule_after(
            SimTime::picoseconds(delay_ps), [&out, &sched, tag] {
              out.emplace_back(sched.now().ps(), tag);
            }));
      }
    }
    // Churn: cancel a deterministic random subset (some already fired —
    // must be inert), including immediate double-cancels.
    for (int i = 0; i < 8 && !cancellable.empty(); ++i) {
      const std::size_t pick = rng.next_u64() % cancellable.size();
      sched.cancel(cancellable[pick]);
      if (rng.next_u64() % 2 == 0) sched.cancel(cancellable[pick]);
      cancellable.erase(cancellable.begin() +
                        static_cast<std::ptrdiff_t>(pick));
    }
    // Drain a horizon-bounded slice, so later rounds insert both before and
    // after the calendar's current day cursor.
    const std::int64_t horizon_ps =
        sched.now().ps() + static_cast<std::int64_t>(rng.next_u64() % 30'000'000);
    sched.run(SimTime::picoseconds(horizon_ps));
  }
  sched.run();
  *hash_out = sched.stream_hash();
  return out;
}

TEST(CalendarPropertyTest, MatchesReferenceHeapUnderRandomChurn) {
  for (std::uint64_t seed : {1ULL, 0xdecafULL, 0x9e3779b97f4a7c15ULL}) {
    // des::Scheduler::cancel is private (handles cancel themselves), so wrap
    // both engines behind the same micro-interface.
    struct CalWrap {
      Scheduler s;
      SimTime now() const { return s.now(); }
      std::uint64_t stream_hash() const { return s.stream_hash(); }
      EventHandle schedule_after(SimTime d, Scheduler::Action a) {
        return s.schedule_after(d, std::move(a));
      }
      void cancel(EventHandle& h) { h.cancel(); }
      std::uint64_t run(SimTime h = SimTime::max()) { return s.run(h); }
    };
    struct RefWrap {
      ReferenceScheduler s;
      SimTime now() const { return s.now(); }
      std::uint64_t stream_hash() const { return s.stream_hash(); }
      ReferenceScheduler::Handle schedule_after(SimTime d,
                                                std::function<void()> f) {
        return s.schedule_after(d, std::move(f));
      }
      void cancel(ReferenceScheduler::Handle h) { s.cancel(h); }
      std::uint64_t run(SimTime h = SimTime::max()) { return s.run(h); }
    };

    CalWrap cal;
    RefWrap ref;
    std::uint64_t cal_hash = 0, ref_hash = 0;
    const Transcript cal_t =
        drive<CalWrap, EventHandle>(cal, seed, &cal_hash);
    const Transcript ref_t =
        drive<RefWrap, ReferenceScheduler::Handle>(ref, seed, &ref_hash);

    ASSERT_EQ(cal_t.size(), ref_t.size()) << "seed " << seed;
    for (std::size_t i = 0; i < cal_t.size(); ++i) {
      ASSERT_EQ(cal_t[i], ref_t[i])
          << "seed " << seed << " diverges at event " << i;
    }
    EXPECT_EQ(cal_hash, ref_hash) << "seed " << seed;
  }
}

// The transcript must also be insensitive to the calendar's initial
// geometry: force resizes mid-run by front-loading a large population.
TEST(CalendarPropertyTest, ResizeDuringRunPreservesOrder) {
  Scheduler sched;
  ReferenceScheduler ref;
  Rng rng(0x5ca1ab1eULL);
  std::vector<std::int64_t> delays;
  for (int i = 0; i < 3000; ++i)
    delays.push_back(static_cast<std::int64_t>(rng.next_u64() % 2'000'000));

  Transcript cal_t, ref_t;
  for (int i = 0; i < 3000; ++i) {
    sched.schedule_after(SimTime::picoseconds(delays[static_cast<std::size_t>(i)]),
                         [&cal_t, &sched, i] {
                           cal_t.emplace_back(sched.now().ps(), i);
                         });
    ref.schedule_after(SimTime::picoseconds(delays[static_cast<std::size_t>(i)]),
                       [&ref_t, &ref, i] {
                         ref_t.emplace_back(ref.now().ps(), i);
                       });
  }
  sched.run();
  ref.run();
  EXPECT_EQ(cal_t, ref_t);
  EXPECT_EQ(sched.stream_hash(), ref.stream_hash());
  EXPECT_GE(sched.calendar_resizes(), 1u);
}

}  // namespace
}  // namespace gtw::des
