#include <gtest/gtest.h>

#include <cmath>

#include "apps/climate.hpp"
#include "net/probe.hpp"
#include "testbed/testbed.hpp"

namespace gtw {
namespace {

TEST(PingTest, AllProbesAnsweredOnCleanPath) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  net::EchoResponder echo(tb.onyx2_gmd(), 9999);
  net::PingReport report;
  net::Pinger ping(tb.onyx2_juelich(), tb.onyx2_gmd().id(), 9999, 20);
  ping.start([&](const net::PingReport& rep) { report = rep; });
  tb.scheduler().run();
  EXPECT_EQ(report.sent, 20);
  EXPECT_EQ(report.received, 20);
  EXPECT_EQ(echo.echoes(), 20u);
  // RTT across 2x100 km of glass plus stack costs: > 1 ms, < 2 ms.
  EXPECT_GT(report.rtt_ms.min(), 1.0);
  EXPECT_LT(report.rtt_ms.max(), 2.0);
}

TEST(PingTest, LocalHippiRttFarBelowWan) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  net::EchoResponder echo(tb.t3e1200(), 9999);
  net::PingReport report;
  net::Pinger ping(tb.t3e600(), tb.t3e1200().id(), 9999, 10);
  ping.start([&](const net::PingReport& rep) { report = rep; });
  tb.scheduler().run();
  EXPECT_EQ(report.received, 10);
  EXPECT_LT(report.rtt_ms.mean(), 0.5);
}

TEST(PingTest, LossyLinkReportsMissingReplies) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  tb.set_wan_bit_error_rate(1e-4);  // brutal: most probes die
  net::EchoResponder echo(tb.onyx2_gmd(), 9999);
  net::PingReport report;
  net::Pinger ping(tb.onyx2_juelich(), tb.onyx2_gmd().id(), 9999, 30);
  ping.start([&](const net::PingReport& rep) { report = rep; });
  tb.scheduler().run();
  EXPECT_EQ(report.sent, 30);
  EXPECT_LT(report.received, 30);
  // Every probe is accounted for: answered or timed out, nothing vanishes.
  EXPECT_EQ(report.timeouts, report.sent - report.received);
}

// Regression for the probe timeout becoming a constructor parameter: a
// short grace period must end the run at last-send + timeout (the default
// would sit a full second), and unanswered probes must be reported.
TEST(PingTest, CustomTimeoutBoundsUnansweredRun) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  // No EchoResponder bound on the destination port: no probe is answered.
  net::PingReport report;
  des::SimTime done_at;
  net::Pinger ping(tb.onyx2_juelich(), tb.onyx2_gmd().id(), 9998, 5,
                   units::Bytes{56}, des::SimTime::milliseconds(10),
                   des::SimTime::milliseconds(50));
  ping.start([&](const net::PingReport& rep) {
    report = rep;
    done_at = tb.scheduler().now();
  });
  tb.scheduler().run();
  EXPECT_EQ(report.sent, 5);
  EXPECT_EQ(report.received, 0);
  EXPECT_EQ(report.timeouts, 5);
  // Five sends every 10 ms, then the 50 ms grace period: done at 100 ms.
  EXPECT_EQ(done_at, des::SimTime::milliseconds(100));
}

TEST(ConservativeRegridTest, PreservesIntegralExactly) {
  apps::Field2D src(32, 16);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 32; ++x)
      src.at(x, y) = 100.0 + 7.0 * std::sin(0.3 * x) * std::cos(0.5 * y);
  for (const auto& [nx, ny] : {std::pair{48, 24}, std::pair{20, 10},
                               std::pair{32, 16}, std::pair{7, 3}}) {
    const apps::Field2D dst = apps::regrid_conservative(src, nx, ny);
    // Equal-area-weighted mean is invariant (all cells uniform here).
    EXPECT_NEAR(dst.mean(), src.mean(), 1e-9)
        << "target " << nx << "x" << ny;
  }
}

TEST(ConservativeRegridTest, ConstantFieldExact) {
  apps::Field2D src(10, 10, 42.0);
  const apps::Field2D dst = apps::regrid_conservative(src, 23, 17);
  for (double v : dst.v) EXPECT_NEAR(v, 42.0, 1e-12);
}

TEST(ConservativeRegridTest, BeatsBilinearOnIntegralPreservation) {
  // A spiky field: bilinear sampling loses mass, conservative does not.
  apps::Field2D src(16, 16);
  src.at(5, 5) = 1000.0;
  src.at(11, 3) = -400.0;
  const apps::Field2D cons = apps::regrid_conservative(src, 9, 9);
  const apps::Field2D bili = apps::regrid(src, 9, 9);
  EXPECT_NEAR(cons.mean(), src.mean(), 1e-9);
  EXPECT_GT(std::abs(bili.mean() - src.mean()),
            10.0 * std::abs(cons.mean() - src.mean()) + 1e-12);
}

TEST(ConservativeRegridTest, IdentityWhenGridsMatch) {
  apps::Field2D src(12, 8);
  for (std::size_t i = 0; i < src.v.size(); ++i)
    src.v[i] = static_cast<double>(i);
  const apps::Field2D dst = apps::regrid_conservative(src, 12, 8);
  for (std::size_t i = 0; i < src.v.size(); ++i)
    EXPECT_NEAR(dst.v[i], src.v[i], 1e-12);
}

}  // namespace
}  // namespace gtw
