// GTW-San violation-fixture harness (DESIGN.md §12): every checker must
// fire on a deliberately broken scenario and stay silent on a clean one —
// a sanitizer that cannot catch its own fixtures is decoration.
//
// Three layers, matching the check:: architecture:
//   - Monitor mechanics (ring buffer, cap, report, drain-vs-quiescent);
//   - the pure invariant verdicts of invariants.hpp on hand-built broken
//     ledgers (build-mode independent);
//   - the hook-driven checkers (SchedulerChecker, CommChecker, PathChecker)
//     driven directly through their observer interfaces, plus end-to-end
//     scenarios against the real scheduler/pool where the notification
//     call sites exist (GTW_CHECK builds).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>

#include "check/attach.hpp"
#include "check/invariants.hpp"
#include "check/monitor.hpp"
#include "des/pool.hpp"
#include "des/scheduler.hpp"
#include "des/time.hpp"
#include "net/link.hpp"
#include "net/units.hpp"

namespace gtw::check {
namespace {

// --- Monitor mechanics ------------------------------------------------------

TEST(MonitorTest, CleanRunReportsAllClear) {
  des::Scheduler sched;
  Monitor mon(sched);
  mon.add_invariant("always.ok", [] { return std::nullopt; });
  mon.add_drain_check("drain.ok", [] { return std::nullopt; });
  EXPECT_EQ(mon.check_now(), 0u);
  EXPECT_EQ(mon.finish(), 0u);
  EXPECT_TRUE(mon.clean());
  EXPECT_EQ(mon.report(), "gtw-check: clean (0 violations)\n");
}

TEST(MonitorTest, ViolationCarriesHistoryOldestFirst) {
  des::Scheduler sched;
  Monitor mon(sched);
  mon.note("first");
  mon.note("second");
  mon.violation("unit.test", "broke");
  ASSERT_EQ(mon.violations().size(), 1u);
  const Violation& v = mon.violations()[0];
  EXPECT_EQ(v.checker, "unit.test");
  ASSERT_EQ(v.history.size(), 2u);
  // Notes carry a simulated-time stamp prefix.
  EXPECT_NE(v.history[0].find("[t="), std::string::npos);
  EXPECT_NE(v.history[0].find("first"), std::string::npos);
  EXPECT_NE(v.history[1].find("second"), std::string::npos);
}

TEST(MonitorTest, HistoryRingKeepsLastCapacityNotes) {
  des::Scheduler sched;
  Monitor mon(sched);
  for (int i = 0; i < 100; ++i) mon.note("n" + std::to_string(i));
  mon.violation("unit.test", "broke");
  const auto& hist = mon.violations()[0].history;
  ASSERT_EQ(hist.size(), Monitor::kHistoryCapacity);
  // 100 notes into a 64-slot ring: n36..n99 survive, oldest first.
  EXPECT_NE(hist.front().find("n36"), std::string::npos);
  EXPECT_NE(hist.back().find("n99"), std::string::npos);
}

TEST(MonitorTest, ViolationListCapsButCountKeepsGrowing) {
  des::Scheduler sched;
  Monitor mon(sched);
  for (int i = 0; i < 150; ++i) mon.violation("unit.flood", "broke");
  EXPECT_EQ(mon.violations().size(), Monitor::kMaxViolations);
  EXPECT_EQ(mon.total_violations(), 150u);
  EXPECT_FALSE(mon.clean());
  EXPECT_NE(mon.report().find("150 violation(s)"), std::string::npos);
}

TEST(MonitorTest, DrainChecksOnlyRunAtFinish) {
  des::Scheduler sched;
  Monitor mon(sched);
  mon.add_drain_check("drain.only",
                      [] { return std::optional<std::string>("leak"); });
  EXPECT_EQ(mon.check_now(), 0u);  // quiescent sweep skips drain checks
  EXPECT_EQ(mon.finish(), 1u);
  EXPECT_EQ(mon.violations()[0].checker, "drain.only");
}

TEST(MonitorTest, PeriodicSweepEndsAtNaturalDrain) {
  des::Scheduler sched;
  Monitor mon(sched);
  int sweeps = 0;
  mon.add_invariant("count.sweeps", [&sweeps]() -> std::optional<std::string> {
    ++sweeps;
    return std::nullopt;
  });
  // 10ms of real events; a 1ms sweep tick must ride along, then stop.
  for (int i = 1; i <= 10; ++i) {
    sched.schedule_at(des::SimTime::milliseconds(i), [] {});
  }
  mon.arm_periodic(des::SimTime::milliseconds(1));
  sched.run();
  EXPECT_TRUE(sched.empty());  // the tick chain did not keep the sim alive
  EXPECT_GE(sweeps, 5);
  EXPECT_TRUE(mon.clean());
}

// --- pure invariant verdicts on broken ledgers ------------------------------

TEST(InvariantTest, LinkConservationFlagsMissingBytes) {
  LinkAccounts a;
  a.submitted_bytes = 1000;
  a.sent_bytes = 400;
  a.queued_bytes = 500;  // 100 bytes vanished
  EXPECT_TRUE(link_conservation(a).has_value());
  a.dropped_bytes = 100;
  EXPECT_FALSE(link_conservation(a).has_value());
}

TEST(InvariantTest, LinkDrainedFlagsQueuedAndFrameImbalance) {
  LinkAccounts a;
  a.submitted_frames = 3;
  a.submitted_bytes = 300;
  a.sent_frames = 2;  // one frame unaccounted for
  a.sent_bytes = 300;
  EXPECT_TRUE(link_drained(a).has_value());
  a.sent_frames = 3;
  EXPECT_FALSE(link_drained(a).has_value());
  a.queued_bytes = 10;  // drained link must hold nothing
  EXPECT_TRUE(link_drained(a).has_value());
}

TEST(InvariantTest, HostDrainedFlagsLostFramesAndReassemblyLeak) {
  HostAccounts a;
  a.nic_arrivals = 10;
  a.received = 6;
  a.forwarded = 3;  // one frame lost
  EXPECT_TRUE(host_drained(a).has_value());
  a.recv_unroutable = 1;
  EXPECT_FALSE(host_drained(a).has_value());
  a.reassembly_pending = 2;  // partially reassembled datagrams leaked
  EXPECT_TRUE(host_drained(a).has_value());
}

TEST(InvariantTest, SwitchDrainedFlagsFabricLoss) {
  SwitchAccounts a;
  a.ingress_frames = 5;
  a.egress_submitted_frames = 4;
  EXPECT_TRUE(switch_drained(a).has_value());
  a.unroutable_frames = 1;
  EXPECT_FALSE(switch_drained(a).has_value());
}

TEST(InvariantTest, TcpSequenceSanityFlagsInvertedPointers) {
  TcpSeqAccounts a;
  a.snd_una = 100;
  a.snd_nxt = 90;  // nxt behind una
  a.snd_max = 100;
  a.snd_end = 100;
  a.cwnd = 1460.0;
  a.mss = 1460;
  EXPECT_TRUE(tcp_sequence_sanity(a).has_value());
  a.snd_nxt = 100;
  EXPECT_FALSE(tcp_sequence_sanity(a).has_value());
  a.cwnd = 100.0;  // collapsed below one segment
  EXPECT_TRUE(tcp_sequence_sanity(a).has_value());
}

TEST(InvariantTest, TcpDrainedFlagsUnfinishedWork) {
  TcpSeqAccounts a;
  a.snd_una = 900;
  a.snd_nxt = 1000;
  a.snd_max = 1000;
  a.snd_end = 1000;  // 100 bytes still unacked
  a.cwnd = 1460.0;
  a.mss = 1460;
  EXPECT_TRUE(tcp_drained(a).has_value());
  a.snd_una = 1000;
  EXPECT_FALSE(tcp_drained(a).has_value());
}

TEST(InvariantTest, PathDrainedFlagsStrandedChunks) {
  PathAccounts a;
  a.messages = 4;
  a.delivered_messages = 4;
  a.bytes = 4096;
  a.delivered_bytes = 4096;
  EXPECT_FALSE(path_drained(a).has_value());
  a.outstanding_chunks = 1;  // handed to TCP, never delivered
  EXPECT_TRUE(path_drained(a).has_value());
  a.outstanding_chunks = 0;
  a.delivered_messages = 3;  // a whole message vanished
  EXPECT_TRUE(path_drained(a).has_value());
}

TEST(InvariantTest, FlowConservationFlagsLostItems) {
  FlowAccounts a;
  a.pushed = 10;
  a.admitted = 8;
  a.admission_dropped = 2;
  a.completed = 7;  // one admitted item vanished
  EXPECT_TRUE(flow_conservation(a).has_value());
  a.in_flight = 1;
  EXPECT_FALSE(flow_conservation(a).has_value());
  EXPECT_TRUE(flow_drained(a).has_value());  // in flight at drain = leak
}

TEST(InvariantTest, FlowStageSanityFlagsImpossibleLedger) {
  FlowStageAccounts a;
  a.items_in = 5;
  a.items_out = 4;
  a.dropped = 2;  // out + dropped > in
  EXPECT_TRUE(flow_stage_sanity(a).has_value());
  a.dropped = 0;
  a.queue_depth = 3;  // more queued than unaccounted for
  EXPECT_TRUE(flow_stage_sanity(a).has_value());
  a.queue_depth = 1;
  a.queue_peak = 1;
  EXPECT_FALSE(flow_stage_sanity(a).has_value());
}

TEST(InvariantTest, WanOutcomeMustBeExactlyOne) {
  WanOutcome o;
  EXPECT_TRUE(wan_outcome_sane(o).has_value());  // none set
  o.delivered_to_app = true;
  EXPECT_FALSE(wan_outcome_sane(o).has_value());
  o.after_abandon = true;  // delivered after the watchdog gave up
  EXPECT_TRUE(wan_outcome_sane(o).has_value());
}

// --- SchedulerChecker, driven through the hook interface --------------------

TEST(SchedulerCheckerTest, PastScheduleFires) {
  des::Scheduler sched;
  Monitor mon(sched);
  SchedulerChecker checker(mon);
  checker.on_schedule(des::SimTime::milliseconds(1),
                      des::SimTime::milliseconds(2), 7);
  ASSERT_EQ(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].checker, "des.sched.past-schedule");
}

TEST(SchedulerCheckerTest, MonotonicFireFlagsRegression) {
  des::Scheduler sched;
  Monitor mon(sched);
  SchedulerChecker checker(mon);
  checker.on_fire(des::SimTime::milliseconds(2), 1);
  checker.on_fire(des::SimTime::milliseconds(1), 2);  // time went backwards
  ASSERT_EQ(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].checker, "des.sched.monotonic-fire");
  // The violation report carries the fire breadcrumbs.
  EXPECT_NE(mon.violations()[0].history[0].find("fire seq=1"),
            std::string::npos);
}

TEST(SchedulerCheckerTest, CancelOutcomesClassified) {
  des::Scheduler sched;
  Monitor mon(sched);
  SchedulerChecker checker(mon);
  using Outcome = des::SchedulerCheckHook::CancelOutcome;
  checker.on_cancel(1, Outcome::kCancelled);  // normal: breadcrumb only
  checker.on_cancel(2, Outcome::kStale);      // documented no-op: counted
  EXPECT_TRUE(mon.clean());
  EXPECT_EQ(checker.stale_cancels(), 1u);
  checker.on_cancel(3, Outcome::kDouble);  // aliased handle: violation
  ASSERT_EQ(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].checker, "des.sched.double-cancel");
}

// --- CommChecker / PathChecker, driven through the observer interfaces ------

TEST(CommCheckerTest, ContradictoryOutcomeFlagged) {
  des::Scheduler sched;
  Monitor mon(sched);
  CommChecker checker(mon, "meta.fixture");
  checker.on_wan_outcome(0, 1, true, false, false);  // clean delivery
  checker.on_wan_outcome(1, 0, false, true, false);  // clean abandon-drop
  EXPECT_TRUE(mon.clean());
  checker.on_wan_outcome(0, 1, true, true, false);  // delivered after abandon
  ASSERT_EQ(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].checker, "meta.fixture.wan-outcome");
}

TEST(PathCheckerTest, ChunkDeliveredTwiceFlagged) {
  des::Scheduler sched;
  Monitor mon(sched);
  PathChecker checker(mon, "meta.path.fixture");
  checker.on_chunk(0, 0, 0, /*duplicate=*/false);
  checker.on_chunk(0, 0, 1, /*duplicate=*/false);
  checker.on_chunk(0, 0, 1, /*duplicate=*/true);  // suppressed resend: fine
  EXPECT_TRUE(mon.clean());
  checker.on_chunk(0, 0, 0, /*duplicate=*/false);  // same chunk, unsuppressed
  ASSERT_EQ(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].checker, "meta.path.fixture.chunk-twice");
}

TEST(PathCheckerTest, PhantomDuplicateFlagged) {
  des::Scheduler sched;
  Monitor mon(sched);
  PathChecker checker(mon, "meta.path.fixture");
  // Transport claims duplicate-suppression for a chunk that never arrived.
  checker.on_chunk(1, 5, 2, /*duplicate=*/true);
  ASSERT_EQ(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].checker, "meta.path.fixture.chunk-dup");
}

TEST(PathCheckerTest, OutOfOrderMessageFlaggedOnceThenResyncs) {
  des::Scheduler sched;
  Monitor mon(sched);
  PathChecker checker(mon, "meta.path.fixture");
  checker.on_message(0, 0, 1024);
  checker.on_message(0, 1, 1024);
  EXPECT_TRUE(mon.clean());
  checker.on_message(0, 3, 1024);  // message 2 overtaken
  EXPECT_EQ(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].checker, "meta.path.fixture.order");
  checker.on_message(0, 4, 1024);  // resynced: one break reports once
  EXPECT_EQ(mon.total_violations(), 1u);
}

// --- pool census ------------------------------------------------------------

TEST(PoolCensusTest, LeakedSlotCaughtAtDrain) {
  des::Scheduler sched;
  Monitor mon(sched);
  des::SlabPool<int, 16> pool;
  attach_pool(mon, pool, "des.pool.fixture");
  (void)pool.acquire();  // never released
  EXPECT_GE(mon.finish(), 1u);
  EXPECT_EQ(mon.violations()[0].checker, "des.pool.fixture.leak");
}

TEST(PoolCensusTest, BalancedAcquireReleaseIsClean) {
  des::Scheduler sched;
  Monitor mon(sched);
  des::SlabPool<int, 16> pool;
  attach_pool(mon, pool, "des.pool.fixture");
  const auto idx = pool.acquire();
  pool.release(idx);
  EXPECT_EQ(mon.finish(), 0u);
  EXPECT_TRUE(mon.clean());
}

// --- end-to-end against the real scheduler ----------------------------------

// The pool census invariant (records in use == live events + tombstones)
// holds through schedule / cancel / fire churn and at drain, in every build.
TEST(EndToEndTest, SchedulerCensusSilentOnCleanRun) {
  des::Scheduler sched;
  Monitor mon(sched);
  attach_scheduler(mon, sched);
  for (int i = 1; i <= 8; ++i) {
    auto h = sched.schedule_at(des::SimTime::milliseconds(i), [] {});
    if (i % 3 == 0) h.cancel();  // leave tombstones in the queue
  }
  EXPECT_EQ(mon.check_now(), 0u);  // census holds with tombstones present
  sched.run();
  EXPECT_EQ(mon.finish(), 0u);
  EXPECT_TRUE(mon.clean());
}

// A real link driven to drain: byte conservation holds continuously and the
// drain census passes — the "silent on clean runs" half of the contract.
TEST(EndToEndTest, LinkConservationSilentOnCleanRun) {
  des::Scheduler sched;
  net::Link link(sched, "fixture",
                 {units::BitRate::mbps(100.0), des::SimTime::zero(),
                  units::Bytes{1 << 20}, des::SimTime::zero()});
  link.set_sink([](net::Frame) {});
  Monitor mon(sched);
  attach_link(mon, link);
  for (int i = 0; i < 4; ++i) {
    net::Frame f;
    f.wire_bytes = 1250;
    link.submit(f);
  }
  EXPECT_EQ(mon.check_now(), 0u);  // frames queued/in transmit: bytes balance
  sched.run();
  EXPECT_EQ(mon.finish(), 0u);
  EXPECT_TRUE(mon.clean());
}

#if defined(GTW_CHECK)
// The notification call sites inside the scheduler and pool only exist in
// checked builds; these fixtures prove the wiring end to end.

TEST(EndToEndCheckedTest, CopiedHandleDoubleCancelCaught) {
  des::Scheduler sched;
  Monitor mon(sched);
  attach_scheduler(mon, sched);
  // Keep enough live events around that the first cancel does not trip the
  // tombstone sweep (cancelled > live) — a swept slot would make the second
  // cancel look stale instead of double.
  for (int i = 0; i < 3; ++i)
    sched.schedule_at(des::SimTime::milliseconds(2 + i), [] {});
  des::EventHandle h = sched.schedule_at(des::SimTime::milliseconds(1), [] {});
  des::EventHandle copy = h;
  h.cancel();
  copy.cancel();  // same generation, already tombstoned
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].checker, "des.sched.double-cancel");
  sched.run();
}

TEST(EndToEndCheckedTest, StaleHandleCancelIsNoViolation) {
  des::Scheduler sched;
  Monitor mon(sched);
  SchedulerChecker& checker = attach_scheduler(mon, sched);
  des::EventHandle h = sched.schedule_at(des::SimTime::milliseconds(1), [] {});
  sched.run();  // event fires; the handle is now stale
  h.cancel();
  EXPECT_EQ(checker.stale_cancels(), 1u);
  EXPECT_EQ(mon.finish(), 0u);
}

TEST(EndToEndCheckedTest, SlabPoolDoubleFreeRefusedAndCounted) {
  des::Scheduler sched;
  Monitor mon(sched);
  des::SlabPool<int, 16> pool;
  attach_pool(mon, pool, "des.pool.fixture");
  const auto idx = pool.acquire();
  pool.release(idx);
  pool.release(idx);  // refused: the slot is already free
  EXPECT_EQ(pool.in_use(), 0u);  // the refusal kept the census intact
  EXPECT_GE(mon.finish(), 1u);
  EXPECT_EQ(mon.violations()[0].checker, "des.pool.fixture.double-free");
}

TEST(EndToEndCheckedTest, CleanRunLeavesBreadcrumbsNotViolations) {
  des::Scheduler sched;
  Monitor mon(sched);
  attach_scheduler(mon, sched);
  for (int i = 1; i <= 3; ++i) {
    sched.schedule_at(des::SimTime::milliseconds(i), [] {});
  }
  sched.run();
  EXPECT_EQ(mon.finish(), 0u);
  // The hook recorded per-event breadcrumbs for any future report.
  mon.violation("unit.probe", "inspect history");
  EXPECT_NE(mon.violations()[0].history.back().find("fire seq="),
            std::string::npos);
}

#if defined(NDEBUG)
// schedule_at's own assert is compiled out in release builds — exactly the
// gap the runtime check covers.  (In asserting builds the abort would fire
// first, so this fixture is release-only.)
TEST(EndToEndCheckedTest, ScheduleIntoThePastCaught) {
  des::Scheduler sched;
  Monitor mon(sched);
  attach_scheduler(mon, sched);
  sched.schedule_at(des::SimTime::milliseconds(5), [&sched] {
    sched.schedule_at(des::SimTime::milliseconds(1), [] {});  // in the past
  });
  sched.run();
  ASSERT_GE(mon.total_violations(), 1u);
  EXPECT_EQ(mon.violations()[0].checker, "des.sched.past-schedule");
}
#endif  // NDEBUG
#endif  // GTW_CHECK

}  // namespace
}  // namespace gtw::check
