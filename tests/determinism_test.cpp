// Determinism regression tests.
//
// The repo's reproduction claims rest on the DES being a pure function of
// its inputs and seeds.  These tests pin that down at two levels: the
// scheduler's event-stream hash must be replay-stable (same sim twice in
// one process -> same hash), and perturbing the *insertion order* of
// simulation state that lives in associative containers (host routing
// tables, port bindings) must not move a single event.  The second family
// is the regression guard for the unordered-container hazards gtw-lint
// flags: with std::unordered_map route tables, an innocent iteration added
// later would silently break it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "des/scheduler.hpp"
#include "net/atm.hpp"
#include "net/host.hpp"
#include "net/tcp.hpp"
#include "net/units.hpp"
#include "testbed/testbed.hpp"

namespace gtw {
namespace {

using net::AtmNic;
using net::AtmSwitch;
using net::Host;
using net::HostCosts;
using net::Link;
using net::VcAllocator;
using net::kMtuAtmDefault;

// Two hosts through one ATM switch — the minimal event-producing topology.
struct MiniNet {
  des::Scheduler sched;
  Host a;
  Host b;
  AtmSwitch sw;
  AtmNic nic_a;
  AtmNic nic_b;
  VcAllocator vcs;

  MiniNet()
      : a(sched, "a", 1), b(sched, "b", 2), sw(sched, "sw"),
        nic_a(sched, a, "a.atm",
              Link::Config{units::BitRate::mbps(622.0),
                           des::SimTime::microseconds(250),
                           units::Bytes{16u << 20}, des::SimTime::zero()},
              kMtuAtmDefault),
        nic_b(sched, b, "b.atm",
              Link::Config{units::BitRate::mbps(622.0),
                           des::SimTime::microseconds(250),
                           units::Bytes{16u << 20}, des::SimTime::zero()},
              kMtuAtmDefault) {
    const int pa = sw.add_port(Link::Config{
        units::BitRate::mbps(622.0), des::SimTime::microseconds(250),
        units::Bytes{16u << 20}, des::SimTime::zero()});
    const int pb = sw.add_port(Link::Config{
        units::BitRate::mbps(622.0), des::SimTime::microseconds(250),
        units::Bytes{16u << 20}, des::SimTime::zero()});
    nic_a.uplink().set_sink(sw.ingress(pa));
    nic_b.uplink().set_sink(sw.ingress(pb));
    sw.connect_egress(pa, nic_a.ingress());
    sw.connect_egress(pb, nic_b.ingress());
    vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
  }
};

// Fill both hosts' routing tables with `order`-permuted dummy entries plus
// the two live routes, run a bulk transfer, and report the event-stream
// fingerprint.  Only the insertion order differs between calls.
std::uint64_t run_with_route_order(const std::vector<net::HostId>& order) {
  MiniNet net;
  for (net::HostId dummy : order) {
    net.a.add_route(dummy, &net.nic_a, 2);
    net.b.add_route(dummy, &net.nic_b, 1);
  }
  net.a.add_route(2, &net.nic_a, 2);
  net.b.add_route(1, &net.nic_b, 1);
  const auto res =
      net::run_bulk_transfer(net.sched, net.a, net.b, units::Bytes{512u << 10}, {});
  EXPECT_GT(res.goodput.bps(), 0.0);
  return net.sched.stream_hash();
}

TEST(DeterminismTest, StreamHashIsReplayStableInProcess) {
  const std::uint64_t h1 = run_with_route_order({});
  const std::uint64_t h2 = run_with_route_order({});
  EXPECT_EQ(h1, h2);
}

TEST(DeterminismTest, RouteInsertionOrderDoesNotPerturbEventStream) {
  std::vector<net::HostId> forward, reverse;
  for (net::HostId id = 100; id < 150; ++id) forward.push_back(id);
  reverse.assign(forward.rbegin(), forward.rend());
  // Also an interleaved order, to catch hash-bucket-shaped accidents that a
  // simple reversal might miss.
  std::vector<net::HostId> shuffled;
  for (net::HostId id = 100; id < 150; id += 2) shuffled.push_back(id);
  for (net::HostId id = 101; id < 150; id += 2) shuffled.push_back(id);

  const std::uint64_t h_fwd = run_with_route_order(forward);
  EXPECT_EQ(h_fwd, run_with_route_order(reverse));
  EXPECT_EQ(h_fwd, run_with_route_order(shuffled));
}

TEST(DeterminismTest, BindOrderDoesNotPerturbEventStream) {
  auto run = [](bool flip) {
    MiniNet net;
    net.a.add_route(2, &net.nic_a, 2);
    net.b.add_route(1, &net.nic_b, 1);
    // Extra bound ports (never addressed) in permuted registration order.
    auto noop = [](const net::IpPacket&) {};
    if (flip) {
      for (std::uint16_t p = 9000; p > 8980; --p)
        net.b.bind(net::IpProto::kUdp, p, noop);
    } else {
      for (std::uint16_t p = 8981; p <= 9000; ++p)
        net.b.bind(net::IpProto::kUdp, p, noop);
    }
    const auto res =
        net::run_bulk_transfer(net.sched, net.a, net.b, units::Bytes{256u << 10},
                               {});
    EXPECT_GT(res.goodput.bps(), 0.0);
    return net.sched.stream_hash();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(DeterminismTest, StreamHashIsSensitiveToEventOrder) {
  // Same two timestamps, swapped creation order: the executed (when, seq)
  // pairs differ, so the fingerprint must differ — otherwise the replay
  // gate could not detect a reordering bug.
  des::Scheduler s1;
  s1.schedule_at(des::SimTime::milliseconds(1), [] {});
  s1.schedule_at(des::SimTime::milliseconds(2), [] {});
  s1.run();

  des::Scheduler s2;
  s2.schedule_at(des::SimTime::milliseconds(2), [] {});
  s2.schedule_at(des::SimTime::milliseconds(1), [] {});
  s2.run();

  EXPECT_NE(s1.stream_hash(), s2.stream_hash());
  EXPECT_EQ(s1.events_executed(), s2.events_executed());
}

TEST(DeterminismTest, FullTestbedTransferIsReplayStable) {
  auto run = [] {
    testbed::Testbed tb{testbed::TestbedOptions{}};
    const auto res = net::run_bulk_transfer(tb.scheduler(), tb.gw_o200(),
                                            tb.gw_e5000(), units::Bytes{1u << 20}, {});
    EXPECT_GT(res.goodput.bps(), 0.0);
    return tb.scheduler().stream_hash();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace gtw
