// MUST NOT COMPILE: adding bits to bytes skips the factor of eight.  The
// only bridge is the named Bytes::to_bits().
#include "units/units.hpp"

int main() {
  using namespace gtw;
  auto sum = units::Bits{800} + units::Bytes{100};
  (void)sum;
  return 0;
}
