// Positive control for the negative-compilation harness: every conversion
// the cases forbid, spelled the sanctioned way.  If this target stops
// building, the WILL_FAIL cases are failing for toolchain reasons, not
// because the type system rejected the mixing.
#include "net/units.hpp"
#include "units/units.hpp"

int main() {
  using namespace gtw;

  // Typed amount arithmetic.
  const units::Bytes mss = net::kMtuAtmDefault - units::Bytes{40};
  const units::Bits wire = mss.to_bits();

  // Named rate construction and the two explicit rate bridges.
  const units::BitRate line = units::BitRate::mbps(622.08);
  const units::ByteRate mem = line.to_byte_rate();
  const units::BitRate back = mem.to_bit_rate();

  // Cross-dimension arithmetic through the closed operator set.
  const units::SimTime t = units::transmission_time(mss, line);
  const units::Bits carried = line * t;
  const units::Cells cells = net::aal5_cells(mss);

  const bool ok = wire.count() == mss.count() * 8 &&
                  back.bps() == line.bps() && carried.count() > 0 &&
                  cells.count() > 0 && t > units::SimTime::zero();
  return ok ? 0 : 1;
}
