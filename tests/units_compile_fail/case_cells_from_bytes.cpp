// MUST NOT COMPILE: cell packing is not a cast — 48-byte payloads plus an
// AAL5 trailer make the mapping non-linear.  Use net::aal5_cells(Bytes).
#include "units/units.hpp"

int main() {
  gtw::units::Cells c = gtw::units::Bytes{9180};
  (void)c;
  return 0;
}
