// MUST NOT COMPILE: passing a line rate (bit/s) where a memory-system
// bandwidth (byte/s) is expected — the historical 8x bug.  The bridge is
// the named to_byte_rate().
#include "units/units.hpp"

double charge(gtw::units::ByteRate link_bandwidth) {
  return link_bandwidth.per_sec();
}

int main() {
  const auto line = gtw::units::BitRate::mbps(622.08);
  return charge(line) > 0.0 ? 0 : 1;
}
