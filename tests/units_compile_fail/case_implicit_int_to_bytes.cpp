// MUST NOT COMPILE: Bytes has an explicit constructor; an untyped integer
// at an API boundary is exactly the bug class this layer removes.
#include "units/units.hpp"

gtw::units::Bytes mtu() { return 9180; }

int main() { return static_cast<int>(mtu().count() & 0); }
