// MUST NOT COMPILE: header arithmetic must stay typed — a bare `40` could
// be bits, cells or bytes, so Bytes only adds to Bytes.
#include "units/units.hpp"

int main() {
  using namespace gtw;
  auto mss = units::Bytes{9180} - 40;
  (void)mss;
  return 0;
}
