// MUST NOT COMPILE: Bytes never converts to Bits implicitly; the factor
// of eight must be visible as to_bits() at the conversion site.
#include "units/units.hpp"

int main() {
  gtw::units::Bits on_wire = gtw::units::Bytes{9180};
  (void)on_wire;
  return 0;
}
