// MUST NOT COMPILE: Bytes / BitRate has no meaning without choosing where
// the factor of eight goes.  Serialization time is spelled either
// transmission_time(bytes, rate) or bytes.to_bits() / rate.
#include "units/units.hpp"

int main() {
  using namespace gtw;
  const auto t = units::Bytes{1u << 20} / units::BitRate::mbps(622.08);
  return t > units::SimTime::zero() ? 0 : 1;
}
