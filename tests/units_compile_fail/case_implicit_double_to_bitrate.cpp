// MUST NOT COMPILE: a bare 622.08e6 carries no dimension; rates are
// constructed through the named factories (BitRate::mbps(622.08)).
#include "units/units.hpp"

int main() {
  gtw::units::BitRate line = 622.08e6;
  (void)line;
  return 0;
}
