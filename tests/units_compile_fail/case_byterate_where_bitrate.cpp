// MUST NOT COMPILE: the reverse confusion — a byte/s bandwidth handed to
// an API that speaks bit/s.  Use to_bit_rate() explicitly.
#include "units/units.hpp"

gtw::units::BitRate wire(gtw::units::BitRate r) { return r; }

int main() {
  const auto mem = gtw::units::ByteRate::per_sec(300e6);
  return wire(mem).bps() > 0.0 ? 0 : 1;
}
