// Property tests for the dataflow engine over randomized linear graphs:
//
//  - pipelined (free admission, every stage concurrency 1): the steady-state
//    completion period equals the *maximum* stage time — the bottleneck law
//    the A2 ablation demonstrates on the fMRI pipeline;
//  - sequential (max_in_flight == 1): the period equals the *sum* of the
//    stage times — the paper's 2.7 s request/reply loop;
//  - conservation: with FIFO queues nothing is dropped and every stage sees
//    every item exactly once.
//
// Durations are whole milliseconds so every assertion is exact in integer
// picoseconds, and the PRNG is the simulator's own deterministic xoshiro.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "des/random.hpp"
#include "des/scheduler.hpp"
#include "flow/graph.hpp"
#include "flow/stage.hpp"

namespace gtw {
namespace {

using des::SimTime;

struct RandomPipeline {
  std::vector<SimTime> durations;
  SimTime max_stage;
  SimTime sum_stages;
};

RandomPipeline make_durations(des::Rng& rng, int n_stages) {
  RandomPipeline p;
  p.max_stage = SimTime::zero();
  p.sum_stages = SimTime::zero();
  for (int s = 0; s < n_stages; ++s) {
    const SimTime d =
        SimTime::milliseconds(static_cast<std::int64_t>(rng.uniform_int(900)) + 100);
    p.durations.push_back(d);
    p.max_stage = std::max(p.max_stage, d);
    p.sum_stages = p.sum_stages + d;
  }
  return p;
}

std::vector<SimTime> run_pipeline(const RandomPipeline& p, int items,
                                  flow::GraphConfig cfg) {
  des::Scheduler sched;
  flow::StageGraph g(sched, cfg);
  for (std::size_t s = 0; s < p.durations.size(); ++s) {
    const SimTime d = p.durations[s];
    g.add_stage(flow::compute_stage("s" + std::to_string(s),
                                    [d](const flow::Item&) { return d; }, 1));
  }
  std::vector<SimTime> completions;
  g.on_complete([&](const flow::Item&) { completions.push_back(sched.now()); });
  for (int i = 0; i < items; ++i) g.push(i);
  sched.run();
  EXPECT_EQ(g.metrics().completed, static_cast<std::uint64_t>(items));
  for (int s = 0; s < g.stage_count(); ++s) {
    EXPECT_EQ(g.metrics().stage(s).items_in,
              static_cast<std::uint64_t>(items));
    EXPECT_EQ(g.metrics().stage(s).items_out,
              static_cast<std::uint64_t>(items));
    EXPECT_EQ(g.metrics().stage(s).dropped, 0u);
  }
  return completions;
}

TEST(FlowPropertyTest, PipelinedSustainedPeriodIsMaxStageTime) {
  des::Rng rng(2026);
  for (int trial = 0; trial < 25; ++trial) {
    const int n_stages = 2 + static_cast<int>(rng.uniform_int(4));
    const RandomPipeline p = make_durations(rng, n_stages);
    // Enough items that the bottleneck stage saturates.
    const int items = 4 * n_stages + 4;
    const auto done = run_pipeline(p, items, flow::GraphConfig{});
    ASSERT_EQ(done.size(), static_cast<std::size_t>(items));
    // Steady state: the inter-completion interval is exactly the slowest
    // stage's service time (integer-picosecond equality, no tolerance).
    const SimTime period = done.back() - done[done.size() - 2];
    EXPECT_EQ(period, p.max_stage)
        << "trial " << trial << ": " << n_stages << " stages";
    // And the first item's latency is the sum of all stage times.
    EXPECT_EQ(done.front(), p.sum_stages);
  }
}

TEST(FlowPropertyTest, SequentialPeriodIsSumOfStageTimes) {
  des::Rng rng(4711);
  for (int trial = 0; trial < 25; ++trial) {
    const int n_stages = 2 + static_cast<int>(rng.uniform_int(4));
    const RandomPipeline p = make_durations(rng, n_stages);
    const int items = 6;
    const auto done =
        run_pipeline(p, items, flow::GraphConfig{/*max_in_flight=*/1,
                                                 flow::QueuePolicy::kFifo});
    ASSERT_EQ(done.size(), static_cast<std::size_t>(items));
    for (std::size_t i = 0; i < done.size(); ++i) {
      EXPECT_EQ(done[i], p.sum_stages * static_cast<std::int64_t>(i + 1))
          << "trial " << trial << " item " << i;
    }
  }
}

TEST(FlowPropertyTest, PipelinedNeverSlowerThanSequentialNeverFasterThanBottleneck) {
  des::Rng rng(1337);
  for (int trial = 0; trial < 10; ++trial) {
    const int n_stages = 2 + static_cast<int>(rng.uniform_int(4));
    const RandomPipeline p = make_durations(rng, n_stages);
    const int items = 8;
    const auto pip = run_pipeline(p, items, flow::GraphConfig{});
    const auto seq =
        run_pipeline(p, items, flow::GraphConfig{1, flow::QueuePolicy::kFifo});
    ASSERT_EQ(pip.size(), seq.size());
    for (std::size_t i = 0; i < pip.size(); ++i) {
      EXPECT_LE(pip[i], seq[i]);  // overlap can only help
      // Makespan lower bound: the bottleneck must serve every item.
      EXPECT_GE(pip[i], p.max_stage * static_cast<std::int64_t>(i + 1));
    }
  }
}

TEST(FlowPropertyTest, PeriodicFeedAtBottleneckRateKeepsQueuesBounded) {
  des::Rng rng(9001);
  for (int trial = 0; trial < 10; ++trial) {
    const int n_stages = 2 + static_cast<int>(rng.uniform_int(3));
    const RandomPipeline p = make_durations(rng, n_stages);
    des::Scheduler sched;
    flow::StageGraph g(sched);
    for (std::size_t s = 0; s < p.durations.size(); ++s) {
      const SimTime d = p.durations[s];
      g.add_stage(flow::compute_stage("s" + std::to_string(s),
                                      [d](const flow::Item&) { return d; },
                                      1));
    }
    // Feed exactly at the bottleneck rate: the graph keeps up, so no stage
    // ever holds more than one waiting item.
    flow::PeriodicSource src(g, {p.max_stage, 12, /*immediate_first=*/true});
    src.start();
    sched.run();
    EXPECT_EQ(g.metrics().completed, 12u);
    for (int s = 0; s < g.stage_count(); ++s)
      EXPECT_LE(g.metrics().stage(s).queue_peak, 1u) << "stage " << s;
  }
}

}  // namespace
}  // namespace gtw
