// Fault-injection and recovery tests: net::FaultPlan scripting link flaps,
// BER bursts, host outages and buffer squeezes against the DES clock;
// TCP recovery through an outage; Communicator watchdog/retry semantics;
// and the FIRE pipeline degrading gracefully through a scripted WAN cut.
#include <gtest/gtest.h>

#include <any>
#include <string>
#include <vector>

#include "des/scheduler.hpp"
#include "fire/pipeline.hpp"
#include "meta/communicator.hpp"
#include "meta/metacomputer.hpp"
#include "net/atm.hpp"
#include "net/datagram.hpp"
#include "net/fault.hpp"
#include "net/host.hpp"
#include "net/tcp.hpp"
#include "net/units.hpp"
#include "testbed/testbed.hpp"

namespace gtw::net {
namespace {

using des::SimTime;

SimTime ms(int m) { return SimTime::milliseconds(m); }

// Two hosts connected by one ATM switch (same shape as the TCP tests);
// the switch egress toward b is the natural fault target.
struct FaultFixture {
  des::Scheduler sched;
  Host a;
  Host b;
  AtmSwitch sw;
  AtmNic nic_a;
  AtmNic nic_b;
  VcAllocator vcs;
  int pa = -1, pb = -1;

  FaultFixture()
      : a(sched, "a", 1), b(sched, "b", 2), sw(sched, "sw"),
        nic_a(sched, a, "a.atm",
              Link::Config{units::BitRate::mbps(622.0),
                           SimTime::microseconds(250), units::Bytes{16u << 20},
                           SimTime::zero()},
              kMtuAtmDefault),
        nic_b(sched, b, "b.atm",
              Link::Config{units::BitRate::mbps(622.0),
                           SimTime::microseconds(250), units::Bytes{16u << 20},
                           SimTime::zero()},
              kMtuAtmDefault) {
    const auto cfg =
        Link::Config{units::BitRate::mbps(622.0), SimTime::microseconds(250),
                     units::Bytes{4u << 20}, SimTime::zero()};
    pa = sw.add_port(cfg);
    pb = sw.add_port(cfg);
    nic_a.uplink().set_sink(sw.ingress(pa));
    nic_b.uplink().set_sink(sw.ingress(pb));
    sw.connect_egress(pa, nic_a.ingress());
    sw.connect_egress(pb, nic_b.ingress());
    vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
    a.add_route(2, &nic_a, 2);
    b.add_route(1, &nic_b, 1);
  }

  Link& toward_b() { return sw.egress_link(pb); }
};

TEST(FaultPlanTest, LinkDownRefusesAndFlushesThenRecovers) {
  des::Scheduler sched;
  Link link(sched, "wire",
            {units::BitRate::mbps(155.0), SimTime::microseconds(100),
             units::Bytes{1u << 20}, SimTime::zero()});
  int delivered = 0;
  link.set_sink([&](Frame) { ++delivered; });

  FaultPlan plan(sched);
  plan.link_down(link, ms(10), ms(20));

  auto submit_frame = [&link]() {
    Frame f;
    f.wire_bytes = 9180;
    link.submit(std::move(f));
  };
  // Before, during and after the outage.
  sched.schedule_at(ms(5), submit_frame);
  sched.schedule_at(ms(20), submit_frame);   // refused: link is down
  sched.schedule_at(ms(40), submit_frame);   // after restore
  sched.run();

  EXPECT_TRUE(link.up());
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.outage_drops(), 1u);
  EXPECT_GT(link.outage_dropped_bytes(), 0u);
  EXPECT_EQ(plan.active_faults(), 0);
  EXPECT_EQ(plan.horizon(), ms(30));
}

TEST(FaultPlanTest, LinkFlapTcpRecoversAllBytes) {
  FaultFixture f;
  FaultPlan plan(f.sched);
  // Cut the data path a -> b shortly into a bulk transfer.
  plan.link_down(f.toward_b(), ms(5), ms(100));

  TcpConnection conn(f.a, f.b, 100, 200);
  const std::uint64_t total = 2u << 20;
  bool delivered = false;
  conn.send(0, units::Bytes{total}, {}, [&](const std::any&, SimTime) { delivered = true; });
  f.sched.run();

  EXPECT_TRUE(delivered);
  EXPECT_EQ(conn.bytes_received(1), total);
  EXPECT_EQ(conn.stats(0).bytes_acked, total);
  EXPECT_GE(conn.stats(0).retransmits, 1u);
  EXPECT_GE(conn.stats(0).timeouts, 1u);
  EXPECT_GE(f.toward_b().outage_drops(), 1u);
}

TEST(FaultPlanTest, BerBurstRestoresPriorRate) {
  FaultFixture f;
  f.toward_b().set_bit_error_rate(1e-12);  // clean-ish baseline
  FaultPlan plan(f.sched);
  plan.ber_burst(f.toward_b(), ms(100), ms(400), 1e-5);

  // Datagram CBR stream across the burst; at 1e-5 a 9 KByte frame is lost
  // with probability ~0.5, so corruption is certain over dozens of frames.
  CbrSource src(f.a, 7000, 2, 7001,
                {units::Bytes{9000}, SimTime::milliseconds(5), 120});
  CbrSink sink(f.b, 7001);
  src.start();
  f.sched.run();

  EXPECT_GT(f.toward_b().corrupted_frames(), 0u);
  EXPECT_LT(sink.frames_received(), src.frames_sent());
  // The burst reverted to the rate captured when it began.
  EXPECT_DOUBLE_EQ(f.toward_b().config().bit_error_rate, 1e-12);
}

TEST(FaultPlanTest, BufferSqueezeCausesDropsAndRestoresLimit) {
  FaultFixture f;
  const units::Bytes original = f.toward_b().config().queue_limit;
  FaultPlan plan(f.sched);
  // Squeeze the switch egress buffer below one MTU frame: every arrival
  // during the squeeze overflows (the upstream NIC serializes, so the
  // egress queue never legitimately holds more than the transmitting
  // frame — only a sub-frame limit drops deterministically here).
  plan.buffer_squeeze(f.toward_b(), ms(0), ms(200), units::Bytes{5'000});

  CbrSource src(f.a, 7000, 2, 7001, {units::Bytes{9000}, SimTime::milliseconds(5), 60});
  CbrSink sink(f.b, 7001);
  src.start();
  f.sched.run();

  EXPECT_GT(f.toward_b().drops(), 0u);
  EXPECT_GT(sink.frames_received(), 0u);  // traffic resumes after restore
  EXPECT_LT(sink.frames_received(), src.frames_sent());
  EXPECT_EQ(f.toward_b().config().queue_limit, original);
}

TEST(FaultPlanTest, HostOutageStopsForwardingThenResumes) {
  FaultFixture f;
  FaultPlan plan(f.sched);
  plan.host_outage(f.b, ms(100), ms(200));

  CbrSource src(f.a, 7000, 2, 7001, {units::Bytes{9000}, SimTime::milliseconds(10), 60});
  CbrSink sink(f.b, 7001);
  src.start();
  f.sched.run();

  EXPECT_TRUE(f.b.up());
  EXPECT_GT(f.b.outage_drops(), 0u);
  // ~20 frames fall into the outage window; the rest arrive.
  EXPECT_LT(sink.frames_received(), src.frames_sent());
  EXPECT_GT(sink.frames_received(), 30u);
}

TEST(FaultPlanTest, ObserversSeeBeginAndEndInOrder) {
  FaultFixture f;
  FaultPlan plan(f.sched);

  struct Seen {
    FaultEvent::Kind kind;
    bool active;
    SimTime at;
    int active_count;
  };
  std::vector<Seen> seen;
  plan.add_observer([&](const FaultEvent& ev, bool active) {
    seen.push_back({ev.kind, active, f.sched.now(), plan.active_faults()});
  });

  plan.link_down(f.toward_b(), ms(10), ms(30));
  plan.ber_burst(f.toward_b(), ms(20), ms(40), 1e-6);
  EXPECT_EQ(plan.scheduled(), 2u);
  f.sched.run();

  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].kind, FaultEvent::Kind::kLinkDown);
  EXPECT_TRUE(seen[0].active);
  EXPECT_EQ(seen[0].at, ms(10));
  EXPECT_EQ(seen[0].active_count, 1);
  EXPECT_EQ(seen[1].kind, FaultEvent::Kind::kBerBurst);
  EXPECT_TRUE(seen[1].active);
  EXPECT_EQ(seen[1].active_count, 2);  // overlap
  EXPECT_FALSE(seen[2].active);        // link restored at 40 ms
  EXPECT_EQ(seen[2].at, ms(40));
  EXPECT_FALSE(seen[3].active);        // burst ends at 60 ms
  EXPECT_EQ(seen[3].at, ms(60));
  EXPECT_FALSE(plan.any_active());
  EXPECT_EQ(plan.horizon(), ms(60));
  EXPECT_STREQ(to_string(FaultEvent::Kind::kLinkDown), "link_down");
}

// The same script must replay bit-identically: every counter of two
// independent runs agrees exactly.
TEST(FaultPlanTest, SameScriptReplaysIdentically) {
  struct Outcome {
    std::uint64_t acked, retransmits, timeouts, outage_drops, corrupted;
    bool operator==(const Outcome&) const = default;
  };
  auto run_once = []() {
    FaultFixture f;
    FaultPlan plan(f.sched);
    plan.link_down(f.toward_b(), ms(5), ms(80));
    plan.ber_burst(f.toward_b(), ms(120), ms(60), 1e-6);
    TcpConnection conn(f.a, f.b, 100, 200);
    conn.send(0, units::Bytes{4u << 20}, {}, nullptr);
    f.sched.run();
    return Outcome{conn.stats(0).bytes_acked, conn.stats(0).retransmits,
                   conn.stats(0).timeouts, f.toward_b().outage_drops(),
                   f.toward_b().corrupted_frames()};
  };
  const Outcome first = run_once();
  const Outcome second = run_once();
  EXPECT_EQ(first.acked, 4u << 20);
  EXPECT_TRUE(first == second);
}

}  // namespace
}  // namespace gtw::net

namespace gtw::meta {
namespace {

using des::SimTime;

SimTime ms(int m) { return SimTime::milliseconds(m); }

// Two machines whose front-ends are joined by one ATM switch; the switch
// egress links are the WAN path the FaultPlan cuts.
struct RetryFixture {
  des::Scheduler sched;
  net::Host fe_a{sched, "fe_a", 1};
  net::Host fe_b{sched, "fe_b", 2};
  net::AtmSwitch sw{sched, "sw"};
  net::AtmNic nic_a{sched, fe_a, "a.atm",
                    net::Link::Config{units::BitRate::mbps(622.0),
                                      des::SimTime::microseconds(250),
                                      units::Bytes{16u << 20},
                                      des::SimTime::zero()}};
  net::AtmNic nic_b{sched, fe_b, "b.atm",
                    net::Link::Config{units::BitRate::mbps(622.0),
                                      des::SimTime::microseconds(250),
                                      units::Bytes{16u << 20},
                                      des::SimTime::zero()}};
  net::VcAllocator vcs;
  Metacomputer mc{sched};
  int ma = -1, mb = -1;
  int pa = -1, pb = -1;

  RetryFixture() {
    auto cfg = net::Link::Config{units::BitRate::mbps(622.0),
                                 des::SimTime::microseconds(250),
                                 units::Bytes{16u << 20},
                                 des::SimTime::zero()};
    pa = sw.add_port(cfg);
    pb = sw.add_port(cfg);
    nic_a.uplink().set_sink(sw.ingress(pa));
    nic_b.uplink().set_sink(sw.ingress(pb));
    sw.connect_egress(pa, nic_a.ingress());
    sw.connect_egress(pb, nic_b.ingress());
    vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
    fe_a.add_route(2, &nic_a, 2);
    fe_b.add_route(1, &nic_b, 1);

    MachineSpec a;
    a.name = "T3E";
    a.max_pes = 8;
    a.frontend = &fe_a;
    MachineSpec b;
    b.name = "SP2";
    b.max_pes = 8;
    b.frontend = &fe_b;
    ma = mc.add_machine(a);
    mb = mc.add_machine(b);
    mc.link_machines(ma, mb, net::TcpConfig{}, 7000);
  }

  net::Link& wan_toward_b() { return sw.egress_link(pb); }
};

TEST(CommunicatorRetryTest, RetriesThroughOutageAndSuppressesDuplicate) {
  RetryFixture f;
  net::FaultPlan plan(f.sched);
  // The outage swallows the first attempt; the watchdog fires inside it.
  plan.link_down(f.wan_toward_b(), ms(1), ms(400));

  Communicator comm(f.mc, {{f.ma, 0}, {f.mb, 0}});
  comm.set_retry_policy({ms(150), /*max_retries=*/3, /*backoff=*/2.0});

  int received = 0;
  comm.recv(1, 0, 7, [&](const Message& m) {
    ++received;
    EXPECT_EQ(m.bytes, 100'000u);
  });
  comm.send(0, 1, 7, 100'000);
  f.sched.run();

  EXPECT_EQ(received, 1);
  EXPECT_GE(comm.reliability().wan_retries, 1u);
  // The simulated TCP is reliable, so the delayed original arrives after
  // the link heals and must be recognised as a duplicate.
  EXPECT_GE(comm.reliability().duplicates_suppressed, 1u);
  EXPECT_EQ(comm.reliability().unreachable_reports, 0u);
}

TEST(CommunicatorRetryTest, ReportsUnreachableWhenOutageOutlastsRetries) {
  RetryFixture f;
  net::FaultPlan plan(f.sched);
  // Watchdogs at 50, 150, 350, 750 ms (backoff 2): all inside the outage.
  plan.link_down(f.wan_toward_b(), ms(1), ms(1000));

  Communicator comm(f.mc, {{f.ma, 0}, {f.mb, 0}});
  comm.set_retry_policy({ms(50), /*max_retries=*/2, /*backoff=*/2.0});

  int received = 0;
  comm.recv(1, 0, 7, [&](const Message&) { ++received; });
  int reported_src = -1, reported_dst = -1, reported_attempts = 0;
  comm.on_unreachable([&](int src, int dst, int attempts) {
    reported_src = src;
    reported_dst = dst;
    reported_attempts = attempts;
  });
  comm.send(0, 1, 7, 50'000);
  f.sched.run();

  EXPECT_EQ(comm.reliability().unreachable_reports, 1u);
  EXPECT_EQ(comm.reliability().wan_retries, 2u);
  EXPECT_EQ(reported_src, 0);
  EXPECT_EQ(reported_dst, 1);
  EXPECT_EQ(reported_attempts, 3);  // original + two retries
  // The transport is still reliable underneath, so once the link heals the
  // backlog drains — but the application was already told this message
  // failed, so every late copy is dropped, none delivered.
  EXPECT_EQ(received, 0);
  EXPECT_EQ(comm.reliability().duplicates_suppressed, 0u);
  EXPECT_EQ(comm.reliability().dropped_after_unreachable, 3u);
}

TEST(CommunicatorRetryTest, BackoffClampedByMaxTimeout) {
  RetryFixture f;
  net::FaultPlan plan(f.sched);
  plan.link_down(f.wan_toward_b(), ms(1), ms(2000));

  Communicator comm(f.mc, {{f.ma, 0}, {f.mb, 0}});
  // Aggressive backoff against a tight ceiling: watchdog intervals are
  // 50, then 200->clamped to 100, and 100 thereafter.
  comm.set_retry_policy(
      {ms(50), /*max_retries=*/4, /*backoff=*/4.0, /*max_timeout=*/ms(100)});

  SimTime reported_at = SimTime::zero();
  comm.on_unreachable(
      [&](int, int, int) { reported_at = f.sched.now(); });
  comm.send(0, 1, 7, 50'000);
  f.sched.run();

  EXPECT_EQ(comm.reliability().unreachable_reports, 1u);
  EXPECT_EQ(comm.reliability().wan_retries, 4u);
  // 50 + 100 + 100 + 100 + 100 ms of clamped watchdogs; the unclamped
  // series (50 + 200 + 800 + 3200 + 12800) would report at 17.05 s.
  EXPECT_EQ(reported_at, ms(450));
}

TEST(CommunicatorRetryTest, OnSentImmediateWithoutRetryPolicy) {
  RetryFixture f;
  Communicator comm(f.mc, {{f.ma, 0}, {f.mb, 0}});
  bool sent = false;
  comm.send(0, 1, 3, 10'000, {}, [&] { sent = true; });
  // No watchdog guards this send: the transport owns the bytes as soon as
  // send() returns, so local completion is immediate.
  EXPECT_TRUE(sent);
}

TEST(CommunicatorRetryTest, OnSentDeferredToFirstDeliveryUnderRetry) {
  RetryFixture f;
  net::FaultPlan plan(f.sched);
  plan.link_down(f.wan_toward_b(), ms(1), ms(400));

  Communicator comm(f.mc, {{f.ma, 0}, {f.mb, 0}});
  comm.set_retry_policy({ms(150), /*max_retries=*/3, /*backoff=*/2.0});

  int sent_count = 0;
  SimTime sent_at = SimTime::zero();
  SimTime received_at = SimTime::zero();
  comm.recv(1, 0, 7, [&](const Message&) { received_at = f.sched.now(); });
  comm.send(0, 1, 7, 100'000, {}, [&] {
    ++sent_count;
    sent_at = f.sched.now();
  });
  // The message may be retransmitted, so the buffer is still pinned.
  EXPECT_EQ(sent_count, 0);
  f.sched.run();

  // Fires exactly once, at first successful delivery — a late duplicate
  // after the retry must not re-fire it.
  EXPECT_EQ(sent_count, 1);
  EXPECT_GE(comm.reliability().duplicates_suppressed, 1u);
  EXPECT_EQ(sent_at, received_at);
  EXPECT_GT(sent_at, ms(400));
}

TEST(CommunicatorRetryTest, OnSentNeverFiresForUnreachableMessage) {
  RetryFixture f;
  net::FaultPlan plan(f.sched);
  plan.link_down(f.wan_toward_b(), ms(1), ms(1000));

  Communicator comm(f.mc, {{f.ma, 0}, {f.mb, 0}});
  comm.set_retry_policy({ms(50), /*max_retries=*/2, /*backoff=*/2.0});

  bool sent = false;
  comm.send(0, 1, 7, 50'000, {}, [&] { sent = true; });
  f.sched.run();

  EXPECT_EQ(comm.reliability().unreachable_reports, 1u);
  // The message was reported failed; claiming local completion afterwards
  // would tell the application its data went out when it never will.
  EXPECT_FALSE(sent);
}

TEST(CommunicatorRetryTest, CleanPathNeverRetries) {
  RetryFixture f;
  Communicator comm(f.mc, {{f.ma, 0}, {f.mb, 0}});
  comm.set_retry_policy({ms(2000), 3, 2.0});
  int received = 0;
  comm.recv(1, 0, 3, [&](const Message&) { ++received; });
  comm.send(0, 1, 3, 1u << 20);
  f.sched.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(comm.reliability().wan_retries, 0u);
  EXPECT_EQ(comm.reliability().duplicates_suppressed, 0u);
}

}  // namespace
}  // namespace gtw::meta

namespace gtw::fire {
namespace {

// End-to-end: the fMRI pipeline runs through a scripted WAN outage with a
// FaultPlan observer toggling flow-graph degradation, keeps delivering
// after the line heals, and accounts the recovery in its metrics.
TEST(FireFaultRecoveryTest, PipelineDegradesThroughWanOutageAndRecovers) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  PipelineConfig cfg;
  cfg.n_scans = 10;
  cfg.t3e_pes = 256;
  // Results cross the WAN: compute in Juelich, display at the GMD.
  FmriPipeline pipe(tb.scheduler(),
                    {&tb.scanner_frontend(), &tb.gw_o200(), &tb.onyx2_gmd()},
                    cfg);

  net::FaultPlan plan(tb.scheduler());
  plan.add_observer([&](const net::FaultEvent&, bool) {
    pipe.graph().set_degraded(plan.any_active());
  });
  plan.link_down(tb.wan_link_j_to_g(), des::SimTime::seconds(8),
                 des::SimTime::seconds(6));

  pipe.start();
  tb.scheduler().run();

  const auto& m = pipe.metrics();
  EXPECT_EQ(m.degraded_spans, 1u);
  EXPECT_EQ(m.recoveries, 1u);
  EXPECT_EQ(m.degraded_time, des::SimTime::seconds(6));
  EXPECT_GT(m.last_recovery_time, des::SimTime::zero());
  // The run still finishes: scans completed before and after the outage.
  const PipelineResult res = pipe.result();
  EXPECT_GE(static_cast<int>(res.records.size()), 1);
  EXPECT_EQ(pipe.graph().in_flight(), 0);
  EXPECT_GT(m.completed, 0u);
}

}  // namespace
}  // namespace gtw::fire
