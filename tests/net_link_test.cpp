#include <gtest/gtest.h>

#include <vector>

#include "des/scheduler.hpp"
#include "net/atm.hpp"
#include "net/datagram.hpp"
#include "net/hippi.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "net/units.hpp"

namespace gtw::net {
namespace {

TEST(Aal5Test, CellArithmetic) {
  // 40 bytes + 8 trailer = 48 -> exactly one cell.
  EXPECT_EQ(aal5_cells(40), 1u);
  // 41 bytes + 8 = 49 -> two cells.
  EXPECT_EQ(aal5_cells(41), 2u);
  EXPECT_EQ(aal5_wire_bytes(40), 53u);
  EXPECT_EQ(aal5_wire_bytes(41), 106u);
}

class Aal5Param : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Aal5Param, WireBytesAlwaysCoverPduPlusTrailer) {
  const std::uint32_t pdu = GetParam();
  const std::uint32_t cells = aal5_cells(pdu);
  // Payload capacity of the cells covers PDU + trailer, with < one cell spare.
  EXPECT_GE(cells * kAtmCellPayload, pdu + kAal5TrailerBytes);
  EXPECT_LT(cells * kAtmCellPayload, pdu + kAal5TrailerBytes + kAtmCellPayload);
  EXPECT_EQ(aal5_wire_bytes(pdu), cells * kAtmCellBytes);
}

INSTANTIATE_TEST_SUITE_P(PduSizes, Aal5Param,
                         ::testing::Values(1u, 40u, 48u, 49u, 576u, 1500u,
                                           9180u, 65535u));

TEST(LinkTest, SerializationTiming) {
  des::Scheduler sched;
  Link link(sched, "l",
            {units::BitRate::mbps(100.0), des::SimTime::zero(),
             units::Bytes{1 << 20}, des::SimTime::zero()});
  des::SimTime delivered_at;
  link.set_sink([&](Frame) { delivered_at = sched.now(); });
  Frame f;
  f.wire_bytes = 12500;  // 100000 bits at 100 Mbit/s = 1 ms
  link.submit(f);
  sched.run();
  EXPECT_NEAR(delivered_at.ms(), 1.0, 1e-9);
}

TEST(LinkTest, PropagationAddsDelay) {
  des::Scheduler sched;
  Link link(sched, "l",
            {units::BitRate::mbps(100.0), des::SimTime::milliseconds(5),
             units::Bytes{1 << 20}, des::SimTime::zero()});
  des::SimTime delivered_at;
  link.set_sink([&](Frame) { delivered_at = sched.now(); });
  link.submit(Frame{{}, 12500, 0, kNoHost});
  sched.run();
  EXPECT_NEAR(delivered_at.ms(), 6.0, 1e-9);
}

TEST(LinkTest, FramesSerializeBackToBack) {
  des::Scheduler sched;
  Link link(sched, "l",
            {units::BitRate::mbps(100.0), des::SimTime::zero(),
             units::Bytes{1 << 20}, des::SimTime::zero()});
  std::vector<double> times;
  link.set_sink([&](Frame) { times.push_back(sched.now().ms()); });
  for (int i = 0; i < 3; ++i) link.submit(Frame{{}, 12500, 0, kNoHost});
  sched.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_NEAR(times[0], 1.0, 1e-9);
  EXPECT_NEAR(times[1], 2.0, 1e-9);
  EXPECT_NEAR(times[2], 3.0, 1e-9);
  EXPECT_EQ(link.frames_sent(), 3u);
  EXPECT_EQ(link.bytes_sent(), 37500u);
}

TEST(LinkTest, OverflowDropsWholeFrame) {
  des::Scheduler sched;
  Link link(sched, "l",
            {units::BitRate::mbps(100.0), des::SimTime::zero(),
             units::Bytes{30000}, des::SimTime::zero()});
  int delivered = 0;
  link.set_sink([&](Frame) { ++delivered; });
  EXPECT_TRUE(link.submit(Frame{{}, 12500, 0, kNoHost}));
  EXPECT_TRUE(link.submit(Frame{{}, 12500, 0, kNoHost}));
  EXPECT_FALSE(link.submit(Frame{{}, 12500, 0, kNoHost}));  // 37500 > 30000
  sched.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.drops(), 1u);
}

// Two hosts on one ATM switch exchanging datagrams through a provisioned VC.
struct AtmPair {
  des::Scheduler sched;
  Host a{sched, "a", 1};
  Host b{sched, "b", 2};
  AtmSwitch sw{sched, "sw"};
  AtmNic nic_a{sched, a, "a.atm",
               Link::Config{units::BitRate::mbps(622.0),
                            des::SimTime::microseconds(1),
                            units::Bytes{4u << 20}, des::SimTime::zero()}};
  AtmNic nic_b{sched, b, "b.atm",
               Link::Config{units::BitRate::mbps(622.0),
                            des::SimTime::microseconds(1),
                            units::Bytes{4u << 20}, des::SimTime::zero()}};
  VcAllocator vcs;

  AtmPair() {
    const int pa = sw.add_port(
        Link::Config{units::BitRate::mbps(622.0),
                     des::SimTime::microseconds(1), units::Bytes{4u << 20},
                     des::SimTime::zero()});
    const int pb = sw.add_port(
        Link::Config{units::BitRate::mbps(622.0),
                     des::SimTime::microseconds(1), units::Bytes{4u << 20},
                     des::SimTime::zero()});
    nic_a.uplink().set_sink(sw.ingress(pa));
    nic_b.uplink().set_sink(sw.ingress(pb));
    sw.connect_egress(pa, nic_a.ingress());
    sw.connect_egress(pb, nic_b.ingress());
    vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
    a.add_route(2, &nic_a, 2);
    b.add_route(1, &nic_b, 1);
  }
};

TEST(AtmTest, DatagramTraversesSwitch) {
  AtmPair net;
  int got = 0;
  std::uint32_t got_bytes = 0;
  net.b.bind(IpProto::kUdp, 99, [&](const IpPacket& pkt) {
    ++got;
    got_bytes = pkt.total_bytes;
  });
  IpPacket pkt;
  pkt.dst = 2;
  pkt.proto = IpProto::kUdp;
  pkt.dst_port = 99;
  pkt.total_bytes = 1000;
  net.a.send_datagram(std::move(pkt));
  net.sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(got_bytes, 1000u);
  EXPECT_EQ(net.sw.unroutable_drops(), 0u);
}

TEST(AtmTest, BothDirectionsWork) {
  AtmPair net;
  int got_a = 0, got_b = 0;
  net.a.bind(IpProto::kUdp, 7, [&](const IpPacket&) { ++got_a; });
  net.b.bind(IpProto::kUdp, 7, [&](const IpPacket&) { ++got_b; });
  IpPacket to_b;
  to_b.dst = 2;
  to_b.proto = IpProto::kUdp;
  to_b.dst_port = 7;
  to_b.total_bytes = 500;
  net.a.send_datagram(std::move(to_b));
  IpPacket to_a;
  to_a.dst = 1;
  to_a.proto = IpProto::kUdp;
  to_a.dst_port = 7;
  to_a.total_bytes = 500;
  net.b.send_datagram(std::move(to_a));
  net.sched.run();
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 1);
}

TEST(AtmTest, UnmappedVcCountsDrop) {
  des::Scheduler sched;
  Host a(sched, "a", 1);
  AtmNic nic(sched, a, "a.atm",
             Link::Config{units::BitRate::mbps(622.0), des::SimTime::zero(),
                          units::Bytes{1u << 20}, des::SimTime::zero()});
  IpPacket pkt;
  pkt.total_bytes = 100;
  nic.transmit(std::move(pkt), /*next_hop=*/55);
  EXPECT_EQ(nic.no_vc_drops(), 1u);
}

TEST(IpFragmentationTest, LargeDatagramReassembles) {
  AtmPair net;
  int got = 0;
  std::uint32_t got_bytes = 0;
  net.b.bind(IpProto::kUdp, 99, [&](const IpPacket& pkt) {
    ++got;
    got_bytes = pkt.total_bytes;
  });
  IpPacket pkt;
  pkt.dst = 2;
  pkt.proto = IpProto::kUdp;
  pkt.dst_port = 99;
  pkt.total_bytes = 100'000;  // far above the 9180 MTU
  net.a.send_datagram(std::move(pkt));
  net.sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(got_bytes, 100'000u);
  // More than one fragment was actually sent.
  EXPECT_GT(net.a.packets_sent(), 10u);
}

TEST(HippiTest, StationForwarding) {
  des::Scheduler sched;
  Host a(sched, "cray", 1), b(sched, "sp2", 2);
  HippiSwitch sw(sched, "hippi");
  HippiNic nic_a(sched, a, "a.hippi");
  HippiNic nic_b(sched, b, "b.hippi");
  const int pa = sw.add_port(Link::Config{kHippiRate, des::SimTime::zero(),
                                          units::Bytes{4u << 20},
                                          des::SimTime::zero()});
  const int pb = sw.add_port(Link::Config{kHippiRate, des::SimTime::zero(),
                                          units::Bytes{4u << 20},
                                          des::SimTime::zero()});
  nic_a.uplink().set_sink(sw.ingress(pa));
  nic_b.uplink().set_sink(sw.ingress(pb));
  sw.connect_egress(pa, nic_a.ingress());
  sw.connect_egress(pb, nic_b.ingress());
  sw.add_station(1, pa);
  sw.add_station(2, pb);
  a.add_route(2, &nic_a, 2);
  b.add_route(1, &nic_b, 1);

  int got = 0;
  b.bind(IpProto::kUdp, 4, [&](const IpPacket&) { ++got; });
  IpPacket pkt;
  pkt.dst = 2;
  pkt.proto = IpProto::kUdp;
  pkt.dst_port = 4;
  pkt.total_bytes = 60000;
  a.send_datagram(std::move(pkt));
  sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(sw.unroutable_drops(), 0u);
}

TEST(GatewayTest, ForwardingHostRelaysBetweenNics) {
  // a --hippi--> gw --hippi--> b  (two point-to-point channels through a
  // forwarding host; the ATM leg is covered by the testbed integration test).
  des::Scheduler sched;
  Host a(sched, "a", 1), gw(sched, "gw", 10), b(sched, "b", 2);
  gw.set_forwarding(true);

  HippiNic a_nic(sched, a, "a.hippi");
  HippiNic gw_left(sched, gw, "gw.left");
  HippiNic gw_right(sched, gw, "gw.right");
  HippiNic b_nic(sched, b, "b.hippi");
  a_nic.uplink().set_sink(gw_left.ingress());
  gw_left.uplink().set_sink(a_nic.ingress());
  gw_right.uplink().set_sink(b_nic.ingress());
  b_nic.uplink().set_sink(gw_right.ingress());

  a.add_route(2, &a_nic, 10);
  gw.add_route(2, &gw_right, 2);
  gw.add_route(1, &gw_left, 1);
  b.add_route(1, &b_nic, 10);

  int got = 0;
  b.bind(IpProto::kUdp, 4, [&](const IpPacket&) { ++got; });
  IpPacket pkt;
  pkt.dst = 2;
  pkt.proto = IpProto::kUdp;
  pkt.dst_port = 4;
  pkt.total_bytes = 1000;
  a.send_datagram(std::move(pkt));
  sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(gw.packets_forwarded(), 1u);
}

TEST(CbrTest, SourceSinkRatesMatchWithoutCongestion) {
  AtmPair net;
  CbrSink sink(net.b, 20);
  CbrSource src(net.a, 21, 2, 20,
                CbrSource::Config{units::Bytes{8000}, des::SimTime::milliseconds(1),
                                  100});
  src.start();
  net.sched.run();
  EXPECT_EQ(src.frames_sent(), 100u);
  EXPECT_EQ(sink.frames_received(), 100u);
  EXPECT_EQ(sink.frames_lost(), 0u);
  // 8000 B per ms = 64 Mbit/s offered.
  EXPECT_NEAR(src.offered_rate().bps(), 64e6, 1.0);
}

}  // namespace
}  // namespace gtw::net
