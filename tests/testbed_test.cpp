#include <gtest/gtest.h>

#include "net/tcp.hpp"
#include "net/units.hpp"
#include "testbed/testbed.hpp"

namespace gtw::testbed {
namespace {

TEST(TestbedTest, BuildsAllPaperHosts) {
  Testbed tb(TestbedOptions{});
  for (const char* name :
       {"t3e600", "t3e1200", "t90", "gw_o200", "gw_ultra30",
        "scanner_frontend", "onyx2_juelich", "workbench_juelich", "sp2",
        "gw_e5000", "onyx2_gmd", "e500"}) {
    EXPECT_TRUE(tb.hosts().contains(name)) << name;
  }
  EXPECT_EQ(tb.hosts().size(), 12u);
}

TEST(TestbedTest, WanRatesPerEra) {
  EXPECT_NEAR(Testbed(TestbedOptions{WanEra::kOc48_1998}).wan_rate().bps(),
              2.396e9, 2e7);
  EXPECT_NEAR(Testbed(TestbedOptions{WanEra::kOc12_1997}).wan_rate().bps(),
              5.99e8, 5e6);
  EXPECT_NEAR(Testbed(TestbedOptions{WanEra::kBWin155}).wan_rate().bps(),
              1.4976e8, 2e6);
}

TEST(TestbedTest, AttachmentRatesMatchFigure1) {
  Testbed tb(TestbedOptions{});
  EXPECT_NEAR(tb.attachment_rate("onyx2_gmd").bps(), net::kOc12Line.bps(), 1.0);
  EXPECT_NEAR(tb.attachment_rate("scanner_frontend").bps(), net::kOc3Line.bps(),
              1.0);
  EXPECT_NEAR(tb.attachment_rate("t3e600").bps(), net::kHippiRate.bps(), 1.0);
  EXPECT_THROW(tb.attachment_rate("nonexistent"), std::out_of_range);
}

// Reachability audit: a datagram between every ordered host pair arrives.
TEST(TestbedTest, AllPairsReachable) {
  Testbed tb(TestbedOptions{});
  int expected = 0, received = 0;
  for (const auto& [sname, src] : tb.hosts()) {
    for (const auto& [dname, dst] : tb.hosts()) {
      if (src == dst) continue;
      ++expected;
      dst->bind(net::IpProto::kUdp, 50,
                [&received](const net::IpPacket&) { ++received; });
      net::IpPacket pkt;
      pkt.dst = dst->id();
      pkt.proto = net::IpProto::kUdp;
      pkt.dst_port = 50;
      pkt.total_bytes = 1000;
      src->send_datagram(std::move(pkt));
      tb.scheduler().run();
      dst->unbind(net::IpProto::kUdp, 50);
    }
  }
  EXPECT_EQ(received, expected);
}

TEST(TestbedTest, CrayLocalHippiTcpExceeds430MbitAt64kMtu) {
  // Paper section 2: "transfer rates of more than 430 Mbit/s are achieved
  // within the local Cray complex in Jülich when an MTU of 64 KByte is
  // used".
  Testbed tb(TestbedOptions{});
  net::TcpConfig cfg;
  cfg.mss = net::kMtuHippi - units::Bytes{40};
  cfg.recv_buffer = units::Bytes{2u << 20};
  const auto res = net::run_bulk_transfer(tb.scheduler(), tb.t3e600(),
                                          tb.t3e1200(), units::Bytes{64u << 20}, cfg);
  EXPECT_GT(res.goodput.bps(), 430e6);
  EXPECT_LT(res.goodput.bps(), 800e6);  // HiPPI line rate bound
}

TEST(TestbedTest, T3eToSp2Around260MbitSp2Limited) {
  // Paper: "First measurements show a throughput of more than 260 Mbit/s
  // between the Cray T3E in Jülich and the IBM SP2 ... mainly due to the
  // limitations of the I/O-system of the microchannel-based SP-nodes."
  Testbed tb(TestbedOptions{});
  net::TcpConfig cfg;
  cfg.mss = tb.options().atm_mtu - units::Bytes{40};
  cfg.recv_buffer = units::Bytes{4u << 20};
  const auto res = net::run_bulk_transfer(tb.scheduler(), tb.t3e600(),
                                          tb.sp2(), units::Bytes{64u << 20}, cfg);
  EXPECT_GT(res.goodput.bps(), 230e6);
  EXPECT_LT(res.goodput.bps(), 320e6);
}

TEST(TestbedTest, WanUpgradeRaisesCrossSiteThroughput) {
  // Between two fast workstation-class hosts, OC-12 -> OC-48 lifts the
  // ceiling (the B-WiN 155 is the clear bottleneck).
  auto throughput = [](WanEra era) {
    Testbed tb(TestbedOptions{era});
    net::TcpConfig cfg;
    cfg.mss = tb.options().atm_mtu - units::Bytes{40};
    // 1 MB socket buffers (1999-realistic) also keep slow-start overshoot
    // below the 4 MB switch buffers; larger windows trigger loss bursts
    // that this simplified Reno recovers from only via timeouts.
    cfg.recv_buffer = units::Bytes{1u << 20};
    return net::run_bulk_transfer(tb.scheduler(), tb.onyx2_juelich(),
                                  tb.onyx2_gmd(), units::Bytes{64u << 20}, cfg)
        .goodput.bps();
  };
  const double bwin = throughput(WanEra::kBWin155);
  const double oc12 = throughput(WanEra::kOc12_1997);
  const double oc48 = throughput(WanEra::kOc48_1998);
  EXPECT_LT(bwin, 150e6);
  EXPECT_GT(oc12, 2.5 * bwin);
  // With OC-48 the WAN stops being the bottleneck (622 host NICs remain).
  EXPECT_GE(oc48, oc12 * 0.95);
}

TEST(TestbedTest, GatewayForwardsCountedOnCrossFabricPath) {
  Testbed tb(TestbedOptions{});
  net::IpPacket pkt;
  pkt.dst = tb.sp2().id();
  pkt.proto = net::IpProto::kUdp;
  pkt.dst_port = 5;
  pkt.total_bytes = 2000;
  bool got = false;
  tb.sp2().bind(net::IpProto::kUdp, 5,
                [&](const net::IpPacket&) { got = true; });
  tb.t3e600().send_datagram(std::move(pkt));
  tb.scheduler().run();
  EXPECT_TRUE(got);
  EXPECT_GE(tb.gw_o200().packets_forwarded(), 1u);
  EXPECT_GE(tb.gw_e5000().packets_forwarded(), 1u);
}

TEST(TestbedTest, CrossSiteLatencyIncludesFiberDelay) {
  Testbed tb(TestbedOptions{});
  des::SimTime arrival;
  tb.onyx2_gmd().bind(net::IpProto::kUdp, 9, [&](const net::IpPacket&) {
    arrival = tb.scheduler().now();
  });
  net::IpPacket pkt;
  pkt.dst = tb.onyx2_gmd().id();
  pkt.proto = net::IpProto::kUdp;
  pkt.dst_port = 9;
  pkt.total_bytes = 100;
  tb.onyx2_juelich().send_datagram(std::move(pkt));
  tb.scheduler().run();
  // 100 km of fibre is 500 us one way; everything else adds a bit more.
  EXPECT_GT(arrival.us(), 500.0);
  EXPECT_LT(arrival.us(), 1500.0);
}

}  // namespace
}  // namespace gtw::testbed
