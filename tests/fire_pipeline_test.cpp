#include <gtest/gtest.h>

#include "fire/pipeline.hpp"
#include "scanner/phantom.hpp"
#include "testbed/testbed.hpp"

namespace gtw::fire {
namespace {

FmriPipeline::Hosts pipeline_hosts(testbed::Testbed& tb) {
  return {&tb.scanner_frontend(), &tb.gw_o200(), &tb.onyx2_juelich()};
}

PipelineConfig base_config() {
  PipelineConfig cfg;
  cfg.n_scans = 8;
  cfg.t3e_pes = 256;
  return cfg;
}

TEST(FmriPipelineTest, TotalDelayUnder5SecondsAt256Pes) {
  // Paper section 4: "When 256 PEs are used on the T3E, this leads to a
  // total delay of less than 5 seconds."
  testbed::Testbed tb{testbed::TestbedOptions{}};
  FmriPipeline pipe(tb.scheduler(), pipeline_hosts(tb), base_config());
  pipe.start();
  tb.scheduler().run();
  const PipelineResult res = pipe.result();
  EXPECT_GT(res.mean_total_delay_s, 3.0);
  EXPECT_LT(res.mean_total_delay_s, 5.0);
}

TEST(FmriPipelineTest, DelayBudgetComponentsMatchPaper) {
  // 1.5 s scan->server + ~1.1 s transfers/control + compute + 0.6 s display.
  testbed::Testbed tb{testbed::TestbedOptions{}};
  FmriPipeline pipe(tb.scheduler(), pipeline_hosts(tb), base_config());
  pipe.start();
  tb.scheduler().run();
  const PipelineResult res = pipe.result();
  EXPECT_NEAR(res.mean_transfer_control_s, 1.1, 0.35);
  // Compute at 256 PEs ~ 1.0 s (Table 1 total).
  EXPECT_NEAR(res.mean_compute_s, 1.0, 0.3);
}

TEST(FmriPipelineTest, SequentialThroughputIsSumOfStages) {
  // Paper: "the throughput of the application ... is the sum of the delays
  // in the RT-client and the T3E, which is 2.7 seconds in the above
  // example.  This means that the scanner can safely be operated with a
  // repetition rate of 3 seconds."
  testbed::Testbed tb{testbed::TestbedOptions{}};
  FmriPipeline pipe(tb.scheduler(), pipeline_hosts(tb), base_config());
  pipe.start();
  tb.scheduler().run();
  const PipelineResult res = pipe.result();
  EXPECT_NEAR(res.min_safe_tr_s, 2.7, 0.4);
  // At TR = 3 s the pipeline keeps up: steady-state period == TR.
  EXPECT_NEAR(res.sustained_period_s, 3.0, 0.15);
}

TEST(FmriPipelineTest, PipelinedModeRaisesThroughput) {
  // The extension the paper suggests: overlapping stages makes the period
  // the max stage time, allowing a faster scanner cadence.
  testbed::Testbed tb{testbed::TestbedOptions{}};
  PipelineConfig cfg = base_config();
  cfg.mode = PipelineMode::kPipelined;
  cfg.tr_s = 1.5;  // drive it faster than sequential could handle
  cfg.n_scans = 12;
  FmriPipeline pipe(tb.scheduler(), pipeline_hosts(tb), cfg);
  pipe.start();
  tb.scheduler().run();
  const PipelineResult res = pipe.result();
  EXPECT_LT(res.sustained_period_s, 2.0);

  // Sequential at the same cadence falls behind (period > TR).
  testbed::Testbed tb2{testbed::TestbedOptions{}};
  PipelineConfig seq = cfg;
  seq.mode = PipelineMode::kSequential;
  FmriPipeline pipe2(tb2.scheduler(), pipeline_hosts(tb2), seq);
  pipe2.start();
  tb2.scheduler().run();
  EXPECT_GT(pipe2.result().sustained_period_s, 2.3);
}

TEST(FmriPipelineTest, FewerPesRaiseComputeTime) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  PipelineConfig cfg = base_config();
  FmriPipeline pipe(tb.scheduler(), pipeline_hosts(tb), cfg);
  // Table 1: 128 PEs ~ 1.37 s, 256 PEs ~ 1.01 s.
  EXPECT_GT(pipe.compute_time(128).sec(), pipe.compute_time(256).sec());
  EXPECT_NEAR(pipe.compute_time(256).sec(), 1.01, 0.25);
  EXPECT_NEAR(pipe.compute_time(128).sec(), 1.37, 0.3);
}

TEST(FmriPipelineTest, LocalModeSkipsRvoButFitsWorkstation) {
  // The workstation-only FIRE performs the basic steps (no RVO, no motion
  // correction) within the 2 s acquisition time.
  testbed::Testbed tb{testbed::TestbedOptions{}};
  PipelineConfig cfg = base_config();
  cfg.site = ProcessingSite::kLocalWorkstation;
  cfg.enable_rvo = false;
  cfg.enable_motion = false;
  cfg.enable_filter = true;
  FmriPipeline pipe(tb.scheduler(), pipeline_hosts(tb), cfg);
  EXPECT_LT(pipe.compute_time(1).sec(), 2.0);
}

TEST(FmriPipelineTest, RvoOnWorkstationWouldBeHopeless) {
  // Conversely, the full module set on a single workstation takes minutes —
  // the reason the T3E is in the loop at all.
  testbed::Testbed tb{testbed::TestbedOptions{}};
  PipelineConfig cfg = base_config();
  cfg.site = ProcessingSite::kLocalWorkstation;
  FmriPipeline pipe(tb.scheduler(), pipeline_hosts(tb), cfg);
  EXPECT_GT(pipe.compute_time(1).sec(), 60.0);
}

TEST(FmriPipelineTest, RunsRealNumericsWhenWired) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  scanner::FmriConfig scfg;
  scfg.dims = {16, 16, 4};
  scfg.regions = {{5, 10, 2, 2.0, 0.06}};
  scfg.expected_scans = 8;
  scanner::FmriSeriesGenerator gen(scfg);

  AnalysisConfig acfg;
  acfg.stimulus = scfg.stimulus;
  acfg.hrf = scfg.hrf;
  acfg.tr_s = scfg.tr_s;
  acfg.motion_correction = false;
  AnalysisEngine engine(scfg.dims, acfg);

  PipelineConfig cfg = base_config();
  cfg.n_scans = 8;
  FmriPipeline pipe(tb.scheduler(), pipeline_hosts(tb), cfg,
                    [&gen](int t) { return gen.acquire(t); }, &engine);
  pipe.start();
  tb.scheduler().run();
  EXPECT_EQ(engine.scans(), 8);
  // All scans displayed.
  const auto res = pipe.result();
  EXPECT_GT(res.records.back().displayed.sec(), 0.0);
}

}  // namespace
}  // namespace gtw::fire
