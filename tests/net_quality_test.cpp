// Link-quality features: residual bit errors (the testbed's early
// "stability problems" of section 2) and per-VC CBR traffic shaping.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/video.hpp"
#include "des/scheduler.hpp"
#include "net/atm.hpp"
#include "net/datagram.hpp"
#include "net/tcp.hpp"
#include "net/units.hpp"
#include "testbed/testbed.hpp"

namespace gtw::net {
namespace {

TEST(BitErrorTest, CleanLinkDeliversEverything) {
  des::Scheduler sched;
  Link link(sched, "l",
            {units::BitRate::mbps(100.0), des::SimTime::zero(),
             units::Bytes{8u << 20}, des::SimTime::zero(), 0.0});
  int got = 0;
  link.set_sink([&](Frame) { ++got; });
  for (int i = 0; i < 500; ++i) link.submit(Frame{{}, 1000, 0, kNoHost});
  sched.run();
  EXPECT_EQ(got, 500);
  EXPECT_EQ(link.corrupted_frames(), 0u);
}

class BerParam : public ::testing::TestWithParam<double> {};

TEST_P(BerParam, LossRateTracksFrameErrorProbability) {
  const double ber = GetParam();
  des::Scheduler sched;
  Link link(sched, "l",
            {units::BitRate::gbps(1.0), des::SimTime::zero(),
             units::Bytes{64u << 20}, des::SimTime::zero(), ber});
  int got = 0;
  link.set_sink([&](Frame) { ++got; });
  const int frames = 4000;
  const std::uint32_t bytes = 4000;
  for (int i = 0; i < frames; ++i) link.submit(Frame{{}, bytes, 0, kNoHost});
  sched.run();
  const double p_loss = 1.0 - std::pow(1.0 - ber, bytes * 8.0);
  const double expected = frames * (1.0 - p_loss);
  // Within 5 sigma of the binomial expectation.
  const double sigma = std::sqrt(frames * p_loss * (1.0 - p_loss));
  EXPECT_NEAR(got, expected, 5.0 * sigma + 1.0);
  EXPECT_EQ(link.corrupted_frames() + static_cast<std::uint64_t>(got),
            static_cast<std::uint64_t>(frames));
}

INSTANTIATE_TEST_SUITE_P(Rates, BerParam,
                         ::testing::Values(1e-6, 1e-5, 5e-5));

TEST(BitErrorTest, TcpSurvivesNoisyWanLink) {
  // Even with a frame-corrupting WAN (roughly the testbed's pre-fix state),
  // TCP completes the transfer — just slower.
  des::Scheduler sched;
  Host a(sched, "a", 1), b(sched, "b", 2);
  AtmSwitch sw(sched, "sw");
  Link::Config clean{units::BitRate::mbps(622.0),
                     des::SimTime::microseconds(100), units::Bytes{8u << 20},
                     des::SimTime::zero()};
  Link::Config dirty = clean;
  dirty.bit_error_rate = 2e-8;  // ~1% loss for 64 KB frames
  AtmNic nic_a(sched, a, "a.atm", clean, kMtuAtmFore);
  AtmNic nic_b(sched, b, "b.atm", clean, kMtuAtmFore);
  const int pa = sw.add_port(clean);
  const int pb = sw.add_port(dirty);
  nic_a.uplink().set_sink(sw.ingress(pa));
  nic_b.uplink().set_sink(sw.ingress(pb));
  sw.connect_egress(pa, nic_a.ingress());
  sw.connect_egress(pb, nic_b.ingress());
  VcAllocator vcs;
  vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
  a.add_route(2, &nic_a, 2);
  b.add_route(1, &nic_b, 1);

  TcpConfig cfg;
  cfg.mss = kMtuAtmFore - units::Bytes{40};
  cfg.recv_buffer = units::Bytes{1u << 20};
  const auto res = run_bulk_transfer(sched, a, b, units::Bytes{16u << 20}, cfg);
  EXPECT_GT(res.goodput.bps(), 0.0);
  EXPECT_GT(res.sender_stats.retransmits, 0u);
  EXPECT_EQ(res.sender_stats.bytes_acked, 16u << 20);
}

TEST(ShapingTest, ShapedVcStaysWithinContract) {
  des::Scheduler sched;
  Host a(sched, "a", 1), b(sched, "b", 2);
  AtmSwitch sw(sched, "sw");
  Link::Config link{units::BitRate::mbps(622.0),
                    des::SimTime::microseconds(10), units::Bytes{8u << 20},
                    des::SimTime::zero()};
  AtmNic nic_a(sched, a, "a.atm", link, kMtuAtmDefault);
  AtmNic nic_b(sched, b, "b.atm", link, kMtuAtmDefault);
  const int pa = sw.add_port(link);
  const int pb = sw.add_port(link);
  nic_a.uplink().set_sink(sw.ingress(pa));
  nic_b.uplink().set_sink(sw.ingress(pb));
  sw.connect_egress(pa, nic_a.ingress());
  sw.connect_egress(pb, nic_b.ingress());
  VcAllocator vcs;
  vcs.provision(nic_a, nic_b, {{&sw, pa, pb}});
  a.add_route(2, &nic_a, 2);
  b.add_route(1, &nic_b, 1);
  nic_a.shape_vc(2, units::BitRate::mbps(50.0));

  // Offer a burst far above the shaping rate.
  CbrSink sink(b, 30);
  CbrSource src(a, 31, 2, 30,
                CbrSource::Config{units::Bytes{6000},
                                  des::SimTime::microseconds(100), 400});
  src.start();  // offered ~480 Mbit/s
  sched.run();
  // Everything eventually arrives (shaping delays, does not drop)...
  EXPECT_EQ(sink.frames_received(), 400u);
  // ...but the delivery rate respects the 50 Mbit/s contract: 400 frames x
  // 6 KB at 50 Mbit/s (plus cell tax) needs > 380 ms.
  EXPECT_GT(sched.now().ms(), 380.0);
}

TEST(ShapingTest, UnshapedVcIsUnaffected) {
  testbed::Testbed tb{testbed::TestbedOptions{}};
  // Baseline E3-style check stays fast without shaping.
  net::TcpConfig cfg;
  cfg.mss = tb.options().atm_mtu - units::Bytes{40};
  cfg.recv_buffer = units::Bytes{1u << 20};
  const auto res = run_bulk_transfer(tb.scheduler(), tb.onyx2_juelich(),
                                     tb.onyx2_gmd(), units::Bytes{8u << 20}, cfg);
  EXPECT_GT(res.goodput.bps(), 400e6);
}

TEST(ShapingTest, ShapingProtectsVideoFromCrossTraffic) {
  // Two flows share the Jülich->GMD WAN: a D1 video stream and a greedy
  // TCP bulk transfer.  Without shaping the TCP bursts overflow the WAN
  // queue and kill video frames on the 622 Mbit/s era; with the TCP
  // sender's VC shaped to leave headroom, the video arrives intact.
  auto run_case = [](bool shaped) {
    testbed::Testbed tb{testbed::TestbedOptions{testbed::WanEra::kOc12_1997}};
    // Both flows leave the GMD toward Jülich: they share the GMD switch's
    // WAN egress queue.
    if (shaped) tb.shape_host_vc("e500", "onyx2_juelich", units::BitRate::mbps(250.0));
    apps::D1VideoSession video(tb.onyx2_gmd(), tb.workbench_juelich(),
                               apps::D1VideoConfig{units::BitRate::mbps(270.0), 25.0, 60}, 7700);
    video.start();
    net::TcpConfig cfg;
    cfg.mss = kMtuAtmFore - units::Bytes{40};
    cfg.recv_buffer = units::Bytes{2u << 20};
    net::TcpConnection bulk(tb.e500(), tb.onyx2_juelich(), 7800, 7801, cfg);
    bulk.send(0, units::Bytes{64u << 20});
    tb.scheduler().run();
    return video.report();
  };
  const auto unshaped = run_case(false);
  const auto shaped = run_case(true);
  EXPECT_GT(shaped.frames_received, unshaped.frames_received);
  EXPECT_TRUE(shaped.feasible);
}

}  // namespace
}  // namespace gtw::net
