#include <gtest/gtest.h>

#include <cmath>

#include "apps/moldyn.hpp"
#include "apps/traffic.hpp"
#include "apps/video.hpp"
#include "meta/communicator.hpp"
#include "testbed/extensions.hpp"

namespace gtw {
namespace {

TEST(ExtendedTestbedTest, AddsThreeSites) {
  testbed::ExtendedTestbed tb;
  EXPECT_EQ(tb.hosts().size(), 15u);  // 12 base + DLR + Cologne + Bonn
  EXPECT_TRUE(tb.hosts().contains("dlr_traffic"));
  EXPECT_TRUE(tb.hosts().contains("cologne_viz"));
  EXPECT_TRUE(tb.hosts().contains("bonn_md"));
}

TEST(ExtendedTestbedTest, NewSitesReachEverything) {
  testbed::ExtendedTestbed tb;
  int expected = 0, received = 0;
  for (net::Host* src : {&tb.dlr_traffic(), &tb.cologne_viz(), &tb.bonn_md()}) {
    for (const auto& [name, dst] : tb.hosts()) {
      if (dst == src) continue;
      ++expected;
      dst->bind(net::IpProto::kUdp, 61,
                [&received](const net::IpPacket&) { ++received; });
      net::IpPacket pkt;
      pkt.dst = dst->id();
      pkt.proto = net::IpProto::kUdp;
      pkt.dst_port = 61;
      pkt.total_bytes = 500;
      src->send_datagram(std::move(pkt));
      tb.scheduler().run();
      dst->unbind(net::IpProto::kUdp, 61);
      // And the reverse direction.
      ++expected;
      src->bind(net::IpProto::kUdp, 61,
                [&received](const net::IpPacket&) { ++received; });
      net::IpPacket back;
      back.dst = src->id();
      back.proto = net::IpProto::kUdp;
      back.dst_port = 61;
      back.total_bytes = 500;
      dst->send_datagram(std::move(back));
      tb.scheduler().run();
      src->unbind(net::IpProto::kUdp, 61);
    }
  }
  EXPECT_EQ(received, expected);
}

TEST(ExtendedTestbedTest, SiteToSiteGoesThroughGmd) {
  testbed::ExtendedTestbed tb;
  bool got = false;
  tb.cologne_viz().bind(net::IpProto::kUdp, 62,
                        [&](const net::IpPacket&) { got = true; });
  net::IpPacket pkt;
  pkt.dst = tb.cologne_viz().id();
  pkt.proto = net::IpProto::kUdp;
  pkt.dst_port = 62;
  pkt.total_bytes = 2000;
  tb.dlr_traffic().send_datagram(std::move(pkt));
  tb.scheduler().run();
  EXPECT_TRUE(got);
}

// --- NaSch traffic CA --------------------------------------------------------

TEST(NaschTest, VehicleCountConserved) {
  apps::NaschConfig cfg;
  cfg.cells = 200;
  cfg.density = 0.2;
  apps::NaschRoad road(cfg);
  const int n0 = road.vehicles();
  for (int s = 0; s < 100; ++s) road.step();
  EXPECT_EQ(road.vehicles(), n0);
  // No two vehicles share a cell.
  const auto occ = road.occupancy();
  int occupied = 0;
  for (auto c : occ)
    if (c) ++occupied;
  EXPECT_EQ(occupied, n0);
}

TEST(NaschTest, FreeFlowAtLowDensity) {
  // Almost empty road, no dawdling: everyone reaches v_max.
  apps::NaschConfig cfg;
  cfg.cells = 500;
  cfg.density = 0.02;
  cfg.dawdle_p = 0.0;
  apps::NaschRoad road(cfg);
  for (int s = 0; s < 50; ++s) road.step();
  EXPECT_NEAR(road.mean_speed(), 5.0, 1e-9);
}

TEST(NaschTest, JammedAtHighDensity) {
  apps::NaschConfig cfg;
  cfg.cells = 500;
  cfg.density = 0.6;
  apps::NaschRoad road(cfg);
  for (int s = 0; s < 200; ++s) road.step();
  EXPECT_LT(road.mean_speed(), 1.0);
}

TEST(NaschTest, FundamentalDiagramHasMaximum) {
  // Flow rises with density in free flow, falls in the jammed branch.
  const double f_low = apps::nasch_flow(0.05);
  const double f_mid = apps::nasch_flow(0.12);
  const double f_high = apps::nasch_flow(0.5);
  EXPECT_GT(f_mid, f_low);
  EXPECT_GT(f_mid, f_high);
  EXPECT_GT(f_high, 0.0);
}

TEST(NaschTest, DawdlingReducesFlow) {
  apps::NaschConfig a;
  const double with = apps::nasch_flow(0.12);
  (void)a;
  // Same density, no dawdling: strictly better flow.
  apps::NaschConfig cfg;
  cfg.cells = 1000;
  cfg.density = 0.12;
  cfg.dawdle_p = 0.0;
  apps::NaschRoad road(cfg);
  for (int s = 0; s < 200; ++s) road.step();
  const double before = road.flow() * road.steps();
  for (int s = 0; s < 400; ++s) road.step();
  const double without = (road.flow() * road.steps() - before) / 400;
  EXPECT_GT(without, with);
}

TEST(TrafficVizTest, StreamsFramesAcrossExtendedTestbed) {
  testbed::ExtendedTestbed tb;
  apps::NaschConfig cfg;
  cfg.cells = 2000;
  apps::DistributedTrafficViz run(tb.dlr_traffic(), tb.cologne_viz(), cfg,
                                  /*steps=*/40);
  run.start();
  tb.scheduler().run();
  const auto& res = run.result();
  EXPECT_EQ(res.steps_simulated, 40);
  EXPECT_EQ(res.frames_delivered, 40u);
  EXPECT_EQ(res.frame_bytes, 2000u);
  EXPECT_GT(res.frames_per_s, 5.0);  // 100 ms cadence -> ~10 fps
}

// --- Lennard-Jones multiscale MD ---------------------------------------------

TEST(LjFluidTest, EnergyConservedWithoutThermostat) {
  apps::LjConfig cfg;
  cfg.n_particles = 100;
  cfg.box = 20.0;
  apps::LjFluid fluid(cfg);
  const double e0 = fluid.total_energy();
  for (int s = 0; s < 200; ++s) fluid.step();
  const double e1 = fluid.total_energy();
  EXPECT_LT(std::abs(e1 - e0) / std::max(std::abs(e0), 1.0), 0.05);
}

TEST(LjFluidTest, ThermostatDrivesTemperature) {
  apps::LjConfig cfg;
  cfg.n_particles = 100;
  cfg.box = 20.0;
  cfg.temperature = 1.2;
  apps::LjFluid fluid(cfg);
  for (int i = 0; i < 100; ++i) {
    fluid.step();
    fluid.thermostat(0.4, 0.3);
  }
  EXPECT_NEAR(fluid.temperature(), 0.4, 0.15);
}

TEST(LjFluidTest, DensityProfileSumsToN) {
  apps::LjConfig cfg;
  cfg.n_particles = 144;
  apps::LjFluid fluid(cfg);
  const auto prof = fluid.density_profile(12);
  double total = 0.0;
  const double strip_area = (cfg.box / 12) * cfg.box;
  for (double d : prof) total += d * strip_area;
  EXPECT_NEAR(total, 144.0, 1e-9);
}

TEST(LjFluidTest, PressureSanityNoExplosion) {
  apps::LjConfig cfg;
  cfg.n_particles = 200;
  cfg.box = 25.0;
  apps::LjFluid fluid(cfg);
  for (int s = 0; s < 300; ++s) fluid.step();
  // Velocities stay finite and temperature in a physical band.
  EXPECT_GT(fluid.temperature(), 0.0);
  EXPECT_LT(fluid.temperature(), 10.0);
}

struct BonnFixture {
  testbed::ExtendedTestbed tb;
  meta::Metacomputer mc{tb.scheduler()};
  int m_bonn, m_gmd;

  BonnFixture() {
    meta::MachineSpec bonn;
    bonn.name = "Bonn-cluster";
    bonn.max_pes = 32;
    bonn.frontend = &tb.bonn_md();
    meta::MachineSpec gmd;
    gmd.name = "GMD-E500";
    gmd.max_pes = 8;
    gmd.frontend = &tb.e500();
    m_bonn = mc.add_machine(bonn);
    m_gmd = mc.add_machine(gmd);
    net::TcpConfig cfg;
    cfg.mss = tb.options().atm_mtu - units::Bytes{40};
    mc.link_machines(m_bonn, m_gmd, cfg, 7400);
  }
};

TEST(MultiscaleMdTest, CoupledRunCoolsTowardCoarseTarget) {
  BonnFixture f;
  apps::LjConfig cfg;
  cfg.n_particles = 100;
  cfg.box = 20.0;
  cfg.temperature = 1.0;
  auto comm = std::make_shared<meta::Communicator>(
      f.mc, std::vector<meta::ProcLoc>{{f.m_bonn, 0}, {f.m_gmd, 0}});
  apps::MultiscaleMd run(comm, cfg, /*coupling_steps=*/30,
                         /*md_per_coupling=*/5, /*coarse_target_t=*/0.5);
  run.start();
  f.tb.scheduler().run();
  const auto& res = run.result();
  EXPECT_EQ(res.steps_completed, 30);
  EXPECT_NEAR(res.final_temperature, 0.5, 0.25);
  EXPECT_GT(res.mean_exchange_ms, 0.3);   // really crossed the Bonn link
  EXPECT_LT(res.mean_exchange_ms, 50.0);
}

TEST(TvProductionTest, TwoD1StreamsFitTheDarkFibre) {
  // Section 5's "distributed virtual TV-production" needs multiple studio
  // streams; two D1 feeds (2 x 270 Mbit/s) from Cologne and the DLR into
  // the GMD compositing host share the dark fibre comfortably.
  testbed::ExtendedTestbed tb;
  apps::D1VideoConfig cfg;
  cfg.frames = 100;
  apps::D1VideoSession feed_a(tb.cologne_viz(), tb.e500(), cfg, 7500);
  apps::D1VideoSession feed_b(tb.dlr_traffic(), tb.e500(), cfg, 7600);
  feed_a.start();
  feed_b.start();
  tb.scheduler().run();
  EXPECT_TRUE(feed_a.report().feasible);
  EXPECT_TRUE(feed_b.report().feasible);
}

}  // namespace
}  // namespace gtw
