#include <gtest/gtest.h>

#include <cmath>

#include "des/random.hpp"
#include "linalg/fft.hpp"
#include "fire/correlation.hpp"
#include "fire/reference.hpp"
#include "scanner/kspace.hpp"
#include "scanner/phantom.hpp"

namespace gtw {
namespace {

using linalg::Complex;

TEST(FftTest, RejectsNonPowerOfTwo) {
  std::vector<Complex> v(6);
  EXPECT_THROW(linalg::fft(v, false), std::invalid_argument);
  EXPECT_TRUE(linalg::is_power_of_two(64));
  EXPECT_FALSE(linalg::is_power_of_two(0));
  EXPECT_FALSE(linalg::is_power_of_two(48));
}

class FftRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FftRoundTrip, InverseRecoversSignal) {
  const int n = GetParam();
  des::Rng rng(static_cast<std::uint64_t>(n));
  std::vector<Complex> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = Complex(rng.normal(), rng.normal());
  const std::vector<Complex> orig = v;
  linalg::fft(v, false);
  linalg::fft(v, true);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-9);
    EXPECT_NEAR(v[i].imag(), orig[i].imag(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(2, 8, 64, 256, 1024));

TEST(FftTest, DeltaTransformsToConstant) {
  std::vector<Complex> v(16, Complex(0, 0));
  v[0] = Complex(1, 0);
  linalg::fft(v, false);
  for (const auto& x : v) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, PureToneHasSingleBin) {
  const int n = 64, k = 5;
  std::vector<Complex> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    v[static_cast<std::size_t>(i)] =
        Complex(std::cos(2.0 * M_PI * k * i / n),
                std::sin(2.0 * M_PI * k * i / n));
  linalg::fft(v, false);
  for (int i = 0; i < n; ++i) {
    const double mag = std::abs(v[static_cast<std::size_t>(i)]);
    if (i == k) {
      EXPECT_NEAR(mag, static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9);
    }
  }
}

TEST(FftTest, ParsevalHolds) {
  des::Rng rng(9);
  std::vector<Complex> v(128);
  double time_energy = 0.0;
  for (auto& x : v) {
    x = Complex(rng.normal(), rng.normal());
    time_energy += std::norm(x);
  }
  linalg::fft(v, false);
  double freq_energy = 0.0;
  for (const auto& x : v) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy, time_energy * 128.0, 1e-6 * freq_energy);
}

TEST(Fft2dTest, RoundTrip) {
  des::Rng rng(4);
  const int nx = 16, ny = 8;
  std::vector<Complex> v(static_cast<std::size_t>(nx) * ny);
  for (auto& x : v) x = Complex(rng.normal(), 0.0);
  const auto orig = v;
  linalg::fft2d(v, nx, ny, false);
  linalg::fft2d(v, nx, ny, true);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-9);
}

TEST(KspaceTest, NoiselessAcquisitionIsLossless) {
  const fire::VolumeF head = scanner::make_head_phantom({32, 32, 4});
  des::Rng rng(1);
  const fire::VolumeF recon =
      scanner::acquire_and_reconstruct(head, 0.0, rng);
  for (std::size_t i = 0; i < head.size(); ++i)
    EXPECT_NEAR(recon[i], head[i], 1e-3);
}

TEST(KspaceTest, NoiseLevelMapsToImageDomain) {
  // sigma in k-space (scaled as implemented) should give ~sigma of noise
  // per image voxel after reconstruction.
  const fire::Dims d{32, 32, 2};
  const fire::VolumeF zero(d, 0.0f);
  des::Rng rng(2);
  const double sigma = 5.0;
  const fire::VolumeF recon =
      scanner::acquire_and_reconstruct(zero, sigma, rng);
  // Magnitude of complex Gaussian noise: Rayleigh with mean sigma*sqrt(pi/2).
  double mean = 0.0;
  for (std::size_t i = 0; i < recon.size(); ++i) mean += recon[i];
  mean /= static_cast<double>(recon.size());
  EXPECT_NEAR(mean, sigma * std::sqrt(M_PI / 2.0), sigma * 0.15);
}

TEST(KspaceTest, ActivationSurvivesTheScannerChain) {
  // BOLD-scale signal differences pass through acquisition+reconstruction.
  const fire::Dims d{32, 32, 2};
  fire::VolumeF base = scanner::make_head_phantom(d);
  fire::VolumeF active = base;
  active.at(10, 20, 1) *= 1.05f;  // 5% BOLD change
  des::Rng rng_a(3), rng_b(3);    // same receiver noise
  const fire::VolumeF ra = scanner::acquire_and_reconstruct(base, 1.0, rng_a);
  const fire::VolumeF rb =
      scanner::acquire_and_reconstruct(active, 1.0, rng_b);
  const double diff = rb.at(10, 20, 1) - ra.at(10, 20, 1);
  EXPECT_NEAR(diff, 0.05 * base.at(10, 20, 1), 4.0);
}

TEST(KspaceTest, RawKspaceBytesAreTwiceImageBytes) {
  // The "advanced MR imaging techniques ... an order of magnitude beyond"
  // scenario: raw complex data doubles the 16-bit image volume, and
  // multi-echo acquisition multiplies it further.
  const fire::Dims d{64, 64, 16};
  EXPECT_EQ(scanner::kspace_bytes(d), 2u * 4u * d.voxels());
}

TEST(KspaceTest, NonPowerOfTwoRejected) {
  const fire::VolumeF odd(fire::Dims{48, 48, 2});
  des::Rng rng(1);
  EXPECT_THROW(scanner::acquire_kspace_slice(odd, 0, 0.0, rng),
               std::invalid_argument);
}

TEST(KspaceTest, GeneratorKspaceModeStillShowsActivation) {
  // Full-chain property: BOLD activation survives EPI acquisition through
  // k-space with receiver noise, and the correlation analysis finds it.
  scanner::FmriConfig cfg;
  cfg.dims = {32, 32, 4};
  cfg.regions = {{9, 20, 2, 3.0, 0.06}};
  cfg.noise_sigma = 2.0;
  cfg.expected_scans = 40;
  cfg.kspace_acquisition = true;
  scanner::FmriSeriesGenerator gen(cfg);

  fire::IncrementalCorrelation corr(cfg.dims);
  const auto ref = fire::make_reference(cfg.stimulus, 40, cfg.tr_s, cfg.hrf);
  for (int t = 0; t < 40; ++t)
    corr.add_scan(gen.acquire(t), ref[static_cast<std::size_t>(t)]);

  const fire::VolumeF map = corr.correlation_map();
  const auto mask = gen.activation_mask();
  double active = 0;
  int na = 0;
  for (std::size_t i = 0; i < map.size(); ++i)
    if (mask[i]) {
      active += map[i];
      ++na;
    }
  EXPECT_GT(active / na, 0.3);
}

}  // namespace
}  // namespace gtw
