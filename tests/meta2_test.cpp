// Tests for the MPI-2-flavoured additions: scatter / alltoall / sendrecv,
// and the language-interoperability helpers.
#include <gtest/gtest.h>

#include <memory>

#include "des/scheduler.hpp"
#include "meta/communicator.hpp"
#include "meta/interop.hpp"
#include "meta/metacomputer.hpp"

namespace gtw::meta {
namespace {

// A standalone single-machine metacomputer is enough for collective
// semantics (the WAN staging is covered by meta_test.cpp).
struct LocalComm {
  des::Scheduler sched;
  Metacomputer mc{sched};
  std::shared_ptr<Communicator> comm;

  explicit LocalComm(int ranks) {
    MachineSpec m;
    m.name = "local";
    m.max_pes = 64;
    const int id = mc.add_machine(m);
    std::vector<ProcLoc> locs;
    for (int i = 0; i < ranks; ++i) locs.push_back({id, i});
    comm = std::make_shared<Communicator>(mc, std::move(locs));
  }
};

TEST(ScatterTest, EveryRankGetsItsSlice) {
  LocalComm f(4);
  std::vector<int> got(4, -1);
  for (int r = 0; r < 4; ++r) {
    std::vector<std::any> slices;
    if (r == 1) slices = {std::any{10}, std::any{11}, std::any{12},
                          std::any{13}};
    f.comm->scatter(r, /*root=*/1, 256,
                    [&got, r](const std::any& s) {
                      got[static_cast<std::size_t>(r)] = std::any_cast<int>(s);
                    },
                    std::move(slices));
  }
  f.sched.run();
  EXPECT_EQ(got, (std::vector<int>{10, 11, 12, 13}));
}

TEST(AlltoallTest, TransposesContributionMatrix) {
  LocalComm f(3);
  std::vector<std::vector<int>> got(3);
  for (int r = 0; r < 3; ++r) {
    std::vector<std::any> row;
    for (int c = 0; c < 3; ++c) row.push_back(std::any{r * 10 + c});
    f.comm->alltoall(r, 64, std::move(row),
                     [&got, r](std::vector<std::any> col) {
                       for (auto& v : col)
                         got[static_cast<std::size_t>(r)].push_back(
                             std::any_cast<int>(v));
                     });
  }
  f.sched.run();
  // Rank r receives column r: {0r, 1r, 2r}.
  EXPECT_EQ(got[0], (std::vector<int>{0, 10, 20}));
  EXPECT_EQ(got[1], (std::vector<int>{1, 11, 21}));
  EXPECT_EQ(got[2], (std::vector<int>{2, 12, 22}));
}

TEST(SendrecvTest, ExchangesLikeAHaloSwap) {
  LocalComm f(2);
  int got0 = -1, got1 = -1;
  f.comm->sendrecv(0, /*dst=*/1, /*send_tag=*/1, 100, std::any{111},
                   /*src=*/1, /*recv_tag=*/2,
                   [&](const Message& m) { got0 = std::any_cast<int>(m.data); });
  f.comm->sendrecv(1, /*dst=*/0, /*send_tag=*/2, 100, std::any{222},
                   /*src=*/0, /*recv_tag=*/1,
                   [&](const Message& m) { got1 = std::any_cast<int>(m.data); });
  f.sched.run();
  EXPECT_EQ(got0, 222);
  EXPECT_EQ(got1, 111);
}

TEST(InteropTest, ColumnMajorRoundTrip2D) {
  std::vector<int> src;
  for (int i = 0; i < 12; ++i) src.push_back(i);  // 4x3, x fastest
  const auto cm = to_column_major(src, 4, 3);
  // Element (x=2, y=1): src[1*4+2] = 6 -> cm[2*3+1].
  EXPECT_EQ(cm[2 * 3 + 1], 6);
  EXPECT_EQ(from_column_major(cm, 4, 3), src);
}

TEST(InteropTest, ColumnMajorRoundTrip3D) {
  const int nx = 3, ny = 4, nz = 2;
  std::vector<int> src;
  for (int i = 0; i < nx * ny * nz; ++i) src.push_back(i * 7);
  const auto cm = to_column_major(src, nx, ny, nz);
  EXPECT_EQ(from_column_major(cm, nx, ny, nz), src);
  // Spot check (x=1, y=2, z=1): src index (1*4+2)*3+1 = 19;
  // z-fastest index z + nz*(y + ny*x) = 1 + 2*(2 + 4*1) = 13.
  EXPECT_EQ(cm[13], src[19]);
}

TEST(InteropTest, TypedEnvelopeByteAccounting) {
  TypedEnvelope env;
  env.type = Datatype::kFloat64;
  env.count = 1000;
  EXPECT_EQ(env.bytes(), 8000u);
  env.type = Datatype::kFloat32;
  EXPECT_EQ(env.bytes(), 4000u);
}

TEST(InteropTest, EnvelopeTravelsThroughCommunicator) {
  LocalComm f(2);
  TypedEnvelope env;
  env.type = Datatype::kFloat64;
  env.count = 512;
  env.column_major = true;
  env.data = std::vector<double>(512, 1.5);

  bool checked = false;
  f.comm->recv(1, 0, 9, [&](const Message& m) {
    const auto got = std::any_cast<TypedEnvelope>(m.data);
    EXPECT_EQ(got.type, Datatype::kFloat64);
    EXPECT_EQ(got.count, 512u);
    EXPECT_TRUE(got.column_major);
    EXPECT_EQ(m.bytes, got.bytes());
    checked = true;
  });
  f.comm->send(0, 1, 9, env.bytes(), env);
  f.sched.run();
  EXPECT_TRUE(checked);
}

TEST(VampirHookTest, CommunicatorRecordsSendsAndReceives) {
  LocalComm f(3);
  trace::TraceRecorder rec(3);
  f.comm->attach_trace(&rec);

  f.comm->recv(2, 0, 5, [](const Message&) {});
  f.comm->send(0, 2, 5, 4096);
  f.comm->send(1, 2, 6, 128);  // unexpected: delivered, no recv posted
  f.sched.run();

  trace::TraceStats stats(rec);
  EXPECT_EQ(stats.messages(0, 2), 1u);
  EXPECT_EQ(stats.messages(1, 2), 1u);
  EXPECT_EQ(stats.bytes(0, 2), 4096u);
  EXPECT_EQ(stats.total_messages(), 2u);
  // Both a send and a recv event exist per message.
  int sends = 0, recvs = 0;
  for (const auto& e : rec.events()) {
    if (e.kind == trace::EventKind::kSend) ++sends;
    if (e.kind == trace::EventKind::kRecv) ++recvs;
  }
  EXPECT_EQ(sends, 2);
  EXPECT_EQ(recvs, 2);
  // The recv timestamp is after the send timestamp (transport delay).
  EXPECT_GT(rec.events().back().time_ps, rec.events().front().time_ps);
}

}  // namespace
}  // namespace gtw::meta
