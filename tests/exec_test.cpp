#include <gtest/gtest.h>

#include <map>

#include "exec/decomposition.hpp"
#include "exec/machine.hpp"
#include "fire/workload.hpp"

namespace gtw::exec {
namespace {

TEST(DecompositionTest, SlabsCoverExactly) {
  for (int pes : {1, 2, 3, 5, 16, 20}) {
    const auto slabs = slab_decomposition(16, pes);
    ASSERT_EQ(slabs.size(), static_cast<std::size_t>(pes));
    int covered = 0;
    int prev_end = 0;
    for (const Slab& s : slabs) {
      EXPECT_EQ(s.z_begin, prev_end);
      EXPECT_GE(s.z_end, s.z_begin);
      covered += s.z_end - s.z_begin;
      prev_end = s.z_end;
    }
    EXPECT_EQ(covered, 16);
  }
}

TEST(DecompositionTest, SlabsBalancedWithinOne) {
  const auto slabs = slab_decomposition(16, 5);
  int lo = 1000, hi = 0;
  for (const Slab& s : slabs) {
    lo = std::min(lo, s.z_end - s.z_begin);
    hi = std::max(hi, s.z_end - s.z_begin);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(DecompositionTest, VoxelRangesPartition) {
  const auto ranges = voxel_decomposition(65536, 7);
  std::size_t covered = 0, prev = 0;
  for (const VoxelRange& r : ranges) {
    EXPECT_EQ(r.begin, prev);
    covered += r.end - r.begin;
    prev = r.end;
  }
  EXPECT_EQ(covered, 65536u);
}

TEST(TimeOnTest, SerialWorkDoesNotScale) {
  MachineProfile m = MachineProfile::t3e600();
  WorkEstimate w;
  w.serial_ops = units::Ops{46e6};  // exactly 1 second at the calibrated rate
  const double t1 = time_on(m, w, 1).sec();
  const double t64 = time_on(m, w, 64).sec();
  EXPECT_NEAR(t1, 1.0, 1e-9);
  EXPECT_GE(t64, 1.0);  // plus coordination overhead
}

TEST(TimeOnTest, ParallelWorkScalesLinearly) {
  MachineProfile m = MachineProfile::t3e600();
  m.per_pe_overhead = des::SimTime::zero();
  m.region_overhead = des::SimTime::zero();
  WorkEstimate w;
  w.parallel_ops = units::Ops{46e6 * 64};
  EXPECT_NEAR(time_on(m, w, 1).sec(), 64.0, 1e-6);
  EXPECT_NEAR(time_on(m, w, 64).sec(), 1.0, 1e-6);
}

TEST(TimeOnTest, MaxParallelismCapsSpeedup) {
  MachineProfile m = MachineProfile::t3e600();
  m.per_pe_overhead = des::SimTime::zero();
  m.region_overhead = des::SimTime::zero();
  WorkEstimate w;
  w.parallel_ops = units::Ops{46e6 * 16};
  w.max_parallelism = 16;
  EXPECT_NEAR(time_on(m, w, 16).sec(), 1.0, 1e-6);
  EXPECT_NEAR(time_on(m, w, 256).sec(), 1.0, 1e-6);  // no further gain
}

TEST(TimeOnTest, T3e1200IsAboutTwiceAsFast) {
  WorkEstimate w;
  w.parallel_ops = units::Ops{1e9};
  const double a = time_on(MachineProfile::t3e600(), w, 1).sec();
  const double b = time_on(MachineProfile::t3e1200(), w, 1).sec();
  EXPECT_NEAR(a / b, 2.0, 0.01);
}

// The central calibration check: the FIRE work estimates on the T3E-600
// profile must reproduce Table 1 of the paper.  Columns: filter, motion
// correction, RVO, total (seconds) for a 64x64x16 image.
struct Table1Row {
  int pes;
  double filter, motion, rvo, total;
};
constexpr Table1Row kTable1[] = {
    {1, 0.18, 1.55, 109.27, 111.00}, {2, 0.09, 0.91, 54.65, 55.65},
    {4, 0.05, 0.56, 27.36, 27.97},   {8, 0.03, 0.46, 13.74, 14.23},
    {16, 0.02, 0.35, 6.93, 7.30},    {32, 0.02, 0.33, 3.51, 3.86},
    {64, 0.03, 0.35, 1.85, 2.22},    {128, 0.03, 0.34, 1.00, 1.37},
    {256, 0.04, 0.40, 0.59, 1.01}};

class Table1Param : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Param, FireWorkReproducesPaperTimes) {
  const Table1Row row = GetParam();
  const MachineProfile t3e = MachineProfile::t3e600();
  const fire::FireWork w = fire::make_fire_work(fire::FireWorkParams{});

  const double filter = time_on(t3e, w.filter, row.pes).sec();
  const double motion = time_on(t3e, w.motion, row.pes).sec();
  const double rvo = time_on(t3e, w.rvo, row.pes).sec();
  const double total = filter + motion + rvo;

  // Shape reproduction: within 25% of each paper value or 60 ms absolute
  // (the small filter/motion entries are reported at 10 ms resolution).
  auto close = [](double ours, double paper) {
    return std::abs(ours - paper) < std::max(0.25 * paper, 0.06);
  };
  EXPECT_TRUE(close(filter, row.filter))
      << "filter @" << row.pes << ": " << filter << " vs " << row.filter;
  EXPECT_TRUE(close(motion, row.motion))
      << "motion @" << row.pes << ": " << motion << " vs " << row.motion;
  EXPECT_TRUE(close(rvo, row.rvo))
      << "rvo @" << row.pes << ": " << rvo << " vs " << row.rvo;
  EXPECT_TRUE(close(total, row.total))
      << "total @" << row.pes << ": " << total << " vs " << row.total;
}

INSTANTIATE_TEST_SUITE_P(PaperRows, Table1Param, ::testing::ValuesIn(kTable1));

TEST(Table1ShapeTest, SpeedupCurveMatchesPaperShape) {
  const MachineProfile t3e = MachineProfile::t3e600();
  const fire::FireWork w = fire::make_fire_work(fire::FireWorkParams{});
  auto total = [&](int pes) {
    return time_on(t3e, w.filter, pes).sec() +
           time_on(t3e, w.motion, pes).sec() + time_on(t3e, w.rvo, pes).sec();
  };
  const double t1 = total(1);
  // Near-linear to 8 PEs.
  EXPECT_GT(t1 / total(8), 7.0);
  // Speedup ~81 at 128 in the paper; demand at least 70.
  EXPECT_GT(t1 / total(128), 70.0);
  // Diminishing but still improving at 256 (paper: 110.5).
  EXPECT_GT(t1 / total(256), t1 / total(128));
  EXPECT_LT(t1 / total(256), 160.0);
}

TEST(Table1ShapeTest, RvoDominatesAtLowPeCounts) {
  const MachineProfile t3e = MachineProfile::t3e600();
  const fire::FireWork w = fire::make_fire_work(fire::FireWorkParams{});
  EXPECT_GT(time_on(t3e, w.rvo, 1).sec(),
            50.0 * time_on(t3e, w.motion, 1).sec());
}

TEST(WorkEstimateTest, AccumulationAddsFields) {
  WorkEstimate a, b;
  a.parallel_ops = units::Ops{10};
  a.reductions = 1;
  b.parallel_ops = units::Ops{5};
  b.serial_ops = units::Ops{2};
  b.halo_bytes = units::Bytes{100};
  a += b;
  EXPECT_DOUBLE_EQ(a.parallel_ops.count(), 15.0);
  EXPECT_DOUBLE_EQ(a.serial_ops.count(), 2.0);
  EXPECT_EQ(a.halo_bytes.count(), 100u);
  EXPECT_EQ(a.reductions, 1);
}

}  // namespace
}  // namespace gtw::exec
