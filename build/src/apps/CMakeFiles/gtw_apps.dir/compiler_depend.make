# Empty compiler generated dependencies file for gtw_apps.
# This may be replaced when dependencies are built.
