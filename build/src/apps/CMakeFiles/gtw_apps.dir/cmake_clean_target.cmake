file(REMOVE_RECURSE
  "libgtw_apps.a"
)
