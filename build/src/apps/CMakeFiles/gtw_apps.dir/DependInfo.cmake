
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/climate.cpp" "src/apps/CMakeFiles/gtw_apps.dir/climate.cpp.o" "gcc" "src/apps/CMakeFiles/gtw_apps.dir/climate.cpp.o.d"
  "/root/repo/src/apps/cocolib.cpp" "src/apps/CMakeFiles/gtw_apps.dir/cocolib.cpp.o" "gcc" "src/apps/CMakeFiles/gtw_apps.dir/cocolib.cpp.o.d"
  "/root/repo/src/apps/groundwater.cpp" "src/apps/CMakeFiles/gtw_apps.dir/groundwater.cpp.o" "gcc" "src/apps/CMakeFiles/gtw_apps.dir/groundwater.cpp.o.d"
  "/root/repo/src/apps/meg.cpp" "src/apps/CMakeFiles/gtw_apps.dir/meg.cpp.o" "gcc" "src/apps/CMakeFiles/gtw_apps.dir/meg.cpp.o.d"
  "/root/repo/src/apps/moldyn.cpp" "src/apps/CMakeFiles/gtw_apps.dir/moldyn.cpp.o" "gcc" "src/apps/CMakeFiles/gtw_apps.dir/moldyn.cpp.o.d"
  "/root/repo/src/apps/traffic.cpp" "src/apps/CMakeFiles/gtw_apps.dir/traffic.cpp.o" "gcc" "src/apps/CMakeFiles/gtw_apps.dir/traffic.cpp.o.d"
  "/root/repo/src/apps/video.cpp" "src/apps/CMakeFiles/gtw_apps.dir/video.cpp.o" "gcc" "src/apps/CMakeFiles/gtw_apps.dir/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/gtw_des.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gtw_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gtw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/gtw_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/fire/CMakeFiles/gtw_fire.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gtw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/gtw_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gtw_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
