file(REMOVE_RECURSE
  "CMakeFiles/gtw_apps.dir/climate.cpp.o"
  "CMakeFiles/gtw_apps.dir/climate.cpp.o.d"
  "CMakeFiles/gtw_apps.dir/cocolib.cpp.o"
  "CMakeFiles/gtw_apps.dir/cocolib.cpp.o.d"
  "CMakeFiles/gtw_apps.dir/groundwater.cpp.o"
  "CMakeFiles/gtw_apps.dir/groundwater.cpp.o.d"
  "CMakeFiles/gtw_apps.dir/meg.cpp.o"
  "CMakeFiles/gtw_apps.dir/meg.cpp.o.d"
  "CMakeFiles/gtw_apps.dir/moldyn.cpp.o"
  "CMakeFiles/gtw_apps.dir/moldyn.cpp.o.d"
  "CMakeFiles/gtw_apps.dir/traffic.cpp.o"
  "CMakeFiles/gtw_apps.dir/traffic.cpp.o.d"
  "CMakeFiles/gtw_apps.dir/video.cpp.o"
  "CMakeFiles/gtw_apps.dir/video.cpp.o.d"
  "libgtw_apps.a"
  "libgtw_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtw_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
