file(REMOVE_RECURSE
  "libgtw_testbed.a"
)
