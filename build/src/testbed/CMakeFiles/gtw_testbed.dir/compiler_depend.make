# Empty compiler generated dependencies file for gtw_testbed.
# This may be replaced when dependencies are built.
