file(REMOVE_RECURSE
  "CMakeFiles/gtw_testbed.dir/extensions.cpp.o"
  "CMakeFiles/gtw_testbed.dir/extensions.cpp.o.d"
  "CMakeFiles/gtw_testbed.dir/testbed.cpp.o"
  "CMakeFiles/gtw_testbed.dir/testbed.cpp.o.d"
  "libgtw_testbed.a"
  "libgtw_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtw_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
