file(REMOVE_RECURSE
  "libgtw_net.a"
)
