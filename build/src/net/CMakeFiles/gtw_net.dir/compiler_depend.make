# Empty compiler generated dependencies file for gtw_net.
# This may be replaced when dependencies are built.
