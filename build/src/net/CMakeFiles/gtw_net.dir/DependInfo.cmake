
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/atm.cpp" "src/net/CMakeFiles/gtw_net.dir/atm.cpp.o" "gcc" "src/net/CMakeFiles/gtw_net.dir/atm.cpp.o.d"
  "/root/repo/src/net/cpu.cpp" "src/net/CMakeFiles/gtw_net.dir/cpu.cpp.o" "gcc" "src/net/CMakeFiles/gtw_net.dir/cpu.cpp.o.d"
  "/root/repo/src/net/datagram.cpp" "src/net/CMakeFiles/gtw_net.dir/datagram.cpp.o" "gcc" "src/net/CMakeFiles/gtw_net.dir/datagram.cpp.o.d"
  "/root/repo/src/net/hippi.cpp" "src/net/CMakeFiles/gtw_net.dir/hippi.cpp.o" "gcc" "src/net/CMakeFiles/gtw_net.dir/hippi.cpp.o.d"
  "/root/repo/src/net/host.cpp" "src/net/CMakeFiles/gtw_net.dir/host.cpp.o" "gcc" "src/net/CMakeFiles/gtw_net.dir/host.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/gtw_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/gtw_net.dir/link.cpp.o.d"
  "/root/repo/src/net/probe.cpp" "src/net/CMakeFiles/gtw_net.dir/probe.cpp.o" "gcc" "src/net/CMakeFiles/gtw_net.dir/probe.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/gtw_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/gtw_net.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/gtw_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
