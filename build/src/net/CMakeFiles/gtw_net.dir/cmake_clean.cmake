file(REMOVE_RECURSE
  "CMakeFiles/gtw_net.dir/atm.cpp.o"
  "CMakeFiles/gtw_net.dir/atm.cpp.o.d"
  "CMakeFiles/gtw_net.dir/cpu.cpp.o"
  "CMakeFiles/gtw_net.dir/cpu.cpp.o.d"
  "CMakeFiles/gtw_net.dir/datagram.cpp.o"
  "CMakeFiles/gtw_net.dir/datagram.cpp.o.d"
  "CMakeFiles/gtw_net.dir/hippi.cpp.o"
  "CMakeFiles/gtw_net.dir/hippi.cpp.o.d"
  "CMakeFiles/gtw_net.dir/host.cpp.o"
  "CMakeFiles/gtw_net.dir/host.cpp.o.d"
  "CMakeFiles/gtw_net.dir/link.cpp.o"
  "CMakeFiles/gtw_net.dir/link.cpp.o.d"
  "CMakeFiles/gtw_net.dir/probe.cpp.o"
  "CMakeFiles/gtw_net.dir/probe.cpp.o.d"
  "CMakeFiles/gtw_net.dir/tcp.cpp.o"
  "CMakeFiles/gtw_net.dir/tcp.cpp.o.d"
  "libgtw_net.a"
  "libgtw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
