# Empty dependencies file for gtw_scanner.
# This may be replaced when dependencies are built.
