file(REMOVE_RECURSE
  "CMakeFiles/gtw_scanner.dir/kspace.cpp.o"
  "CMakeFiles/gtw_scanner.dir/kspace.cpp.o.d"
  "CMakeFiles/gtw_scanner.dir/phantom.cpp.o"
  "CMakeFiles/gtw_scanner.dir/phantom.cpp.o.d"
  "libgtw_scanner.a"
  "libgtw_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtw_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
