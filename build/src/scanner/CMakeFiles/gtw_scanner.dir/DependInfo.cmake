
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scanner/kspace.cpp" "src/scanner/CMakeFiles/gtw_scanner.dir/kspace.cpp.o" "gcc" "src/scanner/CMakeFiles/gtw_scanner.dir/kspace.cpp.o.d"
  "/root/repo/src/scanner/phantom.cpp" "src/scanner/CMakeFiles/gtw_scanner.dir/phantom.cpp.o" "gcc" "src/scanner/CMakeFiles/gtw_scanner.dir/phantom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/gtw_des.dir/DependInfo.cmake"
  "/root/repo/build/src/fire/CMakeFiles/gtw_fire.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gtw_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gtw_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/gtw_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gtw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gtw_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
