file(REMOVE_RECURSE
  "libgtw_scanner.a"
)
