# Empty dependencies file for gtw_meta.
# This may be replaced when dependencies are built.
