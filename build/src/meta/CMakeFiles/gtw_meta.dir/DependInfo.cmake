
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meta/coallocation.cpp" "src/meta/CMakeFiles/gtw_meta.dir/coallocation.cpp.o" "gcc" "src/meta/CMakeFiles/gtw_meta.dir/coallocation.cpp.o.d"
  "/root/repo/src/meta/communicator.cpp" "src/meta/CMakeFiles/gtw_meta.dir/communicator.cpp.o" "gcc" "src/meta/CMakeFiles/gtw_meta.dir/communicator.cpp.o.d"
  "/root/repo/src/meta/metacomputer.cpp" "src/meta/CMakeFiles/gtw_meta.dir/metacomputer.cpp.o" "gcc" "src/meta/CMakeFiles/gtw_meta.dir/metacomputer.cpp.o.d"
  "/root/repo/src/meta/ports.cpp" "src/meta/CMakeFiles/gtw_meta.dir/ports.cpp.o" "gcc" "src/meta/CMakeFiles/gtw_meta.dir/ports.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/gtw_des.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gtw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gtw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/gtw_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
