file(REMOVE_RECURSE
  "CMakeFiles/gtw_meta.dir/coallocation.cpp.o"
  "CMakeFiles/gtw_meta.dir/coallocation.cpp.o.d"
  "CMakeFiles/gtw_meta.dir/communicator.cpp.o"
  "CMakeFiles/gtw_meta.dir/communicator.cpp.o.d"
  "CMakeFiles/gtw_meta.dir/metacomputer.cpp.o"
  "CMakeFiles/gtw_meta.dir/metacomputer.cpp.o.d"
  "CMakeFiles/gtw_meta.dir/ports.cpp.o"
  "CMakeFiles/gtw_meta.dir/ports.cpp.o.d"
  "libgtw_meta.a"
  "libgtw_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtw_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
