# Empty compiler generated dependencies file for gtw_meta.
# This may be replaced when dependencies are built.
