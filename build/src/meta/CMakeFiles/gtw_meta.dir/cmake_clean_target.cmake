file(REMOVE_RECURSE
  "libgtw_meta.a"
)
