# Empty dependencies file for gtw_viz.
# This may be replaced when dependencies are built.
