file(REMOVE_RECURSE
  "libgtw_viz.a"
)
