file(REMOVE_RECURSE
  "CMakeFiles/gtw_viz.dir/merge.cpp.o"
  "CMakeFiles/gtw_viz.dir/merge.cpp.o.d"
  "CMakeFiles/gtw_viz.dir/regions.cpp.o"
  "CMakeFiles/gtw_viz.dir/regions.cpp.o.d"
  "CMakeFiles/gtw_viz.dir/workbench.cpp.o"
  "CMakeFiles/gtw_viz.dir/workbench.cpp.o.d"
  "libgtw_viz.a"
  "libgtw_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtw_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
