# Empty dependencies file for gtw_flow.
# This may be replaced when dependencies are built.
