file(REMOVE_RECURSE
  "libgtw_flow.a"
)
