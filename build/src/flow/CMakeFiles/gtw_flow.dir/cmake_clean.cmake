file(REMOVE_RECURSE
  "CMakeFiles/gtw_flow.dir/graph.cpp.o"
  "CMakeFiles/gtw_flow.dir/graph.cpp.o.d"
  "CMakeFiles/gtw_flow.dir/metrics.cpp.o"
  "CMakeFiles/gtw_flow.dir/metrics.cpp.o.d"
  "CMakeFiles/gtw_flow.dir/stage.cpp.o"
  "CMakeFiles/gtw_flow.dir/stage.cpp.o.d"
  "CMakeFiles/gtw_flow.dir/tracing.cpp.o"
  "CMakeFiles/gtw_flow.dir/tracing.cpp.o.d"
  "libgtw_flow.a"
  "libgtw_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtw_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
