
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/graph.cpp" "src/flow/CMakeFiles/gtw_flow.dir/graph.cpp.o" "gcc" "src/flow/CMakeFiles/gtw_flow.dir/graph.cpp.o.d"
  "/root/repo/src/flow/metrics.cpp" "src/flow/CMakeFiles/gtw_flow.dir/metrics.cpp.o" "gcc" "src/flow/CMakeFiles/gtw_flow.dir/metrics.cpp.o.d"
  "/root/repo/src/flow/stage.cpp" "src/flow/CMakeFiles/gtw_flow.dir/stage.cpp.o" "gcc" "src/flow/CMakeFiles/gtw_flow.dir/stage.cpp.o.d"
  "/root/repo/src/flow/tracing.cpp" "src/flow/CMakeFiles/gtw_flow.dir/tracing.cpp.o" "gcc" "src/flow/CMakeFiles/gtw_flow.dir/tracing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/gtw_des.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gtw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gtw_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
