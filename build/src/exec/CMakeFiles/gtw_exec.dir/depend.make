# Empty dependencies file for gtw_exec.
# This may be replaced when dependencies are built.
