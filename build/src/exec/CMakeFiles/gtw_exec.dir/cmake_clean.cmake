file(REMOVE_RECURSE
  "CMakeFiles/gtw_exec.dir/decomposition.cpp.o"
  "CMakeFiles/gtw_exec.dir/decomposition.cpp.o.d"
  "CMakeFiles/gtw_exec.dir/machine.cpp.o"
  "CMakeFiles/gtw_exec.dir/machine.cpp.o.d"
  "libgtw_exec.a"
  "libgtw_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtw_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
