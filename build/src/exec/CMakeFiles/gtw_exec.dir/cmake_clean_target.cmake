file(REMOVE_RECURSE
  "libgtw_exec.a"
)
