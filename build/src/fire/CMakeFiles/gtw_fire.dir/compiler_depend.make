# Empty compiler generated dependencies file for gtw_fire.
# This may be replaced when dependencies are built.
