
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fire/analysis.cpp" "src/fire/CMakeFiles/gtw_fire.dir/analysis.cpp.o" "gcc" "src/fire/CMakeFiles/gtw_fire.dir/analysis.cpp.o.d"
  "/root/repo/src/fire/correlation.cpp" "src/fire/CMakeFiles/gtw_fire.dir/correlation.cpp.o" "gcc" "src/fire/CMakeFiles/gtw_fire.dir/correlation.cpp.o.d"
  "/root/repo/src/fire/detrend.cpp" "src/fire/CMakeFiles/gtw_fire.dir/detrend.cpp.o" "gcc" "src/fire/CMakeFiles/gtw_fire.dir/detrend.cpp.o.d"
  "/root/repo/src/fire/filters.cpp" "src/fire/CMakeFiles/gtw_fire.dir/filters.cpp.o" "gcc" "src/fire/CMakeFiles/gtw_fire.dir/filters.cpp.o.d"
  "/root/repo/src/fire/motion.cpp" "src/fire/CMakeFiles/gtw_fire.dir/motion.cpp.o" "gcc" "src/fire/CMakeFiles/gtw_fire.dir/motion.cpp.o.d"
  "/root/repo/src/fire/pipeline.cpp" "src/fire/CMakeFiles/gtw_fire.dir/pipeline.cpp.o" "gcc" "src/fire/CMakeFiles/gtw_fire.dir/pipeline.cpp.o.d"
  "/root/repo/src/fire/reference.cpp" "src/fire/CMakeFiles/gtw_fire.dir/reference.cpp.o" "gcc" "src/fire/CMakeFiles/gtw_fire.dir/reference.cpp.o.d"
  "/root/repo/src/fire/rigid.cpp" "src/fire/CMakeFiles/gtw_fire.dir/rigid.cpp.o" "gcc" "src/fire/CMakeFiles/gtw_fire.dir/rigid.cpp.o.d"
  "/root/repo/src/fire/rvo.cpp" "src/fire/CMakeFiles/gtw_fire.dir/rvo.cpp.o" "gcc" "src/fire/CMakeFiles/gtw_fire.dir/rvo.cpp.o.d"
  "/root/repo/src/fire/workload.cpp" "src/fire/CMakeFiles/gtw_fire.dir/workload.cpp.o" "gcc" "src/fire/CMakeFiles/gtw_fire.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/gtw_des.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gtw_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gtw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gtw_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/gtw_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gtw_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
