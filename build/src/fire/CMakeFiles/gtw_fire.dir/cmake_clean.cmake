file(REMOVE_RECURSE
  "CMakeFiles/gtw_fire.dir/analysis.cpp.o"
  "CMakeFiles/gtw_fire.dir/analysis.cpp.o.d"
  "CMakeFiles/gtw_fire.dir/correlation.cpp.o"
  "CMakeFiles/gtw_fire.dir/correlation.cpp.o.d"
  "CMakeFiles/gtw_fire.dir/detrend.cpp.o"
  "CMakeFiles/gtw_fire.dir/detrend.cpp.o.d"
  "CMakeFiles/gtw_fire.dir/filters.cpp.o"
  "CMakeFiles/gtw_fire.dir/filters.cpp.o.d"
  "CMakeFiles/gtw_fire.dir/motion.cpp.o"
  "CMakeFiles/gtw_fire.dir/motion.cpp.o.d"
  "CMakeFiles/gtw_fire.dir/pipeline.cpp.o"
  "CMakeFiles/gtw_fire.dir/pipeline.cpp.o.d"
  "CMakeFiles/gtw_fire.dir/reference.cpp.o"
  "CMakeFiles/gtw_fire.dir/reference.cpp.o.d"
  "CMakeFiles/gtw_fire.dir/rigid.cpp.o"
  "CMakeFiles/gtw_fire.dir/rigid.cpp.o.d"
  "CMakeFiles/gtw_fire.dir/rvo.cpp.o"
  "CMakeFiles/gtw_fire.dir/rvo.cpp.o.d"
  "CMakeFiles/gtw_fire.dir/workload.cpp.o"
  "CMakeFiles/gtw_fire.dir/workload.cpp.o.d"
  "libgtw_fire.a"
  "libgtw_fire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtw_fire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
