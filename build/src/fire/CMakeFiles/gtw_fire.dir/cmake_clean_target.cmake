file(REMOVE_RECURSE
  "libgtw_fire.a"
)
