# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("des")
subdirs("linalg")
subdirs("net")
subdirs("trace")
subdirs("flow")
subdirs("meta")
subdirs("exec")
subdirs("fire")
subdirs("scanner")
subdirs("viz")
subdirs("testbed")
subdirs("apps")
