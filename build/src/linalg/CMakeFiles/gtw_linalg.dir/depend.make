# Empty dependencies file for gtw_linalg.
# This may be replaced when dependencies are built.
