file(REMOVE_RECURSE
  "libgtw_linalg.a"
)
