file(REMOVE_RECURSE
  "CMakeFiles/gtw_linalg.dir/cg.cpp.o"
  "CMakeFiles/gtw_linalg.dir/cg.cpp.o.d"
  "CMakeFiles/gtw_linalg.dir/eigen.cpp.o"
  "CMakeFiles/gtw_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/gtw_linalg.dir/fft.cpp.o"
  "CMakeFiles/gtw_linalg.dir/fft.cpp.o.d"
  "CMakeFiles/gtw_linalg.dir/matrix.cpp.o"
  "CMakeFiles/gtw_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/gtw_linalg.dir/solve.cpp.o"
  "CMakeFiles/gtw_linalg.dir/solve.cpp.o.d"
  "libgtw_linalg.a"
  "libgtw_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtw_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
