# Empty dependencies file for gtw_trace.
# This may be replaced when dependencies are built.
