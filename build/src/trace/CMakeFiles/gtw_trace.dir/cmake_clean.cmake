file(REMOVE_RECURSE
  "CMakeFiles/gtw_trace.dir/trace.cpp.o"
  "CMakeFiles/gtw_trace.dir/trace.cpp.o.d"
  "libgtw_trace.a"
  "libgtw_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtw_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
