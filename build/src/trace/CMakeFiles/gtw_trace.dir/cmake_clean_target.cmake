file(REMOVE_RECURSE
  "libgtw_trace.a"
)
