# Empty compiler generated dependencies file for gtw_des.
# This may be replaced when dependencies are built.
