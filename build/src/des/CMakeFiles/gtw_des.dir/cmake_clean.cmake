file(REMOVE_RECURSE
  "CMakeFiles/gtw_des.dir/random.cpp.o"
  "CMakeFiles/gtw_des.dir/random.cpp.o.d"
  "CMakeFiles/gtw_des.dir/scheduler.cpp.o"
  "CMakeFiles/gtw_des.dir/scheduler.cpp.o.d"
  "CMakeFiles/gtw_des.dir/stats.cpp.o"
  "CMakeFiles/gtw_des.dir/stats.cpp.o.d"
  "CMakeFiles/gtw_des.dir/time.cpp.o"
  "CMakeFiles/gtw_des.dir/time.cpp.o.d"
  "libgtw_des.a"
  "libgtw_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtw_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
