file(REMOVE_RECURSE
  "libgtw_des.a"
)
