file(REMOVE_RECURSE
  "CMakeFiles/fmri_realtime.dir/fmri_realtime.cpp.o"
  "CMakeFiles/fmri_realtime.dir/fmri_realtime.cpp.o.d"
  "fmri_realtime"
  "fmri_realtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fmri_realtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
