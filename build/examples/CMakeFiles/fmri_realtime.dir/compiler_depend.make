# Empty compiler generated dependencies file for fmri_realtime.
# This may be replaced when dependencies are built.
