# Empty compiler generated dependencies file for multimedia_video.
# This may be replaced when dependencies are built.
