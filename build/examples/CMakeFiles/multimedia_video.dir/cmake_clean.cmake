file(REMOVE_RECURSE
  "CMakeFiles/multimedia_video.dir/multimedia_video.cpp.o"
  "CMakeFiles/multimedia_video.dir/multimedia_video.cpp.o.d"
  "multimedia_video"
  "multimedia_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimedia_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
