# Empty dependencies file for meg_music.
# This may be replaced when dependencies are built.
