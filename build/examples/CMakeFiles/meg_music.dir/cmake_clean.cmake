file(REMOVE_RECURSE
  "CMakeFiles/meg_music.dir/meg_music.cpp.o"
  "CMakeFiles/meg_music.dir/meg_music.cpp.o.d"
  "meg_music"
  "meg_music.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meg_music.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
