# Empty dependencies file for traffic_visualization.
# This may be replaced when dependencies are built.
