file(REMOVE_RECURSE
  "CMakeFiles/traffic_visualization.dir/traffic_visualization.cpp.o"
  "CMakeFiles/traffic_visualization.dir/traffic_visualization.cpp.o.d"
  "traffic_visualization"
  "traffic_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
