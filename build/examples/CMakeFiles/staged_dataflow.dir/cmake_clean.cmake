file(REMOVE_RECURSE
  "CMakeFiles/staged_dataflow.dir/staged_dataflow.cpp.o"
  "CMakeFiles/staged_dataflow.dir/staged_dataflow.cpp.o.d"
  "staged_dataflow"
  "staged_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staged_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
