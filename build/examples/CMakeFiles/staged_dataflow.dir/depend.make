# Empty dependencies file for staged_dataflow.
# This may be replaced when dependencies are built.
