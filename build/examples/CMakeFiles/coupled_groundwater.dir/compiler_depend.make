# Empty compiler generated dependencies file for coupled_groundwater.
# This may be replaced when dependencies are built.
