file(REMOVE_RECURSE
  "CMakeFiles/coupled_groundwater.dir/coupled_groundwater.cpp.o"
  "CMakeFiles/coupled_groundwater.dir/coupled_groundwater.cpp.o.d"
  "coupled_groundwater"
  "coupled_groundwater.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupled_groundwater.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
