file(REMOVE_RECURSE
  "CMakeFiles/fsi_cocolib.dir/fsi_cocolib.cpp.o"
  "CMakeFiles/fsi_cocolib.dir/fsi_cocolib.cpp.o.d"
  "fsi_cocolib"
  "fsi_cocolib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsi_cocolib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
