# Empty dependencies file for fsi_cocolib.
# This may be replaced when dependencies are built.
