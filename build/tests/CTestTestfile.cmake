# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/des_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/flow_property_test[1]_include.cmake")
include("/root/repo/build/tests/flow_integration_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/net_link_test[1]_include.cmake")
include("/root/repo/build/tests/net_tcp_test[1]_include.cmake")
include("/root/repo/build/tests/meta_test[1]_include.cmake")
include("/root/repo/build/tests/fire_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/scanner_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/viz_trace_test[1]_include.cmake")
include("/root/repo/build/tests/testbed_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/fire_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/meta2_test[1]_include.cmake")
include("/root/repo/build/tests/net_quality_test[1]_include.cmake")
include("/root/repo/build/tests/fire_property_test[1]_include.cmake")
include("/root/repo/build/tests/net_property_test[1]_include.cmake")
include("/root/repo/build/tests/viz_regions_test[1]_include.cmake")
include("/root/repo/build/tests/coallocation_test[1]_include.cmake")
include("/root/repo/build/tests/probe_regrid_test[1]_include.cmake")
include("/root/repo/build/tests/cocolib_test[1]_include.cmake")
include("/root/repo/build/tests/fft_kspace_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
