file(REMOVE_RECURSE
  "CMakeFiles/probe_regrid_test.dir/probe_regrid_test.cpp.o"
  "CMakeFiles/probe_regrid_test.dir/probe_regrid_test.cpp.o.d"
  "probe_regrid_test"
  "probe_regrid_test.pdb"
  "probe_regrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_regrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
