# Empty dependencies file for probe_regrid_test.
# This may be replaced when dependencies are built.
