# Empty dependencies file for fire_kernels_test.
# This may be replaced when dependencies are built.
