file(REMOVE_RECURSE
  "CMakeFiles/fire_kernels_test.dir/fire_kernels_test.cpp.o"
  "CMakeFiles/fire_kernels_test.dir/fire_kernels_test.cpp.o.d"
  "fire_kernels_test"
  "fire_kernels_test.pdb"
  "fire_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fire_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
