# Empty dependencies file for flow_integration_test.
# This may be replaced when dependencies are built.
