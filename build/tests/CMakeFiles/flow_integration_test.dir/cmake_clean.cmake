file(REMOVE_RECURSE
  "CMakeFiles/flow_integration_test.dir/flow_integration_test.cpp.o"
  "CMakeFiles/flow_integration_test.dir/flow_integration_test.cpp.o.d"
  "flow_integration_test"
  "flow_integration_test.pdb"
  "flow_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
