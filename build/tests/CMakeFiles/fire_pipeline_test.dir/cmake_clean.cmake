file(REMOVE_RECURSE
  "CMakeFiles/fire_pipeline_test.dir/fire_pipeline_test.cpp.o"
  "CMakeFiles/fire_pipeline_test.dir/fire_pipeline_test.cpp.o.d"
  "fire_pipeline_test"
  "fire_pipeline_test.pdb"
  "fire_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fire_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
