# Empty compiler generated dependencies file for fire_pipeline_test.
# This may be replaced when dependencies are built.
