file(REMOVE_RECURSE
  "CMakeFiles/flow_property_test.dir/flow_property_test.cpp.o"
  "CMakeFiles/flow_property_test.dir/flow_property_test.cpp.o.d"
  "flow_property_test"
  "flow_property_test.pdb"
  "flow_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
