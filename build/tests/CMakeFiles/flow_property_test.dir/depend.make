# Empty dependencies file for flow_property_test.
# This may be replaced when dependencies are built.
