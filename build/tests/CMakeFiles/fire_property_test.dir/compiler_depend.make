# Empty compiler generated dependencies file for fire_property_test.
# This may be replaced when dependencies are built.
