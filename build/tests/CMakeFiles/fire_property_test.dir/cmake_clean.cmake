file(REMOVE_RECURSE
  "CMakeFiles/fire_property_test.dir/fire_property_test.cpp.o"
  "CMakeFiles/fire_property_test.dir/fire_property_test.cpp.o.d"
  "fire_property_test"
  "fire_property_test.pdb"
  "fire_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fire_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
