file(REMOVE_RECURSE
  "CMakeFiles/viz_regions_test.dir/viz_regions_test.cpp.o"
  "CMakeFiles/viz_regions_test.dir/viz_regions_test.cpp.o.d"
  "viz_regions_test"
  "viz_regions_test.pdb"
  "viz_regions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viz_regions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
