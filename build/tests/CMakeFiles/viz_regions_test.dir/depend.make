# Empty dependencies file for viz_regions_test.
# This may be replaced when dependencies are built.
