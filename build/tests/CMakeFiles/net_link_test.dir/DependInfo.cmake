
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_link_test.cpp" "tests/CMakeFiles/net_link_test.dir/net_link_test.cpp.o" "gcc" "tests/CMakeFiles/net_link_test.dir/net_link_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scanner/CMakeFiles/gtw_scanner.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/gtw_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/gtw_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/gtw_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/gtw_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/fire/CMakeFiles/gtw_fire.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gtw_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/gtw_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gtw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gtw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/gtw_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/gtw_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
