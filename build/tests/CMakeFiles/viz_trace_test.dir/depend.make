# Empty dependencies file for viz_trace_test.
# This may be replaced when dependencies are built.
