file(REMOVE_RECURSE
  "CMakeFiles/viz_trace_test.dir/viz_trace_test.cpp.o"
  "CMakeFiles/viz_trace_test.dir/viz_trace_test.cpp.o.d"
  "viz_trace_test"
  "viz_trace_test.pdb"
  "viz_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viz_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
