file(REMOVE_RECURSE
  "CMakeFiles/cocolib_test.dir/cocolib_test.cpp.o"
  "CMakeFiles/cocolib_test.dir/cocolib_test.cpp.o.d"
  "cocolib_test"
  "cocolib_test.pdb"
  "cocolib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cocolib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
