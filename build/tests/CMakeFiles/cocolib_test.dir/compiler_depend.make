# Empty compiler generated dependencies file for cocolib_test.
# This may be replaced when dependencies are built.
