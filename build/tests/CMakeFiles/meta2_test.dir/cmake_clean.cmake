file(REMOVE_RECURSE
  "CMakeFiles/meta2_test.dir/meta2_test.cpp.o"
  "CMakeFiles/meta2_test.dir/meta2_test.cpp.o.d"
  "meta2_test"
  "meta2_test.pdb"
  "meta2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
