# Empty compiler generated dependencies file for meta2_test.
# This may be replaced when dependencies are built.
