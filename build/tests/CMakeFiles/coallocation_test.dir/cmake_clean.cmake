file(REMOVE_RECURSE
  "CMakeFiles/coallocation_test.dir/coallocation_test.cpp.o"
  "CMakeFiles/coallocation_test.dir/coallocation_test.cpp.o.d"
  "coallocation_test"
  "coallocation_test.pdb"
  "coallocation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coallocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
