# Empty dependencies file for coallocation_test.
# This may be replaced when dependencies are built.
