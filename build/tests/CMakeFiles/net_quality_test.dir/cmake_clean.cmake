file(REMOVE_RECURSE
  "CMakeFiles/net_quality_test.dir/net_quality_test.cpp.o"
  "CMakeFiles/net_quality_test.dir/net_quality_test.cpp.o.d"
  "net_quality_test"
  "net_quality_test.pdb"
  "net_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
