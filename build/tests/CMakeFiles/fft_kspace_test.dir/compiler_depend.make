# Empty compiler generated dependencies file for fft_kspace_test.
# This may be replaced when dependencies are built.
