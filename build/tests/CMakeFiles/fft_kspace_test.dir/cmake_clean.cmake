file(REMOVE_RECURSE
  "CMakeFiles/fft_kspace_test.dir/fft_kspace_test.cpp.o"
  "CMakeFiles/fft_kspace_test.dir/fft_kspace_test.cpp.o.d"
  "fft_kspace_test"
  "fft_kspace_test.pdb"
  "fft_kspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_kspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
