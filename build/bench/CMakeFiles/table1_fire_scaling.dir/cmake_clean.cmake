file(REMOVE_RECURSE
  "CMakeFiles/table1_fire_scaling.dir/table1_fire_scaling.cpp.o"
  "CMakeFiles/table1_fire_scaling.dir/table1_fire_scaling.cpp.o.d"
  "table1_fire_scaling"
  "table1_fire_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fire_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
