# Empty dependencies file for table1_fire_scaling.
# This may be replaced when dependencies are built.
