file(REMOVE_RECURSE
  "CMakeFiles/a1_rvo_ablation.dir/a1_rvo_ablation.cpp.o"
  "CMakeFiles/a1_rvo_ablation.dir/a1_rvo_ablation.cpp.o.d"
  "a1_rvo_ablation"
  "a1_rvo_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a1_rvo_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
