# Empty dependencies file for a1_rvo_ablation.
# This may be replaced when dependencies are built.
