# Empty compiler generated dependencies file for a3_mtu_window.
# This may be replaced when dependencies are built.
