file(REMOVE_RECURSE
  "CMakeFiles/a3_mtu_window.dir/a3_mtu_window.cpp.o"
  "CMakeFiles/a3_mtu_window.dir/a3_mtu_window.cpp.o.d"
  "a3_mtu_window"
  "a3_mtu_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3_mtu_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
