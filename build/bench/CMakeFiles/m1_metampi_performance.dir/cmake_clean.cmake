file(REMOVE_RECURSE
  "CMakeFiles/m1_metampi_performance.dir/m1_metampi_performance.cpp.o"
  "CMakeFiles/m1_metampi_performance.dir/m1_metampi_performance.cpp.o.d"
  "m1_metampi_performance"
  "m1_metampi_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m1_metampi_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
