# Empty dependencies file for m1_metampi_performance.
# This may be replaced when dependencies are built.
