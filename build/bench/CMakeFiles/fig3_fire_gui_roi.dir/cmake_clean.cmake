file(REMOVE_RECURSE
  "CMakeFiles/fig3_fire_gui_roi.dir/fig3_fire_gui_roi.cpp.o"
  "CMakeFiles/fig3_fire_gui_roi.dir/fig3_fire_gui_roi.cpp.o.d"
  "fig3_fire_gui_roi"
  "fig3_fire_gui_roi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fire_gui_roi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
