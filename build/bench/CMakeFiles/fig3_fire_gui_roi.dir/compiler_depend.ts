# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig3_fire_gui_roi.
