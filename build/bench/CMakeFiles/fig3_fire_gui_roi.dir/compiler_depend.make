# Empty compiler generated dependencies file for fig3_fire_gui_roi.
# This may be replaced when dependencies are built.
