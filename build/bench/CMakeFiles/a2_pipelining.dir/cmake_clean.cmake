file(REMOVE_RECURSE
  "CMakeFiles/a2_pipelining.dir/a2_pipelining.cpp.o"
  "CMakeFiles/a2_pipelining.dir/a2_pipelining.cpp.o.d"
  "a2_pipelining"
  "a2_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a2_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
