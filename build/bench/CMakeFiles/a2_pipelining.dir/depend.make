# Empty dependencies file for a2_pipelining.
# This may be replaced when dependencies are built.
