file(REMOVE_RECURSE
  "CMakeFiles/e1_throughput.dir/e1_throughput.cpp.o"
  "CMakeFiles/e1_throughput.dir/e1_throughput.cpp.o.d"
  "e1_throughput"
  "e1_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
