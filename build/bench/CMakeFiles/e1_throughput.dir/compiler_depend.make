# Empty compiler generated dependencies file for e1_throughput.
# This may be replaced when dependencies are built.
