# Empty compiler generated dependencies file for e3_workbench_fps.
# This may be replaced when dependencies are built.
