file(REMOVE_RECURSE
  "CMakeFiles/e3_workbench_fps.dir/e3_workbench_fps.cpp.o"
  "CMakeFiles/e3_workbench_fps.dir/e3_workbench_fps.cpp.o.d"
  "e3_workbench_fps"
  "e3_workbench_fps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_workbench_fps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
