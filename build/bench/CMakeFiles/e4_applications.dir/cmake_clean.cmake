file(REMOVE_RECURSE
  "CMakeFiles/e4_applications.dir/e4_applications.cpp.o"
  "CMakeFiles/e4_applications.dir/e4_applications.cpp.o.d"
  "e4_applications"
  "e4_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
