# Empty dependencies file for e4_applications.
# This may be replaced when dependencies are built.
