# Empty compiler generated dependencies file for e2_delay_budget.
# This may be replaced when dependencies are built.
