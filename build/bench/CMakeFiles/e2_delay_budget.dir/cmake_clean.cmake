file(REMOVE_RECURSE
  "CMakeFiles/e2_delay_budget.dir/e2_delay_budget.cpp.o"
  "CMakeFiles/e2_delay_budget.dir/e2_delay_budget.cpp.o.d"
  "e2_delay_budget"
  "e2_delay_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_delay_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
