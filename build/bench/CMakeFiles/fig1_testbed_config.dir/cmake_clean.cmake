file(REMOVE_RECURSE
  "CMakeFiles/fig1_testbed_config.dir/fig1_testbed_config.cpp.o"
  "CMakeFiles/fig1_testbed_config.dir/fig1_testbed_config.cpp.o.d"
  "fig1_testbed_config"
  "fig1_testbed_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_testbed_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
