# Empty compiler generated dependencies file for fig1_testbed_config.
# This may be replaced when dependencies are built.
