file(REMOVE_RECURSE
  "CMakeFiles/e5_extensions.dir/e5_extensions.cpp.o"
  "CMakeFiles/e5_extensions.dir/e5_extensions.cpp.o.d"
  "e5_extensions"
  "e5_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
