# Empty compiler generated dependencies file for e5_extensions.
# This may be replaced when dependencies are built.
