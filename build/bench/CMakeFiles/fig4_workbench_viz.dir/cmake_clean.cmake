file(REMOVE_RECURSE
  "CMakeFiles/fig4_workbench_viz.dir/fig4_workbench_viz.cpp.o"
  "CMakeFiles/fig4_workbench_viz.dir/fig4_workbench_viz.cpp.o.d"
  "fig4_workbench_viz"
  "fig4_workbench_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_workbench_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
