# Empty compiler generated dependencies file for fig4_workbench_viz.
# This may be replaced when dependencies are built.
