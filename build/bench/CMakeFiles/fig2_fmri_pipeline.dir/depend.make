# Empty dependencies file for fig2_fmri_pipeline.
# This may be replaced when dependencies are built.
