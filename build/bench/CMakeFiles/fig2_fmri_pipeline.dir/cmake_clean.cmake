file(REMOVE_RECURSE
  "CMakeFiles/fig2_fmri_pipeline.dir/fig2_fmri_pipeline.cpp.o"
  "CMakeFiles/fig2_fmri_pipeline.dir/fig2_fmri_pipeline.cpp.o.d"
  "fig2_fmri_pipeline"
  "fig2_fmri_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_fmri_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
