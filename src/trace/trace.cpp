#include "trace/trace.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gtw::trace {

namespace {
constexpr char kMagic[4] = {'G', 'T', 'W', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("trace: truncated stream");
  return v;
}
}  // namespace

std::uint32_t TraceRecorder::define_state(const std::string& name) {
  states_.push_back(name);
  return static_cast<std::uint32_t>(states_.size()) - 1;
}

const std::string& TraceRecorder::state_name(std::uint32_t id) const {
  return states_.at(id);
}

void TraceRecorder::enter(std::uint32_t rank, std::uint32_t state,
                          des::SimTime t) {
  events_.push_back({t.ps(), rank, EventKind::kEnter, state, 0, 0});
}

void TraceRecorder::leave(std::uint32_t rank, std::uint32_t state,
                          des::SimTime t) {
  events_.push_back({t.ps(), rank, EventKind::kLeave, state, 0, 0});
}

void TraceRecorder::send(std::uint32_t rank, std::uint32_t peer,
                         std::uint32_t tag, units::Bytes bytes,
                         des::SimTime t) {
  events_.push_back({t.ps(), rank, EventKind::kSend, peer, tag, bytes.count()});
}

void TraceRecorder::recv(std::uint32_t rank, std::uint32_t peer,
                         std::uint32_t tag, units::Bytes bytes,
                         des::SimTime t) {
  events_.push_back({t.ps(), rank, EventKind::kRecv, peer, tag, bytes.count()});
}

void TraceRecorder::write(std::ostream& os) const {
  os.write(kMagic, 4);
  put(os, kVersion);
  put(os, static_cast<std::uint32_t>(ranks_));
  put(os, static_cast<std::uint32_t>(states_.size()));
  for (const std::string& s : states_) {
    put(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
  }
  put(os, static_cast<std::uint64_t>(events_.size()));
  for (const TraceEvent& e : events_) {
    put(os, e.time_ps);
    put(os, e.rank);
    put(os, static_cast<std::uint8_t>(e.kind));
    put(os, e.id);
    put(os, e.tag);
    put(os, e.bytes);
  }
}

namespace {
// Sanity ceilings for reader validation: far above anything the simulator
// produces, low enough that a corrupt count cannot drive allocation.
constexpr std::uint32_t kMaxRanks = 1u << 20;
constexpr std::uint32_t kMaxStates = 1u << 20;
constexpr std::uint32_t kMaxStateNameLen = 1u << 16;
constexpr std::uint64_t kReserveCap = 1u << 20;
}  // namespace

TraceRecorder TraceRecorder::read(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("trace: bad magic (not a GTWT stream)");
  const auto version = get<std::uint32_t>(is);
  if (version != kVersion)
    throw std::runtime_error("trace: unsupported version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kVersion) + ")");
  const auto ranks = get<std::uint32_t>(is);
  if (ranks == 0 || ranks > kMaxRanks)
    throw std::runtime_error("trace: implausible rank count " +
                             std::to_string(ranks));
  TraceRecorder rec(static_cast<int>(ranks));
  const auto n_states = get<std::uint32_t>(is);
  if (n_states == 0 || n_states > kMaxStates)
    throw std::runtime_error("trace: implausible state count " +
                             std::to_string(n_states));
  rec.states_.clear();
  for (std::uint32_t i = 0; i < n_states; ++i) {
    const auto len = get<std::uint32_t>(is);
    if (len > kMaxStateNameLen)
      throw std::runtime_error("trace: implausible state-name length " +
                               std::to_string(len));
    std::string s(len, '\0');
    is.read(s.data(), static_cast<std::streamsize>(len));
    if (!is) throw std::runtime_error("trace: truncated state name");
    rec.states_.push_back(std::move(s));
  }
  const auto n_events = get<std::uint64_t>(is);
  // A lying header must not drive allocation: reserve a bounded amount and
  // let the per-event reads hit "truncated stream" if the count was fake.
  rec.events_.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(n_events, kReserveCap)));
  for (std::uint64_t i = 0; i < n_events; ++i) {
    TraceEvent e;
    e.time_ps = get<std::int64_t>(is);
    e.rank = get<std::uint32_t>(is);
    if (e.rank >= ranks)
      throw std::runtime_error("trace: event rank " + std::to_string(e.rank) +
                               " out of range (ranks=" +
                               std::to_string(ranks) + ")");
    const auto kind = get<std::uint8_t>(is);
    if (kind > static_cast<std::uint8_t>(EventKind::kRecv))
      throw std::runtime_error("trace: unknown event kind " +
                               std::to_string(kind));
    e.kind = static_cast<EventKind>(kind);
    e.id = get<std::uint32_t>(is);
    if ((e.kind == EventKind::kEnter || e.kind == EventKind::kLeave) &&
        e.id >= n_states)
      throw std::runtime_error("trace: state id " + std::to_string(e.id) +
                               " out of range (states=" +
                               std::to_string(n_states) + ")");
    e.tag = get<std::uint32_t>(is);
    e.bytes = get<std::uint64_t>(is);
    rec.events_.push_back(e);
  }
  return rec;
}

TraceStats::TraceStats(const TraceRecorder& rec) : rec_(rec) {
  // Per-rank state stack for inclusive/innermost attribution.
  std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, std::int64_t>>>
      stacks;
  bool first = true;
  for (const TraceEvent& e : rec.events()) {
    if (first) {
      span_begin_ps_ = e.time_ps;
      first = false;
    }
    span_end_ps_ = std::max(span_end_ps_, e.time_ps);
    switch (e.kind) {
      case EventKind::kEnter: {
        auto& st = stacks[e.rank];
        // Close the outer state's segment.
        if (!st.empty()) {
          state_time_[{e.rank, st.back().first}] +=
              des::SimTime::picoseconds(e.time_ps - st.back().second);
        }
        st.push_back({e.id, e.time_ps});
        break;
      }
      case EventKind::kLeave: {
        auto& st = stacks[e.rank];
        if (!st.empty()) {
          state_time_[{e.rank, st.back().first}] +=
              des::SimTime::picoseconds(e.time_ps - st.back().second);
          st.pop_back();
          if (!st.empty()) st.back().second = e.time_ps;  // resume outer
        }
        break;
      }
      case EventKind::kSend:
        ++msg_count_[{e.rank, e.id}];
        msg_bytes_[{e.rank, e.id}] += e.bytes;
        ++total_messages_;
        total_bytes_ += e.bytes;
        break;
      case EventKind::kRecv:
        break;  // counted on the send side
    }
  }
}

des::SimTime TraceStats::state_time(std::uint32_t rank,
                                    std::uint32_t state) const {
  auto it = state_time_.find({rank, state});
  return it != state_time_.end() ? it->second : des::SimTime::zero();
}

std::uint64_t TraceStats::messages(std::uint32_t from, std::uint32_t to) const {
  auto it = msg_count_.find({from, to});
  return it != msg_count_.end() ? it->second : 0;
}

std::uint64_t TraceStats::bytes(std::uint32_t from, std::uint32_t to) const {
  auto it = msg_bytes_.find({from, to});
  return it != msg_bytes_.end() ? it->second : 0;
}

std::string TraceStats::gantt(int columns) const {
  if (rec_.events().empty() || span_end_ps_ <= span_begin_ps_)
    return "(empty trace)\n";
  const double span = static_cast<double>(span_end_ps_ - span_begin_ps_);
  std::string out;
  for (int rank = 0; rank < rec_.ranks(); ++rank) {
    std::string row(static_cast<std::size_t>(columns), '.');
    // Replay this rank's stack to paint cells.
    std::vector<std::pair<std::uint32_t, std::int64_t>> stack;
    auto paint = [&](std::int64_t from, std::int64_t to, std::uint32_t state) {
      if (state == 0) return;
      int a = static_cast<int>(
          static_cast<double>(from - span_begin_ps_) / span * columns);
      int b = static_cast<int>(
          static_cast<double>(to - span_begin_ps_) / span * columns);
      a = std::clamp(a, 0, columns - 1);
      b = std::clamp(b, a, columns - 1);
      const char c = rec_.state_name(state).empty()
                         ? '?'
                         : rec_.state_name(state)[0];
      for (int i = a; i <= b; ++i) row[static_cast<std::size_t>(i)] = c;
    };
    for (const TraceEvent& e : rec_.events()) {
      if (e.rank != static_cast<std::uint32_t>(rank)) continue;
      if (e.kind == EventKind::kEnter) {
        stack.push_back({e.id, e.time_ps});
      } else if (e.kind == EventKind::kLeave && !stack.empty()) {
        paint(stack.back().second, e.time_ps, stack.back().first);
        stack.pop_back();
      }
    }
    char label[32];
    std::snprintf(label, sizeof label, "rank %2d |", rank);
    out += label + row + "|\n";
  }
  return out;
}

std::string TraceStats::profile() const {
  std::ostringstream os;
  os << "state time profile (seconds):\n";
  for (int rank = 0; rank < rec_.ranks(); ++rank) {
    os << "  rank " << rank << ":";
    for (std::uint32_t s = 1; s < rec_.state_count(); ++s) {
      const des::SimTime t = state_time(static_cast<std::uint32_t>(rank), s);
      if (t > des::SimTime::zero())
        os << "  " << rec_.state_name(s) << "=" << t.sec();
    }
    os << "\n";
  }
  os << "messages: " << total_messages_ << ", bytes: " << total_bytes_ << "\n";
  return os.str();
}

}  // namespace gtw::trace
