// VAMPIR-style performance tracing (the testbed's "tool for performance
// evaluation and tuning of metacomputing applications", extended by Pallas
// for MetaMPI — paper section 3).
//
// A TraceRecorder collects enter/leave/send/recv events per rank; the log
// can be written to and read from a compact binary format, and TraceStats
// derives the views VAMPIR shows: per-state time profiles, message
// statistics matrices, and a text timeline (Gantt) rendering.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "des/time.hpp"
#include "units/units.hpp"

namespace gtw::trace {

enum class EventKind : std::uint8_t {
  kEnter = 0,
  kLeave = 1,
  kSend = 2,
  kRecv = 3,
};

struct TraceEvent {
  std::int64_t time_ps = 0;
  std::uint32_t rank = 0;
  EventKind kind = EventKind::kEnter;
  std::uint32_t id = 0;      // state id (enter/leave) or peer rank (send/recv)
  std::uint32_t tag = 0;     // message tag
  std::uint64_t bytes = 0;   // message size
};

class TraceRecorder {
 public:
  explicit TraceRecorder(int ranks) : ranks_(ranks) {}

  // States must be defined before use; id 0 is reserved for "idle".
  std::uint32_t define_state(const std::string& name);
  const std::string& state_name(std::uint32_t id) const;
  std::uint32_t state_count() const {
    return static_cast<std::uint32_t>(states_.size());
  }
  int ranks() const { return ranks_; }

  void enter(std::uint32_t rank, std::uint32_t state, des::SimTime t);
  void leave(std::uint32_t rank, std::uint32_t state, des::SimTime t);
  void send(std::uint32_t rank, std::uint32_t peer, std::uint32_t tag,
            units::Bytes bytes, des::SimTime t);
  void recv(std::uint32_t rank, std::uint32_t peer, std::uint32_t tag,
            units::Bytes bytes, des::SimTime t);

  const std::vector<TraceEvent>& events() const { return events_; }

  // Binary round trip ("GTWT" format, version 1).
  void write(std::ostream& os) const;
  static TraceRecorder read(std::istream& is);

 private:
  int ranks_;
  std::vector<std::string> states_{"idle"};
  std::vector<TraceEvent> events_;
};

// Aggregations over a finished trace.
class TraceStats {
 public:
  explicit TraceStats(const TraceRecorder& rec);

  // Total time rank spent inside state (nested enters attribute to the
  // innermost state).
  des::SimTime state_time(std::uint32_t rank, std::uint32_t state) const;
  // Message statistics between rank pairs.
  std::uint64_t messages(std::uint32_t from, std::uint32_t to) const;
  std::uint64_t bytes(std::uint32_t from, std::uint32_t to) const;
  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  // Text timeline: one row per rank, `columns` characters covering the full
  // trace span, each cell showing the first letter of the dominant state.
  std::string gantt(int columns = 72) const;

  // Per-rank/state profile as a printable table.
  std::string profile() const;

 private:
  const TraceRecorder& rec_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, des::SimTime> state_time_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> msg_count_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> msg_bytes_;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::int64_t span_begin_ps_ = 0, span_end_ps_ = 0;
};

}  // namespace gtw::trace
