#include "obs/span.hpp"

#include <ostream>

namespace gtw::obs {

void SpanTracer::enable_layer(const std::string& layer, bool on) {
  layer_enabled_[layer] = on;
}

void SpanTracer::on_event_scheduled(std::uint64_t seq) {
  if (current_.valid()) pending_[seq] = current_;
}

void SpanTracer::on_event_fire(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it != pending_.end()) {
    current_ = it->second;
    pending_.erase(it);
  } else {
    current_ = des::TraceContext{};
  }
}

void SpanTracer::on_event_done() { current_ = des::TraceContext{}; }

void SpanTracer::on_event_cancel(std::uint64_t seq) { pending_.erase(seq); }

des::TraceContext SpanTracer::mint(const char* origin, des::SimTime now) {
  const std::uint64_t trace_id = ++next_trace_;
  Span root;
  root.id = spans_.size() + 1;
  root.trace = trace_id;
  root.parent = 0;
  root.phase = des::SpanPhase::kRoot;
  root.layer = "trace";
  root.name = origin;
  root.begin = now;
  spans_.push_back(std::move(root));
  ++open_spans_;

  Trace t;
  t.id = trace_id;
  t.root = spans_.back().id;
  t.origin = origin;
  traces_.emplace(trace_id, std::move(t));
  ++open_traces_;

  // The minting event now runs under the new trace, so everything it
  // schedules inherits the context.
  current_ = des::TraceContext{trace_id, spans_.back().id};
  return current_;
}

des::TraceContext SpanTracer::current() const { return current_; }

des::TraceContext SpanTracer::adopt(des::TraceContext ctx) {
  const des::TraceContext prev = current_;
  current_ = ctx;
  return prev;
}

std::uint64_t SpanTracer::begin_span(des::TraceContext parent,
                                     des::SpanPhase phase, const char* layer,
                                     const char* name, des::SimTime now) {
  if (!parent.valid()) return 0;
  if (auto it = layer_enabled_.find(layer);
      it != layer_enabled_.end() && !it->second)
    return 0;
  Span s;
  s.id = spans_.size() + 1;
  s.trace = parent.trace_id;
  s.parent = parent.span_id;
  s.phase = phase;
  s.layer = layer;
  s.name = name;
  s.begin = now;
  spans_.push_back(std::move(s));
  ++open_spans_;
  return spans_.back().id;
}

SpanTracer::Span* SpanTracer::find_open(std::uint64_t span_id) {
  if (span_id == 0 || span_id > spans_.size()) return nullptr;
  Span& s = spans_[span_id - 1];
  return s.open ? &s : nullptr;
}

void SpanTracer::end_span(std::uint64_t span_id, des::SimTime now) {
  Span* s = find_open(span_id);
  if (s == nullptr) return;
  s->end = now;
  s->open = false;
  --open_spans_;
}

void SpanTracer::abort_span(std::uint64_t span_id, des::SimTime now) {
  Span* s = find_open(span_id);
  if (s == nullptr) return;
  s->end = now;
  s->open = false;
  s->aborted = true;
  --open_spans_;
}

void SpanTracer::close_trace(des::TraceContext ctx, des::SimTime now) {
  auto it = traces_.find(ctx.trace_id);
  if (it == traces_.end() || it->second.status != "open") return;
  it->second.status = "closed";
  --open_traces_;
  end_span(it->second.root, now);
}

void SpanTracer::abort_trace(des::TraceContext ctx, const char* reason,
                             des::SimTime now) {
  auto it = traces_.find(ctx.trace_id);
  if (it == traces_.end() || it->second.status != "open") return;
  it->second.status = "aborted";
  it->second.abort_reason = reason;
  --open_traces_;
  // Cascade: whatever the trace's components still hold open dies with it
  // (a dropped message's late copies will try to end these spans later;
  // those calls land on closed spans and no-op).
  for (Span& s : spans_) {
    if (s.trace != ctx.trace_id || !s.open) continue;
    s.end = now;
    s.open = false;
    s.aborted = true;
    --open_spans_;
  }
}

void SpanTracer::write_json(std::ostream& os, const std::string& label) const {
  os << "{\"gtw_spans\": 1, \"label\": \"" << label << "\"}\n";
  for (const auto& [id, t] : traces_) {
    os << "{\"trace\": " << id << ", \"root\": " << t.root << ", \"origin\": \""
       << t.origin << "\", \"status\": \"" << t.status << "\"";
    if (!t.abort_reason.empty())
      os << ", \"reason\": \"" << t.abort_reason << "\"";
    os << "}\n";
  }
  for (const Span& s : spans_) {
    os << "{\"span\": " << s.id << ", \"trace\": " << s.trace
       << ", \"parent\": " << s.parent << ", \"phase\": \""
       << des::span_phase_name(s.phase) << "\", \"layer\": \"" << s.layer
       << "\", \"name\": \"" << s.name << "\", \"begin_ps\": " << s.begin.ps()
       << ", \"end_ps\": " << (s.open ? s.begin : s.end).ps()
       << ", \"status\": \""
       << (s.open ? "open" : (s.aborted ? "aborted" : "ok")) << "\"}\n";
  }
  os << "{\"spans_total\": " << spans_.size()
     << ", \"traces_total\": " << traces_.size()
     << ", \"open_spans\": " << open_spans_ << "}\n";
}

}  // namespace gtw::obs
