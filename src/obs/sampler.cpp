#include "obs/sampler.hpp"

#include <stdexcept>

namespace gtw::obs {

void TimeSeriesSampler::watch(const std::string& name) {
  if (!reg_->contains(name))
    throw std::out_of_range("obs: cannot watch unknown instrument '" + name +
                            "'");
  series_.push_back(Series{name, {}});
}

void TimeSeriesSampler::watch_prefix(const std::string& prefix) {
  for (const Registry::Sample& s : reg_->snapshot())
    if (s.name.compare(0, prefix.size(), prefix) == 0)
      series_.push_back(Series{s.name, {}});
}

void TimeSeriesSampler::sample() {
  const std::int64_t t = sched_->now().ps();
  for (Series& s : series_) s.points.emplace_back(t, reg_->read(s.name));
  ++samples_;
}

void TimeSeriesSampler::sample_every(des::SimTime period, des::SimTime until) {
  if (period <= des::SimTime::zero())
    throw std::logic_error("obs: sampling period must be positive");
  sample();
  tick(period, until);
}

void TimeSeriesSampler::tick(des::SimTime period, des::SimTime until) {
  const des::SimTime next = sched_->now() + period;
  if (next > until) return;
  sched_->schedule_at(next, [this, period, until]() {
    sample();
    tick(period, until);
  });
}

}  // namespace gtw::obs
