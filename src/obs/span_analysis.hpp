// Offline analysis of OBS_*.spans.json artifacts (DESIGN.md section 13):
// the reader half of the causal tracing layer, consumed by gtw-trace.
//
// The artifact is line-oriented (one JSON object per line: header, trace
// lines, span lines, footer), so the loader is a strict line scanner, not
// a general JSON parser.  Strict means: a missing or wrong header, a
// missing footer, or a footer whose counts disagree with the lines
// actually present is a hard load error — gtw-trace turns those into a
// non-zero exit so CI catches truncated artifacts (a run killed mid-write)
// instead of silently analysing a prefix.
//
// Analyses:
//  - sweep_trace(): the latency-budget decomposition.  At every instant of
//    a trace's lifetime, the *innermost* active span — the one begun most
//    recently (ties broken by higher span id, i.e. later creation) — owns
//    that instant.  Sweeping the boundaries left to right partitions the
//    root span's [begin, end) into contiguous segments, each attributed to
//    exactly one span and therefore one phase.  Because the segments
//    partition the root interval, per-phase sums add up to the end-to-end
//    latency *exactly*, in integer picoseconds — container phases (root,
//    transfer) absorb any time their children don't cover.
//  - budget(): aggregates the sweep over every closed trace into the
//    paper-style delay-budget table (e2 experiment).
//  - select_trace(): resolves --critical-path's argument (a trace id,
//    "worst", or "p99") against the closed traces' root durations.
//  - write_spans_chrome(): Chrome trace-event export; spans become
//    complete ("X") events and parent->child edges become flow arrows.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace gtw::obs {

struct SpanRec {
  std::uint64_t id = 0;
  std::uint64_t trace = 0;
  std::uint64_t parent = 0;  // 0 for trace roots
  std::string phase;
  std::string layer;
  std::string name;
  std::int64_t begin_ps = 0;
  std::int64_t end_ps = 0;
  std::string status;  // "ok" | "aborted" | "open"
};

struct TraceRec {
  std::uint64_t id = 0;
  std::uint64_t root = 0;  // root span id
  std::string origin;
  std::string status;  // "open" | "closed" | "aborted"
  std::string reason;  // abort reason, if aborted
};

struct SpanFile {
  std::string label;
  std::vector<TraceRec> traces;
  std::vector<SpanRec> spans;  // id order; id == index + 1
  std::uint64_t spans_total = 0;
  std::uint64_t traces_total = 0;
  std::uint64_t open_spans = 0;
};

// Strict loader; on failure returns false and sets `error` to a one-line
// human-readable reason (unreadable, bad header, truncated, count
// mismatch).  `what` names the artifact in the message (usually the path).
bool load_spans(std::istream& in, const std::string& what, SpanFile& out,
                std::string& error);

// Span by id (nullptr when out of range); ids are dense, 1-based.
const SpanRec* span_by_id(const SpanFile& f, std::uint64_t span_id);

// The layer chain from the trace root down to `s`, e.g.
// "flow>meta>tcp>link" — consecutive duplicate layers collapsed, the
// root's synthetic "trace" layer skipped.  This is the causal crossing a
// critical-path row reports.
std::string layer_chain(const SpanFile& f, const SpanRec& s);

// One contiguous slice of a trace's timeline, attributed to the innermost
// span active over [begin_ps, end_ps).
struct BudgetSegment {
  std::int64_t begin_ps = 0;
  std::int64_t end_ps = 0;
  const SpanRec* span = nullptr;
};

// Innermost-active-span sweep over one trace (see file comment).  Segments
// are returned in time order and partition the root span's interval, so
// their durations sum to the root duration exactly.  Returns an empty
// vector for an unknown trace id or a zero-duration root.
std::vector<BudgetSegment> sweep_trace(const SpanFile& f,
                                       std::uint64_t trace_id);

struct PhaseBudget {
  // Integer-picosecond total attributed to each phase, summed over every
  // closed trace's sweep.  Invariant: values sum to total_ps exactly.
  std::map<std::string, std::int64_t> phase_ps;
  std::int64_t total_ps = 0;  // sum of closed-trace root durations
  std::size_t closed_traces = 0;
  std::size_t aborted_traces = 0;
  std::size_t open_traces = 0;
};
PhaseBudget budget(const SpanFile& f);

// Resolves a --critical-path selector: a numeric trace id (any status),
// "worst" (closed trace with the longest root duration), or "p99" (closed
// trace at the 99th-percentile root duration).  Returns nullptr and sets
// `error` when the selector matches nothing.
const TraceRec* select_trace(const SpanFile& f, const std::string& selector,
                             std::string& error);

// Chrome trace-event JSON: one complete ("X") event per span (pid = trace
// id, tid = span id, a thread_name metadata row naming the span) and one
// flow arrow (ph "s"/"f") per parent->child span edge.
void write_spans_chrome(std::ostream& os, const SpanFile& f);

}  // namespace gtw::obs
