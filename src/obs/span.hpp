// obs::SpanTracer — the runtime half of the causal tracing layer
// (DESIGN.md section 13).  Implements des::SpanHook, the interface the DES
// engine and every latency-bearing component call through null-checked
// virtual dispatch (hook inversion, same shape as GTW-San: interface at
// the DAG bottom in des/, implementation here at the top).
//
// The tracer records, per logical workload unit (a pipeline item, a WAN
// message), a tree of typed spans — queue-wait, serialize, propagate,
// host-cpu, retransmit-stall, reassembly-wait, retry-backoff, compute —
// each stamped with exact integer-picosecond DES begin/end times.  Two
// propagation mechanisms feed it:
//
//   scheduler-mediated: on_event_scheduled() snapshots the running event's
//   TraceContext against the new event's sequence number, and
//   on_event_fire()/on_event_done() bracket the dispatch, so continuation
//   chains inherit their cause's context with zero per-component code;
//
//   payload-carried: packets, frames, TCP messages and transport chunks
//   carry a TraceContext, and components bracket asynchronous handoffs
//   with adopt().
//
// Perturbation-free by construction: the tracer never touches the
// scheduler, never reads wall-clock time, and allocates only its own
// bookkeeping, so attaching it cannot change the event sequence and every
// BENCH_*.json artifact stays byte-identical.  Span volume is bounded with
// enable_layer(): begin_span() for a disabled layer returns span id 0, and
// ending/aborting span 0 is a no-op everywhere.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "des/span_hook.hpp"
#include "des/time.hpp"

namespace gtw::obs {

class SpanTracer : public des::SpanHook {
 public:
  SpanTracer() = default;
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  // Span-volume filter: begin_span() for a disabled layer returns 0.
  // Roots (mint) are always recorded.  Layers default to enabled.
  void enable_layer(const std::string& layer, bool on);

  // --- des::SpanHook --------------------------------------------------------
  void on_event_scheduled(std::uint64_t seq) override;
  void on_event_fire(std::uint64_t seq) override;
  void on_event_done() override;
  void on_event_cancel(std::uint64_t seq) override;
  des::TraceContext mint(const char* origin, des::SimTime now) override;
  des::TraceContext current() const override;
  des::TraceContext adopt(des::TraceContext ctx) override;
  std::uint64_t begin_span(des::TraceContext parent, des::SpanPhase phase,
                           const char* layer, const char* name,
                           des::SimTime now) override;
  void end_span(std::uint64_t span_id, des::SimTime now) override;
  void abort_span(std::uint64_t span_id, des::SimTime now) override;
  void close_trace(des::TraceContext ctx, des::SimTime now) override;
  void abort_trace(des::TraceContext ctx, const char* reason,
                   des::SimTime now) override;

  // --- recorded data --------------------------------------------------------
  struct Span {
    std::uint64_t id = 0;
    std::uint64_t trace = 0;
    std::uint64_t parent = 0;  // parent span id; 0 for trace roots
    des::SpanPhase phase = des::SpanPhase::kRoot;
    std::string layer;
    std::string name;
    des::SimTime begin;
    des::SimTime end;
    bool open = true;
    bool aborted = false;
  };
  struct Trace {
    std::uint64_t id = 0;
    std::uint64_t root = 0;  // root span id
    std::string origin;
    // "open" until closed; then "closed" or "aborted".
    std::string status = "open";
    std::string abort_reason;
  };

  // Spans in id order (id == index + 1); traces in id order.
  const std::vector<Span>& spans() const { return spans_; }
  const std::map<std::uint64_t, Trace>& traces() const { return traces_; }

  // Leak census: spans begun but neither ended nor aborted, and traces
  // still open.  Both must be zero once a run drains and every component
  // has retired its in-flight work (tests/span_test.cpp; under GTW_CHECK
  // the census is registered as a drain check via check::attach).
  std::size_t open_spans() const { return open_spans_; }
  std::size_t open_traces() const { return open_traces_; }

  // Line-oriented spans artifact (OBS_<label>.spans.json): a header line,
  // one trace line per trace, one span line per span — all timestamps
  // exact integer picoseconds — and a {"spans_total": N} footer that lets
  // readers detect truncation.
  void write_json(std::ostream& os, const std::string& label) const;

 private:
  Span* find_open(std::uint64_t span_id);

  std::vector<Span> spans_;
  std::map<std::uint64_t, Trace> traces_;
  std::map<std::string, bool> layer_enabled_;
  // Scheduler-mediated propagation: contexts snapshotted per pending event.
  std::map<std::uint64_t, des::TraceContext> pending_;
  des::TraceContext current_;
  std::uint64_t next_trace_ = 0;
  std::size_t open_spans_ = 0;
  std::size_t open_traces_ = 0;
};

}  // namespace gtw::obs
