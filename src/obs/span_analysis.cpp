#include "obs/span_analysis.hpp"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "obs/json_util.hpp"

namespace gtw::obs {

namespace {

// Field extraction for our own line-oriented writer (span.cpp): every
// field appears as `"key": value` with a single space, values are either
// unsigned integers, signed integers, or quoted strings with no embedded
// escapes (identifiers and labels).  A full JSON parser would be overkill
// and a second source of truth for the format.
bool find_value(const std::string& line, const char* key, std::size_t& pos) {
  const std::string pat = std::string("\"") + key + "\": ";
  const auto p = line.find(pat);
  if (p == std::string::npos) return false;
  pos = p + pat.size();
  return true;
}

bool get_u64(const std::string& line, const char* key, std::uint64_t& out) {
  std::size_t pos;
  if (!find_value(line, key, pos)) return false;
  out = std::strtoull(line.c_str() + pos, nullptr, 10);
  return true;
}

bool get_i64(const std::string& line, const char* key, std::int64_t& out) {
  std::size_t pos;
  if (!find_value(line, key, pos)) return false;
  out = std::strtoll(line.c_str() + pos, nullptr, 10);
  return true;
}

bool get_str(const std::string& line, const char* key, std::string& out) {
  std::size_t pos;
  if (!find_value(line, key, pos)) return false;
  if (pos >= line.size() || line[pos] != '"') return false;
  const auto close = line.find('"', pos + 1);
  if (close == std::string::npos) return false;
  out = line.substr(pos + 1, close - pos - 1);
  return true;
}

bool starts_with(const std::string& line, const char* prefix) {
  return line.rfind(prefix, 0) == 0;
}

}  // namespace

bool load_spans(std::istream& in, const std::string& what, SpanFile& out,
                std::string& error) {
  std::string line;
  if (!std::getline(in, line) || !starts_with(line, "{\"gtw_spans\": 1")) {
    error = what + ": not a spans artifact (missing {\"gtw_spans\": 1} header)";
    return false;
  }
  get_str(line, "label", out.label);

  bool have_footer = false;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (have_footer) {
      error = what + ": trailing data after the spans_total footer (line " +
              std::to_string(lineno) + ")";
      return false;
    }
    if (starts_with(line, "{\"spans_total\"")) {
      if (!get_u64(line, "spans_total", out.spans_total) ||
          !get_u64(line, "traces_total", out.traces_total) ||
          !get_u64(line, "open_spans", out.open_spans)) {
        error = what + ": malformed footer (line " + std::to_string(lineno) +
                ")";
        return false;
      }
      have_footer = true;
    } else if (starts_with(line, "{\"trace\"")) {
      TraceRec t;
      if (!get_u64(line, "trace", t.id) || !get_u64(line, "root", t.root) ||
          !get_str(line, "origin", t.origin) ||
          !get_str(line, "status", t.status)) {
        error = what + ": malformed trace line " + std::to_string(lineno);
        return false;
      }
      get_str(line, "reason", t.reason);  // optional
      out.traces.push_back(std::move(t));
    } else if (starts_with(line, "{\"span\"")) {
      SpanRec s;
      if (!get_u64(line, "span", s.id) || !get_u64(line, "trace", s.trace) ||
          !get_u64(line, "parent", s.parent) ||
          !get_str(line, "phase", s.phase) ||
          !get_str(line, "layer", s.layer) || !get_str(line, "name", s.name) ||
          !get_i64(line, "begin_ps", s.begin_ps) ||
          !get_i64(line, "end_ps", s.end_ps) ||
          !get_str(line, "status", s.status)) {
        error = what + ": malformed span line " + std::to_string(lineno);
        return false;
      }
      if (s.id != out.spans.size() + 1) {
        error = what + ": non-sequential span id " + std::to_string(s.id) +
                " (line " + std::to_string(lineno) + ")";
        return false;
      }
      out.spans.push_back(std::move(s));
    } else {
      error = what + ": unrecognised line " + std::to_string(lineno);
      return false;
    }
  }
  if (!have_footer) {
    error = what +
            ": truncated — no {\"spans_total\"} footer; the writing run was"
            " likely interrupted";
    return false;
  }
  if (out.spans.size() != out.spans_total ||
      out.traces.size() != out.traces_total) {
    error = what + ": truncated — footer promises " +
            std::to_string(out.spans_total) + " span(s) / " +
            std::to_string(out.traces_total) + " trace(s), file has " +
            std::to_string(out.spans.size()) + " / " +
            std::to_string(out.traces.size());
    return false;
  }
  return true;
}

const SpanRec* span_by_id(const SpanFile& f, std::uint64_t span_id) {
  if (span_id == 0 || span_id > f.spans.size()) return nullptr;
  return &f.spans[span_id - 1];  // loader enforced id == index + 1
}

std::string layer_chain(const SpanFile& f, const SpanRec& s) {
  std::vector<const SpanRec*> path;
  for (const SpanRec* p = &s; p != nullptr; p = span_by_id(f, p->parent)) {
    path.push_back(p);
    if (path.size() > f.spans.size()) break;  // defensive: corrupt cycle
  }
  std::string chain;
  const std::string* last = nullptr;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    const std::string& layer = (*it)->layer;
    if (layer == "trace") continue;  // the root's synthetic layer
    if (last != nullptr && *last == layer) continue;  // collapse runs
    if (!chain.empty()) chain += '>';
    chain += layer;
    last = &layer;
  }
  return chain;
}

namespace {

const TraceRec* find_trace(const SpanFile& f, std::uint64_t trace_id) {
  for (const TraceRec& t : f.traces)
    if (t.id == trace_id) return &t;
  return nullptr;
}

std::int64_t root_duration(const SpanFile& f, const TraceRec& t) {
  const SpanRec* root = span_by_id(f, t.root);
  return root == nullptr ? 0 : root->end_ps - root->begin_ps;
}

}  // namespace

std::vector<BudgetSegment> sweep_trace(const SpanFile& f,
                                       std::uint64_t trace_id) {
  const TraceRec* tr = find_trace(f, trace_id);
  if (tr == nullptr) return {};
  const SpanRec* root = span_by_id(f, tr->root);
  if (root == nullptr || root->end_ps <= root->begin_ps) return {};

  // Candidate spans with their intervals clamped to the root's; zero-width
  // spans (open at write time, or instant) own no time and are dropped.
  struct Clamped {
    const SpanRec* span;
    std::int64_t begin, end;
  };
  std::vector<Clamped> active;
  std::vector<std::int64_t> bounds;
  for (const SpanRec& s : f.spans) {
    if (s.trace != trace_id) continue;
    const std::int64_t b = std::max(s.begin_ps, root->begin_ps);
    const std::int64_t e = std::min(s.end_ps, root->end_ps);
    if (e <= b) continue;
    active.push_back({&s, b, e});
    bounds.push_back(b);
    bounds.push_back(e);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  // Between two adjacent boundaries the set of active spans is constant;
  // the innermost — begun latest, higher id on ties — owns the segment.
  // The root is always active, so every segment has a winner.
  std::vector<BudgetSegment> segs;
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    const std::int64_t t0 = bounds[i], t1 = bounds[i + 1];
    const Clamped* winner = nullptr;
    for (const Clamped& c : active) {
      if (c.begin > t0 || c.end < t1) continue;
      if (winner == nullptr ||
          c.span->begin_ps > winner->span->begin_ps ||
          (c.span->begin_ps == winner->span->begin_ps &&
           c.span->id > winner->span->id))
        winner = &c;
    }
    if (winner == nullptr) continue;  // unreachable: the root covers all
    if (!segs.empty() && segs.back().span == winner->span &&
        segs.back().end_ps == t0) {
      segs.back().end_ps = t1;  // merge adjacent segments of one span
    } else {
      segs.push_back({t0, t1, winner->span});
    }
  }
  return segs;
}

PhaseBudget budget(const SpanFile& f) {
  PhaseBudget b;
  for (const TraceRec& t : f.traces) {
    if (t.status == "aborted") {
      ++b.aborted_traces;
      continue;
    }
    if (t.status != "closed") {
      ++b.open_traces;
      continue;
    }
    ++b.closed_traces;
    b.total_ps += root_duration(f, t);
    for (const BudgetSegment& seg : sweep_trace(f, t.id))
      b.phase_ps[seg.span->phase] += seg.end_ps - seg.begin_ps;
  }
  return b;
}

const TraceRec* select_trace(const SpanFile& f, const std::string& selector,
                             std::string& error) {
  if (!selector.empty() &&
      selector.find_first_not_of("0123456789") == std::string::npos) {
    const std::uint64_t id = std::strtoull(selector.c_str(), nullptr, 10);
    const TraceRec* t = find_trace(f, id);
    if (t == nullptr) error = "no trace with id " + selector;
    return t;
  }

  // "worst" and "p99" rank closed traces by end-to-end (root) duration.
  std::vector<std::pair<std::int64_t, const TraceRec*>> closed;
  for (const TraceRec& t : f.traces)
    if (t.status == "closed") closed.push_back({root_duration(f, t), &t});
  if (closed.empty()) {
    error = "no closed traces in artifact";
    return nullptr;
  }
  std::sort(closed.begin(), closed.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second->id < b.second->id;
            });
  if (selector == "worst") return closed.back().second;
  if (selector == "p99") {
    // Nearest-rank percentile: ceil(0.99 * n) in 1-based rank.
    const std::size_t n = closed.size();
    const std::size_t rank = (99 * n + 99) / 100;
    return closed[rank - 1].second;
  }
  error = "bad selector '" + selector + "' (want a trace id, worst, or p99)";
  return nullptr;
}

void write_spans_chrome(std::ostream& os, const SpanFile& f) {
  using detail::json_escape;
  using detail::ts_us;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
  };

  for (const TraceRec& t : f.traces) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(t.id) + ",\"tid\":0,\"args\":{\"name\":\"trace " +
         std::to_string(t.id) + " " + json_escape(t.origin) + " (" +
         json_escape(t.status) + ")\"}}");
  }
  for (const SpanRec& s : f.spans) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(s.trace) + ",\"tid\":" + std::to_string(s.id) +
         ",\"args\":{\"name\":\"" + json_escape(s.layer) + "/" +
         json_escape(s.name) + "\"}}");
    emit("{\"name\":\"" + json_escape(s.name) + "\",\"cat\":\"" +
         json_escape(s.phase) + "\",\"ph\":\"X\",\"pid\":" +
         std::to_string(s.trace) + ",\"tid\":" + std::to_string(s.id) +
         ",\"ts\":" + ts_us(s.begin_ps) + ",\"dur\":" +
         ts_us(s.end_ps - s.begin_ps) + ",\"args\":{\"layer\":\"" +
         json_escape(s.layer) + "\",\"status\":\"" + json_escape(s.status) +
         "\"}}");
  }
  // Causal edges: a flow arrow from each parent span to each child, bound
  // at the child's begin time (the instant causality transfers).
  for (const SpanRec& s : f.spans) {
    if (s.parent == 0) continue;
    const std::string id = std::to_string(s.id);
    emit("{\"name\":\"span-edge\",\"cat\":\"span\",\"ph\":\"s\",\"pid\":" +
         std::to_string(s.trace) + ",\"tid\":" + std::to_string(s.parent) +
         ",\"ts\":" + ts_us(s.begin_ps) + ",\"id\":" + id + "}");
    emit("{\"name\":\"span-edge\",\"cat\":\"span\",\"ph\":\"f\",\"bp\":\"e\","
         "\"pid\":" +
         std::to_string(s.trace) + ",\"tid\":" + std::to_string(s.id) +
         ",\"ts\":" + ts_us(s.begin_ps) + ",\"id\":" + id + "}");
  }
  os << "\n]}\n";
}

}  // namespace gtw::obs
