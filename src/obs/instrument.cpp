#include "obs/instrument.hpp"

#include <string>

namespace gtw::obs {

void instrument_scheduler(Registry& reg, const des::Scheduler& sched,
                          const std::string& prefix) {
  const std::string p = prefix + ".";
  reg.probe_counter(p + "events_executed",
                    [&sched] { return sched.events_executed(); });
  reg.probe_gauge(p + "live_events", [&sched] {
    return static_cast<double>(sched.live_events());
  });
  reg.probe_gauge(p + "calendar_buckets", [&sched] {
    return static_cast<double>(sched.calendar_buckets());
  });
  reg.probe_gauge(p + "overflow_entries", [&sched] {
    return static_cast<double>(sched.overflow_entries());
  });
  reg.probe_counter(p + "bucket_high_water", [&sched] {
    return static_cast<std::uint64_t>(sched.bucket_high_water());
  });
  reg.probe_counter(p + "overflow_high_water", [&sched] {
    return static_cast<std::uint64_t>(sched.overflow_high_water());
  });
  reg.probe_counter(p + "calendar_resizes",
                    [&sched] { return sched.calendar_resizes(); });
  reg.probe_counter(p + "pool_slots", [&sched] {
    return static_cast<std::uint64_t>(sched.pool_slots());
  });
  reg.probe_gauge(p + "pool_in_use", [&sched] {
    return static_cast<double>(sched.pool_in_use());
  });
  reg.probe_counter(p + "pool_high_water", [&sched] {
    return static_cast<std::uint64_t>(sched.pool_high_water());
  });
  reg.probe_counter(p + "pool_slabs", [&sched] {
    return static_cast<std::uint64_t>(sched.pool_slabs());
  });
  // Deterministic rate: events per simulated second (never wall clock — a
  // wall-clock rate would break the byte-identical replay gate).
  reg.probe_gauge(p + "events_per_sim_s", [&sched] {
    const double sim_s = sched.now().sec();
    if (sim_s <= 0.0) return 0.0;
    return static_cast<double>(sched.events_executed()) / sim_s;
  });
}

void instrument_link(Registry& reg, const net::Link& link,
                     const std::string& prefix) {
  const std::string p =
      (prefix.empty() ? "net.link." + link.name() : prefix) + ".";
  reg.probe_counter(p + "tx_frames", [&link] { return link.frames_sent(); });
  reg.probe_counter(p + "tx_bytes", [&link] { return link.bytes_sent(); });
  reg.probe_counter(p + "drops", [&link] { return link.drops(); });
  reg.probe_counter(p + "dropped_bytes",
                    [&link] { return link.dropped_bytes(); });
  reg.probe_counter(p + "corrupted_frames",
                    [&link] { return link.corrupted_frames(); });
  reg.probe_counter(p + "outage_drops",
                    [&link] { return link.outage_drops(); });
  reg.probe_gauge(p + "queue_bytes", [&link] {
    return static_cast<double>(link.queue_bytes());
  });
  reg.probe_gauge(p + "queue_frames", [&link] {
    return static_cast<double>(link.queue_frames());
  });
  reg.probe_gauge(p + "queue_mean_bytes",
                  [&link] { return link.mean_queue_bytes(); });
  reg.probe_gauge(p + "utilization", [&link] { return link.utilization(); });
  if (link.fidelity() == net::LinkFidelity::kFluid) {
    reg.probe_counter(p + "bursts_completed",
                      [&link] { return link.bursts_completed(); });
    reg.probe_counter(p + "burst_pool_slots", [&link] {
      return static_cast<std::uint64_t>(link.burst_pool_slots());
    });
    reg.probe_counter(p + "burst_pool_high_water", [&link] {
      return static_cast<std::uint64_t>(link.burst_pool_high_water());
    });
  }
}

void instrument_host(Registry& reg, const net::Host& host) {
  const std::string p = "net.host." + host.name() + ".";
  reg.probe_counter(p + "packets_sent",
                    [&host] { return host.packets_sent(); });
  reg.probe_counter(p + "packets_received",
                    [&host] { return host.packets_received(); });
  reg.probe_counter(p + "packets_forwarded",
                    [&host] { return host.packets_forwarded(); });
  reg.probe_counter(p + "unroutable_drops",
                    [&host] { return host.unroutable_drops(); });
  reg.probe_counter(p + "outage_drops",
                    [&host] { return host.outage_drops(); });
  reg.probe_gauge(p + "up", [&host] { return host.up() ? 1.0 : 0.0; });
}

void instrument_atm_switch(Registry& reg, net::AtmSwitch& sw) {
  const std::string p = "net.atm." + sw.name() + ".";
  reg.probe_counter(p + "unroutable_drops",
                    [&sw] { return sw.unroutable_drops(); });
  for (int port = 0; port < sw.port_count(); ++port)
    instrument_link(reg, sw.egress_link(port),
                    p + "port" + std::to_string(port));
}

void instrument_tcp(Registry& reg, const net::TcpConnection& conn,
                    const std::string& name) {
  for (int side = 0; side < 2; ++side) {
    const std::string p = "tcp." + name + "." + std::to_string(side) + ".";
    // stats(side) re-reads the endpoint each evaluation, so gauges track the
    // live cwnd/ssthresh/RTO trajectory when sampled.
    reg.probe_gauge(p + "cwnd_bytes",
                    [&conn, side] { return conn.stats(side).cwnd_bytes; });
    reg.probe_gauge(p + "ssthresh_bytes",
                    [&conn, side] { return conn.stats(side).ssthresh_bytes; });
    reg.probe_gauge(p + "srtt_ms",
                    [&conn, side] { return conn.stats(side).srtt_ms; });
    reg.probe_gauge(p + "rto_ms",
                    [&conn, side] { return conn.stats(side).rto_ms; });
    reg.probe_counter(p + "segments_sent",
                      [&conn, side] { return conn.stats(side).segments_sent; });
    reg.probe_counter(p + "acks_sent",
                      [&conn, side] { return conn.stats(side).acks_sent; });
    reg.probe_counter(p + "bytes_acked",
                      [&conn, side] { return conn.stats(side).bytes_acked; });
    reg.probe_counter(p + "retransmits",
                      [&conn, side] { return conn.stats(side).retransmits; });
    reg.probe_counter(p + "fast_retransmits", [&conn, side] {
      return conn.stats(side).fast_retransmits;
    });
    reg.probe_counter(p + "timeouts",
                      [&conn, side] { return conn.stats(side).timeouts; });
    reg.probe_counter(p + "dup_acks",
                      [&conn, side] { return conn.stats(side).dup_acks; });
    reg.probe_counter(p + "dup_segments_received", [&conn, side] {
      return conn.stats(side).dup_segments_received;
    });
    reg.probe_counter(p + "max_ooo_bytes",
                      [&conn, side] { return conn.stats(side).max_ooo_bytes; });
  }
}

void instrument_communicator(Registry& reg, const meta::Communicator& comm,
                             const std::string& name) {
  const std::string p = "meta." + name + ".";
  reg.probe_counter(p + "messages_sent",
                    [&comm] { return comm.messages_sent(); });
  reg.probe_counter(p + "bytes_sent", [&comm] { return comm.bytes_sent(); });
  reg.probe_counter(p + "wan_retries",
                    [&comm] { return comm.reliability().wan_retries; });
  reg.probe_counter(p + "duplicates_suppressed", [&comm] {
    return comm.reliability().duplicates_suppressed;
  });
  reg.probe_counter(p + "unreachable_reports", [&comm] {
    return comm.reliability().unreachable_reports;
  });
  reg.probe_counter(p + "dropped_after_unreachable", [&comm] {
    return comm.reliability().dropped_after_unreachable;
  });
}

void instrument_path_transport(Registry& reg, const meta::PathTransport& path,
                               const std::string& name) {
  const std::string p = "meta.path." + name + ".";
  for (int side = 0; side < 2; ++side) {
    const std::string sp = p + "side" + std::to_string(side) + ".";
    const meta::PathTransport::Stats& st = path.stats(side);
    reg.probe_counter(sp + "messages", [&st] { return st.messages; });
    reg.probe_counter(sp + "bytes", [&st] { return st.bytes; });
    reg.probe_counter(sp + "chunks", [&st] { return st.chunks; });
    reg.probe_counter(sp + "chunk_resends",
                      [&st] { return st.chunk_resends; });
    reg.probe_counter(sp + "duplicate_chunks",
                      [&st] { return st.duplicate_chunks; });
    reg.probe_counter(sp + "stream_resets",
                      [&st] { return st.stream_resets; });
    reg.probe_counter(sp + "paced_delays", [&st] { return st.paced_delays; });
    reg.probe_counter(sp + "delivered_messages",
                      [&st] { return st.delivered_messages; });
    reg.probe_counter(sp + "delivered_bytes",
                      [&st] { return st.delivered_bytes; });
    reg.probe_gauge(sp + "reassembly_bytes", [&st] {
      return static_cast<double>(st.reassembly_bytes);
    });
    reg.probe_gauge(sp + "reassembly_peak_bytes", [&st] {
      return static_cast<double>(st.reassembly_peak_bytes);
    });
    reg.probe_gauge(sp + "goodput_mbps", [&path, side] {
      return path.goodput(side).bps() / 1e6;
    });
    for (int s = 0; s < path.stream_count(); ++s) {
      const std::string stp = sp + "stream" + std::to_string(s) + ".";
      reg.probe_counter(stp + "chunks", [&path, side, s] {
        return path.stream_stats(side, s).chunks;
      });
      reg.probe_counter(stp + "bytes", [&path, side, s] {
        return path.stream_stats(side, s).bytes;
      });
      reg.probe_counter(stp + "resets", [&path, side, s] {
        return path.stream_stats(side, s).resets;
      });
      reg.probe_counter(stp + "tcp_retransmits", [&path, side, s] {
        return path.stream_stats(side, s).tcp_retransmits;
      });
      reg.probe_counter(stp + "tcp_timeouts", [&path, side, s] {
        return path.stream_stats(side, s).tcp_timeouts;
      });
    }
  }
  reg.probe_gauge(p + "active_streams", [&path] {
    return static_cast<double>(path.active_streams());
  });
  reg.probe_gauge(p + "stream_window_bytes", [&path] {
    return static_cast<double>(path.stream_window().count());
  });
}

void bridge_communicator_peers(Registry& reg, const meta::Communicator& comm,
                               const std::string& name) {
  for (const auto& [pair, stats] : comm.peer_traffic()) {
    const std::string p = "meta." + name + ".peer." +
                          std::to_string(pair.first) + "_to_" +
                          std::to_string(pair.second) + ".";
    reg.counter(p + "messages").set(stats.messages);
    reg.counter(p + "bytes").set(stats.bytes);
    reg.counter(p + "retries").set(stats.retries);
  }
}

void bridge_flow_metrics(Registry& reg, const flow::MetricsRegistry& metrics,
                         const std::string& prefix) {
  for (int i = 0; i < static_cast<int>(metrics.stages().size()); ++i) {
    // Capture (registry, index), not a StageMetrics reference: the stages
    // vector may reallocate if stages are added after instrumentation.
    const std::string p =
        prefix + ".stage." + metrics.stage(i).name + ".";
    reg.probe_counter(p + "items_in",
                      [&metrics, i] { return metrics.stage(i).items_in; });
    reg.probe_counter(p + "items_out",
                      [&metrics, i] { return metrics.stage(i).items_out; });
    reg.probe_counter(p + "dropped",
                      [&metrics, i] { return metrics.stage(i).dropped; });
    reg.probe_gauge(p + "queue_depth", [&metrics, i] {
      return static_cast<double>(metrics.stage(i).queue_depth);
    });
    reg.probe_counter(p + "queue_peak", [&metrics, i] {
      return static_cast<std::uint64_t>(metrics.stage(i).queue_peak);
    });
    reg.probe_counter(p + "busy_ps", [&metrics, i] {
      return static_cast<std::uint64_t>(metrics.stage(i).busy.ps());
    });
    reg.probe_gauge(p + "occupancy",
                    [&metrics, i] { return metrics.stage(i).occupancy(); });
    reg.probe_gauge(p + "throughput_per_s", [&metrics, i] {
      return metrics.stage(i).throughput_per_s();
    });
  }
  const std::string g = prefix + ".graph.";
  reg.probe_counter(g + "pushed", [&metrics] { return metrics.pushed; });
  reg.probe_counter(g + "admitted", [&metrics] { return metrics.admitted; });
  reg.probe_counter(g + "admission_dropped",
                    [&metrics] { return metrics.admission_dropped; });
  reg.probe_counter(g + "completed", [&metrics] { return metrics.completed; });
  reg.probe_counter(g + "admission_peak", [&metrics] {
    return static_cast<std::uint64_t>(metrics.admission_peak);
  });
  reg.probe_counter(g + "degraded_spans",
                    [&metrics] { return metrics.degraded_spans; });
  reg.probe_counter(g + "degraded_dropped",
                    [&metrics] { return metrics.degraded_dropped; });
  reg.probe_counter(g + "recoveries",
                    [&metrics] { return metrics.recoveries; });
  reg.probe_counter(g + "degraded_ps", [&metrics] {
    return static_cast<std::uint64_t>(metrics.degraded_time.ps());
  });
  reg.probe_counter(g + "last_recovery_ps", [&metrics] {
    return static_cast<std::uint64_t>(metrics.last_recovery_time.ps());
  });
}

void attach_fault_plan(Registry& reg, net::FaultPlan& plan,
                       const std::string& prefix) {
  // Eager so the totals exist (as zeros) even when no fault ever fires.
  reg.counter(prefix + ".begins");
  reg.counter(prefix + ".ends");
  reg.probe_gauge(prefix + ".active", [&plan] {
    return static_cast<double>(plan.active_faults());
  });
  plan.add_observer([&reg, prefix](const net::FaultEvent& ev, bool active) {
    const std::string kind = net::to_string(ev.kind);
    reg.counter(prefix + (active ? ".begins" : ".ends")).add();
    reg.counter(prefix + "." + kind + (active ? ".begins" : ".ends")).add();
    reg.mark(prefix + "." + kind + "." + ev.target,
             active ? ev.at : ev.at + ev.duration, active);
  });
}

}  // namespace gtw::obs
