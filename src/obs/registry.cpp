#include "obs/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace gtw::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty())
    throw std::logic_error("obs: histogram needs at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::logic_error("obs: histogram bounds must be sorted ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::add(double x) {
  std::size_t i = 0;
  while (i < bounds_.size() && x > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += x;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      if (i >= bounds_.size()) return bounds_.back();  // overflow: clamp
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          (target - cum) / static_cast<double>(counts_[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum = next;
  }
  return bounds_.back();
}

Registry::Instrument& Registry::define(const std::string& name, Kind kind) {
  if (name.empty()) throw std::logic_error("obs: empty instrument name");
  auto [it, inserted] = instruments_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw std::logic_error("obs: instrument name collision on '" + name +
                           "' (existing kind differs)");
  }
  return it->second;
}

Counter& Registry::counter(const std::string& name) {
  Instrument& ins = define(name, Kind::kCounter);
  if (ins.counter_fn)
    throw std::logic_error("obs: '" + name + "' is a probe, not a counter");
  return ins.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  Instrument& ins = define(name, Kind::kGauge);
  if (ins.gauge_fn)
    throw std::logic_error("obs: '" + name + "' is a probe, not a gauge");
  return ins.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  Instrument& ins = define(name, Kind::kHistogram);
  if (!ins.hist) ins.hist = std::make_unique<Histogram>(std::move(bounds));
  return *ins.hist;
}

void Registry::probe_counter(const std::string& name,
                             std::function<std::uint64_t()> fn) {
  auto [it, inserted] = instruments_.try_emplace(name);
  if (!inserted)
    throw std::logic_error("obs: instrument name collision on '" + name +
                           "' (probe over existing instrument)");
  it->second.kind = Kind::kCounter;
  it->second.counter_fn = std::move(fn);
}

void Registry::probe_gauge(const std::string& name,
                           std::function<double()> fn) {
  auto [it, inserted] = instruments_.try_emplace(name);
  if (!inserted)
    throw std::logic_error("obs: instrument name collision on '" + name +
                           "' (probe over existing instrument)");
  it->second.kind = Kind::kGauge;
  it->second.gauge_fn = std::move(fn);
}

void Registry::mark(const std::string& name, des::SimTime t, bool begin) {
  marks_.push_back(Mark{t, name, begin});
}

bool Registry::contains(const std::string& name) const {
  return instruments_.find(name) != instruments_.end();
}

double Registry::read(const std::string& name) const {
  const auto it = instruments_.find(name);
  if (it == instruments_.end())
    throw std::out_of_range("obs: unknown instrument '" + name + "'");
  const Instrument& ins = it->second;
  switch (ins.kind) {
    case Kind::kCounter:
      return static_cast<double>(ins.counter_fn ? ins.counter_fn()
                                                : ins.counter.value());
    case Kind::kGauge:
      return ins.gauge_fn ? ins.gauge_fn() : ins.gauge.value();
    case Kind::kHistogram:
      return static_cast<double>(ins.hist->count());
  }
  return 0.0;
}

std::vector<Registry::Sample> Registry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(instruments_.size());
  for (const auto& [name, ins] : instruments_) {
    Sample s;
    s.name = name;
    s.kind = ins.kind;
    switch (ins.kind) {
      case Kind::kCounter:
        s.u = ins.counter_fn ? ins.counter_fn() : ins.counter.value();
        break;
      case Kind::kGauge:
        s.d = ins.gauge_fn ? ins.gauge_fn() : ins.gauge.value();
        s.is_float = true;
        break;
      case Kind::kHistogram:
        s.u = ins.hist->count();
        s.d = ins.hist->sum();
        s.hist = ins.hist.get();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace gtw::obs
