// Time-series sampling of Registry instruments on the DES clock.
//
// A TimeSeriesSampler snapshots a watched subset of instruments, either on
// demand (sample()) or periodically (sample_every), always at simulated
// time — no wall clock anywhere.  Periodic sampling needs an explicit
// horizon: the DES runs until its queue drains, so an unbounded periodic
// event would keep the simulation alive forever.
//
// Sampling is read-only (registry probes must not mutate simulation state),
// so attaching a sampler cannot change any simulation result; it only adds
// events to the scheduler, which shifts nothing because DES timestamps are
// absolute and ties between other events keep their relative order.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "des/scheduler.hpp"
#include "des/time.hpp"
#include "obs/registry.hpp"

namespace gtw::obs {

class TimeSeriesSampler {
 public:
  TimeSeriesSampler(des::Scheduler& sched, const Registry& reg)
      : sched_(&sched), reg_(&reg) {}

  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  // Add an instrument to the watch list (must already exist in the
  // registry).  Series keep watch order, so exports are stable.
  void watch(const std::string& name);
  // Watch every instrument whose name starts with `prefix` at call time
  // (instruments defined later are not picked up).
  void watch_prefix(const std::string& prefix);

  // Record one point per watched series at the current simulated time.
  void sample();

  // Sample now and then every `period` until `until` (inclusive start,
  // exclusive of points past the horizon).
  void sample_every(des::SimTime period, des::SimTime until);

  struct Series {
    std::string name;
    std::vector<std::pair<std::int64_t, double>> points;  // (t_ps, value)
  };
  const std::vector<Series>& series() const { return series_; }
  std::size_t samples_taken() const { return samples_; }

 private:
  void tick(des::SimTime period, des::SimTime until);

  des::Scheduler* sched_;
  const Registry* reg_;
  std::vector<Series> series_;
  std::size_t samples_ = 0;
};

}  // namespace gtw::obs
