// Simulation-wide observability registry (the profile half of the VAMPIR
// tooling the paper leans on in section 3 — "performance evaluation and
// tuning of metacomputing applications").
//
// A Registry is a hierarchy-by-naming-convention of instruments with dotted
// names ("net.link.fzj-gmd.tx_bytes", "tcp.conn0.retransmits",
// "fire.stage.motion.busy_ps").  Four instrument kinds:
//
//   Counter    monotone uint64 (events, bytes, drops); add() or set()
//   Gauge      instantaneous double (utilization, cwnd); set()
//   Histogram  explicit-bound distribution (delays); add()
//   probes     named read-only functions evaluated at snapshot/sample time,
//              so components expose state (queue depth, cwnd) without the
//              registry scheduling anything or the component storing one
//              more counter.
//
// Determinism contract: the registry never touches the scheduler, never
// reads wall-clock time, and iterates instruments in lexicographic name
// order (std::map), so a snapshot of the same simulation is byte-identical
// run to run and instrumentation cannot perturb the DES schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "des/time.hpp"

namespace gtw::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  // Absolute assignment, for bridging totals accumulated elsewhere.
  void set(std::uint64_t value) { value_ = value; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Distribution over explicit upper bounds: counts_[i] holds samples with
// value <= bounds_[i]; one extra overflow bucket collects the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void add(double x);
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& buckets() const { return counts_; }
  // Quantile estimate by linear interpolation inside the covering bucket
  // (the first bucket interpolates from 0, the overflow bucket clamps to
  // the top bound — an explicit-bound histogram knows nothing beyond it).
  // q in [0, 1]; returns 0 while the histogram is empty.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

// A begin/end event marker on the DES clock (fault begin/end, phase
// boundaries); exported as instant events in the Chrome trace.
struct Mark {
  des::SimTime t;
  std::string name;
  bool begin = true;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Define-or-fetch by dotted name.  Re-requesting an existing name with
  // the same kind returns the same instrument; requesting it with a
  // different kind (or shadowing a probe) throws std::logic_error — a name
  // collision is a wiring bug, not something to paper over.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  // Read-only probes: evaluated on every snapshot()/read(); must only read
  // simulation state (they run inside const snapshots and must not
  // schedule, mutate, or allocate observable state).
  void probe_counter(const std::string& name, std::function<std::uint64_t()> fn);
  void probe_gauge(const std::string& name, std::function<double()> fn);

  void mark(const std::string& name, des::SimTime t, bool begin);
  const std::vector<Mark>& marks() const { return marks_; }

  bool contains(const std::string& name) const;
  std::size_t size() const { return instruments_.size(); }

  // Scalar read of one instrument (counters widen to double); histograms
  // read as their sample count.  Throws std::out_of_range on unknown names.
  double read(const std::string& name) const;

  enum class Kind { kCounter, kGauge, kHistogram };

  struct Sample {
    std::string name;
    Kind kind = Kind::kCounter;
    std::uint64_t u = 0;       // counters
    double d = 0.0;            // gauges; histogram sum
    const Histogram* hist = nullptr;  // histogram detail (buckets)
    bool is_float = false;
  };

  // Stable-ordered (lexicographic by name) flattened view; probes are
  // evaluated in place.
  std::vector<Sample> snapshot() const;

 private:
  struct Instrument {
    Kind kind = Kind::kCounter;
    // Exactly one of these is live, matching `kind` (probe counters/gauges
    // store fn instead of the value).
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> hist;
    std::function<std::uint64_t()> counter_fn;
    std::function<double()> gauge_fn;
  };

  Instrument& define(const std::string& name, Kind kind);

  std::map<std::string, Instrument> instruments_;
  std::vector<Mark> marks_;
};

}  // namespace gtw::obs
