// Exporters: every metric and trace leaves the simulator through one of
// these, never through ad-hoc printf (enforced by the gtw-lint rule
// raw-metric-print).  Two output families:
//
//  - Chrome trace-event JSON (the format Perfetto and chrome://tracing
//    load): GTWT enter/leave pairs become B/E duration events per rank
//    (tid), send/recv pairs become flow arrows (ph s/f matched FIFO on
//    (src, dst, tag)), registry marks become instant events, and sampled
//    time series become counter tracks (ph C).
//  - stable-ordered JSON / CSV snapshots of a Registry and the long-format
//    time series a TimeSeriesSampler collected.
//
// All timestamps are simulated time.  Chrome `ts` is microseconds; we print
// it as <us>.<6 digits> with the fraction computed in integer picoseconds,
// so exports are byte-identical run to run (no double rounding anywhere on
// the time axis).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "trace/trace.hpp"

namespace gtw::obs {

struct ChromeTraceOptions {
  std::string process_name = "gtw";
  // Emit flow arrows for matched send/recv pairs.
  bool flow_arrows = true;
  // Optional extra tracks.
  const TimeSeriesSampler* series = nullptr;  // counter tracks (ph "C")
  const Registry* marks_from = nullptr;       // instant events (ph "i")
};

void write_chrome_trace(std::ostream& os, const trace::TraceRecorder& rec,
                        const ChromeTraceOptions& opts = {});

// {"label": ..., "metrics": {name: value, ...}, "histograms": {...},
//  "marks": [...]} — instruments in lexicographic name order.
void write_metrics_json(std::ostream& os, const Registry& reg,
                        const std::string& label = "");

// name,kind,value rows in lexicographic name order.
void write_metrics_csv(std::ostream& os, const Registry& reg);

// {"series": [{"name": ..., "points": [[t_ps, value], ...]}, ...]} in watch
// order.
void write_series_json(std::ostream& os, const TimeSeriesSampler& sampler);

// series,t_ps,value rows, series in watch order, points in time order.
void write_series_csv(std::ostream& os, const TimeSeriesSampler& sampler);

}  // namespace gtw::obs
