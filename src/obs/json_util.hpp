// Tiny JSON output helpers shared by the obs exporters (exporter.cpp,
// span_analysis.cpp).  Header-only on purpose: both users are inside
// gtw_obs and the functions are two lines of formatting each.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

namespace gtw::obs::detail {

// JSON string escape (control characters, quote, backslash).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Chrome `ts` is microseconds.  1 us == 1'000'000 ps, so the 6-digit
// fraction below is the picosecond remainder verbatim: exact integer
// formatting, byte-identical run to run.
inline std::string ts_us(std::int64_t ps) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%06" PRId64, ps / 1'000'000,
                ps % 1'000'000);
  return buf;
}

}  // namespace gtw::obs::detail
