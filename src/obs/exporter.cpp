#include "obs/exporter.hpp"

#include <cstdio>
#include <deque>
#include <map>
#include <ostream>
#include <tuple>

#include "obs/json_util.hpp"

namespace gtw::obs {

namespace {

using detail::json_escape;
using detail::ts_us;

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const trace::TraceRecorder& rec,
                        const ChromeTraceOptions& opts) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << line;
  };

  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
       "\"args\":{\"name\":\"" + json_escape(opts.process_name) + "\"}}");
  for (int r = 0; r < rec.ranks(); ++r) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
         std::to_string(r) + ",\"args\":{\"name\":\"rank " +
         std::to_string(r) + "\"}}");
  }

  // FIFO matcher for flow arrows: sends and receipts pair up per
  // (src rank, dst rank, tag) in order, which is exactly the in-order
  // delivery the simulated transports provide.
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
           std::deque<std::uint64_t>>
      in_flight;
  std::uint64_t next_flow_id = 1;

  for (const trace::TraceEvent& e : rec.events()) {
    const std::string ts = ts_us(e.time_ps);
    const std::string tid = std::to_string(e.rank);
    switch (e.kind) {
      case trace::EventKind::kEnter:
        emit("{\"name\":\"" + json_escape(rec.state_name(e.id)) +
             "\",\"ph\":\"B\",\"pid\":0,\"tid\":" + tid + ",\"ts\":" + ts +
             "}");
        break;
      case trace::EventKind::kLeave:
        emit("{\"name\":\"" + json_escape(rec.state_name(e.id)) +
             "\",\"ph\":\"E\",\"pid\":0,\"tid\":" + tid + ",\"ts\":" + ts +
             "}");
        break;
      case trace::EventKind::kSend: {
        if (!opts.flow_arrows) break;
        const std::uint64_t id = next_flow_id++;
        in_flight[{e.rank, e.id, e.tag}].push_back(id);
        emit("{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"s\",\"pid\":0,"
             "\"tid\":" + tid + ",\"ts\":" + ts + ",\"id\":" +
             std::to_string(id) + ",\"args\":{\"tag\":" +
             std::to_string(e.tag) + ",\"bytes\":" + std::to_string(e.bytes) +
             "}}");
        break;
      }
      case trace::EventKind::kRecv: {
        if (!opts.flow_arrows) break;
        const auto key = std::make_tuple(e.id, e.rank, e.tag);
        const auto it = in_flight.find(key);
        if (it == in_flight.end() || it->second.empty()) break;  // unmatched
        const std::uint64_t id = it->second.front();
        it->second.pop_front();
        emit("{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\","
             "\"pid\":0,\"tid\":" + tid + ",\"ts\":" + ts + ",\"id\":" +
             std::to_string(id) + ",\"args\":{\"tag\":" +
             std::to_string(e.tag) + ",\"bytes\":" + std::to_string(e.bytes) +
             "}}");
        break;
      }
    }
  }

  if (opts.marks_from != nullptr) {
    for (const Mark& m : opts.marks_from->marks()) {
      emit("{\"name\":\"" + json_escape(m.name) +
           "\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":" +
           ts_us(m.t.ps()) + ",\"args\":{\"phase\":\"" +
           (m.begin ? "begin" : "end") + "\"}}");
    }
  }

  if (opts.series != nullptr) {
    for (const TimeSeriesSampler::Series& s : opts.series->series()) {
      const std::string name = json_escape(s.name);
      for (const auto& [t_ps, value] : s.points) {
        emit("{\"name\":\"" + name + "\",\"ph\":\"C\",\"pid\":0,\"ts\":" +
             ts_us(t_ps) + ",\"args\":{\"value\":" + fmt_double(value) +
             "}}");
      }
    }
  }

  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_metrics_json(std::ostream& os, const Registry& reg,
                        const std::string& label) {
  const auto snap = reg.snapshot();
  os << "{\n  \"label\": \"" << json_escape(label) << "\",\n  \"metrics\": {";
  bool first = true;
  for (const Registry::Sample& s : snap) {
    if (s.kind == Registry::Kind::kHistogram) continue;
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(s.name) << "\": ";
    if (s.is_float)
      os << fmt_double(s.d);
    else
      os << s.u;
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const Registry::Sample& s : snap) {
    if (s.kind != Registry::Kind::kHistogram) continue;
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(s.name)
       << "\": {\"count\": " << s.hist->count()
       << ", \"sum\": " << fmt_double(s.hist->sum()) << ", \"bounds\": [";
    for (std::size_t i = 0; i < s.hist->bounds().size(); ++i)
      os << (i ? ", " : "") << fmt_double(s.hist->bounds()[i]);
    os << "], \"buckets\": [";
    for (std::size_t i = 0; i < s.hist->buckets().size(); ++i)
      os << (i ? ", " : "") << s.hist->buckets()[i];
    os << "], \"p50\": " << fmt_double(s.hist->quantile(0.50))
       << ", \"p90\": " << fmt_double(s.hist->quantile(0.90))
       << ", \"p99\": " << fmt_double(s.hist->quantile(0.99)) << "}";
    first = false;
  }
  os << "\n  },\n  \"marks\": [";
  first = true;
  for (const Mark& m : reg.marks()) {
    os << (first ? "\n" : ",\n") << "    {\"t_ps\": " << m.t.ps()
       << ", \"name\": \"" << json_escape(m.name) << "\", \"phase\": \""
       << (m.begin ? "begin" : "end") << "\"}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

void write_metrics_csv(std::ostream& os, const Registry& reg) {
  os << "name,kind,value\n";
  for (const Registry::Sample& s : reg.snapshot()) {
    switch (s.kind) {
      case Registry::Kind::kCounter:
        os << s.name << ",counter," << s.u << "\n";
        break;
      case Registry::Kind::kGauge:
        os << s.name << ",gauge," << fmt_double(s.d) << "\n";
        break;
      case Registry::Kind::kHistogram:
        os << s.name << ",histogram_count," << s.u << "\n";
        os << s.name << ",histogram_p50," << fmt_double(s.hist->quantile(0.50))
           << "\n";
        os << s.name << ",histogram_p90," << fmt_double(s.hist->quantile(0.90))
           << "\n";
        os << s.name << ",histogram_p99," << fmt_double(s.hist->quantile(0.99))
           << "\n";
        break;
    }
  }
}

void write_series_json(std::ostream& os, const TimeSeriesSampler& sampler) {
  os << "{\n  \"series\": [";
  bool first = true;
  for (const TimeSeriesSampler::Series& s : sampler.series()) {
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << json_escape(s.name)
       << "\", \"points\": [";
    for (std::size_t i = 0; i < s.points.size(); ++i) {
      os << (i ? ", " : "") << "[" << s.points[i].first << ", "
         << fmt_double(s.points[i].second) << "]";
    }
    os << "]}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

void write_series_csv(std::ostream& os, const TimeSeriesSampler& sampler) {
  os << "series,t_ps,value\n";
  for (const TimeSeriesSampler::Series& s : sampler.series())
    for (const auto& [t_ps, value] : s.points)
      os << s.name << "," << t_ps << "," << fmt_double(value) << "\n";
}

}  // namespace gtw::obs
