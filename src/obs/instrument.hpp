// Instrumentation bridges: wire the simulator's components into an
// obs::Registry without those components depending on obs.
//
// Two attachment styles, both passive:
//
//  - instrument_* register read-only probes (evaluated at snapshot/sample
//    time) over a live component's existing accessors — the component is
//    observed, never modified, and nothing is scheduled, so attaching
//    instrumentation cannot perturb the DES schedule or any result;
//  - bridge_* copy values that only exist as aggregates (per-peer traffic,
//    per-stage totals discovered during the run) into counters, and are
//    called once before export.
//
// attach_fault_plan is the one active hook: it registers a FaultPlan
// observer that counts begin/end transitions and drops a Mark per
// transition so outages show up as instant events in the Chrome trace.
//
// Lifetime: probes capture references; the instrumented component must
// outlive the Registry (or at least every snapshot taken from it).
#pragma once

#include <string>

#include "flow/metrics.hpp"
#include "meta/communicator.hpp"
#include "net/atm.hpp"
#include "net/fault.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "net/tcp.hpp"
#include "obs/registry.hpp"

namespace gtw::obs {

// des.sched.{events_executed,live_events,calendar_buckets,overflow_entries,
// bucket_high_water,overflow_high_water,calendar_resizes,pool_slots,
// pool_in_use,pool_high_water,pool_slabs,events_per_sim_s}.  The engine-core
// dashboard: calendar occupancy says whether the bucket-width estimate fits
// the workload, pool high-water is the event-record footprint, and
// events_per_sim_s (executed events per *simulated* second — deterministic,
// unlike a wall-clock rate) tracks how event-dense the scenario is.
void instrument_scheduler(Registry& reg, const des::Scheduler& sched,
                          const std::string& prefix = "des.sched");

// net.link.<name>.{tx_frames,tx_bytes,drops,dropped_bytes,corrupted_frames,
// outage_drops,queue_bytes,queue_mean_bytes,utilization} plus, on fluid
// links, {bursts_completed,burst_pool_slots,burst_pool_high_water}; pass
// `prefix` to override the default "net.link.<name>" (the ATM switch
// instruments its port links under its own hierarchy).
void instrument_link(Registry& reg, const net::Link& link,
                     const std::string& prefix = "");

// net.host.<name>.{packets_sent,packets_received,packets_forwarded,
// unroutable_drops,outage_drops,up}
void instrument_host(Registry& reg, const net::Host& host);

// net.atm.<name>.unroutable_drops plus every egress port's link under
// net.atm.<name>.port<i>.* — the switch-buffer visibility the testbed
// operators lacked when the shared ASX-4000 buffers were squeezed.
void instrument_atm_switch(Registry& reg, net::AtmSwitch& sw);

// tcp.<name>.<side>.{cwnd_bytes,ssthresh_bytes,srtt_ms,rto_ms,segments_sent,
// acks_sent,bytes_acked,retransmits,fast_retransmits,timeouts,dup_acks,
// dup_segments_received,max_ooo_bytes} for side 0 and 1.
void instrument_tcp(Registry& reg, const net::TcpConnection& conn,
                    const std::string& name);

// meta.<name>.{messages_sent,bytes_sent,wan_retries,duplicates_suppressed,
// unreachable_reports,dropped_after_unreachable}
void instrument_communicator(Registry& reg, const meta::Communicator& comm,
                             const std::string& name);

// meta.path.<name>.side<s>.{messages,bytes,chunks,chunk_resends,
// duplicate_chunks,stream_resets,paced_delays,delivered_messages,
// delivered_bytes,reassembly_bytes,reassembly_peak_bytes,goodput_mbps}
// per sending side, meta.path.<name>.side<s>.stream<i>.{chunks,bytes,resets,
// tcp_retransmits,tcp_timeouts} per pooled stream, and path-wide
// {active_streams,stream_window_bytes} gauges from the adaptive controller.
// Probes are registered for the connection pool present at call time.
void instrument_path_transport(Registry& reg, const meta::PathTransport& path,
                               const std::string& name);

// meta.<name>.peer.<src>_to_<dst>.{messages,bytes,retries} for every rank
// pair that exchanged point-to-point traffic; call after (or late in) the
// run, before exporting.
void bridge_communicator_peers(Registry& reg, const meta::Communicator& comm,
                               const std::string& name);

// <prefix>.stage.<stage>.{items_in,items_out,dropped,queue_depth,queue_peak,
// busy_ps,occupancy,throughput_per_s} per stage present at call time, plus
// <prefix>.graph.{pushed,admitted,admission_dropped,completed,admission_peak,
// degraded_spans,degraded_dropped,recoveries,degraded_ps,last_recovery_ps}.
void bridge_flow_metrics(Registry& reg, const flow::MetricsRegistry& metrics,
                         const std::string& prefix);

// Counts fault begin/end transitions per kind under <prefix>.* , probes the
// number of currently active faults, and records a Mark per transition.
void attach_fault_plan(Registry& reg, net::FaultPlan& plan,
                       const std::string& prefix = "fault");

}  // namespace gtw::obs
