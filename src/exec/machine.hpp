// Parallel-machine execution model.
//
// This host has one CPU core, and 1999-era supercomputers cannot be timed
// with wall clocks anyway, so FIRE's kernels run *functionally* (real
// numerics on real data, correctness-testable) while their *time* on a
// target machine is charged from a calibrated cost model: parallelisable
// work divided over PEs, a serial fraction, halo exchanges and tree-shaped
// reductions on the machine's interconnect.  The T3E-600 profile is
// calibrated so that the FIRE module costs reproduce Table 1 of the paper;
// the scaling *shape* (Amdahl flattening of filter/motion, near-linear RVO)
// then follows from the decomposition, not from fitting each row.
#pragma once

#include <cstdint>
#include <string>

#include "des/time.hpp"
#include "units/units.hpp"

namespace gtw::exec {

struct MachineProfile {
  std::string name;
  int max_pes = 1;
  // Effective sustained rate per PE on this kind of code (not peak flops:
  // the paper's kernels are memory-bound; T3E-600 sustained ~46 Mop/s).
  units::OpRate pe_rate = units::OpRate::per_sec(46e6);
  // Interconnect: per-message latency and per-PE link bandwidth.  The link
  // bandwidth is a memory-system figure and therefore a *byte* rate — the
  // type is what keeps it from ever being mistaken for the bit rates the
  // net layer speaks (the old field was named link_bandwidth_Bps).
  des::SimTime msg_latency = des::SimTime::microseconds(10);
  units::ByteRate link_bandwidth = units::ByteRate::per_sec(300e6);
  // Fixed per-parallel-region overhead (work distribution, barrier entry).
  des::SimTime region_overhead = des::SimTime::microseconds(50);
  // Per-participating-PE coordination cost (work descriptors and result
  // collection are handled sequentially by the RPC-style delegation the
  // paper's FIRE implementation used); this is what makes the measured
  // times creep back up between 128 and 256 PEs in Table 1.
  des::SimTime per_pe_overhead = des::SimTime::zero();

  static MachineProfile t3e600();
  static MachineProfile t3e1200();
  static MachineProfile t90();
  static MachineProfile sp2();
  static MachineProfile onyx2();
  static MachineProfile workstation();
};

// Work content of one parallel kernel invocation.
struct WorkEstimate {
  units::Ops parallel_ops;     // perfectly decomposable operations
  units::Ops serial_ops;       // non-decomposable (parameter solve, control)
  units::Bytes halo_bytes;     // bytes exchanged with neighbours per PE
  int halo_exchanges = 0;        // messages per PE per invocation
  int reductions = 0;            // global tree reductions per invocation
  // Decomposition granularity: slab-decomposed kernels (the spatial filters
  // and the motion correction work per slice) cannot use more PEs than
  // there are slices; 0 means voxel-level decomposition (unbounded).
  int max_parallelism = 0;

  WorkEstimate& operator+=(const WorkEstimate& o);
};

// Time for `work` on `pes` processing elements of `m`.
des::SimTime time_on(const MachineProfile& m, const WorkEstimate& work,
                     int pes);

}  // namespace gtw::exec
