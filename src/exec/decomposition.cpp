#include "exec/decomposition.hpp"

namespace gtw::exec {

std::vector<Slab> slab_decomposition(int nz, int pes) {
  std::vector<Slab> out;
  out.reserve(static_cast<std::size_t>(pes));
  const int base = nz / pes;
  const int extra = nz % pes;
  int z = 0;
  for (int p = 0; p < pes; ++p) {
    const int len = base + (p < extra ? 1 : 0);
    out.push_back(Slab{z, z + len, p});
    z += len;
  }
  return out;
}

std::vector<VoxelRange> voxel_decomposition(std::size_t voxels, int pes) {
  std::vector<VoxelRange> out;
  out.reserve(static_cast<std::size_t>(pes));
  const std::size_t base = voxels / static_cast<std::size_t>(pes);
  const std::size_t extra = voxels % static_cast<std::size_t>(pes);
  std::size_t begin = 0;
  for (int p = 0; p < pes; ++p) {
    const std::size_t len = base + (static_cast<std::size_t>(p) < extra ? 1 : 0);
    out.push_back(VoxelRange{begin, begin + len, p});
    begin += len;
  }
  return out;
}

}  // namespace gtw::exec
