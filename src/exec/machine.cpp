#include "exec/machine.hpp"

#include <algorithm>
#include <cmath>

namespace gtw::exec {

MachineProfile MachineProfile::t3e600() {
  // 512-node Cray T3E-600 in Jülich (300 MHz Alpha 21164).  The effective
  // per-PE rate is calibrated against Table 1 of the paper (RVO at 1 PE =
  // 109.27 s for the work estimate of a 64x64x16 image).
  return MachineProfile{"Cray T3E-600", 512, units::OpRate::per_sec(46e6),
                        des::SimTime::microseconds(8),
                        units::ByteRate::per_sec(300e6),
                        des::SimTime::microseconds(60),
                        des::SimTime::microseconds(150)};
}

MachineProfile MachineProfile::t3e1200() {
  // The 1998 upgrade machine: 600 MHz PEs, faster links.
  return MachineProfile{"Cray T3E-1200", 512, units::OpRate::per_sec(92e6),
                        des::SimTime::microseconds(6),
                        units::ByteRate::per_sec(350e6),
                        des::SimTime::microseconds(50),
                        des::SimTime::microseconds(100)};
}

MachineProfile MachineProfile::t90() {
  // 10-processor vector machine: few, very fast PEs, flat shared memory.
  return MachineProfile{"Cray T90", 10, units::OpRate::per_sec(450e6),
                        des::SimTime::microseconds(2),
                        units::ByteRate::per_sec(1200e6),
                        des::SimTime::microseconds(20)};
}

MachineProfile MachineProfile::sp2() {
  // IBM SP2 in Sankt Augustin; microchannel I/O limits its network path
  // (modelled at the Host level), compute per node is P2SC-class.
  return MachineProfile{"IBM SP2", 64, units::OpRate::per_sec(60e6),
                        des::SimTime::microseconds(30),
                        units::ByteRate::per_sec(40e6),
                        des::SimTime::microseconds(80),
                        des::SimTime::microseconds(250)};
}

MachineProfile MachineProfile::onyx2() {
  // 12-processor SGI Onyx 2 visualization server at the GMD.
  return MachineProfile{"SGI Onyx 2", 12, units::OpRate::per_sec(80e6),
                        des::SimTime::microseconds(3),
                        units::ByteRate::per_sec(600e6),
                        des::SimTime::microseconds(30)};
}

MachineProfile MachineProfile::workstation() {
  // Single-CPU UNIX workstation (the RT-client host).
  return MachineProfile{"workstation", 1, units::OpRate::per_sec(55e6),
                        des::SimTime::microseconds(1),
                        units::ByteRate::per_sec(100e6),
                        des::SimTime::zero()};
}

WorkEstimate& WorkEstimate::operator+=(const WorkEstimate& o) {
  parallel_ops += o.parallel_ops;
  serial_ops += o.serial_ops;
  halo_bytes += o.halo_bytes;
  halo_exchanges += o.halo_exchanges;
  reductions += o.reductions;
  return *this;
}

des::SimTime time_on(const MachineProfile& m, const WorkEstimate& work,
                     int pes) {
  pes = std::clamp(pes, 1, m.max_pes);
  // Effective parallelism is capped by the kernel's decomposition grain.
  const int eff = work.max_parallelism > 0
      ? std::min(pes, work.max_parallelism)
      : pes;
  const double compute_s =
      work.parallel_ops / (m.pe_rate * static_cast<double>(eff)) +
      work.serial_ops / m.pe_rate;

  des::SimTime comm = des::SimTime::zero();
  if (pes > 1) {
    comm += m.per_pe_overhead * pes;
    // Halo exchange: latency per message + bytes at link bandwidth.
    comm += m.msg_latency * work.halo_exchanges;
    comm += units::transmission_time(work.halo_bytes,
                                     m.link_bandwidth.to_bit_rate());
    // Tree reductions: ceil(log2 P) latency steps each.
    const int depth =
        static_cast<int>(std::ceil(std::log2(static_cast<double>(pes))));
    comm += m.msg_latency * (work.reductions * depth);
    comm += m.region_overhead;
  }
  return des::SimTime::seconds(compute_s) + comm;
}

}  // namespace gtw::exec
