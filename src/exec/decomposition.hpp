// Domain decomposition helpers.  FIRE distributes the brain volume over the
// T3E PEs ("using a domain decomposition of the brain"); the slab variant
// splits along z (what slice-wise kernels use), the block variant tiles all
// three axes (what voxel-level kernels use).
#pragma once

#include <cstddef>
#include <vector>

namespace gtw::exec {

struct Slab {
  int z_begin = 0;
  int z_end = 0;  // exclusive
  int owner = 0;
};

// Split `nz` slices over `pes` as evenly as possible (earlier PEs get the
// remainder).  PEs beyond nz receive empty slabs.
std::vector<Slab> slab_decomposition(int nz, int pes);

struct VoxelRange {
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive
  int owner = 0;
};

// Split a flat voxel index space evenly over `pes`.
std::vector<VoxelRange> voxel_decomposition(std::size_t voxels, int pes);

}  // namespace gtw::exec
