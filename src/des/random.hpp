// Deterministic PRNG for the simulator: xoshiro256** seeded via SplitMix64.
// Not std::mt19937 because we want a documented, header-stable algorithm whose
// streams are identical across standard libraries — reproduction runs must be
// bit-identical everywhere.
#pragma once

#include <array>
#include <cstdint>

namespace gtw::des {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derive an independent child stream (used to give every traffic source
  // its own stream so adding a source never perturbs another's draws).
  Rng fork();

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n);
  // Standard normal via Box-Muller (cached second deviate).
  double normal();
  double normal(double mean, double sigma);
  // Exponential with given mean.
  double exponential(double mean);
  // Bernoulli trial.
  bool bernoulli(double p);

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace gtw::des
