// Small-buffer-optimized, move-only callable for DES event records.
//
// The scheduler fires millions of events per simulated second; wrapping each
// one in std::function costs a heap allocation whenever the capture exceeds
// the library's tiny inline buffer (16 bytes on libstdc++ — a captured Frame
// alone is ~100).  Action inlines captures up to kInlineBytes into the event
// record itself, so the common simulator callables (a frame in flight, a
// packet plus its route, a retransmit timer) are stored allocation-free
// inside the pooled event slot.  Larger callables fall back to one heap
// allocation, exactly like std::function — the type is a superset, not a
// restriction: it also accepts move-only captures std::function rejects.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace gtw::des {

class Action {
 public:
  // Sized so every per-packet callable in src/net stays inline: the largest
  // (link propagation delivering a Frame with an inlined TCP header) is
  // ~112 bytes.  Growing a capture past this silently costs one allocation
  // per event — keep hot-path lambdas lean instead of growing the buffer.
  static constexpr std::size_t kInlineBytes = 120;

  Action() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Action> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Action(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  Action(Action&& other) noexcept { move_from(other); }
  Action& operator=(Action&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;
  ~Action() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct into `dst` from `src`, then destroy `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* dst, void* src) noexcept {
        Fn** from = std::launder(reinterpret_cast<Fn**>(src));
        ::new (dst) Fn*(*from);  // the pointer itself is trivially destructible
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<Fn**>(s)); },
  };

  void move_from(Action& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace gtw::des
