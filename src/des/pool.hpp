// Deterministic slab pool: fixed-size slots carved from append-only slabs,
// recycled through a LIFO free list.
//
// Why not the global heap: a per-cell WAN simulation allocates and frees an
// event or packet record every few hundred nanoseconds of wall time, and
// malloc churn (plus the cache misses of scattered records) dominates the
// hot path.  Slabs keep records dense, the free list keeps reuse in LIFO
// (cache-warm) order, and — because allocation order is a pure function of
// the simulation — slot assignment is identical run to run, so pooling
// cannot perturb the determinism contract.  Slabs are never returned to the
// OS mid-run: the pool's high-water mark is the workload's, and steady-state
// simulation triggers zero allocations.
//
// Objects are default-constructed once per slot and *reused without
// destruction* on release/acquire (the caller resets state; containers keep
// their capacity — that is the point).  Destruction happens when the pool
// itself dies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "des/check_hook.hpp"

namespace gtw::des {

template <typename T, std::size_t kSlabSlots = 1024>
class SlabPool {
 public:
  using Index = std::uint32_t;
  static constexpr Index kInvalid = 0xffffffffU;

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  // Take a slot (recycled LIFO, or freshly carved from a new slab).
  Index acquire() {
    if (!free_.empty()) {
      const Index idx = free_.back();
      free_.pop_back();
      ++in_use_;
#if defined(GTW_CHECK)
      check_live_[idx] = true;
#endif
      return idx;
    }
    if (next_slot_ == slabs_.size() * kSlabSlots)
      slabs_.push_back(std::make_unique<T[]>(kSlabSlots));
    const Index idx = static_cast<Index>(next_slot_++);
    ++in_use_;
    if (in_use_ > high_water_) high_water_ = in_use_;
#if defined(GTW_CHECK)
    check_live_.resize(next_slot_);
    check_live_[idx] = true;
#endif
    return idx;
  }

  void release(Index idx) {
#if defined(GTW_CHECK)
    // Double (or wild) release would push a duplicate onto the free list
    // and hand the same slot to two owners — the slab-pool analogue of
    // heap double-free.  Count it and refuse the corrupting push so the
    // run can finish and report.
    if (idx >= next_slot_ || !check_live_[idx]) {
      ++check_double_frees_;
      return;
    }
    check_live_[idx] = false;
#endif
    --in_use_;
    free_.push_back(idx);
  }

  T& operator[](Index idx) {
    return slabs_[idx / kSlabSlots][idx % kSlabSlots];
  }
  const T& operator[](Index idx) const {
    return slabs_[idx / kSlabSlots][idx % kSlabSlots];
  }

  std::size_t in_use() const { return in_use_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t slots() const { return slabs_.size() * kSlabSlots; }
  std::size_t slabs() const { return slabs_.size(); }

#if defined(GTW_CHECK)
  // GTW-San accounting (check::attach_pool): releases refused because the
  // slot was already free.  in_use() != 0 at end of run is the matching
  // leak census — every acquire must meet its release before teardown.
  std::uint64_t check_double_frees() const { return check_double_frees_; }
#endif

 private:
  std::vector<std::unique_ptr<T[]>> slabs_;
  std::vector<Index> free_;
  std::size_t next_slot_ = 0;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
#if defined(GTW_CHECK)
  std::vector<bool> check_live_;  // per carved slot: currently acquired?
  std::uint64_t check_double_frees_ = 0;
#endif
};

}  // namespace gtw::des
