#include "des/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gtw::des {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0) {}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    ++bins_[static_cast<std::size_t>((x - lo_) / bin_width_)];
  }
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cum + static_cast<double>(bins_[i]);
    if (next >= target && bins_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(bins_[i]);
      return lo_ + (static_cast<double>(i) + frac) * bin_width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::to_string(int width) const {
  std::string out;
  const std::uint64_t peak = *std::max_element(bins_.begin(), bins_.end());
  if (peak == 0) return "(empty histogram)\n";
  char line[160];
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    const int bar = static_cast<int>(
        static_cast<double>(bins_[i]) / static_cast<double>(peak) * width);
    std::snprintf(line, sizeof line, "%12.4g |%-*s %llu\n",
                  lo_ + static_cast<double>(i) * bin_width_, width,
                  std::string(static_cast<std::size_t>(bar), '#').c_str(),
                  static_cast<unsigned long long>(bins_[i]));
    out += line;
  }
  return out;
}

void TimeWeighted::update(SimTime now, double new_value) {
  if (!started_) {
    started_ = true;
    start_ = now;
  } else {
    weighted_sum_ += value_ * (now - last_).sec();
  }
  last_ = now;
  value_ = new_value;
}

double TimeWeighted::average(SimTime now) const {
  if (!started_) return 0.0;
  const double span = (now - start_).sec();
  if (span <= 0.0) return value_;
  const double sum = weighted_sum_ + value_ * (now - last_).sec();
  return sum / span;
}

}  // namespace gtw::des
