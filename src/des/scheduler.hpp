// Deterministic discrete-event scheduler on a calendar queue.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), so a simulation run is a pure
// function of its inputs and seeds — a property the reproduction tests rely
// on when comparing repeated runs.
//
// Engine layout (DESIGN.md §10): event records live in a slab pool
// (des/pool.hpp) and carry their callable inline (des/action.hpp), so the
// steady-state schedule/fire cycle performs no heap allocation.  The queue
// itself is a calendar: the current "day" is split into power-of-two-width
// buckets, each a small min-heap ordered by (timestamp, seq); events beyond
// the day wait in a ladder-style overflow heap and are redistributed when
// their day arrives.  The table auto-resizes (bucket count tracks the live
// event count, bucket width tracks the observed inter-event gap), giving
// O(1) amortized schedule/fire against the vector-heap's O(log n) — the
// difference between thousands and millions of concurrent flows.
#pragma once

#include <cstdint>
#include <vector>

#include "des/action.hpp"
#include "des/check_hook.hpp"
#include "des/pool.hpp"
#include "des/span_hook.hpp"
#include "des/time.hpp"

namespace gtw::des {

class Scheduler;

// Cancellable handle to a scheduled event.  Default-constructed handles are
// inert; cancelling an already-fired event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel();
  bool pending() const;

 private:
  friend class Scheduler;
  EventHandle(Scheduler* s, std::uint64_t seq, std::uint32_t slot)
      : sched_(s), seq_(seq), slot_(slot) {}
  Scheduler* sched_ = nullptr;
  std::uint64_t seq_ = 0;
  std::uint32_t slot_ = 0xffffffffU;
};

class Scheduler {
 public:
  using Action = des::Action;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler() = default;

  SimTime now() const { return now_; }

  // Schedule `action` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(SimTime when, Action action);
  // Schedule `action` `delay` after the current time.
  EventHandle schedule_after(SimTime delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  // Run until the event queue drains or `horizon` is reached, whichever is
  // first.  Returns the number of events executed.
  std::uint64_t run(SimTime horizon = SimTime::max());

  // Execute at most one event; returns false if the queue was empty or the
  // next event lies beyond `horizon`.
  bool step(SimTime horizon = SimTime::max());

  bool empty() const { return live_events_ == 0; }
  std::uint64_t events_executed() const { return executed_; }
  // Running FNV-1a hash over the executed event stream — each fired event
  // folds in its (timestamp, sequence) pair.  Two executions of the same
  // simulation must report identical hashes; the determinism regression
  // tests and the double-run replay gate compare exactly this.
  std::uint64_t stream_hash() const { return stream_hash_; }
  // Queue entries including cancelled ones not yet swept/popped — lets tests
  // observe that cancellation churn does not accumulate garbage.
  std::size_t queued_entries() const { return calendar_size_ + overflow_.size(); }
  std::size_t cancelled_entries() const { return cancelled_in_q_; }

  // --- engine observability (read-only; wired up by obs::instrument_scheduler)
  std::size_t live_events() const { return live_events_; }
  std::size_t calendar_buckets() const { return buckets_.size(); }
  std::size_t overflow_entries() const { return overflow_.size(); }
  // Most entries any single bucket ever held (tombstones included).
  std::size_t bucket_high_water() const { return bucket_high_water_; }
  std::size_t overflow_high_water() const { return overflow_high_water_; }
  std::uint64_t calendar_resizes() const { return resizes_; }
  // Event-pool footprint: slots allocated, currently live, and the peak.
  std::size_t pool_slots() const { return pool_.slots(); }
  std::size_t pool_in_use() const { return pool_.in_use(); }
  std::size_t pool_high_water() const { return pool_.high_water(); }
  std::size_t pool_slabs() const { return pool_.slabs(); }

  // GTW-San (check::attach_scheduler): observe schedule/fire/cancel in
  // event order.  The hook must outlive the scheduler or be detached with
  // nullptr first; it is notification-only and never steers the schedule.
  // The slot exists in every build; the notifying call sites are
  // GTW_CHECK_HOOK-guarded and compile away when checking is off.
  void set_check_hook(SchedulerCheckHook* hook) { check_hook_ = hook; }

  // Causal tracing (obs::SpanTracer, DESIGN.md §13): observe schedule/
  // fire/cancel so trace context propagates through continuation chains.
  // Present in every build; a null hook costs one branch per site.  The
  // hook must outlive the scheduler or be detached with nullptr first; it
  // observes only and never steers the schedule.
  void set_span_hook(SpanHook* hook) { span_hook_ = hook; }
  SpanHook* span_hook() const { return span_hook_; }
#if defined(GTW_CHECK)
  std::uint64_t pool_double_frees() const {
    return pool_.check_double_frees();
  }
#endif

 private:
  friend class EventHandle;

  struct Entry {
    SimTime when;
    std::uint64_t seq = 0;  // 0 while the slot is free
    Action action;
    bool cancelled = false;
  };
  using EventId = std::uint32_t;

  // Queue item: the ordering key is carried inline so heap sifts and the
  // rebuild sort compare contiguous 24-byte items instead of chasing the
  // pool — on deep tiers the pointer chase is pure cache-miss traffic.
  struct QItem {
    SimTime when;
    std::uint64_t seq;
    EventId id;
  };

  // Min-first comparison for heap use (std::push_heap keeps the *largest*
  // in front under operator<, so "later" ordering yields earliest-first).
  static bool later(const QItem& a, const QItem& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  void cancel(std::uint64_t seq, EventId slot);
  bool is_pending(std::uint64_t seq, EventId slot) const;

  std::uint64_t day_of(SimTime t) const {
    return static_cast<std::uint64_t>(t.ps()) >>
           (width_shift_ + bucket_shift_);
  }
  std::size_t bucket_of(SimTime t) const {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(t.ps()) >> width_shift_) &
        ((std::size_t{1} << bucket_shift_) - 1));
  }

  void place(QItem it);             // route an entry to its bucket/overflow
  void push_bucket(std::size_t b, QItem it);
  void pop_bucket(std::size_t b);   // pop the top item (heap pop, no release)
  void release_entry(EventId id);
  // Position the queue so the globally earliest live event is the top of
  // buckets_[scan_idx_]; returns it (requires live_events_ > 0).  Advances
  // days and redistributes overflow as a side effect — which is invisible:
  // it never changes the (time, seq) execution order.
  QItem find_next();
  void drop_all_tombstones();
  void sweep_cancelled();
  void maybe_resize();
  void rebuild(unsigned new_bucket_shift);

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t stream_hash_ = 14695981039346656037ULL;  // FNV-1a offset

  std::size_t live_events_ = 0;    // scheduled, not yet fired or cancelled
  std::size_t cancelled_in_q_ = 0; // tombstones still occupying queue slots
  std::size_t calendar_size_ = 0;  // ids stored across buckets_ (incl. tombstones)

  // Calendar geometry.  Bucket width and day length are powers of two of
  // picoseconds so event->bucket mapping is two shifts and a mask; the
  // absolute alignment makes day indices stable under resize.
  unsigned width_shift_ = 20;  // 2^20 ps ~ 1 us buckets initially
  unsigned bucket_shift_ = 6;  // 64 buckets initially
  std::uint64_t current_day_ = 0;
  std::size_t scan_idx_ = 0;  // next bucket to examine within the day

  SlabPool<Entry, 1024> pool_;
  std::vector<std::vector<QItem>> buckets_ =
      std::vector<std::vector<QItem>>(64);
  std::vector<QItem> overflow_;  // min-heap of beyond-the-day events
  std::vector<QItem> rebuild_scratch_;

  std::size_t bucket_high_water_ = 0;
  std::size_t overflow_high_water_ = 0;
  std::uint64_t resizes_ = 0;
  SchedulerCheckHook* check_hook_ = nullptr;
  SpanHook* span_hook_ = nullptr;
};

}  // namespace gtw::des
