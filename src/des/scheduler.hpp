// Deterministic discrete-event scheduler.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), so a simulation run is a pure
// function of its inputs and seeds — a property the reproduction tests rely
// on when comparing repeated runs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "des/time.hpp"

namespace gtw::des {

class Scheduler;

// Cancellable handle to a scheduled event.  Default-constructed handles are
// inert; cancelling an already-fired event is a no-op.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel();
  bool pending() const;

 private:
  friend class Scheduler;
  EventHandle(Scheduler* s, std::uint64_t seq) : sched_(s), seq_(seq) {}
  Scheduler* sched_ = nullptr;
  std::uint64_t seq_ = 0;
};

class Scheduler {
 public:
  using Action = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  SimTime now() const { return now_; }

  // Schedule `action` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(SimTime when, Action action);
  // Schedule `action` `delay` after the current time.
  EventHandle schedule_after(SimTime delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  // Run until the event queue drains or `horizon` is reached, whichever is
  // first.  Returns the number of events executed.
  std::uint64_t run(SimTime horizon = SimTime::max());

  // Execute at most one event; returns false if the queue was empty or the
  // next event lies beyond `horizon`.
  bool step(SimTime horizon = SimTime::max());

  bool empty() const { return live_events_ == 0; }
  std::uint64_t events_executed() const { return executed_; }
  // Running FNV-1a hash over the executed event stream — each fired event
  // folds in its (timestamp, sequence) pair.  Two executions of the same
  // simulation must report identical hashes; the determinism regression
  // tests and the double-run replay gate compare exactly this.
  std::uint64_t stream_hash() const { return stream_hash_; }
  // Heap entries including cancelled ones not yet swept/popped — lets tests
  // observe that cancellation churn does not accumulate garbage.
  std::size_t queued_entries() const { return heap_.size(); }
  std::size_t cancelled_entries() const { return cancelled_in_heap_; }

 private:
  friend class EventHandle;

  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Action action;
    bool cancelled = false;
  };
  struct Order {
    bool operator()(const Entry* a, const Entry* b) const {
      if (a->when != b->when) return a->when > b->when;
      return a->seq > b->seq;
    }
  };

  void cancel(std::uint64_t seq);
  bool is_pending(std::uint64_t seq) const;
  void sweep_cancelled();

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t stream_hash_ = 14695981039346656037ULL;  // FNV-1a offset

  std::uint64_t live_events_ = 0;
  // Entries are heap-allocated; heap_ is a binary heap (std::push_heap /
  // std::pop_heap over Order) of raw pointers and pending_ indexes them by
  // sequence number for O(log n) cancellation.  Cancelled entries are deleted
  // lazily when popped, but once they outnumber the live entries the whole
  // heap is swept and rebuilt so cancellation-heavy workloads (retransmit
  // timers, superseded frames) stay O(live), not O(ever-scheduled).
  std::vector<Entry*> heap_;
  std::size_t cancelled_in_heap_ = 0;
  // Ordered map (not unordered): the simulator's determinism contract bans
  // containers with unspecified iteration order from event-producing code
  // (see tools/lint/gtw_lint.py, rule unordered-container), and seq keys
  // arrive monotonically so the tree stays balanced cheaply.
  std::map<std::uint64_t, Entry*> pending_;
};

}  // namespace gtw::des
