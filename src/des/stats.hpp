// Statistics collectors used throughout the simulator: streaming mean and
// variance (Welford), fixed-bin histograms with quantile estimation, and
// time-weighted averages for queue occupancy style metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "des/time.hpp"

namespace gtw::des {

// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-width histogram over [lo, hi) with out-of-range counters.  Quantiles
// are estimated by linear interpolation within the containing bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::uint64_t count() const { return total_; }
  double quantile(double q) const;
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::string to_string(int width = 40) const;

 private:
  double lo_, hi_, bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

// Time-weighted average of a piecewise-constant signal (queue depth, link
// utilisation): each `update` records the value held since the previous one.
class TimeWeighted {
 public:
  void update(SimTime now, double new_value);
  double average(SimTime now) const;
  double current() const { return value_; }

 private:
  SimTime last_ = SimTime::zero();
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
  bool started_ = false;
  SimTime start_ = SimTime::zero();
};

}  // namespace gtw::des
