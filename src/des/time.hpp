// des::SimTime — the simulated-time quantity, re-exported from src/units/.
//
// SimTime is a dimensioned quantity like Bytes or BitRate, so its definition
// lives at the bottom of the module DAG in units/time.hpp (units depends on
// nothing; see tools/lint/layers.toml).  The DES layer owns the simulated
// *clock* — des::Scheduler::now() — and historically owned the type too, so
// the whole tree spells it des::SimTime.  This alias keeps that spelling
// canonical for scheduler-facing code.
#pragma once

#include "units/time.hpp"

namespace gtw::des {

using SimTime = units::SimTime;
using units::transmission_time;

}  // namespace gtw::des
