#include "des/span_hook.hpp"

namespace gtw::des {

const char* span_phase_name(SpanPhase p) {
  switch (p) {
    case SpanPhase::kRoot: return "root";
    case SpanPhase::kQueueWait: return "queue-wait";
    case SpanPhase::kSerialize: return "serialize";
    case SpanPhase::kPropagate: return "propagate";
    case SpanPhase::kHostCpu: return "host-cpu";
    case SpanPhase::kRetransmitStall: return "retransmit-stall";
    case SpanPhase::kReassemblyWait: return "reassembly-wait";
    case SpanPhase::kRetryBackoff: return "retry-backoff";
    case SpanPhase::kCompute: return "compute";
    case SpanPhase::kTransfer: return "transfer";
    case SpanPhase::kAborted: return "aborted";
  }
  return "unknown";
}

}  // namespace gtw::des
