#include "des/scheduler.hpp"

#include <algorithm>
#include <cassert>

namespace gtw::des {

namespace {
// FNV-1a over the 8 bytes of `v`, little-endian.
void fnv1a_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= 1099511628211ULL;
  }
}
}  // namespace

void EventHandle::cancel() {
  if (sched_ != nullptr && seq_ != 0) {
    sched_->cancel(seq_);
    sched_ = nullptr;
  }
}

bool EventHandle::pending() const {
  return sched_ != nullptr && sched_->is_pending(seq_);
}

EventHandle Scheduler::schedule_at(SimTime when, Action action) {
  assert(when >= now_ && "cannot schedule into the past");
  auto* e = new Entry{when, next_seq_++, std::move(action), false};
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), Order{});
  ++live_events_;
  pending_.emplace(e->seq, e);
  return EventHandle{this, e->seq};
}

void Scheduler::cancel(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  it->second->cancelled = true;
  pending_.erase(it);
  --live_events_;
  ++cancelled_in_heap_;
  if (cancelled_in_heap_ > heap_.size() - cancelled_in_heap_)
    sweep_cancelled();
}

void Scheduler::sweep_cancelled() {
  auto alive = heap_.begin();
  for (Entry* e : heap_) {
    if (e->cancelled)
      delete e;
    else
      *alive++ = e;
  }
  heap_.erase(alive, heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Order{});
  cancelled_in_heap_ = 0;
}

bool Scheduler::is_pending(std::uint64_t seq) const {
  return pending_.contains(seq);
}

bool Scheduler::step(SimTime horizon) {
  while (!heap_.empty()) {
    Entry* e = heap_.front();
    if (e->cancelled) {
      std::pop_heap(heap_.begin(), heap_.end(), Order{});
      heap_.pop_back();
      --cancelled_in_heap_;
      delete e;
      continue;
    }
    if (e->when > horizon) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Order{});
    heap_.pop_back();
    pending_.erase(e->seq);
    --live_events_;
    now_ = e->when;
    ++executed_;
    fnv1a_mix(stream_hash_, static_cast<std::uint64_t>(e->when.ps()));
    fnv1a_mix(stream_hash_, e->seq);
    Action action = std::move(e->action);
    delete e;
    action();
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run(SimTime horizon) {
  std::uint64_t n = 0;
  while (step(horizon)) ++n;
  if (!heap_.empty() && horizon != SimTime::max()) now_ = horizon;
  return n;
}

Scheduler::~Scheduler() {
  for (Entry* e : heap_) delete e;
}

}  // namespace gtw::des
