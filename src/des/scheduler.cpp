#include "des/scheduler.hpp"

#include <cassert>

namespace gtw::des {

void EventHandle::cancel() {
  if (sched_ != nullptr && seq_ != 0) {
    sched_->cancel(seq_);
    sched_ = nullptr;
  }
}

bool EventHandle::pending() const {
  return sched_ != nullptr && sched_->is_pending(seq_);
}

EventHandle Scheduler::schedule_at(SimTime when, Action action) {
  assert(when >= now_ && "cannot schedule into the past");
  auto* e = new Entry{when, next_seq_++, std::move(action), false};
  queue_.push(e);
  ++live_events_;
  pending_.emplace(e->seq, e);
  return EventHandle{this, e->seq};
}

void Scheduler::cancel(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  it->second->cancelled = true;
  pending_.erase(it);
  --live_events_;
}

bool Scheduler::is_pending(std::uint64_t seq) const {
  return pending_.contains(seq);
}

bool Scheduler::step(SimTime horizon) {
  while (!queue_.empty()) {
    Entry* e = queue_.top();
    if (e->cancelled) {
      queue_.pop();
      delete e;
      continue;
    }
    if (e->when > horizon) return false;
    queue_.pop();
    pending_.erase(e->seq);
    --live_events_;
    now_ = e->when;
    ++executed_;
    Action action = std::move(e->action);
    delete e;
    action();
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run(SimTime horizon) {
  std::uint64_t n = 0;
  while (step(horizon)) ++n;
  if (!queue_.empty() && horizon != SimTime::max()) now_ = horizon;
  return n;
}

Scheduler::~Scheduler() {
  while (!queue_.empty()) {
    delete queue_.top();
    queue_.pop();
  }
}

}  // namespace gtw::des
