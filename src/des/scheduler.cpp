#include "des/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace gtw::des {

namespace {
// FNV-1a over the 8 bytes of `v`, little-endian.
void fnv1a_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffU;
    h *= 1099511628211ULL;
  }
}

constexpr unsigned kMinBucketShift = 6;   // 64 buckets
constexpr unsigned kMaxBucketShift = 18;  // 262144 buckets
// Bucket width bounds: 2^10 ps ~ 1 ns up to 2^40 ps ~ 1.1 s.
constexpr unsigned kMinWidthShift = 10;
constexpr unsigned kMaxWidthShift = 40;
}  // namespace

void EventHandle::cancel() {
  if (sched_ != nullptr && seq_ != 0) sched_->cancel(seq_, slot_);
  // Null every member, not just the scheduler pointer: a stale (seq_, slot_)
  // pair in a copied handle must never be able to alias a recycled slot.
  sched_ = nullptr;
  seq_ = 0;
  slot_ = 0xffffffffU;
}

bool EventHandle::pending() const {
  return sched_ != nullptr && sched_->is_pending(seq_, slot_);
}

EventHandle Scheduler::schedule_at(SimTime when, Action action) {
  assert(when >= now_ && "cannot schedule into the past");
  const EventId id = pool_.acquire();
  Entry& e = pool_[id];
  e.when = when;
  e.seq = next_seq_++;
  e.action = std::move(action);
  e.cancelled = false;
  const std::uint64_t seq = e.seq;
  GTW_CHECK_HOOK(if (check_hook_ != nullptr)
                     check_hook_->on_schedule(when, now_, seq));
  if (span_hook_ != nullptr) span_hook_->on_event_scheduled(seq);
  ++live_events_;
  place(QItem{when, seq, id});
  maybe_resize();
  return EventHandle{this, seq, id};
}

void Scheduler::place(QItem it) {
  const std::uint64_t day = day_of(it.when);
  if (day == current_day_) {
    push_bucket(bucket_of(it.when), it);
    return;
  }
  if (day > current_day_) {
    overflow_.push_back(it);
    std::push_heap(overflow_.begin(), overflow_.end(), later);
    if (overflow_.size() > overflow_high_water_)
      overflow_high_water_ = overflow_.size();
    return;
  }
  // day < current_day_: the pop path jumped the calendar to a far-future day
  // (everything nearer had fired), but the clock itself lags behind — a new
  // event can legally land in between.  Rewind: demote the whole calendar to
  // the overflow tier and restart the day at the new event.  Ordering is
  // untouched; events merely change tiers.
  for (auto& b : buckets_) {
    overflow_.insert(overflow_.end(), b.begin(), b.end());
    b.clear();
  }
  std::make_heap(overflow_.begin(), overflow_.end(), later);
  if (overflow_.size() > overflow_high_water_)
    overflow_high_water_ = overflow_.size();
  calendar_size_ = 0;
  current_day_ = day;
  scan_idx_ = 0;
  push_bucket(bucket_of(it.when), it);
}

void Scheduler::push_bucket(std::size_t b, QItem it) {
  auto& v = buckets_[b];
  v.push_back(it);
  std::push_heap(v.begin(), v.end(), later);
  ++calendar_size_;
  if (v.size() > bucket_high_water_) bucket_high_water_ = v.size();
  if (b < scan_idx_) scan_idx_ = b;
}

void Scheduler::pop_bucket(std::size_t b) {
  auto& v = buckets_[b];
  std::pop_heap(v.begin(), v.end(), later);
  v.pop_back();
  --calendar_size_;
}

void Scheduler::release_entry(EventId id) {
  Entry& e = pool_[id];
  e.action.reset();
  e.seq = 0;  // stale handles compare against this and miss
  e.cancelled = false;
  pool_.release(id);
}

void Scheduler::cancel(std::uint64_t seq, EventId slot) {
  if (seq == 0 || slot == SlabPool<Entry, 1024>::kInvalid) return;
  Entry& e = pool_[slot];
  if (e.seq != seq || e.cancelled) {
    // Stale handles (event already fired, slot possibly recycled) are a
    // documented no-op; a matching-but-tombstoned entry means a *copied*
    // handle cancelled the same live event twice — the seq-as-generation
    // defence caught an aliasing bug.
    GTW_CHECK_HOOK(if (check_hook_ != nullptr) check_hook_->on_cancel(
        seq, e.seq == seq && e.cancelled
                 ? SchedulerCheckHook::CancelOutcome::kDouble
                 : SchedulerCheckHook::CancelOutcome::kStale));
    return;
  }
  GTW_CHECK_HOOK(if (check_hook_ != nullptr) check_hook_->on_cancel(
      seq, SchedulerCheckHook::CancelOutcome::kCancelled));
  if (span_hook_ != nullptr) span_hook_->on_event_cancel(seq);
  e.cancelled = true;
  // Drop the capture now rather than at sweep/pop time — cancelled events
  // routinely hold the largest captures (retransmit timers with packets).
  e.action.reset();
  --live_events_;
  ++cancelled_in_q_;
  // Once tombstones outnumber live entries, sweep — cancellation-heavy
  // workloads stay O(live), not O(ever-scheduled).
  if (cancelled_in_q_ > live_events_)
    sweep_cancelled();
  else
    maybe_resize();
}

bool Scheduler::is_pending(std::uint64_t seq, EventId slot) const {
  if (seq == 0 || slot == SlabPool<Entry, 1024>::kInvalid) return false;
  const Entry& e = pool_[slot];
  return e.seq == seq && !e.cancelled;
}

void Scheduler::sweep_cancelled() {
  for (auto& b : buckets_) {
    auto alive = b.begin();
    for (const QItem& it : b) {
      if (pool_[it.id].cancelled)
        release_entry(it.id);
      else
        *alive++ = it;
    }
    calendar_size_ -= static_cast<std::size_t>(b.end() - alive);
    b.erase(alive, b.end());
    std::make_heap(b.begin(), b.end(), later);
  }
  auto alive = overflow_.begin();
  for (const QItem& it : overflow_) {
    if (pool_[it.id].cancelled)
      release_entry(it.id);
    else
      *alive++ = it;
  }
  overflow_.erase(alive, overflow_.end());
  std::make_heap(overflow_.begin(), overflow_.end(), later);
  cancelled_in_q_ = 0;
}

void Scheduler::drop_all_tombstones() {
  for (auto& b : buckets_) {
    for (const QItem& it : b) release_entry(it.id);
    b.clear();
  }
  for (const QItem& it : overflow_) release_entry(it.id);
  overflow_.clear();
  calendar_size_ = 0;
  cancelled_in_q_ = 0;
}

Scheduler::QItem Scheduler::find_next() {
  for (;;) {
    // Scan forward within the current day.  Buckets hold *only* current-day
    // events (future days wait in the overflow tier), so the first non-empty
    // bucket's top is the global minimum — no wrap-around checks needed.
    const std::size_t nb = buckets_.size();
    while (scan_idx_ < nb) {
      auto& b = buckets_[scan_idx_];
      while (!b.empty() && pool_[b.front().id].cancelled) {
        const EventId dead = b.front().id;
        pop_bucket(scan_idx_);
        --cancelled_in_q_;
        release_entry(dead);
      }
      if (!b.empty()) return b.front();
      ++scan_idx_;
    }
    // Day exhausted: jump straight to the day of the earliest overflow event
    // (empty days cost nothing) and pull that whole day into the buckets.
    while (!overflow_.empty() && pool_[overflow_.front().id].cancelled) {
      const EventId dead = overflow_.front().id;
      std::pop_heap(overflow_.begin(), overflow_.end(), later);
      overflow_.pop_back();
      --cancelled_in_q_;
      release_entry(dead);
    }
    assert(!overflow_.empty() && "live_events_ > 0 but no event found");
    current_day_ = day_of(overflow_.front().when);
    scan_idx_ = 0;
    while (!overflow_.empty()) {
      const QItem top = overflow_.front();
      const bool dead = pool_[top.id].cancelled;
      if (!dead && day_of(top.when) != current_day_) break;
      std::pop_heap(overflow_.begin(), overflow_.end(), later);
      overflow_.pop_back();
      if (dead) {
        --cancelled_in_q_;
        release_entry(top.id);
      } else {
        push_bucket(bucket_of(top.when), top);
      }
    }
  }
}

bool Scheduler::step(SimTime horizon) {
  if (live_events_ == 0) {
    // Nothing left to fire; drop any remaining tombstones so a drained
    // scheduler reports zero queued entries, as the vector-heap did.
    if (cancelled_in_q_ != 0) drop_all_tombstones();
    return false;
  }
  const QItem it = find_next();
  if (it.when > horizon) return false;
  pop_bucket(scan_idx_);
  GTW_CHECK_HOOK(if (check_hook_ != nullptr)
                     check_hook_->on_fire(it.when, it.seq));
  --live_events_;
  now_ = it.when;
  ++executed_;
  fnv1a_mix(stream_hash_, static_cast<std::uint64_t>(it.when.ps()));
  fnv1a_mix(stream_hash_, it.seq);
  // Move the action out and free the slot *before* invoking: the action may
  // schedule, cancel, or trigger a calendar resize, all of which may touch
  // this slot's tier — nothing below references the entry.
  Action action = std::move(pool_[it.id].action);
  release_entry(it.id);
  maybe_resize();
  if (span_hook_ != nullptr) {
    span_hook_->on_event_fire(it.seq);
    action();
    span_hook_->on_event_done();
  } else {
    action();
  }
  return true;
}

std::uint64_t Scheduler::run(SimTime horizon) {
  std::uint64_t n = 0;
  while (step(horizon)) ++n;
  if (queued_entries() != 0 && horizon != SimTime::max()) now_ = horizon;
  return n;
}

void Scheduler::maybe_resize() {
  const std::size_t nb = std::size_t{1} << bucket_shift_;
  const bool grow = live_events_ > 2 * nb && bucket_shift_ < kMaxBucketShift;
  const bool shrink = live_events_ < nb / 8 && bucket_shift_ > kMinBucketShift;
  if (!grow && !shrink) return;
  const unsigned target = static_cast<unsigned>(std::bit_width(
      std::max<std::size_t>(live_events_, std::size_t{1} << kMinBucketShift)));
  rebuild(std::clamp(target, kMinBucketShift, kMaxBucketShift));
}

void Scheduler::rebuild(unsigned new_bucket_shift) {
  ++resizes_;
  auto& live = rebuild_scratch_;
  live.clear();
  for (auto& b : buckets_) {
    for (const QItem& it : b) {
      if (pool_[it.id].cancelled)
        release_entry(it.id);
      else
        live.push_back(it);
    }
    b.clear();
  }
  for (const QItem& it : overflow_) {
    if (pool_[it.id].cancelled)
      release_entry(it.id);
    else
      live.push_back(it);
  }
  overflow_.clear();
  calendar_size_ = 0;
  cancelled_in_q_ = 0;

  bucket_shift_ = new_bucket_shift;
  buckets_.resize(std::size_t{1} << bucket_shift_);

  if (live.empty()) {
    current_day_ = day_of(now_);
    scan_idx_ = 0;
    return;
  }

  // Re-estimate the bucket width from the *imminent* inter-event gap: sort
  // the survivors and size buckets so one day spans ~4x the next
  // table-load of events.  The headroom factor keeps the bulk of the live
  // horizon inside the current day — with a day sized exactly to the
  // sampled span, roughly half the events would straddle the day boundary
  // and detour through the overflow heap.  Far-future timers land in the
  // overflow tier and do not distort the estimate.
  std::sort(live.begin(), live.end(),
            [](const QItem& a, const QItem& b) { return later(b, a); });
  const std::size_t k = std::min(live.size(), buckets_.size());
  const std::uint64_t span = static_cast<std::uint64_t>(
      live[k - 1].when.ps() - live[0].when.ps());
  const std::uint64_t gap = (span / static_cast<std::uint64_t>(k)) * 4 + 1;
  const unsigned ws = static_cast<unsigned>(std::bit_width(gap));
  width_shift_ = std::clamp(ws, kMinWidthShift,
                            std::min(kMaxWidthShift, 61U - bucket_shift_));
  current_day_ = day_of(live[0].when);
  scan_idx_ = 0;
  for (const QItem& it : live) place(it);
  live.clear();
}

}  // namespace gtw::des
