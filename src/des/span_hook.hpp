// Causal span hook layer (DESIGN.md §13): the seam between the engine /
// component layers and the obs::SpanTracer in src/obs/.
//
// Same inversion as des/check_hook.hpp: the layering DAG forbids des, net,
// meta and flow from including obs, so the interface the tracer implements
// is declared here at the bottom of the DAG and src/obs/ provides the
// implementation.  Unlike GTW_CHECK_HOOK, span call sites are plain
// null-checked virtual calls present in every build — tracing is a runtime
// choice (attach a tracer to the scheduler, run, detach), not a build
// flavour.  When no hook is installed the cost per site is one pointer
// load and branch; when one is installed, the hook only *observes*: it
// must never schedule, cancel, or otherwise steer the simulation, so all
// BENCH_*.json artifacts are byte-identical with and without tracing.
//
// Causality is carried two ways:
//  - through the scheduler: on_event_scheduled snapshots the hook's
//    current TraceContext against the event's seq; on_event_fire restores
//    it while the event's action runs.  Continuation chains (CPU cost
//    events, retransmit timers, stage pumps) therefore inherit context
//    with zero per-component code.
//  - through payloads: packets, frames, TCP messages and PathTransport
//    chunks carry a TraceContext member; a component that moves a payload
//    across an async boundary brackets the handoff with adopt() so the
//    downstream events are attributed to the payload's trace, not to
//    whatever event happened to perform the move.
#pragma once

#include <cstdint>

#include "des/time.hpp"

namespace gtw::des {

// Identity of one causal trace (a workload unit: a scan, a WAN message)
// and the currently innermost span within it.  trace_id 0 means "not
// traced": payloads default to that and every hook call site tolerates it.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

// The same trace, but with `span` as the innermost span — the context a
// component adopts (or parents children on) after opening a span of its
// own, so the span tree nests layer by layer (flow -> meta -> tcp -> link)
// instead of flattening onto the root.  A filtered-out span (id 0, see
// begin_span) leaves the context unchanged.
inline TraceContext under(TraceContext ctx, std::uint64_t span) {
  return span == 0 ? ctx : TraceContext{ctx.trace_id, span};
}

// Typed phases a span can carry.  Leaf phases attribute wall-clock in the
// latency budget; container phases (kRoot, kTransfer) hold child spans and
// absorb only the time no child refines (gtw-trace --budget attributes each
// instant to the deepest active span on the causal chain).
enum class SpanPhase : std::uint8_t {
  kRoot = 0,         // whole-trace container, minted at the workload origin
  kQueueWait,        // waiting in a queue (link egress, stage admission, ...)
  kSerialize,        // occupying a transmitter (wire time)
  kPropagate,        // in flight on a link / through a switch fabric
  kHostCpu,          // host protocol/CPU cost, incl. gateway forwarding
  kRetransmitStall,  // TCP loss detected until recovery completes
  kReassemblyWait,   // bytes arrived, waiting for in-order completion
  kRetryBackoff,     // WAN watchdog elapsed, waiting to re-attempt
  kCompute,          // application/stage body work
  kTransfer,         // container: a message/chunk in flight end to end
  kAborted,          // terminal marker: the traced unit was dropped
};

const char* span_phase_name(SpanPhase p);

// Implemented by obs::SpanTracer and installed with
// Scheduler::set_span_hook.  Calls are synchronous and in event order.
struct SpanHook {
  virtual ~SpanHook() = default;

  // --- scheduler integration (call sites live in des/scheduler.cpp) ----
  virtual void on_event_scheduled(std::uint64_t seq) = 0;
  virtual void on_event_fire(std::uint64_t seq) = 0;
  virtual void on_event_done() = 0;
  virtual void on_event_cancel(std::uint64_t seq) = 0;

  // --- component integration -------------------------------------------
  // Mint a fresh trace rooted at `now` (workload origin).  The new context
  // becomes current until the surrounding event ends or adopt() replaces
  // it.
  virtual TraceContext mint(const char* origin, SimTime now) = 0;
  // The context the currently executing event is attributed to.
  virtual TraceContext current() const = 0;
  // Swap the current context (returns the previous one so call sites can
  // restore it): the payload-handoff bracket described above.
  virtual TraceContext adopt(TraceContext ctx) = 0;
  // Open a span under `parent` (use current() for "under whatever is
  // running").  Returns a span id, or 0 if the tracer filtered it out
  // (disabled layer); end/abort of id 0 is a no-op.
  virtual std::uint64_t begin_span(TraceContext parent, SpanPhase phase,
                                   const char* layer, const char* name,
                                   SimTime now) = 0;
  virtual void end_span(std::uint64_t span_id, SimTime now) = 0;
  // Close a span whose work was discarded (drop, reset, supersede); the
  // span is marked aborted rather than silently leaked.
  virtual void abort_span(std::uint64_t span_id, SimTime now) = 0;
  // Final delivery of the traced unit: closes the root span.
  virtual void close_trace(TraceContext ctx, SimTime now) = 0;
  // Terminal failure of the traced unit: records an `aborted` phase under
  // the root and closes it.
  virtual void abort_trace(TraceContext ctx, const char* reason,
                           SimTime now) = 0;
};

}  // namespace gtw::des
