// GTW-San hook layer (DESIGN.md §12): the seam between the engine core and
// the simulation sanitizer in src/check/.
//
// The layering DAG (tools/lint/layers.toml) forbids des from including
// check — the sanitizer sits at the top of the module graph, next to the
// obs catalog it mirrors.  So the *interface* a checker implements is
// declared here, inside des, and src/check/ provides the implementation:
// the same inversion net::FrameSink uses to keep links ignorant of hosts.
//
// The interface below is declared unconditionally (it is only a vtable
// shape, and keeping it visible in every build means src/check/ and its
// self-tests compile everywhere), but hook *invocations* are wrapped in
// GTW_CHECK_HOOK(...), which expands to nothing unless the GTW_CHECK build
// option is on (cmake --preset check).  An unchecked build therefore
// executes not one extra instruction on the schedule/fire/cancel hot path —
// zero overhead when off, like GTW_SANITIZE.
//
// Rule check-side-effect (gtw-lint) bans mutating expressions inside
// GTW_CHECK_HOOK arguments: a hook must observe, never steer, or the
// checked and unchecked builds simulate different worlds.
#pragma once

#if defined(GTW_CHECK)
#define GTW_CHECK_HOOK(expr) \
  do {                       \
    expr;                    \
  } while (false)
#else
#define GTW_CHECK_HOOK(expr) \
  do {                       \
  } while (false)
#endif

#include <cstdint>

#include "des/time.hpp"

namespace gtw::des {

// Implemented by check::SchedulerChecker (src/check/attach.hpp) and
// installed with Scheduler::set_check_hook.  Calls are synchronous, in
// event order, and must not schedule, cancel, or otherwise reach back into
// the scheduler.
struct SchedulerCheckHook {
  virtual ~SchedulerCheckHook() = default;

  // A new event was accepted at simulated time `now` for dispatch at
  // `when`.  `when < now` is the schedule-in-past bug class the release
  // build's compiled-out assert no longer catches.
  virtual void on_schedule(SimTime when, SimTime now, std::uint64_t seq) = 0;

  // An event is about to fire; `when` values must be non-decreasing.
  virtual void on_fire(SimTime when, std::uint64_t seq) = 0;

  enum class CancelOutcome : std::uint8_t {
    kCancelled,  // live event tombstoned — the normal path
    kStale,      // slot recycled or already fired: documented no-op
    kDouble,     // second cancel of the same still-queued tombstone
  };
  virtual void on_cancel(std::uint64_t seq, CancelOutcome outcome) = 0;
};

}  // namespace gtw::des
