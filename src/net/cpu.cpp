#include "net/cpu.hpp"

namespace gtw::net {

void CpuResource::execute(des::SimTime cost, des::Action done) {
  des::SpanHook* h = sched_.span_hook();
  queue_.push_back(Job{cost, std::move(done),
                       h != nullptr ? h->current() : des::TraceContext{}});
  maybe_start();
}

void CpuResource::maybe_start() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  busy_accum_ += queue_.front().cost;
  des::SpanHook* h = sched_.span_hook();
  const des::TraceContext prev =
      h != nullptr ? h->adopt(queue_.front().ctx) : des::TraceContext{};
  sched_.schedule_after(queue_.front().cost, [this]() {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    busy_ = false;
    ++jobs_;
    job.done();
    maybe_start();
  });
  if (h != nullptr) h->adopt(prev);
}

double CpuResource::utilization() const {
  const des::SimTime span = sched_.now() - created_at_;
  if (span <= des::SimTime::zero()) return 0.0;
  return busy_accum_.sec() / span.sec();
}

}  // namespace gtw::net
