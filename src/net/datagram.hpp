// Unreliable datagram service (UDP semantics) plus a constant-bit-rate
// source/sink pair.  The CBR pair models the testbed's multimedia project:
// an uncompressed D1 studio video stream is 270 Mbit/s of fixed-cadence
// frames over ATM (paper, section 3).
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <string>

#include "des/scheduler.hpp"
#include "des/stats.hpp"
#include "net/host.hpp"
#include "net/units.hpp"

namespace gtw::net {

// Thin convenience wrapper over Host::bind/send_datagram.
class DatagramSocket {
 public:
  using Handler = std::function<void(const IpPacket&)>;

  DatagramSocket(Host& host, std::uint16_t port);
  ~DatagramSocket();
  DatagramSocket(const DatagramSocket&) = delete;
  DatagramSocket& operator=(const DatagramSocket&) = delete;

  void on_receive(Handler h) { handler_ = std::move(h); }
  // Send `payload` of application data (plus UDP/IP headers) to the peer,
  // optionally carrying an opaque body.
  void send_to(HostId dst, std::uint16_t dst_port, units::Bytes payload,
               std::any body = {});

  Host& host() { return host_; }
  std::uint16_t port() const { return port_; }

 private:
  Host& host_;
  std::uint16_t port_;
  Handler handler_;
};

// Periodic fixed-size datagram source.
class CbrSource {
 public:
  struct Config {
    units::Bytes frame_bytes;          // application bytes per frame
    des::SimTime interval;             // frame cadence
    std::uint64_t frame_count = 0;     // 0 = unbounded
  };

  CbrSource(Host& host, std::uint16_t src_port, HostId dst,
            std::uint16_t dst_port, Config cfg);
  void start();
  void stop();
  std::uint64_t frames_sent() const { return sent_; }
  units::BitRate offered_rate() const;

 private:
  void tick();

  DatagramSocket socket_;
  HostId dst_;
  std::uint16_t dst_port_;
  Config cfg_;
  std::uint64_t sent_ = 0;
  des::EventHandle timer_;
};

// Receiving side: counts frames, measures inter-arrival jitter and loss
// (frames are numbered by the source via the datagram body).
class CbrSink {
 public:
  CbrSink(Host& host, std::uint16_t port);

  std::uint64_t frames_received() const { return received_; }
  std::uint64_t frames_lost() const;
  units::Bytes bytes_received() const { return units::Bytes{bytes_}; }
  units::BitRate goodput(des::SimTime window) const;
  const des::RunningStats& interarrival_ms() const { return interarrival_; }

 private:
  DatagramSocket socket_;
  std::uint64_t received_ = 0;
  std::uint64_t bytes_ = 0;
  std::int64_t highest_seq_ = -1;
  des::SimTime first_arrival_;
  des::SimTime last_arrival_;
  bool any_ = false;
  des::RunningStats interarrival_;
};

}  // namespace gtw::net
