#include "net/probe.hpp"

#include "net/units.hpp"

namespace gtw::net {

EchoResponder::EchoResponder(Host& host, std::uint16_t port)
    : host_(host), port_(port) {
  host_.bind(IpProto::kUdp, port_, [this](const IpPacket& pkt) {
    ++echoes_;
    IpPacket reply;
    reply.dst = pkt.src;
    reply.proto = IpProto::kUdp;
    reply.src_port = port_;
    reply.dst_port = pkt.src_port;
    reply.total_bytes = pkt.total_bytes;
    reply.payload = pkt.payload;  // carries the probe's sequence number
    host_.send_datagram(std::move(reply));
  });
}

EchoResponder::~EchoResponder() { host_.unbind(IpProto::kUdp, port_); }

Pinger::Pinger(Host& src, HostId dst, std::uint16_t dst_port, int count,
               units::Bytes payload, des::SimTime interval,
               des::SimTime timeout)
    : src_(src), dst_(dst), dst_port_(dst_port),
      src_port_(static_cast<std::uint16_t>(40000 + dst_port)), count_(count),
      payload_(static_cast<std::uint32_t>(payload.count())),
      interval_(interval), timeout_after_(timeout) {}

Pinger::~Pinger() {
  src_.unbind(IpProto::kUdp, src_port_);
  tick_.cancel();
  timeout_.cancel();
}

void Pinger::start(std::function<void(const PingReport&)> done) {
  done_ = std::move(done);
  src_.bind(IpProto::kUdp, src_port_, [this](const IpPacket& pkt) {
    if (!pkt.payload) return;
    const auto* seq = std::any_cast<std::uint32_t>(pkt.payload.get());
    if (seq == nullptr) return;
    auto it = outstanding_.find(*seq);
    if (it == outstanding_.end()) return;
    ++report_.received;
    report_.rtt_ms.add((src_.scheduler().now() - it->second).ms());
    outstanding_.erase(it);
    if (report_.sent == count_ && outstanding_.empty()) finish();
  });
  send_next();
}

void Pinger::send_next() {
  if (report_.sent >= count_) {
    // Grace timeout for stragglers.
    timeout_ = src_.scheduler().schedule_after(timeout_after_,
                                               [this]() { finish(); });
    return;
  }
  IpPacket pkt;
  pkt.dst = dst_;
  pkt.proto = IpProto::kUdp;
  pkt.src_port = src_port_;
  pkt.dst_port = dst_port_;
  pkt.total_bytes = payload_ + kIpHeaderBytes + kUdpHeaderBytes;
  pkt.payload = std::make_shared<const std::any>(next_seq_);
  outstanding_[next_seq_] = src_.scheduler().now();
  ++next_seq_;
  ++report_.sent;
  src_.send_datagram(std::move(pkt));
  tick_ = src_.scheduler().schedule_after(interval_, [this]() { send_next(); });
}

void Pinger::finish() {
  timeout_.cancel();
  report_.timeouts = static_cast<int>(outstanding_.size());
  outstanding_.clear();
  if (done_) {
    auto cb = std::move(done_);
    done_ = nullptr;
    cb(report_);
  }
}

}  // namespace gtw::net
