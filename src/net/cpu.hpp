// Serialized host-CPU model.  Protocol processing on 1999-era machines is a
// first-order bottleneck — the paper attributes the 260 Mbit/s T3E<->SP2
// ceiling to the microchannel I/O of the SP2 nodes, and the MTU sensitivity
// of HiPPI TCP to per-packet overhead.  Each packet charges a fixed cost
// plus a per-byte cost against a single FIFO processor.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "des/action.hpp"
#include "des/scheduler.hpp"

namespace gtw::net {

class CpuResource {
 public:
  CpuResource(des::Scheduler& sched, std::string name)
      : sched_(sched), name_(std::move(name)), created_at_(sched.now()) {}

  // Run `done` after `cost` of exclusive CPU time, queued FIFO behind any
  // work already accepted.
  void execute(des::SimTime cost, des::Action done);

  double utilization() const;
  std::uint64_t jobs_completed() const { return jobs_; }
  const std::string& name() const { return name_; }

 private:
  void maybe_start();

  // Jobs park here until their completion event fires; the event itself
  // captures only `this`, so it always fits the scheduler's inline record.
  // Each job remembers the trace context it was submitted under: with the
  // CPU busy, the completion event for job N is scheduled from job N-1's
  // completion, so context must ride the queue, not the event.
  struct Job {
    des::SimTime cost;
    des::Action done;
    des::TraceContext ctx;
  };

  des::Scheduler& sched_;
  std::string name_;
  std::deque<Job> queue_;
  bool busy_ = false;
  std::uint64_t jobs_ = 0;
  des::SimTime busy_accum_ = des::SimTime::zero();
  des::SimTime created_at_;
};

}  // namespace gtw::net
