// Active path probing: UDP echo "ping" between simulated hosts — what the
// testbed operators ran constantly while debugging the OC-48 line.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "des/stats.hpp"
#include "net/host.hpp"
#include "units/units.hpp"

namespace gtw::net {

// Installs an echo responder on `host` at `port` (replies to the packet's
// source and source port with the same payload size).  Keeps the binding
// alive for its own lifetime.
class EchoResponder {
 public:
  EchoResponder(Host& host, std::uint16_t port);
  ~EchoResponder();
  EchoResponder(const EchoResponder&) = delete;
  EchoResponder& operator=(const EchoResponder&) = delete;

  std::uint64_t echoes() const { return echoes_; }

 private:
  Host& host_;
  std::uint16_t port_;
  std::uint64_t echoes_ = 0;
};

struct PingReport {
  int sent = 0;
  int received = 0;
  int timeouts = 0;  // probes still unanswered when the run finished
  des::RunningStats rtt_ms;
};

// Sends `count` probes of `payload` bytes from `src` to the EchoResponder
// on (`dst`, `dst_port`), one every `interval`; `done` fires after the
// last reply arrives or the probe `timeout` grace period passes.
class Pinger {
 public:
  Pinger(Host& src, HostId dst, std::uint16_t dst_port, int count,
         units::Bytes payload = units::Bytes{56},
         des::SimTime interval = des::SimTime::milliseconds(10),
         des::SimTime timeout = des::SimTime::seconds(1.0));
  ~Pinger();
  Pinger(const Pinger&) = delete;
  Pinger& operator=(const Pinger&) = delete;

  void start(std::function<void(const PingReport&)> done);

 private:
  void send_next();
  void finish();

  Host& src_;
  HostId dst_;
  std::uint16_t dst_port_;
  std::uint16_t src_port_;
  int count_;
  std::uint32_t payload_;
  des::SimTime interval_;
  des::SimTime timeout_after_;
  PingReport report_;
  std::map<std::uint32_t, des::SimTime> outstanding_;  // seq -> sent time
  std::uint32_t next_seq_ = 0;
  des::EventHandle tick_;     // next scheduled send_next()
  des::EventHandle timeout_;  // straggler grace period after the last send
  std::function<void(const PingReport&)> done_;
};

}  // namespace gtw::net
