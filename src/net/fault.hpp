// Deterministic fault injection scripted against the DES clock.
//
// The testbed was not a clean machine room: the OC-48 line "showed
// stability problems ... related to signal attenuation and timing" (paper
// section 2), gateway workstations rebooted, and switch buffers were a
// shared, contended resource.  A FaultPlan scripts such incidents as timed
// events — link flaps, BER bursts, gateway (HiPPI<->ATM) host outages and
// switch-buffer squeezes — so every recovery experiment replays
// bit-identically.  Observers are notified at each fault's begin and end,
// which is how higher layers (flow::StageGraph degradation, benchmarks)
// wire themselves to the script without net depending on them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "des/scheduler.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "units/units.hpp"

namespace gtw::net {

struct FaultEvent {
  enum class Kind { kLinkDown, kBerBurst, kHostOutage, kBufferSqueeze };
  Kind kind = Kind::kLinkDown;
  std::string target;   // link or host name, for logs and bench output
  des::SimTime at;
  des::SimTime duration;
  double ber = 0.0;                // kBerBurst
  units::Bytes queue_limit{};      // kBufferSqueeze
};

const char* to_string(FaultEvent::Kind kind);

class FaultPlan {
 public:
  explicit FaultPlan(des::Scheduler& sched) : sched_(&sched) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  // `active` is true when the fault has just been applied, false when it
  // has just been reverted.  Observers run after the state change, in
  // registration order.
  using Observer = std::function<void(const FaultEvent&, bool active)>;
  void add_observer(Observer obs) { observers_.push_back(std::move(obs)); }

  // Cut `link` at `at` for `duration`, then restore it.
  void link_down(Link& link, des::SimTime at, des::SimTime duration);
  // Raise `link`'s residual bit error rate to `ber` for `duration`; the
  // rate in effect when the burst starts is restored afterwards.
  void ber_burst(Link& link, des::SimTime at, des::SimTime duration,
                 double ber);
  // Take `host` down (gateway crash) for `duration`.
  void host_outage(Host& host, des::SimTime at, des::SimTime duration);
  // Shrink `link`'s queue to `queue_limit` for `duration`; the limit in
  // effect when the squeeze starts is restored afterwards.
  void buffer_squeeze(Link& link, des::SimTime at, des::SimTime duration,
                      units::Bytes queue_limit);

  std::size_t scheduled() const { return events_.size(); }
  int active_faults() const { return active_; }
  // True while any scripted fault is in effect — the usual signal a caller
  // forwards into flow::StageGraph::set_degraded.
  bool any_active() const { return active_ > 0; }
  // End of the last scripted fault (zero when nothing is scheduled).
  des::SimTime horizon() const;

 private:
  struct Scripted {
    FaultEvent ev;
    std::function<void()> apply;   // may capture restore state on the fly
    std::function<void()> revert;
  };

  void arm(std::shared_ptr<Scripted> s);
  void notify(const FaultEvent& ev, bool active);

  des::Scheduler* sched_;
  std::vector<std::shared_ptr<Scripted>> events_;
  std::vector<Observer> observers_;
  int active_ = 0;
};

}  // namespace gtw::net
