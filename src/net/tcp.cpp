#include "net/tcp.hpp"

#include <algorithm>
#include <cassert>

namespace gtw::net {

namespace {
constexpr des::SimTime kMaxRto = des::SimTime::seconds(60.0);
}

std::uint64_t TcpConnection::ooo_bytes(const Endpoint& e) {
  std::uint64_t total = 0;
  for (const auto& [a, b] : e.ooo) total += b - a;
  return total;
}

des::TraceContext TcpConnection::ctx_for_seq(const Endpoint& e,
                                             std::uint64_t seq) {
  // messages is ordered by end_offset; the owner of `seq` is the first
  // message whose range extends past it.  Segments and stalls nest under
  // the message's own transfer span when it has one.
  for (const Message& m : e.messages)
    if (m.end_offset > seq) return des::under(m.ctx, m.span);
  return {};
}

TcpConnection::TcpConnection(Host& a, Host& b, std::uint16_t port_a,
                             std::uint16_t port_b, TcpConfig config)
    : sched_(a.scheduler()), cfg_(config) {
  ep_[0].host = &a;
  ep_[0].local_port = port_a;
  ep_[0].remote_port = port_b;
  ep_[1].host = &b;
  ep_[1].local_port = port_b;
  ep_[1].remote_port = port_a;
  for (int s = 0; s < 2; ++s) {
    ep_[s].cwnd = static_cast<double>(cfg_.initial_cwnd_segments) *
                  static_cast<double>(cfg_.mss.count());
    ep_[s].ssthresh = static_cast<double>(cfg_.recv_buffer.count());
    ep_[s].rto = cfg_.initial_rto;
    ep_[s].host->bind(IpProto::kTcp, ep_[s].local_port,
                      [this, s](const IpPacket& pkt) { on_packet(s, pkt); });
  }
}

TcpConnection::~TcpConnection() {
  des::SpanHook* h = sched_.span_hook();
  for (auto& e : ep_) {
    if (e.host != nullptr) e.host->unbind(IpProto::kTcp, e.local_port);
    e.rto_timer.cancel();
    e.ack_timer.cancel();
    if (h != nullptr) {
      // A torn-down connection (PathTransport stall reset, test teardown)
      // retires its in-flight spans as aborted rather than leaking them.
      h->abort_span(e.stall_span, sched_.now());
      e.stall_span = 0;
      for (Message& m : e.messages) {
        h->abort_span(m.span, sched_.now());
        m.span = 0;
      }
    }
  }
}

void TcpConnection::send(int side, units::Bytes amount, std::any data,
                         DeliveryCallback on_delivered) {
  assert(side == 0 || side == 1);
  Endpoint& e = ep_[side];
  e.snd_end += amount.count();
  e.stats.bytes_queued += amount.count();
  Message msg{e.snd_end, std::move(data), std::move(on_delivered)};
  if (des::SpanHook* h = sched_.span_hook(); h != nullptr) {
    msg.ctx = h->current();
    if (msg.ctx.valid())
      msg.span = h->begin_span(msg.ctx, des::SpanPhase::kTransfer, "tcp",
                               "msg", sched_.now());
  }
  e.messages.push_back(std::move(msg));
  try_send(side);
}

std::uint64_t TcpConnection::window_bytes(const Endpoint& e,
                                          const Endpoint& peer) const {
  // The peer advertises its *remaining* buffer: the receive buffer minus
  // bytes parked out of order awaiting a hole fill (in-order data is
  // consumed by the application immediately in this model).
  const std::uint64_t buffered = ooo_bytes(peer);
  const std::uint64_t recv_buffer = cfg_.recv_buffer.count();
  const std::uint64_t advertised =
      recv_buffer > buffered ? recv_buffer - buffered : 0;
  const auto cwnd = static_cast<std::uint64_t>(e.cwnd);
  return std::min<std::uint64_t>(cwnd, advertised);
}

void TcpConnection::try_send(int side) {
  Endpoint& e = ep_[side];
  const std::uint64_t mss = cfg_.mss.count();
  const std::uint64_t window = window_bytes(e, ep_[1 - side]);
  while (e.snd_nxt < e.snd_end) {
    const std::uint64_t inflight = e.snd_nxt - e.snd_una;
    std::uint64_t room = inflight >= window ? 0 : window - inflight;
    // Persist-probe rule: the segment at snd_una is the hole the peer's
    // out-of-order backlog is waiting on, so it always fits the peer's
    // buffer.  Letting it through keeps recovery alive even when the
    // backlog has collapsed the advertised window below one MSS.
    if (room < mss && e.snd_nxt == e.snd_una) room = mss;
    const std::uint32_t len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        {mss, e.snd_end - e.snd_nxt, room}));
    if (len == 0) break;
    // Anything below the high-water mark has been on the wire before
    // (go-back-N after a timeout), so it counts as a retransmission and is
    // never timed (Karn's rule).
    send_segment(side, e.snd_nxt, len, /*retransmit=*/e.snd_nxt < e.snd_max);
    e.snd_nxt += len;
    e.snd_max = std::max(e.snd_max, e.snd_nxt);
  }
}

void TcpConnection::send_segment(int side, std::uint64_t seq,
                                 std::uint32_t len, bool retransmit) {
  Endpoint& e = ep_[side];
  IpPacket pkt;
  pkt.dst = ep_[1 - side].host->id();
  pkt.proto = IpProto::kTcp;
  pkt.src_port = e.local_port;
  pkt.dst_port = e.remote_port;
  pkt.total_bytes = len + kIpHeaderBytes + kTcpHeaderBytes;
  pkt.tcp = TcpSegHeader{seq, e.rcv_nxt, len, /*valid=*/true};
  ++e.stats.segments_sent;
  if (retransmit) ++e.stats.retransmits;

  if (!retransmit && !e.timing) {
    // Time this segment for the RTT estimate (Karn's rule: never time a
    // retransmission).
    e.timing = true;
    e.timed_seq = seq + len;
    e.timed_at = sched_.now();
  }
  des::SpanHook* h = sched_.span_hook();
  des::TraceContext prev;
  if (h != nullptr) {
    // Segments (and their downstream host/link events, including the RTO
    // timer armed below) belong to the message that owns this byte range,
    // not to whichever ACK event triggered the transmission.
    pkt.ctx = ctx_for_seq(e, seq);
    prev = h->adopt(pkt.ctx);
  }
  arm_rto(side);
  e.host->send_datagram(std::move(pkt));
  if (h != nullptr) h->adopt(prev);
}

void TcpConnection::arm_rto(int side) {
  Endpoint& e = ep_[side];
  e.rto_timer.cancel();
  e.rto_timer =
      sched_.schedule_after(e.rto, [this, side]() { on_rto(side); });
}

void TcpConnection::on_rto(int side) {
  Endpoint& e = ep_[side];
  if (e.snd_una >= e.snd_end && e.snd_una == e.snd_nxt) return;  // all done
  ++e.stats.timeouts;
  if (des::SpanHook* h = sched_.span_hook();
      h != nullptr && e.stall_span == 0) {
    // Loss recovery begins: the connection makes no forward progress for
    // the application until the cumulative ACK passes today's high-water
    // mark.  One span covers the whole episode (back-to-back RTOs extend
    // it rather than opening new spans).
    des::TraceContext parent = ctx_for_seq(e, e.snd_una);
    if (!parent.valid()) parent = h->current();
    e.stall_span = h->begin_span(parent, des::SpanPhase::kRetransmitStall,
                                 "tcp", "rto", sched_.now());
    e.stall_until = e.snd_max;
  }
  // Multiplicative decrease and go-back-N.
  const double mss = static_cast<double>(cfg_.mss.count());
  const double flight = static_cast<double>(e.snd_nxt - e.snd_una);
  e.ssthresh = std::max(flight / 2.0, 2.0 * mss);
  e.cwnd = mss;
  e.dupacks = 0;
  e.timing = false;  // Karn: discard the timed sample
  e.snd_nxt = e.snd_una;
  e.rto = std::min(e.rto * 2, kMaxRto);
  try_send(side);
  arm_rto(side);
}

void TcpConnection::on_packet(int side, const IpPacket& pkt) {
  if (!pkt.tcp.valid) return;
  const TcpSegHeader m = pkt.tcp;
  if (m.len > 0) process_data(side, m);
  process_ack(side, m);
}

void TcpConnection::process_data(int side, const TcpSegHeader& m) {
  Endpoint& e = ep_[side];
  const std::uint64_t seg_end = m.seq + m.len;
  if (seg_end <= e.rcv_nxt) {
    // Old duplicate; re-ACK immediately (RFC 5681 section 4.2) so the
    // sender's duplicate-ACK machinery is never throttled by the
    // delayed-ACK timer.
    ++e.stats.dup_segments_received;
    send_ack(side, /*immediate=*/true);
    return;
  }
  if (m.seq <= e.rcv_nxt) {
    const bool filled_hole = !e.ooo.empty();
    e.rcv_nxt = seg_end;
    // Pull in any out-of-order data now contiguous.
    auto it = e.ooo.begin();
    while (it != e.ooo.end() && it->first <= e.rcv_nxt) {
      e.rcv_nxt = std::max(e.rcv_nxt, it->second);
      it = e.ooo.erase(it);
    }
    deliver_messages(1 - side);
    // A segment that fills (part of) a hole is ACKed immediately; plain
    // in-order arrivals may take the delayed path.
    send_ack(side, filled_hole);
    return;
  }
  {
    // Hole: stash the interval, keeping the list sorted and merged.  Data
    // beyond the receive buffer was never admissible under the advertised
    // window (a well-behaved sender cannot reach it; a buggy one gets it
    // discarded), which bounds the out-of-order list.
    const std::uint64_t limit = e.rcv_nxt + cfg_.recv_buffer.count();
    const std::uint64_t stash_end = std::min(seg_end, limit);
    if (m.seq < limit) {
      auto pos = std::lower_bound(
          e.ooo.begin(), e.ooo.end(), std::make_pair(m.seq, stash_end));
      if (pos != e.ooo.begin() && std::prev(pos)->second >= stash_end)
        ++e.stats.dup_segments_received;  // wholly inside a buffered interval
      pos = e.ooo.insert(pos, {m.seq, stash_end});
      // Merge neighbours.
      if (pos != e.ooo.begin() && std::prev(pos)->second >= pos->first) {
        std::prev(pos)->second = std::max(std::prev(pos)->second, pos->second);
        pos = std::prev(e.ooo.erase(pos));
      }
      while (std::next(pos) != e.ooo.end() &&
             pos->second >= std::next(pos)->first) {
        pos->second = std::max(pos->second, std::next(pos)->second);
        e.ooo.erase(std::next(pos));
      }
      e.stats.max_ooo_bytes = std::max(e.stats.max_ooo_bytes, ooo_bytes(e));
    }
  }
  // Out-of-order arrival: immediate duplicate ACK (RFC 5681), never delayed.
  send_ack(side, /*immediate=*/true);
}

void TcpConnection::send_ack(int side, bool immediate) {
  Endpoint& e = ep_[side];
  if (cfg_.delayed_ack && !immediate) {
    if (e.ack_pending) {
      // Second segment since the last ACK: flush immediately (RFC 1122).
      e.ack_timer.cancel();
      flush_ack(side);
      return;
    }
    e.ack_pending = true;
    e.ack_timer = sched_.schedule_after(cfg_.delayed_ack_timeout,
                                        [this, side]() { flush_ack(side); });
    return;
  }
  e.ack_timer.cancel();
  flush_ack(side);
}

void TcpConnection::flush_ack(int side) {
  Endpoint& e = ep_[side];
  e.ack_pending = false;
  IpPacket pkt;
  pkt.dst = ep_[1 - side].host->id();
  pkt.proto = IpProto::kTcp;
  pkt.src_port = e.local_port;
  pkt.dst_port = e.remote_port;
  pkt.total_bytes = kIpHeaderBytes + kTcpHeaderBytes;
  pkt.tcp = TcpSegHeader{0, e.rcv_nxt, 0, /*valid=*/true};
  ++e.stats.acks_sent;
  e.host->send_datagram(std::move(pkt));
}

void TcpConnection::process_ack(int side, const TcpSegHeader& m) {
  Endpoint& e = ep_[side];
  if (m.ack > e.snd_una) {
    e.snd_una = m.ack;
    if (e.stall_span != 0 && e.snd_una >= e.stall_until) {
      if (des::SpanHook* h = sched_.span_hook(); h != nullptr)
        h->end_span(e.stall_span, sched_.now());
      e.stall_span = 0;
    }
    // During go-back-N an ACK can overtake the reset send point (the first
    // resent segment fills a hole and the cumulative ACK jumps past it);
    // without this snap `snd_nxt - snd_una` underflows and the sender
    // stalls until the next (doubled) RTO.
    if (e.snd_nxt < e.snd_una) e.snd_nxt = e.snd_una;
    e.stats.bytes_acked = e.snd_una;
    e.dupacks = 0;
    // RTT sample.
    if (e.timing && m.ack >= e.timed_seq) {
      const double sample = (sched_.now() - e.timed_at).sec();
      e.timing = false;
      if (e.srtt_s < 0) {
        e.srtt_s = sample;
        e.rttvar_s = sample / 2.0;
      } else {
        const double err = sample - e.srtt_s;
        e.srtt_s += 0.125 * err;
        e.rttvar_s += 0.25 * (std::abs(err) - e.rttvar_s);
      }
      const double rto_s = e.srtt_s + 4.0 * e.rttvar_s;
      e.rto = std::max(cfg_.min_rto, des::SimTime::seconds(rto_s));
    }
    // Congestion window growth.
    const double mss = static_cast<double>(cfg_.mss.count());
    if (e.cwnd < e.ssthresh) {
      e.cwnd += mss;  // slow start: +MSS per ACK
    } else {
      e.cwnd += mss * mss / e.cwnd;
    }
    e.stats.cwnd_bytes = e.cwnd;
    e.stats.srtt_ms = e.srtt_s * 1e3;
    if (e.snd_una == e.snd_nxt && e.snd_una == e.snd_end) {
      e.rto_timer.cancel();  // everything acknowledged
    } else {
      arm_rto(side);
    }
    try_send(side);
  } else if (m.ack == e.snd_una && e.snd_nxt > e.snd_una && m.len == 0) {
    // RFC 5681: only segments carrying *no data* count as duplicate ACKs;
    // the peer's data segments repeat the cumulative ACK as a side effect
    // and must not trigger fast retransmit on bidirectional transfers.
    ++e.stats.dup_acks;
    if (++e.dupacks == 3) {
      // Fast retransmit + multiplicative decrease.
      ++e.stats.fast_retransmits;
      if (des::SpanHook* h = sched_.span_hook();
          h != nullptr && e.stall_span == 0) {
        des::TraceContext parent = ctx_for_seq(e, e.snd_una);
        if (!parent.valid()) parent = h->current();
        e.stall_span = h->begin_span(parent,
                                     des::SpanPhase::kRetransmitStall, "tcp",
                                     "fast-rtx", sched_.now());
        e.stall_until = e.snd_max;
      }
      const double flight = static_cast<double>(e.snd_nxt - e.snd_una);
      e.ssthresh =
          std::max(flight / 2.0, 2.0 * static_cast<double>(cfg_.mss.count()));
      e.cwnd = e.ssthresh;
      e.timing = false;
      const std::uint32_t len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(cfg_.mss.count(), e.snd_end - e.snd_una));
      if (len > 0) send_segment(side, e.snd_una, len, /*retransmit=*/true);
    }
  }
}

void TcpConnection::deliver_messages(int sender_side) {
  Endpoint& sender = ep_[sender_side];
  const std::uint64_t received = ep_[1 - sender_side].rcv_nxt;
  while (!sender.messages.empty() &&
         sender.messages.front().end_offset <= received) {
    Message msg = std::move(sender.messages.front());
    sender.messages.pop_front();
    des::SpanHook* h = sched_.span_hook();
    des::TraceContext prev;
    if (h != nullptr) {
      h->end_span(msg.span, sched_.now());
      // Delivery continuations (PathTransport reassembly, Communicator
      // dispatch) run under the message's own trace, not the trace of the
      // segment whose arrival happened to complete it.
      prev = h->adopt(msg.ctx);
    }
    if (msg.cb) msg.cb(msg.data, sched_.now());
    if (h != nullptr) h->adopt(prev);
  }
}

TcpConnection::Stats TcpConnection::stats(int side) const {
  Stats s = ep_[side].stats;
  s.cwnd_bytes = ep_[side].cwnd;
  s.srtt_ms = ep_[side].srtt_s * 1e3;
  s.ssthresh_bytes = ep_[side].ssthresh;
  s.rto_ms = ep_[side].rto.ms();
  return s;
}

std::uint64_t TcpConnection::bytes_received(int side) const {
  return ep_[side].rcv_nxt;
}

TcpConnection::SeqState TcpConnection::seq_state(int side) const {
  const Endpoint& e = ep_[side];
  const Endpoint& peer = ep_[1 - side];
  SeqState s;
  s.snd_una = e.snd_una;
  s.snd_nxt = e.snd_nxt;
  s.snd_max = e.snd_max;
  s.snd_end = e.snd_end;
  s.rcv_nxt = peer.rcv_nxt;
  s.ooo_buffered = ooo_bytes(peer);
  s.cwnd = e.cwnd;
  return s;
}

BulkTransferResult run_bulk_transfer(des::Scheduler& sched, Host& a, Host& b,
                                     units::Bytes amount, TcpConfig cfg,
                                     std::uint16_t port_base) {
  TcpConnection conn(a, b, port_base, static_cast<std::uint16_t>(port_base + 1),
                     cfg);
  const des::SimTime start = sched.now();
  des::SimTime done = start;
  bool finished = false;
  conn.send(0, amount, {}, [&](const std::any&, des::SimTime when) {
    done = when;
    finished = true;
  });
  sched.run();
  BulkTransferResult out;
  out.sender_stats = conn.stats(0);
  if (finished && done > start) {
    out.duration = done - start;
    out.goodput = units::per(amount.to_bits(), out.duration);
  }
  return out;
}

}  // namespace gtw::net
