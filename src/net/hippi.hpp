// HiPPI layer.  The testbed attached its supercomputers over 800 Mbit/s
// HiPPI channels into a local "HiPPI complex" (crossbar switch), with
// workstation IP gateways bridging into ATM.  We model the channel as a
// serializing link with a per-packet connection-setup overhead and the
// crossbar as a switch that forwards on the packet's final destination
// (standing in for HiPPI I-field source routing).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "net/link.hpp"
#include "net/units.hpp"

namespace gtw::net {

// HiPPI framing overhead per IP packet (FP header + burst alignment).
constexpr std::uint32_t kHippiFramingBytes = 40;

class HippiSwitch {
 public:
  HippiSwitch(des::Scheduler& sched, std::string name,
              des::SimTime crossbar_latency = des::SimTime::microseconds(1));

  int add_port(Link::Config cfg);
  FrameSink ingress(int port);
  void connect_egress(int port, FrameSink remote);

  // Packets destined to `dst` (or whose next L2 stop is the gateway `dst`)
  // leave through `port`.
  void add_station(HostId dst, int port);

  Link& egress_link(int port) { return *ports_.at(port).out; }
  std::uint64_t unroutable_drops() const { return unroutable_; }

 private:
  void on_frame(Frame f);

  struct Port {
    std::unique_ptr<Link> out;
  };

  des::Scheduler& sched_;
  std::string name_;
  des::SimTime latency_;
  std::vector<Port> ports_;
  std::map<HostId, int> stations_;
  std::uint64_t unroutable_ = 0;
};

class HippiNic : public Nic {
 public:
  HippiNic(des::Scheduler& sched, Host& owner, std::string name,
           des::SimTime propagation = des::SimTime::nanoseconds(200),
           units::Bytes mtu = kMtuHippi,
           des::SimTime connect_overhead = des::SimTime::microseconds(2));

  void transmit(IpPacket pkt, HostId next_hop) override;

  FrameSink ingress();
  Link& uplink() { return uplink_; }

 private:
  Link uplink_;
};

}  // namespace gtw::net
