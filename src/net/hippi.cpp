#include "net/hippi.hpp"

#include <utility>

namespace gtw::net {

HippiSwitch::HippiSwitch(des::Scheduler& sched, std::string name,
                         des::SimTime crossbar_latency)
    : sched_(sched), name_(std::move(name)), latency_(crossbar_latency) {}

int HippiSwitch::add_port(Link::Config cfg) {
  const int port = static_cast<int>(ports_.size());
  ports_.push_back(Port{std::make_unique<Link>(
      sched_, name_ + ".port" + std::to_string(port), cfg)});
  return port;
}

FrameSink HippiSwitch::ingress(int) {
  return [this](Frame f) { on_frame(std::move(f)); };
}

void HippiSwitch::connect_egress(int port, FrameSink remote) {
  ports_.at(port).out->set_sink(std::move(remote));
}

void HippiSwitch::add_station(HostId dst, int port) { stations_[dst] = port; }

void HippiSwitch::on_frame(Frame f) {
  // Forward on the frame's L2 next stop (stands in for the HiPPI I-field);
  // the kNoHost key acts as the default port.
  auto it = stations_.find(f.l2_dst);
  if (it == stations_.end()) it = stations_.find(kNoHost);
  if (it == stations_.end()) {
    ++unroutable_;
    return;
  }
  const int out_port = it->second;
  sched_.schedule_after(latency_, [this, out_port, f = std::move(f)]() mutable {
    ports_.at(out_port).out->submit(std::move(f));
  });
}

HippiNic::HippiNic(des::Scheduler& sched, Host& owner, std::string name,
                   des::SimTime propagation, units::Bytes mtu,
                   des::SimTime connect_overhead)
    : Nic(owner, std::move(name), mtu),
      uplink_(sched, name_ + ".up",
              Link::Config{kHippiRate, propagation, units::Bytes{4u << 20},
                           connect_overhead}) {}

void HippiNic::transmit(IpPacket pkt, HostId next_hop) {
  Frame f;
  f.wire_bytes = pkt.total_bytes + kHippiFramingBytes;
  f.l2_dst = next_hop;
  f.pkt = std::move(pkt);
  uplink_.submit(std::move(f));
}

FrameSink HippiNic::ingress() {
  return [this](Frame f) { owner_->receive_from_nic(std::move(f.pkt)); };
}

}  // namespace gtw::net
