#include "net/link.hpp"

#include <cassert>
#include <cmath>
#include <utility>

namespace gtw::net {

Link::Link(des::Scheduler& sched, std::string name, Config cfg)
    : sched_(sched), name_(std::move(name)), cfg_(cfg),
      created_at_(sched.now()) {
  assert(cfg_.rate.bps() > 0.0);
}

void Link::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (!up_) {
    // Flush the queue: anything waiting for the wire is lost with it.
    des::SpanHook* h = sched_.span_hook();
    for (const Frame& f : queue_) {
      ++outage_drops_;
      outage_dropped_bytes_ += f.wire_bytes;
      queued_bytes_ -= f.wire_bytes;
      if (h != nullptr) h->abort_span(f.span, sched_.now());
    }
    queue_.clear();
    queue_depth_.update(sched_.now(), static_cast<double>(queued_bytes_));
  } else {
    maybe_start();
  }
}

bool Link::submit(Frame f) {
  ++submitted_frames_;
  submitted_bytes_ += f.wire_bytes;
  if (!up_) {
    ++outage_drops_;
    outage_dropped_bytes_ += f.wire_bytes;
    return false;
  }
  if (units::Bytes{queued_bytes_ + f.wire_bytes} > cfg_.queue_limit) {
    ++drops_;
    dropped_bytes_ += f.wire_bytes;
    return false;
  }
  queued_bytes_ += f.wire_bytes;
  queue_depth_.update(sched_.now(), static_cast<double>(queued_bytes_));
  // Per-frame spans are an exact-mode feature: fluid bursts deliberately
  // give up per-frame identity, so they stay untraced.
  if (des::SpanHook* h = sched_.span_hook();
      h != nullptr && f.pkt.ctx.valid() &&
      cfg_.fidelity == LinkFidelity::kExact) {
    f.span = h->begin_span(f.pkt.ctx, des::SpanPhase::kQueueWait, "link",
                           name_.c_str(), sched_.now());
  }
  queue_.push_back(std::move(f));
  maybe_start();
  return true;
}

void Link::maybe_start() {
  if (transmitting_ || queue_.empty()) return;
  transmitting_ = true;

  if (cfg_.fidelity == LinkFidelity::kExact) {
    Frame f = std::move(queue_.front());
    queue_.pop_front();

    des::SpanHook* h = sched_.span_hook();
    if (h != nullptr) {
      h->end_span(f.span, sched_.now());  // queue-wait over
      f.span = f.pkt.ctx.valid()
                   ? h->begin_span(f.pkt.ctx, des::SpanPhase::kSerialize,
                                   "link", name_.c_str(), sched_.now())
                   : 0;
    }
    const des::SimTime tx =
        units::transmission_time(units::Bytes{f.wire_bytes}, cfg_.rate) +
        cfg_.per_frame_overhead;
    busy_accum_ += tx;
    // Bracket the schedule with adopt(): the transmit event belongs to the
    // frame's trace, not to whichever event pulled it off the queue.
    const des::TraceContext prev =
        h != nullptr ? h->adopt(f.pkt.ctx) : des::TraceContext{};
    sched_.schedule_after(tx, [this, f = std::move(f)]() mutable {
      transmitting_ = false;
      queued_bytes_ -= f.wire_bytes;
      queue_depth_.update(sched_.now(), static_cast<double>(queued_bytes_));
      des::SpanHook* h2 = sched_.span_hook();
      if (!up_) {
        // The line was cut while this frame was being clocked out.
        ++outage_drops_;
        outage_dropped_bytes_ += f.wire_bytes;
        if (h2 != nullptr) h2->abort_span(f.span, sched_.now());
        return;
      }
      ++frames_sent_;
      bytes_sent_ += f.wire_bytes;
      if (h2 != nullptr) h2->end_span(f.span, sched_.now());  // serialized
      if (cfg_.bit_error_rate > 0.0) {
        // P(frame corrupted) = 1 - (1-BER)^bits; the AAL5 CRC discards it.
        const double bits = static_cast<double>(f.wire_bytes) * 8.0;
        const double p_ok = std::exp(bits * std::log1p(-cfg_.bit_error_rate));
        if (!rng_.bernoulli(p_ok)) {
          ++corrupted_;
          maybe_start();
          return;
        }
      }
      if (sink_) {
        if (h2 != nullptr && f.pkt.ctx.valid())
          f.span = h2->begin_span(f.pkt.ctx, des::SpanPhase::kPropagate,
                                  "link", name_.c_str(), sched_.now());
        sched_.schedule_after(cfg_.propagation, [this, f = std::move(f)]() mutable {
          if (des::SpanHook* h3 = sched_.span_hook(); h3 != nullptr)
            h3->end_span(f.span, sched_.now());
          f.span = 0;
          sink_(std::move(f));
        });
      }
      maybe_start();
    });
    if (h != nullptr) h->adopt(prev);
    return;
  }

  // Fluid mode: clock out a burst of frames under one transmit event.  The
  // burst spans at most burst_frames frames and burst_window of wire time
  // (always at least one frame, so oversized frames degrade gracefully to
  // the exact path's one-event-per-frame behaviour).
  const BurstId idx = burst_pool_.acquire();
  auto& burst = burst_pool_[idx];
  burst.clear();
  des::SimTime total = des::SimTime::zero();
  while (!queue_.empty() && burst.size() < cfg_.burst_frames) {
    const des::SimTime tx =
        units::transmission_time(units::Bytes{queue_.front().wire_bytes},
                                 cfg_.rate) +
        cfg_.per_frame_overhead;
    if (!burst.empty() && total + tx > cfg_.burst_window) break;
    total += tx;
    burst.push_back(std::move(queue_.front()));
    queue_.pop_front();
    // A frame submitted under exact fidelity may carry an open queue span
    // into a runtime switch to fluid; bursts are untraced, so retire it.
    if (des::SpanHook* h = sched_.span_hook();
        h != nullptr && burst.back().span != 0) {
      h->end_span(burst.back().span, sched_.now());
      burst.back().span = 0;
    }
  }
  busy_accum_ += total;
  sched_.schedule_after(total, [this, idx]() { finish_burst(idx); });
}

void Link::finish_burst(BurstId idx) {
  auto& burst = burst_pool_[idx];
  transmitting_ = false;
  for (const Frame& f : burst) queued_bytes_ -= f.wire_bytes;
  queue_depth_.update(sched_.now(), static_cast<double>(queued_bytes_));
  if (!up_) {
    // The line was cut mid-burst: every frame being clocked out is lost.
    for (const Frame& f : burst) {
      ++outage_drops_;
      outage_dropped_bytes_ += f.wire_bytes;
    }
    burst.clear();
    burst_pool_.release(idx);
    return;
  }
  ++bursts_completed_;
  // Per-frame BER draws in queue order — the same draw sequence the exact
  // path would make, so a link's error stream is fidelity-independent.
  std::size_t alive = 0;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    Frame& f = burst[i];
    ++frames_sent_;
    bytes_sent_ += f.wire_bytes;
    if (cfg_.bit_error_rate > 0.0) {
      const double bits = static_cast<double>(f.wire_bytes) * 8.0;
      const double p_ok = std::exp(bits * std::log1p(-cfg_.bit_error_rate));
      if (!rng_.bernoulli(p_ok)) {
        ++corrupted_;
        continue;
      }
    }
    if (alive != i) burst[alive] = std::move(f);
    ++alive;
  }
  burst.resize(alive);
  if (!burst.empty() && sink_) {
    // One propagation event delivers the whole burst, in order, at the
    // burst's completion time plus the propagation delay.
    sched_.schedule_after(cfg_.propagation, [this, idx]() {
      auto& b = burst_pool_[idx];
      for (Frame& f : b) sink_(std::move(f));
      b.clear();
      burst_pool_.release(idx);
    });
  } else {
    burst.clear();
    burst_pool_.release(idx);
  }
  maybe_start();
}

double Link::utilization() const {
  const des::SimTime span = sched_.now() - created_at_;
  if (span <= des::SimTime::zero()) return 0.0;
  return busy_accum_.sec() / span.sec();
}

double Link::mean_queue_bytes() const {
  return queue_depth_.average(sched_.now());
}

}  // namespace gtw::net
