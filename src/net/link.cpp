#include "net/link.hpp"

#include <cassert>
#include <cmath>
#include <utility>

namespace gtw::net {

Link::Link(des::Scheduler& sched, std::string name, Config cfg)
    : sched_(sched), name_(std::move(name)), cfg_(cfg),
      created_at_(sched.now()) {
  assert(cfg_.rate.bps() > 0.0);
}

void Link::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (!up_) {
    // Flush the queue: anything waiting for the wire is lost with it.
    for (const Frame& f : queue_) {
      ++outage_drops_;
      outage_dropped_bytes_ += f.wire_bytes;
      queued_bytes_ -= f.wire_bytes;
    }
    queue_.clear();
    queue_depth_.update(sched_.now(), static_cast<double>(queued_bytes_));
  } else {
    maybe_start();
  }
}

bool Link::submit(Frame f) {
  if (!up_) {
    ++outage_drops_;
    outage_dropped_bytes_ += f.wire_bytes;
    return false;
  }
  if (units::Bytes{queued_bytes_ + f.wire_bytes} > cfg_.queue_limit) {
    ++drops_;
    dropped_bytes_ += f.wire_bytes;
    return false;
  }
  queued_bytes_ += f.wire_bytes;
  queue_depth_.update(sched_.now(), static_cast<double>(queued_bytes_));
  queue_.push_back(std::move(f));
  maybe_start();
  return true;
}

void Link::maybe_start() {
  if (transmitting_ || queue_.empty()) return;
  transmitting_ = true;
  Frame f = std::move(queue_.front());
  queue_.pop_front();

  const des::SimTime tx =
      units::transmission_time(units::Bytes{f.wire_bytes}, cfg_.rate) +
      cfg_.per_frame_overhead;
  busy_accum_ += tx;
  sched_.schedule_after(tx, [this, f = std::move(f)]() mutable {
    transmitting_ = false;
    queued_bytes_ -= f.wire_bytes;
    queue_depth_.update(sched_.now(), static_cast<double>(queued_bytes_));
    if (!up_) {
      // The line was cut while this frame was being clocked out.
      ++outage_drops_;
      outage_dropped_bytes_ += f.wire_bytes;
      return;
    }
    ++frames_sent_;
    bytes_sent_ += f.wire_bytes;
    if (cfg_.bit_error_rate > 0.0) {
      // P(frame corrupted) = 1 - (1-BER)^bits; the AAL5 CRC discards it.
      const double bits = static_cast<double>(f.wire_bytes) * 8.0;
      const double p_ok = std::exp(bits * std::log1p(-cfg_.bit_error_rate));
      if (!rng_.bernoulli(p_ok)) {
        ++corrupted_;
        maybe_start();
        return;
      }
    }
    if (sink_) {
      sched_.schedule_after(cfg_.propagation,
                            [sink = sink_, f = std::move(f)]() mutable {
                              sink(std::move(f));
                            });
    }
    maybe_start();
  });
}

double Link::utilization() const {
  const des::SimTime span = sched_.now() - created_at_;
  if (span <= des::SimTime::zero()) return 0.0;
  return busy_accum_.sec() / span.sec();
}

double Link::mean_queue_bytes() const {
  return queue_depth_.average(sched_.now());
}

}  // namespace gtw::net
