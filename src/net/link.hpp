// Unidirectional serializing link: the building block for ATM fibres, HiPPI
// channels and switch output ports.  A link owns a FIFO of frames, transmits
// them back-to-back at its configured rate, and delivers each frame to its
// sink after the propagation delay.  Frames that would overflow the queue
// limit are dropped whole (early packet discard, as ATM switches of the era
// did for AAL5 traffic).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "des/pool.hpp"
#include "des/random.hpp"
#include "des/scheduler.hpp"
#include "des/stats.hpp"
#include "net/packet.hpp"
#include "units/units.hpp"

namespace gtw::net {

struct Frame {
  IpPacket pkt;
  std::uint32_t wire_bytes = 0;  // bytes on the wire including L2 overhead
  std::uint32_t vc = 0;          // ATM virtual circuit id (0 = not ATM)
  HostId l2_dst = kNoHost;       // L2 next stop (HiPPI station addressing)
  // Open link-layer span riding the frame between its queue/transmit
  // events (obs::SpanTracer, DESIGN.md §13); 0 when untraced.
  std::uint64_t span = 0;
};

using FrameSink = std::function<void(Frame)>;

// Fidelity of the serialization model (DESIGN.md §10).
//  kExact — one transmit-complete and one propagation event per frame;
//    per-frame delivery timestamps are exact.  The default, and the mode all
//    paper-figure benches run in.
//  kFluid — frames are clocked out in bursts: one transmit event covers up
//    to burst_frames frames (bounded by burst_window of wire time), and the
//    survivors share one propagation event, arriving together at the burst's
//    end.  Admission, queue limits, per-frame BER draws (same order as
//    exact), outage and drop accounting are unchanged — only intra-burst
//    timestamp spread is approximated, bounded by burst_window.
enum class LinkFidelity : std::uint8_t { kExact, kFluid };

class Link {
 public:
  struct Config {
    units::BitRate rate;                       // usable L2 line rate
    des::SimTime propagation = des::SimTime::zero();
    units::Bytes queue_limit{1 << 20};         // wire bytes admitted to queue
    des::SimTime per_frame_overhead = des::SimTime::zero();  // e.g. HiPPI connect
    // Residual bit error rate.  The testbed's OC-48 line initially showed
    // "stability problems ... related to signal attenuation and timing"
    // (paper section 2); a frame is lost with probability
    // 1-(1-BER)^bits.  0 disables corruption.
    double bit_error_rate = 0.0;
    // Serialization fidelity (see LinkFidelity).  Burst caps only apply in
    // kFluid mode; the delivery-timestamp error is bounded by burst_window.
    LinkFidelity fidelity = LinkFidelity::kExact;
    std::uint32_t burst_frames = 64;
    des::SimTime burst_window = des::SimTime::microseconds(50);
  };

  Link(des::Scheduler& sched, std::string name, Config cfg);

  void set_sink(FrameSink sink) { sink_ = std::move(sink); }

  // Degrade (or repair) the line at runtime — models the testbed's early
  // attenuation/timing problems and their later fix.
  void set_bit_error_rate(double ber) { cfg_.bit_error_rate = ber; }

  // Switch the serialization model at runtime; takes effect at the next
  // transmission start (an in-flight frame or burst finishes under the mode
  // it began with).
  void set_fidelity(LinkFidelity f) { cfg_.fidelity = f; }
  LinkFidelity fidelity() const { return cfg_.fidelity; }
  void set_burst_limits(std::uint32_t frames, des::SimTime window) {
    cfg_.burst_frames = frames;
    cfg_.burst_window = window;
  }

  // Cut (or restore) the line.  While down, new submissions are refused,
  // the queue is flushed and anything mid-transmission is lost — a fibre
  // cut takes the photons with it.  Frames already past the link (in the
  // propagation stage) still arrive.
  void set_up(bool up);
  bool up() const { return up_; }

  // Shrink (or restore) the queue at runtime — a switch-buffer squeeze.
  // Already-queued frames are kept even if they exceed the new limit; the
  // limit gates admissions only.
  void set_queue_limit(units::Bytes limit) { cfg_.queue_limit = limit; }

  // Enqueue a frame; returns false (and counts a drop) on overflow.
  bool submit(Frame f);

  const std::string& name() const { return name_; }
  const Config& config() const { return cfg_; }

  std::uint64_t queue_bytes() const { return queued_bytes_; }
  std::size_t queue_frames() const { return queue_.size(); }
  // Every submit() attempt, accepted or refused.  Together with the
  // outcome counters below these close the link's conservation law
  // (check::attach_link): submitted == sent + dropped + outage-dropped +
  // still-queued, in bytes at any instant and in frames once drained.
  std::uint64_t submitted_frames() const { return submitted_frames_; }
  std::uint64_t submitted_bytes() const { return submitted_bytes_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t dropped_bytes() const { return dropped_bytes_; }
  std::uint64_t corrupted_frames() const { return corrupted_; }
  std::uint64_t outage_drops() const { return outage_drops_; }
  std::uint64_t outage_dropped_bytes() const { return outage_dropped_bytes_; }
  double utilization() const;   // busy fraction since construction
  double mean_queue_bytes() const;

  // Fluid-mode accounting (0 in exact mode).
  std::uint64_t bursts_completed() const { return bursts_completed_; }
  std::size_t burst_pool_slots() const { return burst_pool_.slots(); }
  std::size_t burst_pool_in_use() const { return burst_pool_.in_use(); }
  std::size_t burst_pool_high_water() const { return burst_pool_.high_water(); }

 private:
  using BurstId = des::SlabPool<std::vector<Frame>, 16>::Index;

  void maybe_start();
  void finish_burst(BurstId idx);

  des::Scheduler& sched_;
  std::string name_;
  Config cfg_;
  FrameSink sink_;

  std::deque<Frame> queue_;
  std::uint64_t queued_bytes_ = 0;
  bool transmitting_ = false;
  bool up_ = true;

  std::uint64_t submitted_frames_ = 0;
  std::uint64_t submitted_bytes_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t outage_drops_ = 0;
  std::uint64_t outage_dropped_bytes_ = 0;
  des::Rng rng_{0x6c696e6bULL};  // per-link error stream
  des::SimTime busy_accum_ = des::SimTime::zero();
  des::SimTime created_at_ = des::SimTime::zero();
  mutable des::TimeWeighted queue_depth_;

  // Fluid mode: in-flight bursts live in pooled frame vectors (capacity is
  // retained across reuse), so batching adds no per-burst allocation either.
  des::SlabPool<std::vector<Frame>, 16> burst_pool_;
  std::uint64_t bursts_completed_ = 0;
};

}  // namespace gtw::net
