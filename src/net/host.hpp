// Simulated end system (workstation, supercomputer front-end, or gateway).
//
// A Host owns one or more NICs, a routing table keyed by destination host,
// a serialized CPU charged per packet for protocol processing, and the
// transport demultiplexer.  A host with `set_forwarding(true)` relays
// packets not addressed to it — this is exactly the HiPPI<->ATM IP gateway
// role the testbed gave to the SGI O200 / Sun Ultra 30 / Sun E5000
// workstations (paper, section 2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "des/scheduler.hpp"
#include "net/cpu.hpp"
#include "net/packet.hpp"
#include "units/units.hpp"

namespace gtw::net {

class Host;

// Attachment point of a host to some L2 technology (ATM, HiPPI).
class Nic {
 public:
  Nic(Host& owner, std::string name, units::Bytes mtu)
      : owner_(&owner), name_(std::move(name)), mtu_(mtu) {}
  virtual ~Nic() = default;

  // Transmit `pkt` toward `next_hop` (the L2 neighbour, which is the final
  // destination when directly attached).
  virtual void transmit(IpPacket pkt, HostId next_hop) = 0;

  units::Bytes mtu() const { return mtu_; }
  const std::string& name() const { return name_; }
  Host& owner() { return *owner_; }

 protected:
  Host* owner_;
  std::string name_;
  units::Bytes mtu_;
};

// Per-host protocol-stack cost model.
struct HostCosts {
  des::SimTime per_packet_send = des::SimTime::microseconds(20);
  des::SimTime per_packet_recv = des::SimTime::microseconds(20);
  double per_byte_send_ns = 2.0;  // ns per payload byte (copy + checksum)
  double per_byte_recv_ns = 2.0;
};

class Host {
 public:
  using PortHandler = std::function<void(const IpPacket&)>;

  Host(des::Scheduler& sched, std::string name, HostId id,
       HostCosts costs = {});

  HostId id() const { return id_; }
  const std::string& name() const { return name_; }
  des::Scheduler& scheduler() { return sched_; }
  CpuResource& cpu() { return cpu_; }
  const HostCosts& costs() const { return costs_; }

  // Routing.
  void add_route(HostId dst, Nic* nic, HostId next_hop);
  void set_default_route(Nic* nic, HostId next_hop);
  // MTU of the NIC a packet to `dst` would leave through (0 if unroutable).
  units::Bytes route_mtu(HostId dst) const;

  void set_forwarding(bool on) { forwarding_ = on; }

  // Take the host down (crash / reboot of a gateway workstation): while
  // down it neither sends, receives, nor forwards — packets it would have
  // handled are silently dropped and counted.  Transport state (TCP
  // connections bound here) survives, as the processes do across a NIC or
  // kernel-route outage.
  void set_up(bool up) { up_ = up; }
  bool up() const { return up_; }
  std::uint64_t outage_drops() const { return outage_drops_; }

  // Transport interface: send one datagram (fragmented at the egress NIC's
  // MTU if needed) after charging send-side CPU cost.
  void send_datagram(IpPacket pkt);
  // Register a receiver for (proto, port).
  void bind(IpProto proto, std::uint16_t port, PortHandler handler);
  void unbind(IpProto proto, std::uint16_t port);

  // Called by NICs on frame arrival.
  void receive_from_nic(IpPacket pkt);

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t packets_forwarded() const { return packets_forwarded_; }
  std::uint64_t unroutable_drops() const { return unroutable_; }
  std::uint64_t next_datagram_id() { return ++datagram_seq_; }

  // Receive-path conservation (check::attach_host).  The historical
  // counters above mix send- and receive-side causes; these split out the
  // NIC-arrival ledger so that, once the scheduler drains,
  //   nic_arrivals == received + forwarded + recv_unroutable + recv_outage.
  std::uint64_t nic_arrivals() const { return nic_arrivals_; }
  std::uint64_t recv_unroutable_drops() const { return recv_unroutable_; }
  std::uint64_t recv_outage_drops() const { return recv_outage_drops_; }
  // Datagrams sitting half-reassembled right now; the 500 ms fragment
  // timeout guarantees this is zero once the scheduler drains.
  std::size_t reassembly_pending() const { return reassembly_.size(); }

 private:
  struct Route {
    Nic* nic = nullptr;
    HostId next_hop = kNoHost;
  };
  struct Reassembly {
    std::uint32_t received_bytes = 0;
    std::uint32_t total_bytes = 0;  // 0 until the last fragment arrives
    IpPacket first;                 // carries ports/payload of the datagram
    des::EventHandle timeout;
    std::uint64_t span = 0;         // open reassembly-wait span (obs)
  };

  const Route* lookup(HostId dst) const;
  void emit(IpPacket pkt, const Route& route);
  void deliver_local(IpPacket pkt);
  void dispatch(const IpPacket& pkt);
  des::SimTime send_cost(const IpPacket& pkt) const;
  des::SimTime recv_cost(const IpPacket& pkt) const;

  des::Scheduler& sched_;
  std::string name_;
  HostId id_;
  HostCosts costs_;
  CpuResource cpu_;

  // Ordered maps (not unordered): host state sits on every packet's path,
  // and the determinism contract bans unspecified iteration order from
  // event-producing code (tools/lint/gtw_lint.py, rule unordered-container).
  std::map<HostId, Route> routes_;
  Route default_route_;
  bool forwarding_ = false;
  bool up_ = true;
  std::uint64_t outage_drops_ = 0;

  std::map<std::pair<std::uint8_t, std::uint16_t>, PortHandler> handlers_;
  std::map<std::uint64_t, Reassembly> reassembly_;

  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t packets_forwarded_ = 0;
  std::uint64_t unroutable_ = 0;
  std::uint64_t nic_arrivals_ = 0;
  std::uint64_t recv_unroutable_ = 0;
  std::uint64_t recv_outage_drops_ = 0;
  std::uint64_t datagram_seq_ = 0;
  static std::uint64_t next_packet_id_;
};

}  // namespace gtw::net
