// IP packet descriptor.  Payload bytes are not materialised (a 2.4 Gbit/s
// bulk transfer would churn gigabytes); instead packets carry sizes plus an
// optional shared, opaque payload handle that upper layers (the meta
// library, the FIRE pipeline) use to hand real data across the simulated
// network without copying.
#pragma once

#include <any>
#include <cstdint>
#include <memory>

#include "des/span_hook.hpp"

namespace gtw::net {

using HostId = std::uint32_t;
constexpr HostId kNoHost = 0xffffffff;

enum class IpProto : std::uint8_t { kTcp = 6, kUdp = 17 };

// TCP segment header, carried inline in the packet descriptor.  A 2.4 Gbit/s
// transfer moves millions of segments; boxing this into the shared payload
// handle (as early versions did) cost two heap allocations per segment —
// inline, a segment is allocation-free end to end.
struct TcpSegHeader {
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint32_t len = 0;
  bool valid = false;  // true iff this packet carries a TCP header
};

struct IpPacket {
  std::uint64_t id = 0;            // unique per simulation, for tracing
  HostId src = kNoHost;
  HostId dst = kNoHost;
  IpProto proto = IpProto::kUdp;
  std::uint32_t total_bytes = 0;   // IP header + transport header + payload
  std::uint8_t ttl = 64;

  // Transport demultiplexing.
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  // Inline transport header (see TcpSegHeader).
  TcpSegHeader tcp;

  // Opaque application payload handle (meta-library messages, FIRE images);
  // transport *headers* live inline above — this is for upper-layer data
  // only, so the per-segment hot path never touches the heap.
  std::shared_ptr<const std::any> payload;

  // IP fragmentation state (RFC 791 semantics at packet granularity).
  std::uint32_t datagram_id = 0;
  std::uint32_t frag_offset = 0;   // bytes of transport data preceding this
  bool more_fragments = false;

  // Causal trace identity (DESIGN.md §13).  Rides the packet through
  // fragmentation, forwarding and retransmission; trace_id 0 = untraced.
  des::TraceContext ctx;

  std::uint32_t payload_bytes() const {
    return total_bytes >= 20 ? total_bytes - 20 : 0;
  }
};

}  // namespace gtw::net
