#include "net/host.hpp"

#include <cassert>
#include <cmath>

#include "net/units.hpp"

namespace gtw::net {

std::uint64_t Host::next_packet_id_ = 0;

Host::Host(des::Scheduler& sched, std::string name, HostId id, HostCosts costs)
    : sched_(sched), name_(std::move(name)), id_(id), costs_(costs),
      cpu_(sched, name_ + ".cpu") {}

void Host::add_route(HostId dst, Nic* nic, HostId next_hop) {
  routes_[dst] = Route{nic, next_hop};
}

void Host::set_default_route(Nic* nic, HostId next_hop) {
  default_route_ = Route{nic, next_hop};
}

const Host::Route* Host::lookup(HostId dst) const {
  if (auto it = routes_.find(dst); it != routes_.end()) return &it->second;
  if (default_route_.nic != nullptr) return &default_route_;
  return nullptr;
}

units::Bytes Host::route_mtu(HostId dst) const {
  const Route* r = lookup(dst);
  return r != nullptr ? r->nic->mtu() : units::Bytes::zero();
}

des::SimTime Host::send_cost(const IpPacket& pkt) const {
  return costs_.per_packet_send +
         des::SimTime::picoseconds(static_cast<std::int64_t>(
             costs_.per_byte_send_ns * 1e3 * pkt.total_bytes));
}

des::SimTime Host::recv_cost(const IpPacket& pkt) const {
  return costs_.per_packet_recv +
         des::SimTime::picoseconds(static_cast<std::int64_t>(
             costs_.per_byte_recv_ns * 1e3 * pkt.total_bytes));
}

void Host::send_datagram(IpPacket pkt) {
  if (!up_) {
    ++outage_drops_;
    return;
  }
  const Route* route = lookup(pkt.dst);
  if (route == nullptr) {
    ++unroutable_;
    return;
  }
  pkt.src = id_;
  if (pkt.datagram_id == 0)
    pkt.datagram_id = static_cast<std::uint32_t>(next_datagram_id());
  // Workload origins upstream (tcp, meta, flow) stamp the context before
  // reaching here; an unstamped packet inherits the running event's trace.
  if (des::SpanHook* h = sched_.span_hook();
      h != nullptr && !pkt.ctx.valid()) {
    pkt.ctx = h->current();
  }

  const std::uint32_t mtu =
      static_cast<std::uint32_t>(route->nic->mtu().count());
  if (pkt.total_bytes <= mtu) {
    pkt.id = ++next_packet_id_;
    emit(std::move(pkt), *route);
    return;
  }

  // IP fragmentation: split the transport payload into MTU-sized pieces,
  // each re-carrying the 20-byte IP header; offsets are 8-byte aligned as
  // in RFC 791.
  const std::uint32_t payload = pkt.total_bytes - kIpHeaderBytes;
  const std::uint32_t per_frag = ((mtu - kIpHeaderBytes) / 8) * 8;
  std::uint32_t offset = 0;
  while (offset < payload) {
    const std::uint32_t chunk = std::min(per_frag, payload - offset);
    IpPacket frag = pkt;
    frag.id = ++next_packet_id_;
    frag.total_bytes = chunk + kIpHeaderBytes;
    frag.frag_offset = offset;
    frag.more_fragments = (offset + chunk) < payload;
    // Only the first fragment carries the transport header and payload.
    if (offset != 0) {
      frag.tcp = TcpSegHeader{};
      frag.payload.reset();
    }
    offset += chunk;
    emit(std::move(frag), *route);
  }
}

void Host::emit(IpPacket pkt, const Route& route) {
  des::SpanHook* h = sched_.span_hook();
  std::uint64_t span = 0;
  des::TraceContext prev;
  if (h != nullptr && pkt.ctx.valid()) {
    // Covers both the wait behind earlier packets on the serialized CPU
    // and this packet's own protocol cost.
    span = h->begin_span(pkt.ctx, des::SpanPhase::kHostCpu, "host",
                         name_.c_str(), sched_.now());
    prev = h->adopt(pkt.ctx);
  }
  cpu_.execute(send_cost(pkt),
               [this, pkt = std::move(pkt), &route, span]() mutable {
                 if (des::SpanHook* h2 = sched_.span_hook(); h2 != nullptr)
                   h2->end_span(span, sched_.now());
                 ++packets_sent_;
                 route.nic->transmit(std::move(pkt), route.next_hop);
               });
  if (h != nullptr && span != 0) h->adopt(prev);
}

void Host::receive_from_nic(IpPacket pkt) {
  ++nic_arrivals_;
  if (!up_) {
    ++outage_drops_;
    ++recv_outage_drops_;
    return;
  }
  des::SpanHook* h = sched_.span_hook();
  std::uint64_t span = 0;
  des::TraceContext prev;
  if (h != nullptr && pkt.ctx.valid()) {
    span = h->begin_span(pkt.ctx, des::SpanPhase::kHostCpu, "host",
                         name_.c_str(), sched_.now());
    prev = h->adopt(pkt.ctx);
  }
  cpu_.execute(recv_cost(pkt), [this, pkt = std::move(pkt), span]() mutable {
    if (des::SpanHook* h2 = sched_.span_hook(); h2 != nullptr)
      h2->end_span(span, sched_.now());
    if (pkt.dst != id_) {
      if (!forwarding_ || pkt.ttl == 0) {
        ++unroutable_;
        ++recv_unroutable_;
        return;
      }
      const Route* route = lookup(pkt.dst);
      if (route == nullptr) {
        ++unroutable_;
        ++recv_unroutable_;
        return;
      }
      --pkt.ttl;
      ++packets_forwarded_;
      // Forwarding charges send-side cost too (store-and-forward stack).
      emit(std::move(pkt), *route);
      return;
    }
    ++packets_received_;
    deliver_local(std::move(pkt));
  });
}

void Host::deliver_local(IpPacket pkt) {
  if (pkt.frag_offset == 0 && !pkt.more_fragments) {
    dispatch(pkt);
    return;
  }
  // Reassembly keyed by (src, datagram id).
  const std::uint64_t key =
      (static_cast<std::uint64_t>(pkt.src) << 32) ^ pkt.datagram_id;
  Reassembly& re = reassembly_[key];
  if (re.received_bytes == 0 && !re.timeout.pending()) {
    re.timeout = sched_.schedule_after(
        des::SimTime::milliseconds(500),
        [this, key]() {
          auto it = reassembly_.find(key);
          if (it == reassembly_.end()) return;
          if (des::SpanHook* h = sched_.span_hook(); h != nullptr)
            h->abort_span(it->second.span, sched_.now());
          reassembly_.erase(it);
        });
    if (des::SpanHook* h = sched_.span_hook();
        h != nullptr && pkt.ctx.valid()) {
      re.span = h->begin_span(pkt.ctx, des::SpanPhase::kReassemblyWait,
                              "host", name_.c_str(), sched_.now());
    }
  }
  re.received_bytes += pkt.total_bytes - kIpHeaderBytes;
  if (pkt.frag_offset == 0) re.first = pkt;
  if (!pkt.more_fragments)
    re.total_bytes = pkt.frag_offset + pkt.total_bytes - kIpHeaderBytes;

  if (re.total_bytes != 0 && re.received_bytes >= re.total_bytes) {
    IpPacket whole = re.first;
    whole.total_bytes = re.total_bytes + kIpHeaderBytes;
    whole.frag_offset = 0;
    whole.more_fragments = false;
    re.timeout.cancel();
    if (des::SpanHook* h = sched_.span_hook(); h != nullptr)
      h->end_span(re.span, sched_.now());
    reassembly_.erase(key);
    dispatch(whole);
  }
}

void Host::dispatch(const IpPacket& pkt) {
  auto it = handlers_.find({static_cast<std::uint8_t>(pkt.proto), pkt.dst_port});
  if (it != handlers_.end()) it->second(pkt);
}

void Host::bind(IpProto proto, std::uint16_t port, PortHandler handler) {
  handlers_[{static_cast<std::uint8_t>(proto), port}] = std::move(handler);
}

void Host::unbind(IpProto proto, std::uint16_t port) {
  handlers_.erase({static_cast<std::uint8_t>(proto), port});
}

}  // namespace gtw::net
