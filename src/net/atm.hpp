// ATM layer: AAL5 adaptation on host NICs, output-queued cell switches, and
// permanent-virtual-circuit provisioning across a switch fabric.
//
// Frames move at AAL5-PDU granularity but with exact cell arithmetic: a PDU
// of N bytes occupies ceil((N+8)/48) cells = that many * 53 bytes of wire
// time (see net/units.hpp).  This keeps event counts per-packet rather than
// per-cell while preserving the cell tax and queueing behaviour that the
// paper's throughput figures reflect.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "net/link.hpp"
#include "net/units.hpp"

namespace gtw::net {

// Output-queued ATM switch (the testbed used Fore ASX-4000s).  Each port
// has an egress Link; routing is per-(ingress port, VC) with VC rewriting.
class AtmSwitch {
 public:
  AtmSwitch(des::Scheduler& sched, std::string name,
            des::SimTime switching_latency = des::SimTime::microseconds(5));

  // Add a port whose egress side transmits with `cfg`; returns the port no.
  int add_port(Link::Config cfg);

  // The sink a neighbour should deliver frames into to reach `port`.
  FrameSink ingress(int port);
  // Connect the egress of `port` to a remote sink.
  void connect_egress(int port, FrameSink remote);

  void add_route(int in_port, std::uint32_t in_vc, int out_port,
                 std::uint32_t out_vc);

  Link& egress_link(int port) { return *ports_.at(port).out; }
  const Link& egress_link(int port) const { return *ports_.at(port).out; }
  const std::string& name() const { return name_; }
  int port_count() const { return static_cast<int>(ports_.size()); }
  std::uint64_t unroutable_drops() const { return unroutable_; }
  // Frame-conservation ledger (check::attach_atm_switch): every frame that
  // entered any ingress port.  At drain, ingress == unroutable + the sum of
  // the egress links' submit attempts — a frame either found its VC route
  // or was counted, never silently vanished in the fabric.
  std::uint64_t ingress_frames() const { return ingress_frames_; }
  std::uint64_t ingress_bytes() const { return ingress_bytes_; }

 private:
  void on_frame(int port, Frame f);

  struct Port {
    std::unique_ptr<Link> out;
  };

  des::Scheduler& sched_;
  std::string name_;
  des::SimTime latency_;
  std::vector<Port> ports_;
  std::map<std::pair<int, std::uint32_t>, std::pair<int, std::uint32_t>> vcs_;
  std::uint64_t unroutable_ = 0;
  std::uint64_t ingress_frames_ = 0;
  std::uint64_t ingress_bytes_ = 0;
};

// Host attachment to ATM with Classical-IP (RFC 1577) encapsulation: each IP
// packet becomes one LLC/SNAP-framed AAL5 PDU on the VC provisioned for the
// next-hop host.
class AtmNic : public Nic {
 public:
  AtmNic(des::Scheduler& sched, Host& owner, std::string name,
         Link::Config uplink_cfg, units::Bytes mtu = kMtuAtmDefault);

  void transmit(IpPacket pkt, HostId next_hop) override;

  // Wiring helpers used by the provisioner.
  FrameSink ingress();                       // frames arriving from the fabric
  Link& uplink() { return uplink_; }         // egress toward the fabric
  void map_vc(HostId next_hop, std::uint32_t vc) { vc_map_[next_hop] = vc; }

  // CBR traffic shaping: pace the VC toward `next_hop` to `rate` so it
  // never exceeds its contract — how an ATM network protects a video
  // stream from best-effort cross traffic (and the switches from it).
  void shape_vc(HostId next_hop, units::BitRate rate);

  std::uint64_t no_vc_drops() const { return no_vc_; }

 private:
  struct Shaper {
    units::BitRate rate;
    des::SimTime next_free;
  };

  des::Scheduler& sched_;
  Link uplink_;
  std::map<HostId, std::uint32_t> vc_map_;
  std::map<std::uint32_t, Shaper> shapers_;  // keyed by VC
  std::uint64_t no_vc_ = 0;
};

// Provisioning helper: allocates fresh VC numbers and installs the forward
// and reverse routes for a path  nicA -> swA:portIn ... -> nicB  given as a
// sequence of (switch, ingress port, egress port) hops.  The physical
// connections (who feeds whose ingress) must already be wired.
struct VcHop {
  AtmSwitch* sw;
  int in_port;
  int out_port;
};

class VcAllocator {
 public:
  // Provision both directions between the two NICs; the reverse path uses
  // the mirrored hop list.  Registers next-hop VC mappings on both NICs.
  void provision(AtmNic& a, AtmNic& b, const std::vector<VcHop>& path);

 private:
  std::uint32_t next_vc_ = 32;  // first VCs reserved, as in practice
};

}  // namespace gtw::net
