// Rate and size constants for the network substrate, expressed in the
// strong unit types from units/units.hpp.  The named constants match the
// technologies deployed in the Gigabit Testbed West (HPDC'99 paper,
// section 2): line rates are units::BitRate, sizes are units::Bytes, and
// AAL5 cell packing is available both raw (for in-packet uint32 math) and
// typed (units::Bytes -> units::Cells).
#pragma once

#include <cstdint>

#include "units/units.hpp"

namespace gtw::net {

// SDH/SONET line rates and their usable payload after section/path overhead.
// STM-1 carries 149.76 Mbit/s of payload in a 155.52 Mbit/s line; the ratio
// (~0.963) is the same for the concatenated higher rates used in the testbed.
constexpr double kSdhPayloadFraction = 149.76 / 155.52;

constexpr units::BitRate kOc3Line =
    units::BitRate::mbps(155.52);  // STM-1  (B-WiN access, SP2 nodes)
constexpr units::BitRate kOc12Line =
    units::BitRate::mbps(622.08);  // STM-4  (testbed 1997, host NICs)
constexpr units::BitRate kOc48Line =
    units::BitRate::mbps(2488.32);  // STM-16 (testbed since Aug 1998)

constexpr units::BitRate kHippiRate =
    units::BitRate::mbps(800.0);  // HiPPI channel peak

// ATM constants.
constexpr std::uint32_t kAtmCellBytes = 53;
constexpr std::uint32_t kAtmCellPayload = 48;
constexpr std::uint32_t kAal5TrailerBytes = 8;

// IPv4 and TCP header sizes (no options).
constexpr std::uint32_t kIpHeaderBytes = 20;
constexpr std::uint32_t kTcpHeaderBytes = 20;
constexpr std::uint32_t kUdpHeaderBytes = 8;
// LLC/SNAP encapsulation for Classical IP over ATM (RFC 1483/1577).
constexpr std::uint32_t kLlcSnapBytes = 8;

// Default MTUs.
constexpr units::Bytes kMtuEthernet{1500};
constexpr units::Bytes kMtuAtmDefault{9180};  // RFC 1577 default
constexpr units::Bytes kMtuAtmFore{65535};    // Fore adapters: 64 KByte MTU
constexpr units::Bytes kMtuHippi{65280};      // HiPPI-LE style large MTU

// Speed of light in fibre: ~5 us per km.
constexpr double kFiberDelaySecPerKm = 5e-6;

// Number of ATM cells needed for an AAL5 PDU of `pdu_bytes` (payload +
// LLC/SNAP already included by the caller); the 8-byte AAL5 trailer must fit
// in the last cell, with zero padding up to a cell boundary.
// gtw-lint: allow(unitless-size-param)
constexpr std::uint32_t aal5_cells(std::uint32_t pdu_bytes) {
  return (pdu_bytes + kAal5TrailerBytes + kAtmCellPayload - 1) / kAtmCellPayload;
}

// Bytes actually on the wire for an AAL5 PDU (cell tax included).
// gtw-lint: allow(unitless-size-param)
constexpr std::uint32_t aal5_wire_bytes(std::uint32_t pdu_bytes) {
  return aal5_cells(pdu_bytes) * kAtmCellBytes;
}

// Typed cell packing: the preferred entry points for new code.  These are
// the unit-system boundary itself — the typed wrappers over the raw AAL5
// framing arithmetic above — so extracting the raw count here is the point.
constexpr units::Cells aal5_cells(units::Bytes pdu) {
  // gtw-lint: allow(unit-escape) — conversion-layer wrapper over raw aal5_cells()
  return units::Cells{aal5_cells(static_cast<std::uint32_t>(pdu.count()))};
}
constexpr units::Bytes aal5_wire_bytes(units::Bytes pdu) {
  // gtw-lint: allow(unit-escape) — conversion-layer wrapper over raw aal5_wire_bytes()
  return units::Bytes{aal5_wire_bytes(static_cast<std::uint32_t>(pdu.count()))};
}

// ---------------------------------------------------------------------------
// Deprecation shim — ONE PR ONLY.
//
// The constants above used to be plain doubles / uint32_t; out-of-tree code
// following older DESIGN.md snippets can qualify with net::legacy:: to keep
// compiling while it migrates to the typed constants.  This namespace is
// removed in the next PR.
// ---------------------------------------------------------------------------
namespace legacy {

[[deprecated("multiply via units::BitRate::kbps() instead")]]  //
constexpr double kKbit = 1e3;
[[deprecated("multiply via units::BitRate::mbps() instead")]]  //
constexpr double kMbit = 1e6;
[[deprecated("multiply via units::BitRate::gbps() instead")]]  //
constexpr double kGbit = 1e9;

[[deprecated("use net::kOc3Line (units::BitRate)")]]  //
constexpr double kOc3Line = 155.52 * 1e6;  // gtw-lint: allow(raw-rate-double)
[[deprecated("use net::kOc12Line (units::BitRate)")]]  //
constexpr double kOc12Line = 622.08 * 1e6;  // gtw-lint: allow(raw-rate-double)
[[deprecated("use net::kOc48Line (units::BitRate)")]]  //
constexpr double kOc48Line = 2488.32 * 1e6;  // gtw-lint: allow(raw-rate-double)
[[deprecated("use net::kHippiRate (units::BitRate)")]]  //
constexpr double kHippiRate = 800.0 * 1e6;  // gtw-lint: allow(raw-rate-double)

[[deprecated("use net::kMtuEthernet (units::Bytes)")]]  //
constexpr std::uint32_t kMtuEthernet = 1500;
[[deprecated("use net::kMtuAtmDefault (units::Bytes)")]]  //
constexpr std::uint32_t kMtuAtmDefault = 9180;
[[deprecated("use net::kMtuAtmFore (units::Bytes)")]]  //
constexpr std::uint32_t kMtuAtmFore = 65535;
[[deprecated("use net::kMtuHippi (units::Bytes)")]]  //
constexpr std::uint32_t kMtuHippi = 65280;

}  // namespace legacy

}  // namespace gtw::net
