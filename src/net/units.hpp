// Rate and size units for the network substrate.  Rates are plain doubles in
// bits per second; the named constants below match the technologies deployed
// in the Gigabit Testbed West (HPDC'99 paper, section 2).
#pragma once

#include <cstdint>

namespace gtw::net {

constexpr double kKbit = 1e3;
constexpr double kMbit = 1e6;
constexpr double kGbit = 1e9;

// SDH/SONET line rates and their usable payload after section/path overhead.
// STM-1 carries 149.76 Mbit/s of payload in a 155.52 Mbit/s line; the ratio
// (~0.963) is the same for the concatenated higher rates used in the testbed.
constexpr double kSdhPayloadFraction = 149.76 / 155.52;

constexpr double kOc3Line = 155.52 * kMbit;    // STM-1  (B-WiN access, SP2 nodes)
constexpr double kOc12Line = 622.08 * kMbit;   // STM-4  (testbed 1997, host NICs)
constexpr double kOc48Line = 2488.32 * kMbit;  // STM-16 (testbed since Aug 1998)

constexpr double kHippiRate = 800 * kMbit;     // HiPPI channel peak

// ATM constants.
constexpr std::uint32_t kAtmCellBytes = 53;
constexpr std::uint32_t kAtmCellPayload = 48;
constexpr std::uint32_t kAal5TrailerBytes = 8;

// IPv4 and TCP header sizes (no options).
constexpr std::uint32_t kIpHeaderBytes = 20;
constexpr std::uint32_t kTcpHeaderBytes = 20;
constexpr std::uint32_t kUdpHeaderBytes = 8;
// LLC/SNAP encapsulation for Classical IP over ATM (RFC 1483/1577).
constexpr std::uint32_t kLlcSnapBytes = 8;

// Default MTUs.
constexpr std::uint32_t kMtuEthernet = 1500;
constexpr std::uint32_t kMtuAtmDefault = 9180;   // RFC 1577 default
constexpr std::uint32_t kMtuAtmFore = 65535;     // Fore adapters: 64 KByte MTU
constexpr std::uint32_t kMtuHippi = 65280;       // HiPPI-LE style large MTU

// Speed of light in fibre: ~5 us per km.
constexpr double kFiberDelaySecPerKm = 5e-6;

// Number of ATM cells needed for an AAL5 PDU of `pdu_bytes` (payload +
// LLC/SNAP already included by the caller); the 8-byte AAL5 trailer must fit
// in the last cell, with zero padding up to a cell boundary.
constexpr std::uint32_t aal5_cells(std::uint32_t pdu_bytes) {
  return (pdu_bytes + kAal5TrailerBytes + kAtmCellPayload - 1) / kAtmCellPayload;
}

// Bytes actually on the wire for an AAL5 PDU (cell tax included).
constexpr std::uint32_t aal5_wire_bytes(std::uint32_t pdu_bytes) {
  return aal5_cells(pdu_bytes) * kAtmCellBytes;
}

}  // namespace gtw::net
