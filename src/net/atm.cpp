#include "net/atm.hpp"

#include <cassert>
#include <utility>

namespace gtw::net {

AtmSwitch::AtmSwitch(des::Scheduler& sched, std::string name,
                     des::SimTime switching_latency)
    : sched_(sched), name_(std::move(name)), latency_(switching_latency) {}

int AtmSwitch::add_port(Link::Config cfg) {
  const int port = static_cast<int>(ports_.size());
  ports_.push_back(Port{std::make_unique<Link>(
      sched_, name_ + ".port" + std::to_string(port), cfg)});
  return port;
}

FrameSink AtmSwitch::ingress(int port) {
  return [this, port](Frame f) { on_frame(port, std::move(f)); };
}

void AtmSwitch::connect_egress(int port, FrameSink remote) {
  ports_.at(port).out->set_sink(std::move(remote));
}

void AtmSwitch::add_route(int in_port, std::uint32_t in_vc, int out_port,
                          std::uint32_t out_vc) {
  vcs_[{in_port, in_vc}] = {out_port, out_vc};
}

void AtmSwitch::on_frame(int port, Frame f) {
  ++ingress_frames_;
  ingress_bytes_ += f.wire_bytes;
  auto it = vcs_.find({port, f.vc});
  if (it == vcs_.end()) {
    ++unroutable_;
    return;
  }
  const auto [out_port, out_vc] = it->second;
  f.vc = out_vc;
  des::SpanHook* h = sched_.span_hook();
  const bool traced = h != nullptr && f.pkt.ctx.valid();
  des::TraceContext prev;
  if (traced) {
    f.span = h->begin_span(f.pkt.ctx, des::SpanPhase::kPropagate, "atm",
                           name_.c_str(), sched_.now());
    prev = h->adopt(f.pkt.ctx);
  }
  // Cell-level cut-through latency through the fabric.
  sched_.schedule_after(latency_, [this, out_port, f = std::move(f)]() mutable {
    if (des::SpanHook* h2 = sched_.span_hook(); h2 != nullptr) {
      h2->end_span(f.span, sched_.now());
      f.span = 0;
    }
    ports_.at(out_port).out->submit(std::move(f));
  });
  if (traced) h->adopt(prev);
}

AtmNic::AtmNic(des::Scheduler& sched, Host& owner, std::string name,
               Link::Config uplink_cfg, units::Bytes mtu)
    : Nic(owner, std::move(name), mtu), sched_(sched),
      uplink_(sched, name_ + ".up", uplink_cfg) {}

void AtmNic::shape_vc(HostId next_hop, units::BitRate rate) {
  auto it = vc_map_.find(next_hop);
  if (it == vc_map_.end()) return;
  shapers_[it->second] = Shaper{rate, sched_.now()};
}

void AtmNic::transmit(IpPacket pkt, HostId next_hop) {
  auto it = vc_map_.find(next_hop);
  if (it == vc_map_.end()) {
    ++no_vc_;
    return;
  }
  Frame f;
  f.wire_bytes = aal5_wire_bytes(pkt.total_bytes + kLlcSnapBytes);
  f.vc = it->second;
  f.pkt = std::move(pkt);

  auto sh = shapers_.find(it->second);
  if (sh == shapers_.end()) {
    uplink_.submit(std::move(f));
    return;
  }
  // Virtual-scheduling shaper: each PDU is released no earlier than the
  // VC's theoretical cell-emission time.
  Shaper& shaper = sh->second;
  const des::SimTime release = std::max(sched_.now(), shaper.next_free);
  shaper.next_free =
      release + units::transmission_time(units::Bytes{f.wire_bytes}, shaper.rate);
  if (release <= sched_.now()) {
    uplink_.submit(std::move(f));
  } else {
    des::SpanHook* h = sched_.span_hook();
    const bool traced = h != nullptr && f.pkt.ctx.valid();
    des::TraceContext prev;
    if (traced) {
      // CBR shaping delay is queue-wait spent at the NIC, not on the wire.
      f.span = h->begin_span(f.pkt.ctx, des::SpanPhase::kQueueWait, "atm",
                             name_.c_str(), sched_.now());
      prev = h->adopt(f.pkt.ctx);
    }
    sched_.schedule_at(release, [this, f = std::move(f)]() mutable {
      if (des::SpanHook* h2 = sched_.span_hook(); h2 != nullptr) {
        h2->end_span(f.span, sched_.now());
        f.span = 0;
      }
      uplink_.submit(std::move(f));
    });
    if (traced) h->adopt(prev);
  }
}

FrameSink AtmNic::ingress() {
  return [this](Frame f) { owner_->receive_from_nic(std::move(f.pkt)); };
}

void VcAllocator::provision(AtmNic& a, AtmNic& b,
                            const std::vector<VcHop>& path) {
  assert(!path.empty());
  // Forward direction a -> b.
  {
    std::uint32_t vc = next_vc_++;
    a.map_vc(b.owner().id(), vc);
    for (const VcHop& hop : path) {
      const std::uint32_t out_vc = next_vc_++;
      hop.sw->add_route(hop.in_port, vc, hop.out_port, out_vc);
      vc = out_vc;
    }
  }
  // Reverse direction b -> a mirrors the hops.
  {
    std::uint32_t vc = next_vc_++;
    b.map_vc(a.owner().id(), vc);
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      const std::uint32_t out_vc = next_vc_++;
      it->sw->add_route(it->out_port, vc, it->in_port, out_vc);
      vc = out_vc;
    }
  }
}

}  // namespace gtw::net
