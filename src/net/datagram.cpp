#include "net/datagram.hpp"

namespace gtw::net {

DatagramSocket::DatagramSocket(Host& host, std::uint16_t port)
    : host_(host), port_(port) {
  host_.bind(IpProto::kUdp, port_, [this](const IpPacket& pkt) {
    if (handler_) handler_(pkt);
  });
}

DatagramSocket::~DatagramSocket() { host_.unbind(IpProto::kUdp, port_); }

void DatagramSocket::send_to(HostId dst, std::uint16_t dst_port,
                             units::Bytes payload, std::any body) {
  IpPacket pkt;
  pkt.dst = dst;
  pkt.proto = IpProto::kUdp;
  pkt.src_port = port_;
  pkt.dst_port = dst_port;
  pkt.total_bytes = static_cast<std::uint32_t>(payload.count()) +
                    kIpHeaderBytes + kUdpHeaderBytes;
  if (body.has_value())
    pkt.payload = std::make_shared<const std::any>(std::move(body));
  host_.send_datagram(std::move(pkt));
}

CbrSource::CbrSource(Host& host, std::uint16_t src_port, HostId dst,
                     std::uint16_t dst_port, Config cfg)
    : socket_(host, src_port), dst_(dst), dst_port_(dst_port), cfg_(cfg) {}

void CbrSource::start() {
  timer_ = socket_.host().scheduler().schedule_after(des::SimTime::zero(),
                                                     [this]() { tick(); });
}

void CbrSource::stop() { timer_.cancel(); }

void CbrSource::tick() {
  socket_.send_to(dst_, dst_port_, cfg_.frame_bytes,
                  std::any{static_cast<std::int64_t>(sent_)});
  ++sent_;
  if (cfg_.frame_count != 0 && sent_ >= cfg_.frame_count) return;
  timer_ = socket_.host().scheduler().schedule_after(cfg_.interval,
                                                     [this]() { tick(); });
}

units::BitRate CbrSource::offered_rate() const {
  if (cfg_.interval <= des::SimTime::zero()) return units::BitRate::bps(0.0);
  return units::per(cfg_.frame_bytes.to_bits(), cfg_.interval);
}

CbrSink::CbrSink(Host& host, std::uint16_t port) : socket_(host, port) {
  socket_.on_receive([this](const IpPacket& pkt) {
    const des::SimTime now = socket_.host().scheduler().now();
    if (any_) interarrival_.add((now - last_arrival_).ms());
    if (!any_) first_arrival_ = now;
    any_ = true;
    last_arrival_ = now;
    ++received_;
    bytes_ += pkt.total_bytes - kIpHeaderBytes - kUdpHeaderBytes;
    if (pkt.payload) {
      if (const auto* seq = std::any_cast<std::int64_t>(pkt.payload.get()))
        highest_seq_ = std::max(highest_seq_, *seq);
    }
  });
}

std::uint64_t CbrSink::frames_lost() const {
  if (highest_seq_ < 0) return 0;
  const std::uint64_t expected = static_cast<std::uint64_t>(highest_seq_) + 1;
  return expected > received_ ? expected - received_ : 0;
}

units::BitRate CbrSink::goodput(des::SimTime window) const {
  if (window <= des::SimTime::zero()) return units::BitRate::bps(0.0);
  return units::per(units::Bytes{bytes_}.to_bits(), window);
}

}  // namespace gtw::net
