// TCP (Reno-style) over the simulated IP substrate.
//
// Implements the mechanisms that determine the paper's throughput figures:
// MSS derived from the path MTU, sliding window bounded by min(cwnd, peer
// receive buffer), slow start and congestion avoidance, fast retransmit on
// three duplicate ACKs, exponential-backoff RTO with Jacobson/Karn RTT
// estimation, and go-back-N recovery after timeout.  Payload bytes are
// virtual (sequence ranges); applications attach opaque data to message
// boundaries and get a callback when the receiver holds the full message.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "des/scheduler.hpp"
#include "net/host.hpp"
#include "net/units.hpp"

namespace gtw::net {

struct TcpConfig {
  units::Bytes mss =
      kMtuAtmDefault - units::Bytes{kIpHeaderBytes + kTcpHeaderBytes};
  units::Bytes recv_buffer{1u << 20};  // advertised window
  std::uint32_t initial_cwnd_segments = 2;
  des::SimTime min_rto = des::SimTime::milliseconds(200);
  des::SimTime initial_rto = des::SimTime::milliseconds(1000);
  bool delayed_ack = false;
  des::SimTime delayed_ack_timeout = des::SimTime::milliseconds(100);
};

// A full-duplex connection between two simulated hosts.  Side 0 is the host
// passed first.  Both endpoints live in this object; "sending on side s"
// means data flows from side s to side 1-s.
class TcpConnection {
 public:
  using DeliveryCallback =
      std::function<void(const std::any& data, des::SimTime delivered_at)>;

  TcpConnection(Host& a, Host& b, std::uint16_t port_a, std::uint16_t port_b,
                TcpConfig config = {});
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Queue `amount` of application data on side `side`; `on_delivered` fires
  // (at the receiver's simulated time) once the peer holds every byte.
  void send(int side, units::Bytes amount, std::any data = {},
            DeliveryCallback on_delivered = nullptr);

  struct Stats {
    std::uint64_t bytes_queued = 0;
    std::uint64_t bytes_acked = 0;
    std::uint64_t segments_sent = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t timeouts = 0;
    // Receive side: high-water mark of bytes buffered out of order (bounded
    // by the advertised window, which shrinks as the backlog grows), and
    // segments that arrived carrying only data the receiver already held —
    // the cost of a sender retransmitting into an occupied buffer.
    std::uint64_t max_ooo_bytes = 0;
    std::uint64_t dup_segments_received = 0;
    // Every duplicate ACK counted (fast retransmit fires on the third).
    std::uint64_t dup_acks = 0;
    double srtt_ms = -1.0;
    double cwnd_bytes = 0.0;
    double ssthresh_bytes = 0.0;
    double rto_ms = 0.0;
  };
  Stats stats(int side) const;

  // GTW-San snapshot (check::attach_tcp): the raw sequence-space and
  // window state the Reno invariants are phrased against —
  // snd_una <= snd_nxt <= snd_max <= snd_end, cwnd >= MSS, and the
  // out-of-order backlog bounded by the advertised receive buffer.
  struct SeqState {
    std::uint64_t snd_una = 0;
    std::uint64_t snd_nxt = 0;
    std::uint64_t snd_max = 0;
    std::uint64_t snd_end = 0;
    std::uint64_t rcv_nxt = 0;      // receiver side of the same direction
    std::uint64_t ooo_buffered = 0; // bytes the receiver holds out of order
    double cwnd = 0.0;
  };
  SeqState seq_state(int side) const;

  // Bytes the receiver on side `side` has accepted in order.
  std::uint64_t bytes_received(int side) const;

  const TcpConfig& config() const { return cfg_; }

 private:
  struct Message {
    std::uint64_t end_offset;
    std::any data;
    DeliveryCallback cb;
    des::TraceContext ctx;   // trace of the application send (obs)
    std::uint64_t span = 0;  // open tcp-transfer span, closed on delivery
  };

  struct Endpoint {
    Host* host = nullptr;
    std::uint16_t local_port = 0, remote_port = 0;

    // --- send state ---
    std::uint64_t snd_una = 0;   // oldest unacknowledged byte
    std::uint64_t snd_nxt = 0;   // next byte to transmit
    std::uint64_t snd_max = 0;   // highest byte ever transmitted
    std::uint64_t snd_end = 0;   // bytes queued by the application
    std::deque<Message> messages;
    double cwnd = 0.0;
    double ssthresh = 0.0;
    int dupacks = 0;
    // RTT estimation (one timed segment at a time; Karn's rule).
    bool timing = false;
    std::uint64_t timed_seq = 0;
    des::SimTime timed_at;
    double srtt_s = -1.0, rttvar_s = 0.0;
    des::SimTime rto;
    des::EventHandle rto_timer;

    // --- receive state ---
    std::uint64_t rcv_nxt = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ooo;  // sorted [a,b)
    bool ack_pending = false;
    des::EventHandle ack_timer;

    // Open retransmit-stall span (obs): begun at the first loss signal
    // (3rd dupack or RTO), closed once the cumulative ACK passes the
    // recovery point captured in stall_until.
    std::uint64_t stall_span = 0;
    std::uint64_t stall_until = 0;

    Stats stats;
  };

  void on_packet(int side, const IpPacket& pkt);
  void process_data(int side, const TcpSegHeader& m);
  void process_ack(int side, const TcpSegHeader& m);
  void try_send(int side);
  void send_segment(int side, std::uint64_t seq, std::uint32_t len,
                    bool retransmit);
  void send_ack(int side, bool immediate = false);
  void flush_ack(int side);
  void arm_rto(int side);
  void on_rto(int side);
  void deliver_messages(int sender_side);
  std::uint64_t window_bytes(const Endpoint& e, const Endpoint& peer) const;
  static std::uint64_t ooo_bytes(const Endpoint& e);
  // Trace of the message whose byte range contains `seq` (invalid when the
  // message was already delivered or the send was untraced).
  static des::TraceContext ctx_for_seq(const Endpoint& e, std::uint64_t seq);

  des::Scheduler& sched_;
  TcpConfig cfg_;
  Endpoint ep_[2];
};

// Convenience for benchmarks: transfer `amount` from `a` to `b` on a fresh
// connection and return the achieved application goodput, running the
// scheduler until completion.
struct BulkTransferResult {
  units::BitRate goodput;
  des::SimTime duration;
  TcpConnection::Stats sender_stats;
};
BulkTransferResult run_bulk_transfer(des::Scheduler& sched, Host& a, Host& b,
                                     units::Bytes amount, TcpConfig cfg,
                                     std::uint16_t port_base = 5000);

}  // namespace gtw::net
