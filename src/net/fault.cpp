#include "net/fault.hpp"

#include <algorithm>
#include <utility>

namespace gtw::net {

const char* to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kLinkDown: return "link_down";
    case FaultEvent::Kind::kBerBurst: return "ber_burst";
    case FaultEvent::Kind::kHostOutage: return "host_outage";
    case FaultEvent::Kind::kBufferSqueeze: return "buffer_squeeze";
  }
  return "?";
}

void FaultPlan::link_down(Link& link, des::SimTime at, des::SimTime duration) {
  auto s = std::make_shared<Scripted>();
  s->ev = FaultEvent{FaultEvent::Kind::kLinkDown, link.name(), at, duration};
  s->apply = [&link]() { link.set_up(false); };
  s->revert = [&link]() { link.set_up(true); };
  arm(std::move(s));
}

void FaultPlan::ber_burst(Link& link, des::SimTime at, des::SimTime duration,
                          double ber) {
  auto s = std::make_shared<Scripted>();
  s->ev = FaultEvent{FaultEvent::Kind::kBerBurst, link.name(), at, duration};
  s->ev.ber = ber;
  // The prior rate is captured when the burst starts, not when it is
  // scripted, so stacking a burst on an already-degraded line restores the
  // degraded rate.
  auto prior = std::make_shared<double>(0.0);
  s->apply = [&link, ber, prior]() {
    *prior = link.config().bit_error_rate;
    link.set_bit_error_rate(ber);
  };
  s->revert = [&link, prior]() { link.set_bit_error_rate(*prior); };
  arm(std::move(s));
}

void FaultPlan::host_outage(Host& host, des::SimTime at,
                            des::SimTime duration) {
  auto s = std::make_shared<Scripted>();
  s->ev = FaultEvent{FaultEvent::Kind::kHostOutage, host.name(), at, duration};
  s->apply = [&host]() { host.set_up(false); };
  s->revert = [&host]() { host.set_up(true); };
  arm(std::move(s));
}

void FaultPlan::buffer_squeeze(Link& link, des::SimTime at,
                               des::SimTime duration,
                               units::Bytes queue_limit) {
  auto s = std::make_shared<Scripted>();
  s->ev = FaultEvent{FaultEvent::Kind::kBufferSqueeze, link.name(), at,
                     duration};
  s->ev.queue_limit = queue_limit;
  auto prior = std::make_shared<units::Bytes>();
  s->apply = [&link, queue_limit, prior]() {
    *prior = link.config().queue_limit;
    link.set_queue_limit(queue_limit);
  };
  s->revert = [&link, prior]() { link.set_queue_limit(*prior); };
  arm(std::move(s));
}

des::SimTime FaultPlan::horizon() const {
  des::SimTime end = des::SimTime::zero();
  for (const auto& s : events_) end = std::max(end, s->ev.at + s->ev.duration);
  return end;
}

void FaultPlan::arm(std::shared_ptr<Scripted> s) {
  events_.push_back(s);
  sched_->schedule_at(s->ev.at, [this, s]() {
    s->apply();
    ++active_;
    notify(s->ev, true);
    sched_->schedule_after(s->ev.duration, [this, s]() {
      s->revert();
      --active_;
      notify(s->ev, false);
    });
  });
}

void FaultPlan::notify(const FaultEvent& ev, bool active) {
  for (const auto& obs : observers_) obs(ev, active);
}

}  // namespace gtw::net
