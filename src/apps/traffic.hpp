// Section 5 extension project: "distributed traffic simulation and
// visualization" between the DLR, the University of Cologne and the GMD.
//
// The era's canonical model — developed at Cologne/Jülich — is the
// Nagel-Schreckenberg cellular automaton.  We implement the classic
// single-lane periodic NaSch CA with the usual four rules (accelerate,
// brake to gap, random dawdle, move), a multi-segment road network, and a
// remote-visualization stream: per step, an occupancy frame is shipped
// across the testbed to the visualization site, the same produce-here /
// render-there split as the fMRI project.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/random.hpp"
#include "flow/stage.hpp"
#include "net/datagram.hpp"
#include "net/host.hpp"

namespace gtw::apps {

struct NaschConfig {
  int cells = 1000;          // road length, cells of 7.5 m
  int v_max = 5;             // cells per step (= 135 km/h)
  double density = 0.15;     // initial vehicle density
  double dawdle_p = 0.25;    // random braking probability
  std::uint64_t seed = 99;
};

class NaschRoad {
 public:
  explicit NaschRoad(NaschConfig cfg);

  void step();

  int vehicles() const { return static_cast<int>(pos_.size()); }
  int cells() const { return cfg_.cells; }
  // Mean speed in cells/step over the current state.
  double mean_speed() const;
  // Vehicles passing the start-of-road detector per step, averaged since
  // construction (the fundamental-diagram "flow" axis).
  double flow() const;
  int steps() const { return steps_; }

  // Occupancy bitmap of the road (1 byte per cell) — the visualization
  // payload.
  std::vector<std::uint8_t> occupancy() const;

 private:
  NaschConfig cfg_;
  std::vector<int> pos_;   // sorted vehicle positions
  std::vector<int> vel_;
  des::Rng rng_;
  int steps_ = 0;
  std::uint64_t detector_count_ = 0;
};

// Steady-state flow for a given density (fresh road, warm-up + measure) —
// used to reproduce the fundamental diagram.
double nasch_flow(double density, int cells = 1000, int warmup = 200,
                  int measure = 400, std::uint64_t seed = 7);

// Distributed run: the CA advances on the simulation host (DLR); every
// step's occupancy frame streams to the visualization host (Cologne or the
// GMD) as a datagram.  Reports the achievable frame cadence.
struct TrafficVizResult {
  int steps_simulated = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frame_bytes = 0;
  double elapsed_s = 0.0;
  double frames_per_s = 0.0;
  double final_mean_speed = 0.0;
};

class DistributedTrafficViz {
 public:
  DistributedTrafficViz(net::Host& sim_host, net::Host& viz_host,
                        NaschConfig cfg, int steps,
                        des::SimTime step_interval = des::SimTime::milliseconds(100),
                        std::uint16_t port = 7300);

  void start();
  const TrafficVizResult& result() const { return result_; }

  // Stage events as trace ranks 0 (simulate) / 1 (publish).
  void attach_trace(trace::TraceRecorder* rec) { graph_.attach_trace(rec); }
  const flow::MetricsRegistry& metrics() const { return graph_.metrics(); }
  // For failure wiring (net::FaultPlan observers, degraded-mode tests).
  flow::StageGraph& graph() { return graph_; }

 private:
  net::Host& sim_host_;
  net::HostId viz_id_;
  std::uint16_t port_;
  NaschRoad road_;
  net::DatagramSocket tx_;
  net::DatagramSocket rx_;
  // Two-stage flow graph per CA step: advance the road, ship the frame.
  flow::StageGraph graph_;
  flow::PeriodicSource source_;
  des::SimTime started_;
  TrafficVizResult result_;
};

}  // namespace gtw::apps
