#include "apps/video.hpp"

namespace gtw::apps {

D1VideoSession::D1VideoSession(net::Host& source, net::Host& sink,
                               D1VideoConfig cfg, std::uint16_t port_base)
    : cfg_(cfg), sink_(sink, port_base), sched_(source.scheduler()),
      socket_(source, static_cast<std::uint16_t>(port_base + 1)),
      interval_(des::SimTime::seconds(1.0 / cfg.fps)),
      graph_(source.scheduler()),
      source_(graph_,
              flow::PeriodicSource::Config{interval_, cfg.frames, false}) {
  graph_.add_stage(flow::datagram_transfer_stage(
      "uplink", socket_, sink.id(), port_base,
      [this](const flow::Item&) { return cfg_.frame_bytes(); },
      /*number_frames=*/true, /*concurrency=*/0));
}

void D1VideoSession::start() {
  started_ = sched_.now();
  source_.start();
}

D1VideoReport D1VideoSession::report() const {
  D1VideoReport rep;
  rep.frames_sent = static_cast<std::uint64_t>(source_.emitted());
  rep.frames_received = sink_.frames_received();
  // Sequence-gap counting (CbrSink::frames_lost) underestimates here: a
  // frame with any dropped fragment never completes reassembly, so its
  // sequence number is never seen.  The session knows both ends.
  rep.frames_lost = rep.frames_sent >= rep.frames_received
                        ? rep.frames_sent - rep.frames_received
                        : 0;
  rep.offered = interval_ > des::SimTime::zero()
                    ? units::per(cfg_.frame_bytes().to_bits(), interval_)
                    : units::BitRate::bps(0.0);
  const des::SimTime span = sched_.now() - started_;
  rep.goodput = sink_.goodput(span);
  rep.jitter_ms = sink_.interarrival_ms().stddev();
  rep.feasible = rep.frames_sent > 0 &&
                 rep.frames_received * 100 >= rep.frames_sent * 99;
  return rep;
}

}  // namespace gtw::apps
