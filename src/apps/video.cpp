#include "apps/video.hpp"

namespace gtw::apps {

D1VideoSession::D1VideoSession(net::Host& source, net::Host& sink,
                               D1VideoConfig cfg, std::uint16_t port_base)
    : cfg_(cfg), sink_(sink, port_base),
      source_(source, static_cast<std::uint16_t>(port_base + 1), sink.id(),
              port_base,
              net::CbrSource::Config{
                  cfg.frame_bytes(),
                  des::SimTime::seconds(1.0 / cfg.fps),
                  static_cast<std::uint64_t>(cfg.frames)}),
      sched_(source.scheduler()) {}

void D1VideoSession::start() {
  started_ = sched_.now();
  source_.start();
}

D1VideoReport D1VideoSession::report() const {
  D1VideoReport rep;
  rep.frames_sent = source_.frames_sent();
  rep.frames_received = sink_.frames_received();
  // Sequence-gap counting (CbrSink::frames_lost) underestimates here: a
  // frame with any dropped fragment never completes reassembly, so its
  // sequence number is never seen.  The session knows both ends.
  rep.frames_lost = rep.frames_sent >= rep.frames_received
                        ? rep.frames_sent - rep.frames_received
                        : 0;
  rep.offered_bps = source_.offered_rate_bps();
  const des::SimTime span = sched_.now() - started_;
  rep.goodput_bps = sink_.goodput_bps(span);
  rep.jitter_ms = sink_.interarrival_ms().stddev();
  rep.feasible = rep.frames_sent > 0 &&
                 rep.frames_received * 100 >= rep.frames_sent * 99;
  return rep;
}

}  // namespace gtw::apps
