#include "apps/cocolib.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gtw::apps::coco {

InterfaceMesh InterfaceMesh::uniform(int n) {
  InterfaceMesh m;
  m.nodes.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    m.nodes[static_cast<std::size_t>(i)] =
        static_cast<double>(i) / (n - 1);
  return m;
}

std::vector<double> transfer(const std::vector<double>& values,
                             const InterfaceMesh& from,
                             const InterfaceMesh& to) {
  if (values.size() != from.size())
    throw std::invalid_argument("transfer: value/mesh size mismatch");
  std::vector<double> out(to.size());
  for (std::size_t i = 0; i < to.size(); ++i) {
    const double x = to.nodes[i];
    // Find the source interval containing x.
    const auto it = std::upper_bound(from.nodes.begin(), from.nodes.end(), x);
    if (it == from.nodes.begin()) {
      out[i] = values.front();
      continue;
    }
    if (it == from.nodes.end()) {
      out[i] = values.back();
      continue;
    }
    const std::size_t hi = static_cast<std::size_t>(
        std::distance(from.nodes.begin(), it));
    const std::size_t lo = hi - 1;
    const double span = from.nodes[hi] - from.nodes[lo];
    const double t = span > 0.0 ? (x - from.nodes[lo]) / span : 0.0;
    out[i] = (1.0 - t) * values[lo] + t * values[hi];
  }
  return out;
}

ChannelFlow::ChannelFlow(InterfaceMesh mesh, ChannelConfig cfg)
    : mesh_(std::move(mesh)), cfg_(cfg) {}

double ChannelFlow::flux(const std::vector<double>& gap) const {
  // q = (p_in - p_out) / integral( dx / h^3 )  (viscosity folded into q).
  double resistance = 0.0;
  for (std::size_t i = 1; i < mesh_.size(); ++i) {
    const double dx = mesh_.nodes[i] - mesh_.nodes[i - 1];
    const double h = 0.5 * (gap[i] + gap[i - 1]);
    resistance += dx / (h * h * h);
  }
  if (resistance <= 0.0) return 0.0;
  return (cfg_.p_in - cfg_.p_out) / resistance;
}

std::vector<double> ChannelFlow::pressure(
    const std::vector<double>& gap) const {
  if (gap.size() != mesh_.size())
    throw std::invalid_argument("ChannelFlow: gap size mismatch");
  for (double h : gap)
    if (h <= 0.0) throw std::domain_error("ChannelFlow: closed gap");
  const double q = flux(gap);
  std::vector<double> p(mesh_.size());
  p[0] = cfg_.p_in;
  for (std::size_t i = 1; i < mesh_.size(); ++i) {
    const double dx = mesh_.nodes[i] - mesh_.nodes[i - 1];
    const double h = 0.5 * (gap[i] + gap[i - 1]);
    p[i] = p[i - 1] - q * dx / (h * h * h);
  }
  return p;
}

ElasticWall::ElasticWall(InterfaceMesh mesh, WallConfig cfg)
    : mesh_(std::move(mesh)), cfg_(cfg) {}

std::vector<double> ElasticWall::deflection(
    const std::vector<double>& pressure) const {
  const std::size_t n = mesh_.size();
  if (pressure.size() != n)
    throw std::invalid_argument("ElasticWall: pressure size mismatch");
  if (n < 3) return std::vector<double>(n, 0.0);

  // Interior unknowns w[1..n-2]; Thomas algorithm on the tridiagonal SPD
  // system from -T w'' + k w = p on the (possibly non-uniform) mesh.
  std::vector<double> a(n, 0.0), b(n, 0.0), c(n, 0.0), d(n, 0.0);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double hl = mesh_.nodes[i] - mesh_.nodes[i - 1];
    const double hr = mesh_.nodes[i + 1] - mesh_.nodes[i];
    const double vol = 0.5 * (hl + hr);
    a[i] = -cfg_.tension / hl;
    c[i] = -cfg_.tension / hr;
    b[i] = cfg_.tension / hl + cfg_.tension / hr + cfg_.foundation * vol;
    d[i] = pressure[i] * vol;
  }
  // Forward elimination (w[0] = w[n-1] = 0 drop the edge couplings).
  for (std::size_t i = 2; i + 1 < n; ++i) {
    const double m = a[i] / b[i - 1];
    b[i] -= m * c[i - 1];
    d[i] -= m * d[i - 1];
  }
  std::vector<double> w(n, 0.0);
  for (std::size_t i = n - 2; i >= 1; --i) {
    const double upper = i + 2 < n ? c[i] * w[i + 1] : 0.0;
    w[i] = (d[i] - upper) / b[i];
    if (i == 1) break;
  }
  return w;
}

namespace {

// One fixed-point update: given the wall deflection (on the wall mesh),
// compute the fluid pressure, map it to the wall, compute the new
// deflection, and under-relax.  Returns the residual.
struct StepResult {
  std::vector<double> w_new;
  std::vector<double> p_fluid;
  double residual = 0.0;
};

StepResult fsi_step(const ChannelFlow& fluid, const ElasticWall& wall,
                    const FsiConfig& cfg, const std::vector<double>& w_wall) {
  // Wall deflection -> gap on the fluid mesh.  Positive pressure pushes
  // the wall outward, widening the channel: gap = h0 + w.  Negative
  // deflections (suction) are clamped before the gap closes.
  std::vector<double> w_fluid =
      transfer(w_wall, wall.mesh(), fluid.mesh());
  std::vector<double> gap(w_fluid.size());
  for (std::size_t i = 0; i < gap.size(); ++i) {
    const double w = std::max(w_fluid[i],
                              -cfg.max_gap_closure * cfg.channel.h0);
    gap[i] = cfg.channel.h0 + w;
  }
  StepResult out;
  out.p_fluid = fluid.pressure(gap);
  // Pressure -> wall mesh -> new deflection.
  const std::vector<double> p_wall =
      transfer(out.p_fluid, fluid.mesh(), wall.mesh());
  const std::vector<double> w_raw = wall.deflection(p_wall);
  out.w_new.resize(w_wall.size());
  for (std::size_t i = 0; i < w_wall.size(); ++i) {
    out.w_new[i] =
        (1.0 - cfg.relaxation) * w_wall[i] + cfg.relaxation * w_raw[i];
    out.residual = std::max(out.residual, std::abs(out.w_new[i] - w_wall[i]));
  }
  return out;
}

}  // namespace

FsiResult couple_serial(const InterfaceMesh& fluid_mesh,
                        const InterfaceMesh& wall_mesh, FsiConfig cfg) {
  ChannelFlow fluid(fluid_mesh, cfg.channel);
  ElasticWall wall(wall_mesh, cfg.wall);
  FsiResult res;
  std::vector<double> w(wall_mesh.size(), 0.0);
  for (int it = 0; it < cfg.max_iterations; ++it) {
    StepResult step = fsi_step(fluid, wall, cfg, w);
    w = std::move(step.w_new);
    res.iterations = it + 1;
    res.residual = step.residual;
    res.pressure = std::move(step.p_fluid);
    if (step.residual < cfg.tolerance) {
      res.converged = true;
      break;
    }
  }
  res.deflection = w;
  // Final flux through the converged gap.
  std::vector<double> gap(fluid_mesh.size());
  const std::vector<double> w_fluid = transfer(w, wall_mesh, fluid_mesh);
  for (std::size_t i = 0; i < gap.size(); ++i)
    gap[i] = cfg.channel.h0 +
             std::max(w_fluid[i], -cfg.max_gap_closure * cfg.channel.h0);
  res.flux = ChannelFlow(fluid_mesh, cfg.channel).flux(gap);
  return res;
}

DistributedFsi::DistributedFsi(std::shared_ptr<meta::Communicator> comm,
                               InterfaceMesh fluid_mesh,
                               InterfaceMesh wall_mesh, FsiConfig cfg)
    : comm_(std::move(comm)), fluid_(std::move(fluid_mesh), cfg.channel),
      wall_(std::move(wall_mesh), cfg.wall), cfg_(cfg) {}

void DistributedFsi::start() {
  started_ = comm_->metacomputer().scheduler().now();
  iterate(0, std::make_shared<std::vector<double>>(wall_.mesh().size(), 0.0));
}

void DistributedFsi::iterate(int n,
                             std::shared_ptr<std::vector<double>> w_wall) {
  auto& sched = comm_->metacomputer().scheduler();
  if (n >= cfg_.max_iterations || result_.converged) {
    result_.deflection = *w_wall;
    result_.elapsed_s = (sched.now() - started_).sec();
    std::vector<double> gap(fluid_.mesh().size());
    const std::vector<double> w_fluid =
        transfer(*w_wall, wall_.mesh(), fluid_.mesh());
    for (std::size_t i = 0; i < gap.size(); ++i)
      gap[i] = cfg_.channel.h0 +
               std::max(w_fluid[i], -cfg_.max_gap_closure * cfg_.channel.h0);
    result_.flux = fluid_.flux(gap);
    return;
  }
  // Structure (rank 1) sends the current deflection to the fluid (rank 0).
  const std::uint64_t w_bytes = w_wall->size() * sizeof(double);
  result_.bytes_exchanged += w_bytes;
  comm_->recv(0, 1, 2 * n, [this, n, w_wall](const meta::Message&) {
    // Fluid side computes pressure and returns it.
    const StepResult step = fsi_step(fluid_, wall_, cfg_, *w_wall);
    auto payload = std::make_shared<StepResult>(step);
    const std::uint64_t p_bytes = step.p_fluid.size() * sizeof(double);
    result_.bytes_exchanged += p_bytes;
    comm_->recv(1, 0, 2 * n + 1,
                [this, n, w_wall](const meta::Message& m2) {
      // Structure side adopts the relaxed update and checks convergence.
      auto got = std::any_cast<std::shared_ptr<StepResult>>(m2.data);
      *w_wall = got->w_new;
      result_.iterations = n + 1;
      result_.residual = got->residual;
      result_.pressure = got->p_fluid;
      if (got->residual < cfg_.tolerance) result_.converged = true;
      iterate(n + 1, w_wall);
    });
    comm_->send(0, 1, 2 * n + 1, p_bytes, payload);
  });
  comm_->send(1, 0, 2 * n, w_bytes, std::any{});
}

}  // namespace gtw::apps::coco
