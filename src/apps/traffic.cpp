#include "apps/traffic.hpp"

#include <algorithm>

namespace gtw::apps {

NaschRoad::NaschRoad(NaschConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  // Place vehicles on distinct random cells.
  const int n = static_cast<int>(cfg_.density * cfg_.cells);
  std::vector<std::uint8_t> used(static_cast<std::size_t>(cfg_.cells), 0);
  int placed = 0;
  while (placed < n) {
    const int c = static_cast<int>(rng_.uniform_int(
        static_cast<std::uint64_t>(cfg_.cells)));
    if (used[static_cast<std::size_t>(c)]) continue;
    used[static_cast<std::size_t>(c)] = 1;
    ++placed;
  }
  for (int c = 0; c < cfg_.cells; ++c)
    if (used[static_cast<std::size_t>(c)]) {
      pos_.push_back(c);
      vel_.push_back(0);
    }
}

void NaschRoad::step() {
  const int n = vehicles();
  if (n == 0) {
    ++steps_;
    return;
  }
  std::vector<int> new_pos(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Gap to the car ahead (periodic road).
    const int ahead = pos_[static_cast<std::size_t>((i + 1) % n)];
    int gap = ahead - pos_[static_cast<std::size_t>(i)] - 1;
    if (gap < 0) gap += cfg_.cells;
    if (n == 1) gap = cfg_.cells - 1;

    int v = vel_[static_cast<std::size_t>(i)];
    v = std::min(v + 1, cfg_.v_max);           // 1. accelerate
    v = std::min(v, gap);                      // 2. brake to the gap
    if (v > 0 && rng_.bernoulli(cfg_.dawdle_p)) --v;  // 3. dawdle
    vel_[static_cast<std::size_t>(i)] = v;

    const int np = pos_[static_cast<std::size_t>(i)] + v;  // 4. move
    if (np >= cfg_.cells) ++detector_count_;  // crossed the wrap-around
    new_pos[static_cast<std::size_t>(i)] = np % cfg_.cells;
  }
  pos_ = std::move(new_pos);
  // Keep the (position, velocity) pairs sorted by position so "the car
  // ahead" stays index i+1 after wrap-arounds.
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return pos_[static_cast<std::size_t>(a)] < pos_[static_cast<std::size_t>(b)];
  });
  std::vector<int> sp(static_cast<std::size_t>(n)), sv(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    sp[static_cast<std::size_t>(i)] = pos_[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    sv[static_cast<std::size_t>(i)] = vel_[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
  }
  pos_ = std::move(sp);
  vel_ = std::move(sv);
  ++steps_;
}

double NaschRoad::mean_speed() const {
  if (vel_.empty()) return 0.0;
  double s = 0.0;
  for (int v : vel_) s += v;
  return s / static_cast<double>(vel_.size());
}

double NaschRoad::flow() const {
  if (steps_ == 0) return 0.0;
  return static_cast<double>(detector_count_) / static_cast<double>(steps_);
}

std::vector<std::uint8_t> NaschRoad::occupancy() const {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(cfg_.cells), 0);
  for (std::size_t i = 0; i < pos_.size(); ++i)
    out[static_cast<std::size_t>(pos_[i])] =
        static_cast<std::uint8_t>(1 + vel_[i]);
  return out;
}

double nasch_flow(double density, int cells, int warmup, int measure,
                  std::uint64_t seed) {
  NaschConfig cfg;
  cfg.cells = cells;
  cfg.density = density;
  cfg.seed = seed;
  NaschRoad road(cfg);
  for (int s = 0; s < warmup; ++s) road.step();
  const double before = road.flow() * road.steps();
  for (int s = 0; s < measure; ++s) road.step();
  const double after = road.flow() * road.steps();
  return (after - before) / measure;
}

DistributedTrafficViz::DistributedTrafficViz(net::Host& sim_host,
                                             net::Host& viz_host,
                                             NaschConfig cfg, int steps,
                                             des::SimTime step_interval,
                                             std::uint16_t port)
    : sim_host_(sim_host), viz_id_(viz_host.id()), port_(port), road_(cfg),
      tx_(sim_host, static_cast<std::uint16_t>(port + 1)),
      rx_(viz_host, port), graph_(sim_host.scheduler()),
      source_(graph_,
              flow::PeriodicSource::Config{step_interval, steps,
                                           /*immediate_first=*/true},
              nullptr,
              [this]() {
                // Final accounting once the network drains (schedule far
                // enough out).
                auto& sched = sim_host_.scheduler();
                sched.schedule_after(
                    des::SimTime::milliseconds(50), [this, &sched]() {
                      result_.elapsed_s = (sched.now() - started_).sec();
                      result_.final_mean_speed = road_.mean_speed();
                      if (result_.elapsed_s > 0.0)
                        result_.frames_per_s =
                            static_cast<double>(result_.frames_delivered) /
                            result_.elapsed_s;
                    });
              }) {
  result_.frame_bytes = static_cast<std::uint64_t>(cfg.cells);
  rx_.on_receive([this](const net::IpPacket&) { ++result_.frames_delivered; });
  graph_.add_stage(flow::inline_stage(
      "simulate", [this](flow::StageContext, flow::Item&) {
        road_.step();
        ++result_.steps_simulated;
      }));
  // Ship the occupancy frame to the visualization site.
  graph_.add_stage(flow::datagram_transfer_stage(
      "publish", tx_, viz_id_, port_,
      [this](const flow::Item&) {
        return units::Bytes{result_.frame_bytes};
      },
      /*number_frames=*/false));
}

void DistributedTrafficViz::start() {
  started_ = sim_host_.scheduler().now();
  source_.start();
}

}  // namespace gtw::apps
