#include "apps/climate.hpp"

#include <algorithm>
#include <cmath>

namespace gtw::apps {

double Field2D::mean() const {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

Field2D regrid(const Field2D& src, int nx, int ny) {
  Field2D out(nx, ny);
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      // Map cell centres; clamp to the source interior.
      const double sx = (x + 0.5) * src.nx / nx - 0.5;
      const double sy = (y + 0.5) * src.ny / ny - 0.5;
      const int x0 = std::clamp(static_cast<int>(std::floor(sx)), 0, src.nx - 1);
      const int y0 = std::clamp(static_cast<int>(std::floor(sy)), 0, src.ny - 1);
      const int x1 = std::min(x0 + 1, src.nx - 1);
      const int y1 = std::min(y0 + 1, src.ny - 1);
      const double fx = std::clamp(sx - x0, 0.0, 1.0);
      const double fy = std::clamp(sy - y0, 0.0, 1.0);
      out.at(x, y) = (1 - fx) * (1 - fy) * src.at(x0, y0) +
                     fx * (1 - fy) * src.at(x1, y0) +
                     (1 - fx) * fy * src.at(x0, y1) +
                     fx * fy * src.at(x1, y1);
    }
  }
  return out;
}

Field2D regrid_conservative(const Field2D& src, int nx, int ny) {
  Field2D out(nx, ny);
  // Overlap of destination cell [x, x+1) x [y, y+1) (in destination units)
  // with source cells, computed per axis: the 1-D overlap of dst interval
  // [a, b) with src cell [c, c+1) in source units.
  const double sx = static_cast<double>(src.nx) / nx;
  const double sy = static_cast<double>(src.ny) / ny;
  for (int y = 0; y < ny; ++y) {
    const double y0 = y * sy, y1 = (y + 1) * sy;
    for (int x = 0; x < nx; ++x) {
      const double x0 = x * sx, x1 = (x + 1) * sx;
      double acc = 0.0, area = 0.0;
      for (int cy = static_cast<int>(y0); cy < src.ny &&
                                          static_cast<double>(cy) < y1; ++cy) {
        const double wy = std::min(y1, static_cast<double>(cy) + 1.0) -
                          std::max(y0, static_cast<double>(cy));
        if (wy <= 0.0) continue;
        for (int cx = static_cast<int>(x0);
             cx < src.nx && static_cast<double>(cx) < x1; ++cx) {
          const double wx = std::min(x1, static_cast<double>(cx) + 1.0) -
                            std::max(x0, static_cast<double>(cx));
          if (wx <= 0.0) continue;
          acc += wx * wy * src.at(cx, cy);
          area += wx * wy;
        }
      }
      out.at(x, y) = area > 0.0 ? acc / area : 0.0;
    }
  }
  return out;
}

OceanModel::OceanModel(OceanConfig cfg)
    : cfg_(cfg), sst_(cfg.nx, cfg.ny, cfg.initial_sst) {}

void OceanModel::step(const Field2D& heat_flux) {
  Field2D next = sst_;
  for (int y = 0; y < cfg_.ny; ++y) {
    for (int x = 0; x < cfg_.nx; ++x) {
      const int xm = (x - 1 + cfg_.nx) % cfg_.nx;  // periodic in longitude
      const int xp = (x + 1) % cfg_.nx;
      const int ym = std::max(y - 1, 0);
      const int yp = std::min(y + 1, cfg_.ny - 1);
      const double lap = sst_.at(xm, y) + sst_.at(xp, y) + sst_.at(x, ym) +
                         sst_.at(x, yp) - 4.0 * sst_.at(x, y);
      // Upwind zonal advection by the mean current.
      const double adv = cfg_.advection_u * (sst_.at(xm, y) - sst_.at(x, y));
      const double forcing = heat_flux.at(x, y) / cfg_.heat_capacity;
      next.at(x, y) = sst_.at(x, y) + cfg_.diffusivity * lap + adv + forcing;
    }
  }
  sst_ = std::move(next);
}

int OceanModel::ice_cells() const {
  int n = 0;
  for (double t : sst_.v)
    if (t < 271.35) ++n;
  return n;
}

AtmosModel::AtmosModel(AtmosConfig cfg) : cfg_(cfg) {}

Field2D AtmosModel::compute_flux(const Field2D& sst) const {
  Field2D flux(cfg_.nx, cfg_.ny);
  for (int y = 0; y < cfg_.ny; ++y) {
    // Latitude from grid row: -pi/2 .. pi/2.
    const double lat = (static_cast<double>(y) + 0.5) / cfg_.ny * M_PI -
                       M_PI / 2.0;
    const double solar =
        cfg_.solar_equator * std::max(std::cos(lat), 0.05) * (1 - cfg_.albedo);
    for (int x = 0; x < cfg_.nx; ++x) {
      const double t = sst.at(x, y);
      const double olr = cfg_.olr_a + cfg_.olr_b * (t - 273.0);
      // Air-sea exchange pulls toward a latitude-dependent air temperature.
      const double t_air = 288.0 - 40.0 * (1.0 - std::cos(lat));
      const double sensible = cfg_.exchange * (t_air - t);
      flux.at(x, y) = solar - olr + sensible;
    }
  }
  return flux;
}

ClimateCoupling::ClimateCoupling(std::shared_ptr<meta::Communicator> comm,
                                 OceanConfig ocfg, AtmosConfig acfg,
                                 int steps)
    : comm_(std::move(comm)), ocean_(ocfg), atmos_(acfg), steps_(steps) {}

void ClimateCoupling::start() {
  started_ = comm_->metacomputer().scheduler().now();
  step(0);
}

void ClimateCoupling::step(int n) {
  auto& sched = comm_->metacomputer().scheduler();
  if (n >= steps_) {
    result_.elapsed_s = (sched.now() - started_).sec();
    result_.mean_sst = ocean_.sst().mean();
    result_.ice_cells = ocean_.ice_cells();
    if (steps_ > 0) result_.exchange_latency_s = comm_time_accum_ / steps_;
    return;
  }
  const des::SimTime comm_begin = sched.now();

  // Ocean (rank 0) sends SST up to the atmosphere (rank 1).
  auto sst = std::make_shared<Field2D>(ocean_.sst());
  result_.bytes_per_step = sst->bytes();
  comm_->recv(1, 0, /*tag=*/2 * n, [this, n, comm_begin,
                                    &sched](const meta::Message& msg) {
    auto sst_up = std::any_cast<std::shared_ptr<Field2D>>(msg.data);
    // Flux coupler: regrid SST to the atmosphere grid, compute fluxes,
    // regrid back to the ocean grid.
    const Field2D sst_atm =
        regrid(*sst_up, atmos_.config().nx, atmos_.config().ny);
    auto flux = std::make_shared<Field2D>(atmos_.compute_flux(sst_atm));

    comm_->recv(0, 1, /*tag=*/2 * n + 1, [this, n, comm_begin,
                                          &sched](const meta::Message& m2) {
      auto flux_down = std::any_cast<std::shared_ptr<Field2D>>(m2.data);
      const Field2D flux_ocean =
          regrid(*flux_down, ocean_.config().nx, ocean_.config().ny);
      comm_time_accum_ += (sched.now() - comm_begin).sec();
      ocean_.step(flux_ocean);
      ++result_.steps_completed;
      step(n + 1);
    });
    result_.bytes_per_step += flux->bytes();
    comm_->send(1, 0, /*tag=*/2 * n + 1, flux->bytes(), flux);
  });
  comm_->send(0, 1, /*tag=*/2 * n, sst->bytes(), sst);
}

}  // namespace gtw::apps
