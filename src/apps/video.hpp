// Multimedia project (paper section 3, "Multimedia in a Gigabit-WAN"):
// studio-quality digital video over ATM — "e.g. 270 Mbit/s for an
// uncompressed D1 video stream".  A D1 session is a CBR datagram stream of
// 25 frames/s; the sink reports delivered rate, loss and jitter, which is
// how the GMD's multimedia project judged link quality.
#pragma once

#include <cstdint>
#include <memory>

#include "flow/stage.hpp"
#include "net/datagram.hpp"
#include "net/host.hpp"

namespace gtw::apps {

struct D1VideoConfig {
  units::BitRate rate = units::BitRate::mbps(270.0);  // uncompressed D1
  double fps = 25.0;        // PAL frame cadence
  int frames = 250;         // 10 seconds by default

  units::Bytes frame_bytes() const {
    return units::Bytes{static_cast<std::uint32_t>(rate.bps() / fps / 8.0)};
  }
};

struct D1VideoReport {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_lost = 0;
  units::BitRate offered;
  units::BitRate goodput;
  double jitter_ms = 0.0;   // stddev of frame inter-arrival
  bool feasible = false;    // delivered >= 99% of frames at cadence
};

class D1VideoSession {
 public:
  D1VideoSession(net::Host& source, net::Host& sink, D1VideoConfig cfg,
                 std::uint16_t port_base = 7200);

  void start();
  // Call after the scheduler drained.
  D1VideoReport report() const;

  // Uplink send events as trace rank 0.
  void attach_trace(trace::TraceRecorder* rec) { graph_.attach_trace(rec); }
  const flow::MetricsRegistry& metrics() const { return graph_.metrics(); }
  // For failure wiring (net::FaultPlan observers, degraded-mode tests).
  flow::StageGraph& graph() { return graph_; }

 private:
  D1VideoConfig cfg_;
  net::CbrSink sink_;
  des::Scheduler& sched_;
  net::DatagramSocket socket_;
  des::SimTime interval_;
  // The CBR stream is a one-stage flow graph fed at the PAL frame cadence.
  flow::StageGraph graph_;
  flow::PeriodicSource source_;
  des::SimTime started_;
};

}  // namespace gtw::apps
