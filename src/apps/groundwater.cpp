#include "apps/groundwater.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/cg.hpp"

namespace gtw::apps {

void FlowField::sample(double x, double y, double z, double& ox, double& oy,
                       double& oz) const {
  auto tri = [&](const std::vector<float>& c) {
    const int x0 = std::clamp(static_cast<int>(std::floor(x)), 0, dims.nx - 1);
    const int y0 = std::clamp(static_cast<int>(std::floor(y)), 0, dims.ny - 1);
    const int z0 = std::clamp(static_cast<int>(std::floor(z)), 0, dims.nz - 1);
    const int x1 = std::min(x0 + 1, dims.nx - 1);
    const int y1 = std::min(y0 + 1, dims.ny - 1);
    const int z1 = std::min(z0 + 1, dims.nz - 1);
    const double fx = std::clamp(x - x0, 0.0, 1.0);
    const double fy = std::clamp(y - y0, 0.0, 1.0);
    const double fz = std::clamp(z - z0, 0.0, 1.0);
    auto at = [&](int xi, int yi, int zi) {
      return static_cast<double>(
          c[(static_cast<std::size_t>(zi) * dims.ny + yi) * dims.nx + xi]);
    };
    const double c00 = at(x0, y0, z0) * (1 - fx) + at(x1, y0, z0) * fx;
    const double c10 = at(x0, y1, z0) * (1 - fx) + at(x1, y1, z0) * fx;
    const double c01 = at(x0, y0, z1) * (1 - fx) + at(x1, y0, z1) * fx;
    const double c11 = at(x0, y1, z1) * (1 - fx) + at(x1, y1, z1) * fx;
    const double c0 = c00 * (1 - fy) + c10 * fy;
    const double c1 = c01 * (1 - fy) + c11 * fy;
    return c0 * (1 - fz) + c1 * fz;
  };
  ox = tri(vx);
  oy = tri(vy);
  oz = tri(vz);
}

TraceFlowSolver::TraceFlowSolver(TraceConfig cfg) : cfg_(cfg) {}

double TraceFlowSolver::conductivity(int x, int y, int z) const {
  // Low-permeability ellipsoidal lens in the domain centre.
  const fire::Dims& d = cfg_.dims;
  const double ux = (x - d.nx / 2.0) / (d.nx * 0.2);
  const double uy = (y - d.ny / 2.0) / (d.ny * 0.25);
  const double uz = (z - d.nz / 2.0) / (d.nz * 0.3);
  return (ux * ux + uy * uy + uz * uz < 1.0) ? cfg_.k_lens : cfg_.k_background;
}

TraceFlowSolver::Solution TraceFlowSolver::solve() const {
  const fire::Dims d = cfg_.dims;
  const std::size_t n = d.voxels();
  auto idx = [&](int x, int y, int z) {
    return (static_cast<std::size_t>(z) * d.ny + y) * d.nx + x;
  };
  // Harmonic-mean face conductivity keeps the operator symmetric.
  auto face_k = [&](int x0, int y0, int z0, int x1, int y1, int z1) {
    const double a = conductivity(x0, y0, z0);
    const double b = conductivity(x1, y1, z1);
    return 2.0 * a * b / (a + b);
  };

  // Unknowns: interior in x (Dirichlet at x=0 and x=nx-1); Neumann on the
  // other faces.  We solve for all cells but pin the Dirichlet columns via
  // the RHS.
  linalg::Vector rhs(n, 0.0);
  auto is_dirichlet = [&](int x) { return x == 0 || x == d.nx - 1; };
  auto dirichlet_value = [&](int x) {
    return x == 0 ? cfg_.head_inlet : cfg_.head_outlet;
  };

  auto apply = [&](const linalg::Vector& h, linalg::Vector& out) {
    out.assign(n, 0.0);
    for (int z = 0; z < d.nz; ++z) {
      for (int y = 0; y < d.ny; ++y) {
        for (int x = 0; x < d.nx; ++x) {
          const std::size_t i = idx(x, y, z);
          if (is_dirichlet(x)) {
            out[i] = h[i];  // identity row
            continue;
          }
          double diag = 0.0, off = 0.0;
          auto couple = [&](int xn, int yn, int zn) {
            if (xn < 0 || xn >= d.nx || yn < 0 || yn >= d.ny || zn < 0 ||
                zn >= d.nz)
              return;  // no-flux boundary
            const double k = face_k(x, y, z, xn, yn, zn);
            diag += k;
            if (is_dirichlet(xn)) return;  // moved to RHS
            off += k * h[idx(xn, yn, zn)];
          };
          couple(x - 1, y, z);
          couple(x + 1, y, z);
          couple(x, y - 1, z);
          couple(x, y + 1, z);
          couple(x, y, z - 1);
          couple(x, y, z + 1);
          out[i] = diag * h[i] - off;
        }
      }
    }
  };

  for (int z = 0; z < d.nz; ++z) {
    for (int y = 0; y < d.ny; ++y) {
      for (int x = 0; x < d.nx; ++x) {
        const std::size_t i = idx(x, y, z);
        if (is_dirichlet(x)) {
          rhs[i] = dirichlet_value(x);
          continue;
        }
        // Dirichlet neighbours contribute to the RHS.
        if (x - 1 == 0)
          rhs[i] += face_k(x, y, z, x - 1, y, z) * cfg_.head_inlet;
        if (x + 1 == d.nx - 1)
          rhs[i] += face_k(x, y, z, x + 1, y, z) * cfg_.head_outlet;
      }
    }
  }

  const linalg::CgResult cg = linalg::conjugate_gradient(
      apply, rhs, cfg_.cg_max_iterations, cfg_.cg_tolerance);

  Solution sol;
  sol.cg_iterations = cg.iterations;
  sol.converged = cg.converged;
  sol.head = fire::VolumeF(d);
  for (std::size_t i = 0; i < n; ++i)
    sol.head[i] = static_cast<float>(cg.x[i]);

  // Darcy velocity v = -K grad h (central differences, clamped edges).
  sol.velocity.dims = d;
  sol.velocity.vx.resize(n);
  sol.velocity.vy.resize(n);
  sol.velocity.vz.resize(n);
  for (int z = 0; z < d.nz; ++z) {
    for (int y = 0; y < d.ny; ++y) {
      for (int x = 0; x < d.nx; ++x) {
        const std::size_t i = idx(x, y, z);
        const double k = conductivity(x, y, z);
        const double hx =
            (sol.head.clamped(x + 1, y, z) - sol.head.clamped(x - 1, y, z)) /
            2.0;
        const double hy =
            (sol.head.clamped(x, y + 1, z) - sol.head.clamped(x, y - 1, z)) /
            2.0;
        const double hz =
            (sol.head.clamped(x, y, z + 1) - sol.head.clamped(x, y, z - 1)) /
            2.0;
        sol.velocity.vx[i] = static_cast<float>(-k * hx);
        sol.velocity.vy[i] = static_cast<float>(-k * hy);
        sol.velocity.vz[i] = static_cast<float>(-k * hz);
      }
    }
  }
  return sol;
}

std::vector<Particle> ParTraceTracker::seed(const fire::Dims& dims, int count,
                                            des::Rng& rng) const {
  std::vector<Particle> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(Particle{0.5, rng.uniform(1.0, dims.ny - 2.0),
                           rng.uniform(1.0, dims.nz - 2.0), false});
  }
  return out;
}

int ParTraceTracker::step(std::vector<Particle>& particles,
                          const FlowField& field) const {
  int inside = 0;
  // Velocities are tiny (k ~ 1e-4); scale so particles traverse the domain
  // in a practical number of steps while preserving the streamline shape.
  const double scale = dt_;
  for (Particle& p : particles) {
    if (p.exited) continue;
    double vx1, vy1, vz1;
    field.sample(p.x, p.y, p.z, vx1, vy1, vz1);
    // RK2 midpoint.
    const double mx = p.x + 0.5 * scale * vx1;
    const double my = p.y + 0.5 * scale * vy1;
    const double mz = p.z + 0.5 * scale * vz1;
    double vx2, vy2, vz2;
    field.sample(mx, my, mz, vx2, vy2, vz2);
    p.x += scale * vx2;
    p.y += scale * vy2;
    p.z += scale * vz2;
    if (p.x >= field.dims.nx - 1.0 || p.x < 0.0) {
      p.exited = true;
    } else {
      ++inside;
    }
  }
  return inside;
}

GroundwaterCoupling::GroundwaterCoupling(
    std::shared_ptr<meta::Communicator> comm, TraceConfig cfg, int particles,
    int steps, CouplingTiming timing)
    : comm_(std::move(comm)), solver_(cfg), tracker_(2.0 / cfg.k_background),
      steps_(steps), timing_(timing) {
  des::Rng rng(42);
  particles_ = tracker_.seed(cfg.dims, particles, rng);
}

void GroundwaterCoupling::set_trace(trace::TraceRecorder* rec,
                                    std::uint32_t solve_state,
                                    std::uint32_t advect_state) {
  trace_ = rec;
  st_solve_ = solve_state;
  st_advect_ = advect_state;
}

void GroundwaterCoupling::start() {
  started_ = comm_->metacomputer().scheduler().now();
  // The flow solve runs for real once (steady flow; the real application
  // recomputes it per step, which the modeled solve_per_step accounts for).
  auto sol = std::make_shared<TraceFlowSolver::Solution>(solver_.solve());
  field_ = std::make_shared<FlowField>(std::move(sol->velocity));
  result_.bytes_per_step = field_->bytes();
  coupling_step(0);
}

void GroundwaterCoupling::coupling_step(int step) {
  auto& sched = comm_->metacomputer().scheduler();
  if (step >= steps_) {
    result_.elapsed_s = (sched.now() - started_).sec();
    if (result_.elapsed_s > 0.0) {
      result_.achieved_mbyte_per_s =
          static_cast<double>(result_.bytes_per_step) * steps_ /
          result_.elapsed_s / 1e6;
    }
    if (transfer_accum_s_ > 0.0) {
      result_.burst_mbyte_per_s = static_cast<double>(result_.bytes_per_step) *
                                  steps_ / transfer_accum_s_ / 1e6;
    }
    result_.particles_remaining = 0;
    for (const Particle& p : particles_)
      if (!p.exited) ++result_.particles_remaining;
    return;
  }

  // Rank 1 (PARTRACE) posts its receive, then advects when the field lands.
  comm_->recv(1, 0, /*tag=*/step, [this, step, &sched](const meta::Message& msg) {
    transfer_accum_s_ += (sched.now() - send_started_).sec();
    if (trace_ != nullptr) {
      trace_->recv(1, 0, static_cast<std::uint32_t>(step),
                   units::Bytes{msg.bytes},
                   sched.now());
      trace_->enter(1, st_advect_, sched.now());
    }
    auto field = std::any_cast<std::shared_ptr<FlowField>>(msg.data);
    sched.schedule_after(timing_.advect_per_step, [this, step, field,
                                                   &sched]() {
      tracker_.step(particles_, *field);
      if (trace_ != nullptr) trace_->leave(1, st_advect_, sched.now());
      ++result_.steps_completed;
      coupling_step(step + 1);
    });
  });

  // Rank 0 (TRACE) recomputes the flow, then ships the field.
  if (trace_ != nullptr) trace_->enter(0, st_solve_, sched.now());
  sched.schedule_after(timing_.solve_per_step, [this, step, &sched]() {
    if (trace_ != nullptr) {
      trace_->leave(0, st_solve_, sched.now());
      trace_->send(0, 1, static_cast<std::uint32_t>(step),
                   units::Bytes{field_->bytes()},
                   sched.now());
    }
    send_started_ = sched.now();
    comm_->send(0, 1, /*tag=*/step, field_->bytes(), field_);
  });
}

}  // namespace gtw::apps
