#include "apps/moldyn.hpp"

#include <algorithm>
#include <cmath>

namespace gtw::apps {

LjFluid::LjFluid(LjConfig cfg) : cfg_(cfg) {
  const int n = cfg_.n_particles;
  x_.resize(static_cast<std::size_t>(n));
  y_.resize(static_cast<std::size_t>(n));
  vx_.resize(static_cast<std::size_t>(n));
  vy_.resize(static_cast<std::size_t>(n));
  fx_.assign(static_cast<std::size_t>(n), 0.0);
  fy_.assign(static_cast<std::size_t>(n), 0.0);

  // Square lattice start (avoids overlaps), Maxwell velocities.
  const int side = static_cast<int>(std::ceil(std::sqrt(n)));
  const double spacing = cfg_.box / side;
  des::Rng rng(cfg_.seed);
  double px = 0.0, py = 0.0;
  for (int i = 0; i < n; ++i) {
    x_[static_cast<std::size_t>(i)] = (i % side + 0.5) * spacing;
    y_[static_cast<std::size_t>(i)] = (i / side + 0.5) * spacing;
    const double s = std::sqrt(cfg_.temperature);
    vx_[static_cast<std::size_t>(i)] = rng.normal(0.0, s);
    vy_[static_cast<std::size_t>(i)] = rng.normal(0.0, s);
    px += vx_[static_cast<std::size_t>(i)];
    py += vy_[static_cast<std::size_t>(i)];
  }
  // Remove centre-of-mass drift.
  for (int i = 0; i < n; ++i) {
    vx_[static_cast<std::size_t>(i)] -= px / n;
    vy_[static_cast<std::size_t>(i)] -= py / n;
  }
  compute_forces();
}

void LjFluid::build_cells() {
  cells_per_axis_ = std::max(1, static_cast<int>(cfg_.box / cfg_.cutoff));
  cell_size_ = cfg_.box / cells_per_axis_;
  cells_.assign(static_cast<std::size_t>(cells_per_axis_) * cells_per_axis_,
                {});
  for (int i = 0; i < cfg_.n_particles; ++i) {
    int cx = static_cast<int>(x_[static_cast<std::size_t>(i)] / cell_size_);
    int cy = static_cast<int>(y_[static_cast<std::size_t>(i)] / cell_size_);
    cx = std::clamp(cx, 0, cells_per_axis_ - 1);
    cy = std::clamp(cy, 0, cells_per_axis_ - 1);
    cells_[static_cast<std::size_t>(cy) * cells_per_axis_ + cx].push_back(i);
  }
}

void LjFluid::compute_forces() {
  build_cells();
  std::fill(fx_.begin(), fx_.end(), 0.0);
  std::fill(fy_.begin(), fy_.end(), 0.0);
  cached_pe_ = 0.0;
  const double rc2 = cfg_.cutoff * cfg_.cutoff;

  auto interact = [&](int i, int j) {
    double dx = x_[static_cast<std::size_t>(i)] - x_[static_cast<std::size_t>(j)];
    double dy = y_[static_cast<std::size_t>(i)] - y_[static_cast<std::size_t>(j)];
    // Minimum image.
    if (dx > cfg_.box / 2) dx -= cfg_.box;
    if (dx < -cfg_.box / 2) dx += cfg_.box;
    if (dy > cfg_.box / 2) dy -= cfg_.box;
    if (dy < -cfg_.box / 2) dy += cfg_.box;
    const double r2 = dx * dx + dy * dy;
    if (r2 >= rc2 || r2 < 1e-12) return;
    const double inv2 = 1.0 / r2;
    const double inv6 = inv2 * inv2 * inv2;
    // LJ: U = 4 (r^-12 - r^-6), F = 24 (2 r^-12 - r^-6) / r * rhat.
    const double f = 24.0 * (2.0 * inv6 * inv6 - inv6) * inv2;
    fx_[static_cast<std::size_t>(i)] += f * dx;
    fy_[static_cast<std::size_t>(i)] += f * dy;
    fx_[static_cast<std::size_t>(j)] -= f * dx;
    fy_[static_cast<std::size_t>(j)] -= f * dy;
    cached_pe_ += 4.0 * (inv6 * inv6 - inv6);
  };

  for (int cy = 0; cy < cells_per_axis_; ++cy) {
    for (int cx = 0; cx < cells_per_axis_; ++cx) {
      const auto& cell =
          cells_[static_cast<std::size_t>(cy) * cells_per_axis_ + cx];
      // Within the cell.
      for (std::size_t a = 0; a < cell.size(); ++a)
        for (std::size_t b = a + 1; b < cell.size(); ++b)
          interact(cell[a], cell[b]);
      // Half the neighbour cells (east, north-east, north, north-west) so
      // each pair is visited once.
      const int ndx[] = {1, 1, 0, -1};
      const int ndy[] = {0, 1, 1, 1};
      for (int k = 0; k < 4; ++k) {
        const int ox = (cx + ndx[k] + cells_per_axis_) % cells_per_axis_;
        const int oy = (cy + ndy[k] + cells_per_axis_) % cells_per_axis_;
        const auto& other =
            cells_[static_cast<std::size_t>(oy) * cells_per_axis_ + ox];
        for (int i : cell)
          for (int j : other) interact(i, j);
      }
    }
  }
}

void LjFluid::step() {
  const int n = cfg_.n_particles;
  const double dt = cfg_.dt;
  // Velocity Verlet.
  for (int i = 0; i < n; ++i) {
    vx_[static_cast<std::size_t>(i)] += 0.5 * dt * fx_[static_cast<std::size_t>(i)];
    vy_[static_cast<std::size_t>(i)] += 0.5 * dt * fy_[static_cast<std::size_t>(i)];
    x_[static_cast<std::size_t>(i)] += dt * vx_[static_cast<std::size_t>(i)];
    y_[static_cast<std::size_t>(i)] += dt * vy_[static_cast<std::size_t>(i)];
    // Periodic wrap.
    x_[static_cast<std::size_t>(i)] = std::fmod(x_[static_cast<std::size_t>(i)] + cfg_.box, cfg_.box);
    y_[static_cast<std::size_t>(i)] = std::fmod(y_[static_cast<std::size_t>(i)] + cfg_.box, cfg_.box);
  }
  compute_forces();
  for (int i = 0; i < n; ++i) {
    vx_[static_cast<std::size_t>(i)] += 0.5 * dt * fx_[static_cast<std::size_t>(i)];
    vy_[static_cast<std::size_t>(i)] += 0.5 * dt * fy_[static_cast<std::size_t>(i)];
  }
}

double LjFluid::kinetic_energy() const {
  double ke = 0.0;
  for (int i = 0; i < cfg_.n_particles; ++i)
    ke += 0.5 * (vx_[static_cast<std::size_t>(i)] * vx_[static_cast<std::size_t>(i)] +
                 vy_[static_cast<std::size_t>(i)] * vy_[static_cast<std::size_t>(i)]);
  return ke;
}

double LjFluid::potential_energy() const { return cached_pe_; }

double LjFluid::temperature() const {
  // 2-D equipartition: KE = N kT.
  return kinetic_energy() / cfg_.n_particles;
}

void LjFluid::thermostat(double target_t, double strength) {
  const double t = temperature();
  if (t <= 0.0) return;
  const double lambda =
      std::sqrt(1.0 + strength * (target_t / t - 1.0));
  for (auto& v : vx_) v *= lambda;
  for (auto& v : vy_) v *= lambda;
}

std::vector<double> LjFluid::density_profile(int bins) const {
  std::vector<double> out(static_cast<std::size_t>(bins), 0.0);
  const double w = cfg_.box / bins;
  for (int i = 0; i < cfg_.n_particles; ++i) {
    int b = static_cast<int>(x_[static_cast<std::size_t>(i)] / w);
    b = std::clamp(b, 0, bins - 1);
    out[static_cast<std::size_t>(b)] += 1.0;
  }
  const double strip_area = w * cfg_.box;
  for (double& d : out) d /= strip_area;
  return out;
}

MultiscaleMd::MultiscaleMd(std::shared_ptr<meta::Communicator> comm,
                           LjConfig cfg, int coupling_steps,
                           int md_steps_per_coupling, double coarse_target_t)
    : comm_(std::move(comm)), fluid_(cfg), coupling_steps_(coupling_steps),
      md_per_coupling_(md_steps_per_coupling),
      coarse_target_t_(coarse_target_t) {}

void MultiscaleMd::start() {
  started_ = comm_->metacomputer().scheduler().now();
  e0_ = fluid_.total_energy();
  coupling_step(0);
}

void MultiscaleMd::coupling_step(int n) {
  auto& sched = comm_->metacomputer().scheduler();
  if (n >= coupling_steps_) {
    result_.elapsed_s = (sched.now() - started_).sec();
    result_.final_temperature = fluid_.temperature();
    const double e1 = fluid_.total_energy();
    result_.energy_drift = std::abs(e1 - e0_) / std::max(std::abs(e0_), 1e-9);
    if (coupling_steps_ > 0)
      result_.mean_exchange_ms = comm_accum_s_ * 1e3 / coupling_steps_;
    return;
  }
  // Fine side (rank 0, Bonn): advance the atomistic region.
  for (int s = 0; s < md_per_coupling_; ++s) fluid_.step();

  // Exchange: density profile up, thermostat target back.
  const des::SimTime t0 = sched.now();
  auto profile = std::make_shared<std::vector<double>>(
      fluid_.density_profile(16));
  comm_->recv(0, 1, /*tag=*/1000 + n, [this, n, t0,
                                       &sched](const meta::Message& msg) {
    comm_accum_s_ += (sched.now() - t0).sec();
    const double target = std::any_cast<double>(msg.data);
    fluid_.thermostat(target, 0.2);
    ++result_.steps_completed;
    coupling_step(n + 1);
  });
  comm_->recv(1, 0, /*tag=*/n, [this, n](const meta::Message&) {
    // Coarse side (rank 1, GMD): the continuum model digests the profile
    // and returns the boundary thermostat target.
    comm_->send(1, 0, /*tag=*/1000 + n, sizeof(double),
                std::any{coarse_target_t_});
  });
  comm_->send(0, 1, /*tag=*/n, profile->size() * sizeof(double), profile);
}

}  // namespace gtw::apps
