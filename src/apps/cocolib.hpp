// MetaCISPAR / COCOLIB (paper section 3): "An open interface (COCOLIB)
// that allows the coupling of industrial structural mechanics and fluid
// dynamics codes is ported to the metacomputing environment."
//
// The stand-in implements the essence of such a coupling library: two
// independently-discretised codes share a coupling surface; the library
// transfers interface fields between the non-matching meshes and drives an
// under-relaxed fixed-point iteration until the interface is consistent.
// Demo codes: a lubrication-theory channel flow (fluid pressure given the
// wall shape) against a tensioned wall on an elastic foundation (wall
// deflection given the pressure) — a classic steady FSI problem with a
// genuine two-way coupling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "meta/communicator.hpp"

namespace gtw::apps::coco {

// One side's discretisation of the (1-D) coupling surface: node positions
// in [0, 1], strictly increasing, endpoints included.
struct InterfaceMesh {
  std::vector<double> nodes;

  static InterfaceMesh uniform(int n);
  std::size_t size() const { return nodes.size(); }
};

// Map nodal values from one mesh to another by piecewise-linear
// interpolation (exact for linear fields — the library's core service).
std::vector<double> transfer(const std::vector<double>& values,
                             const InterfaceMesh& from,
                             const InterfaceMesh& to);

// --- demo fluid code ---------------------------------------------------------

struct ChannelConfig {
  double h0 = 1.0;        // undeformed gap
  double p_in = 2.0;      // inlet pressure
  double p_out = 0.0;     // outlet pressure
};

// Steady lubrication flow: volume flux q = -h^3 p' is constant along the
// channel, so p(x) follows from integrating 1/h^3 between the fixed end
// pressures.  Returns the pressure at the mesh nodes given the local gap.
class ChannelFlow {
 public:
  ChannelFlow(InterfaceMesh mesh, ChannelConfig cfg);

  // `gap` at the mesh nodes (must stay positive).
  std::vector<double> pressure(const std::vector<double>& gap) const;
  // The constant volume flux for a given gap profile.
  double flux(const std::vector<double>& gap) const;

  const InterfaceMesh& mesh() const { return mesh_; }

 private:
  InterfaceMesh mesh_;
  ChannelConfig cfg_;
};

// --- demo structural code ------------------------------------------------------

struct WallConfig {
  double tension = 4.0;      // membrane tension T
  double foundation = 30.0;  // elastic foundation stiffness k
};

// Tensioned wall on an elastic foundation: -T w'' + k w = p, w = 0 at both
// ends; SPD tridiagonal system solved directly.
class ElasticWall {
 public:
  ElasticWall(InterfaceMesh mesh, WallConfig cfg);

  std::vector<double> deflection(const std::vector<double>& pressure) const;
  const InterfaceMesh& mesh() const { return mesh_; }

 private:
  InterfaceMesh mesh_;
  WallConfig cfg_;
};

// --- the coupled iteration ------------------------------------------------------

struct FsiConfig {
  ChannelConfig channel;
  WallConfig wall;
  double relaxation = 0.4;   // under-relaxation of the deflection update
  double tolerance = 1e-8;   // max |w_new - w_old|
  int max_iterations = 200;
  double max_gap_closure = 0.8;  // clamp: w <= this fraction of h0
};

struct FsiResult {
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;
  std::vector<double> pressure;    // on the fluid mesh
  std::vector<double> deflection;  // on the structure mesh
  double flux = 0.0;
  // For the distributed run: interface bytes exchanged and elapsed time.
  std::uint64_t bytes_exchanged = 0;
  double elapsed_s = 0.0;
};

// Serial reference implementation (both codes in one process).
FsiResult couple_serial(const InterfaceMesh& fluid_mesh,
                        const InterfaceMesh& wall_mesh, FsiConfig cfg);

// Metacomputing version: rank 0 runs the fluid code, rank 1 the structure,
// COCOLIB shipping interface fields across the testbed each iteration —
// the "communication ... depends on the coupled application" pattern.
class DistributedFsi {
 public:
  DistributedFsi(std::shared_ptr<meta::Communicator> comm,
                 InterfaceMesh fluid_mesh, InterfaceMesh wall_mesh,
                 FsiConfig cfg);

  void start();
  const FsiResult& result() const { return result_; }

 private:
  void iterate(int n, std::shared_ptr<std::vector<double>> w_on_wall);

  std::shared_ptr<meta::Communicator> comm_;
  ChannelFlow fluid_;
  ElasticWall wall_;
  FsiConfig cfg_;
  des::SimTime started_;
  FsiResult result_;
};

}  // namespace gtw::apps::coco
