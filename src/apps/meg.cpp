#include "apps/meg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/solve.hpp"

namespace gtw::apps {

namespace {
Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}
double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}
double norm(const Vec3& a) { return std::sqrt(dot(a, a)); }
Vec3 sub(const Vec3& a, const Vec3& b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
Vec3 scale(const Vec3& a, double s) { return {a.x * s, a.y * s, a.z * s}; }

constexpr double kMu0Over4Pi = 1e-7;
}  // namespace

Vec3 sarvas_field(const Vec3& r0, const Vec3& q, const Vec3& r) {
  const Vec3 a_vec = sub(r, r0);
  const double a = norm(a_vec);
  const double rn = norm(r);
  const double ar = dot(a_vec, r);
  const double f = a * (rn * a + rn * rn - dot(r0, r));
  if (std::abs(f) < 1e-30) return {};
  // grad F.
  const double c1 = a * a / rn + ar / a + 2.0 * a + 2.0 * rn;
  const double c2 = a + 2.0 * rn + ar / a;
  const Vec3 grad_f = sub(scale(r, c1), scale(r0, c2));
  const Vec3 qxr0 = cross(q, r0);
  const double qxr0_dot_r = dot(qxr0, r);
  Vec3 b = sub(scale(qxr0, f), scale(grad_f, qxr0_dot_r));
  return scale(b, kMu0Over4Pi / (f * f));
}

MegSimulator::MegSimulator(MegConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  // Fibonacci spiral over the upper hemisphere.
  sensors_.reserve(static_cast<std::size_t>(cfg_.n_sensors));
  const double golden = M_PI * (3.0 - std::sqrt(5.0));
  for (int i = 0; i < cfg_.n_sensors; ++i) {
    const double zfrac = 0.15 + 0.85 * (i + 0.5) / cfg_.n_sensors;  // z > 0
    const double theta = golden * i;
    const double rxy = std::sqrt(std::max(0.0, 1.0 - zfrac * zfrac));
    sensors_.push_back(scale(
        Vec3{rxy * std::cos(theta), rxy * std::sin(theta), zfrac},
        cfg_.helmet_radius));
  }
}

linalg::Matrix MegSimulator::simulate(
    const std::vector<SimulatedDipole>& dipoles, double sample_rate_hz) const {
  linalg::Matrix data(static_cast<std::size_t>(cfg_.n_sensors),
                      static_cast<std::size_t>(cfg_.n_samples));
  // Precompute per-dipole sensor gains (radial component).
  std::vector<std::vector<double>> gains;
  for (const SimulatedDipole& d : dipoles) {
    std::vector<double> g;
    g.reserve(sensors_.size());
    for (const Vec3& s : sensors_) {
      const Vec3 b = sarvas_field(d.position, d.moment, s);
      const Vec3 radial = scale(s, 1.0 / norm(s));
      g.push_back(dot(b, radial));
    }
    gains.push_back(std::move(g));
  }
  for (int t = 0; t < cfg_.n_samples; ++t) {
    const double time = t / sample_rate_hz;
    for (int s = 0; s < cfg_.n_sensors; ++s) {
      double v = rng_.normal(0.0, cfg_.noise_sigma);
      for (std::size_t di = 0; di < dipoles.size(); ++di) {
        v += gains[di][static_cast<std::size_t>(s)] *
             std::sin(2.0 * M_PI * dipoles[di].freq_hz * time +
                      dipoles[di].phase);
      }
      data(static_cast<std::size_t>(s), static_cast<std::size_t>(t)) = v;
    }
  }
  return data;
}

MusicScanner::MusicScanner(std::vector<Vec3> sensors)
    : sensors_(std::move(sensors)) {}

linalg::Matrix MusicScanner::noise_projector(const linalg::Matrix& data,
                                             int n_sources) const {
  const std::size_t n = data.rows();
  // Covariance C = X X^T / T.
  linalg::Matrix c(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t t = 0; t < data.cols(); ++t)
        acc += data(i, t) * data(j, t);
      c(i, j) = c(j, i) = acc / static_cast<double>(data.cols());
    }
  const linalg::EigenResult e = linalg::eigen_symmetric(c);
  // Pn = I - Us Us^T over the top n_sources eigenvectors.
  linalg::Matrix pn = linalg::Matrix::identity(n);
  for (int k = 0; k < n_sources; ++k) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        pn(i, j) -= e.vectors(i, static_cast<std::size_t>(k)) *
                    e.vectors(j, static_cast<std::size_t>(k));
  }
  return pn;
}

double MusicScanner::metric(const linalg::Matrix& pn, const Vec3& pos) const {
  const std::size_t n = sensors_.size();
  // Gain matrix for the two tangential unit moments (radial dipoles are
  // magnetically silent in a sphere).
  const double rn = norm(pos);
  Vec3 e1, e2;
  if (rn < 1e-9) {
    e1 = {1, 0, 0};
    e2 = {0, 1, 0};
  } else {
    const Vec3 rad = scale(pos, 1.0 / rn);
    const Vec3 helper = std::abs(rad.z) < 0.9 ? Vec3{0, 0, 1} : Vec3{1, 0, 0};
    e1 = cross(rad, helper);
    e1 = scale(e1, 1.0 / norm(e1));
    e2 = cross(rad, e1);
  }

  linalg::Matrix g(n, 2);
  for (std::size_t s = 0; s < n; ++s) {
    const Vec3 radial = scale(sensors_[s], 1.0 / norm(sensors_[s]));
    g(s, 0) = dot(sarvas_field(pos, e1, sensors_[s]), radial);
    g(s, 1) = dot(sarvas_field(pos, e2, sensors_[s]), radial);
  }

  // Subspace correlation: smallest generalized eigenvalue of
  // (G^T Pn G) m = lambda (G^T G) m; whiten with Cholesky of G^T G.
  const linalg::Matrix gt = g.transposed();
  linalg::Matrix gtg = gt * g;
  const double tr = gtg(0, 0) + gtg(1, 1);
  if (tr < 1e-40) return 0.0;
  gtg(0, 0) += 1e-9 * tr;
  gtg(1, 1) += 1e-9 * tr;
  const linalg::Matrix gtpg = gt * (pn * g);

  // 2x2 Cholesky.
  const double l11 = std::sqrt(gtg(0, 0));
  const double l21 = gtg(1, 0) / l11;
  const double l22 = std::sqrt(std::max(gtg(1, 1) - l21 * l21, 1e-60));
  // M = L^-1 A L^-T for A = gtpg: solve L X = A column-wise, then
  // M = X L^-T (another forward substitution from the right).
  const double a11 = gtpg(0, 0), a12 = gtpg(0, 1), a22 = gtpg(1, 1);
  const double x11 = a11 / l11, x12 = a12 / l11;
  const double x21 = (a12 - l21 * x11) / l22, x22 = (a22 - l21 * x12) / l22;
  const double mm11 = x11 / l11;
  const double mm12 = (x12 - l21 * mm11) / l22;
  const double mm21 = x21 / l11;
  const double mm22 = (x22 - l21 * mm21) / l22;
  // Smallest eigenvalue of the symmetric 2x2 [[mm11, s],[s, mm22]].
  const double sym = 0.5 * (mm12 + mm21);
  const double mean = 0.5 * (mm11 + mm22);
  const double disc = std::sqrt(std::max(
      0.25 * (mm11 - mm22) * (mm11 - mm22) + sym * sym, 0.0));
  const double lambda_min = std::max(mean - disc, 1e-12);
  return 1.0 / lambda_min;
}

std::vector<MusicPeak> MusicScanner::localize(const linalg::Matrix& data,
                                              const MusicConfig& cfg) const {
  const linalg::Matrix pn = noise_projector(data, cfg.n_sources);
  std::vector<MusicPeak> peaks;
  for (int k = 0; k < cfg.n_sources; ++k) {
    MusicPeak best;
    for (int iz = 0; iz < cfg.grid_n; ++iz) {
      for (int iy = 0; iy < cfg.grid_n; ++iy) {
        for (int ix = 0; ix < cfg.grid_n; ++ix) {
          const Vec3 pos{
              -cfg.grid_extent + 2.0 * cfg.grid_extent * ix / (cfg.grid_n - 1),
              -cfg.grid_extent + 2.0 * cfg.grid_extent * iy / (cfg.grid_n - 1),
              0.02 +
                  cfg.grid_extent * iz / (cfg.grid_n - 1)};  // upper head
          bool excluded = false;
          for (const MusicPeak& p : peaks)
            if (norm(sub(p.position, pos)) < cfg.exclusion_radius)
              excluded = true;
          if (excluded) continue;
          const double v = metric(pn, pos);
          if (v > best.value) {
            best.value = v;
            best.position = pos;
          }
        }
      }
    }
    peaks.push_back(best);
  }
  return peaks;
}

DistributedMusic::DistributedMusic(std::shared_ptr<meta::Communicator> comm,
                                   MusicScanner scanner, MusicConfig cfg,
                                   std::vector<double> metric_evals_per_s)
    : comm_(std::move(comm)), scanner_(std::move(scanner)), cfg_(cfg),
      rank_rate_(std::move(metric_evals_per_s)) {}

void DistributedMusic::start(const linalg::Matrix& data) {
  started_ = comm_->metacomputer().scheduler().now();
  noise_proj_ = scanner_.noise_projector(data, cfg_.n_sources);
  find_source(0);
}

void DistributedMusic::find_source(int k) {
  if (k >= cfg_.n_sources) {
    result_.peaks = accepted_;
    result_.elapsed_s =
        (comm_->metacomputer().scheduler().now() - started_).sec();
    return;
  }
  // Each rank scans a contiguous slab of the z-grid and contributes its
  // best candidate as [value, x, y, z]; allreduce(max on value) would need
  // an argmax, so every rank contributes a 4-vector and the reduction takes
  // elementwise max of (value) plus a gather-style pick below.
  const int ranks = comm_->size();
  auto local_best = std::make_shared<std::vector<MusicPeak>>(
      static_cast<std::size_t>(ranks));
  auto arrived = std::make_shared<int>(0);
  double slowest_scan_s = 0.0;
  for (int r = 0; r < ranks; ++r) {
    // Slab of the outer grid dimension.
    const int z0 = cfg_.grid_n * r / ranks;
    const int z1 = cfg_.grid_n * (r + 1) / ranks;
    // Charge this rank's scan time in simulated time (the numerics below
    // run for real; the rate model decides how long the 1999 machine took).
    double rank_scan_s = 0.0;
    if (!rank_rate_.empty()) {
      const double evals = static_cast<double>(z1 - z0) * cfg_.grid_n *
                           cfg_.grid_n;
      const double rate =
          rank_rate_[static_cast<std::size_t>(r) % rank_rate_.size()];
      if (rate > 0.0) rank_scan_s = evals / rate;
      slowest_scan_s = std::max(slowest_scan_s, rank_scan_s);
    }
    MusicPeak best;
    for (int iz = z0; iz < z1; ++iz) {
      for (int iy = 0; iy < cfg_.grid_n; ++iy) {
        for (int ix = 0; ix < cfg_.grid_n; ++ix) {
          const Vec3 pos{
              -cfg_.grid_extent +
                  2.0 * cfg_.grid_extent * ix / (cfg_.grid_n - 1),
              -cfg_.grid_extent +
                  2.0 * cfg_.grid_extent * iy / (cfg_.grid_n - 1),
              0.02 + cfg_.grid_extent * iz / (cfg_.grid_n - 1)};
          bool excluded = false;
          for (const MusicPeak& p : accepted_)
            if (norm(sub(p.position, pos)) < cfg_.exclusion_radius)
              excluded = true;
          if (excluded) continue;
          const double v = scanner_.metric(noise_proj_, pos);
          if (v > best.value) {
            best.value = v;
            best.position = pos;
          }
        }
      }
    }
    (*local_best)[static_cast<std::size_t>(r)] = best;
    // The winning value travels through a latency-bound allreduce, entered
    // by each rank once its own scan completes.
    auto enter = [this, k, r, ranks, local_best, arrived,
                  value = best.value]() {
      comm_->allreduce(
          r, {value}, meta::ReduceOp::kMax,
          [this, k, ranks, local_best, arrived](std::vector<double> max_v) {
            if (++*arrived < ranks) return;
            ++result_.allreduce_rounds;
            // Rank holding the maximum wins (ties: lowest rank).
            MusicPeak winner;
            for (const MusicPeak& p : *local_best)
              if (p.value >= max_v[0] - 1e-12 && p.value > winner.value)
                winner = p;
            accepted_.push_back(winner);
            find_source(k + 1);
          });
    };
    if (rank_scan_s > 0.0) {
      comm_->metacomputer().scheduler().schedule_after(
          des::SimTime::seconds(rank_scan_s), enter);
    } else {
      enter();
    }
  }
  result_.compute_s += slowest_scan_s;
}

}  // namespace gtw::apps
