// Coupled climate application (paper section 3, "Distributed computation of
// climate- and weather models"): an ocean-ice model (MOM-2-based) on the
// Cray T3E coupled through the CSM flux coupler to an atmosphere model
// (IFS) on the IBM SP2, exchanging 2-D surface fields every timestep —
// "up to 1 MByte in short bursts".
//
// Stand-ins: the ocean is a 2-D SST diffusion/advection model with flux
// forcing; the atmosphere is an energy-balance model producing heat fluxes
// from (regridded) SST.  The flux coupler does bilinear regridding between
// the two different grids, as the CSM coupler does.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "meta/communicator.hpp"

namespace gtw::apps {

// Simple 2-D field on a lat-lon style grid.
struct Field2D {
  int nx = 0, ny = 0;
  std::vector<double> v;

  Field2D() = default;
  Field2D(int nx_, int ny_, double fill = 0.0)
      : nx(nx_), ny(ny_), v(static_cast<std::size_t>(nx_) * ny_, fill) {}
  double& at(int x, int y) { return v[static_cast<std::size_t>(y) * nx + x]; }
  double at(int x, int y) const {
    return v[static_cast<std::size_t>(y) * nx + x];
  }
  double mean() const;
  std::uint64_t bytes() const { return v.size() * sizeof(double); }
};

// Bilinear regrid between grids (the flux coupler's core service).
Field2D regrid(const Field2D& src, int nx, int ny);

// First-order conservative regrid: destination cells average the source
// cells they overlap, weighted by overlap area.  Unlike bilinear
// interpolation this preserves the area integral exactly — the property
// the CSM flux coupler guarantees for energy and water fluxes.
Field2D regrid_conservative(const Field2D& src, int nx, int ny);

struct OceanConfig {
  int nx = 128, ny = 64;
  double diffusivity = 0.2;      // grid units^2 per step
  double advection_u = 0.4;      // zonal current, cells/step
  double initial_sst = 285.0;    // K
  double heat_capacity = 50.0;   // flux-to-temperature scaling
};

// Ocean-ice stand-in: SST evolves under diffusion, zonal advection and the
// atmosphere's surface heat flux; below 271.35 K the cell is "ice".
class OceanModel {
 public:
  explicit OceanModel(OceanConfig cfg);
  void step(const Field2D& heat_flux);
  const Field2D& sst() const { return sst_; }
  int ice_cells() const;
  const OceanConfig& config() const { return cfg_; }

 private:
  OceanConfig cfg_;
  Field2D sst_;
};

struct AtmosConfig {
  int nx = 96, ny = 48;
  double solar_equator = 340.0;   // W/m^2 at the equator
  double albedo = 0.3;
  double olr_a = 200.0, olr_b = 2.0;  // outgoing longwave: a + b (T - 273)
  double exchange = 15.0;             // air-sea exchange coefficient
};

// Atmosphere stand-in: computes net surface heat flux from latitudinal
// solar forcing, outgoing long-wave radiation and air-sea exchange.
class AtmosModel {
 public:
  explicit AtmosModel(AtmosConfig cfg);
  // `sst` must already be on the atmosphere grid (the coupler regrids).
  Field2D compute_flux(const Field2D& sst) const;
  const AtmosConfig& config() const { return cfg_; }

 private:
  AtmosConfig cfg_;
};

// The coupled exchange over the metacomputer: rank 0 = ocean (T3E), rank 1
// = atmosphere (SP2).  Per step: SST up, flux down — two bursts of ~nx*ny*8
// bytes, the paper's "up to 1 MByte in short bursts" pattern.
struct ClimateResult {
  int steps_completed = 0;
  std::uint64_t bytes_per_step = 0;  // both directions combined
  double elapsed_s = 0.0;
  double mean_sst = 0.0;
  int ice_cells = 0;
  double exchange_latency_s = 0.0;  // mean per-step communication time
};

class ClimateCoupling {
 public:
  ClimateCoupling(std::shared_ptr<meta::Communicator> comm, OceanConfig ocfg,
                  AtmosConfig acfg, int steps);
  void start();
  const ClimateResult& result() const { return result_; }

 private:
  void step(int n);

  std::shared_ptr<meta::Communicator> comm_;
  OceanModel ocean_;
  AtmosModel atmos_;
  int steps_;
  des::SimTime started_;
  double comm_time_accum_ = 0.0;
  ClimateResult result_;
};

}  // namespace gtw::apps
