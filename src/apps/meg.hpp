// MEG source localisation (paper section 3, "Analysis of magneto-
// enzephalography data"): pmusic estimates position and strength of current
// dipoles in a human brain from MEG measurements using the MUSIC algorithm,
// distributed over a massively parallel and a vector supercomputer; its
// traffic is "low volume, but sensitive to latency".
//
// Stand-in physics: dipoles in a spherical volume conductor (Sarvas
// formula), radial magnetometers on a helmet surface.  MUSIC: sensor
// covariance -> Jacobi eigendecomposition -> noise-subspace projector ->
// grid scan of the subspace correlation; the distributed variant splits the
// scan grid over the communicator's ranks and does one latency-bound
// allreduce per source found.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/random.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "meta/communicator.hpp"

namespace gtw::apps {

struct Vec3 {
  double x = 0, y = 0, z = 0;
};

// Magnetic field at `sensor` of a current dipole with moment `q` at `r0`
// inside a spherical conductor centred at the origin (Sarvas 1987).
Vec3 sarvas_field(const Vec3& r0, const Vec3& q, const Vec3& sensor);

struct MegConfig {
  int n_sensors = 64;
  double helmet_radius = 0.12;  // m
  int n_samples = 200;
  double noise_sigma = 2e-14;   // tesla, sensor noise
  std::uint64_t seed = 7;
};

struct SimulatedDipole {
  Vec3 position;   // m, inside the head sphere
  Vec3 moment;     // A·m (tangential components are observable)
  double freq_hz = 10.0;
  double phase = 0.0;
};

class MegSimulator {
 public:
  explicit MegSimulator(MegConfig cfg);

  const std::vector<Vec3>& sensors() const { return sensors_; }
  // Radial-component measurements: rows = sensors, cols = time samples.
  linalg::Matrix simulate(const std::vector<SimulatedDipole>& dipoles,
                          double sample_rate_hz = 500.0) const;

 private:
  MegConfig cfg_;
  std::vector<Vec3> sensors_;
  mutable des::Rng rng_;
};

struct MusicConfig {
  int grid_n = 10;             // scan grid per axis
  double grid_extent = 0.07;   // half-width of the scanned cube, m
  int n_sources = 2;
  double exclusion_radius = 0.02;  // around an accepted source
};

struct MusicPeak {
  Vec3 position;
  double value = 0.0;  // 1 / subspace-correlation residual
};

class MusicScanner {
 public:
  explicit MusicScanner(std::vector<Vec3> sensors);

  // Noise-subspace projector from the data covariance, assuming
  // `n_sources` signal components.
  linalg::Matrix noise_projector(const linalg::Matrix& data,
                                 int n_sources) const;

  // MUSIC metric at one candidate position (higher = more source-like).
  double metric(const linalg::Matrix& noise_proj, const Vec3& pos) const;

  // Serial localisation: scan, take peak, exclude, repeat.
  std::vector<MusicPeak> localize(const linalg::Matrix& data,
                                  const MusicConfig& cfg) const;

 private:
  std::vector<Vec3> sensors_;
};

// Distributed scan over the metacomputer: each rank scans its share of the
// grid, then an allreduce(max) picks the global winner — one WAN round trip
// per source, the latency-sensitive pattern the paper describes.  The scan
// itself is charged simulated compute time per rank: `metric_evals_per_s`
// gives each rank's evaluation rate (vector machines like the T90 rate the
// MUSIC projections much higher than MPP PEs, which is why pmusic spans a
// "massively parallel and a vector supercomputer").
struct DistributedMusicResult {
  std::vector<MusicPeak> peaks;
  double elapsed_s = 0.0;       // total: compute + communication
  double compute_s = 0.0;       // slowest rank's scan time, summed per round
  int allreduce_rounds = 0;
};

class DistributedMusic {
 public:
  DistributedMusic(std::shared_ptr<meta::Communicator> comm,
                   MusicScanner scanner, MusicConfig cfg,
                   std::vector<double> metric_evals_per_s = {});

  // `data` is available on every rank (broadcast beforehand in practice).
  void start(const linalg::Matrix& data);
  const DistributedMusicResult& result() const { return result_; }

 private:
  void find_source(int k);

  std::shared_ptr<meta::Communicator> comm_;
  MusicScanner scanner_;
  MusicConfig cfg_;
  std::vector<double> rank_rate_;
  linalg::Matrix noise_proj_;
  std::vector<MusicPeak> accepted_;
  des::SimTime started_;
  DistributedMusicResult result_;
};

}  // namespace gtw::apps
