// Groundwater application pair (paper section 3, project "Transport of
// solutants in ground water"): TRACE, a ground-water flow simulation (here:
// steady Darcy flow through a heterogeneous conductivity field, solved with
// matrix-free CG) coupled to PARTRACE, a particle tracker advecting
// solutant particles through the computed flow.  In the testbed the 3-D
// water flow field moved from the IBM SP2 (TRACE) to the Cray T3E
// (PARTRACE) every timestep at up to 30 MByte/s.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "des/random.hpp"
#include "fire/volume.hpp"
#include "meta/communicator.hpp"
#include "trace/trace.hpp"

namespace gtw::apps {

// Cell-centred velocity field of the flow solution.
struct FlowField {
  fire::Dims dims;
  std::vector<float> vx, vy, vz;

  std::uint64_t bytes() const { return (vx.size() + vy.size() + vz.size()) * 4; }
  // Component-wise trilinear sampling at a continuous cell coordinate.
  void sample(double x, double y, double z, double& ox, double& oy,
              double& oz) const;
};

struct TraceConfig {
  fire::Dims dims{32, 32, 8};
  double k_background = 1e-4;   // hydraulic conductivity, m/s
  double k_lens = 1e-6;         // low-permeability lens in the middle
  double head_inlet = 1.0;      // fixed head at x=0 face
  double head_outlet = 0.0;     // fixed head at x=nx-1 face
  int cg_max_iterations = 2000;
  double cg_tolerance = 1e-10;
};

// TRACE stand-in: solves div(K grad h) = 0 and differentiates the head into
// Darcy velocities v = -K grad h.
class TraceFlowSolver {
 public:
  explicit TraceFlowSolver(TraceConfig cfg);

  struct Solution {
    fire::VolumeF head;
    FlowField velocity;
    int cg_iterations = 0;
    bool converged = false;
  };
  Solution solve() const;

  // Conductivity at a cell (background with an embedded lens).
  double conductivity(int x, int y, int z) const;
  const TraceConfig& config() const { return cfg_; }

 private:
  TraceConfig cfg_;
};

struct Particle {
  double x, y, z;
  bool exited = false;
};

// PARTRACE stand-in: RK2 advection of particles through a FlowField.
class ParTraceTracker {
 public:
  explicit ParTraceTracker(double dt = 1.0) : dt_(dt) {}

  // Seed particles on the inlet face.
  std::vector<Particle> seed(const fire::Dims& dims, int count,
                             des::Rng& rng) const;
  // Advance all particles one step; returns how many are still inside.
  int step(std::vector<Particle>& particles, const FlowField& field) const;

 private:
  double dt_;
};

// The coupled metacomputing run: rank 0 (flow machine) recomputes/sends the
// velocity field every coupling step, rank 1 (particle machine) advects.
// Communication is the paper's pattern: one 3-D field transfer per step.
struct CouplingResult {
  int steps_completed = 0;
  std::uint64_t bytes_per_step = 0;
  double elapsed_s = 0.0;
  // Wall-rate including the compute phases of both codes.
  double achieved_mbyte_per_s = 0.0;
  // Transfer burst rate (field bytes / mean transfer time) — the number the
  // paper's "up to 30 MByte/s" requirement refers to.
  double burst_mbyte_per_s = 0.0;
  int particles_remaining = 0;
};

// Modeled per-step compute phases (the solve/advect run once for real on
// this host; their simulated durations on the 1999 machines come from
// these constants).
struct CouplingTiming {
  des::SimTime solve_per_step = des::SimTime::milliseconds(100);
  des::SimTime advect_per_step = des::SimTime::milliseconds(20);
};

class GroundwaterCoupling {
 public:
  GroundwaterCoupling(std::shared_ptr<meta::Communicator> comm,
                      TraceConfig cfg, int particles, int steps,
                      CouplingTiming timing = {});

  // Optional VAMPIR-style tracing: the recorder must outlive the run;
  // states are defined by the caller.
  void set_trace(trace::TraceRecorder* rec, std::uint32_t solve_state,
                 std::uint32_t advect_state);

  // Schedules the coupled run; inspect result() after the scheduler drains.
  void start();
  const CouplingResult& result() const { return result_; }

 private:
  void coupling_step(int step);

  std::shared_ptr<meta::Communicator> comm_;
  TraceFlowSolver solver_;
  ParTraceTracker tracker_;
  std::vector<Particle> particles_;
  int steps_;
  CouplingTiming timing_;
  des::SimTime started_;
  des::SimTime send_started_;
  double transfer_accum_s_ = 0.0;
  CouplingResult result_;
  std::shared_ptr<FlowField> field_;
  trace::TraceRecorder* trace_ = nullptr;
  std::uint32_t st_solve_ = 0, st_advect_ = 0;
};

}  // namespace gtw::apps
