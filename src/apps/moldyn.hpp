// Section 5 extension project: "metacomputing projects that deal with
// multiscale molecular dynamics" over the new Bonn <-> GMD 622 Mbit/s link.
//
// Stand-in: a 2-D Lennard-Jones fluid integrated with velocity Verlet and
// cell lists.  The multiscale split follows the classic scheme: a small
// "fine" region is simulated atomistically on one machine while the
// surrounding "coarse" region is represented by averaged thermodynamic
// state (density / temperature per coarse cell) computed on the other; per
// coupling step the machines exchange the boundary state — small messages,
// every step, exactly the metacomputing pattern of the paper's coupled
// applications.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/random.hpp"
#include "meta/communicator.hpp"

namespace gtw::apps {

struct LjConfig {
  int n_particles = 400;
  double box = 30.0;          // square box edge, in sigma units
  double dt = 0.004;
  double temperature = 0.8;   // initial kT/epsilon
  double cutoff = 2.5;
  std::uint64_t seed = 5;
};

class LjFluid {
 public:
  explicit LjFluid(LjConfig cfg);

  void step();
  int particles() const { return cfg_.n_particles; }

  double kinetic_energy() const;
  double potential_energy() const;   // recomputed from current positions
  double total_energy() const { return kinetic_energy() + potential_energy(); }
  double temperature() const;        // 2-D: <KE>/N = kT

  // Rescale velocities toward a target temperature (weak thermostat used by
  // the coarse-model feedback).
  void thermostat(double target_t, double strength = 0.1);

  // Density profile over `bins` vertical strips (the coarse state that
  // travels to the continuum side).
  std::vector<double> density_profile(int bins) const;

  const LjConfig& config() const { return cfg_; }

 private:
  void compute_forces();
  void build_cells();

  LjConfig cfg_;
  std::vector<double> x_, y_, vx_, vy_, fx_, fy_;
  // Cell list.
  int cells_per_axis_ = 0;
  double cell_size_ = 0.0;
  std::vector<std::vector<int>> cells_;
  mutable double cached_pe_ = 0.0;
};

// The coupled multiscale run: rank 0 (Bonn) advances the atomistic region;
// rank 1 (GMD) runs the coarse model (here: relaxation of a target
// temperature field) and returns thermostat targets.  Per coupling step:
// density profile up (~bins*8 B), target temperature down (8 B) — the
// "low volume, every step" WAN pattern.
struct MultiscaleResult {
  int steps_completed = 0;
  double elapsed_s = 0.0;
  double mean_exchange_ms = 0.0;
  double final_temperature = 0.0;
  double energy_drift = 0.0;  // |E_end - E_start| / |E_start|
};

class MultiscaleMd {
 public:
  MultiscaleMd(std::shared_ptr<meta::Communicator> comm, LjConfig cfg,
               int coupling_steps, int md_steps_per_coupling = 10,
               double coarse_target_t = 0.6);

  void start();
  const MultiscaleResult& result() const { return result_; }

 private:
  void coupling_step(int n);

  std::shared_ptr<meta::Communicator> comm_;
  LjFluid fluid_;
  int coupling_steps_;
  int md_per_coupling_;
  double coarse_target_t_;
  double e0_ = 0.0;
  des::SimTime started_;
  double comm_accum_s_ = 0.0;
  MultiscaleResult result_;
};

}  // namespace gtw::apps
