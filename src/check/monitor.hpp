// GTW-San core (DESIGN.md §12): the Monitor every checker reports into.
//
// A Monitor owns three things:
//   - a registry of named invariants — predicates over live component state
//     that must hold whenever the simulation is quiescent between events
//     (check_now()) and a separate set that only holds once the scheduler
//     has fully drained (finish());
//   - a ring buffer of the last kHistoryCapacity breadcrumbs (note()) so a
//     violation report shows the event history leading up to it, not just
//     the broken ledger;
//   - the violation list itself, capped so a systemic failure produces a
//     readable report instead of a million-line flood.
//
// The Monitor is deliberately build-mode independent: it compiles and runs
// identically whether or not GTW_CHECK is defined.  What changes with the
// build mode is *wiring density* — under GTW_CHECK the attach catalog
// (attach.hpp) additionally installs the scheduler hook and the per-chunk /
// per-delivery observers whose call sites are compiled out otherwise.  That
// split keeps the checker logic itself unit-testable in every build.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "des/scheduler.hpp"
#include "des/time.hpp"

namespace gtw::check {

// One failed invariant, with the breadcrumb trail that led to it.
struct Violation {
  std::string checker;  // e.g. "des.monotonic-fire", "link.j->g.bytes"
  std::string message;
  des::SimTime when;                 // simulated time of detection
  std::vector<std::string> history;  // ring-buffer snapshot, oldest first
};

class Monitor {
 public:
  // An invariant returns std::nullopt while it holds, or a description of
  // what broke.  Invariants must be pure observations: gtw-lint's
  // check-side-effect rule polices the GTW_CHECK_HOOK call sites, and the
  // same discipline applies here by convention.
  using InvariantFn = std::function<std::optional<std::string>()>;

  explicit Monitor(des::Scheduler& sched) : sched_(sched) {}
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  des::Scheduler& scheduler() { return sched_; }

  // --- breadcrumbs ----------------------------------------------------------
  // Record a short tag ("fire seq=42 t=1.2ms") into the history ring.  Cheap
  // enough for per-event use in checked builds; the last kHistoryCapacity
  // survive into any subsequent violation report.
  void note(std::string tag);

  // --- reporting ------------------------------------------------------------
  // Record a violation detected by `checker` right now.  The first
  // kMaxViolations are kept verbatim; beyond that only the count grows.
  void violation(const std::string& checker, const std::string& message);

  // --- invariant registry ---------------------------------------------------
  // `checker` names the invariant in reports.  Quiescent invariants are
  // evaluated by every check_now() and by finish(); drain checks only by
  // finish(), once the event queue is empty and all in-flight work must
  // have landed somewhere accountable.
  void add_invariant(std::string checker, InvariantFn fn) {
    invariants_.emplace_back(std::move(checker), std::move(fn));
  }
  void add_drain_check(std::string checker, InvariantFn fn) {
    drain_checks_.emplace_back(std::move(checker), std::move(fn));
  }

  // Evaluate all quiescent invariants; returns violations found this sweep.
  std::size_t check_now();

  // End-of-run sweep: quiescent invariants plus drain checks (leak census,
  // conservation at rest).  Call after the scheduler has drained.
  std::size_t finish();

  // Arm a periodic self-check: every `interval` of simulated time the
  // monitor runs check_now(), re-arming only while other work remains so
  // the tick chain ends at natural drain.  NOTE: this schedules events, so
  // it perturbs event sequence numbers (and thus stream_hash) relative to
  // an unmonitored run — fine within a checked build, but never compare
  // its hashes against an unchecked baseline.
  void arm_periodic(des::SimTime interval);

  // --- results --------------------------------------------------------------
  bool clean() const { return total_violations_ == 0; }
  std::uint64_t total_violations() const { return total_violations_; }
  const std::vector<Violation>& violations() const { return violations_; }

  // Human-readable report of all recorded violations (with histories), or
  // a one-line all-clear.
  std::string report() const;

  // Gate helper for benches and CI: prints the report to stderr and calls
  // std::exit(1) unless clean.  `context` names the run in the report.
  void require_clean(const std::string& context) const;

  // Keep a checker object alive for the monitor's lifetime (the attach
  // catalog allocates hook implementations through this).
  template <typename T, typename... Args>
  T& make_checker(Args&&... args) {
    auto obj = std::make_shared<T>(std::forward<Args>(args)...);
    T& ref = *obj;
    owned_.push_back(std::move(obj));
    return ref;
  }

  static constexpr std::size_t kHistoryCapacity = 64;
  static constexpr std::size_t kMaxViolations = 100;

 private:
  std::vector<std::string> history_snapshot() const;
  void run_set(
      const std::vector<std::pair<std::string, InvariantFn>>& set,
      std::size_t& found);

  des::Scheduler& sched_;

  // Fixed-size ring: ring_[i % capacity], ring_count_ total notes ever.
  std::vector<std::pair<des::SimTime, std::string>> ring_;
  std::uint64_t ring_count_ = 0;

  std::vector<std::pair<std::string, InvariantFn>> invariants_;
  std::vector<std::pair<std::string, InvariantFn>> drain_checks_;

  std::vector<Violation> violations_;
  std::uint64_t total_violations_ = 0;

  std::vector<std::shared_ptr<void>> owned_;
};

}  // namespace gtw::check
