// GTW-San invariant library: the conservation laws and protocol contracts
// themselves, as pure functions over plain ledger structs.
//
// Keeping the predicates free of component types does two things: the
// violation-fixture harness (tests/check_violation_test.cpp) can hand-build
// a broken ledger and prove each checker actually fires, and the attach
// catalog (attach.hpp) stays a thin snapshot layer — it copies component
// counters into these structs and forwards the verdict to the Monitor.
//
// Every function returns std::nullopt while the invariant holds, or a
// description of the imbalance (with the numbers, so a CI log is enough to
// start debugging).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace gtw::check {

// --- net::Link --------------------------------------------------------------
// Byte conservation on a link: every byte ever submitted is exactly one of
// sent, dropped (queue/refused), dropped-by-outage, or still queued.  The
// *byte* equation holds continuously (between events): a frame being
// clocked out stays in `queued_bytes` until transmit-complete.  The *frame*
// equation only holds at drain — an in-transmit frame has left the queue
// container but is not yet sent, so link_conservation checks bytes alone
// and link_drained adds the frame ledger once nothing is in flight.
struct LinkAccounts {
  std::uint64_t submitted_frames = 0;
  std::uint64_t submitted_bytes = 0;
  std::uint64_t sent_frames = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t dropped_frames = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t outage_dropped_frames = 0;
  std::uint64_t outage_dropped_bytes = 0;
  std::uint64_t queued_frames = 0;
  std::uint64_t queued_bytes = 0;
};
std::optional<std::string> link_conservation(const LinkAccounts& a);
// At drain additionally: nothing queued, and the frame ledger balances.
std::optional<std::string> link_drained(const LinkAccounts& a);

// --- net::Host receive path -------------------------------------------------
// Every frame that arrived at a NIC is, once the receive CPU queue drains,
// exactly one of: received by the application, forwarded (gateway),
// unroutable, or dropped because the host was down.
struct HostAccounts {
  std::uint64_t nic_arrivals = 0;
  std::uint64_t received = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t recv_unroutable = 0;
  std::uint64_t recv_outage_drops = 0;
  std::uint64_t reassembly_pending = 0;  // partially reassembled datagrams
};
std::optional<std::string> host_drained(const HostAccounts& a);

// --- net::AtmSwitch ---------------------------------------------------------
// Frame conservation through the fabric at drain: every ingress frame was
// submitted to exactly one egress link or counted unroutable.  (Egress
// submissions ride a scheduled switching-latency event, so this is a drain
// check, not a continuous one.)
struct SwitchAccounts {
  std::uint64_t ingress_frames = 0;
  std::uint64_t egress_submitted_frames = 0;  // summed over egress links
  std::uint64_t unroutable_frames = 0;
};
std::optional<std::string> switch_drained(const SwitchAccounts& a);

// --- net::TcpConnection -----------------------------------------------------
// Sequence-space sanity for one direction of a connection.  Holds
// continuously: una <= nxt <= max <= end, cwnd never collapses below one
// segment, and the receiver's out-of-order buffer never exceeds its
// advertised receive buffer.
struct TcpSeqAccounts {
  std::uint64_t snd_una = 0;
  std::uint64_t snd_nxt = 0;
  std::uint64_t snd_max = 0;
  std::uint64_t snd_end = 0;
  std::uint64_t ooo_buffered = 0;
  double cwnd = 0.0;
  std::uint64_t mss = 0;
  std::uint64_t recv_buffer = 0;
};
std::optional<std::string> tcp_sequence_sanity(const TcpSeqAccounts& a);
// At drain (when the connection is expected to have finished its queued
// work): everything queued was sent and acked, nothing lingers out of order.
std::optional<std::string> tcp_drained(const TcpSeqAccounts& a);

// --- meta::PathTransport ----------------------------------------------------
// One sending side of a striped WAN path at drain: every queued message was
// delivered, reassembly is empty, and no chunk is stranded in a stream
// (undispatched or handed to TCP but never delivered) — the stall-reset
// re-issue logic must leave no orphans behind.
struct PathAccounts {
  std::uint64_t messages = 0;
  std::uint64_t delivered_messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t reassembly_bytes = 0;
  std::uint64_t undispatched_chunks = 0;
  std::uint64_t outstanding_chunks = 0;
  std::uint64_t inflight_messages = 0;
};
std::optional<std::string> path_drained(const PathAccounts& a);

// --- flow::StageGraph -------------------------------------------------------
// Item conservation through a dataflow graph: everything pushed is admitted
// or dropped at admission or still waiting; everything admitted is
// completed, dropped inside a stage, or still in flight.  Degraded-mode
// drops are a subset of admission drops.  Holds continuously.
struct FlowAccounts {
  std::uint64_t pushed = 0;
  std::uint64_t admitted = 0;
  std::uint64_t admission_dropped = 0;
  std::uint64_t degraded_dropped = 0;
  std::uint64_t completed = 0;
  std::uint64_t stage_dropped = 0;  // summed over stages
  std::uint64_t waiting_admission = 0;
  std::uint64_t in_flight = 0;
};
std::optional<std::string> flow_conservation(const FlowAccounts& a);
// At drain additionally: nothing waiting, nothing in flight.
std::optional<std::string> flow_drained(const FlowAccounts& a);

// --- flow per-stage ledger --------------------------------------------------
// One stage's ledger: outputs and drops never exceed inputs, and the queue
// depth equals what went in minus what came out or was dropped... except
// items currently being serviced, so depth <= in - out - dropped, and the
// peak is an upper bound for the current depth.
struct FlowStageAccounts {
  std::uint64_t items_in = 0;
  std::uint64_t items_out = 0;
  std::uint64_t dropped = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_peak = 0;
};
std::optional<std::string> flow_stage_sanity(const FlowStageAccounts& a);

// --- meta::Communicator WAN retry contract ----------------------------------
// Verdict on a single WAN copy arrival, as reported by CommCheckObserver.
// Exactly one of the three flags may be set; `delivered_to_app` after an
// abandon is the contract violation the watchdog exists to prevent.
struct WanOutcome {
  bool delivered_to_app = false;
  bool after_abandon = false;
  bool duplicate = false;
};
std::optional<std::string> wan_outcome_sane(const WanOutcome& o);

}  // namespace gtw::check
