// GTW-San attach catalog: one attach_* per simulator component, mirroring
// the obs:: instrumentation catalog (src/obs/instrument.hpp) entry for
// entry — gtw-lint's check-coverage rule diffs the two and fails the build
// when a component type is instrumented for observability but absent here.
//
// Each attach_* snapshots the component's existing accessors into the pure
// ledger structs of invariants.hpp and registers the verdicts with the
// Monitor; components are observed, never modified.  Where an invariant
// needs per-event visibility (scheduler ordering, chunk exactly-once, WAN
// retry outcomes), attach_* additionally installs a hook/observer object —
// those notification call sites inside the components are GTW_CHECK_HOOK-
// guarded, so in unchecked builds the hook objects are installed but
// simply never called (and the per-event invariants go unevaluated, while
// every counter-based invariant still works).
//
// Lifetime: attached components must outlive the Monitor.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "check/invariants.hpp"
#include "check/monitor.hpp"
#include "des/check_hook.hpp"
#include "des/scheduler.hpp"
#include "flow/graph.hpp"
#include "flow/metrics.hpp"
#include "meta/communicator.hpp"
#include "meta/path_transport.hpp"
#include "net/atm.hpp"
#include "net/fault.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "net/tcp.hpp"
#include "obs/span.hpp"
#include "testbed/testbed.hpp"

namespace gtw::check {

// --- DES engine -------------------------------------------------------------
// Per-event scheduler discipline, via des::SchedulerCheckHook:
//   des.sched.monotonic-fire   dispatch times never go backwards
//   des.sched.past-schedule    no event scheduled before now()
//   des.sched.double-cancel    the same tombstone cancelled twice
// The class is public (rather than an attach-internal detail) so the
// violation-fixture harness can drive its on_* methods directly in builds
// where the scheduler's call sites are compiled out.
class SchedulerChecker : public des::SchedulerCheckHook {
 public:
  explicit SchedulerChecker(Monitor& mon) : mon_(mon) {}

  void on_schedule(des::SimTime when, des::SimTime now,
                   std::uint64_t seq) override;
  void on_fire(des::SimTime when, std::uint64_t seq) override;
  void on_cancel(std::uint64_t seq, CancelOutcome outcome) override;

  // Stale cancels (recycled slot / already fired) are a documented no-op,
  // not a violation; counted for diagnostics.
  std::uint64_t stale_cancels() const { return stale_cancels_; }

 private:
  Monitor& mon_;
  des::SimTime last_fire_;
  bool fired_any_ = false;
  std::uint64_t stale_cancels_ = 0;
};

// Installs a SchedulerChecker as the scheduler's check hook and registers
// the event-pool census: pool_in_use == live_events + cancelled tombstones
// at every quiescent point (which at drain degenerates to the leak check),
// plus the SlabPool double-free count in checked builds.
SchedulerChecker& attach_scheduler(Monitor& mon, des::Scheduler& sched);

// Leak census over any SlabPool-shaped object (in_use(); in checked builds
// also check_double_frees()).  For pools reachable only through accessors —
// the scheduler's event pool, a fluid link's burst pool — the owning
// attach_* registers the equivalent checks itself.
template <typename Pool>
void attach_pool(Monitor& mon, const Pool& pool, const std::string& name) {
  mon.add_drain_check(name + ".leak",
                      [&pool]() -> std::optional<std::string> {
                        if (pool.in_use() == 0) return std::nullopt;
                        return std::to_string(pool.in_use()) +
                               " slot(s) still live at drain";
                      });
#if defined(GTW_CHECK)
  mon.add_drain_check(name + ".double-free",
                      [&pool]() -> std::optional<std::string> {
                        if (pool.check_double_frees() == 0)
                          return std::nullopt;
                        return std::to_string(pool.check_double_frees()) +
                               " double-free(s) detected";
                      });
#endif
}

// --- net --------------------------------------------------------------------
// Byte/frame conservation, continuously; drained-queue + burst-pool leak
// census at drain.  `name` defaults to the link's own name.
void attach_link(Monitor& mon, const net::Link& link,
                 const std::string& name = "");

// Receive-path frame conservation and reassembly leak census at drain.
void attach_host(Monitor& mon, const net::Host& host);

// Fabric frame conservation at drain (ingress == egress + unroutable),
// plus attach_link over every egress port.
void attach_atm_switch(Monitor& mon, const net::AtmSwitch& sw);

// Sequence-space sanity per direction, continuously; with
// `expect_complete`, full-delivery checks at drain.  Do not use on
// connections a PathTransport may reset (their lifetime is the stream's,
// not the run's) — attach_path_transport covers those.
void attach_tcp(Monitor& mon, const net::TcpConnection& conn,
                const std::string& name, bool expect_complete = false);

// --- meta -------------------------------------------------------------------
// Per-copy outcome sanity for watchdog-guarded WAN sends, via
// meta::CommCheckObserver.  Public (like SchedulerChecker) so the
// violation-fixture harness can feed it outcomes directly in builds where
// the communicator's notification sites are compiled out.
class CommChecker : public meta::CommCheckObserver {
 public:
  CommChecker(Monitor& mon, std::string id)
      : mon_(mon), id_(std::move(id)) {}

  void on_wan_outcome(int src_rank, int dst_rank, bool delivered_to_app,
                      bool after_abandon, bool duplicate) override;
  void on_unreachable(int src_rank, int dst_rank) override;

 private:
  Monitor& mon_;
  std::string id_;
};

// Exactly-once, strictly-in-order delivery ledger for one PathTransport
// side pair; same public-for-fixtures rationale as CommChecker.
class PathChecker : public meta::PathCheckObserver {
 public:
  PathChecker(Monitor& mon, std::string id) : mon_(mon), id_(std::move(id)) {}

  void on_chunk(int side, std::uint64_t msg_seq, std::uint32_t idx,
                bool duplicate) override;
  void on_message(int side, std::uint64_t msg_seq,
                  std::uint64_t bytes) override;

 private:
  Monitor& mon_;
  std::string id_;
  std::set<std::pair<std::uint64_t, std::uint32_t>> seen_chunks_[2];
  std::uint64_t next_msg_[2] = {0, 0};
};

// WAN retry contract via meta::CommCheckObserver: every arriving copy is
// exactly one of delivered / duplicate-suppressed / dropped-after-abandon,
// and nothing is handed to the application after an unreachable report.
void attach_communicator(Monitor& mon, meta::Communicator& comm,
                         const std::string& name);

// Exactly-once, in-order chunk and message delivery via
// meta::PathCheckObserver, plus the stranded-chunk / reassembly-leak drain
// census of path_drained().
void attach_path_transport(Monitor& mon, meta::PathTransport& path,
                           const std::string& name);

// --- flow -------------------------------------------------------------------
// Graph item conservation (continuous) and the all-work-landed census at
// drain, using the graph's live admission/in-flight state.
void attach_stage_graph(Monitor& mon, const flow::StageGraph& graph,
                        const std::string& prefix);

// Registry-only consistency for code that exposes metrics without the
// graph: per-stage ledger sanity plus the degraded-subset law.
void attach_flow_metrics(Monitor& mon, const flow::MetricsRegistry& metrics,
                         const std::string& prefix);

// --- faults -----------------------------------------------------------------
// Observer-based bracket check: every fault that begins also ends (no
// fault still active once the plan's horizon has passed and the run
// drained), and active_faults() never goes negative.
void attach_fault_plan(Monitor& mon, net::FaultPlan& plan,
                       const std::string& prefix = "fault");

// --- obs --------------------------------------------------------------------
// Span-lifecycle leak census over the causal tracer (DESIGN.md section 13):
// once the run drains, every span begun must have been ended or aborted and
// every trace closed — an open span at drain is a component that began
// timing work and lost track of it (the tracing analogue of a stranded
// chunk).  Registered as drain checks under `prefix`.
void attach_span_tracer(Monitor& mon, const obs::SpanTracer& tracer,
                        const std::string& prefix = "obs.span");

// --- whole topology ---------------------------------------------------------
// Arms the full sweep over an assembled testbed: scheduler, every host,
// both ATM switches (and thereby every egress port link), and every ATM
// NIC uplink.  The one-call entry point benches use.
void attach_testbed(Monitor& mon, testbed::Testbed& tb);

}  // namespace gtw::check
