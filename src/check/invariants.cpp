#include "check/invariants.hpp"

#include <cstdio>

namespace gtw::check {
namespace {

// "name=value" joined with spaces; every verdict carries the full ledger so
// the CI log alone is enough to see which side of the equation moved.
std::string balance_msg(const char* law, std::uint64_t lhs, std::uint64_t rhs,
                        const std::string& detail) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s: %llu != %llu (%s)", law,
                static_cast<unsigned long long>(lhs),
                static_cast<unsigned long long>(rhs), detail.c_str());
  return buf;
}

std::string u64s(const char* name, std::uint64_t v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s=%llu", name,
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::optional<std::string> link_conservation(const LinkAccounts& a) {
  const std::uint64_t out_bytes =
      a.sent_bytes + a.dropped_bytes + a.outage_dropped_bytes + a.queued_bytes;
  if (a.submitted_bytes != out_bytes) {
    return balance_msg("link byte conservation", a.submitted_bytes, out_bytes,
                       u64s("sent", a.sent_bytes) + " " +
                           u64s("dropped", a.dropped_bytes) + " " +
                           u64s("outage", a.outage_dropped_bytes) + " " +
                           u64s("queued", a.queued_bytes));
  }
  return std::nullopt;
}

std::optional<std::string> link_drained(const LinkAccounts& a) {
  if (a.queued_frames != 0 || a.queued_bytes != 0) {
    return u64s("frames", a.queued_frames) + " " +
           u64s("bytes", a.queued_bytes) +
           " still queued on a drained link";
  }
  if (auto broke = link_conservation(a)) return broke;
  const std::uint64_t out_frames =
      a.sent_frames + a.dropped_frames + a.outage_dropped_frames;
  if (a.submitted_frames != out_frames) {
    return balance_msg("link frame conservation at drain",
                       a.submitted_frames, out_frames,
                       u64s("sent", a.sent_frames) + " " +
                           u64s("dropped", a.dropped_frames) + " " +
                           u64s("outage", a.outage_dropped_frames));
  }
  return std::nullopt;
}

std::optional<std::string> host_drained(const HostAccounts& a) {
  const std::uint64_t accounted =
      a.received + a.forwarded + a.recv_unroutable + a.recv_outage_drops;
  if (a.nic_arrivals != accounted) {
    return balance_msg("host recv conservation", a.nic_arrivals, accounted,
                       u64s("received", a.received) + " " +
                           u64s("forwarded", a.forwarded) + " " +
                           u64s("unroutable", a.recv_unroutable) + " " +
                           u64s("outage", a.recv_outage_drops));
  }
  if (a.reassembly_pending != 0) {
    return u64s("datagrams", a.reassembly_pending) +
           " stuck in IP reassembly on a drained host";
  }
  return std::nullopt;
}

std::optional<std::string> switch_drained(const SwitchAccounts& a) {
  const std::uint64_t accounted =
      a.egress_submitted_frames + a.unroutable_frames;
  if (a.ingress_frames != accounted) {
    return balance_msg("switch frame conservation", a.ingress_frames,
                       accounted,
                       u64s("egress", a.egress_submitted_frames) + " " +
                           u64s("unroutable", a.unroutable_frames));
  }
  return std::nullopt;
}

std::optional<std::string> tcp_sequence_sanity(const TcpSeqAccounts& a) {
  if (!(a.snd_una <= a.snd_nxt && a.snd_nxt <= a.snd_max &&
        a.snd_max <= a.snd_end)) {
    return "sequence order broken: " + u64s("una", a.snd_una) + " " +
           u64s("nxt", a.snd_nxt) + " " + u64s("max", a.snd_max) + " " +
           u64s("end", a.snd_end);
  }
  if (a.mss > 0 && a.cwnd + 1e-9 < static_cast<double>(a.mss)) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "cwnd collapsed below one segment: %.1f < %llu",
                  a.cwnd, static_cast<unsigned long long>(a.mss));
    return std::string(buf);
  }
  if (a.recv_buffer > 0 && a.ooo_buffered > a.recv_buffer) {
    return balance_msg("ooo backlog exceeds recv buffer", a.ooo_buffered,
                       a.recv_buffer, u64s("ooo", a.ooo_buffered));
  }
  return std::nullopt;
}

std::optional<std::string> tcp_drained(const TcpSeqAccounts& a) {
  if (auto broke = tcp_sequence_sanity(a)) return broke;
  if (a.snd_una != a.snd_end) {
    return balance_msg("queued bytes not fully acked at drain", a.snd_una,
                       a.snd_end, u64s("nxt", a.snd_nxt));
  }
  if (a.ooo_buffered != 0) {
    return u64s("bytes", a.ooo_buffered) +
           " left in the out-of-order buffer at drain";
  }
  return std::nullopt;
}

std::optional<std::string> path_drained(const PathAccounts& a) {
  if (a.delivered_messages != a.messages ||
      a.delivered_bytes != a.bytes) {
    return balance_msg("path delivery at drain", a.delivered_messages,
                       a.messages,
                       u64s("delivered_bytes", a.delivered_bytes) + " " +
                           u64s("sent_bytes", a.bytes));
  }
  if (a.reassembly_bytes != 0) {
    return u64s("bytes", a.reassembly_bytes) +
           " left in reassembly at drain";
  }
  if (a.undispatched_chunks != 0 || a.outstanding_chunks != 0) {
    return u64s("undispatched", a.undispatched_chunks) + " " +
           u64s("outstanding", a.outstanding_chunks) +
           " chunks stranded at drain (stall reset left orphans)";
  }
  if (a.inflight_messages != 0) {
    return u64s("messages", a.inflight_messages) +
           " still in flight at drain";
  }
  return std::nullopt;
}

std::optional<std::string> flow_conservation(const FlowAccounts& a) {
  const std::uint64_t pushed_accounted =
      a.admitted + a.admission_dropped + a.waiting_admission;
  if (a.pushed != pushed_accounted) {
    return balance_msg("flow admission conservation", a.pushed,
                       pushed_accounted,
                       u64s("admitted", a.admitted) + " " +
                           u64s("admission_dropped", a.admission_dropped) +
                           " " + u64s("waiting", a.waiting_admission));
  }
  const std::uint64_t admitted_accounted =
      a.completed + a.stage_dropped + a.in_flight;
  if (a.admitted != admitted_accounted) {
    return balance_msg("flow completion conservation", a.admitted,
                       admitted_accounted,
                       u64s("completed", a.completed) + " " +
                           u64s("stage_dropped", a.stage_dropped) + " " +
                           u64s("in_flight", a.in_flight));
  }
  if (a.degraded_dropped > a.admission_dropped) {
    return balance_msg("degraded drops exceed admission drops",
                       a.degraded_dropped, a.admission_dropped, "subset law");
  }
  return std::nullopt;
}

std::optional<std::string> flow_drained(const FlowAccounts& a) {
  if (auto broke = flow_conservation(a)) return broke;
  if (a.waiting_admission != 0 || a.in_flight != 0) {
    return u64s("waiting", a.waiting_admission) + " " +
           u64s("in_flight", a.in_flight) + " items alive at drain";
  }
  return std::nullopt;
}

std::optional<std::string> flow_stage_sanity(const FlowStageAccounts& a) {
  if (a.items_out + a.dropped > a.items_in) {
    return balance_msg("stage emitted more than it ingested",
                       a.items_out + a.dropped, a.items_in,
                       u64s("out", a.items_out) + " " +
                           u64s("dropped", a.dropped));
  }
  if (a.queue_depth > a.items_in - a.items_out - a.dropped) {
    return balance_msg("stage queue deeper than its ledger",
                       a.queue_depth, a.items_in - a.items_out - a.dropped,
                       u64s("in", a.items_in));
  }
  if (a.queue_depth > a.queue_peak) {
    return balance_msg("stage queue depth above recorded peak", a.queue_depth,
                       a.queue_peak, u64s("in", a.items_in));
  }
  return std::nullopt;
}

std::optional<std::string> wan_outcome_sane(const WanOutcome& o) {
  const int set = (o.delivered_to_app ? 1 : 0) + (o.after_abandon ? 1 : 0) +
                  (o.duplicate ? 1 : 0);
  if (set != 1) {
    char buf[120];
    std::snprintf(buf, sizeof(buf),
                  "WAN copy fate not exactly-one-of: delivered=%d "
                  "after_abandon=%d duplicate=%d",
                  o.delivered_to_app ? 1 : 0, o.after_abandon ? 1 : 0,
                  o.duplicate ? 1 : 0);
    return std::string(buf);
  }
  return std::nullopt;
}

}  // namespace gtw::check
