#include "check/monitor.hpp"

#include <cstdio>
#include <cstdlib>

namespace gtw::check {

void Monitor::note(std::string tag) {
  if (ring_.size() < kHistoryCapacity) {
    ring_.emplace_back(sched_.now(), std::move(tag));
  } else {
    auto& slot = ring_[static_cast<std::size_t>(ring_count_ % kHistoryCapacity)];
    slot.first = sched_.now();
    slot.second = std::move(tag);
  }
  ++ring_count_;
}

std::vector<std::string> Monitor::history_snapshot() const {
  std::vector<std::string> out;
  out.reserve(ring_.size());
  const std::uint64_t n = ring_count_;
  const std::uint64_t cap = kHistoryCapacity;
  const std::uint64_t start = n > cap ? n - cap : 0;
  for (std::uint64_t i = start; i < n; ++i) {
    const auto& slot = ring_[static_cast<std::size_t>(i % cap)];
    char stamp[64];
    std::snprintf(stamp, sizeof(stamp), "[t=%.9fs] ", slot.first.sec());
    out.push_back(stamp + slot.second);
  }
  return out;
}

void Monitor::violation(const std::string& checker,
                        const std::string& message) {
  ++total_violations_;
  if (violations_.size() >= kMaxViolations) return;
  violations_.push_back(
      Violation{checker, message, sched_.now(), history_snapshot()});
}

void Monitor::run_set(
    const std::vector<std::pair<std::string, InvariantFn>>& set,
    std::size_t& found) {
  for (const auto& [name, fn] : set) {
    if (auto broke = fn()) {
      violation(name, *broke);
      ++found;
    }
  }
}

std::size_t Monitor::check_now() {
  std::size_t found = 0;
  run_set(invariants_, found);
  return found;
}

std::size_t Monitor::finish() {
  std::size_t found = 0;
  run_set(invariants_, found);
  run_set(drain_checks_, found);
  return found;
}

void Monitor::arm_periodic(des::SimTime interval) {
  sched_.schedule_after(interval, [this, interval] {
    check_now();
    // Re-arm only while other events remain: the tick chain must not keep
    // an otherwise-drained simulation alive.
    if (!sched_.empty()) arm_periodic(interval);
  });
}

std::string Monitor::report() const {
  if (clean()) return "gtw-check: clean (0 violations)\n";
  std::string out;
  char head[128];
  std::snprintf(head, sizeof(head),
                "gtw-check: %llu violation(s), first %zu shown\n",
                static_cast<unsigned long long>(total_violations_),
                violations_.size());
  out += head;
  for (const auto& v : violations_) {
    char line[160];
    std::snprintf(line, sizeof(line), "  [%s] at t=%.9fs: ",
                  v.checker.c_str(), v.when.sec());
    out += line;
    out += v.message;
    out += '\n';
    if (!v.history.empty()) {
      out += "    last events:\n";
      for (const auto& h : v.history) {
        out += "      ";
        out += h;
        out += '\n';
      }
    }
  }
  return out;
}

void Monitor::require_clean(const std::string& context) const {
  if (clean()) return;
  std::fprintf(stderr, "gtw-check FAILED (%s)\n%s", context.c_str(),
               report().c_str());
  std::exit(1);
}

}  // namespace gtw::check
