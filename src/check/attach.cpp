#include "check/attach.hpp"

#include <cstdarg>
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

namespace gtw::check {
namespace {

std::string fmt(const char* f, ...) {
  char buf[192];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  return buf;
}

}  // namespace

// --- scheduler --------------------------------------------------------------

void SchedulerChecker::on_schedule(des::SimTime when, des::SimTime now,
                                   std::uint64_t seq) {
  if (when < now) {
    mon_.violation("des.sched.past-schedule",
                   fmt("event seq=%llu scheduled for t=%.9fs, %.3fus before "
                       "now — the compiled-out assert class",
                       static_cast<unsigned long long>(seq), when.sec(),
                       (now - when).us()));
  }
}

void SchedulerChecker::on_fire(des::SimTime when, std::uint64_t seq) {
  if (fired_any_ && when < last_fire_) {
    mon_.violation("des.sched.monotonic-fire",
                   fmt("event seq=%llu fired at t=%.9fs after an event at "
                       "t=%.9fs — dispatch went backwards",
                       static_cast<unsigned long long>(seq), when.sec(),
                       last_fire_.sec()));
  }
  last_fire_ = when;
  fired_any_ = true;
  mon_.note(fmt("fire seq=%llu", static_cast<unsigned long long>(seq)));
}

void SchedulerChecker::on_cancel(std::uint64_t seq, CancelOutcome outcome) {
  switch (outcome) {
    case CancelOutcome::kCancelled:
      mon_.note(fmt("cancel seq=%llu", static_cast<unsigned long long>(seq)));
      break;
    case CancelOutcome::kStale:
      // Cancelling an already-fired or recycled event is a documented
      // no-op (pace timers, defensive teardown); count, don't flag.
      ++stale_cancels_;
      break;
    case CancelOutcome::kDouble:
      mon_.violation("des.sched.double-cancel",
                     fmt("event seq=%llu cancelled twice through the same "
                         "generation — a stale handle copy is being reused",
                         static_cast<unsigned long long>(seq)));
      break;
  }
}

SchedulerChecker& attach_scheduler(Monitor& mon, des::Scheduler& sched) {
  auto& checker = mon.make_checker<SchedulerChecker>(mon);
  sched.set_check_hook(&checker);
  mon.add_invariant(
      "des.pool.census", [&sched]() -> std::optional<std::string> {
        const std::size_t expect =
            sched.live_events() + sched.cancelled_entries();
        if (sched.pool_in_use() == expect) return std::nullopt;
        return fmt("event records in use (%zu) != live (%zu) + tombstones "
                   "(%zu) — a record leaked or was freed while queued",
                   sched.pool_in_use(), sched.live_events(),
                   sched.cancelled_entries());
      });
#if defined(GTW_CHECK)
  mon.add_invariant(
      "des.pool.double-free", [&sched]() -> std::optional<std::string> {
        if (sched.pool_double_frees() == 0) return std::nullopt;
        return fmt("%llu double-free(s) in the event pool",
                   static_cast<unsigned long long>(
                       sched.pool_double_frees()));
      });
#endif
  return checker;
}

// --- net --------------------------------------------------------------------

namespace {

LinkAccounts snapshot_link(const net::Link& link) {
  LinkAccounts a;
  a.submitted_frames = link.submitted_frames();
  a.submitted_bytes = link.submitted_bytes();
  a.sent_frames = link.frames_sent();
  a.sent_bytes = link.bytes_sent();
  a.dropped_frames = link.drops();
  a.dropped_bytes = link.dropped_bytes();
  a.outage_dropped_frames = link.outage_drops();
  a.outage_dropped_bytes = link.outage_dropped_bytes();
  a.queued_frames = link.queue_frames();
  a.queued_bytes = link.queue_bytes();
  return a;
}

}  // namespace

void attach_link(Monitor& mon, const net::Link& link,
                 const std::string& name) {
  const std::string id = "net.link." + (name.empty() ? link.name() : name);
  mon.add_invariant(id + ".bytes",
                    [&link]() -> std::optional<std::string> {
                      return link_conservation(snapshot_link(link));
                    });
  mon.add_drain_check(id + ".drain",
                      [&link]() -> std::optional<std::string> {
                        return link_drained(snapshot_link(link));
                      });
  if (link.fidelity() == net::LinkFidelity::kFluid) {
    mon.add_drain_check(id + ".burst-pool",
                        [&link]() -> std::optional<std::string> {
                          if (link.burst_pool_in_use() == 0)
                            return std::nullopt;
                          return fmt("%zu burst record(s) still live at "
                                     "drain",
                                     link.burst_pool_in_use());
                        });
  }
}

void attach_host(Monitor& mon, const net::Host& host) {
  const std::string id = "net.host." + host.name();
  mon.add_drain_check(id + ".recv", [&host]() -> std::optional<std::string> {
    HostAccounts a;
    a.nic_arrivals = host.nic_arrivals();
    a.received = host.packets_received();
    a.forwarded = host.packets_forwarded();
    a.recv_unroutable = host.recv_unroutable_drops();
    a.recv_outage_drops = host.recv_outage_drops();
    a.reassembly_pending = host.reassembly_pending();
    return host_drained(a);
  });
}

void attach_atm_switch(Monitor& mon, const net::AtmSwitch& sw) {
  const std::string id = "net.atm." + sw.name();
  mon.add_drain_check(id + ".fabric",
                      [&sw]() -> std::optional<std::string> {
                        SwitchAccounts a;
                        a.ingress_frames = sw.ingress_frames();
                        a.unroutable_frames = sw.unroutable_drops();
                        for (int p = 0; p < sw.port_count(); ++p) {
                          a.egress_submitted_frames +=
                              sw.egress_link(p).submitted_frames();
                        }
                        return switch_drained(a);
                      });
  for (int p = 0; p < sw.port_count(); ++p) {
    attach_link(mon, sw.egress_link(p),
                sw.name() + ".port" + std::to_string(p));
  }
}

namespace {

TcpSeqAccounts snapshot_tcp(const net::TcpConnection& conn, int side) {
  const net::TcpConnection::SeqState s = conn.seq_state(side);
  TcpSeqAccounts a;
  a.snd_una = s.snd_una;
  a.snd_nxt = s.snd_nxt;
  a.snd_max = s.snd_max;
  a.snd_end = s.snd_end;
  a.ooo_buffered = s.ooo_buffered;
  a.cwnd = s.cwnd;
  a.mss = conn.config().mss.count();
  a.recv_buffer = conn.config().recv_buffer.count();
  return a;
}

}  // namespace

void attach_tcp(Monitor& mon, const net::TcpConnection& conn,
                const std::string& name, bool expect_complete) {
  for (int side = 0; side < 2; ++side) {
    const std::string id =
        "tcp." + name + ".side" + std::to_string(side);
    mon.add_invariant(id + ".seq",
                      [&conn, side]() -> std::optional<std::string> {
                        return tcp_sequence_sanity(snapshot_tcp(conn, side));
                      });
    if (expect_complete) {
      mon.add_drain_check(id + ".drain",
                          [&conn, side]() -> std::optional<std::string> {
                            return tcp_drained(snapshot_tcp(conn, side));
                          });
    }
  }
}

// --- meta -------------------------------------------------------------------

void CommChecker::on_wan_outcome(int src_rank, int dst_rank,
                                 bool delivered_to_app, bool after_abandon,
                                 bool duplicate) {
  WanOutcome o;
  o.delivered_to_app = delivered_to_app;
  o.after_abandon = after_abandon;
  o.duplicate = duplicate;
  if (auto broke = wan_outcome_sane(o)) {
    mon_.violation(id_ + ".wan-outcome",
                   fmt("%d->%d: %s", src_rank, dst_rank, broke->c_str()));
  }
  mon_.note(fmt("wan copy %d->%d %s", src_rank, dst_rank,
                delivered_to_app ? "delivered"
                : duplicate      ? "duplicate"
                                 : "post-abandon"));
}

void CommChecker::on_unreachable(int src_rank, int dst_rank) {
  mon_.note(fmt("unreachable reported %d->%d", src_rank, dst_rank));
}

void attach_communicator(Monitor& mon, meta::Communicator& comm,
                         const std::string& name) {
  const std::string id = "meta." + name;
  auto& checker = mon.make_checker<CommChecker>(mon, id);
  comm.set_check_observer(&checker);
  // Ledger subset laws that hold without per-copy visibility too.
  mon.add_invariant(
      id + ".reliability", [&comm]() -> std::optional<std::string> {
        const auto& r = comm.reliability();
        if (r.dropped_after_unreachable > 0 && r.unreachable_reports == 0) {
          return fmt("%llu copie(s) dropped after an unreachable report, "
                     "but no report was ever issued",
                     static_cast<unsigned long long>(
                         r.dropped_after_unreachable));
        }
        return std::nullopt;
      });
}

void PathChecker::on_chunk(int side, std::uint64_t msg_seq, std::uint32_t idx,
                           bool duplicate) {
  auto& seen = seen_chunks_[side];
  const auto key = std::make_pair(msg_seq, idx);
  if (duplicate) {
    // The transport says this chunk already arrived; if we never saw it,
    // the duplicate-suppression bookkeeping is lying.
    if (seen.find(key) == seen.end()) {
      mon_.violation(id_ + ".chunk-dup",
                     fmt("side %d chunk (msg %llu, idx %u) flagged "
                         "duplicate but never delivered",
                         side, static_cast<unsigned long long>(msg_seq),
                         idx));
    }
    return;
  }
  if (!seen.insert(key).second) {
    mon_.violation(id_ + ".chunk-twice",
                   fmt("side %d chunk (msg %llu, idx %u) delivered twice "
                       "without duplicate suppression",
                       side, static_cast<unsigned long long>(msg_seq), idx));
  }
}

void PathChecker::on_message(int side, std::uint64_t msg_seq,
                             std::uint64_t bytes) {
  if (msg_seq != next_msg_[side]) {
    mon_.violation(id_ + ".order",
                   fmt("side %d delivered message seq=%llu, expected "
                       "seq=%llu — send order broken",
                       side, static_cast<unsigned long long>(msg_seq),
                       static_cast<unsigned long long>(next_msg_[side])));
    // Resynchronize so one break reports once, not per message.
    next_msg_[side] = msg_seq + 1;
  } else {
    ++next_msg_[side];
  }
  mon_.note(fmt("path %s side %d msg %llu (%llu B) delivered", id_.c_str(),
                side, static_cast<unsigned long long>(msg_seq),
                static_cast<unsigned long long>(bytes)));
}

void attach_path_transport(Monitor& mon, meta::PathTransport& path,
                           const std::string& name) {
  const std::string id = "meta.path." + name;
  auto& checker = mon.make_checker<PathChecker>(mon, id);
  path.set_check_observer(&checker);
  for (int side = 0; side < 2; ++side) {
    mon.add_drain_check(
        id + ".side" + std::to_string(side) + ".drain",
        [&path, side]() -> std::optional<std::string> {
          const auto& st = path.stats(side);
          PathAccounts a;
          a.messages = st.messages;
          a.delivered_messages = st.delivered_messages;
          a.bytes = st.bytes;
          a.delivered_bytes = st.delivered_bytes;
          a.reassembly_bytes = st.reassembly_bytes;
          a.undispatched_chunks = path.undispatched_chunks(side);
          a.outstanding_chunks = path.outstanding_chunks(side);
          a.inflight_messages = path.inflight_messages(side);
          return path_drained(a);
        });
  }
}

// --- flow -------------------------------------------------------------------

namespace {

FlowAccounts snapshot_graph(const flow::StageGraph& graph) {
  const flow::MetricsRegistry& m = graph.metrics();
  FlowAccounts a;
  a.pushed = m.pushed;
  a.admitted = m.admitted;
  a.admission_dropped = m.admission_dropped;
  a.degraded_dropped = m.degraded_dropped;
  a.completed = m.completed;
  for (const auto& s : m.stages()) a.stage_dropped += s.dropped;
  a.waiting_admission = graph.waiting_admission();
  a.in_flight = static_cast<std::uint64_t>(graph.in_flight());
  return a;
}

}  // namespace

void attach_stage_graph(Monitor& mon, const flow::StageGraph& graph,
                        const std::string& prefix) {
  mon.add_invariant(prefix + ".conservation",
                    [&graph]() -> std::optional<std::string> {
                      return flow_conservation(snapshot_graph(graph));
                    });
  mon.add_drain_check(prefix + ".drain",
                      [&graph]() -> std::optional<std::string> {
                        return flow_drained(snapshot_graph(graph));
                      });
  attach_flow_metrics(mon, graph.metrics(), prefix);
}

void attach_flow_metrics(Monitor& mon, const flow::MetricsRegistry& metrics,
                         const std::string& prefix) {
  mon.add_invariant(
      prefix + ".stages", [&metrics]() -> std::optional<std::string> {
        for (std::size_t i = 0; i < metrics.stages().size(); ++i) {
          const auto& s = metrics.stages()[i];
          FlowStageAccounts a;
          a.items_in = s.items_in;
          a.items_out = s.items_out;
          a.dropped = s.dropped;
          a.queue_depth = s.queue_depth;
          a.queue_peak = s.queue_peak;
          if (auto broke = flow_stage_sanity(a)) {
            return "stage " + s.name + ": " + *broke;
          }
        }
        return std::nullopt;
      });
  mon.add_invariant(
      prefix + ".degraded-subset",
      [&metrics]() -> std::optional<std::string> {
        if (metrics.degraded_dropped <= metrics.admission_dropped)
          return std::nullopt;
        return fmt("degraded drops (%llu) exceed admission drops (%llu)",
                   static_cast<unsigned long long>(metrics.degraded_dropped),
                   static_cast<unsigned long long>(
                       metrics.admission_dropped));
      });
}

// --- faults -----------------------------------------------------------------

void attach_fault_plan(Monitor& mon, net::FaultPlan& plan,
                       const std::string& prefix) {
  // Observer state lives in a checker object so it survives as long as the
  // monitor; the plan notifies begin/end transitions always-on.
  struct Brackets {
    std::uint64_t begins = 0;
    std::uint64_t ends = 0;
  };
  auto& b = mon.make_checker<Brackets>();
  plan.add_observer([&mon, &b, prefix](const net::FaultEvent& ev,
                                       bool active) {
    if (active) {
      ++b.begins;
    } else {
      ++b.ends;
      if (b.ends > b.begins) {
        mon.violation(prefix + ".bracket",
                      fmt("fault '%s' reverted more times than applied",
                          ev.target.c_str()));
      }
    }
    mon.note(fmt("fault %s %s %s", to_string(ev.kind), ev.target.c_str(),
                 active ? "begin" : "end"));
  });
  mon.add_drain_check(prefix + ".all-reverted",
                      [&plan, &b]() -> std::optional<std::string> {
                        if (plan.active_faults() == 0 && b.begins == b.ends)
                          return std::nullopt;
                        return fmt("%d fault(s) still active at drain "
                                   "(begins=%llu ends=%llu)",
                                   plan.active_faults(),
                                   static_cast<unsigned long long>(b.begins),
                                   static_cast<unsigned long long>(b.ends));
                      });
}

// --- obs --------------------------------------------------------------------

void attach_span_tracer(Monitor& mon, const obs::SpanTracer& tracer,
                        const std::string& prefix) {
  mon.add_drain_check(prefix + ".leak",
                      [&tracer]() -> std::optional<std::string> {
                        if (tracer.open_spans() == 0) return std::nullopt;
                        return std::to_string(tracer.open_spans()) +
                               " span(s) still open at drain";
                      });
  mon.add_drain_check(prefix + ".trace-leak",
                      [&tracer]() -> std::optional<std::string> {
                        if (tracer.open_traces() == 0) return std::nullopt;
                        return std::to_string(tracer.open_traces()) +
                               " trace(s) still open at drain";
                      });
}

// --- whole topology ---------------------------------------------------------

void attach_testbed(Monitor& mon, testbed::Testbed& tb) {
  attach_scheduler(mon, tb.scheduler());
  for (const auto& [name, host] : tb.hosts()) attach_host(mon, *host);
  attach_atm_switch(mon, tb.atm_juelich());
  attach_atm_switch(mon, tb.atm_gmd());
  for (const net::Link* uplink : tb.atm_uplinks()) {
    attach_link(mon, *uplink);
  }
}

}  // namespace gtw::check
