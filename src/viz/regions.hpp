// Connected-component labelling of activation overlays — the quantitative
// counterpart of Figure 4's "light areas are regions of the brain that are
// activated": how many distinct regions, where, and how large.
#pragma once

#include <cstdint>
#include <vector>

#include "fire/volume.hpp"

namespace gtw::viz {

struct ActivationRegionInfo {
  int label = 0;
  std::size_t voxels = 0;
  // Centroid in voxel coordinates.
  double cx = 0, cy = 0, cz = 0;
  float peak_value = 0.0f;   // of `values` within the region (if provided)
};

// 6-connected component labelling of the nonzero voxels of `mask`.
// `values` (optional, same dims) supplies per-voxel intensities for peak
// reporting.  Regions are returned largest-first; components smaller than
// `min_voxels` are dropped (speckle suppression).
std::vector<ActivationRegionInfo> label_regions(
    const fire::Volume<std::uint8_t>& mask,
    const fire::VolumeF* values = nullptr, std::size_t min_voxels = 1);

}  // namespace gtw::viz
