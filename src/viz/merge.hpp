// Functional-onto-anatomical merge: the Onyx 2 "merges [the functional
// data] with a high resolution (256x256x128 voxels) image of the subject's
// head" before display on the Responsive Workbench (paper section 4, and
// figure 4's AVS prototype).  Voxels whose upsampled correlation exceeds
// the clip level are flagged and intensity-blended — the non-graphical
// equivalent of the color-coded overlay.
#pragma once

#include <cstdint>

#include "fire/volume.hpp"

namespace gtw::viz {

struct MergeResult {
  fire::VolumeF merged;                    // anatomical with overlay blended
  fire::Volume<std::uint8_t> overlay;      // 1 where activation is shown
  std::size_t activated_voxels = 0;
  float peak_correlation = 0.0f;
};

// Upsample `correlation` (functional grid) onto `anatomical`'s grid with
// trilinear interpolation; where it exceeds `clip_level`, mark the overlay
// and add `highlight_gain * r * anatomical_scale` to the merged intensity.
MergeResult merge_functional(const fire::VolumeF& anatomical,
                             const fire::VolumeF& correlation,
                             float clip_level, float highlight_gain = 0.5f);

}  // namespace gtw::viz
