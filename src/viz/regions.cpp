#include "viz/regions.hpp"

#include <algorithm>
#include <array>
#include <queue>

namespace gtw::viz {

std::vector<ActivationRegionInfo> label_regions(
    const fire::Volume<std::uint8_t>& mask, const fire::VolumeF* values,
    std::size_t min_voxels) {
  const fire::Dims d = mask.dims();
  std::vector<int> labels(mask.size(), 0);
  auto index = [&](int x, int y, int z) {
    return (static_cast<std::size_t>(z) * d.ny + y) * d.nx + x;
  };

  std::vector<ActivationRegionInfo> out;
  int next_label = 0;
  for (int z = 0; z < d.nz; ++z) {
    for (int y = 0; y < d.ny; ++y) {
      for (int x = 0; x < d.nx; ++x) {
        const std::size_t i = index(x, y, z);
        if (mask[i] == 0 || labels[i] != 0) continue;
        // Breadth-first flood fill over the 6-neighbourhood.
        ActivationRegionInfo info;
        info.label = ++next_label;
        std::queue<std::array<int, 3>> frontier;
        frontier.push({x, y, z});
        labels[i] = info.label;
        while (!frontier.empty()) {
          const auto [px, py, pz] = frontier.front();
          frontier.pop();
          const std::size_t pi = index(px, py, pz);
          ++info.voxels;
          info.cx += px;
          info.cy += py;
          info.cz += pz;
          if (values != nullptr)
            info.peak_value = std::max(info.peak_value, (*values)[pi]);
          const int nbr[6][3] = {{px + 1, py, pz}, {px - 1, py, pz},
                                 {px, py + 1, pz}, {px, py - 1, pz},
                                 {px, py, pz + 1}, {px, py, pz - 1}};
          for (const auto& n : nbr) {
            if (n[0] < 0 || n[0] >= d.nx || n[1] < 0 || n[1] >= d.ny ||
                n[2] < 0 || n[2] >= d.nz)
              continue;
            const std::size_t ni = index(n[0], n[1], n[2]);
            if (mask[ni] != 0 && labels[ni] == 0) {
              labels[ni] = info.label;
              frontier.push({n[0], n[1], n[2]});
            }
          }
        }
        if (info.voxels >= min_voxels) {
          info.cx /= static_cast<double>(info.voxels);
          info.cy /= static_cast<double>(info.voxels);
          info.cz /= static_cast<double>(info.voxels);
          out.push_back(info);
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ActivationRegionInfo& a, const ActivationRegionInfo& b) {
              return a.voxels > b.voxels;
            });
  return out;
}

}  // namespace gtw::viz
