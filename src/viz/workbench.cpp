#include "viz/workbench.hpp"

#include "flow/stage.hpp"

namespace gtw::viz {

double classical_ip_fps(const WorkbenchFormat& fmt, units::BitRate link_rate,
                        units::Bytes mtu) {
  const std::uint64_t frame = fmt.frame_bytes().count();
  // IP fragmentation: payload per fragment (8-byte aligned), each fragment
  // re-carries the IP header and is AAL5-framed with LLC/SNAP.
  const std::uint32_t mtu_bytes = static_cast<std::uint32_t>(mtu.count());
  const std::uint32_t per_frag = ((mtu_bytes - net::kIpHeaderBytes) / 8) * 8;
  const std::uint64_t full_frags = frame / per_frag;
  const std::uint32_t tail = static_cast<std::uint32_t>(frame % per_frag);

  std::uint64_t wire = full_frags *
      net::aal5_wire_bytes(per_frag + net::kIpHeaderBytes + net::kLlcSnapBytes);
  if (tail > 0)
    wire += net::aal5_wire_bytes(tail + net::kIpHeaderBytes +
                                 net::kLlcSnapBytes);
  const double seconds_per_frame =
      static_cast<double>(wire) * 8.0 / link_rate.bps();
  return 1.0 / seconds_per_frame;
}

FrameStreamer::FrameStreamer(des::Scheduler& sched, net::Host& src,
                             net::Host& dst, WorkbenchFormat fmt,
                             RenderModel render, int frame_count,
                             net::TcpConfig tcp)
    : sched_(sched), fmt_(fmt), render_(render), frame_count_(frame_count),
      conn_(src, dst, 7100, 7101, tcp), graph_(sched) {
  // The single render slot re-fills while the previous frame is still in
  // flight on the uplink (double buffer).
  graph_.add_stage(
      flow::delay_stage("render", render_.frame_time(fmt_), 1));
  graph_.add_stage(flow::tcp_transfer_stage(
      "uplink", conn_, 0,
      [this](const flow::Item&) { return fmt_.frame_bytes(); }, 0));
  graph_.on_complete([this](const flow::Item&) {
    const des::SimTime when = sched_.now();
    ++delivered_;
    if (first_) {
      first_ = false;
      first_delivery_ = when;
    } else {
      intervals_.add((when - last_delivery_).ms());
    }
    last_delivery_ = when;
  });
}

void FrameStreamer::start() {
  for (int i = 0; i < frame_count_; ++i) graph_.push(i);
}

double FrameStreamer::achieved_fps() const {
  if (delivered_ < 2) return 0.0;
  const double span = (last_delivery_ - first_delivery_).sec();
  if (span <= 0.0) return 0.0;
  return static_cast<double>(delivered_ - 1) / span;
}

}  // namespace gtw::viz
