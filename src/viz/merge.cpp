#include "viz/merge.hpp"

#include <algorithm>

namespace gtw::viz {

MergeResult merge_functional(const fire::VolumeF& anatomical,
                             const fire::VolumeF& correlation,
                             float clip_level, float highlight_gain) {
  const fire::Dims da = anatomical.dims();
  const fire::Dims df = correlation.dims();
  MergeResult out;
  out.merged = anatomical;
  out.overlay = fire::Volume<std::uint8_t>(da);

  float anat_peak = 1.0f;
  for (std::size_t i = 0; i < anatomical.size(); ++i)
    anat_peak = std::max(anat_peak, anatomical[i]);

  const double sx = static_cast<double>(df.nx) / da.nx;
  const double sy = static_cast<double>(df.ny) / da.ny;
  const double sz = static_cast<double>(df.nz) / da.nz;

  for (int z = 0; z < da.nz; ++z) {
    for (int y = 0; y < da.ny; ++y) {
      for (int x = 0; x < da.nx; ++x) {
        const double r = correlation.sample((x + 0.5) * sx - 0.5,
                                            (y + 0.5) * sy - 0.5,
                                            (z + 0.5) * sz - 0.5);
        out.peak_correlation =
            std::max(out.peak_correlation, static_cast<float>(r));
        if (r >= clip_level) {
          out.overlay.at(x, y, z) = 1;
          ++out.activated_voxels;
          out.merged.at(x, y, z) += static_cast<float>(
              highlight_gain * r * anat_peak);
        }
      }
    }
  }
  return out;
}

}  // namespace gtw::viz
