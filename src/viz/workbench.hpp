// Responsive Workbench remote display over the testbed.
//
// The paper: "the workbench has two projection planes, each of them
// displays stereo images of 1024x768 true color (24 Bit) pixels.  This
// means that less than 8 frames/second can be transferred over a
// 622 Mbit/s ATM network using classical IP."  This module provides both
// the closed-form arithmetic behind that sentence (frame bytes through
// CLIP/AAL5 fragmentation) and an event-driven frame streamer that measures
// the achieved rate on the simulated network, plus the Onyx 2 render-cost
// model that the planned AVOCADO remote-display extension must overlap with.
#pragma once

#include <cstdint>

#include "des/scheduler.hpp"
#include "des/stats.hpp"
#include "flow/graph.hpp"
#include "net/host.hpp"
#include "net/tcp.hpp"
#include "net/units.hpp"

namespace gtw::viz {

struct WorkbenchFormat {
  int width = 1024;
  int height = 768;
  int planes = 2;          // two projection planes
  bool stereo = true;      // two eyes per plane
  int bytes_per_pixel = 3; // 24-bit true colour

  units::Bytes frame_bytes() const {
    return units::Bytes{static_cast<std::uint64_t>(width) * height *
                        bytes_per_pixel * planes * (stereo ? 2 : 1)};
  }
};

// Frames-per-second achievable for `fmt` over a link of `link_rate` with
// classical IP over ATM: the frame is fragmented into MTU-sized IP
// packets, each LLC/SNAP + AAL5 framed into 53-byte cells.
double classical_ip_fps(const WorkbenchFormat& fmt, units::BitRate link_rate,
                        units::Bytes mtu = net::kMtuAtmDefault);

// Rendering cost on the visualization server (12-processor Onyx 2 class):
// time to produce one workbench frame.
struct RenderModel {
  double seconds_per_mpixel = 0.010;  // textured volume-slice rendering
  int processors = 12;

  des::SimTime frame_time(const WorkbenchFormat& fmt) const {
    const double mpix = static_cast<double>(fmt.frame_bytes().count()) /
                        fmt.bytes_per_pixel / 1e6;
    return des::SimTime::seconds(seconds_per_mpixel * mpix / processors);
  }
};

// Streams rendered frames from `src` (the Onyx 2) to `dst` (the workbench
// frame buffer) over TCP, render and transfer overlapped (a two-stage flow
// graph: single render slot double-buffered against the uplink); reports
// the sustained frame rate.
class FrameStreamer {
 public:
  FrameStreamer(des::Scheduler& sched, net::Host& src, net::Host& dst,
                WorkbenchFormat fmt, RenderModel render, int frame_count,
                net::TcpConfig tcp = {});

  void start();

  int frames_delivered() const { return delivered_; }
  double achieved_fps() const;
  const des::RunningStats& frame_interval_ms() const { return intervals_; }

  // Stage events as trace ranks 0 (render) / 1 (uplink).
  void attach_trace(trace::TraceRecorder* rec) { graph_.attach_trace(rec); }
  const flow::MetricsRegistry& metrics() const { return graph_.metrics(); }

 private:
  des::Scheduler& sched_;
  WorkbenchFormat fmt_;
  RenderModel render_;
  int frame_count_;
  net::TcpConnection conn_;
  flow::StageGraph graph_;
  int delivered_ = 0;
  bool first_ = true;
  des::SimTime first_delivery_;
  des::SimTime last_delivery_;
  des::RunningStats intervals_;
};

}  // namespace gtw::viz
