#include "testbed/testbed.hpp"

#include <stdexcept>

#include "net/units.hpp"

namespace gtw::testbed {

namespace {

// Protocol-stack cost models per platform, calibrated against the paper's
// measured throughputs (section 2):
//  - Cray HiPPI TCP: >430 Mbit/s locally with 64 KByte MTU -> per-segment
//    cost ~1.1 ms at 64 KB, strongly per-packet-bound at small MTU;
//  - SP2: ~260 Mbit/s end-to-end, "mainly due to the limitations of the
//    I/O-system of the microchannel-based SP-nodes";
//  - gateway workstations forward at ~1 Gbit/s, fast enough not to be the
//    bottleneck on any measured path.
net::HostCosts cray_costs() {
  return {des::SimTime::microseconds(60), des::SimTime::microseconds(60),
          16.0, 16.0};
}
net::HostCosts sp2_costs() {
  return {des::SimTime::microseconds(40), des::SimTime::microseconds(40),
          30.0, 30.0};
}
net::HostCosts gateway_costs() {
  return {des::SimTime::microseconds(20), des::SimTime::microseconds(20),
          4.0, 4.0};
}
net::HostCosts workstation_costs() {
  return {des::SimTime::microseconds(20), des::SimTime::microseconds(20),
          3.0, 3.0};
}

constexpr des::SimTime kLocalProp = des::SimTime::microseconds(1);

}  // namespace

units::BitRate Testbed::wan_rate() const {
  switch (opts_.era) {
    case WanEra::kBWin155:
      return net::kOc3Line * net::kSdhPayloadFraction;
    case WanEra::kOc12_1997:
      return net::kOc12Line * net::kSdhPayloadFraction;
    case WanEra::kOc48_1998:
      return net::kOc48Line * net::kSdhPayloadFraction;
  }
  return units::BitRate::bps(0.0);
}

des::SimTime Testbed::wan_rtt() const {
  return des::SimTime::seconds(2.0 * opts_.distance_km *
                               net::kFiberDelaySecPerKm);
}

net::Host* Testbed::add_host(const std::string& name, net::HostCosts costs) {
  const net::HostId id = static_cast<net::HostId>(host_store_.size() + 1);
  host_store_.push_back(std::make_unique<net::Host>(sched_, name, id, costs));
  net::Host* h = host_store_.back().get();
  by_name_[name] = h;
  return h;
}

net::Link::Config Testbed::link_cfg(units::BitRate usable,
                                    des::SimTime propagation,
                                    units::Bytes queue_limit,
                                    des::SimTime per_frame_overhead) const {
  net::Link::Config cfg{usable, propagation, queue_limit, per_frame_overhead};
  cfg.fidelity = opts_.link_fidelity;
  cfg.burst_frames = opts_.burst_frames;
  cfg.burst_window = opts_.burst_window;
  return cfg;
}

net::AtmNic* Testbed::attach_atm(net::Host& h, net::AtmSwitch& sw,
                                 units::BitRate rate) {
  const units::BitRate usable = rate * net::kSdhPayloadFraction;
  const net::Link::Config link = link_cfg(usable, kLocalProp,
                                          opts_.switch_buffer,
                                          des::SimTime::zero());
  atm_nics_.push_back(std::make_unique<net::AtmNic>(
      sched_, h, h.name() + ".atm", link, opts_.atm_mtu));
  net::AtmNic* nic = atm_nics_.back().get();
  const int port = sw.add_port(link);
  nic->uplink().set_sink(sw.ingress(port));
  sw.connect_egress(port, nic->ingress());
  atm_attached_.push_back({nic, &sw, port, &sw == atm_j_.get()});
  attach_rate_[h.name()] = rate;
  return nic;
}

Testbed::Testbed(TestbedOptions opts) : opts_(opts) {
  atm_j_ = std::make_unique<net::AtmSwitch>(sched_, "asx4000-juelich");
  atm_g_ = std::make_unique<net::AtmSwitch>(sched_, "asx4000-gmd");
  hippi_j_ = std::make_unique<net::HippiSwitch>(sched_, "hippi-juelich");

  // --- hosts -------------------------------------------------------------
  t3e600_ = add_host("t3e600", cray_costs());
  t3e1200_ = add_host("t3e1200", cray_costs());
  t90_ = add_host("t90", cray_costs());
  gw_o200_ = add_host("gw_o200", gateway_costs());
  gw_ultra30_ = add_host("gw_ultra30", gateway_costs());
  scanner_fe_ = add_host("scanner_frontend", workstation_costs());
  onyx2_j_ = add_host("onyx2_juelich", workstation_costs());
  workbench_j_ = add_host("workbench_juelich", workstation_costs());
  sp2_ = add_host("sp2", sp2_costs());
  gw_e5000_ = add_host("gw_e5000", gateway_costs());
  onyx2_gmd_ = add_host("onyx2_gmd", workstation_costs());
  e500_ = add_host("e500", workstation_costs());

  gw_o200_->set_forwarding(true);
  gw_ultra30_->set_forwarding(true);
  gw_e5000_->set_forwarding(true);

  // --- WAN: two ASX-4000s joined by the SDH line --------------------------
  const des::SimTime wan_prop =
      des::SimTime::seconds(opts_.distance_km * net::kFiberDelaySecPerKm);
  const net::Link::Config wan_link = link_cfg(
      wan_rate(), wan_prop, opts_.switch_buffer, des::SimTime::zero());
  wan_port_j_ = atm_j_->add_port(wan_link);
  wan_port_g_ = atm_g_->add_port(wan_link);
  atm_j_->connect_egress(wan_port_j_, atm_g_->ingress(wan_port_g_));
  atm_g_->connect_egress(wan_port_g_, atm_j_->ingress(wan_port_j_));

  // --- ATM attachments (622 or 155 Mbit/s adapters, Figure 1) -------------
  net::AtmNic* atm_o200 = attach_atm(*gw_o200_, *atm_j_, net::kOc12Line);
  net::AtmNic* atm_u30 = attach_atm(*gw_ultra30_, *atm_j_, net::kOc12Line);
  net::AtmNic* atm_scan = attach_atm(*scanner_fe_, *atm_j_, net::kOc3Line);
  net::AtmNic* atm_onyx_j = attach_atm(*onyx2_j_, *atm_j_, net::kOc12Line);
  net::AtmNic* atm_wb = attach_atm(*workbench_j_, *atm_j_, net::kOc12Line);
  net::AtmNic* atm_e5000 = attach_atm(*gw_e5000_, *atm_g_, net::kOc12Line);
  net::AtmNic* atm_onyx_g = attach_atm(*onyx2_gmd_, *atm_g_, net::kOc12Line);
  net::AtmNic* atm_e500 = attach_atm(*e500_, *atm_g_, net::kOc12Line);

  // --- HiPPI complex in Jülich --------------------------------------------
  auto add_hippi = [&](net::Host& h) {
    hippi_nics_.push_back(
        std::make_unique<net::HippiNic>(sched_, h, h.name() + ".hippi"));
    net::HippiNic* nic = hippi_nics_.back().get();
    nic->uplink().set_fidelity(opts_.link_fidelity);
    nic->uplink().set_burst_limits(opts_.burst_frames, opts_.burst_window);
    const net::Link::Config port_cfg = link_cfg(net::kHippiRate, kLocalProp,
                                                units::Bytes{4u << 20},
                                                des::SimTime::zero());
    const int port = hippi_j_->add_port(port_cfg);
    nic->uplink().set_sink(hippi_j_->ingress(port));
    hippi_j_->connect_egress(port, nic->ingress());
    hippi_j_->add_station(h.id(), port);
    if (attach_rate_.find(h.name()) == attach_rate_.end())
      attach_rate_[h.name()] = net::kHippiRate;
    return nic;
  };
  net::HippiNic* hip_t3e600 = add_hippi(*t3e600_);
  net::HippiNic* hip_t3e1200 = add_hippi(*t3e1200_);
  net::HippiNic* hip_t90 = add_hippi(*t90_);
  net::HippiNic* hip_o200 = add_hippi(*gw_o200_);
  net::HippiNic* hip_u30 = add_hippi(*gw_ultra30_);

  // --- SP2 <-> E5000 gateway: direct HiPPI channel ------------------------
  hippi_nics_.push_back(
      std::make_unique<net::HippiNic>(sched_, *sp2_, "sp2.hippi"));
  net::HippiNic* hip_sp2 = hippi_nics_.back().get();
  hippi_nics_.push_back(
      std::make_unique<net::HippiNic>(sched_, *gw_e5000_, "gw_e5000.hippi"));
  net::HippiNic* hip_e5000 = hippi_nics_.back().get();
  for (net::HippiNic* n : {hip_sp2, hip_e5000}) {
    n->uplink().set_fidelity(opts_.link_fidelity);
    n->uplink().set_burst_limits(opts_.burst_frames, opts_.burst_window);
  }
  hip_sp2->uplink().set_sink(hip_e5000->ingress());
  hip_e5000->uplink().set_sink(hip_sp2->ingress());
  attach_rate_["sp2"] = net::kHippiRate;

  // --- VCs: provision every ATM host pair (PVC mesh, as a 1999 testbed
  // with a handful of hosts would) -----------------------------------------
  for (std::size_t i = 0; i < atm_attached_.size(); ++i) {
    for (std::size_t j = i + 1; j < atm_attached_.size(); ++j) {
      const AtmAttachment& a = atm_attached_[i];
      const AtmAttachment& b = atm_attached_[j];
      if (a.juelich == b.juelich) {
        vcs_.provision(*a.nic, *b.nic, {{a.sw, a.port, b.port}});
      } else {
        const AtmAttachment& jl = a.juelich ? a : b;
        const AtmAttachment& gm = a.juelich ? b : a;
        vcs_.provision(*jl.nic, *gm.nic,
                       {{atm_j_.get(), jl.port, wan_port_j_},
                        {atm_g_.get(), wan_port_g_, gm.port}});
      }
    }
  }

  // --- routing -------------------------------------------------------------
  const std::vector<std::pair<net::Host*, net::AtmNic*>> atm_hosts = {
      {gw_o200_, atm_o200},   {gw_ultra30_, atm_u30}, {scanner_fe_, atm_scan},
      {onyx2_j_, atm_onyx_j}, {workbench_j_, atm_wb}, {gw_e5000_, atm_e5000},
      {onyx2_gmd_, atm_onyx_g}, {e500_, atm_e500}};
  const std::vector<std::pair<net::Host*, net::HippiNic*>> hippi_local = {
      {t3e600_, hip_t3e600}, {t3e1200_, hip_t3e1200}, {t90_, hip_t90}};

  // ATM-attached hosts reach each other directly; HiPPI hosts in Jülich are
  // reached via the O200 gateway; the SP2 via the E5000 gateway.
  for (const auto& [h, nic] : atm_hosts) {
    for (const auto& [peer, pnic] : atm_hosts) {
      (void)pnic;
      if (peer != h) h->add_route(peer->id(), nic, peer->id());
    }
    if (h != gw_o200_ && h != gw_ultra30_)
      for (const auto& [cray, cnic] : hippi_local) {
        (void)cnic;
        h->add_route(cray->id(), nic, gw_o200_->id());
      }
    if (h != gw_e5000_) h->add_route(sp2_->id(), nic, gw_e5000_->id());
  }

  // Jülich HiPPI hosts: local complex direct, everything else via O200.
  for (const auto& [h, nic] : hippi_local) {
    for (const auto& [peer, pnic] : hippi_local) {
      (void)pnic;
      if (peer != h) h->add_route(peer->id(), nic, peer->id());
    }
    h->add_route(gw_o200_->id(), nic, gw_o200_->id());
    h->add_route(gw_ultra30_->id(), nic, gw_ultra30_->id());
    h->set_default_route(nic, gw_o200_->id());
  }

  // Gateways: HiPPI side routes.
  gw_o200_->add_route(t3e600_->id(), hip_o200, t3e600_->id());
  gw_o200_->add_route(t3e1200_->id(), hip_o200, t3e1200_->id());
  gw_o200_->add_route(t90_->id(), hip_o200, t90_->id());
  gw_ultra30_->add_route(t3e600_->id(), hip_u30, t3e600_->id());
  gw_ultra30_->add_route(t3e1200_->id(), hip_u30, t3e1200_->id());
  gw_ultra30_->add_route(t90_->id(), hip_u30, t90_->id());
  gw_e5000_->add_route(sp2_->id(), hip_e5000, sp2_->id());

  // SP2: everything through the E5000 over the direct HiPPI channel.
  sp2_->set_default_route(hip_sp2, gw_e5000_->id());
}

void Testbed::set_wan_bit_error_rate(double ber) {
  atm_j_->egress_link(wan_port_j_).set_bit_error_rate(ber);
  atm_g_->egress_link(wan_port_g_).set_bit_error_rate(ber);
}

net::Link& Testbed::wan_link_j_to_g() {
  return atm_j_->egress_link(wan_port_j_);
}

net::Link& Testbed::wan_link_g_to_j() {
  return atm_g_->egress_link(wan_port_g_);
}

std::vector<net::Link*> Testbed::atm_uplinks() {
  std::vector<net::Link*> links;
  links.reserve(atm_nics_.size());
  for (const auto& nic : atm_nics_) links.push_back(&nic->uplink());
  return links;
}

void Testbed::shape_host_vc(const std::string& src_host,
                            const std::string& dst_host, units::BitRate rate) {
  net::Host* src = by_name_.at(src_host);
  net::Host* dst = by_name_.at(dst_host);
  for (AtmAttachment& a : atm_attached_) {
    if (&a.nic->owner() == src) {
      a.nic->shape_vc(dst->id(), rate);
      return;
    }
  }
  throw std::out_of_range("shape_host_vc: " + src_host +
                          " has no ATM attachment");
}

units::BitRate Testbed::attachment_rate(const std::string& name) const {
  auto it = attach_rate_.find(name);
  if (it == attach_rate_.end())
    throw std::out_of_range("unknown host: " + name);
  return it->second;
}

}  // namespace gtw::testbed
