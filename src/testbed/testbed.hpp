// Canonical Gigabit Testbed West topology (Figure 1 of the paper, June 1999
// configuration): Jülich and Sankt Augustin ~100 km apart, joined by an
// OC-12 (1997) or OC-48 (since August 1998) SDH/ATM line between two Fore
// ASX-4000 switches.  The supercomputers attach over HiPPI with workstation
// IP gateways; workstations and servers attach with 622 or 155 Mbit/s ATM
// adapters.  A 155 Mbit/s "B-WiN" era can be selected as the baseline the
// testbed was built to surpass.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "des/scheduler.hpp"
#include "net/atm.hpp"
#include "units/units.hpp"
#include "net/hippi.hpp"
#include "net/host.hpp"

namespace gtw::testbed {

enum class WanEra {
  kBWin155,    // national research network baseline (155 Mbit/s access)
  kOc12_1997,  // first year of the testbed: 622 Mbit/s
  kOc48_1998,  // since August 1998: 2.4 Gbit/s
};

struct TestbedOptions {
  WanEra era = WanEra::kOc48_1998;
  double distance_km = 100.0;
  // ATM MTU used throughout ("the Fore ATM adapter supports large MTU
  // sizes, IP packets of 64 KByte size can be transferred throughout the
  // network").
  units::Bytes atm_mtu = net::kMtuAtmFore;
  units::Bytes switch_buffer{4u << 20};
  // Serialization fidelity stamped on every link the builder creates
  // (NIC uplinks, switch egress ports, the WAN trunk).  kExact reproduces
  // the paper figures frame-for-frame; kFluid batches frames into bursts
  // and is the mode national-scale scenarios run in (DESIGN.md §10).
  net::LinkFidelity link_fidelity = net::LinkFidelity::kExact;
  std::uint32_t burst_frames = 64;
  des::SimTime burst_window = des::SimTime::microseconds(50);
};

// Everything needed to run experiments on the assembled testbed.  Hosts are
// exposed by the names used in the paper.
class Testbed {
 public:
  explicit Testbed(TestbedOptions opts);

  des::Scheduler& scheduler() { return sched_; }
  const TestbedOptions& options() const { return opts_; }
  units::BitRate wan_rate() const;
  // Round-trip propagation of the WAN fibre (2x one-way trunk delay) —
  // what transport-layer sweeps vary when they scan RTT.
  des::SimTime wan_rtt() const;

  // --- Jülich ---
  net::Host& t3e600() { return *t3e600_; }     // 512-PE Cray T3E-600
  net::Host& t3e1200() { return *t3e1200_; }   // 512-PE Cray T3E-1200
  net::Host& t90() { return *t90_; }           // 10-CPU Cray T90
  net::Host& gw_o200() { return *gw_o200_; }   // SGI O200 HiPPI/ATM gateway
  net::Host& gw_ultra30() { return *gw_ultra30_; }  // Sun Ultra 30 gateway
  net::Host& scanner_frontend() { return *scanner_fe_; }
  net::Host& onyx2_juelich() { return *onyx2_j_; }  // 2-proc frame buffer
  net::Host& workbench_juelich() { return *workbench_j_; }

  // --- Sankt Augustin (GMD) ---
  net::Host& sp2() { return *sp2_; }           // IBM SP2
  net::Host& gw_e5000() { return *gw_e5000_; } // Sun E5000 HiPPI/ATM gateway
  net::Host& onyx2_gmd() { return *onyx2_gmd_; }  // 12-proc Onyx 2
  net::Host& e500() { return *e500_; }         // 8-proc Sun E500

  net::AtmSwitch& atm_juelich() { return *atm_j_; }
  net::AtmSwitch& atm_gmd() { return *atm_g_; }
  net::HippiSwitch& hippi_juelich() { return *hippi_j_; }

  // All hosts by paper name (e.g. "t3e600", "onyx2_gmd").
  const std::map<std::string, net::Host*>& hosts() const { return by_name_; }

  // Audit helper for the Figure-1 bench: the nominal attachment rate of a
  // host (line rate of its NIC uplink).
  units::BitRate attachment_rate(const std::string& name) const;

  // CBR-shape the VC from `src_host`'s ATM NIC toward `dst_host` (both by
  // paper name).  Only meaningful for ATM-attached sources.
  void shape_host_vc(const std::string& src_host, const std::string& dst_host,
                     units::BitRate rate);

  // Degrade the WAN fibre in both directions (the testbed's 1998
  // attenuation/timing troubles); 0 restores a clean line.
  void set_wan_bit_error_rate(double ber);

  // The WAN fibre itself, per direction — the natural target for scripted
  // faults (net::FaultPlan link flaps, BER bursts, buffer squeezes).
  net::Link& wan_link_j_to_g();
  net::Link& wan_link_g_to_j();

  // Every ATM NIC uplink the builder created, in attachment order.  With
  // the switch egress ports (reachable through the switches) this is the
  // complete link inventory — what check::attach_testbed sweeps when it
  // arms byte-conservation checking over the whole topology.
  std::vector<net::Link*> atm_uplinks();

 protected:
  // Shared with ExtendedTestbed (section-5 sites build on the same plumbing).
  net::Host* add_host(const std::string& name, net::HostCosts costs);
  net::AtmNic* attach_atm(net::Host& h, net::AtmSwitch& sw,
                          units::BitRate rate);
  // Link config stamped with the testbed-wide fidelity options.
  net::Link::Config link_cfg(units::BitRate usable, des::SimTime propagation,
                             units::Bytes queue_limit,
                             des::SimTime per_frame_overhead) const;

  TestbedOptions opts_;
  des::Scheduler sched_;

  std::vector<std::unique_ptr<net::Host>> host_store_;
  std::vector<std::unique_ptr<net::AtmNic>> atm_nics_;
  std::vector<std::unique_ptr<net::HippiNic>> hippi_nics_;
  std::map<std::string, net::Host*> by_name_;
  std::map<std::string, units::BitRate> attach_rate_;

  std::unique_ptr<net::AtmSwitch> atm_j_, atm_g_;
  std::unique_ptr<net::HippiSwitch> hippi_j_;
  net::VcAllocator vcs_;

  // ATM attachment bookkeeping for VC provisioning.
  struct AtmAttachment {
    net::AtmNic* nic;
    net::AtmSwitch* sw;
    int port;
    bool juelich;
  };
  std::vector<AtmAttachment> atm_attached_;
  int wan_port_j_ = -1, wan_port_g_ = -1;

 private:
  net::Host* t3e600_ = nullptr;
  net::Host* t3e1200_ = nullptr;
  net::Host* t90_ = nullptr;
  net::Host* gw_o200_ = nullptr;
  net::Host* gw_ultra30_ = nullptr;
  net::Host* scanner_fe_ = nullptr;
  net::Host* onyx2_j_ = nullptr;
  net::Host* workbench_j_ = nullptr;
  net::Host* sp2_ = nullptr;
  net::Host* gw_e5000_ = nullptr;
  net::Host* onyx2_gmd_ = nullptr;
  net::Host* e500_ = nullptr;
};

}  // namespace gtw::testbed
