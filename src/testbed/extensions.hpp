// Section 5 of the paper, "Extensions of the Testbed": "A dark fibre that
// links the national German Aerospace Research Center (DLR) and the
// University of Cologne to the GMD has just been set up ... A new
// 622 Mbit/s ATM-link between the University of Bonn and the GMD will be
// the basis for metacomputing projects that deal with multiscale molecular
// dynamics and lithospheric fluids."
//
// ExtendedTestbed adds those three sites to the base topology: an ATM
// switch per new site, dark-fibre (2.4 Gbit/s) links for DLR and Cologne,
// a 622 Mbit/s link for Bonn, and one compute/visualization host per site.
#pragma once

#include <utility>
#include <vector>

#include "testbed/testbed.hpp"

namespace gtw::testbed {

class ExtendedTestbed : public Testbed {
 public:
  explicit ExtendedTestbed(TestbedOptions opts = {});

  // New sites (all homed on the GMD switch).
  net::Host& dlr_traffic() { return *dlr_; }         // traffic simulation
  net::Host& cologne_viz() { return *cologne_; }     // media arts / TV prod.
  net::Host& bonn_md() { return *bonn_; }            // molecular dynamics

  net::AtmSwitch& atm_dlr() { return *sw_dlr_; }
  net::AtmSwitch& atm_cologne() { return *sw_cologne_; }
  net::AtmSwitch& atm_bonn() { return *sw_bonn_; }

 private:
  // Attach one new site: a switch linked to the GMD switch at `link_rate`,
  // one host on it, fully routed and VC-provisioned against every ATM host
  // of the base testbed.
  net::Host* add_site(const std::string& host_name, units::BitRate link_rate,
                      units::BitRate host_rate,
                      std::unique_ptr<net::AtmSwitch>& sw_out);

  std::unique_ptr<net::AtmSwitch> sw_dlr_, sw_cologne_, sw_bonn_;
  // GMD-side trunk port per extension-site switch (for site-to-site VCs).
  // A flat vector searched by pointer *identity* — never ordered or hashed
  // by address (gtw-lint rule pointer-order), and only ever 3 entries.
  std::vector<std::pair<net::AtmSwitch*, int>> site_trunk_;
  net::Host* dlr_ = nullptr;
  net::Host* cologne_ = nullptr;
  net::Host* bonn_ = nullptr;
};

}  // namespace gtw::testbed
