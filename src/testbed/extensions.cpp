#include "testbed/extensions.hpp"

#include <algorithm>

#include "net/units.hpp"

namespace gtw::testbed {

namespace {
net::HostCosts site_host_costs() {
  // Late-1999 workstation/server class machines at the new sites.
  return {des::SimTime::microseconds(20), des::SimTime::microseconds(20),
          3.0, 3.0};
}
constexpr des::SimTime kSiteProp = des::SimTime::microseconds(150);  // ~30 km
}  // namespace

ExtendedTestbed::ExtendedTestbed(TestbedOptions opts) : Testbed(opts) {
  // Dark fibre to DLR and Cologne (same OC-48 class as the main line), a
  // 622 Mbit/s ATM link to Bonn.
  dlr_ = add_site("dlr_traffic", net::kOc48Line, net::kOc12Line, sw_dlr_);
  cologne_ = add_site("cologne_viz", net::kOc48Line, net::kOc12Line,
                      sw_cologne_);
  bonn_ = add_site("bonn_md", net::kOc12Line, net::kOc12Line, sw_bonn_);
}

net::Host* ExtendedTestbed::add_site(const std::string& host_name,
                                     units::BitRate link_rate,
                                     units::BitRate host_rate,
                                     std::unique_ptr<net::AtmSwitch>& sw_out) {
  sw_out = std::make_unique<net::AtmSwitch>(sched_, "asx-" + host_name);
  net::AtmSwitch& sw = *sw_out;
  net::AtmSwitch& gmd = atm_gmd();

  // Site <-> GMD trunk.
  const units::BitRate usable = link_rate * net::kSdhPayloadFraction;
  const net::Link::Config trunk =
      link_cfg(usable, kSiteProp, opts_.switch_buffer, des::SimTime::zero());
  const int port_site_to_gmd = sw.add_port(trunk);
  const int port_gmd_to_site = gmd.add_port(trunk);
  sw.connect_egress(port_site_to_gmd, gmd.ingress(port_gmd_to_site));
  gmd.connect_egress(port_gmd_to_site, sw.ingress(port_site_to_gmd));

  // The site's host.
  net::Host* host = add_host(host_name, site_host_costs());
  // Snapshot of the attachments present *before* this host joins (the VC
  // loop below pairs the new host with each of them).
  const std::vector<AtmAttachment> peers = atm_attached_;
  net::AtmNic* nic = attach_atm(*host, sw, host_rate);
  const int host_port = atm_attached_.back().port;

  // VCs from the new host to every previously attached ATM host.
  for (const AtmAttachment& a : peers) {
    std::vector<net::VcHop> path;
    path.push_back({&sw, host_port, port_site_to_gmd});
    if (a.sw == &gmd) {
      path.push_back({&gmd, port_gmd_to_site, a.port});
    } else if (a.sw == &atm_juelich()) {
      path.push_back({&gmd, port_gmd_to_site, wan_port_g_});
      path.push_back({&atm_juelich(), wan_port_j_, a.port});
    } else {
      // Another extension site: via GMD, out its trunk port.  The trunk
      // port of that site's switch is port 0 by construction; find the GMD
      // side by asking the attachment's switch for its port-0 link — the
      // provisioner only needs ports, so route via the GMD trunk pair.
      // (Site-to-site VCs hop: site A -> GMD -> site B.)
      // The GMD-side port for switch a.sw is recorded in site_trunk_.
      auto it = std::find_if(site_trunk_.begin(), site_trunk_.end(),
                             [&](const auto& e) { return e.first == a.sw; });
      if (it == site_trunk_.end()) continue;
      path.push_back({&gmd, port_gmd_to_site, it->second});
      path.push_back({a.sw, /*in=*/0, a.port});
    }
    vcs_.provision(*nic, *a.nic, path);

    // Routing: both directions direct (next hop = final destination).
    host->add_route(a.nic->owner().id(), nic, a.nic->owner().id());
    a.nic->owner().add_route(host->id(), a.nic, host->id());
  }
  site_trunk_.emplace_back(&sw, port_gmd_to_site);

  // Supercomputers behind the gateways.
  host->add_route(t3e600().id(), nic, gw_o200().id());
  host->add_route(t3e1200().id(), nic, gw_o200().id());
  host->add_route(t90().id(), nic, gw_o200().id());
  host->add_route(sp2().id(), nic, gw_e5000().id());

  attach_rate_[host_name] = host_rate;
  return host;
}

}  // namespace gtw::testbed
