// Typed stage builders for the common node shapes — busy compute, fixed
// delay, synchronous transform, TCP transfer, datagram transfer — plus a
// PeriodicSource that feeds a graph on a fixed cadence (the shape of every
// paper workload: scanner TR, render loop, CBR video, simulation step).
#pragma once

#include <functional>
#include <string>

#include "flow/graph.hpp"
#include "net/datagram.hpp"
#include "net/tcp.hpp"
#include "units/units.hpp"

namespace gtw::flow {

// Occupies a slot for duration(item) of simulated time.
StageConfig compute_stage(std::string name,
                          std::function<des::SimTime(const Item&)> duration,
                          int concurrency = 1);

// Fixed-latency stage (unlimited concurrency by default: pure delay).
StageConfig delay_stage(std::string name, des::SimTime delay,
                        int concurrency = 0);

// Synchronous transform; completes within the current event.
StageConfig inline_stage(std::string name,
                         std::function<void(StageContext, Item&)> fn,
                         int concurrency = 0);

// Ship bytes(item) over a TcpConnection; the item finishes on delivery.
// Emits trace send on departure and recv on arrival, tagged by item index.
StageConfig tcp_transfer_stage(std::string name, net::TcpConnection& conn,
                               int side,
                               std::function<units::Bytes(const Item&)> bytes,
                               int concurrency = 1);

// Fire-and-forget datagram send; completes immediately (loss shows up at
// the receiving socket, not here).  With number_frames the item index rides
// along as the CBR sequence number.
StageConfig datagram_transfer_stage(
    std::string name, net::DatagramSocket& socket, net::HostId dst,
    std::uint16_t dst_port, std::function<units::Bytes(const Item&)> bytes,
    bool number_frames = true, int concurrency = 0);

// Pushes `count` items into a graph at a fixed interval.  With
// immediate_first the first item is emitted synchronously from start()
// (DistributedTrafficViz-style); otherwise it is scheduled at +0 like
// net::CbrSource, keeping either cadence bit-identical to the original.
class PeriodicSource {
 public:
  struct Config {
    des::SimTime interval;
    int count = 0;  // 0 = unbounded
    bool immediate_first = false;
  };
  using PayloadFn = std::function<std::any(int)>;

  PeriodicSource(StageGraph& graph, Config cfg, PayloadFn payload = nullptr,
                 std::function<void()> on_last = nullptr);

  void start();
  void stop() { timer_.cancel(); }
  int emitted() const { return emitted_; }

 private:
  void tick();

  StageGraph& graph_;
  Config cfg_;
  PayloadFn payload_;
  std::function<void()> on_last_;
  int emitted_ = 0;
  des::EventHandle timer_;
};

}  // namespace gtw::flow
