// Shared tracing hook layer for the dataflow engine and the communication
// libraries.  A Tracer wraps an optional trace::TraceRecorder so any
// component (StageGraph stages, meta::Communicator, applications) emits
// VAMPIR-style enter/leave/send/recv events through one interface; while no
// recorder is attached every call is a no-op, so instrumentation can stay
// unconditional at the call sites.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "des/time.hpp"
#include "units/units.hpp"
#include "trace/trace.hpp"

namespace gtw::flow {

class Tracer {
 public:
  Tracer() = default;

  void attach(trace::TraceRecorder* rec) { rec_ = rec; }
  bool attached() const { return rec_ != nullptr; }
  trace::TraceRecorder* recorder() const { return rec_; }

  // Define-or-reuse a state id by name.  Returns 0 (the reserved "idle"
  // state) while detached; ids are per-recorder, so the cache resets when a
  // different recorder is attached.
  std::uint32_t state(const std::string& name);

  void enter(std::uint32_t rank, std::uint32_t state, des::SimTime t);
  void leave(std::uint32_t rank, std::uint32_t state, des::SimTime t);
  void send(std::uint32_t rank, std::uint32_t peer, std::uint32_t tag,
            units::Bytes bytes, des::SimTime t);
  void recv(std::uint32_t rank, std::uint32_t peer, std::uint32_t tag,
            units::Bytes bytes, des::SimTime t);

 private:
  trace::TraceRecorder* rec_ = nullptr;
  trace::TraceRecorder* cached_for_ = nullptr;
  std::map<std::string, std::uint32_t> states_;
};

}  // namespace gtw::flow
