#include "flow/graph.hpp"

namespace gtw::flow {

des::Scheduler& StageContext::scheduler() const { return graph->sched_; }

des::SimTime StageContext::now() const { return graph->sched_.now(); }

void StageContext::trace_send(int to_stage, std::uint32_t tag,
                              units::Bytes bytes) const {
  graph->tracer_.send(static_cast<std::uint32_t>(stage),
                      static_cast<std::uint32_t>(to_stage), tag, bytes,
                      graph->sched_.now());
}

void StageContext::trace_recv(int at_stage, std::uint32_t tag,
                              units::Bytes bytes) const {
  graph->tracer_.recv(static_cast<std::uint32_t>(at_stage),
                      static_cast<std::uint32_t>(stage), tag, bytes,
                      graph->sched_.now());
}

StageGraph::StageGraph(des::Scheduler& sched, GraphConfig cfg)
    : sched_(sched), cfg_(cfg) {}

StageGraph::~StageGraph() {
  des::SpanHook* h = sched_.span_hook();
  if (h == nullptr) return;
  for (auto& [id, is] : live_) {
    h->abort_span(is.wait_span, sched_.now());
    h->abort_span(is.body_span, sched_.now());
    if (is.owns_trace) h->abort_trace(is.ctx, "teardown", sched_.now());
  }
}

int StageGraph::add_stage(StageConfig cfg) {
  const int idx = static_cast<int>(stages_.size());
  metrics_.add_stage(cfg.name, cfg.concurrency);
  stages_.push_back(Stage{std::move(cfg), {}, {}, 0, false});
  return idx;
}

const std::string& StageGraph::stage_name(int s) const {
  return stages_[static_cast<std::size_t>(s)].cfg.name;
}

void StageGraph::push(int index, std::any payload) {
  ++metrics_.pushed;
  const std::uint64_t id = next_id_++;
  ItemState st;
  st.item.id = id;
  st.item.index = index;
  st.item.payload = std::move(payload);
  if (des::SpanHook* h = sched_.span_hook(); h != nullptr) {
    // Workload origin: an item pushed outside any traced event starts a
    // fresh trace; one pushed from inside (e.g. a stage body fanning out)
    // joins the trace of its cause.
    st.ctx = h->current();
    if (!st.ctx.valid()) {
      st.ctx = h->mint("flow.push", sched_.now());
      st.owns_trace = true;
    }
    st.wait_span = h->begin_span(st.ctx, des::SpanPhase::kQueueWait, "flow",
                                 "admission", sched_.now());
  }
  live_.emplace(id, std::move(st));
  admission_.push_back(id);
  if (admission_.size() > metrics_.admission_peak)
    metrics_.admission_peak = admission_.size();
  admit_pending();
}

void StageGraph::set_degraded(bool on) {
  if (on == degraded_) return;
  degraded_ = on;
  const des::SimTime now = sched_.now();
  if (on) {
    ++metrics_.degraded_spans;
    degraded_since_ = now;
    awaiting_recovery_ = false;
  } else {
    metrics_.degraded_time += now - degraded_since_;
    recovery_started_ = now;
    awaiting_recovery_ = true;
    // The backlog that piled up during the outage is re-examined under the
    // normal policy immediately.
    admit_pending();
  }
}

bool StageGraph::accepts(int s) const {
  const Stage& st = stages_[static_cast<std::size_t>(s)];
  if (st.cfg.policy != QueuePolicy::kBlock || st.cfg.capacity == 0)
    return true;
  return st.queue.size() < st.cfg.capacity;
}

void StageGraph::supersede_waiting() {
  // A newer item supersedes everything still waiting (the RT-client asks
  // for "the next image" and gets the newest one).
  while (admission_.size() > 1) {
    const std::uint64_t stale = admission_.front();
    admission_.pop_front();
    ++metrics_.admission_dropped;
    if (degraded_) ++metrics_.degraded_dropped;
    auto it = live_.find(stale);
    if (des::SpanHook* h = sched_.span_hook(); h != nullptr) {
      h->abort_span(it->second.wait_span, sched_.now());
      if (it->second.owns_trace)
        h->abort_trace(it->second.ctx, "superseded", sched_.now());
    }
    if (drop_) drop_(it->second.item, -1);
    live_.erase(it);
  }
}

void StageGraph::admit_pending() {
  if (admitting_ || stages_.empty()) return;
  admitting_ = true;
  // Degraded mode forces newest-wins semantics whatever the configured
  // policy, and eagerly — even while admission itself is blocked, work
  // must not pile up behind a dead network.
  if (degraded_) supersede_waiting();
  while (!admission_.empty()) {
    if (cfg_.max_in_flight > 0 && in_flight_ >= cfg_.max_in_flight) break;
    if (!accepts(0)) break;
    if (cfg_.admission == QueuePolicy::kDropStale || degraded_)
      supersede_waiting();
    const std::uint64_t id = admission_.front();
    admission_.pop_front();
    ++in_flight_;
    ++metrics_.admitted;
    enqueue(0, id);
  }
  admitting_ = false;
}

void StageGraph::enqueue(int s, std::uint64_t id) {
  Stage& st = stages_[static_cast<std::size_t>(s)];
  if (st.cfg.policy == QueuePolicy::kDropNewest && st.cfg.capacity > 0 &&
      st.queue.size() >= st.cfg.capacity) {
    drop_queued(s, id);
    return;
  }
  if (des::SpanHook* h = sched_.span_hook(); h != nullptr) {
    // An item arriving from the previous stage starts waiting here; one
    // released from a kBlock hold keeps its already-open wait span.
    ItemState& is = live_.find(id)->second;
    if (is.ctx.valid() && is.wait_span == 0)
      is.wait_span = h->begin_span(is.ctx, des::SpanPhase::kQueueWait, "flow",
                                   st.cfg.name.c_str(), sched_.now());
  }
  st.queue.push_back(id);
  note_queue(s);
  pump(s);
}

void StageGraph::pump(int s) {
  Stage& st = stages_[static_cast<std::size_t>(s)];
  if (st.pumping) return;
  st.pumping = true;
  while (!st.queue.empty() &&
         (st.cfg.concurrency == 0 || st.running < st.cfg.concurrency)) {
    if (st.cfg.policy == QueuePolicy::kDropStale) {
      while (st.queue.size() > 1) {
        const std::uint64_t stale = st.queue.front();
        st.queue.pop_front();
        drop_queued(s, stale);
      }
    }
    const std::uint64_t id = st.queue.front();
    st.queue.pop_front();
    note_queue(s);
    drain_blocked(s);
    start(s, id);
  }
  st.pumping = false;
}

void StageGraph::start(int s, std::uint64_t id) {
  Stage& st = stages_[static_cast<std::size_t>(s)];
  ++st.running;
  ItemState& is = live_.find(id)->second;
  is.stage = s;
  is.in_body = true;
  is.started = sched_.now();
  StageMetrics& m = metrics_.stage(s);
  ++m.items_in;
  if (!m.started) {
    m.started = true;
    m.first_start = is.started;
  }
  tracer_.enter(static_cast<std::uint32_t>(s), tracer_.state(st.cfg.name),
                is.started);
  des::SpanHook* h = sched_.span_hook();
  const bool traced = h != nullptr && is.ctx.valid();
  des::TraceContext prev;
  if (traced) {
    h->end_span(is.wait_span, is.started);
    is.wait_span = 0;
    is.body_span = h->begin_span(is.ctx, des::SpanPhase::kCompute,
                                 "flow",
                                 st.cfg.name.c_str(), is.started);
    // Run the body under its own span so whatever it launches (a WAN
    // transfer, a CPU job) nests beneath this stage in the span tree.
    prev = h->adopt(des::under(is.ctx, is.body_span));
  }
  st.cfg.body(StageContext{this, s}, is.item,
              [this, s, id]() { finish(s, id); });
  // `is` may be gone here: a synchronous Done can complete the item.
  if (traced) h->adopt(prev);
}

void StageGraph::finish(int s, std::uint64_t id) {
  auto it = live_.find(id);
  if (it == live_.end() || it->second.stage != s || !it->second.in_body)
    return;  // stale or duplicate Done
  ItemState& is = it->second;
  is.in_body = false;
  const des::SimTime now = sched_.now();
  Stage& st = stages_[static_cast<std::size_t>(s)];
  StageMetrics& m = metrics_.stage(s);
  ++m.items_out;
  m.busy += now - is.started;
  m.last_finish = now;
  tracer_.leave(static_cast<std::uint32_t>(s), tracer_.state(st.cfg.name),
                now);
  des::SpanHook* h = sched_.span_hook();
  if (h != nullptr) {
    h->end_span(is.body_span, now);
    is.body_span = 0;
  }

  const int next = s + 1;
  if (next < stage_count()) {
    Stage& nx = stages_[static_cast<std::size_t>(next)];
    if (nx.cfg.policy == QueuePolicy::kBlock && nx.cfg.capacity > 0 &&
        nx.queue.size() >= nx.cfg.capacity) {
      // Backpressure: keep holding this stage's slot until there is room.
      if (h != nullptr && is.ctx.valid())
        is.wait_span = h->begin_span(is.ctx, des::SpanPhase::kQueueWait,
                                     "flow", st.cfg.name.c_str(), now);
      st.blocked.push_back(id);
      return;
    }
  }
  // Release the slot and refill this stage before handing the item on, so
  // an upstream waiter dispatches ahead of the downstream continuation —
  // the ordering the original FIRE transfer callback used.
  --st.running;
  pump(s);
  advance(s, id);
}

void StageGraph::advance(int s, std::uint64_t id) {
  const int next = s + 1;
  if (next < stage_count())
    enqueue(next, id);
  else
    leave_graph(id);
}

void StageGraph::drain_blocked(int s) {
  Stage& st = stages_[static_cast<std::size_t>(s)];
  if (st.cfg.policy != QueuePolicy::kBlock || st.cfg.capacity == 0) return;
  if (s == 0) {
    admit_pending();
    return;
  }
  Stage& up = stages_[static_cast<std::size_t>(s - 1)];
  while (!up.blocked.empty() && st.queue.size() < st.cfg.capacity) {
    const std::uint64_t id = up.blocked.front();
    up.blocked.pop_front();
    --up.running;
    pump(s - 1);
    enqueue(s, id);
  }
}

void StageGraph::leave_graph(std::uint64_t id) {
  auto it = live_.find(id);
  ++metrics_.completed;
  if (awaiting_recovery_) {
    // First completion after the outage cleared: the recovery time the
    // paper's operators would have watched for on the RT-client.
    awaiting_recovery_ = false;
    ++metrics_.recoveries;
    metrics_.last_recovery_time = sched_.now() - recovery_started_;
  }
  des::SpanHook* h = sched_.span_hook();
  des::TraceContext prev;
  if (h != nullptr) prev = h->adopt(it->second.ctx);
  if (complete_) complete_(it->second.item);
  if (h != nullptr) {
    h->adopt(prev);
    if (it->second.owns_trace)
      h->close_trace(it->second.ctx, sched_.now());
  }
  live_.erase(it);
  --in_flight_;
  admit_pending();
}

void StageGraph::drop_queued(int s, std::uint64_t id) {
  ++metrics_.stage(s).dropped;
  auto it = live_.find(id);
  if (des::SpanHook* h = sched_.span_hook(); h != nullptr) {
    h->abort_span(it->second.wait_span, sched_.now());
    h->abort_span(it->second.body_span, sched_.now());
    if (it->second.owns_trace)
      h->abort_trace(it->second.ctx, "dropped", sched_.now());
  }
  if (drop_) drop_(it->second.item, s);
  live_.erase(it);
  --in_flight_;
  admit_pending();
}

void StageGraph::note_queue(int s) {
  StageMetrics& m = metrics_.stage(s);
  m.queue_depth = stages_[static_cast<std::size_t>(s)].queue.size();
  if (m.queue_depth > m.queue_peak) m.queue_peak = m.queue_depth;
}

}  // namespace gtw::flow
