#include "flow/tracing.hpp"

namespace gtw::flow {

std::uint32_t Tracer::state(const std::string& name) {
  if (rec_ == nullptr) return 0;
  if (cached_for_ != rec_) {
    states_.clear();
    cached_for_ = rec_;
  }
  auto it = states_.find(name);
  if (it != states_.end()) return it->second;
  const std::uint32_t id = rec_->define_state(name);
  states_.emplace(name, id);
  return id;
}

void Tracer::enter(std::uint32_t rank, std::uint32_t state, des::SimTime t) {
  if (rec_ != nullptr && state != 0) rec_->enter(rank, state, t);
}

void Tracer::leave(std::uint32_t rank, std::uint32_t state, des::SimTime t) {
  if (rec_ != nullptr && state != 0) rec_->leave(rank, state, t);
}

void Tracer::send(std::uint32_t rank, std::uint32_t peer, std::uint32_t tag,
                  units::Bytes bytes, des::SimTime t) {
  if (rec_ != nullptr) rec_->send(rank, peer, tag, bytes, t);
}

void Tracer::recv(std::uint32_t rank, std::uint32_t peer, std::uint32_t tag,
                  units::Bytes bytes, des::SimTime t) {
  if (rec_ != nullptr) rec_->recv(rank, peer, tag, bytes, t);
}

}  // namespace gtw::flow
