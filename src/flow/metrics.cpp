#include "flow/metrics.hpp"

#include <sstream>

namespace gtw::flow {

double StageMetrics::throughput_per_s() const {
  if (!started || items_out == 0) return 0.0;
  const double span = (last_finish - first_start).sec();
  if (span <= 0.0) return 0.0;
  return static_cast<double>(items_out) / span;
}

double StageMetrics::occupancy() const {
  if (!started) return 0.0;
  const double span = (last_finish - first_start).sec();
  if (span <= 0.0) return 0.0;
  return busy.sec() / span;
}

StageMetrics& MetricsRegistry::add_stage(const std::string& name,
                                         int concurrency) {
  StageMetrics m;
  m.name = name;
  m.concurrency = concurrency;
  stages_.push_back(std::move(m));
  return stages_.back();
}

std::string MetricsRegistry::report() const {
  std::ostringstream os;
  os << "stage             in    out   drop  q_peak    busy_s    occ   thr/s\n";
  char line[160];
  for (const StageMetrics& m : stages_) {
    std::snprintf(line, sizeof line,
                  "%-14s %6llu %6llu %6llu %7zu %9.3f %6.2f %7.3f\n",
                  m.name.c_str(),
                  static_cast<unsigned long long>(m.items_in),
                  static_cast<unsigned long long>(m.items_out),
                  static_cast<unsigned long long>(m.dropped), m.queue_peak,
                  m.busy.sec(), m.occupancy(), m.throughput_per_s());
    os << line;
  }
  os << "graph: pushed " << pushed << ", admitted " << admitted
     << ", superseded " << admission_dropped << ", completed " << completed
     << "\n";
  // Degradation accounting, in the same key=value spirit (and the same
  // second-denominated units) as the obs metric snapshot names
  // fire.graph.degraded_* — previously accumulated but never reported.
  if (degraded_spans > 0 || degraded_dropped > 0 || recoveries > 0) {
    std::snprintf(line, sizeof line,
                  "graph: degraded_spans %llu, degraded_dropped %llu, "
                  "recoveries %llu, degraded_s %.3f, last_recovery_s %.3f\n",
                  static_cast<unsigned long long>(degraded_spans),
                  static_cast<unsigned long long>(degraded_dropped),
                  static_cast<unsigned long long>(recoveries),
                  degraded_time.sec(), last_recovery_time.sec());
    os << line;
  }
  return os.str();
}

}  // namespace gtw::flow
