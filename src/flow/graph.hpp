// Staged-dataflow engine over des::Scheduler.
//
// A StageGraph is a linear pipeline of Stage nodes.  Each stage has a body
// (continuation-passing: it receives the item and a Done callback, since the
// DES cannot block), a concurrency limit, and an input queue with a
// pluggable discipline:
//
//   kFifo       unbounded in-order queue;
//   kDropStale  when a slot frees, run only the newest waiting item and
//               discard the older ones (FIRE's "display the current brain
//               state" semantics);
//   kDropNewest bounded queue that discards arrivals while full;
//   kBlock      bounded queue with backpressure — a finished upstream item
//               keeps its upstream slot until there is room downstream.
//
// Graph admission generalizes fire::PipelineMode: max_in_flight == 1 with a
// kDropStale admission queue is the paper's sequential request/reply loop,
// max_in_flight == 0 is the fully pipelined mode where only per-stage
// concurrency limits throttle the flow.
//
// Every stage feeds a MetricsRegistry and, when a trace::TraceRecorder is
// attached, emits VAMPIR-style enter/leave events with the stage index as
// the trace rank; transfer stages add send/recv edges via StageContext.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "des/scheduler.hpp"
#include "flow/metrics.hpp"
#include "flow/tracing.hpp"

namespace gtw::flow {

class StageGraph;

// One unit of work travelling through the pipeline.  The reference handed
// to a stage body stays valid until the body calls Done.
struct Item {
  std::uint64_t id = 0;  // graph-assigned, increases in push order
  int index = 0;         // caller-assigned (scan number, frame number, ...)
  std::any payload;
};

using Done = std::function<void()>;

// Handle a stage body uses to reach the scheduler and the trace stream.
struct StageContext {
  StageGraph* graph = nullptr;
  int stage = 0;

  des::Scheduler& scheduler() const;
  des::SimTime now() const;
  // Record a message from this stage to `to_stage` (kSend at this rank) or
  // its receipt at `at_stage` coming from this rank (kRecv).  No-ops while
  // no recorder is attached.
  void trace_send(int to_stage, std::uint32_t tag, units::Bytes bytes) const;
  void trace_recv(int at_stage, std::uint32_t tag, units::Bytes bytes) const;
};

using StageFn = std::function<void(StageContext, Item&, Done)>;

enum class QueuePolicy { kFifo, kDropStale, kDropNewest, kBlock };

struct StageConfig {
  std::string name;
  int concurrency = 1;   // simultaneous bodies; 0 = unlimited
  QueuePolicy policy = QueuePolicy::kFifo;
  std::size_t capacity = 0;  // queue bound for kDropNewest/kBlock; 0 = none
  StageFn body;
};

struct GraphConfig {
  int max_in_flight = 0;  // 0 = unlimited (pipelined); 1 = request/reply
  QueuePolicy admission = QueuePolicy::kFifo;  // kFifo or kDropStale
};

class StageGraph {
 public:
  explicit StageGraph(des::Scheduler& sched, GraphConfig cfg = {});
  // Items still in the graph at teardown retire their spans as aborted so
  // the tracer's leak census stays clean (obs, DESIGN.md section 13).
  ~StageGraph();

  // Append a stage; returns its index (== its trace rank).
  int add_stage(StageConfig cfg);

  // Attach/detach the trace stream.  Stage indices are the trace ranks, so
  // the recorder should be built with ranks >= stage_count().
  void attach_trace(trace::TraceRecorder* rec) { tracer_.attach(rec); }

  // Called when an item leaves the last stage.
  void on_complete(std::function<void(const Item&)> cb) {
    complete_ = std::move(cb);
  }
  // Called when an item is discarded; stage == -1 means it was superseded
  // while still awaiting admission.
  void on_drop(std::function<void(const Item&, int stage)> cb) {
    drop_ = std::move(cb);
  }

  // Offer an item to the graph.  Admission control may queue or (under
  // kDropStale) later supersede it.
  void push(int index, std::any payload = {});

  // Graceful degradation for outages (wired to a net::FaultPlan observer):
  // while degraded, admission behaves as kDropStale regardless of the
  // configured policy — work piling up behind a dead network is superseded
  // by fresher items instead of queueing, the paper's "display the current
  // brain state" semantics under failure.  Clearing it starts the
  // recovery-time clock, stopped by the next completion.
  void set_degraded(bool on);
  bool degraded() const { return degraded_; }

  des::Scheduler& scheduler() { return sched_; }
  Tracer& tracer() { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  int stage_count() const { return static_cast<int>(stages_.size()); }
  const std::string& stage_name(int s) const;
  int in_flight() const { return in_flight_; }
  std::size_t waiting_admission() const { return admission_.size(); }

 private:
  friend struct StageContext;

  struct ItemState {
    Item item;
    int stage = -1;        // current stage once started
    bool in_body = false;  // body running, Done not yet called
    des::SimTime started;
    // Causal trace of this item (obs): minted at push() when the graph is
    // the workload origin, closed (or aborted, for drops) when the item
    // leaves.  Exactly one of wait_span/body_span is open at any moment
    // the item is inside the graph.
    des::TraceContext ctx;
    bool owns_trace = false;
    std::uint64_t wait_span = 0;  // queue-wait: admission, stage queue, block
    std::uint64_t body_span = 0;  // compute: stage body running
  };
  struct Stage {
    StageConfig cfg;
    std::deque<std::uint64_t> queue;    // waiting item ids, arrival order
    std::deque<std::uint64_t> blocked;  // finished, held by kBlock downstream
    int running = 0;
    bool pumping = false;  // re-entrancy guard for pump()
  };

  void admit_pending();
  void supersede_waiting();   // newest-wins trim of the admission queue
  bool accepts(int s) const;  // false when stage s's kBlock queue is full
  void enqueue(int s, std::uint64_t id);
  void pump(int s);
  void start(int s, std::uint64_t id);
  void finish(int s, std::uint64_t id);
  void advance(int s, std::uint64_t id);  // hand off past stage s
  void drain_blocked(int s);  // stage s's queue freed: unblock stage s-1
  void leave_graph(std::uint64_t id);
  void drop_queued(int s, std::uint64_t id);
  void note_queue(int s);

  des::Scheduler& sched_;
  GraphConfig cfg_;
  std::vector<Stage> stages_;
  // Node-stable storage: stage bodies hold Item& across scheduler delays.
  std::map<std::uint64_t, ItemState> live_;
  std::deque<std::uint64_t> admission_;
  std::uint64_t next_id_ = 1;
  int in_flight_ = 0;
  bool admitting_ = false;
  bool degraded_ = false;
  bool awaiting_recovery_ = false;
  des::SimTime degraded_since_;
  des::SimTime recovery_started_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  std::function<void(const Item&)> complete_;
  std::function<void(const Item&, int)> drop_;
};

}  // namespace gtw::flow
