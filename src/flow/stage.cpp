#include "flow/stage.hpp"

namespace gtw::flow {

StageConfig compute_stage(std::string name,
                          std::function<des::SimTime(const Item&)> duration,
                          int concurrency) {
  StageConfig cfg;
  cfg.name = std::move(name);
  cfg.concurrency = concurrency;
  cfg.body = [duration = std::move(duration)](StageContext ctx, Item& it,
                                              Done done) {
    ctx.scheduler().schedule_after(duration(it), std::move(done));
  };
  return cfg;
}

StageConfig delay_stage(std::string name, des::SimTime delay,
                        int concurrency) {
  StageConfig cfg;
  cfg.name = std::move(name);
  cfg.concurrency = concurrency;
  cfg.body = [delay](StageContext ctx, Item&, Done done) {
    ctx.scheduler().schedule_after(delay, std::move(done));
  };
  return cfg;
}

StageConfig inline_stage(std::string name,
                         std::function<void(StageContext, Item&)> fn,
                         int concurrency) {
  StageConfig cfg;
  cfg.name = std::move(name);
  cfg.concurrency = concurrency;
  cfg.body = [fn = std::move(fn)](StageContext ctx, Item& it, Done done) {
    fn(ctx, it);
    done();
  };
  return cfg;
}

StageConfig tcp_transfer_stage(std::string name, net::TcpConnection& conn,
                               int side,
                               std::function<units::Bytes(const Item&)> bytes,
                               int concurrency) {
  StageConfig cfg;
  cfg.name = std::move(name);
  cfg.concurrency = concurrency;
  cfg.body = [&conn, side, bytes = std::move(bytes)](StageContext ctx,
                                                     Item& it, Done done) {
    const units::Bytes n = bytes ? bytes(it) : units::Bytes::zero();
    const auto tag = static_cast<std::uint32_t>(it.index);
    ctx.trace_send(ctx.stage + 1, tag, n);
    conn.send(side, n, {},
              [ctx, tag, n, done = std::move(done)](const std::any&,
                                                    des::SimTime) {
                ctx.trace_recv(ctx.stage + 1, tag, n);
                done();
              });
  };
  return cfg;
}

StageConfig datagram_transfer_stage(
    std::string name, net::DatagramSocket& socket, net::HostId dst,
    std::uint16_t dst_port, std::function<units::Bytes(const Item&)> bytes,
    bool number_frames, int concurrency) {
  StageConfig cfg;
  cfg.name = std::move(name);
  cfg.concurrency = concurrency;
  cfg.body = [&socket, dst, dst_port, bytes = std::move(bytes),
              number_frames](StageContext ctx, Item& it, Done done) {
    const units::Bytes n = bytes ? bytes(it) : units::Bytes::zero();
    ctx.trace_send(ctx.stage + 1, static_cast<std::uint32_t>(it.index), n);
    socket.send_to(dst, dst_port, n,
                   number_frames
                       ? std::any{static_cast<std::int64_t>(it.index)}
                       : std::any{});
    done();
  };
  return cfg;
}

PeriodicSource::PeriodicSource(StageGraph& graph, Config cfg,
                               PayloadFn payload,
                               std::function<void()> on_last)
    : graph_(graph), cfg_(cfg), payload_(std::move(payload)),
      on_last_(std::move(on_last)) {}

void PeriodicSource::start() {
  if (cfg_.immediate_first) {
    tick();
    return;
  }
  timer_ = graph_.scheduler().schedule_after(des::SimTime::zero(),
                                             [this]() { tick(); });
}

void PeriodicSource::tick() {
  const int idx = emitted_++;
  graph_.push(idx, payload_ ? payload_(idx) : std::any{});
  if (cfg_.count != 0 && emitted_ >= cfg_.count) {
    if (on_last_) on_last_();
    return;
  }
  timer_ = graph_.scheduler().schedule_after(cfg_.interval,
                                             [this]() { tick(); });
}

}  // namespace gtw::flow
