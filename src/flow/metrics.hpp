// Per-stage metrics registry for the dataflow engine: every StageGraph
// feeds one of these, so any graph gets throughput / occupancy / queue-depth
// / drop accounting for free (the profile side of the VAMPIR tooling,
// without needing a trace attached).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "des/time.hpp"

namespace gtw::flow {

struct StageMetrics {
  std::string name;
  int concurrency = 1;            // 0 = unlimited

  std::uint64_t items_in = 0;     // bodies started
  std::uint64_t items_out = 0;    // bodies completed
  std::uint64_t dropped = 0;      // discarded at this stage's input queue
  std::size_t queue_depth = 0;    // current backlog
  std::size_t queue_peak = 0;     // high-water backlog
  des::SimTime busy;              // integrated body time over all slots
  des::SimTime first_start;
  des::SimTime last_finish;
  bool started = false;

  // Sustained completion rate over the stage's active span.
  double throughput_per_s() const;
  // Busy time over the active span; exceeds 1 when concurrent slots overlap.
  double occupancy() const;
};

class MetricsRegistry {
 public:
  StageMetrics& add_stage(const std::string& name, int concurrency);
  StageMetrics& stage(int i) { return stages_[static_cast<std::size_t>(i)]; }
  const StageMetrics& stage(int i) const {
    return stages_[static_cast<std::size_t>(i)];
  }
  const std::vector<StageMetrics>& stages() const { return stages_; }

  // Printable per-stage profile table plus the graph totals.
  std::string report() const;

  // Graph-level accounting.
  std::uint64_t pushed = 0;             // items offered to the graph
  std::uint64_t admitted = 0;           // items that entered stage 0
  std::uint64_t admission_dropped = 0;  // superseded while awaiting admission
  std::uint64_t completed = 0;          // items that left the last stage
  std::size_t admission_peak = 0;

  // Graceful-degradation accounting (StageGraph::set_degraded, usually
  // driven by a net::FaultPlan observer during scripted outages).
  std::uint64_t degraded_spans = 0;     // times degradation was entered
  std::uint64_t degraded_dropped = 0;   // items superseded while degraded
  std::uint64_t recoveries = 0;         // completions observed post-outage
  des::SimTime degraded_time;           // accumulated degraded span
  des::SimTime last_recovery_time;      // outage end -> next completion

 private:
  std::vector<StageMetrics> stages_;
};

}  // namespace gtw::flow
