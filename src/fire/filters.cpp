#include "fire/filters.hpp"

#include <algorithm>
#include <array>

namespace gtw::fire {

VolumeF median_filter_3x3(const VolumeF& in) {
  const Dims d = in.dims();
  VolumeF out(d);
  std::array<float, 9> window;
  for (int z = 0; z < d.nz; ++z) {
    for (int y = 0; y < d.ny; ++y) {
      for (int x = 0; x < d.nx; ++x) {
        int n = 0;
        for (int dy = -1; dy <= 1; ++dy)
          for (int dx = -1; dx <= 1; ++dx)
            window[static_cast<std::size_t>(n++)] =
                in.clamped(x + dx, y + dy, z);
        std::nth_element(window.begin(), window.begin() + 4, window.end());
        out.at(x, y, z) = window[4];
      }
    }
  }
  return out;
}

VolumeF average_filter_3x3x3(const VolumeF& in) {
  const Dims d = in.dims();
  VolumeF out(d);
  for (int z = 0; z < d.nz; ++z) {
    for (int y = 0; y < d.ny; ++y) {
      for (int x = 0; x < d.nx; ++x) {
        double acc = 0.0;
        for (int dz = -1; dz <= 1; ++dz)
          for (int dy = -1; dy <= 1; ++dy)
            for (int dx = -1; dx <= 1; ++dx)
              acc += in.clamped(x + dx, y + dy, z + dz);
        out.at(x, y, z) = static_cast<float>(acc / 27.0);
      }
    }
  }
  return out;
}

}  // namespace gtw::fire
