#include "fire/detrend.hpp"

#include <cmath>

#include "linalg/solve.hpp"

namespace gtw::fire {

IncrementalDetrend::IncrementalDetrend(Dims dims, DetrendConfig cfg)
    : dims_(dims), cfg_(cfg),
      k_(cfg.poly_order + 1 + (cfg.slow_cosine ? 1 : 0)),
      gram_(static_cast<std::size_t>(k_), static_cast<std::size_t>(k_)),
      bt_(static_cast<std::size_t>(k_),
          std::vector<double>(dims.voxels(), 0.0)) {}

double IncrementalDetrend::basis(int j, int t) const {
  const double u =
      static_cast<double>(t) / std::max(1, cfg_.expected_scans - 1);
  if (j <= cfg_.poly_order) {
    double v = 1.0;
    for (int p = 0; p < j; ++p) v *= u;
    return v;
  }
  return std::cos(M_PI * u);  // slow half-cosine drift
}

VolumeF IncrementalDetrend::add_scan(const VolumeF& image) {
  const int t = t_++;
  std::vector<double> row(static_cast<std::size_t>(k_));
  for (int j = 0; j < k_; ++j) row[static_cast<std::size_t>(j)] = basis(j, t);

  // Update the shared Gram matrix.
  for (int a = 0; a < k_; ++a)
    for (int b = 0; b < k_; ++b)
      gram_(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) +=
          row[static_cast<std::size_t>(a)] * row[static_cast<std::size_t>(b)];

  // Update per-voxel projections.
  const std::size_t n = dims_.voxels();
  for (int j = 0; j < k_; ++j) {
    const double bj = row[static_cast<std::size_t>(j)];
    std::vector<double>& acc = bt_[static_cast<std::size_t>(j)];
    for (std::size_t i = 0; i < n; ++i)
      acc[i] += bj * static_cast<double>(image[i]);
  }

  VolumeF out(dims_);
  // Warm-up: over a short prefix the scaled basis functions are nearly
  // collinear (the slow cosine looks constant), so the full fit is wildly
  // ill-conditioned.  Until enough scans are in, detrend with the running
  // mean only (constant term), which is always well conditioned.
  if (t + 1 < std::max(4 * k_, 8)) {
    const std::vector<double>& mean_acc = bt_[0];  // basis 0 is constant 1
    const std::size_t n0 = dims_.voxels();
    for (std::size_t i = 0; i < n0; ++i)
      out[i] = static_cast<float>(static_cast<double>(image[i]) -
                                  mean_acc[i] / (t + 1));
    return out;
  }

  // Regularised solve shared across voxels: factor G once per scan.  The
  // ridge scales with the Gram trace so conditioning is size-independent.
  linalg::Matrix g = gram_;
  double trace = 0.0;
  for (int a = 0; a < k_; ++a)
    trace += g(static_cast<std::size_t>(a), static_cast<std::size_t>(a));
  for (int a = 0; a < k_; ++a)
    g(static_cast<std::size_t>(a), static_cast<std::size_t>(a)) +=
        1e-8 * trace / k_;

  // coefficients c_i = G^{-1} b_i; we need B_t . c_i per voxel.  Solve for
  // the k "influence" weights w = G^{-1} B_t once, then B_t.c_i = w.b_i.
  linalg::Vector w = linalg::solve_spd(g, row);
  for (std::size_t i = 0; i < n; ++i) {
    double fitted = 0.0;
    for (int j = 0; j < k_; ++j)
      fitted += w[static_cast<std::size_t>(j)] * bt_[static_cast<std::size_t>(j)][i];
    out[i] = static_cast<float>(static_cast<double>(image[i]) - fitted);
  }
  return out;
}

}  // namespace gtw::fire
