// Incremental per-voxel correlation against a fixed reference vector — the
// core analysis step of FIRE: "For each voxel, the correlation between the
// measured signal and a fixed reference vector is calculated" within the
// 2-second acquisition time.  Running sums make each scan an O(voxels)
// update; the map is available after every scan.
#pragma once

#include <cstdint>
#include <vector>

#include "fire/volume.hpp"

namespace gtw::fire {

class IncrementalCorrelation {
 public:
  explicit IncrementalCorrelation(Dims dims);

  // Feed the image acquired at scan index `t` with reference value `ref_t`.
  void add_scan(const VolumeF& image, double ref_t);

  int scans() const { return n_; }

  // Correlation coefficient per voxel over the scans so far (0 where the
  // variance vanishes).
  VolumeF correlation_map() const;

  // Per-voxel r for a single voxel (for ROI time-course style queries).
  double correlation_at(std::size_t voxel) const;

  Dims dims() const { return dims_; }

 private:
  Dims dims_;
  int n_ = 0;
  double sum_y_ = 0.0, sum_yy_ = 0.0;
  std::vector<double> sum_x_, sum_xx_, sum_xy_;
};

// Operations per voxel per scan for the execution model (3 multiply-adds
// plus loads/stores in the update; map evaluation ~10 ops amortised).
constexpr double kCorrelationOpsPerVoxelScan = 8.0;

}  // namespace gtw::fire
