// Spatial filters of the FIRE processing pipeline (paper section 4):
// "a median filter is used to reduce noise in the unprocessed picture.
// After the processing pipeline, the data can be smoothened by an averaging
// filter."  Both operate slice-wise / block-wise with edge clamping and
// expose work estimates for the parallel execution model.
#pragma once

#include "fire/volume.hpp"

namespace gtw::fire {

// In-plane 3x3 median per slice (robust impulse/noise suppression on the
// raw EPI images before analysis).
VolumeF median_filter_3x3(const VolumeF& in);

// 3x3x3 boxcar smoothing (post-pipeline spatial smoothing of maps).
VolumeF average_filter_3x3x3(const VolumeF& in);

// Work accounting used by exec::time_on — effective operations per voxel,
// matching the actual implementations above (9-element gather plus partial
// selection with its branchy comparisons; 27-element gather + accumulate).
constexpr double kMedianOpsPerVoxel = 66.0;
constexpr double kAverageOpsPerVoxel = 60.0;

}  // namespace gtw::fire
