// 3-D movement correction: "even small head movements of the subject tend
// to produce artefacts in the correlation coefficient due to the high
// intrinsic contrast of the MR images ... Here an iterative linear scheme
// is used" (paper section 4).
//
// Gauss-Newton on the 6 rigid parameters: each iteration warps the scan by
// the current estimate, linearises the intensity residual against the
// reference through the warped image's spatial gradients, and solves the
// 6x6 normal equations.
#pragma once

#include "fire/rigid.hpp"
#include "fire/volume.hpp"

namespace gtw::fire {

struct MotionConfig {
  int max_iterations = 12;
  double tolerance = 1e-4;       // stop when the update is this small
  double foreground_fraction = 0.2;  // of max intensity; masks air voxels
  // Estimate on 3x3x3-smoothed images (the transform is applied to the
  // original scan).  Sharp tissue/air edges otherwise make trilinear
  // interpolation error dominate the residual and bias the fit.
  bool presmooth = true;
};

struct MotionResult {
  RigidTransform estimate;  // transform that aligns the scan to the reference
  VolumeF corrected;        // scan resampled into the reference frame
  int iterations = 0;
  double initial_rmse = 0.0;
  double final_rmse = 0.0;
};

class MotionCorrector {
 public:
  explicit MotionCorrector(VolumeF reference, MotionConfig cfg = {});

  MotionResult correct(const VolumeF& scan) const;

  const VolumeF& reference() const { return ref_; }

 private:
  VolumeF ref_;
  MotionConfig cfg_;
  float mask_threshold_ = 0.0f;
};

// Execution-model work accounting: per voxel per Gauss-Newton iteration,
// a trilinear warp (~33 ops), central gradients (~18), and the J^T J / J^T r
// accumulation (~62).
constexpr double kMotionOpsPerVoxelIter = 113.0;
constexpr int kMotionTypicalIters = 8;

}  // namespace gtw::fire
