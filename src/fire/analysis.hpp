// The FIRE analysis chain on real data: median filter -> 3-D motion
// correction -> detrending -> incremental correlation, with RVO on the
// accumulated series.  This is the numerics the RT-client either runs
// locally on a workstation or delegates to the Cray T3E "in a 'remote
// procedure call' like manner" (paper section 4); the pipeline module
// decides *where* it runs, this class decides *what* runs.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "fire/correlation.hpp"
#include "fire/detrend.hpp"
#include "fire/filters.hpp"
#include "fire/motion.hpp"
#include "fire/reference.hpp"
#include "fire/rvo.hpp"
#include "fire/volume.hpp"

namespace gtw::fire {

struct AnalysisConfig {
  bool median_filter = true;
  bool motion_correction = true;
  bool detrend = true;
  bool smooth_output = false;  // averaging filter on the correlation map
  StimulusDesign stimulus;
  HrfParams hrf;
  double tr_s = 2.0;
  DetrendConfig detrend_cfg;
  MotionConfig motion_cfg;
};

class AnalysisEngine {
 public:
  AnalysisEngine(Dims dims, AnalysisConfig cfg);

  // Process the next raw scan; returns the fully preprocessed image that
  // entered the correlation. Scans must arrive in acquisition order.
  VolumeF process_scan(const VolumeF& raw);

  int scans() const { return corr_.scans(); }
  VolumeF correlation_map() const;
  double correlation_at(std::size_t voxel) const {
    return corr_.correlation_at(voxel);
  }

  // Motion estimate of the most recent scan (identity when the module is
  // off or on the reference scan).
  const RigidTransform& last_motion() const { return last_motion_; }

  // Reference-vector optimisation over everything processed so far.
  RvoResult run_rvo(const RvoConfig& cfg) const;

  // Mean time course over a region of interest (list of voxel indices) —
  // the paper's GUI displays exactly these per-ROI signal curves (fig. 3).
  std::vector<double> roi_time_course(
      const std::vector<std::size_t>& voxels) const;

  const std::vector<double>& reference() const { return reference_; }
  const AnalysisConfig& config() const { return cfg_; }

 private:
  Dims dims_;
  AnalysisConfig cfg_;
  std::vector<double> reference_;
  std::optional<MotionCorrector> motion_;
  std::optional<IncrementalDetrend> detrend_;
  IncrementalCorrelation corr_;
  std::vector<VolumeF> processed_series_;  // feeds RVO and ROI queries
  RigidTransform last_motion_;
};

}  // namespace gtw::fire
