// The distributed realtime-fMRI pipeline of Figure 2: MRI scanner ->
// RT-server on the scanner front-end -> Cray T3E (processing) -> RT-client
// (2-D display), all over the simulated testbed.
//
// Two orchestration modes:
//  - kSequential: the paper's implementation — "a new image is requested
//    from the RT-server only after the processing and displaying of the
//    previous one is completed", so throughput is the *sum* of the client
//    and T3E delays (2.7 s in the paper's example);
//  - kPipelined: the improvement the paper points out it does NOT do —
//    stages overlap, throughput becomes the *maximum* stage time.  This is
//    the A2 ablation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "des/scheduler.hpp"
#include "exec/machine.hpp"
#include "fire/analysis.hpp"
#include "fire/workload.hpp"
#include "flow/graph.hpp"
#include "net/host.hpp"
#include "net/tcp.hpp"
#include "units/units.hpp"

namespace gtw::fire {

// Raw-image supplier for scan index t (the scanner module provides one via
// FmriSeriesGenerator; tests can inject synthetic volumes directly).
using ImageSource = std::function<VolumeF(int)>;

enum class PipelineMode { kSequential, kPipelined };
enum class ProcessingSite { kRemoteT3e, kLocalWorkstation };

struct PipelineConfig {
  double tr_s = 3.0;    // scanner repetition time
  int n_scans = 20;
  int t3e_pes = 256;
  PipelineMode mode = PipelineMode::kSequential;
  ProcessingSite site = ProcessingSite::kRemoteT3e;

  // Module switches ("the use of each module is optional and can be
  // controlled during runtime via the GUI").
  bool enable_filter = true;
  bool enable_motion = true;
  bool enable_rvo = true;
  bool enable_detrend = true;

  FireWorkParams work;
  exec::MachineProfile t3e = exec::MachineProfile::t3e600();
  exec::MachineProfile workstation = exec::MachineProfile::workstation();

  // Paper-measured constants outside our models: the scanner needs ~1.5 s
  // to reconstruct and hand a 64x64x16 image to the RT-server, the client
  // needs ~0.6 s from data arrival to pixels on screen, and FIRE's RPC
  // control handshakes cost ~0.9 s per image on top of the data transfers
  // (together with them: the paper's 1.1 s "transfers and control").
  des::SimTime scan_to_server = des::SimTime::seconds(1.5);
  des::SimTime client_display = des::SimTime::seconds(0.6);
  des::SimTime rpc_overhead = des::SimTime::seconds(0.9);

  units::Bytes image_bytes{64 * 64 * 16 * 2};       // raw 16-bit voxels
  units::Bytes result_bytes{2 * 64 * 64 * 16 * 2};  // anat + functional
};

struct ScanRecord {
  int index = 0;
  des::SimTime acquired;      // scan finished in the magnet
  des::SimTime at_server;     // raw image at the RT-server
  des::SimTime sent;          // transfer toward the compute site started
  des::SimTime at_compute;    // image at the T3E (or client, local mode)
  des::SimTime processed;     // all enabled modules done
  des::SimTime at_client;     // results back at the RT-client
  des::SimTime displayed;     // on the 2-D GUI
};

struct PipelineResult {
  std::vector<ScanRecord> records;
  // Means over the steady-state scans (the first is warm-up).
  double mean_total_delay_s = 0.0;      // acquired -> displayed
  double mean_transfer_control_s = 0.0; // at_server -> at_compute -> at_client
                                        // minus compute (paper's 1.1 s item)
  double mean_compute_s = 0.0;
  double sustained_period_s = 0.0;      // steady-state display interval
  // Smallest scanner repetition time the pipeline keeps up with.
  double min_safe_tr_s = 0.0;
  // Scans the sequential client skipped because it was still busy when a
  // newer image superseded them (0 when the pipeline keeps up with TR).
  int scans_skipped = 0;
};

class FmriPipeline {
 public:
  struct Hosts {
    net::Host* scanner_frontend = nullptr;
    net::Host* compute_frontend = nullptr;  // T3E front-end
    net::Host* client = nullptr;
  };

  FmriPipeline(des::Scheduler& sched, Hosts hosts, PipelineConfig cfg,
               ImageSource source = nullptr, AnalysisEngine* engine = nullptr);

  // Schedules all scans; run the scheduler, then collect results.
  void start();
  PipelineResult result() const;

  // Compute time per image for the enabled modules at `pes` PEs.
  des::SimTime compute_time(int pes) const;

  // Record VAMPIR-style stage events (ranks = transfer/compute/return/
  // display) into `rec`; build it with >= 4 ranks.
  void attach_trace(trace::TraceRecorder* rec) { graph_.attach_trace(rec); }
  // Per-stage throughput/occupancy/queue accounting from the flow engine.
  const flow::MetricsRegistry& metrics() const { return graph_.metrics(); }

  // The underlying flow graph, so callers can wire failure handling — a
  // net::FaultPlan observer toggling set_degraded during scripted WAN
  // outages, custom drop accounting, etc.
  flow::StageGraph& graph() { return graph_; }

 private:
  static flow::GraphConfig graph_config(const PipelineConfig& cfg);
  void build_graph();
  void on_image_at_server(int index);

  des::Scheduler& sched_;
  Hosts hosts_;
  PipelineConfig cfg_;
  ImageSource source_;
  AnalysisEngine* engine_;

  std::unique_ptr<net::TcpConnection> to_compute_;   // server -> T3E
  std::unique_ptr<net::TcpConnection> to_client_;    // T3E -> client

  // Both orchestration modes are admission policies on the same 4-stage
  // graph: sequential = one scan in flight with newest-wins admission,
  // pipelined = free admission with the transfer and compute stages each
  // serialised at concurrency 1.
  flow::StageGraph graph_;
  std::vector<ScanRecord> records_;
};

}  // namespace gtw::fire
