#include "fire/motion.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "fire/filters.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"

namespace gtw::fire {

MotionCorrector::MotionCorrector(VolumeF reference, MotionConfig cfg)
    : ref_(cfg.presmooth ? average_filter_3x3x3(reference)
                         : std::move(reference)),
      cfg_(cfg) {
  float peak = 0.0f;
  for (std::size_t i = 0; i < ref_.size(); ++i) peak = std::max(peak, ref_[i]);
  mask_threshold_ = peak * static_cast<float>(cfg_.foreground_fraction);
}

MotionResult MotionCorrector::correct(const VolumeF& scan) const {
  const Dims d = ref_.dims();
  const double cx = (d.nx - 1) / 2.0, cy = (d.ny - 1) / 2.0,
               cz = (d.nz - 1) / 2.0;

  MotionResult result;
  RigidTransform theta;

  const VolumeF smooth_scan =
      cfg_.presmooth ? average_filter_3x3x3(scan) : scan;
  VolumeF warped = smooth_scan;
  for (int iter = 0; iter < cfg_.max_iterations; ++iter) {
    // J^T J (6x6) and J^T r accumulated over foreground voxels.
    linalg::Matrix jtj(6, 6);
    linalg::Vector jtr(6, 0.0);
    double sse = 0.0;
    std::size_t count = 0;

    for (int z = 1; z < d.nz - 1; ++z) {
      for (int y = 1; y < d.ny - 1; ++y) {
        for (int x = 1; x < d.nx - 1; ++x) {
          const float rv = ref_.at(x, y, z);
          if (rv < mask_threshold_) continue;
          const double r = warped.at(x, y, z) - rv;
          // Central-difference gradient of the warped image.
          const double gx =
              0.5 * (warped.at(x + 1, y, z) - warped.at(x - 1, y, z));
          const double gy =
              0.5 * (warped.at(x, y + 1, z) - warped.at(x, y - 1, z));
          const double gz =
              0.5 * (warped.at(x, y, z + 1) - warped.at(x, y, z - 1));
          const double px = x - cx, py = y - cy, pz = z - cz;
          // d(position)/d(theta_j) for [tx ty tz rx ry rz].
          const std::array<double, 6> jrow = {
              gx,
              gy,
              gz,
              gy * (-pz) + gz * py,
              gx * pz + gz * (-px),
              gx * (-py) + gy * px,
          };
          for (int a = 0; a < 6; ++a) {
            jtr[static_cast<std::size_t>(a)] +=
                jrow[static_cast<std::size_t>(a)] * r;
            for (int b = a; b < 6; ++b)
              jtj(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) +=
                  jrow[static_cast<std::size_t>(a)] *
                  jrow[static_cast<std::size_t>(b)];
          }
          sse += r * r;
          ++count;
        }
      }
    }
    if (count == 0) break;
    for (int a = 0; a < 6; ++a)
      for (int b = 0; b < a; ++b)
        jtj(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) =
            jtj(static_cast<std::size_t>(b), static_cast<std::size_t>(a));
    // Levenberg damping keeps the step sane when gradients are weak.
    for (int a = 0; a < 6; ++a)
      jtj(static_cast<std::size_t>(a), static_cast<std::size_t>(a)) *= 1.001;

    const double rmse = std::sqrt(sse / static_cast<double>(count));
    if (iter == 0) result.initial_rmse = rmse;
    result.final_rmse = rmse;
    result.iterations = iter;

    linalg::Vector delta;
    try {
      delta = linalg::solve_spd(jtj, jtr);
    } catch (const std::exception&) {
      break;  // degenerate system (e.g. uniform image): keep current estimate
    }

    // Gauss-Newton step (residual = warped - ref, so subtract).
    auto arr = theta.as_array();
    double step_max = 0.0;
    for (int a = 0; a < 6; ++a) {
      arr[static_cast<std::size_t>(a)] -= delta[static_cast<std::size_t>(a)];
      step_max = std::max(step_max, std::abs(delta[static_cast<std::size_t>(a)]));
    }
    theta = RigidTransform::from_array(arr);
    warped = resample(smooth_scan, theta);
    result.iterations = iter + 1;
    if (step_max < cfg_.tolerance) break;
  }

  result.estimate = theta;
  // Apply the estimated transform to the *original* scan.
  result.corrected =
      cfg_.presmooth && theta.max_abs() > 0.0 ? resample(scan, theta)
      : cfg_.presmooth                        ? scan
                                              : std::move(warped);
  return result;
}

}  // namespace gtw::fire
