// 3-D image volume, the unit of data in the FIRE pipeline (Functional
// Imaging in REaltime, developed at the Institute of Medicine, FZ Jülich).
// Typical functional matrix in the paper: 64x64x16 voxels; anatomical
// reference volumes are 256x256x128.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gtw::fire {

struct Dims {
  int nx = 0, ny = 0, nz = 0;
  std::size_t voxels() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }
  bool operator==(const Dims&) const = default;
};

template <typename T>
class Volume {
 public:
  Volume() = default;
  explicit Volume(Dims d, T fill = T{})
      : dims_(d), data_(d.voxels(), fill) {}
  Volume(int nx, int ny, int nz, T fill = T{})
      : Volume(Dims{nx, ny, nz}, fill) {}

  const Dims& dims() const { return dims_; }
  std::size_t size() const { return data_.size(); }
  std::size_t size_bytes() const { return data_.size() * sizeof(T); }
  bool empty() const { return data_.empty(); }

  T& at(int x, int y, int z) { return data_[index(x, y, z)]; }
  T at(int x, int y, int z) const { return data_[index(x, y, z)]; }
  T& operator[](std::size_t i) { return data_[i]; }
  T operator[](std::size_t i) const { return data_[i]; }

  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

  // Clamped access: out-of-bounds coordinates read the nearest edge voxel.
  T clamped(int x, int y, int z) const {
    x = std::min(std::max(x, 0), dims_.nx - 1);
    y = std::min(std::max(y, 0), dims_.ny - 1);
    z = std::min(std::max(z, 0), dims_.nz - 1);
    return data_[index(x, y, z)];
  }

  // Trilinear interpolation at a continuous voxel coordinate; coordinates
  // outside the volume are clamped to the border.
  double sample(double x, double y, double z) const {
    const int x0 = static_cast<int>(std::floor(x));
    const int y0 = static_cast<int>(std::floor(y));
    const int z0 = static_cast<int>(std::floor(z));
    const double fx = x - x0, fy = y - y0, fz = z - z0;
    double acc = 0.0;
    for (int dz = 0; dz <= 1; ++dz) {
      const double wz = dz != 0 ? fz : 1.0 - fz;
      if (wz == 0.0) continue;
      for (int dy = 0; dy <= 1; ++dy) {
        const double wy = dy != 0 ? fy : 1.0 - fy;
        if (wy == 0.0) continue;
        for (int dx = 0; dx <= 1; ++dx) {
          const double wx = dx != 0 ? fx : 1.0 - fx;
          if (wx == 0.0) continue;
          acc += wx * wy * wz *
                 static_cast<double>(clamped(x0 + dx, y0 + dy, z0 + dz));
        }
      }
    }
    return acc;
  }

  double mean() const {
    if (data_.empty()) return 0.0;
    double s = 0.0;
    for (const T& v : data_) s += static_cast<double>(v);
    return s / static_cast<double>(data_.size());
  }

 private:
  std::size_t index(int x, int y, int z) const {
    assert(x >= 0 && x < dims_.nx && y >= 0 && y < dims_.ny && z >= 0 &&
           z < dims_.nz);
    return (static_cast<std::size_t>(z) * dims_.ny +
            static_cast<std::size_t>(y)) *
               dims_.nx +
           static_cast<std::size_t>(x);
  }

  Dims dims_;
  std::vector<T> data_;
};

using VolumeF = Volume<float>;

}  // namespace gtw::fire
