// Incremental detrending: "the measured signal often includes slow baseline
// drifts.  A compensation using a few detrending-vectors can compensate for
// that" (paper section 4).
//
// The basis holds a constant, polynomial drift terms and optionally a slow
// cosine.  Per voxel we keep b = B^T x updated incrementally; the detrended
// value of the newest scan is x_t - B_t (G_t^{-1} b) where G_t = B^T B over
// the scans so far depends only on t and is shared by all voxels.
#pragma once

#include <vector>

#include "fire/volume.hpp"
#include "linalg/matrix.hpp"

namespace gtw::fire {

struct DetrendConfig {
  int poly_order = 1;       // 0 = constant only, 1 = +linear, 2 = +quadratic
  bool slow_cosine = true;  // half-cosine over the measurement window
  int expected_scans = 128; // horizon used to scale the basis functions
};

class IncrementalDetrend {
 public:
  IncrementalDetrend(Dims dims, DetrendConfig cfg);

  int basis_size() const { return k_; }

  // Feed the scan at index `t` (consecutive from 0); returns the detrended
  // image (residual after projecting out the basis fitted to scans 0..t).
  VolumeF add_scan(const VolumeF& image);

  int scans() const { return t_; }

 private:
  double basis(int j, int t) const;

  Dims dims_;
  DetrendConfig cfg_;
  int k_ = 0;
  int t_ = 0;
  linalg::Matrix gram_;                 // G = B^T B accumulated over scans
  std::vector<std::vector<double>> bt_; // per basis fn: B^T x per voxel
};

// Work accounting: per voxel per scan ~2k multiply-adds for the update plus
// the (shared) small solve; evaluation ~k.
constexpr double kDetrendOpsPerVoxelScanPerBasis = 4.0;

}  // namespace gtw::fire
