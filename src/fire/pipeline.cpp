#include "fire/pipeline.hpp"

#include <algorithm>

namespace gtw::fire {

FmriPipeline::FmriPipeline(des::Scheduler& sched, Hosts hosts,
                           PipelineConfig cfg, ImageSource source,
                           AnalysisEngine* engine)
    : sched_(sched), hosts_(hosts), cfg_(cfg), source_(std::move(source)),
      engine_(engine) {
  records_.resize(static_cast<std::size_t>(cfg_.n_scans));
  net::TcpConfig tcp;
  tcp.recv_buffer = 4u << 20;
  if (cfg_.site == ProcessingSite::kRemoteT3e) {
    to_compute_ = std::make_unique<net::TcpConnection>(
        *hosts_.scanner_frontend, *hosts_.compute_frontend, 6000, 6001, tcp);
    to_client_ = std::make_unique<net::TcpConnection>(
        *hosts_.compute_frontend, *hosts_.client, 6002, 6003, tcp);
  } else {
    to_compute_ = std::make_unique<net::TcpConnection>(
        *hosts_.scanner_frontend, *hosts_.client, 6000, 6001, tcp);
  }
}

des::SimTime FmriPipeline::compute_time(int pes) const {
  const FireWork w = make_fire_work(cfg_.work);
  exec::WorkEstimate total;
  if (cfg_.enable_filter) total += w.filter;
  if (cfg_.enable_motion) total += w.motion;
  if (cfg_.enable_rvo) total += w.rvo;
  if (cfg_.enable_detrend) total += w.detrend;
  total += w.correlation;

  if (cfg_.site == ProcessingSite::kLocalWorkstation)
    return exec::time_on(cfg_.workstation, total, 1);

  // Sum per-module so each module's own parallelism cap applies, exactly as
  // the Table 1 columns do.
  des::SimTime t = des::SimTime::zero();
  if (cfg_.enable_filter) t += exec::time_on(cfg_.t3e, w.filter, pes);
  if (cfg_.enable_motion) t += exec::time_on(cfg_.t3e, w.motion, pes);
  if (cfg_.enable_rvo) t += exec::time_on(cfg_.t3e, w.rvo, pes);
  if (cfg_.enable_detrend) t += exec::time_on(cfg_.t3e, w.detrend, pes);
  t += exec::time_on(cfg_.t3e, w.correlation, pes);
  return t;
}

void FmriPipeline::start() {
  for (int i = 0; i < cfg_.n_scans; ++i) {
    ScanRecord& rec = records_[static_cast<std::size_t>(i)];
    rec.index = i;
    rec.acquired = des::SimTime::seconds(cfg_.tr_s * (i + 1));
    sched_.schedule_at(rec.acquired + cfg_.scan_to_server,
                       [this, i]() { on_image_at_server(i); });
  }
}

void FmriPipeline::on_image_at_server(int index) {
  records_[static_cast<std::size_t>(index)].at_server = sched_.now();
  next_ready_ = std::max(next_ready_, index + 1);
  maybe_dispatch();
}

void FmriPipeline::maybe_dispatch() {
  if (next_dispatch_ >= cfg_.n_scans || next_dispatch_ >= next_ready_) return;
  if (cfg_.mode == PipelineMode::kSequential) {
    if (stage_busy_) return;
    // The RT-client asks for "the next image"; the RT-server answers with
    // the newest one it holds, so a slow pipeline skips stale scans rather
    // than building a backlog (FIRE displays the current brain state).
    if (next_ready_ - 1 > next_dispatch_) {
      skipped_ += next_ready_ - 1 - next_dispatch_;
      next_dispatch_ = next_ready_ - 1;
    }
    stage_busy_ = true;
  } else {
    if (transfer_busy_) return;
    transfer_busy_ = true;
  }
  dispatch(next_dispatch_++);
}

void FmriPipeline::dispatch(int index) {
  ScanRecord& rec = records_[static_cast<std::size_t>(index)];
  rec.sent = sched_.now();

  // Half the RPC handshake budget wraps the forward leg, half the return.
  const des::SimTime half_rpc =
      des::SimTime::picoseconds(cfg_.rpc_overhead.ps() / 2);

  sched_.schedule_after(half_rpc, [this, index]() {
    to_compute_->send(
        0, cfg_.image_bytes, {},
        [this, index](const std::any&, des::SimTime) {
          ScanRecord& rec = records_[static_cast<std::size_t>(index)];
          rec.at_compute = sched_.now();
          if (cfg_.mode == PipelineMode::kPipelined) {
            transfer_busy_ = false;
            maybe_dispatch();
          }

          // Run the real numerics, if wired up (timing still from the
          // execution model — this host's wall clock is irrelevant).
          if (source_ && engine_ != nullptr)
            engine_->process_scan(source_(index));

          auto after_compute = [this, index]() {
            ScanRecord& r2 = records_[static_cast<std::size_t>(index)];
            r2.processed = sched_.now();
            const des::SimTime half_rpc2 =
                des::SimTime::picoseconds(cfg_.rpc_overhead.ps() / 2);
            auto deliver = [this, index](const std::any&, des::SimTime) {
              ScanRecord& r3 = records_[static_cast<std::size_t>(index)];
              r3.at_client = sched_.now();
              sched_.schedule_after(cfg_.client_display, [this, index]() {
                records_[static_cast<std::size_t>(index)].displayed =
                    sched_.now();
                if (cfg_.mode == PipelineMode::kSequential) {
                  stage_busy_ = false;
                  maybe_dispatch();
                }
              });
            };
            if (to_client_) {
              sched_.schedule_after(half_rpc2, [this, deliver]() {
                to_client_->send(0, cfg_.result_bytes, {}, deliver);
              });
            } else {
              // Local mode: results are already on the client.
              sched_.schedule_after(half_rpc2, [this, deliver]() {
                deliver({}, sched_.now());
              });
            }
          };

          const des::SimTime ct = compute_time(cfg_.t3e_pes);
          if (cfg_.mode == PipelineMode::kPipelined) {
            // Serialise the compute stage on the (single) T3E partition.
            enqueue_compute(ct, after_compute);
          } else {
            sched_.schedule_after(ct, after_compute);
          }
        });
  });
}

void FmriPipeline::enqueue_compute(des::SimTime duration,
                                   std::function<void()> done) {
  compute_queue_.push_back(ComputeJob{duration, std::move(done)});
  pump_compute();
}

void FmriPipeline::pump_compute() {
  if (compute_busy_ || compute_queue_.empty()) return;
  compute_busy_ = true;
  ComputeJob job = std::move(compute_queue_.front());
  compute_queue_.pop_front();
  sched_.schedule_after(job.duration,
                        [this, done = std::move(job.done)]() {
                          compute_busy_ = false;
                          done();
                          pump_compute();
                        });
}

PipelineResult FmriPipeline::result() const {
  PipelineResult out;
  out.records = records_;
  out.scans_skipped = skipped_;
  double total = 0.0, transfer = 0.0, compute = 0.0;
  int n = 0;
  std::vector<double> display_times;
  for (const ScanRecord& r : records_) {
    if (r.displayed == des::SimTime::zero()) continue;  // never finished
    display_times.push_back(r.displayed.sec());
    if (r.index == 0) continue;  // warm-up
    total += (r.displayed - r.acquired).sec();
    transfer += (r.at_compute - r.sent).sec() +
                (r.at_client - r.processed).sec();
    compute += (r.processed - r.at_compute).sec();
    ++n;
  }
  if (n > 0) {
    out.mean_total_delay_s = total / n;
    out.mean_transfer_control_s = transfer / n;
    out.mean_compute_s = compute / n;
  }
  if (display_times.size() >= 2) {
    // Steady-state period: mean gap over the second half of the run.
    const std::size_t half = display_times.size() / 2;
    out.sustained_period_s =
        (display_times.back() - display_times[half]) /
        static_cast<double>(display_times.size() - 1 - half);
    // The scanner is safe as long as TR covers the pipeline period net of
    // the scanner's own cadence contribution.
    const double busy = out.mean_transfer_control_s + out.mean_compute_s +
                        0.6;  // display
    out.min_safe_tr_s = cfg_.mode == PipelineMode::kSequential
        ? busy
        : std::max({(records_[0].at_compute - records_[0].sent).sec(),
                    out.mean_compute_s, 0.6});
  }
  return out;
}

}  // namespace gtw::fire
