#include "fire/pipeline.hpp"

#include <algorithm>

namespace gtw::fire {

flow::GraphConfig FmriPipeline::graph_config(const PipelineConfig& cfg) {
  flow::GraphConfig g;
  if (cfg.mode == PipelineMode::kSequential) {
    // "A new image is requested from the RT-server only after the
    // processing and displaying of the previous one is completed"; the
    // RT-server answers with the newest image it holds, so a slow loop
    // skips stale scans rather than building a backlog.
    g.max_in_flight = 1;
    g.admission = flow::QueuePolicy::kDropStale;
  }
  return g;
}

FmriPipeline::FmriPipeline(des::Scheduler& sched, Hosts hosts,
                           PipelineConfig cfg, ImageSource source,
                           AnalysisEngine* engine)
    : sched_(sched), hosts_(hosts), cfg_(cfg), source_(std::move(source)),
      engine_(engine), graph_(sched, graph_config(cfg)) {
  records_.resize(static_cast<std::size_t>(cfg_.n_scans));
  net::TcpConfig tcp;
  tcp.recv_buffer = units::Bytes{4u << 20};
  if (cfg_.site == ProcessingSite::kRemoteT3e) {
    to_compute_ = std::make_unique<net::TcpConnection>(
        *hosts_.scanner_frontend, *hosts_.compute_frontend, 6000, 6001, tcp);
    to_client_ = std::make_unique<net::TcpConnection>(
        *hosts_.compute_frontend, *hosts_.client, 6002, 6003, tcp);
  } else {
    to_compute_ = std::make_unique<net::TcpConnection>(
        *hosts_.scanner_frontend, *hosts_.client, 6000, 6001, tcp);
  }
  build_graph();
}

void FmriPipeline::build_graph() {
  // Half the RPC handshake budget wraps the forward leg, half the return.
  const des::SimTime half_rpc =
      des::SimTime::picoseconds(cfg_.rpc_overhead.ps() / 2);

  flow::StageConfig transfer;
  transfer.name = "transfer";
  transfer.concurrency = 1;  // one forward transfer at a time
  transfer.body = [this, half_rpc](flow::StageContext ctx, flow::Item& it,
                                   flow::Done done) {
    const int index = it.index;
    records_[static_cast<std::size_t>(index)].sent = sched_.now();
    ctx.trace_send(ctx.stage + 1, static_cast<std::uint32_t>(index),
                   cfg_.image_bytes);
    sched_.schedule_after(half_rpc, [this, ctx, index, done]() {
      to_compute_->send(
          0, cfg_.image_bytes, {},
          [this, ctx, index, done](const std::any&, des::SimTime) {
            records_[static_cast<std::size_t>(index)].at_compute =
                sched_.now();
            ctx.trace_recv(ctx.stage + 1, static_cast<std::uint32_t>(index),
                           cfg_.image_bytes);
            // Run the real numerics, if wired up (timing still from the
            // execution model — this host's wall clock is irrelevant).
            if (source_ && engine_ != nullptr)
              engine_->process_scan(source_(index));
            done();
          });
    });
  };
  graph_.add_stage(std::move(transfer));

  flow::StageConfig compute;
  compute.name = "compute";
  compute.concurrency = 1;  // the single T3E partition
  compute.body = [this](flow::StageContext, flow::Item&, flow::Done done) {
    sched_.schedule_after(compute_time(cfg_.t3e_pes), std::move(done));
  };
  graph_.add_stage(std::move(compute));

  flow::StageConfig back;
  back.name = "return";
  back.concurrency = 0;
  back.body = [this, half_rpc](flow::StageContext ctx, flow::Item& it,
                               flow::Done done) {
    const int index = it.index;
    records_[static_cast<std::size_t>(index)].processed = sched_.now();
    ctx.trace_send(ctx.stage + 1, static_cast<std::uint32_t>(index),
                   cfg_.result_bytes);
    auto deliver = [this, ctx, index, done](const std::any&, des::SimTime) {
      records_[static_cast<std::size_t>(index)].at_client = sched_.now();
      ctx.trace_recv(ctx.stage + 1, static_cast<std::uint32_t>(index),
                     cfg_.result_bytes);
      done();
    };
    if (to_client_) {
      sched_.schedule_after(half_rpc, [this, deliver]() {
        to_client_->send(0, cfg_.result_bytes, {}, deliver);
      });
    } else {
      // Local mode: results are already on the client.
      sched_.schedule_after(half_rpc,
                            [this, deliver]() { deliver({}, sched_.now()); });
    }
  };
  graph_.add_stage(std::move(back));

  flow::StageConfig display;
  display.name = "display";
  display.concurrency = 0;
  display.body = [this](flow::StageContext, flow::Item& it, flow::Done done) {
    const int index = it.index;
    sched_.schedule_after(cfg_.client_display, [this, index, done]() {
      records_[static_cast<std::size_t>(index)].displayed = sched_.now();
      done();
    });
  };
  graph_.add_stage(std::move(display));
}

des::SimTime FmriPipeline::compute_time(int pes) const {
  const FireWork w = make_fire_work(cfg_.work);
  exec::WorkEstimate total;
  if (cfg_.enable_filter) total += w.filter;
  if (cfg_.enable_motion) total += w.motion;
  if (cfg_.enable_rvo) total += w.rvo;
  if (cfg_.enable_detrend) total += w.detrend;
  total += w.correlation;

  if (cfg_.site == ProcessingSite::kLocalWorkstation)
    return exec::time_on(cfg_.workstation, total, 1);

  // Sum per-module so each module's own parallelism cap applies, exactly as
  // the Table 1 columns do.
  des::SimTime t = des::SimTime::zero();
  if (cfg_.enable_filter) t += exec::time_on(cfg_.t3e, w.filter, pes);
  if (cfg_.enable_motion) t += exec::time_on(cfg_.t3e, w.motion, pes);
  if (cfg_.enable_rvo) t += exec::time_on(cfg_.t3e, w.rvo, pes);
  if (cfg_.enable_detrend) t += exec::time_on(cfg_.t3e, w.detrend, pes);
  t += exec::time_on(cfg_.t3e, w.correlation, pes);
  return t;
}

void FmriPipeline::start() {
  for (int i = 0; i < cfg_.n_scans; ++i) {
    ScanRecord& rec = records_[static_cast<std::size_t>(i)];
    rec.index = i;
    rec.acquired = des::SimTime::seconds(cfg_.tr_s * (i + 1));
    sched_.schedule_at(rec.acquired + cfg_.scan_to_server,
                       [this, i]() { on_image_at_server(i); });
  }
}

void FmriPipeline::on_image_at_server(int index) {
  records_[static_cast<std::size_t>(index)].at_server = sched_.now();
  graph_.push(index);
}

PipelineResult FmriPipeline::result() const {
  PipelineResult out;
  out.records = records_;
  out.scans_skipped =
      static_cast<int>(graph_.metrics().admission_dropped);
  double total = 0.0, transfer = 0.0, compute = 0.0;
  int n = 0;
  std::vector<double> display_times;
  for (const ScanRecord& r : records_) {
    if (r.displayed == des::SimTime::zero()) continue;  // never finished
    display_times.push_back(r.displayed.sec());
    if (r.index == 0) continue;  // warm-up
    total += (r.displayed - r.acquired).sec();
    transfer += (r.at_compute - r.sent).sec() +
                (r.at_client - r.processed).sec();
    compute += (r.processed - r.at_compute).sec();
    ++n;
  }
  if (n > 0) {
    out.mean_total_delay_s = total / n;
    out.mean_transfer_control_s = transfer / n;
    out.mean_compute_s = compute / n;
  }
  if (display_times.size() >= 2) {
    // Steady-state period: mean gap over the second half of the run.
    const std::size_t half = display_times.size() / 2;
    out.sustained_period_s =
        (display_times.back() - display_times[half]) /
        static_cast<double>(display_times.size() - 1 - half);
    // The scanner is safe as long as TR covers the pipeline period net of
    // the scanner's own cadence contribution.
    const double busy = out.mean_transfer_control_s + out.mean_compute_s +
                        0.6;  // display
    out.min_safe_tr_s = cfg_.mode == PipelineMode::kSequential
        ? busy
        : std::max({(records_[0].at_compute - records_[0].sent).sec(),
                    out.mean_compute_s, 0.6});
  }
  return out;
}

}  // namespace gtw::fire
