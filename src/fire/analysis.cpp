#include "fire/analysis.hpp"

#include <stdexcept>

namespace gtw::fire {

AnalysisEngine::AnalysisEngine(Dims dims, AnalysisConfig cfg)
    : dims_(dims), cfg_(cfg),
      reference_(make_reference(cfg.stimulus, cfg.detrend_cfg.expected_scans,
                                cfg.tr_s, cfg.hrf)),
      corr_(dims) {
  if (cfg_.detrend) detrend_.emplace(dims, cfg_.detrend_cfg);
}

VolumeF AnalysisEngine::process_scan(const VolumeF& raw) {
  if (!(raw.dims() == dims_))
    throw std::invalid_argument("AnalysisEngine: dims mismatch");
  const int t = corr_.scans();

  VolumeF img = cfg_.median_filter ? median_filter_3x3(raw) : raw;

  last_motion_ = RigidTransform{};
  if (cfg_.motion_correction) {
    if (!motion_) {
      // First scan becomes the alignment reference.
      motion_.emplace(img, cfg_.motion_cfg);
    } else {
      MotionResult res = motion_->correct(img);
      last_motion_ = res.estimate;
      img = std::move(res.corrected);
    }
  }

  if (detrend_) img = detrend_->add_scan(img);

  const double ref_t =
      t < static_cast<int>(reference_.size())
          ? reference_[static_cast<std::size_t>(t)]
          : 0.0;
  corr_.add_scan(img, ref_t);
  processed_series_.push_back(img);
  return img;
}

VolumeF AnalysisEngine::correlation_map() const {
  VolumeF map = corr_.correlation_map();
  if (cfg_.smooth_output) map = average_filter_3x3x3(map);
  return map;
}

RvoResult AnalysisEngine::run_rvo(const RvoConfig& cfg) const {
  RvoAnalyzer rvo(dims_, cfg_.stimulus, cfg_.tr_s, cfg);
  return rvo.analyze(processed_series_);
}

std::vector<double> AnalysisEngine::roi_time_course(
    const std::vector<std::size_t>& voxels) const {
  std::vector<double> out;
  out.reserve(processed_series_.size());
  for (const VolumeF& v : processed_series_) {
    double acc = 0.0;
    for (std::size_t idx : voxels) acc += v[idx];
    out.push_back(voxels.empty() ? 0.0
                                 : acc / static_cast<double>(voxels.size()));
  }
  return out;
}

}  // namespace gtw::fire
