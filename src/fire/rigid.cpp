#include "fire/rigid.hpp"

#include <algorithm>
#include <cmath>

namespace gtw::fire {

void RigidTransform::apply(double cx, double cy, double cz, double x,
                           double y, double z, double& ox, double& oy,
                           double& oz) const {
  // Centre-relative coordinates.
  double px = x - cx, py = y - cy, pz = z - cz;
  // Rotate about x.
  {
    const double c = std::cos(rx), s = std::sin(rx);
    const double ny = c * py - s * pz, nz = s * py + c * pz;
    py = ny;
    pz = nz;
  }
  // Rotate about y.
  {
    const double c = std::cos(ry), s = std::sin(ry);
    const double nx = c * px + s * pz, nz = -s * px + c * pz;
    px = nx;
    pz = nz;
  }
  // Rotate about z.
  {
    const double c = std::cos(rz), s = std::sin(rz);
    const double nx = c * px - s * py, ny = s * px + c * py;
    px = nx;
    py = ny;
  }
  ox = px + cx + tx;
  oy = py + cy + ty;
  oz = pz + cz + tz;
}

double RigidTransform::max_abs() const {
  return std::max({std::abs(tx), std::abs(ty), std::abs(tz), std::abs(rx),
                   std::abs(ry), std::abs(rz)});
}

VolumeF resample(const VolumeF& src, const RigidTransform& t) {
  const Dims d = src.dims();
  VolumeF out(d);
  const double cx = (d.nx - 1) / 2.0;
  const double cy = (d.ny - 1) / 2.0;
  const double cz = (d.nz - 1) / 2.0;
  for (int z = 0; z < d.nz; ++z) {
    for (int y = 0; y < d.ny; ++y) {
      for (int x = 0; x < d.nx; ++x) {
        double sx, sy, sz;
        t.apply(cx, cy, cz, x, y, z, sx, sy, sz);
        out.at(x, y, z) = static_cast<float>(src.sample(sx, sy, sz));
      }
    }
  }
  return out;
}

}  // namespace gtw::fire
