// Work estimates of the FIRE modules for the parallel execution model.
//
// Each estimate is derived from the actual operation counts of the
// implementations in this library (loops, window sizes, iteration counts)
// and the single calibrated constant is the T3E-600 effective rate in
// exec::MachineProfile::t3e600().  With that one rate, the estimates below
// reproduce the whole of Table 1 (all four time columns across 1..256 PEs)
// because the scaling structure — slab-limited filters and motion
// correction, voxel-decomposed RVO, serial fractions, per-PE coordination —
// is modelled, not fitted per row.
#pragma once

#include "exec/machine.hpp"
#include "fire/volume.hpp"

namespace gtw::fire {

struct FireWorkParams {
  Dims dims{64, 64, 16};
  int scans_window = 128;    // time points entering the RVO / detrend fits
  int rvo_grid_points = 100; // delay x dispersion raster size
  int motion_iterations = 8; // Gauss-Newton iterations (typical convergence)
  int detrend_basis = 3;
};

struct FireWork {
  exec::WorkEstimate filter;       // median (pre) + averaging (post)
  exec::WorkEstimate motion;
  exec::WorkEstimate rvo;
  exec::WorkEstimate correlation;  // incremental update, one scan
  exec::WorkEstimate detrend;      // incremental update, one scan

  exec::WorkEstimate total() const;
};

FireWork make_fire_work(const FireWorkParams& p);

}  // namespace gtw::fire
