#include "fire/workload.hpp"

#include "fire/correlation.hpp"
#include "fire/detrend.hpp"
#include "fire/filters.hpp"
#include "fire/motion.hpp"
#include "fire/rvo.hpp"

namespace gtw::fire {

exec::WorkEstimate FireWork::total() const {
  exec::WorkEstimate t;
  t += filter;
  t += motion;
  t += rvo;
  t += correlation;
  t += detrend;
  // The pipeline's limiting grain is the finest of its parts; keep unbounded
  // so time_on reflects each component's own cap when summed separately.
  t.max_parallelism = 0;
  return t;
}

FireWork make_fire_work(const FireWorkParams& p) {
  const double voxels = static_cast<double>(p.dims.voxels());
  const auto face_bytes = static_cast<std::uint64_t>(p.dims.nx) *
                          static_cast<std::uint64_t>(p.dims.ny) * 4u;
  FireWork w;

  // Spatial filters: slice-wise median (9-gather + selection) before the
  // pipeline and 3x3x3 averaging after it; slab decomposition over z.
  w.filter.parallel_ops =
      units::Ops{voxels * (kMedianOpsPerVoxel + kAverageOpsPerVoxel)};
  w.filter.max_parallelism = p.dims.nz;
  w.filter.halo_bytes = units::Bytes{2 * face_bytes};
  w.filter.halo_exchanges = 4;

  // Motion correction: per Gauss-Newton iteration a trilinear warp,
  // gradients and the J^T J accumulation over the slab; the 6x6 solve,
  // transform bookkeeping and convergence control are serial on PE0.
  w.motion.parallel_ops =
      units::Ops{voxels * kMotionOpsPerVoxelIter * p.motion_iterations};
  w.motion.serial_ops = units::Ops{12.0e6};  // solves + image-wide bookkeeping, measured
  w.motion.max_parallelism = p.dims.nz;
  w.motion.halo_bytes =
      units::Bytes{2 * face_bytes *
                   static_cast<std::uint64_t>(p.motion_iterations)};
  w.motion.halo_exchanges = 2 * p.motion_iterations;
  w.motion.reductions = p.motion_iterations;  // J^T J / J^T r global sums

  // RVO: per voxel, every grid candidate correlates over the scan window
  // (kRvoOpsPerSample multiply-adds per sample); voxel decomposition, so it
  // keeps scaling beyond the slice count.  Building the candidate reference
  // bank and assembling result maps is serial.
  w.rvo.parallel_ops = units::Ops{voxels * p.rvo_grid_points *
                                  p.scans_window * kRvoOpsPerSample};
  w.rvo.serial_ops = units::Ops{5.5e6};
  w.rvo.reductions = 1;

  // Incremental correlation and detrending per scan (cheap, voxel-level).
  w.correlation.parallel_ops = units::Ops{voxels * kCorrelationOpsPerVoxelScan};
  w.detrend.parallel_ops = units::Ops{voxels * kDetrendOpsPerVoxelScanPerBasis *
                                      p.detrend_basis};
  return w;
}

}  // namespace gtw::fire
