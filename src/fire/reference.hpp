// Reference-vector model: the expected BOLD signal time course.
//
// The paper: "It is possible to identify brain activity by correlating the
// measured signal with a so-called reference vector which represents a
// convolution of the stimulation time course with a hemodynamic response
// function.  The latter takes into account the delay and dispersion of the
// blood flow in response to neuronal activation."
//
// We parameterise the HRF as a gamma-shaped impulse response with mean
// (delay) `d` seconds and standard deviation (dispersion) `w` seconds —
// exactly the two parameters the paper's RVO module fits per voxel.
#pragma once

#include <cstdint>
#include <vector>

namespace gtw::fire {

// Periodic block-design stimulation: `on` scans active, `off` scans rest,
// starting with rest.  Sampled at the scan repetition time.
struct StimulusDesign {
  int off_scans = 10;
  int on_scans = 10;
  double value(int scan) const {
    const int period = off_scans + on_scans;
    const int phase = scan % period;
    return phase >= off_scans ? 1.0 : 0.0;
  }
  std::vector<double> series(int n_scans) const;
};

struct HrfParams {
  double delay_s = 6.0;       // time to peak of the response
  double dispersion_s = 2.0;  // width of the response
};

// Gamma-shaped HRF sampled at `dt` seconds, truncated at `duration_s`
// (normalised to unit sum so convolution preserves amplitude).
std::vector<double> hrf_kernel(const HrfParams& p, double dt,
                               double duration_s = 30.0);

// Reference vector: stimulus (x) HRF, then z-normalised (zero mean, unit
// variance) so correlation coefficients are directly comparable.
std::vector<double> make_reference(const StimulusDesign& stim, int n_scans,
                                   double tr_s, const HrfParams& p);

// Z-normalise in place; series with (numerically) zero variance become all
// zeros.
void z_normalise(std::vector<double>& v);

}  // namespace gtw::fire
