#include "fire/correlation.hpp"

#include <cmath>

namespace gtw::fire {

IncrementalCorrelation::IncrementalCorrelation(Dims dims)
    : dims_(dims), sum_x_(dims.voxels(), 0.0), sum_xx_(dims.voxels(), 0.0),
      sum_xy_(dims.voxels(), 0.0) {}

void IncrementalCorrelation::add_scan(const VolumeF& image, double ref_t) {
  ++n_;
  sum_y_ += ref_t;
  sum_yy_ += ref_t * ref_t;
  const std::size_t n = dims_.voxels();
  for (std::size_t i = 0; i < n; ++i) {
    const double x = image[i];
    sum_x_[i] += x;
    sum_xx_[i] += x * x;
    sum_xy_[i] += x * ref_t;
  }
}

double IncrementalCorrelation::correlation_at(std::size_t i) const {
  if (n_ < 2) return 0.0;
  const double n = n_;
  const double cov = n * sum_xy_[i] - sum_x_[i] * sum_y_;
  const double vx = n * sum_xx_[i] - sum_x_[i] * sum_x_[i];
  const double vy = n * sum_yy_ - sum_y_ * sum_y_;
  if (vx <= 1e-12 || vy <= 1e-12) return 0.0;
  return cov / std::sqrt(vx * vy);
}

VolumeF IncrementalCorrelation::correlation_map() const {
  VolumeF out(dims_);
  const std::size_t n = dims_.voxels();
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<float>(correlation_at(i));
  return out;
}

}  // namespace gtw::fire
